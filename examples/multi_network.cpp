/**
 * @file
 * Jointly optimizing one accelerator for several CNNs (Section 4.3:
 * "this optimization can be simultaneously applied to multiple target
 * CNNs to jointly optimize their performance").
 *
 * Scenario: an inference service runs both AlexNet and SqueezeNet on
 * one FPGA. Two strategies compete:
 *   (a) split the chip statically in half, one accelerator each;
 *   (b) jointly optimize one Multi-CLP accelerator over the
 *       concatenated layer set — every epoch advances one image of
 *       each network.
 * Joint optimization wins because layers from different networks with
 * similar (N, M) shapes can share a CLP.
 */

#include <cstdio>

#include "core/optimizer.h"
#include "fpga/device.h"
#include "nn/zoo.h"
#include "util/string_utils.h"
#include "util/table.h"

using namespace mclp;

int
main()
{
    nn::Network alexnet = nn::makeAlexNet();
    nn::Network squeezenet = nn::makeSqueezeNet();
    nn::Network joint =
        nn::concatenateNetworks({alexnet, squeezenet}, "AlexSqueeze");

    fpga::Device device = fpga::virtex7_690t();
    double mhz = 170.0;
    fpga::DataType type = fpga::DataType::Fixed16;

    // (a) static split: half the budget per network.
    fpga::ResourceBudget half = fpga::standardBudget(device, mhz);
    half.dspSlices /= 2;
    half.bram18k /= 2;
    auto alex_half = core::optimizeMultiClp(alexnet, type, half);
    auto squeeze_half = core::optimizeMultiClp(squeezenet, type, half);
    // Each epoch of the split machine advances one image per side;
    // the slower side gates a matched-rate service.
    int64_t split_epoch = std::max(alex_half.metrics.epochCycles,
                                   squeeze_half.metrics.epochCycles);

    // (b) joint Multi-CLP over the full budget.
    fpga::ResourceBudget full = fpga::standardBudget(device, mhz);
    auto joint_result = core::optimizeMultiClp(joint, type, full, 8);

    util::TextTable table({"strategy", "epoch cycles",
                           "pairs/s (Alex+SqN)", "utilization"});
    table.setTitle("One FPGA, two networks (690T, fixed16, 170 MHz)");
    auto pairs_per_s = [&](int64_t epoch) {
        return util::strprintf("%.0f", mhz * 1e6 /
                                           static_cast<double>(epoch));
    };
    table.addRow({"static half/half split",
                  util::withCommas(split_epoch),
                  pairs_per_s(split_epoch),
                  util::percent((alexnet.totalMacs() +
                                 squeezenet.totalMacs()) /
                                (static_cast<double>(split_epoch) *
                                 (alex_half.design.totalMacUnits() +
                                  squeeze_half.design
                                      .totalMacUnits())))});
    table.addRow({"joint Multi-CLP",
                  util::withCommas(joint_result.metrics.epochCycles),
                  pairs_per_s(joint_result.metrics.epochCycles),
                  util::percent(joint_result.metrics.utilization)});
    std::printf("%s\n", table.render().c_str());

    std::printf("joint design (%zu CLPs; note CLPs mixing layers of "
                "both networks):\n%s",
                joint_result.design.clps.size(),
                joint_result.design.toString(joint).c_str());

    // Count CLPs serving both networks at once.
    int mixed = 0;
    for (const auto &clp : joint_result.design.clps) {
        bool has_alex = false;
        bool has_squeeze = false;
        for (const auto &binding : clp.layers) {
            const std::string &name = joint.layer(binding.layerIdx).name;
            has_alex |= util::startsWith(name, "AlexNet/");
            has_squeeze |= util::startsWith(name, "SqueezeNet/");
        }
        mixed += has_alex && has_squeeze ? 1 : 0;
    }
    std::printf("\n%d of %zu CLPs serve layers of both networks — the "
                "cross-network sharing a static split cannot do.\n",
                mixed, joint_result.design.clps.size());
    return 0;
}
