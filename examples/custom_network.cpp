/**
 * @file
 * Using the optimizer on your own CNN.
 *
 * Scenario: an embedded-vision pipeline (license-plate detection)
 * whose backbone is not in the zoo. The layers alternate between
 * few-channel/large-image and many-channel/small-image shapes —
 * exactly the imbalance that starves a Single-CLP. This example
 * builds the network from scratch, sweeps the catalog devices for
 * both data types, and prints which configurations benefit most from
 * resource partitioning.
 */

#include <cstdio>

#include "core/optimizer.h"
#include "fpga/device.h"
#include "nn/network.h"
#include "util/string_utils.h"
#include "util/table.h"

using namespace mclp;

namespace {

/** A detection backbone: stem -> stage1 -> stage2 -> head. */
nn::Network
makePlateNet()
{
    nn::Network net("PlateNet", {});
    // Stem: RGB input, 128x128 output after stride-2 7x7.
    net.addLayer(nn::makeConvLayer("stem", 3, 32, 128, 128, 7, 2));
    // Stage 1: two 3x3 layers at 64x64.
    net.addLayer(nn::makeConvLayer("s1_reduce", 32, 48, 64, 64, 1, 1));
    net.addLayer(nn::makeConvLayer("s1_conv", 48, 96, 64, 64, 3, 1));
    // Stage 2: deeper features at 32x32.
    net.addLayer(nn::makeConvLayer("s2_reduce", 96, 64, 32, 32, 1, 1));
    net.addLayer(nn::makeConvLayer("s2_conv_a", 64, 128, 32, 32, 3, 1));
    net.addLayer(nn::makeConvLayer("s2_conv_b", 128, 128, 32, 32, 3, 1));
    // Head: dense 5x5 context plus two 1x1 predictors at 16x16.
    net.addLayer(nn::makeConvLayer("head_ctx", 128, 256, 16, 16, 5, 1));
    net.addLayer(nn::makeConvLayer("head_cls", 256, 32, 16, 16, 1, 1));
    net.addLayer(nn::makeConvLayer("head_box", 256, 16, 16, 16, 1, 1));
    return net;
}

} // namespace

int
main()
{
    nn::Network network = makePlateNet();
    std::printf("%s\n", network.toString().c_str());

    util::TextTable table({"device", "type", "S-CLP util", "M-CLP util",
                           "S-CLP img/s", "M-CLP img/s", "speedup",
                           "CLPs"});
    table.setTitle("PlateNet: Single-CLP vs Multi-CLP across devices");

    for (const char *device_name : {"485t", "690t"}) {
        for (auto type :
             {fpga::DataType::Float32, fpga::DataType::Fixed16}) {
            fpga::Device device = fpga::deviceByName(device_name);
            double mhz = type == fpga::DataType::Float32 ? 100.0 : 170.0;
            fpga::ResourceBudget budget =
                fpga::standardBudget(device, mhz);

            auto single = core::optimizeSingleClp(network, type, budget);
            auto multi = core::optimizeMultiClp(network, type, budget);
            double s = single.metrics.imagesPerSec(mhz);
            double m = multi.metrics.imagesPerSec(mhz);
            table.addRow({device.name, fpga::dataTypeName(type),
                          util::percent(single.metrics.utilization),
                          util::percent(multi.metrics.utilization),
                          util::strprintf("%.0f", s),
                          util::strprintf("%.0f", m),
                          util::strprintf("%.2fx", m / s),
                          std::to_string(multi.design.clps.size())});
        }
    }
    std::printf("%s\n", table.render().c_str());

    // Show the best fixed-point partition in detail.
    fpga::ResourceBudget budget =
        fpga::standardBudget(fpga::virtex7_690t(), 170.0);
    auto multi = core::optimizeMultiClp(network, fpga::DataType::Fixed16,
                                        budget);
    std::printf("chosen fixed16 design on the 690T "
                "(ordering heuristic: %s):\n%s",
                core::orderHeuristicName(multi.usedHeuristic).c_str(),
                multi.design.toString(network).c_str());
    return 0;
}
