/**
 * @file
 * From optimization result to HLS sources (Section 5).
 *
 * Scenario: you accepted an optimized Multi-CLP design and now want
 * the synthesizable artifacts. This example optimizes AlexNet for the
 * 485T, emits one parameterized CLP template instance per CLP (plus
 * the integration README), writes them under ./generated_hls/, and
 * prints each instance's nine template parameters and its first
 * layer's 32-byte argument descriptor.
 *
 * The generated sources carry real `#pragma HLS` directives for a
 * Vivado HLS flow but also compile and run on a host CPU; the test
 * suite compiles and executes them against a direct convolution.
 */

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/optimizer.h"
#include "hlsgen/codegen.h"
#include "nn/zoo.h"
#include "util/string_utils.h"
#include "util/table.h"

using namespace mclp;

int
main()
{
    nn::Network network = nn::makeAlexNet();
    fpga::ResourceBudget budget =
        fpga::standardBudget(fpga::virtex7_485t(), 100.0);
    auto result = core::optimizeMultiClp(network,
                                         fpga::DataType::Float32,
                                         budget);
    std::printf("optimized %zu-CLP design, epoch %s cycles\n\n",
                result.design.clps.size(),
                util::withCommas(result.metrics.epochCycles).c_str());

    // Emit the accelerator sources.
    auto files = hlsgen::generateAccelerator(result.design, network);
    std::filesystem::path dir("generated_hls");
    std::filesystem::create_directories(dir);
    for (const auto &file : files) {
        std::ofstream ofs(dir / file.filename);
        ofs << file.contents;
        std::printf("wrote %s (%zu bytes)\n",
                    (dir / file.filename).c_str(),
                    file.contents.size());
    }

    // Show the template parameters per instance.
    util::TextTable table({"instance", "Tn", "Tm", "Mmax", "Kmax",
                           "insize", "outsize", "NP/WP/MP"});
    table.setTitle("\nTemplate parameters (the nine of Section 5.1)");
    for (size_t ci = 0; ci < result.design.clps.size(); ++ci) {
        auto params = hlsgen::deriveParams(
            result.design.clps[ci], network, result.design.dataType,
            util::strprintf("clp%zu", ci));
        table.addRow({params.name, std::to_string(params.tn),
                      std::to_string(params.tm),
                      std::to_string(params.mmax),
                      std::to_string(params.kmax),
                      std::to_string(params.insize),
                      std::to_string(params.outsize),
                      util::strprintf("%lld/%lld/%lld",
                                      static_cast<long long>(params.np),
                                      static_cast<long long>(params.wp),
                                      static_cast<long long>(
                                          params.mp))});
    }
    std::printf("%s\n", table.render().c_str());

    // The runtime hands each layer to its CLP as a 32-byte descriptor.
    const auto &clp0 = result.design.clps[0];
    const auto &binding = clp0.layers[0];
    auto desc = hlsgen::ArgumentDescriptor::fromLayer(
        network.layer(binding.layerIdx), binding.tiling);
    auto raw = desc.encode();
    std::printf("argument descriptor for %s on clp0:\n  ",
                network.layer(binding.layerIdx).name.c_str());
    for (size_t i = 0; i < raw.size(); ++i)
        std::printf("%02x%s", raw[i], (i % 4 == 3) ? " " : "");
    std::printf("\n  (R C M N K S Tr Tc as little-endian words)\n");
    return 0;
}
