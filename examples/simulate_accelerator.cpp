/**
 * @file
 * Running an optimized accelerator in the cycle-level simulator.
 *
 * Scenario: before committing to an FPGA build you want evidence that
 * (a) the tiled CLP datapath computes the right answers and (b) the
 * analytical model's throughput predictions hold once transfers and
 * double-buffering are actually scheduled. This example optimizes a
 * small CNN, checks the functional engine against the golden
 * convolution on every layer, and sweeps the DRAM bandwidth to show
 * where the accelerator turns transfer-bound.
 */

#include <cmath>
#include <cstdio>

#include "core/optimizer.h"
#include "model/metrics.h"
#include "nn/network.h"
#include "nn/reference.h"
#include "sim/clp_engine.h"
#include "sim/system.h"
#include "util/string_utils.h"
#include "util/table.h"

using namespace mclp;

namespace {

nn::Network
makeTinyNet()
{
    // Small enough to run functionally in milliseconds, shaped enough
    // (N from 3 to 64, K from 1 to 5) to exercise the datapath.
    nn::Network net("TinyNet", {});
    net.addLayer(nn::makeConvLayer("conv1", 3, 16, 32, 32, 5, 2));
    net.addLayer(nn::makeConvLayer("conv2", 16, 32, 16, 16, 3, 1));
    net.addLayer(nn::makeConvLayer("reduce", 32, 24, 16, 16, 1, 1));
    net.addLayer(nn::makeConvLayer("conv3", 24, 64, 8, 8, 3, 1));
    return net;
}

/** Find the CLP and tiling an optimized design uses for a layer. */
std::pair<model::ClpShape, model::Tiling>
bindingFor(const model::MultiClpDesign &design, size_t layer_idx)
{
    for (const auto &clp : design.clps)
        for (const auto &binding : clp.layers)
            if (binding.layerIdx == layer_idx)
                return {clp.shape, binding.tiling};
    util::fatal("layer %zu not bound in design", layer_idx);
}

} // namespace

int
main()
{
    nn::Network network = makeTinyNet();
    fpga::ResourceBudget budget;
    budget.dspSlices = 600;
    budget.bram18k = 400;
    budget.frequencyMhz = 150.0;

    auto result = core::optimizeMultiClp(network,
                                         fpga::DataType::Float32,
                                         budget);
    std::printf("optimized design:\n%s\n",
                result.design.toString(network).c_str());

    // Functional validation: run every layer through the tiled CLP
    // engine and compare against the direct six-loop convolution.
    std::printf("functional validation against the golden reference:\n");
    for (size_t li = 0; li < network.numLayers(); ++li) {
        const nn::ConvLayer &layer = network.layer(li);
        auto [shape, tiling] = bindingFor(result.design, li);
        auto input = nn::makeRandomInput<float>(layer, 1000 + li);
        auto weights = nn::makeRandomWeights<float>(layer, 2000 + li);
        auto expected = nn::referenceConv(layer, input, weights);
        auto got =
            sim::runLayerFunctional(layer, shape, tiling, input, weights);
        double max_err = 0.0;
        for (size_t i = 0; i < expected.raw().size(); ++i)
            max_err = std::max(
                max_err, std::abs(static_cast<double>(
                             expected.raw()[i] - got.output.raw()[i])));
        std::printf("  %-8s Tn=%lld Tm=%lld Tr=%lld Tc=%lld: "
                    "max |err| = %.2e over %lld outputs  [%s]\n",
                    layer.name.c_str(),
                    static_cast<long long>(shape.tn),
                    static_cast<long long>(shape.tm),
                    static_cast<long long>(tiling.tr),
                    static_cast<long long>(tiling.tc), max_err,
                    static_cast<long long>(layer.outputWords()),
                    max_err < 1e-3 ? "OK" : "MISMATCH");
    }

    // Timing validation: sweep DRAM bandwidth and watch the epoch.
    std::printf("\nbandwidth sweep (timing simulation of one epoch):\n");
    util::TextTable table({"bandwidth (GB/s)", "epoch (cycles)",
                           "stall share", "utilization",
                           "model epoch"});
    for (double gbps : {0.1, 0.2, 0.5, 1.0, 2.0, 4.0, 0.0}) {
        fpga::ResourceBudget b = budget;
        if (gbps > 0.0)
            b.setBandwidthGbps(gbps);
        sim::MultiClpSystem system(result.design, network, b);
        auto sim_result = system.simulateEpoch();
        auto metrics = model::evaluateDesign(result.design, network, b);
        double stall = 0.0;
        for (const auto &clp : sim_result.clps)
            stall = std::max(stall,
                             clp.stallCycles / sim_result.epochCycles);
        table.addRow({gbps > 0.0 ? util::strprintf("%.1f", gbps)
                                 : std::string("unlimited"),
                      util::withCommas(static_cast<int64_t>(
                          sim_result.epochCycles)),
                      util::percent(stall),
                      util::percent(sim_result.utilization),
                      util::withCommas(metrics.epochCycles)});
    }
    std::printf("%s", table.render().c_str());
    std::printf("\nthe simulated epoch converges to the analytical "
                "model as bandwidth grows; under starvation the CLPs "
                "stall on transfers exactly as Section 4.2 models.\n");
    return 0;
}
