/**
 * @file
 * Visualizing the epoch schedule (the paper's Figure 5) and the
 * latency/throughput tradeoff of Section 4.1.
 *
 * The cycle-level simulator reports when each layer executes on each
 * CLP; this example renders that as an ASCII Gantt chart for the
 * published AlexNet 485T Multi-CLP design, then compares the general
 * schedule against adjacency-constrained designs with fewer CLPs
 * (lower latency, possibly lower throughput).
 */

#include <algorithm>
#include <cstdio>

#include "core/optimizer.h"
#include "core/paper_designs.h"
#include "core/schedule.h"
#include "nn/zoo.h"
#include "sim/system.h"
#include "util/string_utils.h"
#include "util/table.h"

using namespace mclp;

namespace {

/** Render one epoch of a design as an ASCII Gantt chart. */
void
printGantt(const model::MultiClpDesign &design,
           const nn::Network &network)
{
    fpga::ResourceBudget budget;
    budget.dspSlices = 1 << 20;
    budget.bram18k = 1 << 20;
    budget.frequencyMhz = 100.0;
    sim::MultiClpSystem system(design, network, budget);
    auto result = system.simulateEpoch();

    const int width = 68;
    double scale = result.epochCycles / static_cast<double>(width);
    std::printf("one epoch = %s cycles; '#' spans show layer "
                "execution, '.' is idle\n",
                util::withCommas(
                    static_cast<int64_t>(result.epochCycles))
                    .c_str());
    for (size_t ci = 0; ci < result.clps.size(); ++ci) {
        std::string lane(width, '.');
        std::string labels;
        for (const auto &span : result.clps[ci].layerSpans) {
            int begin = static_cast<int>(span.startCycle / scale);
            int end = std::max(begin + 1,
                               static_cast<int>(span.endCycle / scale));
            for (int x = begin; x < end && x < width; ++x)
                lane[x] = '#';
            // Mark the boundary between consecutive layers.
            if (begin > 0 && begin < width && lane[begin - 1] == '#')
                lane[begin] = '|';
            labels += network.layer(
                              static_cast<size_t>(span.layerIdx))
                          .name +
                      " ";
        }
        std::printf("  CLP%zu |%s| %s\n", ci, lane.c_str(),
                    labels.c_str());
    }
}

} // namespace

int
main()
{
    nn::Network network = nn::makeAlexNet();

    std::printf("=== Figure-5-style epoch schedule: published 485T "
                "Multi-CLP ===\n\n");
    printGantt(core::paperAlexNetMulti485(), network);

    // Latency/throughput tradeoff (Section 4.1): adjacency-constrained
    // designs with a capped CLP count.
    std::printf("\n=== Latency vs throughput (adjacent-layer "
                "schedules, 485T float) ===\n\n");
    fpga::ResourceBudget budget =
        fpga::standardBudget(fpga::virtex7_485t(), 100.0);
    util::TextTable table({"max CLPs", "CLPs used", "epoch cycles",
                           "img/s", "latency epochs", "latency (ms)",
                           "images in flight"});
    for (int max_clps : {1, 2, 3, 4, 6}) {
        core::OptimizerOptions options;
        options.adjacentLayers = true;
        options.maxClps = max_clps;
        auto result = core::MultiClpOptimizer(
                          network, fpga::DataType::Float32, budget,
                          options)
                          .run();
        auto canon =
            core::canonicalizeSchedule(result.design, network);
        auto info = core::analyzeSchedule(canon, network);
        table.addRow(
            {std::to_string(max_clps),
             std::to_string(canon.clps.size()),
             util::withCommas(result.metrics.epochCycles),
             util::strprintf("%.1f",
                             result.metrics.imagesPerSec(100.0)),
             std::to_string(info.latencyEpochs),
             util::strprintf("%.1f",
                             1e3 * info.latencySeconds(
                                       result.metrics.epochCycles,
                                       100.0)),
             std::to_string(info.imagesInFlight)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("fewer CLPs shorten the pipeline (lower latency, "
                "fewer in-flight images) but give up the specialized "
                "shapes that maximize throughput — exactly the "
                "tradeoff Section 4.1 describes.\n");
    return 0;
}
