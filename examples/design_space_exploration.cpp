/**
 * @file
 * Design-space exploration for a deployment decision.
 *
 * Scenario: a datacenter team must pick an FPGA part and a DDR
 * configuration for a GoogLeNet inference appliance. This example
 * uses the library to answer three questions:
 *   1. How does throughput scale with the DSP budget (which part)?
 *   2. How much off-chip bandwidth does each design need (which DDR)?
 *   3. How should BRAM be traded against bandwidth on the chosen
 *      part (Figure 6-style frontier)?
 *
 * Usage: design_space_exploration [network] [float|fixed]
 * (defaults: googlenet float)
 */

#include <cstdio>
#include <string>

#include "core/memory_optimizer.h"
#include "core/optimizer.h"
#include "fpga/device.h"
#include "model/bram_model.h"
#include "model/metrics.h"
#include "nn/zoo.h"
#include "util/string_utils.h"
#include "util/table.h"

using namespace mclp;

int
main(int argc, char **argv)
{
    std::string net_name = argc > 1 ? argv[1] : "googlenet";
    fpga::DataType type =
        fpga::dataTypeByName(argc > 2 ? argv[2] : "float");
    double mhz = type == fpga::DataType::Float32 ? 100.0 : 170.0;
    nn::Network network = nn::networkByName(net_name);
    std::printf("exploring %s (%s, %.0f MHz)\n\n",
                network.name().c_str(),
                fpga::dataTypeName(type).c_str(), mhz);

    // Question 1 + 2: throughput and bandwidth need per device.
    util::TextTable devices({"device", "DSP budget", "CLPs",
                             "utilization", "img/s", "needed GB/s"});
    devices.setTitle("Part selection: Multi-CLP across the catalog");
    core::OptimizationResult chosen;
    for (const auto &device : fpga::deviceCatalog()) {
        fpga::ResourceBudget budget = fpga::standardBudget(device, mhz);
        std::fprintf(stderr, "optimizing for %s...\n",
                     device.name.c_str());
        auto result = core::optimizeMultiClp(network, type, budget);
        double need_bpc = model::requiredBandwidthBytesPerCycle(
            result.design, network, budget);
        devices.addRow(
            {device.name, util::withCommas(budget.dspSlices),
             std::to_string(result.design.clps.size()),
             util::percent(result.metrics.utilization),
             util::strprintf("%.1f", result.metrics.imagesPerSec(mhz)),
             util::strprintf("%.2f", need_bpc * mhz * 1e6 / 1e9)});
        if (device.name == "Virtex-7 690T")
            chosen = result;
    }
    std::printf("%s\n", devices.render().c_str());

    // Question 3: BRAM vs bandwidth frontier on the chosen part.
    core::MemoryOptimizer memory(network, type);
    auto curve = memory.tradeoffCurve(chosen.partition);
    util::TextTable frontier({"BRAM-18K", "needed GB/s"});
    frontier.setTitle("BRAM/bandwidth frontier on the 690T "
                      "(subsampled)");
    size_t stride = std::max<size_t>(1, curve.size() / 16);
    for (size_t i = 0; i < curve.size(); i += stride) {
        frontier.addRow(
            {util::withCommas(curve[i].totalBram),
             util::strprintf("%.2f", curve[i].peakBytesPerCycle * mhz *
                                         1e6 / 1e9)});
    }
    std::printf("%s\n", frontier.render().c_str());
    std::printf("pick the frontier point matching your DDR "
                "configuration; every point has the same epoch "
                "length when bandwidth suffices.\n");
    return 0;
}
