/**
 * @file
 * Quickstart: optimize a Multi-CLP accelerator for AlexNet on a
 * Virtex-7 690T and compare it with the state-of-the-art Single-CLP
 * baseline.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "core/optimizer.h"
#include "fpga/device.h"
#include "model/bram_model.h"
#include "model/dsp_model.h"
#include "model/metrics.h"
#include "nn/zoo.h"
#include "util/string_utils.h"

using namespace mclp;

int
main()
{
    // 1. Pick a network from the zoo (or build your own nn::Network).
    nn::Network network = nn::makeAlexNet();
    std::printf("%s", network.toString().c_str());

    // 2. Describe the resource budget: the paper uses 80% of the chip
    //    and a 100 MHz clock for the float designs.
    fpga::Device device = fpga::virtex7_690t();
    fpga::ResourceBudget budget = fpga::standardBudget(device, 100.0);
    std::printf("\nbudget: %lld DSP slices, %lld BRAM-18Kb on %s\n\n",
                static_cast<long long>(budget.dspSlices),
                static_cast<long long>(budget.bram18k),
                device.name.c_str());

    // 3. Baseline: one convolutional layer processor for all layers.
    auto single = core::optimizeSingleClp(network,
                                          fpga::DataType::Float32,
                                          budget);
    std::printf("Single-CLP: Tn=%lld Tm=%lld, %s cycles/image, "
                "utilization %s\n",
                static_cast<long long>(single.design.clps[0].shape.tn),
                static_cast<long long>(single.design.clps[0].shape.tm),
                util::withCommas(single.metrics.epochCycles).c_str(),
                util::percent(single.metrics.utilization).c_str());

    // 3b. Why is the Single-CLP slow? Ask the per-layer fit report:
    //     layers whose (N, M) mismatch the 9x64 grid idle most lanes.
    auto fits = model::layerFitReport(single.design, network);
    std::printf("  worst-fitting layers on the single CLP:\n");
    for (size_t i = 0; i < 3 && i < fits.size(); ++i) {
        std::printf("    %-8s %s of the grid busy\n",
                    network.layer(fits[i].layerIdx).name.c_str(),
                    util::percent(fits[i].utilization).c_str());
    }

    // 4. The paper's contribution: partition the same resources into
    //    multiple specialized CLPs working on independent images.
    auto multi = core::optimizeMultiClp(network, fpga::DataType::Float32,
                                        budget);
    std::printf("Multi-CLP:  %zu CLPs, %s cycles/epoch, utilization "
                "%s\n\n",
                multi.design.clps.size(),
                util::withCommas(multi.metrics.epochCycles).c_str(),
                util::percent(multi.metrics.utilization).c_str());
    std::printf("%s", multi.design.toString(network).c_str());

    // 5. Compare throughput; both designs use the same arithmetic.
    double s = single.metrics.imagesPerSec(100.0);
    double m = multi.metrics.imagesPerSec(100.0);
    std::printf("\nthroughput: %.2f img/s -> %.2f img/s (%.2fx) using "
                "%lld DSP slices in both designs\n",
                s, m, m / s,
                static_cast<long long>(model::designDsp(multi.design)));
    std::printf("BRAM: %lld (single) vs %lld (multi) of %lld\n",
                static_cast<long long>(
                    model::designBram(single.design, network)),
                static_cast<long long>(
                    model::designBram(multi.design, network)),
                static_cast<long long>(budget.bram18k));
    return 0;
}
