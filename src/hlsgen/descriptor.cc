#include "hlsgen/descriptor.h"

#include "util/logging.h"
#include "util/math.h"

namespace mclp {
namespace hlsgen {

ArgumentDescriptor
ArgumentDescriptor::fromLayer(const nn::ConvLayer &layer,
                              const model::Tiling &tiling)
{
    ArgumentDescriptor desc;
    desc.r = static_cast<uint32_t>(layer.r);
    desc.c = static_cast<uint32_t>(layer.c);
    desc.m = static_cast<uint32_t>(layer.m);
    desc.n = static_cast<uint32_t>(layer.n);
    desc.k = static_cast<uint32_t>(layer.k);
    desc.s = static_cast<uint32_t>(layer.s);
    desc.tr = static_cast<uint32_t>(tiling.tr);
    desc.tc = static_cast<uint32_t>(tiling.tc);
    desc.g = static_cast<uint32_t>(layer.g);
    desc.validate();
    return desc;
}

std::array<uint8_t, 36>
ArgumentDescriptor::encode() const
{
    std::array<uint8_t, 36> raw{};
    const uint32_t fields[9] = {r, c, m, n, k, s, tr, tc, g};
    for (size_t f = 0; f < 9; ++f) {
        for (size_t b = 0; b < 4; ++b) {
            raw[f * 4 + b] =
                static_cast<uint8_t>((fields[f] >> (8 * b)) & 0xff);
        }
    }
    return raw;
}

ArgumentDescriptor
ArgumentDescriptor::decode(const std::array<uint8_t, 36> &raw)
{
    uint32_t fields[9] = {};
    for (size_t f = 0; f < 9; ++f) {
        for (size_t b = 0; b < 4; ++b) {
            fields[f] |= static_cast<uint32_t>(raw[f * 4 + b])
                         << (8 * b);
        }
    }
    ArgumentDescriptor desc;
    desc.r = fields[0];
    desc.c = fields[1];
    desc.m = fields[2];
    desc.n = fields[3];
    desc.k = fields[4];
    desc.s = fields[5];
    desc.tr = fields[6];
    desc.tc = fields[7];
    desc.g = fields[8];
    desc.validate();
    return desc;
}

uint32_t
ArgumentDescriptor::rsteps() const
{
    return util::ceilDiv(r, tr);
}

uint32_t
ArgumentDescriptor::csteps() const
{
    return util::ceilDiv(c, tc);
}

uint32_t
ArgumentDescriptor::msteps(int64_t tm) const
{
    if (tm <= 0)
        util::panic("ArgumentDescriptor::msteps: non-positive Tm");
    return static_cast<uint32_t>(
        util::ceilDiv<int64_t>(m / g, tm));
}

uint32_t
ArgumentDescriptor::nsteps(int64_t tn) const
{
    if (tn <= 0)
        util::panic("ArgumentDescriptor::nsteps: non-positive Tn");
    return static_cast<uint32_t>(
        util::ceilDiv<int64_t>(n / g, tn));
}

void
ArgumentDescriptor::validate() const
{
    if (r == 0 || c == 0 || m == 0 || n == 0 || k == 0 || s == 0 ||
        tr == 0 || tc == 0 || g == 0) {
        util::fatal("ArgumentDescriptor: all fields must be non-zero");
    }
    if (tr > r || tc > c)
        util::fatal("ArgumentDescriptor: tile exceeds output extent");
    if (m % g != 0 || n % g != 0)
        util::fatal("ArgumentDescriptor: groups must divide both map "
                    "counts (M=%u N=%u G=%u)", m, n, g);
}

} // namespace hlsgen
} // namespace mclp
