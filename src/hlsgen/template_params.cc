#include "hlsgen/template_params.h"

#include <algorithm>

#include "model/bram_model.h"
#include "util/logging.h"
#include "util/math.h"

namespace mclp {
namespace hlsgen {

void
TemplateParams::validate() const
{
    if (name.empty())
        util::fatal("TemplateParams: instance name must not be empty");
    if (tn <= 0 || tm <= 0 || mmax <= 0 || kmax <= 0 || insize <= 0 ||
        outsize <= 0) {
        util::fatal("TemplateParams(%s): sizes must be positive",
                    name.c_str());
    }
    if (np <= 0 || wp <= 0 || mp <= 0)
        util::fatal("TemplateParams(%s): port counts must be positive",
                    name.c_str());
    if (mp > tm)
        util::fatal("TemplateParams(%s): MP=%lld exceeds Tm=%lld",
                    name.c_str(), static_cast<long long>(mp),
                    static_cast<long long>(tm));
    if (np > tn)
        util::fatal("TemplateParams(%s): NP=%lld exceeds Tn=%lld",
                    name.c_str(), static_cast<long long>(np),
                    static_cast<long long>(tn));
}

TemplateParams
deriveParams(const model::ClpConfig &clp, const nn::Network &network,
             fpga::DataType type, std::string name)
{
    if (clp.layers.empty())
        util::fatal("deriveParams: CLP has no layers");

    TemplateParams params;
    params.name = std::move(name);
    params.tn = clp.shape.tn;
    params.tm = clp.shape.tm;
    params.dataType = type;
    for (const model::LayerBinding &binding : clp.layers) {
        const nn::ConvLayer &layer = network.layer(binding.layerIdx);
        params.mmax = std::max(params.mmax, layer.m);
        params.kmax = std::max(params.kmax, layer.k);
        params.insize =
            std::max(params.insize,
                     model::inputBankWords(layer, binding.tiling));
        params.outsize = std::max(
            params.outsize, model::outputBankWords(binding.tiling));
    }
    // Port policy: one output port per 64 dot-product units (wide
    // write-out is the throughput-critical transfer), single input
    // and weight ports (reads are long contiguous bursts).
    params.mp = util::clamp<int64_t>(
        util::ceilDiv<int64_t>(params.tm, 64), 1, params.tm);
    params.np = 1;
    params.wp = 1;
    params.validate();
    return params;
}

} // namespace hlsgen
} // namespace mclp
