/**
 * @file
 * The nine parameters of the CLP HLS template (Section 5.1): Tn and
 * Tm size the compute module; Mmax, Kmax, insize and outsize size the
 * on-chip bias, weight, input and output buffers; NP, WP and MP give
 * the number of AXI stream ports for input, weight and output data.
 */

#ifndef MCLP_HLSGEN_TEMPLATE_PARAMS_H
#define MCLP_HLSGEN_TEMPLATE_PARAMS_H

#include <cstdint>
#include <string>

#include "fpga/data_type.h"
#include "model/clp_config.h"
#include "nn/network.h"

namespace mclp {
namespace hlsgen {

/** Template instantiation parameters for one CLP. */
struct TemplateParams
{
    std::string name;       ///< instance name, e.g. "clp0"
    int64_t tn = 0;         ///< dot-product width
    int64_t tm = 0;         ///< dot-product unit count
    int64_t mmax = 0;       ///< bias buffer depth (largest M)
    int64_t kmax = 0;       ///< largest kernel (weight bank = Kmax^2)
    int64_t insize = 0;     ///< input bank words (most demanding layer)
    int64_t outsize = 0;    ///< output bank words
    int64_t np = 1;         ///< input AXI stream ports (NP)
    int64_t wp = 1;         ///< weight AXI stream ports (WP)
    int64_t mp = 1;         ///< output AXI stream ports (MP)
    fpga::DataType dataType = fpga::DataType::Float32;

    /** fatal() unless all sizes are positive and ports divide work. */
    void validate() const;
};

/**
 * Derive the template parameters for one CLP of a design: buffer
 * depths come from the most demanding assigned layer (the same maxima
 * the BRAM model uses); port counts follow the transfer-partitioning
 * policy of Section 5.1 (wide output arrays are split across MP
 * ports, one port per 64 dot-product units).
 */
TemplateParams deriveParams(const model::ClpConfig &clp,
                            const nn::Network &network,
                            fpga::DataType type, std::string name);

} // namespace hlsgen
} // namespace mclp

#endif // MCLP_HLSGEN_TEMPLATE_PARAMS_H
