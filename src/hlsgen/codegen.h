/**
 * @file
 * CLP template code generation (Section 5).
 *
 * The paper parameterizes a C++ HLS template and compiles it with
 * Vivado HLS into one IP core per CLP. This module emits that
 * template: a self-contained C++ translation unit per CLP with the
 * Listing-4 structure — argument-descriptor decode, the four nested
 * tile loops, ping-pong (DATAFLOW) buffers, a PIPELINE'd compute
 * module with the (Tm, Tn) grid innermost, and port-partitioned
 * transfer functions. HLS pragmas are emitted as real `#pragma HLS`
 * lines (ignored by a host compiler), so the generated code both
 * feeds an HLS flow and compiles/executes on a CPU for validation;
 * generateTestbench() emits a self-checking main() that compares the
 * template against a direct convolution.
 */

#ifndef MCLP_HLSGEN_CODEGEN_H
#define MCLP_HLSGEN_CODEGEN_H

#include <string>
#include <vector>

#include "hlsgen/descriptor.h"
#include "hlsgen/template_params.h"
#include "model/clp_config.h"
#include "nn/network.h"

namespace mclp {
namespace hlsgen {

/** Emit the CLP translation unit for one parameter set. */
std::string generateClpSource(const TemplateParams &params);

/**
 * Emit a self-checking testbench main() for the CLP instance: fills
 * input/weight/bias arrays deterministically, runs <name>_top with
 * the given descriptor, computes a direct convolution, and returns 0
 * iff all outputs match. Compile together with generateClpSource().
 */
std::string generateTestbench(const TemplateParams &params,
                              const ArgumentDescriptor &desc);

/** One generated file: target filename plus contents. */
struct GeneratedFile
{
    std::string filename;
    std::string contents;
};

/**
 * Generate the complete accelerator: one CLP source per CLP of the
 * design (named clp0..clpN-1) plus a top-level README describing the
 * AXI integration (crossbar + DataMovers) of Section 5.1.
 */
std::vector<GeneratedFile> generateAccelerator(
    const model::MultiClpDesign &design, const nn::Network &network);

} // namespace hlsgen
} // namespace mclp

#endif // MCLP_HLSGEN_CODEGEN_H
