/**
 * @file
 * The CLP argument descriptor (Section 5.1).
 *
 * At the start of CLP operation one AXI4 burst transfers a 36-byte
 * descriptor holding the layer arguments (R, C, M, N, K, S, Tr, Tc, G)
 * as nine 32-bit words; the CLP then derives its loop trip counts
 * (rsteps, csteps, and the per-group msteps and nsteps) from them.
 * The G word (PR 9) carries the convolution group count — 1 for
 * plain layers, N for depthwise — and widened the burst from the
 * original eight-word form. This module provides the host-side
 * encoder and the device-side decoder used by the generated template
 * and the simulator.
 */

#ifndef MCLP_HLSGEN_DESCRIPTOR_H
#define MCLP_HLSGEN_DESCRIPTOR_H

#include <array>
#include <cstdint>

#include "model/clp_config.h"
#include "nn/conv_layer.h"

namespace mclp {
namespace hlsgen {

/** Decoded layer arguments, the fields of Section 5.1 plus groups. */
struct ArgumentDescriptor
{
    uint32_t r = 0;   ///< output rows (R)
    uint32_t c = 0;   ///< output columns (C)
    uint32_t m = 0;   ///< output feature maps (M)
    uint32_t n = 0;   ///< input feature maps (N)
    uint32_t k = 0;   ///< kernel size (K)
    uint32_t s = 0;   ///< stride (S)
    uint32_t tr = 0;  ///< row tile (Tr)
    uint32_t tc = 0;  ///< column tile (Tc)
    uint32_t g = 1;   ///< convolution groups (G)

    /** Build a descriptor for one layer binding. */
    static ArgumentDescriptor fromLayer(const nn::ConvLayer &layer,
                                        const model::Tiling &tiling);

    /** Serialize to the 36-byte little-endian burst payload. */
    std::array<uint8_t, 36> encode() const;

    /** Parse a 36-byte burst payload (fatal on zero dimensions). */
    static ArgumentDescriptor decode(const std::array<uint8_t, 36> &raw);

    /** Derived trip count: ceil(R / Tr). */
    uint32_t rsteps() const;

    /** Derived trip count: ceil(C / Tc). */
    uint32_t csteps() const;

    /** Trip count over one group's M/G output maps for a Tm-wide CLP. */
    uint32_t msteps(int64_t tm) const;

    /** Trip count over one group's N/G input maps for a Tn-wide CLP. */
    uint32_t nsteps(int64_t tn) const;

    /** Sanity checks (positive dims, tiles in bounds, G | M and N). */
    void validate() const;

    bool operator==(const ArgumentDescriptor &other) const = default;
};

} // namespace hlsgen
} // namespace mclp

#endif // MCLP_HLSGEN_DESCRIPTOR_H
