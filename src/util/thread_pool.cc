#include "util/thread_pool.h"

#include <algorithm>

namespace mclp {
namespace util {

int
resolveThreads(int threads)
{
    if (threads > 0)
        return threads;
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int threads)
{
    int count = resolveThreads(threads);
    workers_.reserve(static_cast<size_t>(count - 1));
    for (int t = 1; t < count; ++t)
        workers_.emplace_back([this, t] {
            workerLoop(static_cast<size_t>(t));
        });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::runJob(Job &job)
{
    // Once next >= n every index is claimed, so runJob returns without
    // touching fn; only the Job header must outlive the loop, which the
    // board's shared_ptr guarantees.
    for (;;) {
        size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
        if (i >= job.n)
            return;
        (*job.fn)(i);
        job.done.fetch_add(1, std::memory_order_release);
    }
}

std::shared_ptr<ThreadPool::Job>
ThreadPool::stealLocked(const Job *except)
{
    for (const std::shared_ptr<Job> &job : jobs_) {
        if (job.get() != except &&
            job->next.load(std::memory_order_relaxed) < job->n) {
            return job;
        }
    }
    return nullptr;
}

void
ThreadPool::workerLoop(size_t)
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        wake_.wait(lock, [this] {
            return stop_ || stealLocked(nullptr) != nullptr;
        });
        if (stop_)
            return;
        std::shared_ptr<Job> job = stealLocked(nullptr);
        lock.unlock();
        runJob(*job);
        job.reset();
        lock.lock();
    }
}

void
ThreadPool::parallelFor(size_t n, const std::function<void(size_t)> &fn)
{
    if (n == 0)
        return;
    if (workers_.empty() || n == 1) {
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    auto job = std::make_shared<Job>();
    job->n = n;
    job->fn = &fn;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        jobs_.push_back(job);
    }
    wake_.notify_all();

    // Claim our own indices first, then steal from other active jobs
    // while stragglers finish ours (keeps nested loops deadlock free
    // and this thread useful).
    runJob(*job);
    while (job->done.load(std::memory_order_acquire) < n) {
        std::shared_ptr<Job> other;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            other = stealLocked(job.get());
        }
        if (other)
            runJob(*other);
        else
            std::this_thread::yield();
    }

    std::lock_guard<std::mutex> lock(mutex_);
    jobs_.erase(std::find(jobs_.begin(), jobs_.end(), job));
}

} // namespace util
} // namespace mclp
