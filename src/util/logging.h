/**
 * @file
 * Status-message and error-reporting helpers.
 *
 * Follows the gem5 convention: fatal() is for user errors (bad
 * configuration, impossible budgets) and exits cleanly; panic() is for
 * internal invariant violations (library bugs) and aborts. inform() and
 * warn() print status without stopping.
 */

#ifndef MCLP_UTIL_LOGGING_H
#define MCLP_UTIL_LOGGING_H

#include <cstdarg>
#include <cstdio>
#include <stdexcept>
#include <string>

namespace mclp {
namespace util {

/** Verbosity levels for status messages. */
enum class LogLevel { Quiet = 0, Warn = 1, Info = 2, Debug = 3 };

/** Get the process-wide log level (default Info). */
LogLevel logLevel();

/** Set the process-wide log level. */
void setLogLevel(LogLevel level);

/** printf-style formatting into a std::string. */
std::string vstrprintf(const char *fmt, va_list ap);

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Informative status message (suppressed below LogLevel::Info). */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Debug-level message (suppressed below LogLevel::Debug). */
void debug(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Warning about suspicious-but-survivable conditions. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Error raised by fatal(): the situation is the caller's fault
 * (invalid argument, infeasible budget). Catchable so that tests can
 * assert on failure paths.
 */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg) {}
};

/**
 * Error raised by panic(): an internal invariant was violated; this
 * indicates a bug in the library itself.
 */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg)
        : std::logic_error(msg) {}
};

/** Report an unrecoverable user-caused error. Throws FatalError. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report an internal bug. Throws PanicError. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace util
} // namespace mclp

#endif // MCLP_UTIL_LOGGING_H
