/**
 * @file
 * Framed binary record files: the storage layer under the persistent
 * frontier cache (core/frontier_cache.h).
 *
 * A record file is one header record followed by any number of data
 * records. Every record is length-framed and checksummed
 * (u32 payload length, u64 FNV-1a of the payload, payload bytes), so
 * a reader detects truncation and bit corruption record by record and
 * can keep everything validated before the damage. Writers never
 * touch the destination in place: they stream into "<path>.tmp" and
 * commit() with fsync + atomic rename, so a crash mid-write leaves
 * the previous file intact. Cross-process exclusion uses a separate
 * advisory lock file (FileLock), never the data file itself.
 *
 * Integers are serialized little-endian regardless of host order;
 * doubles as their IEEE-754 bit patterns, so values round-trip
 * bit-exactly — a requirement for the cache's byte-for-byte
 * disk-warm-vs-cold parity invariant.
 */

#ifndef MCLP_UTIL_RECORD_FILE_H
#define MCLP_UTIL_RECORD_FILE_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace mclp {
namespace util {

/**
 * The record checksum: FNV-1a folding eight bytes per step (plus a
 * byte-wise tail), so checking a multi-megabyte cache file costs
 * milliseconds, not tens of them. Not the canonical byte-wise FNV —
 * this is an internal framing checksum, not an interchange hash.
 */
uint64_t fnv1aBytes(const void *data, size_t count);

/**
 * ZigZag mapping for signed deltas: small magnitudes of either sign
 * become small unsigned values, so a varint of a staircase delta
 * (strictly positive DSP steps, strictly negative cycle steps) costs
 * one or two bytes instead of eight.
 */
constexpr uint64_t
zigzagEncode(int64_t value)
{
    return (static_cast<uint64_t>(value) << 1) ^
           static_cast<uint64_t>(value >> 63);
}

constexpr int64_t
zigzagDecode(uint64_t value)
{
    return static_cast<int64_t>(value >> 1) ^
           -static_cast<int64_t>(value & 1);
}

/** Append-only little-endian serializer for record payloads. */
class ByteWriter
{
  public:
    void u8(uint8_t value);
    void u16(uint16_t value);
    void u32(uint32_t value);
    void u64(uint64_t value);
    void i64(int64_t value) { u64(static_cast<uint64_t>(value)); }
    /** IEEE-754 bit pattern; round-trips bit-exactly. */
    void f64(double value);
    /** Bulk little-endian i64 block (one memcpy on LE hosts). */
    void i64Words(const int64_t *words, size_t count);
    /** LEB128 varint, 1-10 bytes (the delta codec's workhorse). */
    void varint(uint64_t value);
    /** Raw byte block (pre-encoded payload tails spliced through). */
    void raw(std::string_view bytes);

    const std::string &bytes() const { return buf_; }

  private:
    std::string buf_;
};

/**
 * Bounds-checked little-endian deserializer. Every read reports
 * success; once a read runs past the end the reader latches !ok() and
 * all further reads fail, so decode loops need only one final check.
 */
class ByteReader
{
  public:
    explicit ByteReader(std::string_view data) : data_(data) {}

    bool u8(uint8_t &value);
    bool u16(uint16_t &value);
    bool u32(uint32_t &value);
    bool u64(uint64_t &value);
    bool i64(int64_t &value);
    bool f64(double &value);
    /** Bulk little-endian i64 block (one memcpy on LE hosts) — the
     * fast path for staircase arrays, where per-field reads would
     * dominate cache load time. */
    bool i64Words(int64_t *words, size_t count);
    /** LEB128 varint; fails (latching !ok()) past 10 bytes. */
    bool varint(uint64_t &value);
    /** Consume everything left as one view (aliases the input). */
    std::string_view rest();

    bool ok() const { return ok_; }
    bool atEnd() const { return ok_ && pos_ == data_.size(); }

  private:
    bool take(void *out, size_t count);

    std::string_view data_;
    size_t pos_ = 0;
    bool ok_ = true;
};

/**
 * Blocking advisory file lock (flock) for cross-process exclusion.
 * The lock file is created if absent and never deleted; the lock is
 * released on destruction (or process death — kernel-managed, so a
 * crashed holder never wedges other CLIs).
 */
class FileLock
{
  public:
    explicit FileLock(const std::string &path);
    ~FileLock();

    FileLock(const FileLock &) = delete;
    FileLock &operator=(const FileLock &) = delete;

    /** False when the lock file could not be created or locked. */
    bool locked() const { return fd_ >= 0; }

  private:
    int fd_ = -1;
};

/**
 * Writes a record file to "<path>.tmp"; commit() fsyncs and renames
 * it over @p path atomically. Without commit(), the destructor
 * removes the temporary and the previous file survives untouched.
 */
class RecordFileWriter
{
  public:
    RecordFileWriter(std::string path, std::string_view header);
    ~RecordFileWriter();

    RecordFileWriter(const RecordFileWriter &) = delete;
    RecordFileWriter &operator=(const RecordFileWriter &) = delete;

    /** False after any I/O error; append/commit then do nothing. */
    bool ok() const { return ok_; }

    void append(std::string_view payload);

    /** Flush, fsync, rename into place. False on any failure. */
    bool commit();

  private:
    std::string path_;
    std::string tmpPath_;
    std::FILE *file_ = nullptr;
    bool ok_ = false;
    bool committed_ = false;
};

/**
 * Reads a record file written by RecordFileWriter. The whole file is
 * slurped at construction (cache files are small); header() and
 * next() then iterate validated records. A framing or checksum
 * mismatch stops iteration and latches sawCorruption() — records
 * already returned were individually validated and stay trustworthy.
 */
class RecordFileReader
{
  public:
    explicit RecordFileReader(const std::string &path);

    /** False when the file does not exist or could not be read. */
    bool opened() const { return opened_; }

    /** The header record; false on a missing/corrupt header. */
    bool header(std::string &out) { return next(out); }

    /** The next data record; false at end of file or on corruption. */
    bool next(std::string &out);

    /**
     * Zero-copy variant: the view aliases the reader's buffer and
     * stays valid until the reader dies — the hot path for loading
     * multi-megabyte cache files.
     */
    bool next(std::string_view &out);

    /** True when iteration ended on a framing/checksum error. */
    bool sawCorruption() const { return corrupt_; }

  private:
    std::string data_;
    size_t pos_ = 0;
    bool opened_ = false;
    bool corrupt_ = false;
};

} // namespace util
} // namespace mclp

#endif // MCLP_UTIL_RECORD_FILE_H
