/**
 * @file
 * Checked numeric parsing for command-line flag values.
 *
 * Every tool used to route flag values through bare atoi()/atoll(),
 * which silently turns garbage ("abc"), trailing junk ("8x"), and
 * out-of-range values into 0 or saturated numbers — exactly the
 * inputs a production front end must reject loudly. These helpers
 * parse the *entire* value with strtoll/strtod, range-check it, and
 * fatal() naming the offending flag and value, so a typo dies at the
 * command line instead of becoming a zero-thread server.
 */

#ifndef MCLP_UTIL_FLAGS_H
#define MCLP_UTIL_FLAGS_H

#include <cstdint>
#include <string>

namespace mclp {
namespace util {

/**
 * Parse @p value as a decimal integer in [@p min, @p max]. The whole
 * string must be consumed (no trailing junk, no empty value); fatal()
 * names @p flag and the rejected value otherwise.
 */
int64_t parseIntFlag(const char *flag, const std::string &value,
                     int64_t min, int64_t max);

/**
 * Parse @p value as a finite double in [@p min, @p max], with the
 * same whole-string and error discipline as parseIntFlag().
 */
double parseDoubleFlag(const char *flag, const std::string &value,
                       double min, double max);

} // namespace util
} // namespace mclp

#endif // MCLP_UTIL_FLAGS_H
