/**
 * @file
 * Lightweight phase profiler for the DSE hot paths.
 *
 * Four phases cover where optimizer time goes: building Pareto
 * staircases, querying them, enumerating tiling options, and walking
 * the memory tradeoff curve. Scopes are placed at coarse boundaries
 * (one per row build, one per probe batch — never per point), so the
 * two clock reads per scope are noise even when profiling stays on
 * for a server's whole lifetime.
 *
 * Attribution is *self time*: a scope's nested child scopes subtract
 * their elapsed time from the parent before the parent records, so
 * the per-phase totals add up to wall time spent in instrumented code
 * with no double counting — a frontier build triggered from inside a
 * query charges the build phase, not both. The nesting bookkeeping is
 * thread local; only the final accumulate touches the shared relaxed
 * atomics, so concurrent optimizer threads never contend here.
 *
 * Zero-cost when disabled: a Scope constructed while profiling is off
 * is one relaxed load and a branch.
 */

#ifndef MCLP_UTIL_PROF_H
#define MCLP_UTIL_PROF_H

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>

namespace mclp {
namespace util {
namespace prof {

enum class Phase : int
{
    FrontierBuild = 0,  ///< staircase construction (grid + sweeps)
    FrontierQuery,      ///< range-table prepare/choose answering
    TilingEnum,         ///< paretoTilingOptions enumeration
    MemoryWalk,         ///< greedy BRAM/bandwidth walk + rebuilds
};

constexpr size_t kPhaseCount = 4;

inline const char *
phaseName(Phase phase)
{
    switch (phase) {
    case Phase::FrontierBuild: return "frontier_build";
    case Phase::FrontierQuery: return "frontier_query";
    case Phase::TilingEnum:    return "tiling_enum";
    case Phase::MemoryWalk:    return "memory_walk";
    }
    return "?";
}

/** Accumulated self time and scope count of one phase. */
struct Counter
{
    uint64_t ns = 0;
    uint64_t calls = 0;
};

namespace detail {

struct State
{
    std::atomic<bool> enabled{false};
    std::array<std::atomic<uint64_t>, kPhaseCount> ns{};
    std::array<std::atomic<uint64_t>, kPhaseCount> calls{};
};

inline State &
state()
{
    static State s;
    return s;
}

class Scope;
inline thread_local Scope *tlsCurrent = nullptr;

} // namespace detail

inline bool
enabled()
{
    return detail::state().enabled.load(std::memory_order_relaxed);
}

inline void
setEnabled(bool on)
{
    detail::state().enabled.store(on, std::memory_order_relaxed);
}

inline void
reset()
{
    detail::State &s = detail::state();
    for (size_t p = 0; p < kPhaseCount; ++p) {
        s.ns[p].store(0, std::memory_order_relaxed);
        s.calls[p].store(0, std::memory_order_relaxed);
    }
}

inline std::array<Counter, kPhaseCount>
snapshot()
{
    detail::State &s = detail::state();
    std::array<Counter, kPhaseCount> out;
    for (size_t p = 0; p < kPhaseCount; ++p) {
        out[p].ns = s.ns[p].load(std::memory_order_relaxed);
        out[p].calls = s.calls[p].load(std::memory_order_relaxed);
    }
    return out;
}

namespace detail {

/** RAII phase scope with self-time attribution (see file comment). */
class Scope
{
  public:
    explicit Scope(Phase phase)
    {
        if (!enabled())
            return;
        active_ = true;
        phase_ = phase;
        parent_ = tlsCurrent;
        tlsCurrent = this;
        start_ = std::chrono::steady_clock::now();
    }

    ~Scope()
    {
        if (!active_)
            return;
        uint64_t elapsed = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - start_)
                .count());
        tlsCurrent = parent_;
        if (parent_)
            parent_->childNs_ += elapsed;
        uint64_t self = elapsed > childNs_ ? elapsed - childNs_ : 0;
        State &s = state();
        size_t p = static_cast<size_t>(phase_);
        s.ns[p].fetch_add(self, std::memory_order_relaxed);
        s.calls[p].fetch_add(1, std::memory_order_relaxed);
    }

    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;

  private:
    bool active_ = false;
    Phase phase_ = Phase::FrontierBuild;
    Scope *parent_ = nullptr;
    uint64_t childNs_ = 0;
    std::chrono::steady_clock::time_point start_{};
};

} // namespace detail

using Scope = detail::Scope;

/**
 * Human-readable phase breakdown, one line per phase:
 * "  frontier_build   12.345 ms   41 scopes".
 */
inline std::string
report()
{
    auto counters = snapshot();
    std::string out;
    for (size_t p = 0; p < kPhaseCount; ++p) {
        char line[128];
        std::snprintf(line, sizeof(line), "  %-15s %10.3f ms %8llu scopes\n",
                      phaseName(static_cast<Phase>(p)),
                      static_cast<double>(counters[p].ns) / 1e6,
                      static_cast<unsigned long long>(counters[p].calls));
        out += line;
    }
    return out;
}

/**
 * Wire-friendly one-token-per-phase form for the serve stats verb:
 * "prof_frontier_build_ms=1.234 prof_frontier_build_calls=41 ...".
 */
inline std::string
statsTokens()
{
    auto counters = snapshot();
    std::string out;
    for (size_t p = 0; p < kPhaseCount; ++p) {
        char tok[128];
        std::snprintf(tok, sizeof(tok), "%sprof_%s_ms=%.3f prof_%s_calls=%llu",
                      p == 0 ? "" : " ",
                      phaseName(static_cast<Phase>(p)),
                      static_cast<double>(counters[p].ns) / 1e6,
                      phaseName(static_cast<Phase>(p)),
                      static_cast<unsigned long long>(counters[p].calls));
        out += tok;
    }
    return out;
}

} // namespace prof
} // namespace util
} // namespace mclp

#endif // MCLP_UTIL_PROF_H
