#include "util/table.h"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "util/logging.h"

namespace mclp {
namespace util {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    if (headers_.empty())
        fatal("TextTable requires at least one column");
}

void
TextTable::addRow(std::vector<std::string> row)
{
    if (row.size() != headers_.size()) {
        fatal("TextTable row arity %zu does not match header arity %zu",
              row.size(), headers_.size());
    }
    rows_.push_back(std::move(row));
    ++numDataRows_;
}

void
TextTable::addSeparator()
{
    rows_.push_back({kSeparatorTag});
}

void
TextTable::setTitle(std::string title)
{
    title_ = std::move(title);
}

void
TextTable::addNote(std::string note)
{
    notes_.push_back(std::move(note));
}

std::string
TextTable::render() const
{
    std::vector<size_t> widths(headers_.size(), 0);
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        if (row.size() == 1 && row[0] == kSeparatorTag)
            continue;
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto hline = [&]() {
        std::string s = "+";
        for (size_t w : widths)
            s += std::string(w + 2, '-') + "+";
        return s + "\n";
    };
    auto emitRow = [&](const std::vector<std::string> &row) {
        std::string s = "|";
        for (size_t c = 0; c < widths.size(); ++c) {
            const std::string &cell = c < row.size() ? row[c] : "";
            s += " " + cell + std::string(widths[c] - cell.size(), ' ')
                 + " |";
        }
        return s + "\n";
    };

    std::ostringstream out;
    if (!title_.empty())
        out << title_ << "\n";
    out << hline() << emitRow(headers_) << hline();
    for (const auto &row : rows_) {
        if (row.size() == 1 && row[0] == kSeparatorTag)
            out << hline();
        else
            out << emitRow(row);
    }
    out << hline();
    for (const auto &note : notes_)
        out << "  note: " << note << "\n";
    return out.str();
}

void
TextTable::print(std::ostream &os) const
{
    os << render();
}

} // namespace util
} // namespace mclp
