#include "util/record_file.h"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <bit>
#include <cstdio>
#include <cstring>
#include <utility>

namespace mclp {
namespace util {

uint64_t
fnv1aBytes(const void *data, size_t count)
{
    const unsigned char *bytes = static_cast<const unsigned char *>(data);
    uint64_t hash = 1469598103934665603ULL;
    size_t i = 0;
    for (; i + 8 <= count; i += 8) {
        uint64_t word;
        std::memcpy(&word, bytes + i, sizeof(word));
        hash ^= word;
        hash *= 1099511628211ULL;
    }
    for (; i < count; ++i) {
        hash ^= bytes[i];
        hash *= 1099511628211ULL;
    }
    return hash;
}

namespace {

void
putLe(std::string &buf, uint64_t value, size_t bytes)
{
    for (size_t i = 0; i < bytes; ++i)
        buf.push_back(static_cast<char>((value >> (8 * i)) & 0xff));
}

} // namespace

void
ByteWriter::u8(uint8_t value)
{
    putLe(buf_, value, 1);
}

void
ByteWriter::u16(uint16_t value)
{
    putLe(buf_, value, 2);
}

void
ByteWriter::u32(uint32_t value)
{
    putLe(buf_, value, 4);
}

void
ByteWriter::u64(uint64_t value)
{
    putLe(buf_, value, 8);
}

void
ByteWriter::f64(double value)
{
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    u64(bits);
}

void
ByteWriter::i64Words(const int64_t *words, size_t count)
{
    if constexpr (std::endian::native == std::endian::little) {
        buf_.append(reinterpret_cast<const char *>(words),
                    count * sizeof(int64_t));
    } else {
        for (size_t i = 0; i < count; ++i)
            i64(words[i]);
    }
}

void
ByteWriter::varint(uint64_t value)
{
    while (value >= 0x80) {
        buf_.push_back(static_cast<char>((value & 0x7f) | 0x80));
        value >>= 7;
    }
    buf_.push_back(static_cast<char>(value));
}

void
ByteWriter::raw(std::string_view bytes)
{
    buf_.append(bytes.data(), bytes.size());
}

bool
ByteReader::take(void *out, size_t count)
{
    if (!ok_ || data_.size() - pos_ < count) {
        ok_ = false;
        return false;
    }
    std::memcpy(out, data_.data() + pos_, count);
    pos_ += count;
    return true;
}

bool
ByteReader::u8(uint8_t &value)
{
    return take(&value, 1);
}

bool
ByteReader::u16(uint16_t &value)
{
    unsigned char raw[2];
    if (!take(raw, sizeof(raw)))
        return false;
    value = static_cast<uint16_t>(raw[0] |
                                  (static_cast<uint16_t>(raw[1]) << 8));
    return true;
}

bool
ByteReader::u32(uint32_t &value)
{
    unsigned char raw[4];
    if (!take(raw, sizeof(raw)))
        return false;
    value = 0;
    for (size_t i = 0; i < sizeof(raw); ++i)
        value |= static_cast<uint32_t>(raw[i]) << (8 * i);
    return true;
}

bool
ByteReader::u64(uint64_t &value)
{
    unsigned char raw[8];
    if (!take(raw, sizeof(raw)))
        return false;
    value = 0;
    for (size_t i = 0; i < sizeof(raw); ++i)
        value |= static_cast<uint64_t>(raw[i]) << (8 * i);
    return true;
}

bool
ByteReader::i64(int64_t &value)
{
    uint64_t raw;
    if (!u64(raw))
        return false;
    value = static_cast<int64_t>(raw);
    return true;
}

bool
ByteReader::f64(double &value)
{
    uint64_t bits;
    if (!u64(bits))
        return false;
    std::memcpy(&value, &bits, sizeof(value));
    return true;
}

bool
ByteReader::i64Words(int64_t *words, size_t count)
{
    if constexpr (std::endian::native == std::endian::little)
        return take(words, count * sizeof(int64_t));
    for (size_t i = 0; i < count; ++i) {
        if (!i64(words[i]))
            return false;
    }
    return true;
}

bool
ByteReader::varint(uint64_t &value)
{
    value = 0;
    for (int shift = 0; shift < 70; shift += 7) {
        uint8_t byte;
        if (!take(&byte, 1))
            return false;
        value |= static_cast<uint64_t>(byte & 0x7f) << shift;
        if (!(byte & 0x80))
            return true;
    }
    ok_ = false;  // 11+ continuation bytes: not a valid varint
    return false;
}

std::string_view
ByteReader::rest()
{
    if (!ok_)
        return {};
    std::string_view tail = data_.substr(pos_);
    pos_ = data_.size();
    return tail;
}

FileLock::FileLock(const std::string &path)
{
    fd_ = ::open(path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
    if (fd_ < 0)
        return;
    if (::flock(fd_, LOCK_EX) != 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

FileLock::~FileLock()
{
    if (fd_ >= 0) {
        ::flock(fd_, LOCK_UN);
        ::close(fd_);
    }
}

RecordFileWriter::RecordFileWriter(std::string path,
                                   std::string_view header)
    : path_(std::move(path)), tmpPath_(path_ + ".tmp")
{
    file_ = std::fopen(tmpPath_.c_str(), "wb");
    ok_ = file_ != nullptr;
    if (ok_)
        append(header);
}

RecordFileWriter::~RecordFileWriter()
{
    if (file_)
        std::fclose(file_);
    if (!committed_)
        ::unlink(tmpPath_.c_str());
}

void
RecordFileWriter::append(std::string_view payload)
{
    if (!ok_)
        return;
    std::string frame;
    putLe(frame, static_cast<uint32_t>(payload.size()), 4);
    putLe(frame, fnv1aBytes(payload.data(), payload.size()), 8);
    ok_ = std::fwrite(frame.data(), 1, frame.size(), file_) ==
              frame.size() &&
          (payload.empty() ||
           std::fwrite(payload.data(), 1, payload.size(), file_) ==
               payload.size());
}

bool
RecordFileWriter::commit()
{
    if (!ok_ || committed_)
        return false;
    ok_ = std::fflush(file_) == 0 && ::fsync(::fileno(file_)) == 0;
    ok_ = std::fclose(file_) == 0 && ok_;
    file_ = nullptr;
    if (!ok_)
        return false;
    if (std::rename(tmpPath_.c_str(), path_.c_str()) != 0) {
        ok_ = false;
        return false;
    }
    committed_ = true;
    return true;
}

RecordFileReader::RecordFileReader(const std::string &path)
{
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (!file)
        return;
    // One allocation, one read: cache files reach tens of megabytes
    // and chunked appends would re-copy the buffer repeatedly.
    long size = -1;
    if (std::fseek(file, 0, SEEK_END) == 0)
        size = std::ftell(file);
    if (size >= 0 && std::fseek(file, 0, SEEK_SET) == 0) {
        data_.resize(static_cast<size_t>(size));
        size_t got = std::fread(data_.data(), 1, data_.size(), file);
        opened_ = got == data_.size() && std::ferror(file) == 0;
    }
    std::fclose(file);
    if (!opened_)
        data_.clear();
}

bool
RecordFileReader::next(std::string &out)
{
    std::string_view view;
    if (!next(view))
        return false;
    out.assign(view.data(), view.size());
    return true;
}

bool
RecordFileReader::next(std::string_view &out)
{
    if (!opened_ || corrupt_)
        return false;
    if (pos_ == data_.size())
        return false;  // clean end of file
    if (data_.size() - pos_ < 12) {
        corrupt_ = true;  // truncated mid-frame
        return false;
    }
    uint32_t length = 0;
    uint64_t checksum = 0;
    for (size_t i = 0; i < 4; ++i)
        length |= static_cast<uint32_t>(
                      static_cast<unsigned char>(data_[pos_ + i]))
                  << (8 * i);
    for (size_t i = 0; i < 8; ++i)
        checksum |= static_cast<uint64_t>(
                        static_cast<unsigned char>(data_[pos_ + 4 + i]))
                    << (8 * i);
    if (data_.size() - pos_ - 12 < length) {
        corrupt_ = true;  // truncated mid-payload
        return false;
    }
    const char *payload = data_.data() + pos_ + 12;
    if (fnv1aBytes(payload, length) != checksum) {
        corrupt_ = true;  // bit rot; nothing after is trustworthy
        return false;
    }
    out = std::string_view(payload, length);
    pos_ += 12 + length;
    return true;
}

} // namespace util
} // namespace mclp
