/**
 * @file
 * String formatting helpers for human-readable bench output.
 */

#ifndef MCLP_UTIL_STRING_UTILS_H
#define MCLP_UTIL_STRING_UTILS_H

#include <cstdint>
#include <string>
#include <vector>

// strprintf() lives in logging.h but is re-exported here: formatting
// helpers are expected to come as one set.
#include "util/logging.h"

namespace mclp {
namespace util {

/** Format an integer with thousands separators, e.g. 2006 -> "2,006". */
std::string withCommas(int64_t value);

/** Format a ratio as a percentage with one decimal, e.g. 0.741 -> "74.1%". */
std::string percent(double ratio);

/** Format a double with @p decimals decimal places. */
std::string fixed(double value, int decimals);

/** Join a list of strings with a separator. */
std::string join(const std::vector<std::string> &parts,
                 const std::string &sep);

/** Split a string on a delimiter character (no empty-token collapsing). */
std::vector<std::string> split(const std::string &text, char delim);

/** True if @p text starts with @p prefix. */
bool startsWith(const std::string &text, const std::string &prefix);

} // namespace util
} // namespace mclp

#endif // MCLP_UTIL_STRING_UTILS_H
