/**
 * @file
 * The int64-sequence hash shared by the optimizer's memo tables.
 *
 * Every cross-run cache in the DSE stack (tiling options, tradeoff
 * curves, frontier rows) keys entries by a flattened sequence of
 * layer dimensions; this is the one hash they all use, so a key built
 * in one layer of the stack hashes identically everywhere.
 */

#ifndef MCLP_UTIL_HASH_H
#define MCLP_UTIL_HASH_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mclp {
namespace util {

/** FNV-1a over an int64 sequence; the memo tables' shared hash. */
inline size_t
hashInt64Words(const int64_t *words, size_t count)
{
    uint64_t hash = 1469598103934665603ULL;
    for (size_t i = 0; i < count; ++i) {
        hash ^= static_cast<uint64_t>(words[i]);
        hash *= 1099511628211ULL;
    }
    return static_cast<size_t>(hash);
}

/** Hash functor for std::vector<int64_t> map keys. */
struct Int64VectorHash
{
    size_t
    operator()(const std::vector<int64_t> &words) const
    {
        return hashInt64Words(words.data(), words.size());
    }
};

} // namespace util
} // namespace mclp

#endif // MCLP_UTIL_HASH_H
