#include "util/flags.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "util/logging.h"

namespace mclp {
namespace util {

int64_t
parseIntFlag(const char *flag, const std::string &value, int64_t min,
             int64_t max)
{
    errno = 0;
    char *end = nullptr;
    long long parsed = std::strtoll(value.c_str(), &end, 10);
    if (value.empty() || end != value.c_str() + value.size())
        fatal("%s: '%s' is not an integer", flag, value.c_str());
    if (errno == ERANGE || parsed < min || parsed > max)
        fatal("%s: %s is out of range [%lld, %lld]", flag,
              value.c_str(), static_cast<long long>(min),
              static_cast<long long>(max));
    return parsed;
}

double
parseDoubleFlag(const char *flag, const std::string &value, double min,
                double max)
{
    errno = 0;
    char *end = nullptr;
    double parsed = std::strtod(value.c_str(), &end);
    if (value.empty() || end != value.c_str() + value.size())
        fatal("%s: '%s' is not a number", flag, value.c_str());
    // ERANGE covers overflow to +-HUGE_VAL and underflow to denormal
    // territory; both are garbage as flag values.
    if (errno == ERANGE || !std::isfinite(parsed) || parsed < min ||
        parsed > max)
        fatal("%s: %s is out of range [%g, %g]", flag, value.c_str(),
              min, max);
    return parsed;
}

} // namespace util
} // namespace mclp
