/**
 * @file
 * Chunked bump allocator backing the optimizer's long-lived flat
 * arrays (frontier staircases, walk-trace steps).
 *
 * The build/walk paths used to grow many small std::vectors whose
 * churn (allocate, copy, free, repeat) showed up in the cold-run
 * profile. An Arena replaces that with pointer-bump allocation from
 * chunked blocks: allocation is a few instructions, freed memory is
 * reclaimed all at once when the owner dies, and bytesReserved() gives
 * exact accounting for the SessionRegistry byte budget.
 *
 * Ownership follows the data, not the table: ShapeFrontier owns the
 * arena holding its SoA arrays and PartitionTrace owns the arena
 * behind its step log, because both objects are shared (via
 * FrontierRowStore / FrontierCache) beyond the lifetime of the
 * FrontierTable or TradeoffCurveCache that built them — a
 * table-owned arena would dangle. See docs/ARCHITECTURE.md ("Hot
 * paths and memory layout").
 *
 * Not thread safe; guard an arena by whatever lock guards its owner
 * (the frontier-row mutex, the trace mutex).
 */

#ifndef MCLP_UTIL_ARENA_H
#define MCLP_UTIL_ARENA_H

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

namespace mclp {
namespace util {

class Arena
{
  public:
    Arena() = default;

    /** @p chunk_bytes sizes new blocks (exact-fit for larger asks). */
    explicit Arena(size_t chunk_bytes) : chunkBytes_(chunk_bytes) {}

    Arena(Arena &&) noexcept = default;
    Arena &operator=(Arena &&) noexcept = default;
    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    /** Bump-allocate @p bytes aligned to @p align (a power of two). */
    void *
    allocate(size_t bytes, size_t align = alignof(std::max_align_t))
    {
        size_t cur = (cursor_ + align - 1) & ~(align - 1);
        if (!chunks_.empty() && cur + bytes <= chunks_.back().size) {
            cursor_ = cur + bytes;
            return chunks_.back().data.get() + cur;
        }
        size_t size = bytes > chunkBytes_ ? bytes : chunkBytes_;
        Chunk chunk;
        chunk.data = std::make_unique<unsigned char[]>(size);
        chunk.size = size;
        reserved_ += size;
        chunks_.push_back(std::move(chunk));
        cursor_ = bytes;
        return chunks_.back().data.get();
    }

    /** Typed array allocation; T must be trivially copyable. */
    template <typename T>
    T *
    allocateArray(size_t count)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        return static_cast<T *>(
            allocate(count * sizeof(T), alignof(T)));
    }

    /** Total bytes of all chunks (the owner's resident footprint). */
    size_t bytesReserved() const { return reserved_; }

    /** Drop every chunk (invalidates all outstanding pointers). */
    void
    clear()
    {
        chunks_.clear();
        cursor_ = 0;
        reserved_ = 0;
    }

  private:
    struct Chunk
    {
        std::unique_ptr<unsigned char[]> data;
        size_t size = 0;
    };

    std::vector<Chunk> chunks_;
    size_t cursor_ = 0;     ///< bump offset within chunks_.back()
    size_t reserved_ = 0;
    size_t chunkBytes_ = 4096;
};

/**
 * Contiguous grow-only array of trivially copyable T backed by an
 * Arena. Growth allocates a doubled block and memcpys — the old block
 * stays in the arena until the owner dies, which is the deal an arena
 * makes: a little slack for allocation at pointer-bump speed and
 * wholesale reclamation. Storage stays contiguous so binary searches
 * and SIMD scans read it directly.
 */
template <typename T>
class ArenaVector
{
    static_assert(std::is_trivially_copyable_v<T>);

  public:
    ArenaVector() = default;

    /** Bind to the backing arena; call before the first push_back. */
    void attach(Arena *arena) { arena_ = arena; }

    const T *begin() const { return data_; }
    const T *end() const { return data_ + size_; }
    const T *data() const { return data_; }
    size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    const T &operator[](size_t i) const { return data_[i]; }
    T &operator[](size_t i) { return data_[i]; }
    const T &back() const { return data_[size_ - 1]; }
    size_t capacity() const { return capacity_; }

    void
    push_back(const T &value)
    {
        if (size_ == capacity_)
            grow(size_ + 1);
        data_[size_++] = value;
    }

    /** Replace the contents with a copy of [src, src + count). */
    void
    assign(const T *src, size_t count)
    {
        if (count > capacity_)
            grow(count);
        if (count > 0)
            std::memcpy(data_, src, count * sizeof(T));
        size_ = count;
    }

    void clear() { size_ = 0; }

  private:
    void
    grow(size_t need)
    {
        size_t cap = capacity_ ? capacity_ * 2 : 16;
        if (cap < need)
            cap = need;
        T *bigger = arena_->allocateArray<T>(cap);
        if (size_ > 0)
            std::memcpy(bigger, data_, size_ * sizeof(T));
        data_ = bigger;
        capacity_ = cap;
    }

    Arena *arena_ = nullptr;
    T *data_ = nullptr;
    size_t size_ = 0;
    size_t capacity_ = 0;
};

} // namespace util
} // namespace mclp

#endif // MCLP_UTIL_ARENA_H
