/**
 * @file
 * A small work-stealing thread pool for the optimizer's embarrassingly
 * parallel stages (frontier construction across layer ranges, the
 * independent ordering-heuristic runs).
 *
 * Parallel loops are published as jobs on a shared board; idle workers
 * steal iteration indices from the oldest unfinished job through an
 * atomic cursor, so load balances at index granularity without
 * per-iteration locking. Waiting threads help execute outstanding
 * work instead of blocking, so nested parallelFor calls (a heuristic
 * task fanning out frontier builds) cannot deadlock, and a 1-thread
 * pool degenerates to plain serial execution on the caller.
 */

#ifndef MCLP_UTIL_THREAD_POOL_H
#define MCLP_UTIL_THREAD_POOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace mclp {
namespace util {

class ThreadPool
{
  public:
    /**
     * @param threads worker count; 0 picks the hardware concurrency.
     * A pool of 1 spawns no OS threads: every task runs inline on the
     * submitting thread, which keeps single-threaded runs bitwise
     * deterministic and cheap.
     */
    explicit ThreadPool(int threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of threads that can make progress (workers + caller). */
    size_t size() const { return workers_.size() + 1; }

    /**
     * Run fn(0), ..., fn(n - 1), possibly concurrently, returning when
     * all calls finished. The caller participates, and indices are
     * handed out through a shared counter, so any schedule covers every
     * index exactly once. fn must not throw.
     */
    void parallelFor(size_t n, const std::function<void(size_t)> &fn);

  private:
    struct Job
    {
        size_t n = 0;
        const std::function<void(size_t)> *fn = nullptr;
        std::atomic<size_t> next{0};
        std::atomic<size_t> done{0};
    };

    void workerLoop(size_t self);
    static void runJob(Job &job);

    /** Oldest job with unclaimed indices, excluding @p except. */
    std::shared_ptr<Job> stealLocked(const Job *except);

    std::vector<std::thread> workers_;
    std::mutex mutex_;
    std::condition_variable wake_;
    std::deque<std::shared_ptr<Job>> jobs_;  ///< active jobs
    bool stop_ = false;
};

/** Resolve a thread-count option: 0 = hardware concurrency, min 1. */
int resolveThreads(int threads);

} // namespace util
} // namespace mclp

#endif // MCLP_UTIL_THREAD_POOL_H
