#include "util/string_utils.h"

#include <cstdio>
#include <sstream>

#include "util/logging.h"

namespace mclp {
namespace util {

std::string
withCommas(int64_t value)
{
    bool negative = value < 0;
    uint64_t v = negative ? static_cast<uint64_t>(-(value + 1)) + 1
                          : static_cast<uint64_t>(value);
    std::string digits = std::to_string(v);
    std::string out;
    int count = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (count != 0 && count % 3 == 0)
            out.push_back(',');
        out.push_back(*it);
        ++count;
    }
    if (negative)
        out.push_back('-');
    return std::string(out.rbegin(), out.rend());
}

std::string
percent(double ratio)
{
    return strprintf("%.1f%%", ratio * 100.0);
}

std::string
fixed(double value, int decimals)
{
    return strprintf("%.*f", decimals, value);
}

std::string
join(const std::vector<std::string> &parts, const std::string &sep)
{
    std::string out;
    for (size_t i = 0; i < parts.size(); ++i) {
        if (i != 0)
            out += sep;
        out += parts[i];
    }
    return out;
}

std::vector<std::string>
split(const std::string &text, char delim)
{
    std::vector<std::string> out;
    std::string cur;
    for (char ch : text) {
        if (ch == delim) {
            out.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(ch);
        }
    }
    out.push_back(cur);
    return out;
}

bool
startsWith(const std::string &text, const std::string &prefix)
{
    return text.size() >= prefix.size() &&
           text.compare(0, prefix.size(), prefix) == 0;
}

} // namespace util
} // namespace mclp
