/**
 * @file
 * Portable SIMD kernels for the optimizer's integer hot loops.
 *
 * All four kernels are pure int64 reductions/updates over contiguous
 * arrays — the exact shapes of the ShapeFrontier rank-1 grid update,
 * the dense-sweep occupancy scan, and the MemoryOptimizer batched
 * probe passes. Integer math means the vector and scalar paths are
 * bit-identical by construction; no floating point ever enters a
 * kernel.
 *
 * The vector path uses GCC/Clang vector extensions (selected at
 * compile time; no runtime CPU dispatch) and falls back to the scalar
 * twins when the compiler lacks them or when -DMCLP_NO_SIMD is set.
 * The scalar twins are compiled unconditionally and exposed under
 * scalar::, so tests fuzz vector vs scalar in one binary; the
 * setForceScalar() hook routes the public entry points through the
 * twins at runtime for whole-pipeline parity tests (set it only from
 * single-threaded test setup).
 *
 * Loads and stores go through std::memcpy: int64 arrays are only
 * 8-byte aligned, and memcpy is the UB-free unaligned access idiom —
 * compilers lower it to plain vector load/store instructions.
 */

#ifndef MCLP_UTIL_SIMD_H
#define MCLP_UTIL_SIMD_H

#include <atomic>
#include <cstdint>
#include <cstring>
#include <limits>

#if !defined(MCLP_NO_SIMD) && (defined(__GNUC__) || defined(__clang__))
#define MCLP_SIMD_VECTOR_EXT 1
#endif

namespace mclp {
namespace util {
namespace simd {

/** Lanes per vector op; tests cover every tail length 0..kLanes. */
constexpr size_t kLanes = 4;

namespace scalar {

/** dst[i] += scale * src[i] — the staircase grid's rank-1 update. */
inline void
addScaledI64(int64_t *dst, const int64_t *src, int64_t scale, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        dst[i] += scale * src[i];
}

/**
 * dst[i] += src[i] — the rank-1 update's run form: consecutive Tn
 * breakpoints sharing one ceil(N/Tn) add the same precomputed row, so
 * the hot loop is a pure add (SSE2 paddq) instead of an emulated
 * 64-bit vector multiply.
 */
inline void
addI64(int64_t *dst, const int64_t *src, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        dst[i] += src[i];
}

/** First index with v[i] >= 0, or n — the dense-sweep bucket skip. */
inline size_t
findNonNegativeI64(const int64_t *v, size_t n)
{
    for (size_t i = 0; i < n; ++i) {
        if (v[i] >= 0)
            return i;
    }
    return n;
}

/**
 * One fused probe pass: min of levels[i] over gates[i] <= gate_cap
 * (INT64_MAX when no gate admits), and max of levels[i] strictly
 * below cap (INT64_MIN when none is below).
 */
inline void
capScanI64(const int64_t *levels, const int64_t *gates,
           int64_t gate_cap, int64_t cap, size_t n,
           int64_t &min_gated, int64_t &max_below)
{
    int64_t lo = std::numeric_limits<int64_t>::max();
    int64_t hi = std::numeric_limits<int64_t>::min();
    for (size_t i = 0; i < n; ++i) {
        if (gates[i] <= gate_cap && levels[i] < lo)
            lo = levels[i];
        if (levels[i] < cap && levels[i] > hi)
            hi = levels[i];
    }
    min_gated = lo;
    max_below = hi;
}

/** First index with a[i] <= cap_a && b[i] <= cap_b, or n. */
inline size_t
firstWithinCapsI64(const int64_t *a, const int64_t *b, int64_t cap_a,
                   int64_t cap_b, size_t n)
{
    for (size_t i = 0; i < n; ++i) {
        if (a[i] <= cap_a && b[i] <= cap_b)
            return i;
    }
    return n;
}

} // namespace scalar

namespace detail {

inline std::atomic<bool> g_forceScalar{false};

#if MCLP_SIMD_VECTOR_EXT
typedef int64_t V4 __attribute__((vector_size(4 * sizeof(int64_t))));

inline V4
load(const int64_t *p)
{
    V4 v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

inline void
store(int64_t *p, V4 v)
{
    std::memcpy(p, &v, sizeof(v));
}

inline V4
splat(int64_t x)
{
    return V4{x, x, x, x};
}

/** Lane-wise select: mask lanes are all-ones / all-zeros. */
inline V4
select(V4 mask, V4 a, V4 b)
{
    return (a & mask) | (b & ~mask);
}
#endif

} // namespace detail

/**
 * Route the public kernels through the scalar twins at runtime (for
 * in-binary SIMD-vs-scalar parity tests). Not for concurrent use:
 * flip it only while no optimizer threads run.
 */
inline void
setForceScalar(bool on)
{
    detail::g_forceScalar.store(on, std::memory_order_relaxed);
}

inline bool
forceScalar()
{
    return detail::g_forceScalar.load(std::memory_order_relaxed);
}

inline void
addScaledI64(int64_t *dst, const int64_t *src, int64_t scale, size_t n)
{
#if MCLP_SIMD_VECTOR_EXT
    if (!forceScalar()) {
        using detail::V4;
        V4 vscale = detail::splat(scale);
        size_t i = 0;
        for (; i + kLanes <= n; i += kLanes) {
            V4 d = detail::load(dst + i);
            V4 s = detail::load(src + i);
            detail::store(dst + i, d + s * vscale);
        }
        scalar::addScaledI64(dst + i, src + i, scale, n - i);
        return;
    }
#endif
    scalar::addScaledI64(dst, src, scale, n);
}

inline void
addI64(int64_t *dst, const int64_t *src, size_t n)
{
#if MCLP_SIMD_VECTOR_EXT
    if (!forceScalar()) {
        using detail::V4;
        size_t i = 0;
        for (; i + kLanes <= n; i += kLanes) {
            V4 d = detail::load(dst + i);
            V4 s = detail::load(src + i);
            detail::store(dst + i, d + s);
        }
        scalar::addI64(dst + i, src + i, n - i);
        return;
    }
#endif
    scalar::addI64(dst, src, n);
}

inline size_t
findNonNegativeI64(const int64_t *v, size_t n)
{
#if MCLP_SIMD_VECTOR_EXT
    if (!forceScalar()) {
        using detail::V4;
        size_t i = 0;
        for (; i + kLanes <= n; i += kLanes) {
            V4 x = detail::load(v + i);
            V4 ge = x >= detail::splat(0);
            if (ge[0] | ge[1] | ge[2] | ge[3]) {
                for (size_t l = 0; l < kLanes; ++l) {
                    if (v[i + l] >= 0)
                        return i + l;
                }
            }
        }
        size_t tail = scalar::findNonNegativeI64(v + i, n - i);
        return tail == n - i ? n : i + tail;
    }
#endif
    return scalar::findNonNegativeI64(v, n);
}

inline void
capScanI64(const int64_t *levels, const int64_t *gates, int64_t gate_cap,
           int64_t cap, size_t n, int64_t &min_gated, int64_t &max_below)
{
#if MCLP_SIMD_VECTOR_EXT
    if (!forceScalar()) {
        using detail::V4;
        V4 vgate_cap = detail::splat(gate_cap);
        V4 vcap = detail::splat(cap);
        V4 vlo = detail::splat(std::numeric_limits<int64_t>::max());
        V4 vhi = detail::splat(std::numeric_limits<int64_t>::min());
        size_t i = 0;
        for (; i + kLanes <= n; i += kLanes) {
            V4 lv = detail::load(levels + i);
            V4 gt = detail::load(gates + i);
            V4 gated = detail::select(gt <= vgate_cap, lv, vlo);
            vlo = detail::select(gated < vlo, gated, vlo);
            V4 below = detail::select(lv < vcap, lv, vhi);
            vhi = detail::select(below > vhi, below, vhi);
        }
        int64_t lo = std::numeric_limits<int64_t>::max();
        int64_t hi = std::numeric_limits<int64_t>::min();
        for (size_t l = 0; l < kLanes; ++l) {
            lo = vlo[l] < lo ? vlo[l] : lo;
            hi = vhi[l] > hi ? vhi[l] : hi;
        }
        int64_t tlo, thi;
        scalar::capScanI64(levels + i, gates + i, gate_cap, cap, n - i,
                           tlo, thi);
        min_gated = tlo < lo ? tlo : lo;
        max_below = thi > hi ? thi : hi;
        return;
    }
#endif
    scalar::capScanI64(levels, gates, gate_cap, cap, n, min_gated,
                       max_below);
}

inline size_t
firstWithinCapsI64(const int64_t *a, const int64_t *b, int64_t cap_a,
                   int64_t cap_b, size_t n)
{
#if MCLP_SIMD_VECTOR_EXT
    if (!forceScalar()) {
        using detail::V4;
        V4 vcap_a = detail::splat(cap_a);
        V4 vcap_b = detail::splat(cap_b);
        size_t i = 0;
        for (; i + kLanes <= n; i += kLanes) {
            V4 ok = (detail::load(a + i) <= vcap_a) &
                    (detail::load(b + i) <= vcap_b);
            if (ok[0] | ok[1] | ok[2] | ok[3]) {
                for (size_t l = 0; l < kLanes; ++l) {
                    if (a[i + l] <= cap_a && b[i + l] <= cap_b)
                        return i + l;
                }
            }
        }
        size_t tail =
            scalar::firstWithinCapsI64(a + i, b + i, cap_a, cap_b, n - i);
        return tail == n - i ? n : i + tail;
    }
#endif
    return scalar::firstWithinCapsI64(a, b, cap_a, cap_b, n);
}

} // namespace simd
} // namespace util
} // namespace mclp

#endif // MCLP_UTIL_SIMD_H
