/**
 * @file
 * Small integer-math helpers used throughout the models and optimizer.
 */

#ifndef MCLP_UTIL_MATH_H
#define MCLP_UTIL_MATH_H

#include <cstdint>
#include <type_traits>

#include "util/logging.h"

namespace mclp {
namespace util {

/** Ceiling division for non-negative integers: ceil(a / b). */
template <typename T>
constexpr T
ceilDiv(T a, T b)
{
    static_assert(std::is_integral_v<T>);
    return (a + b - 1) / b;
}

/** Round @p a up to the next multiple of @p b. */
template <typename T>
constexpr T
roundUp(T a, T b)
{
    static_assert(std::is_integral_v<T>);
    return ceilDiv(a, b) * b;
}

/** Clamp @p v to [lo, hi]. */
template <typename T>
constexpr T
clamp(T v, T lo, T hi)
{
    return v < lo ? lo : (v > hi ? hi : v);
}

/** Squared Euclidean distance between 2-D integer points. */
inline int64_t
distance2(int64_t x0, int64_t y0, int64_t x1, int64_t y1)
{
    int64_t dx = x0 - x1;
    int64_t dy = y0 - y1;
    return dx * dx + dy * dy;
}

/**
 * Deterministic 64-bit RNG (splitmix64). Used for synthetic tensors
 * and property tests; never seeded from the clock so all runs are
 * reproducible.
 */
class SplitMix64
{
  public:
    explicit SplitMix64(uint64_t seed) : state_(seed) {}

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /** Uniform integer in [lo, hi] (inclusive). */
    int64_t
    nextInt(int64_t lo, int64_t hi)
    {
        if (lo > hi)
            panic("SplitMix64::nextInt: empty range [%lld, %lld]",
                  static_cast<long long>(lo), static_cast<long long>(hi));
        uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
        return lo + static_cast<int64_t>(next() % span);
    }

    /** Uniform float in [-1, 1). */
    double
    nextSymmetric()
    {
        return (static_cast<double>(next() >> 11) /
                static_cast<double>(1ULL << 53)) * 2.0 - 1.0;
    }

  private:
    uint64_t state_;
};

} // namespace util
} // namespace mclp

#endif // MCLP_UTIL_MATH_H
