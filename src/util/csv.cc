#include "util/csv.h"

#include <fstream>

#include "util/logging.h"

namespace mclp {
namespace util {

CsvWriter::CsvWriter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    if (headers_.empty())
        fatal("CsvWriter requires at least one column");
}

void
CsvWriter::addRow(const std::vector<std::string> &row)
{
    if (row.size() != headers_.size()) {
        fatal("CsvWriter row arity %zu does not match header arity %zu",
              row.size(), headers_.size());
    }
    rows_.push_back(row);
}

std::string
CsvWriter::escape(const std::string &field)
{
    bool needs_quotes = field.find_first_of(",\"\n") != std::string::npos;
    if (!needs_quotes)
        return field;
    std::string out = "\"";
    for (char ch : field) {
        if (ch == '"')
            out += "\"\"";
        else
            out.push_back(ch);
    }
    out += "\"";
    return out;
}

std::string
CsvWriter::serialize() const
{
    std::string out;
    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t i = 0; i < row.size(); ++i) {
            if (i != 0)
                out += ",";
            out += escape(row[i]);
        }
        out += "\n";
    };
    emit(headers_);
    for (const auto &row : rows_)
        emit(row);
    return out;
}

bool
CsvWriter::writeFile(const std::string &path) const
{
    std::ofstream ofs(path);
    if (!ofs) {
        warn("CsvWriter: cannot open %s for writing", path.c_str());
        return false;
    }
    ofs << serialize();
    return static_cast<bool>(ofs);
}

} // namespace util
} // namespace mclp
