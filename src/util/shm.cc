#include "util/shm.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>

namespace mclp {
namespace util {

MappedFile
MappedFile::map(const std::string &path)
{
    MappedFile mapped;
    int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0)
        return mapped;
    struct stat st;
    if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
        ::close(fd);
        return mapped;
    }
    size_t size = static_cast<size_t>(st.st_size);
    void *addr = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
    ::close(fd);  // the mapping pins the inode; the fd is done
    if (addr == MAP_FAILED)
        return mapped;
    mapped.addr_ = addr;
    mapped.size_ = size;
    return mapped;
}

void
MappedFile::unmap()
{
    if (addr_) {
        ::munmap(addr_, size_);
        addr_ = nullptr;
        size_ = 0;
    }
}

bool
publishFileAtomic(const std::string &path, std::string_view bytes)
{
    std::string tmp = path + ".tmp";
    std::FILE *file = std::fopen(tmp.c_str(), "wb");
    if (!file)
        return false;
    bool ok = bytes.empty() ||
              std::fwrite(bytes.data(), 1, bytes.size(), file) ==
                  bytes.size();
    ok = std::fflush(file) == 0 && ok;
    ok = ::fsync(::fileno(file)) == 0 && ok;
    ok = std::fclose(file) == 0 && ok;
    if (!ok || std::rename(tmp.c_str(), path.c_str()) != 0) {
        ::unlink(tmp.c_str());
        return false;
    }
    return true;
}

} // namespace util
} // namespace mclp
