/**
 * @file
 * ASCII table printer used by the benchmark harness to render the
 * paper's tables in a terminal.
 */

#ifndef MCLP_UTIL_TABLE_H
#define MCLP_UTIL_TABLE_H

#include <iosfwd>
#include <string>
#include <vector>

namespace mclp {
namespace util {

/**
 * A simple column-aligned text table. Rows are vectors of strings; the
 * printer pads every column to its maximum width. A title and optional
 * per-table footnotes are supported so bench output is self-describing.
 */
class TextTable
{
  public:
    /** Create a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Append a data row; must have the same arity as the header. */
    void addRow(std::vector<std::string> row);

    /** Append a horizontal separator line. */
    void addSeparator();

    /** Set the table title printed above the header. */
    void setTitle(std::string title);

    /** Add a footnote line printed below the table. */
    void addNote(std::string note);

    /** Render the table to a string. */
    std::string render() const;

    /** Render the table to a stream. */
    void print(std::ostream &os) const;

    /** Number of data rows added so far. */
    size_t rowCount() const { return numDataRows_; }

  private:
    static constexpr const char *kSeparatorTag = "\x01--";

    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
    std::string title_;
    std::vector<std::string> notes_;
    size_t numDataRows_ = 0;
};

} // namespace util
} // namespace mclp

#endif // MCLP_UTIL_TABLE_H
