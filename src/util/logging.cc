#include "util/logging.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace mclp {
namespace util {

namespace {

LogLevel g_level = LogLevel::Info;

/** Print a tagged message to stderr if the level is enabled. */
void
emit(LogLevel min_level, const char *tag, const char *fmt, va_list ap)
{
    if (g_level < min_level)
        return;
    std::string msg = vstrprintf(fmt, ap);
    std::fprintf(stderr, "%s: %s\n", tag, msg.c_str());
}

} // namespace

LogLevel
logLevel()
{
    return g_level;
}

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

std::string
vstrprintf(const char *fmt, va_list ap)
{
    va_list ap_copy;
    va_copy(ap_copy, ap);
    int len = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (len < 0)
        return "<format error>";
    std::vector<char> buf(static_cast<size_t>(len) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), static_cast<size_t>(len));
}

std::string
strprintf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrprintf(fmt, ap);
    va_end(ap);
    return s;
}

void
inform(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    emit(LogLevel::Info, "info", fmt, ap);
    va_end(ap);
}

void
debug(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    emit(LogLevel::Debug, "debug", fmt, ap);
    va_end(ap);
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    emit(LogLevel::Warn, "warn", fmt, ap);
    va_end(ap);
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    throw FatalError(msg);
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    throw PanicError(msg);
}

} // namespace util
} // namespace mclp
