/**
 * @file
 * Shared-memory primitives for the host-wide cache tier: read-only
 * file mappings and atomic whole-file publication.
 *
 * The frontier-cache segment (core/frontier_cache_segment.h) is an
 * immutable image that every worker process on a host maps read-only:
 * N workers then share one page-cache copy of the staircase bytes
 * instead of N private decoded heaps. Immutability is what makes the
 * sharing trivially safe — a segment file is never modified in place;
 * publishers write a complete new image to "<path>.tmp" and rename it
 * over the old one (publishFileAtomic), so a reader either maps the
 * previous complete generation or the new complete generation, never
 * a torn mix. Existing mappings keep the *old* inode alive until they
 * unmap (POSIX rename semantics), so a publish never invalidates a
 * worker mid-read; workers pick up new generations by re-opening
 * (MappedFile::map) and checking the embedded generation stamp.
 */

#ifndef MCLP_UTIL_SHM_H
#define MCLP_UTIL_SHM_H

#include <cstddef>
#include <string>
#include <string_view>

namespace mclp {
namespace util {

/**
 * A read-only shared mapping of a whole file (PROT_READ, MAP_SHARED).
 * The fd is closed right after mmap — the mapping keeps the inode
 * alive — so a mapped segment costs no descriptor. Movable, not
 * copyable; unmaps on destruction.
 */
class MappedFile
{
  public:
    MappedFile() = default;
    ~MappedFile() { unmap(); }
    MappedFile(MappedFile &&other) noexcept
        : addr_(other.addr_), size_(other.size_)
    {
        other.addr_ = nullptr;
        other.size_ = 0;
    }
    MappedFile &operator=(MappedFile &&other) noexcept
    {
        if (this != &other) {
            unmap();
            addr_ = other.addr_;
            size_ = other.size_;
            other.addr_ = nullptr;
            other.size_ = 0;
        }
        return *this;
    }
    MappedFile(const MappedFile &) = delete;
    MappedFile &operator=(const MappedFile &) = delete;

    /**
     * Map @p path read-only in its entirety. An absent, empty, or
     * unmappable file yields an invalid (empty) mapping — callers
     * treat that as "no segment", never an error.
     */
    static MappedFile map(const std::string &path);

    bool valid() const { return addr_ != nullptr; }
    const unsigned char *data() const
    {
        return static_cast<const unsigned char *>(addr_);
    }
    size_t size() const { return size_; }
    std::string_view view() const
    {
        return {static_cast<const char *>(addr_), size_};
    }

  private:
    void unmap();

    void *addr_ = nullptr;
    size_t size_ = 0;
};

/**
 * Publish @p bytes as the complete new contents of @p path: write to
 * "<path>.tmp", fsync, rename atomically. On any failure the previous
 * file survives untouched and false is returned. Readers holding a
 * mapping of the old file keep reading the old (complete) image.
 */
bool publishFileAtomic(const std::string &path, std::string_view bytes);

} // namespace util
} // namespace mclp

#endif // MCLP_UTIL_SHM_H
