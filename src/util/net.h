/**
 * @file
 * Small file-descriptor and socket helpers shared by the event-driven
 * server (src/service/server.h), its tests, the chaos client, and the
 * concurrent-serving benchmark.
 *
 * Everything here is a thin, error-string-returning wrapper over the
 * POSIX calls: no framework, no ownership magic beyond ScopedFd. The
 * server's event loop itself lives in the service layer — these are
 * just the primitives it (and the clients poking at it) need: listen
 * and connect on Unix/TCP stream sockets, non-blocking mode, a
 * self-pipe for cross-thread/signal wakeups, and blocking write-all /
 * read-all loops for simple clients.
 */

#ifndef MCLP_UTIL_NET_H
#define MCLP_UTIL_NET_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace mclp {
namespace util {

/** Close-on-destruction fd owner (movable, non-copyable). */
class ScopedFd
{
  public:
    ScopedFd() = default;
    explicit ScopedFd(int fd) : fd_(fd) {}
    ~ScopedFd() { reset(); }
    ScopedFd(ScopedFd &&other) noexcept : fd_(other.release()) {}
    ScopedFd &operator=(ScopedFd &&other) noexcept
    {
        if (this != &other) {
            reset();
            fd_ = other.release();
        }
        return *this;
    }
    ScopedFd(const ScopedFd &) = delete;
    ScopedFd &operator=(const ScopedFd &) = delete;

    int get() const { return fd_; }
    bool valid() const { return fd_ >= 0; }
    int release()
    {
        int fd = fd_;
        fd_ = -1;
        return fd;
    }
    void reset(int fd = -1);

  private:
    int fd_ = -1;
};

/** Put @p fd into non-blocking mode; false + errno on failure. */
bool setNonBlocking(int fd);

/**
 * Create, bind, and listen on a Unix stream socket at @p path
 * (unlinking any stale socket first). Returns the listener fd, or -1
 * with a human-readable reason in @p error.
 */
int listenUnix(const std::string &path, std::string *error);

/**
 * Create, bind, and listen on a loopback TCP socket (127.0.0.1:@p
 * port; port 0 asks the kernel for an ephemeral port). On success the
 * actually bound port lands in @p bound_port. Returns the listener
 * fd, or -1 with a reason in @p error. Loopback only by design: the
 * serving protocol has no authentication, so exposure beyond the
 * host is a deployment's (proxy's) decision, not a default.
 */
int listenTcp(uint16_t port, uint16_t *bound_port, std::string *error);

/** Blocking connect to a Unix stream socket; -1 + errno on failure. */
int connectUnix(const std::string &path);

/** Blocking connect to 127.0.0.1:@p port; -1 + errno on failure. */
int connectTcp(uint16_t port);

/**
 * A non-blocking self-pipe: the poll loop watches readFd(); any
 * thread (or signal handler — write() is async-signal-safe) calls
 * notify() to wake it. Coalesces naturally: a full pipe means wakeups
 * are already pending, so the failed write is harmless.
 */
class SelfPipe
{
  public:
    SelfPipe();
    ~SelfPipe() = default;
    SelfPipe(const SelfPipe &) = delete;
    SelfPipe &operator=(const SelfPipe &) = delete;

    bool valid() const { return read_.valid() && write_.valid(); }
    int readFd() const { return read_.get(); }
    void notify() const;
    /** Drain pending wakeup bytes (call when readFd() polls ready). */
    void drain() const;

  private:
    ScopedFd read_;
    ScopedFd write_;
};

/**
 * Blocking write of the whole buffer (retrying on EINTR and short
 * writes; sockets are sent with MSG_NOSIGNAL so a dead peer surfaces
 * as EPIPE, never SIGPIPE). False + errno on failure.
 */
bool writeAll(int fd, const void *data, size_t size);

/** Read until EOF into @p out (client-side response slurp). False +
 * errno on a read error. */
bool readAll(int fd, std::string *out);

/** Monotonic milliseconds (deadline arithmetic for the event loop). */
int64_t monotonicMs();

} // namespace util
} // namespace mclp

#endif // MCLP_UTIL_NET_H
