/**
 * @file
 * Minimal CSV writer so benchmark series (Figures 6 and 7) can be
 * exported for plotting alongside the textual output.
 */

#ifndef MCLP_UTIL_CSV_H
#define MCLP_UTIL_CSV_H

#include <string>
#include <vector>

namespace mclp {
namespace util {

/**
 * Accumulates rows and writes an RFC-4180-ish CSV file. Fields
 * containing commas, quotes, or newlines are quoted.
 */
class CsvWriter
{
  public:
    /** Create a writer with the given column headers. */
    explicit CsvWriter(std::vector<std::string> headers);

    /** Append a data row; must match the header arity. */
    void addRow(const std::vector<std::string> &row);

    /** Serialize all rows (header first) to a string. */
    std::string serialize() const;

    /**
     * Write the CSV to @p path. Returns true on success; failure to
     * open the file is reported with warn() and returns false (bench
     * output to stdout is the primary artifact).
     */
    bool writeFile(const std::string &path) const;

    /** Number of data rows. */
    size_t rowCount() const { return rows_.size(); }

  private:
    static std::string escape(const std::string &field);

    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace util
} // namespace mclp

#endif // MCLP_UTIL_CSV_H
