#include "util/net.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "util/logging.h"

namespace mclp {
namespace util {

void
ScopedFd::reset(int fd)
{
    if (fd_ >= 0)
        ::close(fd_);
    fd_ = fd;
}

bool
setNonBlocking(int fd)
{
    int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0)
        return false;
    return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

int
listenUnix(const std::string &path, std::string *error)
{
    sockaddr_un addr{};
    if (path.size() >= sizeof(addr.sun_path)) {
        if (error)
            *error = "socket path '" + path + "' too long";
        return -1;
    }
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        if (error)
            *error = std::string("socket(): ") + std::strerror(errno);
        return -1;
    }
    ::unlink(path.c_str());
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) <
            0 ||
        ::listen(fd, 64) < 0) {
        if (error)
            *error = "bind/listen on '" + path +
                     "': " + std::strerror(errno);
        ::close(fd);
        return -1;
    }
    return fd;
}

int
listenTcp(uint16_t port, uint16_t *bound_port, std::string *error)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        if (error)
            *error = std::string("socket(): ") + std::strerror(errno);
        return -1;
    }
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) <
            0 ||
        ::listen(fd, 64) < 0) {
        if (error)
            *error = strprintf("bind/listen on 127.0.0.1:%u: %s",
                               static_cast<unsigned>(port),
                               std::strerror(errno));
        ::close(fd);
        return -1;
    }
    if (bound_port) {
        sockaddr_in bound{};
        socklen_t len = sizeof(bound);
        if (::getsockname(fd, reinterpret_cast<sockaddr *>(&bound),
                          &len) == 0)
            *bound_port = ntohs(bound.sin_port);
        else
            *bound_port = port;
    }
    return fd;
}

int
connectUnix(const std::string &path)
{
    sockaddr_un addr{};
    if (path.size() >= sizeof(addr.sun_path)) {
        errno = ENAMETOOLONG;
        return -1;
    }
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        int saved = errno;
        ::close(fd);
        errno = saved;
        return -1;
    }
    return fd;
}

int
connectTcp(uint16_t port)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        int saved = errno;
        ::close(fd);
        errno = saved;
        return -1;
    }
    return fd;
}

SelfPipe::SelfPipe()
{
    int fds[2];
    if (::pipe(fds) != 0)
        return;
    read_.reset(fds[0]);
    write_.reset(fds[1]);
    setNonBlocking(read_.get());
    setNonBlocking(write_.get());
}

void
SelfPipe::notify() const
{
    // Async-signal-safe by construction (one write() on a
    // non-blocking fd). EAGAIN means the pipe already holds pending
    // wakeups — the loop will drain them; dropping this one is fine.
    char byte = 1;
    ssize_t rc [[maybe_unused]] =
        ::write(write_.get(), &byte, 1);
}

void
SelfPipe::drain() const
{
    char buffer[256];
    while (::read(read_.get(), buffer, sizeof(buffer)) > 0) {
    }
}

bool
writeAll(int fd, const void *data, size_t size)
{
    const char *bytes = static_cast<const char *>(data);
    size_t written = 0;
    while (written < size) {
        ssize_t put =
            ::send(fd, bytes + written, size - written, MSG_NOSIGNAL);
        if (put < 0 && errno == ENOTSOCK)
            put = ::write(fd, bytes + written, size - written);
        if (put < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (put == 0)
            return false;
        written += static_cast<size_t>(put);
    }
    return true;
}

bool
readAll(int fd, std::string *out)
{
    char buffer[4096];
    while (true) {
        ssize_t got = ::read(fd, buffer, sizeof(buffer));
        if (got > 0) {
            out->append(buffer, static_cast<size_t>(got));
        } else if (got == 0) {
            return true;
        } else if (errno != EINTR) {
            return false;
        }
    }
}

int64_t
monotonicMs()
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace util
} // namespace mclp
