/**
 * @file
 * OptimizeCompute (Section 4.3, first step): partition the DSP budget.
 *
 * Given an ordered layer list and a cycle target, find partitions of
 * the order into contiguous groups, one CLP per group, choosing each
 * CLP's (Tn, Tm) with minimum DSP cost such that the CLP finishes all
 * its layers within the target. A dynamic program over the order picks
 * the partition minimizing total DSP for every CLP count up to the
 * limit; every partition that fits the DSP budget becomes a candidate
 * for OptimizeMemory.
 *
 * Two interchangeable shape-search engines back the per-range choice:
 * the reference engine re-enumerates shapes on every call (the paper's
 * Listing-3 behaviour), while the frontier engine answers from
 * precomputed Pareto frontiers (see shape_frontier.h) and is the
 * default. Both produce bit-identical partitions.
 */

#ifndef MCLP_CORE_COMPUTE_OPTIMIZER_H
#define MCLP_CORE_COMPUTE_OPTIMIZER_H

#include <cstdint>
#include <optional>
#include <vector>

#include "core/shape_frontier.h"
#include "fpga/data_type.h"
#include "model/clp_config.h"
#include "nn/network.h"
#include "util/thread_pool.h"

namespace mclp {
namespace core {

/** Which shape-search implementation ComputeOptimizer uses. */
enum class ComputeEngine
{
    /** Pareto-frontier cache + binary search (fast path, default). */
    Frontier,
    /** Full shape re-enumeration per call (seed-equivalent baseline). */
    Reference,
};

/** One CLP of a compute-partition candidate (no tilings yet). */
struct ComputeGroup
{
    model::ClpShape shape;
    std::vector<size_t> layers;  ///< network layer indices
    int64_t cycles = 0;          ///< sum of layer cycles on this shape
    int64_t dsp = 0;             ///< DSP slices of the compute module
};

/** A compute-partition candidate: CLP shapes plus layer assignment. */
struct ComputePartition
{
    std::vector<ComputeGroup> groups;
    int64_t totalDsp = 0;

    /** Epoch length: max over groups (CLPs run concurrently). */
    int64_t
    epochCycles() const
    {
        int64_t worst = 0;
        for (const auto &group : groups)
            worst = std::max(worst, group.cycles);
        return worst;
    }
};

/**
 * The OptimizeCompute search. Construct once per (network, data type,
 * order); optimize() may be called repeatedly with loosening targets,
 * reusing internal memoization.
 */
class ComputeOptimizer
{
  public:
    /**
     * @param network the CNN
     * @param type arithmetic data type (determines DSP per MAC)
     * @param order heuristic-ordered layer indices (see layer_order.h)
     * @param max_clps upper bound on CLPs per design
     * @param engine shape-search implementation
     * @param pool optional pool for parallel frontier construction
     * @param shared_frontiers optional warm FrontierTable owned by a
     * DseSession; must have been built for the same network, order and
     * max_clps. When null the optimizer lazily builds a private table.
     * Sharing never changes results — frontiers are budget-free and
     * queries are exact — it only skips reconstruction.
     */
    ComputeOptimizer(const nn::Network &network, fpga::DataType type,
                     std::vector<size_t> order, int max_clps,
                     ComputeEngine engine = ComputeEngine::Frontier,
                     util::ThreadPool *pool = nullptr,
                     FrontierTable *shared_frontiers = nullptr);

    /**
     * Find candidate partitions whose every CLP meets @p cycle_target
     * and whose total DSP fits @p dsp_budget. Returns the min-DSP
     * partition for each feasible CLP count (at most max_clps
     * candidates), cheapest first. Empty when no partition fits.
     */
    std::vector<ComputePartition> optimize(int64_t dsp_budget,
                                           int64_t cycle_target);

  private:
    /** Minimum-DSP shape for layers order_[i..j] within the target. */
    struct RangeChoice
    {
        model::ClpShape shape;
        int64_t dsp = 0;
        int64_t cycles = 0;
    };

    std::optional<RangeChoice> bestShapeForRange(size_t i, size_t j,
                                                 int64_t dsp_budget,
                                                 int64_t cycle_target);

    /** Fill the usable-range table with the reference enumeration. */
    void fillRangesReference(
        std::vector<std::vector<std::optional<RangeChoice>>> &range,
        int max_k, int64_t dsp_budget, int64_t cycle_target);

    /** Fill the usable-range table from the frontier cache. */
    void fillRangesFrontier(
        std::vector<std::vector<std::optional<RangeChoice>>> &range,
        int max_k, int64_t dsp_budget, int64_t cycle_target);

    const nn::Network &network_;
    fpga::DataType type_;
    std::vector<size_t> order_;
    int maxClps_;
    ComputeEngine engine_;
    util::ThreadPool *pool_;
    FrontierTable *sharedFrontiers_;
    std::optional<FrontierTable> frontiers_;

    /** optimize() scratch, reused across calls (probes are frequent). */
    std::vector<std::vector<std::optional<RangeChoice>>> rangeScratch_;
    std::vector<std::vector<int64_t>> costScratch_;
    std::vector<std::vector<size_t>> prevScratch_;

    /**
     * Memo of the latest optimize() call: the target search's
     * feasibility probe and the subsequent full evaluation ask for
     * the same (budget, target) back to back.
     */
    int64_t lastBudget_ = -1;
    int64_t lastTarget_ = -1;
    std::vector<ComputePartition> lastCandidates_;
};

} // namespace core
} // namespace mclp

#endif // MCLP_CORE_COMPUTE_OPTIMIZER_H
