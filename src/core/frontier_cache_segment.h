/**
 * @file
 * The mmap'd cache segment: an immutable, checksummed, hash-indexed
 * image of the frontier cache that every worker process on a host
 * maps read-only.
 *
 * The record file (core/frontier_cache.h) is a merge log — perfect
 * for crash-safe write-back, wrong for sharing: every process that
 * opens it re-reads and re-decodes the whole thing into a private
 * heap. The segment is the same record set laid out for readers:
 *
 *   [64-byte header | slot table | key blob | payload blob]
 *
 * The slot table is an open-addressed, linearly probed hash table
 * over (kind, key words) — util::hashInt64Words, the same hash every
 * memo table in the stack keys by — so find() is a probe walk plus
 * one key memcmp, no allocation, no decode. Payloads are the delta
 * staircase encodings of core/frontier_codec.h, decoded lazily by
 * whoever actually needs the row; N workers mapping one segment share
 * one page-cache copy of the bytes and decode only what they touch.
 *
 * Publication order makes torn states safe: flush() commits the
 * record file first, then publishes the segment image with an atomic
 * tmp+rename (util::publishFileAtomic). The header carries the
 * model-formula fingerprint and the *generation* stamp of the record
 * file it was built from; a reader trusts the segment only when both
 * match, so a crash between the two writes (segment one generation
 * behind) simply degrades that process to the eager record-file load.
 * Every byte after the header is covered by one FNV-1a checksum,
 * checked once at open; all slot offsets are bounds-validated then
 * too, so find() never reads outside the mapping however the file was
 * damaged.
 */

#ifndef MCLP_CORE_FRONTIER_CACHE_SEGMENT_H
#define MCLP_CORE_FRONTIER_CACHE_SEGMENT_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/shm.h"

namespace mclp {
namespace core {

/** First bytes of a segment file ("MCLPSG01", little-endian u64). */
constexpr uint64_t kFrontierSegmentMagic = 0x3130475350434C4DULL;

/** Bump on any change to the segment layout. */
constexpr uint32_t kFrontierSegmentVersion = 1;

/** Segment file name inside the cache directory. */
constexpr const char *kFrontierSegmentFileName = "frontier_cache.seg";

/** One record of a segment image under construction. The key is
 * borrowed (build() runs inside flush(), whose merge maps own the
 * keys); the payload is a delta encoding from core/frontier_codec.h. */
struct SegmentRecord
{
    uint8_t kind = 0;
    const std::vector<int64_t> *key = nullptr;
    std::string_view payload;
};

/**
 * A validated read-only mapping of a segment file. Invalid (absent,
 * foreign, corrupt, fingerprint-mismatched) segments yield
 * !valid() — callers treat that as "no segment", never an error.
 * Movable; the mapping pins the published inode even after a newer
 * generation renames over the path.
 */
class FrontierCacheSegment
{
  public:
    FrontierCacheSegment() = default;

    /**
     * Map and validate @p path: magic, version, fingerprint,
     * whole-body checksum, and every slot's offsets in bounds. Any
     * defect yields an invalid segment.
     */
    static FrontierCacheSegment open(const std::string &path,
                                     uint64_t fingerprint);

    /**
     * Serialize @p records as a complete segment image for
     * util::publishFileAtomic. @p generation must be the record-file
     * generation the records were read from — readers revalidate
     * against it.
     */
    static std::string build(uint64_t fingerprint, uint64_t generation,
                             const std::vector<SegmentRecord> &records);

    bool valid() const { return map_.valid(); }
    uint64_t generation() const { return generation_; }
    size_t entryCount() const { return entryCount_; }
    /** Mapped bytes of the whole image (what cache-stats reports). */
    size_t bytes() const { return map_.size(); }

    /**
     * The stored delta payload for (kind, key), or an empty view.
     * The view aliases the mapping and stays valid for the segment's
     * lifetime. Lock-free and allocation-free — the image is
     * immutable, so concurrent finds need no coordination.
     */
    std::string_view find(uint8_t kind,
                          const std::vector<int64_t> &key) const;

  private:
    util::MappedFile map_;
    uint64_t generation_ = 0;
    uint32_t slotCount_ = 0;
    size_t entryCount_ = 0;
    size_t keyWordsOff_ = 0;   ///< byte offset of the key blob
    size_t keyWords_ = 0;      ///< i64 words in the key blob
    size_t payloadOff_ = 0;    ///< byte offset of the payload blob
    size_t payloadBytes_ = 0;
};

} // namespace core
} // namespace mclp

#endif // MCLP_CORE_FRONTIER_CACHE_SEGMENT_H
