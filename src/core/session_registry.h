/**
 * @file
 * The session registry: one long-lived process owning warm DseSessions
 * for many (network, device, data type) keys at once — the dispatcher
 * state behind the batch DSE service (tools/mclp_serve.cc).
 *
 * Sessions are keyed by the *dims signature* of a network, not its
 * name, so renamed or inline-submitted copies of the same CNN reuse
 * one session; and every session shares one FrontierRowStore, so
 * dims-identical layer ranges (fire modules repeated across
 * SqueezeNet variants, inception twins across GoogLeNet tweaks) are
 * built once process-wide even across *different* networks. Joint
 * multi-network requests (Section 4.3) key their session by the
 * *concatenated* dims signature — distinct from every constituent's
 * key — while their layer ranges that fall inside one sub-network
 * are dims-identical to that network's solo ranges, so a joint
 * session reuses frontier rows (and on-disk FrontierCache records)
 * built by earlier single-network sessions, and vice versa
 * (tests/core/test_session_registry.cc pins both directions). The
 * registry evicts least-recently-used sessions beyond a session-count
 * cap or a resident-byte budget; eviction never changes results, only
 * how warm the next request starts (which
 * tests/core/test_session_registry.cc pins).
 */

#ifndef MCLP_CORE_SESSION_REGISTRY_H
#define MCLP_CORE_SESSION_REGISTRY_H

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/dse_session.h"
#include "fpga/data_type.h"
#include "nn/network.h"

namespace mclp {
namespace core {

/** Registry key: network dims signature x device context x type. */
struct SessionKey
{
    std::string signature;  ///< core::networkSignature()
    std::string device;     ///< catalog short name, "" = ladder rule
    fpga::DataType type = fpga::DataType::Float32;

    bool operator<(const SessionKey &other) const
    {
        if (signature != other.signature)
            return signature < other.signature;
        if (device != other.device)
            return device < other.device;
        return type < other.type;
    }
};

class SessionRegistry
{
  public:
    struct Stats
    {
        size_t hits = 0;       ///< acquisitions answered warm
        size_t misses = 0;     ///< acquisitions that built a session
        size_t evictions = 0;  ///< sessions dropped by LRU/byte caps
        size_t sessions = 0;   ///< currently resident sessions
        size_t bytes = 0;      ///< rough resident bytes (with store)
    };

    /** Per-resident-session acquisition counters (the `stats` verb's
     * session_rates= field). An eviction takes its counters with it:
     * these describe what is warm *now*. */
    struct SessionInfo
    {
        std::string network;  ///< resolved network name
        std::string device;   ///< "" = ladder rule
        fpga::DataType type = fpga::DataType::Float32;
        size_t uses = 0;      ///< acquisitions of this session
        size_t hits = 0;      ///< of those, answered warm (uses - 1)
    };

    /**
     * @param max_sessions LRU capacity (>= 1; clamped).
     * @param max_bytes rough resident-byte budget across all sessions
     * plus the shared row store; 0 = unlimited. Enforced after each
     * acquisition, never against the session just returned, and — for
     * acquisitions carrying a budget hint — *before* a new session is
     * built (see session()). The budget governs *evictable* state:
     * with a persistent cache attached, rows mirrored by the cache
     * are pinned for the process lifetime (eviction could not free
     * them) and are excluded from the measurement.
     * @param session_threads worker threads each session uses for
     * budget-ladder fan-out (1 = serial; thread count never changes
     * results).
     * @param cache optional persistent frontier cache: attached to
     * the shared row store and to every session's tradeoff-curve
     * cache, and flushed when the registry dies. Warmth only — never
     * results.
     */
    explicit SessionRegistry(size_t max_sessions = 8,
                             size_t max_bytes = 0,
                             int session_threads = 1,
                             std::shared_ptr<FrontierCache> cache =
                                 nullptr);

    /** Flushes the persistent cache (when attached). */
    ~SessionRegistry();

    /**
     * The warm session for (@p network dims, @p device, @p type),
     * created on first use (the registry copies the network, so the
     * caller's copy may die). The returned handle pins the session:
     * eviction only drops the registry's reference, so in-flight
     * requests on an evicted session finish safely.
     *
     * @p max_dsp_budget is the admission-control hint: the largest
     * DSP budget the caller will run on this session (0 = unknown).
     * Under a byte budget, a miss with a hint first evicts LRU
     * sessions until the estimated cost of the new session fits —
     * so a burst of giant networks can no longer transiently blow
     * the cap — and fatal()s (a user error, not a crash) when the
     * estimate alone exceeds the whole budget. With a persistent
     * cache attached the pre-eviction is skipped (built rows are
     * pinned by the cache mirror, so eviction could not make room);
     * the reject check still guards total process residency.
     */
    std::shared_ptr<DseSession> session(const nn::Network &network,
                                        const std::string &device,
                                        fpga::DataType type,
                                        int64_t max_dsp_budget = 0);

    /**
     * Rough pre-build cost estimate of a warm session: layer count x
     * the ladder maximum's MAC-unit cap x the staircase point size
     * (frontier rows dominate warm-session memory, and a row's total
     * point count is bounded by the units cap because DSP strictly
     * increases along a staircase). Proportionality is what admission
     * control needs, not exactness.
     */
    static size_t estimateSessionBytes(const nn::Network &network,
                                       fpga::DataType type,
                                       int64_t max_dsp_budget);

    /** The cross-network frontier-row pool all sessions share. */
    const std::shared_ptr<FrontierRowStore> &rowStore() const
    {
        return store_;
    }

    Stats stats();

    /** One SessionInfo per resident session, ordered by key (so the
     * `stats` verb's session_rates= field is deterministic). */
    std::vector<SessionInfo> sessionInfos();

    /** Rough resident bytes (sessions + shared row store). */
    size_t memoryBytes();

  private:
    struct Entry
    {
        nn::Network network;  ///< owned; the session references it
        std::unique_ptr<DseSession> session;
        uint64_t lastUse = 0;
        size_t uses = 0;  ///< acquisitions (first one is the miss)
    };

    /** Enforce the caps; caller holds mutex_. @p keep is never
     * evicted (the entry just acquired). */
    void enforceCapsLocked(const Entry *keep);

    /** Evict the least-recently-used entry other than @p keep and
     * reclaim its orphaned store rows; false when nothing evictable
     * is left. Caller holds mutex_. */
    bool evictLruLocked(const Entry *keep);

    size_t memoryBytesLocked();

    std::mutex mutex_;
    size_t maxSessions_;
    size_t maxBytes_;
    int sessionThreads_;
    std::shared_ptr<FrontierCache> cache_;
    std::shared_ptr<FrontierRowStore> store_;
    uint64_t tick_ = 0;
    std::map<SessionKey, std::shared_ptr<Entry>> entries_;
    size_t hits_ = 0;
    size_t misses_ = 0;
    size_t evictions_ = 0;
};

} // namespace core
} // namespace mclp

#endif // MCLP_CORE_SESSION_REGISTRY_H
