/**
 * @file
 * Warm design-space-exploration sessions (the cross-run reuse layer).
 *
 * The paper's headline studies re-run the Listing-3 optimization for a
 * ladder of resource budgets over one network (Figure 7 sweeps DSP
 * slices from 100 to 10,000). Almost everything the optimizer builds
 * is budget-independent: shape frontiers answer any DSP budget by
 * prefix truncation (shape_frontier.h), tiling options depend only on
 * layer and shape (TilingOptionCache), and the memory walk's tradeoff
 * curves depend only on group and caps (TradeoffCurveCache). A
 * DseSession keeps all three warm across optimize() calls, so one
 * frontier build answers the whole sweep; per-budget results stay
 * bit-identical to cold MultiClpOptimizer runs, which
 * tests/core/test_dse_session.cc pins.
 *
 * Sessions are thread safe: sweep() fans independent budgets out over
 * a util::ThreadPool when constructed with threads != 1, and the
 * shared caches are value-preserving, so thread count never changes
 * results.
 */

#ifndef MCLP_CORE_DSE_SESSION_H
#define MCLP_CORE_DSE_SESSION_H

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "core/optimizer.h"
#include "fpga/device.h"
#include "nn/network.h"
#include "util/thread_pool.h"

namespace mclp {
namespace core {

/**
 * The warm caches of one session: budget-free FrontierTables keyed by
 * (layer order, CLP limit), the tiling-option memo, and the
 * tradeoff-curve memo. Shared by every optimizer run of the session
 * through OptimizerOptions::caches. All state is exact (no
 * approximation crosses a cache boundary) and thread safe.
 */
class DseCaches
{
  public:
    /**
     * @param store optional cross-network frontier-row pool; when
     * given, the session's FrontierTables share built rows through it
     * (a SessionRegistry passes one store to every session it owns).
     * @param cache optional persistent frontier cache; when given,
     * the session's tradeoff-curve cache seeds walk traces from disk
     * and notes fresh ones for write-back (frontier rows go through
     * @p store, which its owner attaches to the same cache).
     */
    DseCaches(const nn::Network &network, fpga::DataType type,
              std::shared_ptr<FrontierRowStore> store = nullptr,
              std::shared_ptr<FrontierCache> cache = nullptr);

    const std::shared_ptr<TilingOptionCache> &tilings() const
    {
        return tilings_;
    }

    const std::shared_ptr<TradeoffCurveCache> &curves() const
    {
        return curves_;
    }

    /**
     * The session FrontierTable for @p order under @p max_clps,
     * created on first use with the reserved units cap applied.
     * @p network must be the session's network (tables hold
     * references into it).
     */
    FrontierTable &frontierTable(const nn::Network &network,
                                 fpga::DataType type,
                                 const std::vector<size_t> &order,
                                 int max_clps);

    /**
     * Announce that budgets up to @p dsp_budget are coming, so
     * frontier tables are built once at that cap instead of being
     * rebuilt when a sweep reaches its largest rung. DseSession calls
     * this before every run (with a whole ladder's maximum before a
     * sweep); queries at smaller budgets read a prefix of the same
     * tables, so the cap never changes results.
     */
    void reserveDspBudget(int64_t dsp_budget);

    /**
     * Rough resident bytes of the session's private caches (frontier
     * tables, tiling options, tradeoff curves). Rows shared through
     * an external FrontierRowStore are counted by the store, not
     * here, so a registry's total never double-counts them.
     */
    size_t memoryBytes();

  private:
    const nn::Network &network_;
    fpga::DataType type_;
    std::shared_ptr<FrontierRowStore> store_;
    std::shared_ptr<TilingOptionCache> tilings_;
    std::shared_ptr<TradeoffCurveCache> curves_;
    std::mutex mutex_;
    int64_t unitsCap_ = 0;  ///< grow-only, from reserveDspBudget()
    std::map<std::pair<std::vector<size_t>, int>,
             std::unique_ptr<FrontierTable>>
        frontiers_;
};

/**
 * A long-lived optimization session over one (network, data type)
 * pair: repeated optimize() calls and whole budget sweeps share the
 * warm caches, amortizing construction the way a single
 * MultiClpOptimizer run already amortizes it across targets. The
 * network must outlive the session.
 */
class DseSession
{
  public:
    /**
     * @param threads worker threads for sweep() fan-out (0 = hardware
     * concurrency, 1 = serial). Thread count never changes results.
     * @param store optional cross-network frontier-row pool shared
     * with other sessions (see DseCaches).
     * @param cache optional persistent frontier cache shared with
     * other sessions (see DseCaches); never changes results, only
     * how warm a fresh process starts.
     */
    DseSession(const nn::Network &network, fpga::DataType type,
               int threads = 1,
               std::shared_ptr<FrontierRowStore> store = nullptr,
               std::shared_ptr<FrontierCache> cache = nullptr);

    /**
     * One warm optimization run: MultiClpOptimizer under @p options
     * with the session caches attached. Bit-identical to a cold run
     * with the same options.
     */
    OptimizationResult optimize(const fpga::ResourceBudget &budget,
                                OptimizerOptions options = {}) const;

    /**
     * Optimize every budget of a ladder, reusing one frontier build
     * across all of them; fans out over the session pool when
     * threads != 1. results[i] corresponds to budgets[i] and is
     * bit-identical to an independent cold optimize of budgets[i].
     */
    std::vector<OptimizationResult>
    sweep(const std::vector<fpga::ResourceBudget> &budgets,
          OptimizerOptions options = {}) const;

    /**
     * BRAM vs bandwidth tradeoff curve of a compute partition using
     * the session's warm memory caches (Figure 6 companion to
     * MemoryOptimizer::tradeoffCurve).
     */
    std::vector<TradeoffPoint>
    tradeoffCurve(const ComputePartition &partition) const;

    const std::shared_ptr<DseCaches> &caches() const { return caches_; }

    const nn::Network &network() const { return network_; }
    fpga::DataType dataType() const { return type_; }

    /** Rough resident bytes of the session's private warm state. */
    size_t memoryBytes() const { return caches_->memoryBytes(); }

  private:
    const nn::Network &network_;
    fpga::DataType type_;
    std::shared_ptr<DseCaches> caches_;
    std::unique_ptr<util::ThreadPool> pool_;
};

/**
 * Budget ladder helper: one ResourceBudget per DSP-slice count, with
 * BRAM scaled as one BRAM-18K unit per @p dsp_per_bram DSP slices
 * (Figure 7 uses 1.3) and unconstrained bandwidth. When @p base is
 * given its BRAM/bandwidth are kept and only the DSP budget varies.
 */
std::vector<fpga::ResourceBudget> dspLadder(
    const std::vector<int64_t> &dsp_budgets, double frequency_mhz,
    double dsp_per_bram = 1.3,
    const fpga::ResourceBudget *base = nullptr);

/**
 * Parse a DSP ladder spec for the CLI front ends: either an explicit
 * list "a,b,c" or an arithmetic range "lo:hi:step" (inclusive ends).
 * fatal() on malformed input.
 */
std::vector<int64_t> parseDspLadderSpec(const std::string &spec);

} // namespace core
} // namespace mclp

#endif // MCLP_CORE_DSE_SESSION_H
