#include "core/schedule.h"

#include <algorithm>

#include "util/logging.h"

namespace mclp {
namespace core {

ScheduleInfo
analyzeSchedule(const model::MultiClpDesign &design,
                const nn::Network &network)
{
    design.validate(network);

    ScheduleInfo info;
    bool adjacent = true;
    for (const model::ClpConfig &clp : design.clps) {
        std::vector<size_t> indices;
        for (const model::LayerBinding &binding : clp.layers)
            indices.push_back(binding.layerIdx);
        std::sort(indices.begin(), indices.end());
        for (size_t i = 1; i < indices.size(); ++i) {
            if (indices[i] != indices[i - 1] + 1) {
                adjacent = false;
                break;
            }
        }
        if (!adjacent)
            break;
    }

    info.adjacentLayers = adjacent;
    if (adjacent) {
        info.latencyEpochs = static_cast<int64_t>(design.clps.size());
        info.imagesInFlight = static_cast<int64_t>(design.clps.size());
    } else {
        info.latencyEpochs = static_cast<int64_t>(network.numLayers());
        info.imagesInFlight = static_cast<int64_t>(network.numLayers());
    }
    return info;
}

model::MultiClpDesign
canonicalizeSchedule(const model::MultiClpDesign &design,
                     const nn::Network &network)
{
    design.validate(network);
    model::MultiClpDesign out = design;
    for (model::ClpConfig &clp : out.clps) {
        std::sort(clp.layers.begin(), clp.layers.end(),
                  [](const model::LayerBinding &a,
                     const model::LayerBinding &b) {
                      return a.layerIdx < b.layerIdx;
                  });
    }
    std::sort(out.clps.begin(), out.clps.end(),
              [](const model::ClpConfig &a, const model::ClpConfig &b) {
                  return a.layers.front().layerIdx <
                         b.layers.front().layerIdx;
              });
    return out;
}

} // namespace core
} // namespace mclp
