/**
 * @file
 * The Multi-CLP design optimizer (Section 4.3, Listing 3).
 *
 * Iteratively lowers a performance target; at each step
 * OptimizeCompute proposes DSP partitions meeting the target and
 * OptimizeMemory tries to fit their buffers into the BRAM budget
 * (and, when bandwidth is constrained, verifies that the design still
 * meets the target with transfer-blocked CLPs). The first target with
 * a feasible design wins. Constraining the partitioner to one CLP
 * reproduces the state-of-the-art Single-CLP methodology.
 */

#ifndef MCLP_CORE_OPTIMIZER_H
#define MCLP_CORE_OPTIMIZER_H

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/compute_optimizer.h"
#include "core/layer_order.h"
#include "core/memory_optimizer.h"
#include "fpga/device.h"
#include "model/clp_config.h"
#include "model/metrics.h"
#include "nn/network.h"
#include "util/thread_pool.h"

namespace mclp {
namespace core {

class DseCaches;  // warm cross-run caches; see dse_session.h

/** Which end-to-end search implementation MultiClpOptimizer runs. */
enum class OptimizerEngine
{
    /**
     * Pareto-frontier shape cache, galloping + bisection over the
     * monotone target sequence, and (with threads > 1) parallel
     * frontier construction and heuristic runs. Produces the same
     * designs as Reference. Default.
     */
    Frontier,
    /**
     * The paper's Listing-3 loop verbatim: linear target scan with
     * full shape re-enumeration per step. Kept as the seed-equivalent
     * baseline for benchmarking and differential testing.
     */
    Reference,
};

/** Knobs of the optimization procedure. */
struct OptimizerOptions
{
    /** Upper bound on CLPs (the paper limits SqueezeNet runs to 6). */
    int maxClps = 6;

    /** Search implementation; see OptimizerEngine. */
    OptimizerEngine engine = OptimizerEngine::Frontier;

    /**
     * Worker threads for the Frontier engine (0 = hardware
     * concurrency). Thread count never changes results.
     */
    int threads = 1;

    /** Target decrement per iteration (Listing 3's `step`). */
    double targetStep = 0.005;

    /**
     * Layer ordering. When unset, both heuristics are tried and the
     * better final design is kept (compute-to-data for
     * bandwidth-limited budgets first, per the paper's guidance).
     */
    std::optional<OrderHeuristic> heuristic;

    /** Force a conventional Single-CLP design. */
    bool singleClp = false;

    /**
     * Constrain every CLP to a contiguous run of layers in the
     * network's own order (Section 4.1's latency optimization:
     * latency and in-flight images drop to the CLP count, possibly
     * costing throughput). Implemented by pinning the layer order to
     * the pipeline order, since OptimizeCompute only forms contiguous
     * groups of the order it is given.
     */
    bool adjacentLayers = false;

    /** Safety bound on target iterations. */
    int maxIterations = 2000;

    /**
     * Warm cross-run caches (frontier tables, tradeoff curves, tiling
     * options) shared by every run of a DSE session. Normally set by
     * DseSession, not by hand; must have been created for the same
     * network and data type. Caches are value-preserving: runs with
     * and without them produce bit-identical designs.
     */
    std::shared_ptr<DseCaches> caches;
};

/** The outcome of an optimization run. */
struct OptimizationResult
{
    model::MultiClpDesign design;
    model::DesignMetrics metrics;       ///< under the given budget
    ComputePartition partition;         ///< for tradeoff-curve studies
    OrderHeuristic usedHeuristic = OrderHeuristic::NmDistance;
    double achievedTarget = 0.0;        ///< final Listing-3 target value
    int iterations = 0;                 ///< target steps taken
};

/** Top-level optimizer; see file comment. */
class MultiClpOptimizer
{
  public:
    MultiClpOptimizer(const nn::Network &network, fpga::DataType type,
                      fpga::ResourceBudget budget,
                      OptimizerOptions options = {});

    /**
     * Run the Listing-3 loop. fatal() if no design exists within the
     * iteration bound (e.g. a hopeless resource budget).
     */
    OptimizationResult run() const;

  private:
    /**
     * One full search for a fixed layer order: Listing 3's linear scan
     * under the Reference engine, galloping + bisection over the same
     * target sequence under the Frontier engine. @p cache (optional)
     * shares tiling tables across concurrent heuristic runs.
     */
    std::optional<OptimizationResult> runWithOrder(
        OrderHeuristic heuristic, util::ThreadPool *pool,
        std::shared_ptr<TilingOptionCache> cache) const;

    /**
     * Evaluate one target step (Listing 3's loop body): propose
     * compute partitions, fit their buffers, keep the best feasible
     * design. nullopt when the step is infeasible.
     */
    std::optional<OptimizationResult> evaluateTarget(
        ComputeOptimizer &compute, const MemoryOptimizer &memory,
        OrderHeuristic heuristic, int64_t cycles_min, double target,
        int iter) const;

    const nn::Network &network_;
    fpga::DataType type_;
    fpga::ResourceBudget budget_;
    OptimizerOptions options_;
};

/**
 * Convenience wrapper: best Single-CLP design for a budget, i.e. the
 * state-of-the-art baseline of Zhang et al. [32].
 */
OptimizationResult optimizeSingleClp(const nn::Network &network,
                                     fpga::DataType type,
                                     const fpga::ResourceBudget &budget);

/** Convenience wrapper: best Multi-CLP design for a budget. */
OptimizationResult optimizeMultiClp(const nn::Network &network,
                                    fpga::DataType type,
                                    const fpga::ResourceBudget &budget,
                                    int max_clps = 6);

} // namespace core
} // namespace mclp

#endif // MCLP_CORE_OPTIMIZER_H
