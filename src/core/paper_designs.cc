#include "core/paper_designs.h"

#include <initializer_list>

#include "nn/zoo.h"
#include "util/logging.h"

namespace mclp {
namespace core {

namespace {

/**
 * Build a CLP from 1-based paper layer numbers. @p tilings supplies
 * (Tr, Tc) pairs aligned with @p layer_numbers; when empty, each layer
 * gets the whole-map tiling (Tr=R, Tc=C), which leaves cycle counts
 * unchanged (Tables 2/4 cycle columns do not depend on Tr/Tc).
 */
model::ClpConfig
makeClp(const nn::Network &network, int64_t tn, int64_t tm,
        std::initializer_list<int> layer_numbers,
        std::initializer_list<model::Tiling> tilings = {})
{
    if (tilings.size() != 0 && tilings.size() != layer_numbers.size())
        util::panic("makeClp: tiling/layer arity mismatch");
    model::ClpConfig clp;
    clp.shape = model::ClpShape{tn, tm};
    auto tiling_it = tilings.begin();
    for (int number : layer_numbers) {
        size_t idx = static_cast<size_t>(number - 1);
        const nn::ConvLayer &layer = network.layer(idx);
        model::LayerBinding binding;
        binding.layerIdx = idx;
        if (tilings.size() != 0)
            binding.tiling = *tiling_it++;
        else
            binding.tiling = model::Tiling{layer.r, layer.c};
        clp.layers.push_back(binding);
    }
    return clp;
}

} // namespace

// AlexNet paper layer numbers: 1=1a, 2=1b, 3=2a, 4=2b, 5=3a, 6=3b,
// 7=4a, 8=4b, 9=5a, 10=5b.

model::MultiClpDesign
paperAlexNetSingle485()
{
    nn::Network net = nn::makeAlexNet();
    model::MultiClpDesign design;
    design.dataType = fpga::DataType::Float32;
    design.clps.push_back(makeClp(
        net, 7, 64, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10},
        {{8, 8}, {8, 8}, {14, 27}, {14, 27}, {13, 13}, {13, 13},
         {13, 13}, {13, 13}, {13, 13}, {13, 13}}));
    return design;
}

model::MultiClpDesign
paperAlexNetSingle690()
{
    model::MultiClpDesign design = paperAlexNetSingle485();
    design.clps[0].shape = model::ClpShape{9, 64};
    return design;
}

model::MultiClpDesign
paperAlexNetMulti485()
{
    nn::Network net = nn::makeAlexNet();
    model::MultiClpDesign design;
    design.dataType = fpga::DataType::Float32;
    design.clps.push_back(makeClp(net, 2, 64, {9, 10, 7, 8},
                                  {{13, 13}, {13, 13}, {13, 13},
                                   {13, 13}}));
    design.clps.push_back(makeClp(net, 1, 96, {5, 6},
                                  {{13, 13}, {13, 13}}));
    design.clps.push_back(makeClp(net, 3, 24, {1, 2},
                                  {{14, 19}, {14, 19}}));
    design.clps.push_back(makeClp(net, 8, 19, {3, 4},
                                  {{14, 27}, {14, 27}}));
    return design;
}

model::MultiClpDesign
paperAlexNetMulti690()
{
    nn::Network net = nn::makeAlexNet();
    model::MultiClpDesign design;
    design.dataType = fpga::DataType::Float32;
    design.clps.push_back(makeClp(net, 1, 64, {9, 10},
                                  {{13, 13}, {13, 13}}));
    design.clps.push_back(makeClp(net, 1, 96, {7, 8},
                                  {{13, 13}, {13, 13}}));
    design.clps.push_back(makeClp(net, 2, 64, {5, 6},
                                  {{13, 13}, {13, 13}}));
    design.clps.push_back(makeClp(net, 1, 48, {1}, {{14, 19}}));
    design.clps.push_back(makeClp(net, 1, 48, {2}, {{14, 14}}));
    design.clps.push_back(makeClp(net, 3, 64, {3, 4},
                                  {{27, 27}, {27, 27}}));
    return design;
}

// SqueezeNet paper layer numbers are 1-based positions in the v1.1
// conv-layer sequence (conv1, then squeeze/expand1x1/expand3x3 per
// fire module, then conv10).

model::MultiClpDesign
paperSqueezeNetSingle485()
{
    nn::Network net = nn::makeSqueezeNet();
    model::MultiClpDesign design;
    design.dataType = fpga::DataType::Fixed16;
    design.clps.push_back(makeClp(
        net, 32, 68,
        {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18,
         19, 20, 21, 22, 23, 24, 25, 26}));
    return design;
}

model::MultiClpDesign
paperSqueezeNetSingle690()
{
    model::MultiClpDesign design = paperSqueezeNetSingle485();
    design.clps[0].shape = model::ClpShape{32, 87};
    return design;
}

model::MultiClpDesign
paperSqueezeNetMulti485()
{
    nn::Network net = nn::makeSqueezeNet();
    model::MultiClpDesign design;
    design.dataType = fpga::DataType::Fixed16;
    design.clps.push_back(makeClp(net, 6, 16, {2, 3, 6, 5}));
    design.clps.push_back(makeClp(net, 3, 64, {1, 8, 9, 12}));
    design.clps.push_back(
        makeClp(net, 4, 64, {11, 14, 15, 17, 18, 20, 21, 23, 24}));
    design.clps.push_back(makeClp(net, 8, 64, {7, 4, 16, 19}));
    design.clps.push_back(makeClp(net, 8, 128, {26, 22, 25, 13}));
    design.clps.push_back(makeClp(net, 16, 10, {10}));
    return design;
}

model::MultiClpDesign
paperSqueezeNetMulti690()
{
    nn::Network net = nn::makeSqueezeNet();
    model::MultiClpDesign design;
    design.dataType = fpga::DataType::Fixed16;
    design.clps.push_back(makeClp(net, 8, 16, {2, 6, 3, 5}));
    design.clps.push_back(makeClp(net, 3, 64, {1}));
    design.clps.push_back(makeClp(
        net, 11, 32, {8, 9, 11, 12, 14, 15, 17, 18, 20, 21, 23, 24}));
    design.clps.push_back(makeClp(net, 8, 64, {7, 4, 16}));
    design.clps.push_back(makeClp(net, 5, 256, {19, 26, 22, 25}));
    design.clps.push_back(makeClp(net, 16, 26, {13, 10}));
    return design;
}

} // namespace core
} // namespace mclp
