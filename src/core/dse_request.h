/**
 * @file
 * The DSE plan layer: one value type describing a whole optimization
 * request — which network, which device context, which data type,
 * which budget ladder, which schedule mode — and one describing the
 * complete answer. mclp-opt, dse-sweep, and mclp-serve all build a
 * DseRequest and hand it to service::answerRequest(), so the CLI
 * tools and the batch service execute the same code path and their
 * outputs can be diffed byte for byte (the wire forms live in
 * src/service/dse_codec.h).
 */

#ifndef MCLP_CORE_DSE_REQUEST_H
#define MCLP_CORE_DSE_REQUEST_H

#include <cstdint>
#include <string>
#include <vector>

#include "core/optimizer.h"
#include "core/schedule.h"
#include "fpga/data_type.h"
#include "fpga/device.h"
#include "nn/network.h"

namespace mclp {
namespace core {

/** Which schedule objective a request optimizes (Section 4.1). */
enum class DseMode
{
    /** Pipelined epochs: maximum throughput, latency = numLayers. */
    Throughput,
    /** Adjacent-layers schedule: latency drops to numClps epochs. */
    Latency,
    /** Conventional Single-CLP baseline (Zhang et al. [32]). */
    SingleClp,
};

/** Mode name for reports and the wire codec. */
std::string dseModeName(DseMode mode);

/** Inverse of dseModeName (case-insensitive); fatal() on unknown. */
DseMode dseModeByName(const std::string &name);

/**
 * One constituent of a joint multi-network request (Section 4.3).
 * Joint optimization concatenates the sub-networks into one workload
 * (nn::concatenateNetworks), so a single design partitions the FPGA's
 * DSP slices across all of them and one epoch advances @ref weight
 * images of every network.
 */
struct DseSubNet
{
    /** Unique display name; attribution spans refer back to it. */
    std::string name;

    /** Zoo network supplying the layers; empty means @ref layers. */
    std::string network;

    /** Inline layer list, used when @ref network is empty. */
    std::vector<nn::ConvLayer> layers;

    /**
     * Images of this network advanced per joint epoch, implemented as
     * @ref weight copies of the layer list in the concatenation
     * (copies are named "name.0", "name.1", ... when weight > 1 —
     * '.' because copy names must survive every surface that
     * round-trips layer names, and '#' is the network-file
     * comment character).
     * Must be >= 1.
     */
    int64_t weight = 1;
};

/**
 * One self-contained optimization request. Defaults mirror the CLI
 * defaults, so an empty request plus a network name is runnable.
 */
struct DseRequest
{
    /** Client-chosen tag echoed in the response (batch correlation). */
    std::string id;

    /**
     * Zoo network name, or the display name of @ref layers. Ignored
     * by joint requests (see @ref subnets), whose resolved name is
     * always the '+'-join of the sub-network names so two routes to
     * the same joint workload stay byte-identical on the wire.
     */
    std::string network = "alexnet";

    /** Inline layer list; when non-empty it overrides the zoo. */
    std::vector<nn::ConvLayer> layers;

    /**
     * Joint multi-network request (Section 4.3): when non-empty, the
     * request optimizes the concatenation of these sub-networks
     * instead of @ref network / @ref layers (which must then be
     * empty/defaulted — a joint request's layers live inside its
     * subnets). The response carries attribution spans mapping the
     * concatenated layer indices back to each sub-network.
     */
    std::vector<DseSubNet> subnets;

    /**
     * Device catalog short name supplying the BRAM/bandwidth context
     * for every rung; empty means the Figure-7 rule (BRAM = DSP/1.3),
     * which then requires an explicit ladder.
     */
    std::string device;

    fpga::DataType type = fpga::DataType::Float32;
    double mhz = 100.0;

    /** Off-chip bandwidth cap in GB/s; <= 0 means unconstrained. */
    double bandwidthGbps = 0.0;

    int maxClps = 6;
    DseMode mode = DseMode::Throughput;

    /**
     * DSP-slice ladder; empty means one run at the device's standard
     * 80% budget.
     */
    std::vector<int64_t> dspBudgets;

    /** Run the Listing-3 Reference engine (differential testing). */
    bool referenceEngine = false;

    /**
     * Optimizer worker threads for this request (0 = hardware
     * concurrency). Execution knob only — thread count never changes
     * the response — so the codec omits it at the default.
     */
    int threads = 1;

    /** fatal() unless the request is well-formed and resolvable. */
    void validate() const;
};

/** One optimized rung of a request's ladder. */
struct DsePoint
{
    fpga::ResourceBudget budget;
    model::MultiClpDesign design;  ///< canonicalized (schedule order)
    int64_t epochCycles = 0;
    int64_t dspUsed = 0;
    int64_t bramUsed = 0;
    ScheduleInfo schedule;
};

/**
 * Attribution span of a joint response: which contiguous run of
 * global layer indices (in the concatenated network) came from which
 * sub-network copy. A design's CLP layer assignments are expressed in
 * global indices, so spans are all a client needs to attribute every
 * CLP's layer ranges back to the originating sub-networks.
 */
struct DseSubNetSpan
{
    std::string name;       ///< sub-network copy name (a, a.1, ...)
    size_t firstLayer = 0;  ///< first global layer index of the span
    size_t numLayers = 0;   ///< span length
};

/** The complete answer to one DseRequest. */
struct DseResponse
{
    std::string id;       ///< echoed from the request
    bool ok = false;
    std::string error;    ///< set when !ok; points is then empty
    std::string network;  ///< resolved network name
    /** Joint requests only: one span per sub-network copy, covering
     * the concatenated network end to end in request order. */
    std::vector<DseSubNetSpan> subnets;
    std::vector<DsePoint> points;  ///< one per budget, ladder order
};

/**
 * Resolve the request's network: the concatenation of its subnets for
 * a joint request (weight-expanded, named by the '+'-join of subnet
 * names), inline layers or the zoo otherwise. When @p spans is given
 * it receives the joint attribution spans (cleared for single-network
 * requests) — computed during the one expansion, so callers needing
 * both never resolve twice.
 */
nn::Network resolveNetwork(const DseRequest &request,
                           std::vector<DseSubNetSpan> *spans = nullptr);

/**
 * Parse the CLI --joint spec: comma-separated "[NAME:]REF" entries.
 * A REF containing '/' or '.' is a network file path (parsed via
 * nn::parseNetworkFile, so hand-written concatenations and joint
 * requests meet in the same layer lists; use "./file" for a bare
 * filename); any other REF is a zoo network name — deterministic
 * regardless of what happens to exist in the working directory. NAME
 * defaults to REF for zoo entries and to the file's network name for
 * files. fatal() on malformed input.
 */
std::vector<DseSubNet> parseJointSpec(const std::string &spec);

/**
 * Apply a CLI --joint-weights spec ("2,1,...": one positive integer
 * per sub-network, in --joint order) to @p subnets; fatal() on a
 * count mismatch or a non-positive weight.
 */
void applyJointWeights(std::vector<DseSubNet> &subnets,
                       const std::string &spec);

/**
 * The request's budget ladder: the device's standard budget as the
 * base when a device is named (BRAM/bandwidth kept across rungs, as
 * mclp-opt --budgets does), the Figure-7 BRAM = DSP/1.3 rule
 * otherwise, with the request's bandwidth cap applied to every rung.
 * fatal() when neither a device nor a ladder is given.
 */
std::vector<fpga::ResourceBudget> requestBudgets(const DseRequest &request);

/** OptimizerOptions equivalent to the request's mode and knobs. */
OptimizerOptions requestOptions(const DseRequest &request);

/**
 * Identity-free digest of a network: a hash over the layer-dims
 * sequence, rendered as "<layers>L:<hex>". Two networks with the same
 * layer dimensions in the same order share a signature (and can share
 * a registry session) even when their names differ; any dimension
 * change separates them.
 */
std::string networkSignature(const nn::Network &network);

} // namespace core
} // namespace mclp

#endif // MCLP_CORE_DSE_REQUEST_H
