/**
 * @file
 * The DSE plan layer: one value type describing a whole optimization
 * request — which network, which device context, which data type,
 * which budget ladder, which schedule mode — and one describing the
 * complete answer. mclp-opt, dse-sweep, and mclp-serve all build a
 * DseRequest and hand it to service::answerRequest(), so the CLI
 * tools and the batch service execute the same code path and their
 * outputs can be diffed byte for byte (the wire forms live in
 * src/service/dse_codec.h).
 */

#ifndef MCLP_CORE_DSE_REQUEST_H
#define MCLP_CORE_DSE_REQUEST_H

#include <cstdint>
#include <string>
#include <vector>

#include "core/optimizer.h"
#include "core/schedule.h"
#include "fpga/data_type.h"
#include "fpga/device.h"
#include "nn/network.h"

namespace mclp {
namespace core {

/** Which schedule objective a request optimizes (Section 4.1). */
enum class DseMode
{
    /** Pipelined epochs: maximum throughput, latency = numLayers. */
    Throughput,
    /** Adjacent-layers schedule: latency drops to numClps epochs. */
    Latency,
    /** Conventional Single-CLP baseline (Zhang et al. [32]). */
    SingleClp,
};

/** Mode name for reports and the wire codec. */
std::string dseModeName(DseMode mode);

/** Inverse of dseModeName (case-insensitive); fatal() on unknown. */
DseMode dseModeByName(const std::string &name);

/**
 * One self-contained optimization request. Defaults mirror the CLI
 * defaults, so an empty request plus a network name is runnable.
 */
struct DseRequest
{
    /** Client-chosen tag echoed in the response (batch correlation). */
    std::string id;

    /** Zoo network name, or the display name of @ref layers. */
    std::string network = "alexnet";

    /** Inline layer list; when non-empty it overrides the zoo. */
    std::vector<nn::ConvLayer> layers;

    /**
     * Device catalog short name supplying the BRAM/bandwidth context
     * for every rung; empty means the Figure-7 rule (BRAM = DSP/1.3),
     * which then requires an explicit ladder.
     */
    std::string device;

    fpga::DataType type = fpga::DataType::Float32;
    double mhz = 100.0;

    /** Off-chip bandwidth cap in GB/s; <= 0 means unconstrained. */
    double bandwidthGbps = 0.0;

    int maxClps = 6;
    DseMode mode = DseMode::Throughput;

    /**
     * DSP-slice ladder; empty means one run at the device's standard
     * 80% budget.
     */
    std::vector<int64_t> dspBudgets;

    /** Run the Listing-3 Reference engine (differential testing). */
    bool referenceEngine = false;

    /**
     * Optimizer worker threads for this request (0 = hardware
     * concurrency). Execution knob only — thread count never changes
     * the response — so the codec omits it at the default.
     */
    int threads = 1;

    /** fatal() unless the request is well-formed and resolvable. */
    void validate() const;
};

/** One optimized rung of a request's ladder. */
struct DsePoint
{
    fpga::ResourceBudget budget;
    model::MultiClpDesign design;  ///< canonicalized (schedule order)
    int64_t epochCycles = 0;
    int64_t dspUsed = 0;
    int64_t bramUsed = 0;
    ScheduleInfo schedule;
};

/** The complete answer to one DseRequest. */
struct DseResponse
{
    std::string id;       ///< echoed from the request
    bool ok = false;
    std::string error;    ///< set when !ok; points is then empty
    std::string network;  ///< resolved network name
    std::vector<DsePoint> points;  ///< one per budget, ladder order
};

/** Resolve the request's network (inline layers or the zoo). */
nn::Network resolveNetwork(const DseRequest &request);

/**
 * The request's budget ladder: the device's standard budget as the
 * base when a device is named (BRAM/bandwidth kept across rungs, as
 * mclp-opt --budgets does), the Figure-7 BRAM = DSP/1.3 rule
 * otherwise, with the request's bandwidth cap applied to every rung.
 * fatal() when neither a device nor a ladder is given.
 */
std::vector<fpga::ResourceBudget> requestBudgets(const DseRequest &request);

/** OptimizerOptions equivalent to the request's mode and knobs. */
OptimizerOptions requestOptions(const DseRequest &request);

/**
 * Identity-free digest of a network: a hash over the layer-dims
 * sequence, rendered as "<layers>L:<hex>". Two networks with the same
 * layer dimensions in the same order share a signature (and can share
 * a registry session) even when their names differ; any dimension
 * change separates them.
 */
std::string networkSignature(const nn::Network &network);

} // namespace core
} // namespace mclp

#endif // MCLP_CORE_DSE_REQUEST_H
