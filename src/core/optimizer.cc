#include "core/optimizer.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "core/dse_session.h"
#include "model/cycle_model.h"
#include "model/dsp_model.h"
#include "util/logging.h"
#include "util/math.h"

namespace mclp {
namespace core {

namespace {

/**
 * The exact target sequence of Listing 3: 1.0 stepped down by `step`
 * until the next value would fall to step/2, bounded by the iteration
 * cap. Materialized with the same floating-point recurrence as the
 * reference loop, so both engines evaluate bit-identical targets.
 */
std::vector<double>
targetSequence(double step, int max_iterations)
{
    std::vector<double> targets;
    double target = 1.0;
    for (int iter = 1; iter <= max_iterations; ++iter) {
        targets.push_back(target);
        target -= step;
        if (target <= step / 2.0)
            break;
    }
    return targets;
}

} // namespace

MultiClpOptimizer::MultiClpOptimizer(const nn::Network &network,
                                     fpga::DataType type,
                                     fpga::ResourceBudget budget,
                                     OptimizerOptions options)
    : network_(network), type_(type), budget_(budget), options_(options)
{
    budget_.validate();
    if (options_.maxClps < 1)
        util::fatal("MultiClpOptimizer: maxClps must be >= 1");
    if (options_.targetStep <= 0.0 || options_.targetStep >= 1.0)
        util::fatal("MultiClpOptimizer: targetStep must be in (0, 1)");
    if (options_.threads < 0)
        util::fatal("MultiClpOptimizer: threads must be >= 0");
    if (network_.numLayers() == 0)
        util::fatal("MultiClpOptimizer: network has no layers");
}

std::optional<OptimizationResult>
MultiClpOptimizer::evaluateTarget(ComputeOptimizer &compute,
                                  const MemoryOptimizer &memory,
                                  OrderHeuristic heuristic,
                                  int64_t cycles_min, double target,
                                  int iter) const
{
    int64_t cycle_target = static_cast<int64_t>(
        std::ceil(static_cast<double>(cycles_min) / target));
    std::vector<ComputePartition> candidates =
        compute.optimize(budget_.dspSlices, cycle_target);

    auto evaluate = [&](const ComputePartition &partition,
                        std::optional<OptimizationResult> &best) {
        auto design = memory.optimize(partition, budget_, cycle_target);
        if (!design)
            return;
        model::DesignMetrics metrics =
            model::evaluateDesign(*design, network_, budget_);
        bool better =
            !best ||
            metrics.epochCycles < best->metrics.epochCycles ||
            (metrics.epochCycles == best->metrics.epochCycles &&
             (metrics.peakBandwidthBytesPerCycle <
                  best->metrics.peakBandwidthBytesPerCycle ||
              (metrics.peakBandwidthBytesPerCycle ==
                   best->metrics.peakBandwidthBytesPerCycle &&
               design->clps.size() < best->design.clps.size())));
        if (better) {
            OptimizationResult result;
            result.design = std::move(*design);
            result.metrics = metrics;
            result.partition = partition;
            result.usedHeuristic = heuristic;
            result.achievedTarget = target;
            result.iterations = iter;
            best = std::move(result);
        }
    };

    std::optional<OptimizationResult> best;
    if (!budget_.bandwidthLimited()) {
        // With unconstrained bandwidth a design's epoch equals its
        // partition's compute epoch — tilings never enter it — and
        // epoch dominates the selection order. Walking candidates in
        // ascending compute-epoch groups lets the first group with a
        // BRAM-feasible member win without optimizing the buffers of
        // provably worse candidates. The result is bit-identical to
        // evaluating everything (peak/CLP-count tie-breaks only apply
        // within an equal-epoch group, which is evaluated in full).
        std::vector<size_t> order(candidates.size());
        for (size_t i = 0; i < order.size(); ++i)
            order[i] = i;
        std::stable_sort(order.begin(), order.end(),
                         [&](size_t a, size_t b) {
                             return candidates[a].epochCycles() <
                                    candidates[b].epochCycles();
                         });
        for (size_t gi = 0; gi < order.size();) {
            int64_t epoch = candidates[order[gi]].epochCycles();
            size_t ge = gi;
            while (ge < order.size() &&
                   candidates[order[ge]].epochCycles() == epoch)
                ++ge;
            for (size_t k = gi; k < ge; ++k)
                evaluate(candidates[order[k]], best);
            if (best)
                return best;
            gi = ge;
        }
        return best;
    }

    for (const ComputePartition &partition : candidates)
        evaluate(partition, best);
    return best;
}

std::optional<OptimizationResult>
MultiClpOptimizer::runWithOrder(OrderHeuristic heuristic,
                                util::ThreadPool *pool,
                                std::shared_ptr<TilingOptionCache> cache)
    const
{
    int max_clps = options_.singleClp ? 1 : options_.maxClps;
    bool frontier = options_.engine == OptimizerEngine::Frontier;
    std::vector<size_t> order = orderLayers(network_, heuristic);
    // A warm session hands the run its budget-free FrontierTable and
    // tradeoff-curve memo; both are value-preserving, so warm and cold
    // runs produce bit-identical designs.
    FrontierTable *shared_frontiers = nullptr;
    if (options_.caches && frontier)
        shared_frontiers = &options_.caches->frontierTable(
            network_, type_, order, max_clps);
    ComputeOptimizer compute(network_, type_, order, max_clps,
                             frontier ? ComputeEngine::Frontier
                                      : ComputeEngine::Reference,
                             pool, shared_frontiers);
    MemoryOptimizer memory(network_, type_, std::move(cache),
                           options_.caches ? options_.caches->curves()
                                           : nullptr);

    int64_t units = model::macBudget(budget_.dspSlices, type_);
    if (units < 1)
        util::fatal("MultiClpOptimizer: DSP budget %lld cannot build a "
                    "single MAC unit",
                    static_cast<long long>(budget_.dspSlices));
    int64_t cycles_min = model::minimumPossibleCycles(network_, units);

    std::vector<double> targets =
        targetSequence(options_.targetStep, options_.maxIterations);
    size_t limit = targets.size();
    if (limit == 0)
        return std::nullopt;  // maxIterations <= 0: nothing to probe

    auto probe = [&](size_t k) {
        return evaluateTarget(compute, memory, heuristic, cycles_min,
                              targets[k - 1], static_cast<int>(k));
    };

    // With a bandwidth cap, OptimizeMemory re-checks each design
    // against the *current* target, so a looser step can reject a
    // design an earlier step accepted — feasibility is not monotone
    // and bisection could land past the first feasible step. Keep
    // Listing 3's linear scan there (the frontier cache still
    // accelerates every step); bisect only compute-bound searches.
    if (!frontier || budget_.bandwidthLimited()) {
        // Listing 3 verbatim: first feasible target wins.
        for (size_t k = 1; k <= limit; ++k) {
            auto result = probe(k);
            if (result)
                return result;
        }
        return std::nullopt;
    }

    // Compute-bound feasibility is treated as monotone along the
    // loosening target sequence: a partition meeting a tight target
    // meets every looser one, and BRAM pressure generally eases as
    // shapes shrink. That lets galloping + bisection find the first
    // feasible step in O(log k) probes with Listing 3's semantics.
    // The assumption is not a theorem — a looser step's cheaper
    // partition could regroup layers into a worse BRAM footprint — so
    // it is guarded empirically by the cross-engine parity tests in
    // tests/core/test_shape_frontier.cc (fixed and randomized
    // networks) and the warm/cold sweep parity tests in
    // tests/core/test_dse_session.cc; a divergence there means this
    // fast path must fall back to the linear scan for the affected
    // budget class, as the bandwidth-limited case above already does.
    //
    // The search runs in two phases. Compute-only feasibility ("does
    // any partition meet the target at all?") is exactly monotone and
    // needs no memory optimization, no tilings, and no design
    // evaluation, so the bisection first converges on that cheap
    // superset test; only the convergence step pays for a full
    // evaluation. When OptimizeMemory rejects that step (BRAM-starved
    // budgets), the search continues past it with full probes under
    // the same monotone-feasibility contract.
    auto computeFeasible = [&](size_t k) {
        int64_t cycle_target = static_cast<int64_t>(
            std::ceil(static_cast<double>(cycles_min) / targets[k - 1]));
        return !compute.optimize(budget_.dspSlices, cycle_target)
                    .empty();
    };
    size_t lo = 0;  // highest step known compute-infeasible
    size_t hi = 1;
    for (;;) {
        if (computeFeasible(hi))
            break;
        lo = hi;
        if (hi >= limit)
            return std::nullopt;
        hi = std::min(limit, hi * 2);
    }
    while (hi - lo > 1) {
        size_t mid = lo + (hi - lo) / 2;
        if (computeFeasible(mid))
            hi = mid;
        else
            lo = mid;
    }

    // Full evaluation from the first compute-feasible step.
    std::optional<OptimizationResult> found;
    for (;;) {
        found = probe(hi);
        if (found)
            break;
        lo = hi;
        if (hi >= limit)
            return std::nullopt;
        hi = std::min(limit, hi * 2);
    }
    while (hi - lo > 1) {
        size_t mid = lo + (hi - lo) / 2;
        auto result = probe(mid);
        if (result) {
            found = std::move(result);
            hi = mid;
        } else {
            lo = mid;
        }
    }
    return found;
}

OptimizationResult
MultiClpOptimizer::run() const
{
    std::vector<OrderHeuristic> heuristics;
    if (options_.adjacentLayers) {
        // Section 4.1: contiguous runs of the pipeline order.
        heuristics.push_back(OrderHeuristic::AsIs);
    } else if (options_.heuristic) {
        heuristics.push_back(*options_.heuristic);
    } else if (options_.singleClp) {
        // A single CLP computes all layers; the order is irrelevant.
        heuristics.push_back(OrderHeuristic::AsIs);
    } else if (budget_.bandwidthLimited()) {
        heuristics.push_back(OrderHeuristic::ComputeToData);
        heuristics.push_back(OrderHeuristic::NmDistance);
        heuristics.push_back(OrderHeuristic::AsIs);
    } else {
        heuristics.push_back(OrderHeuristic::NmDistance);
        heuristics.push_back(OrderHeuristic::ComputeToData);
        heuristics.push_back(OrderHeuristic::AsIs);
    }

    // Heuristics that resolve to the same layer order would run the
    // identical search twice (and, warm, contend on the same shared
    // FrontierTable); only the first occurrence can ever win the
    // strict best-result comparison, so duplicates are dropped.
    {
        std::vector<std::vector<size_t>> orders;
        std::vector<OrderHeuristic> unique;
        for (OrderHeuristic heuristic : heuristics) {
            std::vector<size_t> order = orderLayers(network_, heuristic);
            if (std::find(orders.begin(), orders.end(), order) !=
                orders.end())
                continue;
            orders.push_back(std::move(order));
            unique.push_back(heuristic);
        }
        heuristics = std::move(unique);
    }

    bool frontier = options_.engine == OptimizerEngine::Frontier;
    std::unique_ptr<util::ThreadPool> pool;
    if (frontier && util::resolveThreads(options_.threads) > 1)
        pool = std::make_unique<util::ThreadPool>(options_.threads);
    // One tiling memo across heuristic runs: the same layer lands on
    // the same shapes under different orders. The Reference engine
    // keeps per-run tables so its timings stay closer to the seed
    // baseline (it still memoizes within a run; BENCH_optimizer.json
    // records the true pre-engine seed numbers separately). A warm
    // session's memo additionally persists across runs and budgets.
    std::shared_ptr<TilingOptionCache> cache;
    if (options_.caches)
        cache = options_.caches->tilings();
    else if (frontier)
        cache = std::make_shared<TilingOptionCache>();

    std::vector<std::optional<OptimizationResult>> results(
        heuristics.size());
    auto evaluate = [&](size_t hi) {
        results[hi] = runWithOrder(heuristics[hi], pool.get(), cache);
    };
    if (pool && heuristics.size() > 1) {
        pool->parallelFor(heuristics.size(), evaluate);
    } else {
        for (size_t hi = 0; hi < heuristics.size(); ++hi)
            evaluate(hi);
    }

    std::optional<OptimizationResult> best;
    for (std::optional<OptimizationResult> &result : results) {
        if (!result)
            continue;
        if (!best ||
            result->metrics.epochCycles < best->metrics.epochCycles) {
            best = std::move(result);
        }
    }
    if (!best) {
        util::fatal("MultiClpOptimizer: no feasible design for %s "
                    "within %d iterations (DSP=%lld BRAM=%lld)",
                    network_.name().c_str(), options_.maxIterations,
                    static_cast<long long>(budget_.dspSlices),
                    static_cast<long long>(budget_.bram18k));
    }
    return std::move(*best);
}

OptimizationResult
optimizeSingleClp(const nn::Network &network, fpga::DataType type,
                  const fpga::ResourceBudget &budget)
{
    OptimizerOptions options;
    options.singleClp = true;
    return MultiClpOptimizer(network, type, budget, options).run();
}

OptimizationResult
optimizeMultiClp(const nn::Network &network, fpga::DataType type,
                 const fpga::ResourceBudget &budget, int max_clps)
{
    OptimizerOptions options;
    options.maxClps = max_clps;
    return MultiClpOptimizer(network, type, budget, options).run();
}

} // namespace core
} // namespace mclp
