#include "core/optimizer.h"

#include <algorithm>
#include <cmath>

#include "model/cycle_model.h"
#include "model/dsp_model.h"
#include "util/logging.h"
#include "util/math.h"

namespace mclp {
namespace core {

MultiClpOptimizer::MultiClpOptimizer(const nn::Network &network,
                                     fpga::DataType type,
                                     fpga::ResourceBudget budget,
                                     OptimizerOptions options)
    : network_(network), type_(type), budget_(budget), options_(options)
{
    budget_.validate();
    if (options_.maxClps < 1)
        util::fatal("MultiClpOptimizer: maxClps must be >= 1");
    if (options_.targetStep <= 0.0 || options_.targetStep >= 1.0)
        util::fatal("MultiClpOptimizer: targetStep must be in (0, 1)");
    if (network_.numLayers() == 0)
        util::fatal("MultiClpOptimizer: network has no layers");
}

std::optional<OptimizationResult>
MultiClpOptimizer::runWithOrder(OrderHeuristic heuristic) const
{
    int max_clps = options_.singleClp ? 1 : options_.maxClps;
    std::vector<size_t> order = orderLayers(network_, heuristic);
    ComputeOptimizer compute(network_, type_, order, max_clps);
    MemoryOptimizer memory(network_, type_);

    int64_t units = model::macBudget(budget_.dspSlices, type_);
    if (units < 1)
        util::fatal("MultiClpOptimizer: DSP budget %lld cannot build a "
                    "single MAC unit",
                    static_cast<long long>(budget_.dspSlices));
    int64_t cycles_min = model::minimumPossibleCycles(network_, units);

    double target = 1.0;
    for (int iter = 1; iter <= options_.maxIterations; ++iter) {
        int64_t cycle_target = static_cast<int64_t>(
            std::ceil(static_cast<double>(cycles_min) / target));
        std::vector<ComputePartition> candidates =
            compute.optimize(budget_.dspSlices, cycle_target);

        std::optional<OptimizationResult> best;
        for (const ComputePartition &partition : candidates) {
            auto design = memory.optimize(partition, budget_,
                                          cycle_target);
            if (!design)
                continue;
            model::DesignMetrics metrics =
                model::evaluateDesign(*design, network_, budget_);
            bool better =
                !best ||
                metrics.epochCycles < best->metrics.epochCycles ||
                (metrics.epochCycles == best->metrics.epochCycles &&
                 (metrics.peakBandwidthBytesPerCycle <
                      best->metrics.peakBandwidthBytesPerCycle ||
                  (metrics.peakBandwidthBytesPerCycle ==
                       best->metrics.peakBandwidthBytesPerCycle &&
                   design->clps.size() < best->design.clps.size())));
            if (better) {
                OptimizationResult result;
                result.design = std::move(*design);
                result.metrics = metrics;
                result.partition = partition;
                result.usedHeuristic = heuristic;
                result.achievedTarget = target;
                result.iterations = iter;
                best = std::move(result);
            }
        }
        if (best)
            return best;

        target -= options_.targetStep;
        if (target <= options_.targetStep / 2.0)
            break;
    }
    return std::nullopt;
}

OptimizationResult
MultiClpOptimizer::run() const
{
    std::vector<OrderHeuristic> heuristics;
    if (options_.adjacentLayers) {
        // Section 4.1: contiguous runs of the pipeline order.
        heuristics.push_back(OrderHeuristic::AsIs);
    } else if (options_.heuristic) {
        heuristics.push_back(*options_.heuristic);
    } else if (options_.singleClp) {
        // A single CLP computes all layers; the order is irrelevant.
        heuristics.push_back(OrderHeuristic::AsIs);
    } else if (budget_.bandwidthLimited()) {
        heuristics.push_back(OrderHeuristic::ComputeToData);
        heuristics.push_back(OrderHeuristic::NmDistance);
        heuristics.push_back(OrderHeuristic::AsIs);
    } else {
        heuristics.push_back(OrderHeuristic::NmDistance);
        heuristics.push_back(OrderHeuristic::ComputeToData);
        heuristics.push_back(OrderHeuristic::AsIs);
    }

    std::optional<OptimizationResult> best;
    for (OrderHeuristic heuristic : heuristics) {
        auto result = runWithOrder(heuristic);
        if (!result)
            continue;
        if (!best ||
            result->metrics.epochCycles < best->metrics.epochCycles) {
            best = std::move(result);
        }
    }
    if (!best) {
        util::fatal("MultiClpOptimizer: no feasible design for %s "
                    "within %d iterations (DSP=%lld BRAM=%lld)",
                    network_.name().c_str(), options_.maxIterations,
                    static_cast<long long>(budget_.dspSlices),
                    static_cast<long long>(budget_.bram18k));
    }
    return std::move(*best);
}

OptimizationResult
optimizeSingleClp(const nn::Network &network, fpga::DataType type,
                  const fpga::ResourceBudget &budget)
{
    OptimizerOptions options;
    options.singleClp = true;
    return MultiClpOptimizer(network, type, budget, options).run();
}

OptimizationResult
optimizeMultiClp(const nn::Network &network, fpga::DataType type,
                 const fpga::ResourceBudget &budget, int max_clps)
{
    OptimizerOptions options;
    options.maxClps = max_clps;
    return MultiClpOptimizer(network, type, budget, options).run();
}

} // namespace core
} // namespace mclp
