#include "core/session_registry.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "core/dse_request.h"
#include "core/frontier_cache.h"
#include "model/dsp_model.h"
#include "util/logging.h"

namespace mclp {
namespace core {

SessionRegistry::SessionRegistry(size_t max_sessions, size_t max_bytes,
                                 int session_threads,
                                 std::shared_ptr<FrontierCache> cache)
    : maxSessions_(std::max<size_t>(1, max_sessions)),
      maxBytes_(max_bytes), sessionThreads_(session_threads),
      cache_(std::move(cache)),
      store_(std::make_shared<FrontierRowStore>())
{
    if (cache_)
        store_->attachCache(cache_);
}

SessionRegistry::~SessionRegistry()
{
    // Write-back on session close: every tool and the service own
    // their registry, so registry death is the one reliable "process
    // is done exploring" hook.
    if (cache_)
        cache_->flush();
}

namespace {

bool
sameDims(const nn::Network &a, const nn::Network &b)
{
    if (a.numLayers() != b.numLayers())
        return false;
    for (size_t i = 0; i < a.numLayers(); ++i) {
        if (!a.layer(i).sameShape(b.layer(i)))
            return false;
    }
    return true;
}

} // namespace

size_t
SessionRegistry::estimateSessionBytes(const nn::Network &network,
                                      fpga::DataType type,
                                      int64_t max_dsp_budget)
{
    if (max_dsp_budget <= 0)
        return 0;
    // Saturating arithmetic: the codec deliberately accepts budgets
    // up to INT64_MAX, and a wrapped product here would silently skip
    // the very admission check such a request exists to trigger.
    uint64_t units =
        static_cast<uint64_t>(model::macBudget(max_dsp_budget, type));
    uint64_t bytes;
    if (__builtin_mul_overflow(units,
                               uint64_t{ShapeFrontier::kBytesPerPoint},
                               &bytes) ||
        __builtin_mul_overflow(
            bytes, static_cast<uint64_t>(network.numLayers()), &bytes) ||
        bytes > std::numeric_limits<size_t>::max())
        return std::numeric_limits<size_t>::max();
    return static_cast<size_t>(bytes);
}

std::shared_ptr<DseSession>
SessionRegistry::session(const nn::Network &network,
                         const std::string &device, fpga::DataType type,
                         int64_t max_dsp_budget)
{
    SessionKey key{networkSignature(network), device, type};
    std::lock_guard<std::mutex> lock(mutex_);
    size_t estimate = 0;
    if (maxBytes_ > 0) {
        // Admission control, checked on hits and misses alike so the
        // answer never depends on warmth: a request whose estimated
        // warm state could never fit the whole byte budget is
        // rejected as the user error it is — even when its session
        // is already resident (serving it would grow that session's
        // tables to the oversized cap, re-opening the overshoot this
        // check exists to prevent).
        estimate = estimateSessionBytes(network, type, max_dsp_budget);
        if (estimate > maxBytes_) {
            util::fatal(
                "session registry: %s (%zu layers) at %lld DSP "
                "slices is estimated at ~%zu KiB of warm state, "
                "over the whole %zu KiB registry budget; raise "
                "--max-bytes-mb or trim the budget ladder",
                network.name().c_str(), network.numLayers(),
                static_cast<long long>(max_dsp_budget),
                estimate / 1024, maxBytes_ / 1024);
        }
    }
    auto it = entries_.find(key);
    // The signature is a 64-bit dims hash and inline-layer requests
    // control the dims, so a hit must be verified against the actual
    // layer sequence; a true collision is disambiguated by probing
    // suffixed keys rather than silently answering with another
    // network's session.
    while (it != entries_.end() &&
           !sameDims(it->second->network, network)) {
        key.signature += "+";
        it = entries_.find(key);
    }
    bool warm = it != entries_.end();
    if (!warm) {
        // Enforcing the byte budget only after the build would let a
        // burst of giant networks transiently blow it: evict up
        // front until the estimated newcomer fits. Pre-eviction only
        // helps when eviction can actually free what the newcomer
        // will allocate — with a persistent cache attached, built
        // rows are immediately pinned by the cache mirror (and
        // excluded from the byte measurement), so the reject check
        // above is the protection there.
        while (!cache_ && estimate > 0 &&
               memoryBytesLocked() + estimate > maxBytes_ &&
               evictLruLocked(nullptr)) {
        }
        ++misses_;
        auto entry = std::make_shared<Entry>();
        entry->network = network;
        entry->session = std::make_unique<DseSession>(
            entry->network, type, sessionThreads_, store_, cache_);
        it = entries_.emplace(std::move(key), std::move(entry)).first;
    } else {
        ++hits_;
    }
    it->second->lastUse = ++tick_;
    ++it->second->uses;
    std::shared_ptr<Entry> entry = it->second;
    enforceCapsLocked(entry.get());
    // Alias the entry so the handle pins the network the session
    // references, even after an eviction drops the registry's copy.
    return std::shared_ptr<DseSession>(entry, entry->session.get());
}

bool
SessionRegistry::evictLruLocked(const Entry *keep)
{
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        if (it->second.get() == keep)
            continue;
        if (victim == entries_.end() ||
            it->second->lastUse < victim->second->lastUse)
            victim = it;
    }
    if (victim == entries_.end())
        return false;
    entries_.erase(victim);
    ++evictions_;
    // Frontier rows only the evicted session referenced would
    // otherwise stay resident forever (the store holds them at use
    // count 1); reclaim them with the session so byte measurements
    // reflect what eviction actually freed. Rows mirrored by the
    // persistent cache stay pinned by it — they are the disk image.
    store_->purgeUnshared();
    return true;
}

void
SessionRegistry::enforceCapsLocked(const Entry *keep)
{
    while (entries_.size() > maxSessions_ && evictLruLocked(keep)) {
    }
    if (maxBytes_ == 0)
        return;
    // The byte budget counts shared rows once (the store owns them).
    while (entries_.size() > 1 && memoryBytesLocked() > maxBytes_) {
        if (!evictLruLocked(keep))
            break;
    }
}

size_t
SessionRegistry::memoryBytesLocked()
{
    size_t bytes = store_->memoryBytes();
    for (const auto &entry : entries_)
        bytes += entry.second->session->memoryBytes();
    return bytes;
}

size_t
SessionRegistry::memoryBytes()
{
    std::lock_guard<std::mutex> lock(mutex_);
    return memoryBytesLocked();
}

std::vector<SessionRegistry::SessionInfo>
SessionRegistry::sessionInfos()
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<SessionInfo> infos;
    infos.reserve(entries_.size());
    for (const auto &kv : entries_) {
        SessionInfo info;
        info.network = kv.second->network.name();
        info.device = kv.first.device;
        info.type = kv.first.type;
        info.uses = kv.second->uses;
        info.hits = kv.second->uses > 0 ? kv.second->uses - 1 : 0;
        infos.push_back(std::move(info));
    }
    return infos;
}

SessionRegistry::Stats
SessionRegistry::stats()
{
    std::lock_guard<std::mutex> lock(mutex_);
    Stats stats;
    stats.hits = hits_;
    stats.misses = misses_;
    stats.evictions = evictions_;
    stats.sessions = entries_.size();
    stats.bytes = memoryBytesLocked();
    return stats;
}

} // namespace core
} // namespace mclp
