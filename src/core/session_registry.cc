#include "core/session_registry.h"

#include <algorithm>
#include <utility>

#include "core/dse_request.h"
#include "util/logging.h"

namespace mclp {
namespace core {

SessionRegistry::SessionRegistry(size_t max_sessions, size_t max_bytes,
                                 int session_threads)
    : maxSessions_(std::max<size_t>(1, max_sessions)),
      maxBytes_(max_bytes), sessionThreads_(session_threads),
      store_(std::make_shared<FrontierRowStore>())
{
}

namespace {

bool
sameDims(const nn::Network &a, const nn::Network &b)
{
    if (a.numLayers() != b.numLayers())
        return false;
    for (size_t i = 0; i < a.numLayers(); ++i) {
        if (!a.layer(i).sameShape(b.layer(i)))
            return false;
    }
    return true;
}

} // namespace

std::shared_ptr<DseSession>
SessionRegistry::session(const nn::Network &network,
                         const std::string &device, fpga::DataType type)
{
    SessionKey key{networkSignature(network), device, type};
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    // The signature is a 64-bit dims hash and inline-layer requests
    // control the dims, so a hit must be verified against the actual
    // layer sequence; a true collision is disambiguated by probing
    // suffixed keys rather than silently answering with another
    // network's session.
    while (it != entries_.end() &&
           !sameDims(it->second->network, network)) {
        key.signature += "+";
        it = entries_.find(key);
    }
    if (it == entries_.end()) {
        ++misses_;
        auto entry = std::make_shared<Entry>();
        entry->network = network;
        entry->session = std::make_unique<DseSession>(
            entry->network, type, sessionThreads_, store_);
        it = entries_.emplace(std::move(key), std::move(entry)).first;
    } else {
        ++hits_;
    }
    it->second->lastUse = ++tick_;
    std::shared_ptr<Entry> entry = it->second;
    enforceCapsLocked(entry.get());
    // Alias the entry so the handle pins the network the session
    // references, even after an eviction drops the registry's copy.
    return std::shared_ptr<DseSession>(entry, entry->session.get());
}

void
SessionRegistry::enforceCapsLocked(const Entry *keep)
{
    auto evict_lru = [&]() -> bool {
        auto victim = entries_.end();
        for (auto it = entries_.begin(); it != entries_.end(); ++it) {
            if (it->second.get() == keep)
                continue;
            if (victim == entries_.end() ||
                it->second->lastUse < victim->second->lastUse)
                victim = it;
        }
        if (victim == entries_.end())
            return false;
        entries_.erase(victim);
        ++evictions_;
        return true;
    };

    bool evicted = false;
    while (entries_.size() > maxSessions_ && evict_lru())
        evicted = true;
    if (evicted) {
        // Frontier rows only the evicted sessions referenced would
        // otherwise stay resident forever (the store holds them at
        // use count 1); reclaim them with the session.
        store_->purgeUnshared();
    }
    if (maxBytes_ == 0)
        return;
    // The byte budget counts shared rows once (the store owns them);
    // purge store rows orphaned by each eviction so the measurement
    // reflects what eviction actually freed.
    while (entries_.size() > 1 && memoryBytesLocked() > maxBytes_) {
        if (!evict_lru())
            break;
        store_->purgeUnshared();
    }
}

size_t
SessionRegistry::memoryBytesLocked()
{
    size_t bytes = store_->memoryBytes();
    for (const auto &entry : entries_)
        bytes += entry.second->session->memoryBytes();
    return bytes;
}

size_t
SessionRegistry::memoryBytes()
{
    std::lock_guard<std::mutex> lock(mutex_);
    return memoryBytesLocked();
}

SessionRegistry::Stats
SessionRegistry::stats()
{
    std::lock_guard<std::mutex> lock(mutex_);
    Stats stats;
    stats.hits = hits_;
    stats.misses = misses_;
    stats.evictions = evictions_;
    stats.sessions = entries_.size();
    stats.bytes = memoryBytesLocked();
    return stats;
}

} // namespace core
} // namespace mclp
