#include "core/layer_order.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "util/logging.h"
#include "util/math.h"

namespace mclp {
namespace core {

std::string
orderHeuristicName(OrderHeuristic heuristic)
{
    switch (heuristic) {
      case OrderHeuristic::NmDistance:
        return "nm-distance";
      case OrderHeuristic::ComputeToData:
        return "compute-to-data";
      case OrderHeuristic::AsIs:
        return "as-is";
    }
    util::panic("orderHeuristicName: bad heuristic");
}

namespace {

/** Nearest-neighbour chain over (N, M), starting from min N+M. */
std::vector<size_t>
nmDistanceOrder(const nn::Network &network)
{
    size_t count = network.numLayers();
    std::vector<bool> used(count, false);

    size_t start = 0;
    int64_t best_key = std::numeric_limits<int64_t>::max();
    for (size_t i = 0; i < count; ++i) {
        int64_t key = network.layer(i).n + network.layer(i).m;
        if (key < best_key) {
            best_key = key;
            start = i;
        }
    }

    std::vector<size_t> order;
    order.reserve(count);
    order.push_back(start);
    used[start] = true;
    while (order.size() < count) {
        const nn::ConvLayer &cur = network.layer(order.back());
        size_t next = count;
        int64_t best_d2 = std::numeric_limits<int64_t>::max();
        for (size_t i = 0; i < count; ++i) {
            if (used[i])
                continue;
            const nn::ConvLayer &cand = network.layer(i);
            int64_t d2 = util::distance2(cur.n, cur.m, cand.n, cand.m);
            if (d2 < best_d2) {
                best_d2 = d2;
                next = i;
            }
        }
        order.push_back(next);
        used[next] = true;
    }
    return order;
}

/** Ascending compute-to-data ratio, ties toward lower index. */
std::vector<size_t>
computeToDataOrder(const nn::Network &network)
{
    std::vector<size_t> order(network.numLayers());
    std::iota(order.begin(), order.end(), size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&](size_t a, size_t b) {
                         return network.layer(a).computeToDataRatio() <
                                network.layer(b).computeToDataRatio();
                     });
    return order;
}

} // namespace

std::vector<size_t>
orderLayers(const nn::Network &network, OrderHeuristic heuristic)
{
    if (network.numLayers() == 0)
        util::fatal("orderLayers: network %s has no layers",
                    network.name().c_str());
    switch (heuristic) {
      case OrderHeuristic::NmDistance:
        return nmDistanceOrder(network);
      case OrderHeuristic::ComputeToData:
        return computeToDataOrder(network);
      case OrderHeuristic::AsIs: {
        std::vector<size_t> order(network.numLayers());
        std::iota(order.begin(), order.end(), size_t{0});
        return order;
      }
    }
    util::panic("orderLayers: bad heuristic");
}

} // namespace core
} // namespace mclp
