/**
 * @file
 * OptimizeMemory (Section 4.3, second step): partition the BRAM budget.
 *
 * For every layer of a compute-partition candidate, choose tiling
 * factors (Tr, Tc) that minimize the CLP's peak off-chip bandwidth
 * subject to the total BRAM budget. Larger tiles enlarge the on-chip
 * buffers but reduce data re-transfer, so BRAM capacity and off-chip
 * bandwidth trade off directly (Figure 6).
 *
 * Implementation: per layer we build the Pareto frontier of
 * (input-bank BRAM cost, output-bank BRAM cost, peak bandwidth) over
 * all (Tr, Tc); a design starts with every layer at its
 * minimum-bandwidth point and a greedy walk repeatedly applies the
 * buffer-shrinking move with the best BRAM-saved-per-bandwidth-added
 * ratio until the budget is met. The walk's trace is the BRAM vs
 * bandwidth tradeoff curve.
 */

#ifndef MCLP_CORE_MEMORY_OPTIMIZER_H
#define MCLP_CORE_MEMORY_OPTIMIZER_H

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <tuple>
#include <vector>

#include "core/compute_optimizer.h"
#include "fpga/device.h"
#include "model/clp_config.h"
#include "nn/network.h"

namespace mclp {
namespace core {

/** One feasible tiling of a layer, annotated with its costs. */
struct TilingOption
{
    model::Tiling tiling;
    int64_t inputBankBrams = 0;   ///< BRAMs per input bank at this tiling
    int64_t outputBankBrams = 0;  ///< BRAMs per output bank
    double peakWordsPerCycle = 0.0;
};

/**
 * Pareto-optimal tiling options for @p layer on a CLP of @p shape,
 * sorted by ascending peak bandwidth. Options dominated in all three
 * of (input cost, output cost, peak) are removed.
 */
std::vector<TilingOption> paretoTilingOptions(const nn::ConvLayer &layer,
                                              const model::ClpShape &shape);

/**
 * Memoizes paretoTilingOptions by (layer dimensions, shape). The
 * optimization loop re-derives tilings for the same layer-on-shape
 * pairing at every target step and across ordering heuristics, and
 * networks repeat layer dimensions (grouped convolutions, fire
 * modules); the table computes each distinct pairing once and hands
 * out shared immutable vectors. Thread safe — concurrent heuristic
 * runs share one cache.
 */
class TilingOptionCache
{
  public:
    using Options = std::shared_ptr<const std::vector<TilingOption>>;

    /** Options for @p layer on @p shape. */
    Options get(const nn::ConvLayer &layer, const model::ClpShape &shape);

  private:
    /** (N, M, R, C, K, S, Tn, Tm) — everything the options depend on. */
    using Key = std::array<int64_t, 8>;

    std::mutex mutex_;
    std::map<Key, Options> table_;
};

/** One point on the BRAM vs bandwidth tradeoff curve (Figure 6). */
struct TradeoffPoint
{
    int64_t totalBram = 0;
    double peakBytesPerCycle = 0.0;
    model::MultiClpDesign design;
};

/** Memory-partitioning search over a compute-partition candidate. */
class MemoryOptimizer
{
  public:
    /**
     * @param cache optional shared tiling memo; when null the
     * optimizer creates a private one, so repeated optimize() calls
     * still reuse tables within this instance.
     */
    MemoryOptimizer(const nn::Network &network, fpga::DataType type,
                    std::shared_ptr<TilingOptionCache> cache = nullptr);

    /**
     * Assign (Tr, Tc) to every layer of @p partition such that total
     * BRAM fits the budget, minimizing peak bandwidth. When the budget
     * carries a bandwidth cap, the finished design must additionally
     * meet @p cycle_target under shared-bandwidth evaluation (possibly
     * with transfer-blocked CLPs). Returns nullopt when infeasible.
     */
    std::optional<model::MultiClpDesign> optimize(
        const ComputePartition &partition,
        const fpga::ResourceBudget &budget, int64_t cycle_target) const;

    /**
     * The full BRAM/bandwidth frontier for a candidate: from the
     * minimum-bandwidth design down to the minimum-BRAM design.
     * Points are ordered by decreasing BRAM.
     */
    std::vector<TradeoffPoint> tradeoffCurve(
        const ComputePartition &partition) const;

  private:
    class ClpState;

    /**
     * Run the greedy frontier walk. Stops as soon as total BRAM is
     * within @p bram_budget (bram_budget < 0 walks the whole curve).
     * Appends every visited point to @p trace when it is non-null.
     */
    std::optional<model::MultiClpDesign> walkFrontier(
        const ComputePartition &partition, int64_t bram_budget,
        std::vector<TradeoffPoint> *trace) const;

    model::MultiClpDesign buildDesign(
        const ComputePartition &partition,
        const std::vector<ClpState> &states) const;

    const nn::Network &network_;
    fpga::DataType type_;
    std::shared_ptr<TilingOptionCache> cache_;

    /**
     * Memo for optimize(): the loosening-target loop re-proposes the
     * same compute partitions at step after step, and the greedy walk
     * is deterministic, so each (partition, budget, effective target)
     * is solved once. The key serializes exactly the inputs the
     * result depends on.
     */
    mutable std::mutex memoMutex_;
    mutable std::map<std::vector<int64_t>,
                     std::optional<model::MultiClpDesign>>
        memo_;
};

/**
 * Re-run OptimizeMemory on an existing design, keeping its CLP shapes
 * and layer assignment but re-deriving every (Tr, Tc) for the given
 * budget. Used to complete published configurations whose tilings the
 * paper does not report (Table 4). Returns nullopt when the BRAM
 * budget cannot be met.
 */
std::optional<model::MultiClpDesign> retileDesign(
    const model::MultiClpDesign &design, const nn::Network &network,
    const fpga::ResourceBudget &budget);

/** Convert a design back into a compute-partition description. */
ComputePartition partitionFromDesign(const model::MultiClpDesign &design,
                                     const nn::Network &network);

} // namespace core
} // namespace mclp

#endif // MCLP_CORE_MEMORY_OPTIMIZER_H
