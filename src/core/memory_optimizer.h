/**
 * @file
 * OptimizeMemory (Section 4.3, second step): partition the BRAM budget.
 *
 * For every layer of a compute-partition candidate, choose tiling
 * factors (Tr, Tc) that minimize the CLP's peak off-chip bandwidth
 * subject to the total BRAM budget. Larger tiles enlarge the on-chip
 * buffers but reduce data re-transfer, so BRAM capacity and off-chip
 * bandwidth trade off directly (Figure 6).
 *
 * Implementation: per layer we build the Pareto frontier of
 * (input-bank BRAM cost, output-bank BRAM cost, peak bandwidth) over
 * all (Tr, Tc); a design starts with every layer at its
 * minimum-bandwidth point and a greedy walk repeatedly applies the
 * buffer-shrinking move with the best BRAM-saved-per-bandwidth-added
 * ratio until the budget is met. The walk's trace is the BRAM vs
 * bandwidth tradeoff curve.
 */

#ifndef MCLP_CORE_MEMORY_OPTIMIZER_H
#define MCLP_CORE_MEMORY_OPTIMIZER_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "core/compute_optimizer.h"
#include "fpga/device.h"
#include "model/clp_config.h"
#include "nn/network.h"
#include "util/arena.h"
#include "util/hash.h"

namespace mclp {
namespace core {

/** One feasible tiling of a layer, annotated with its costs. */
struct TilingOption
{
    model::Tiling tiling;
    int64_t inputBankBrams = 0;   ///< BRAMs per input bank at this tiling
    int64_t outputBankBrams = 0;  ///< BRAMs per output bank
    double peakWordsPerCycle = 0.0;
};

/**
 * Pareto-optimal tiling options for @p layer on a CLP of @p shape,
 * sorted by ascending peak bandwidth. Options dominated in all three
 * of (input cost, output cost, peak) are removed.
 */
std::vector<TilingOption> paretoTilingOptions(const nn::ConvLayer &layer,
                                              const model::ClpShape &shape);

/**
 * A layer's Pareto tiling options plus SoA mirrors of their costs.
 * The greedy walk's probe passes scan the bank-cost lanes with the
 * batched SIMD kernels (util/simd.h) — one contiguous pass per layer
 * instead of a pointer-chasing loop over TilingOption structs; the
 * peaks lane answers the "peak of the first fitting option" lookup.
 * Built once per cache entry; immutable and shared thereafter.
 */
struct TilingOptionSet
{
    std::vector<TilingOption> options;  ///< ascending peak
    std::vector<int64_t> inBrams;       ///< options[i].inputBankBrams
    std::vector<int64_t> outBrams;      ///< options[i].outputBankBrams
    std::vector<double> peaks;          ///< options[i].peakWordsPerCycle
};

// The memo tables' shared hash lives in util/hash.h so the frontier
// row store (shape_frontier.h) can key by the same flattened dims
// sequences; these aliases keep the historical core:: spellings.
using util::hashInt64Words;

/**
 * Memoizes paretoTilingOptions by (layer dimensions, shape). The
 * optimization loop re-derives tilings for the same layer-on-shape
 * pairing at every target step and across ordering heuristics, and
 * networks repeat layer dimensions (grouped convolutions, fire
 * modules); the table computes each distinct pairing once and hands
 * out shared immutable vectors. Thread safe — concurrent heuristic
 * runs share one cache.
 */
class TilingOptionCache
{
  public:
    using Options = std::shared_ptr<const TilingOptionSet>;

    /** Options for @p layer on @p shape. */
    Options get(const nn::ConvLayer &layer, const model::ClpShape &shape);

    /**
     * Rough resident-size estimate (keys + option vectors), for the
     * SessionRegistry's byte budget. Exactness is not needed there;
     * proportionality is.
     */
    size_t memoryBytes();

  private:
    /**
     * (R, C, K, S, Tn, Tm, ceil(N/Tn), pad) — everything the options
     * depend on (see get() for why N enters only through its ceiling
     * and M not at all).
     */
    using Key = std::array<int64_t, 8>;

    struct KeyHash
    {
        size_t
        operator()(const Key &key) const
        {
            return hashInt64Words(key.data(), key.size());
        }
    };

    std::mutex mutex_;
    std::unordered_map<Key, Options, KeyHash> table_;
};

/** One point on the BRAM vs bandwidth tradeoff curve (Figure 6). */
struct TradeoffPoint
{
    int64_t totalBram = 0;
    double peakBytesPerCycle = 0.0;
    model::MultiClpDesign design;
};

using util::Int64VectorHash;

/**
 * One buffer-shrinking move of the greedy memory walk: lower a CLP's
 * input- or output-bank BRAM cost cap to the next achievable level.
 */
struct BufferMove
{
    bool input = false;      ///< shrink input (else output) banks
    int64_t newCap = 0;      ///< new per-bank BRAM cost cap
    int64_t bramAfter = 0;   ///< CLP BRAM use after the move
    double peakAfter = 0.0;  ///< CLP peak bandwidth after (words/cycle)
};

/**
 * Cross-run memo of per-CLP-group tradeoff curves. The greedy walk's
 * probes are pure functions of (data type, CLP shape, layer
 * dimensions, current buffer caps): nothing about the surrounding
 * partition, BRAM budget, or cycle target enters them. A group's walk
 * therefore traverses a fixed state graph — the group's BRAM vs
 * bandwidth tradeoff curve — and this cache memoizes that graph keyed
 * by (range dims, shape, data type), so tradeoffCurve() and
 * budget-capped optimize() calls stop re-walking identical curves
 * across candidates, across targets, and across budgets of a sweep.
 * Values are exact, never heuristic: cached and recomputed walks are
 * bit-identical. Thread safe; a DseSession shares one instance across
 * every run of the session.
 */
class FrontierCache;

class TradeoffCurveCache
{
  public:
    /** Probe results at one cap state, indexed [input, output]. */
    using ProbePair = std::array<std::optional<BufferMove>, 2>;

    /**
     * Attach a persistent cache (core/frontier_cache.h): newly
     * created partition traces are seeded from disk when their key is
     * there, and live traces are noted for write-back at the cache's
     * next flush. Attach before first use. Seeded and cold traces are
     * interchangeable — the walk resumes from wherever the stored
     * prefix ends, and a prefix deeper than a query needs is answered
     * by the same binary search the process-warm path already uses.
     */
    void attachCache(std::shared_ptr<FrontierCache> cache);

    /** One group's memoized walk states: (inCap, outCap) -> probes. */
    class GroupCurve
    {
      public:
        /** Cached probes at a cap state, or null when not yet seen. */
        const ProbePair *find(int64_t in_cap, int64_t out_cap) const;

        /** Record probes for a state; the first insert wins. */
        const ProbePair &insert(int64_t in_cap, int64_t out_cap,
                                ProbePair probes);

        /** Rough resident-size estimate of the memoized states. */
        size_t memoryBytes() const;

      private:
        mutable std::mutex mutex_;
        std::map<std::pair<int64_t, int64_t>, ProbePair> states_;
    };

    /**
     * The curve memo for @p shape over @p layers (network indices).
     * Groups with identical dims share one curve even across
     * different layer indices and different partitions.
     */
    std::shared_ptr<GroupCurve> curve(fpga::DataType type,
                                      const model::ClpShape &shape,
                                      const nn::Network &network,
                                      const std::vector<size_t> &layers);

    /**
     * One applied move of a partition's greedy walk. The recorded
     * caps are the mover's buffer-cost caps after the move (post
     * tightening), which — by the idempotence of the cap/re-pick
     * cycle — are all that is needed to reconstruct the mover's exact
     * tilings at that point of the walk.
     */
    struct PartitionStep
    {
        uint32_t clp = 0;         ///< which CLP moved
        int64_t inCap = 0;        ///< mover's input cap after the move
        int64_t outCap = 0;       ///< mover's output cap after
        int64_t totalBram = 0;    ///< partition BRAM after the move
        double totalPeak = 0.0;   ///< partition peak bytes/cycle after
    };

    /**
     * A partition's walk trace: the deterministic move sequence of
     * the greedy frontier walk, which does not depend on the BRAM
     * budget or cycle target. Total BRAM strictly decreases along the
     * steps, so any budget's stopping point is a binary search, and
     * the design there is rebuilt from the recorded caps — no
     * re-walking. Extended lazily (a cold run stops exactly where the
     * uncached walk would have) and resumed when a later query needs
     * to go deeper. Guarded by its mutex; managed by MemoryOptimizer.
     */
    struct PartitionTrace
    {
        PartitionTrace() { steps.attach(&arena); }

        std::mutex mutex;
        bool initialized = false;
        int64_t initialBram = 0;
        double initialPeak = 0.0;
        /** Bump arena behind the step log: steps append at pointer
         * speed and stay contiguous for the stop-point binary search.
         * Owned here because traces outlive the optimizer runs that
         * grow them (the persistent cache tracks them for write-back);
         * guarded by `mutex` like everything else in the trace. */
        util::Arena arena;
        util::ArenaVector<PartitionStep> steps;
        bool complete = false;  ///< walked to the bottom of the curve
        /** Per-group per-layer options, fetched once for every
         * state reconstruction against this trace. */
        std::vector<std::vector<TilingOptionCache::Options>>
            groupOptions;
        /** Per-group probe memos, resolved once per trace. */
        std::vector<std::shared_ptr<GroupCurve>> groupCurves;
    };

    /**
     * The walk-trace memo for a whole partition, keyed by (data type,
     * per-group shape and layer dims). Partitions with identical
     * signatures share one trace even when their layer indices differ.
     */
    std::shared_ptr<PartitionTrace>
    partitionTrace(fpga::DataType type, const nn::Network &network,
                   const ComputePartition &partition);

    /** Rough resident-size estimate (see TilingOptionCache). */
    size_t memoryBytes();

  private:
    std::mutex mutex_;
    std::shared_ptr<FrontierCache> cache_;  ///< optional disk layer
    std::unordered_map<std::vector<int64_t>, std::shared_ptr<GroupCurve>,
                       Int64VectorHash>
        curves_;
    std::unordered_map<std::vector<int64_t>,
                       std::shared_ptr<PartitionTrace>, Int64VectorHash>
        traces_;
};

/** Memory-partitioning search over a compute-partition candidate. */
class MemoryOptimizer
{
  public:
    /**
     * @param cache optional shared tiling memo; when null the
     * optimizer creates a private one, so repeated optimize() calls
     * still reuse tables within this instance.
     * @param curves optional shared tradeoff-curve memo; when null a
     * private one is created (probes still dedup across candidates
     * and targets within this instance). A DseSession passes its warm
     * cache here to reuse curves across budgets.
     */
    MemoryOptimizer(const nn::Network &network, fpga::DataType type,
                    std::shared_ptr<TilingOptionCache> cache = nullptr,
                    std::shared_ptr<TradeoffCurveCache> curves = nullptr);

    /**
     * Assign (Tr, Tc) to every layer of @p partition such that total
     * BRAM fits the budget, minimizing peak bandwidth. When the budget
     * carries a bandwidth cap, the finished design must additionally
     * meet @p cycle_target under shared-bandwidth evaluation (possibly
     * with transfer-blocked CLPs). Returns nullopt when infeasible.
     */
    std::optional<model::MultiClpDesign> optimize(
        const ComputePartition &partition,
        const fpga::ResourceBudget &budget, int64_t cycle_target) const;

    /**
     * The full BRAM/bandwidth frontier for a candidate: from the
     * minimum-bandwidth design down to the minimum-BRAM design.
     * Points are ordered by decreasing BRAM.
     */
    std::vector<TradeoffPoint> tradeoffCurve(
        const ComputePartition &partition) const;

  private:
    class ClpState;

    /**
     * Fresh maximum-buffer states, one per partition group, sharing
     * the trace's pre-fetched tiling options (filled on first use).
     */
    std::vector<ClpState> makeStates(
        const ComputePartition &partition,
        TradeoffCurveCache::PartitionTrace &trace) const;

    /**
     * Run the greedy frontier walk from wherever @p trace currently
     * ends, appending one PartitionStep per move, until total BRAM is
     * within @p bram_budget (walking the whole curve when
     * bram_budget < 0). A cold first call stops exactly where the
     * never-cached walk would have stopped; later calls resume. The
     * caller holds the trace mutex.
     */
    void extendTrace(const ComputePartition &partition,
                     TradeoffCurveCache::PartitionTrace &trace,
                     int64_t bram_budget) const;

    /**
     * Reconstruct every CLP's exact state at step @p idx of the trace
     * (-1 = the initial maximum-buffer point) from the recorded caps.
     */
    std::vector<ClpState> statesAt(
        const ComputePartition &partition,
        TradeoffCurveCache::PartitionTrace &trace,
        ptrdiff_t idx) const;

    model::MultiClpDesign buildDesign(
        const ComputePartition &partition,
        const std::vector<ClpState> &states) const;

    const nn::Network &network_;
    fpga::DataType type_;
    std::shared_ptr<TilingOptionCache> cache_;
    std::shared_ptr<TradeoffCurveCache> curves_;

    /**
     * Memo for optimize(): the loosening-target loop re-proposes the
     * same compute partitions at step after step, and the greedy walk
     * is deterministic, so each (partition, budget, effective target)
     * is solved once. The key serializes exactly the inputs the
     * result depends on.
     */
    mutable std::mutex memoMutex_;
    mutable std::unordered_map<std::vector<int64_t>,
                               std::optional<model::MultiClpDesign>,
                               Int64VectorHash>
        memo_;
};

/**
 * Re-run OptimizeMemory on an existing design, keeping its CLP shapes
 * and layer assignment but re-deriving every (Tr, Tc) for the given
 * budget. Used to complete published configurations whose tilings the
 * paper does not report (Table 4). Returns nullopt when the BRAM
 * budget cannot be met.
 */
std::optional<model::MultiClpDesign> retileDesign(
    const model::MultiClpDesign &design, const nn::Network &network,
    const fpga::ResourceBudget &budget);

/** Convert a design back into a compute-partition description. */
ComputePartition partitionFromDesign(const model::MultiClpDesign &design,
                                     const nn::Network &network);

} // namespace core
} // namespace mclp

#endif // MCLP_CORE_MEMORY_OPTIMIZER_H
