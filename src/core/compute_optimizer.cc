#include "core/compute_optimizer.h"

#include <algorithm>
#include <limits>

#include "model/cycle_model.h"
#include "model/dsp_model.h"
#include "util/logging.h"
#include "util/math.h"
#include "util/prof.h"

namespace mclp {
namespace core {

namespace {

constexpr int64_t kInfinity = std::numeric_limits<int64_t>::max() / 4;

} // namespace

ComputeOptimizer::ComputeOptimizer(const nn::Network &network,
                                   fpga::DataType type,
                                   std::vector<size_t> order, int max_clps,
                                   ComputeEngine engine,
                                   util::ThreadPool *pool,
                                   FrontierTable *shared_frontiers)
    : network_(network), type_(type), order_(std::move(order)),
      maxClps_(max_clps), engine_(engine), pool_(pool),
      sharedFrontiers_(shared_frontiers)
{
    if (order_.size() != network_.numLayers())
        util::fatal("ComputeOptimizer: order length %zu != layer count "
                    "%zu", order_.size(), network_.numLayers());
    if (maxClps_ < 1)
        util::fatal("ComputeOptimizer: max_clps must be >= 1");
    if (sharedFrontiers_ &&
        (sharedFrontiers_->order() != order_ ||
         sharedFrontiers_->maxClps() != maxClps_))
        util::fatal("ComputeOptimizer: shared FrontierTable was built "
                    "for a different order or CLP limit");
}

std::optional<ComputeOptimizer::RangeChoice>
ComputeOptimizer::bestShapeForRange(size_t i, size_t j,
                                    int64_t dsp_budget,
                                    int64_t cycle_target)
{
    // Per-layer dimensions for the range, gathered once.
    std::vector<const nn::ConvLayer *> layers;
    int64_t max_n = 0;
    int64_t max_m = 0;
    int64_t range_macs = 0;
    for (size_t p = i; p <= j; ++p) {
        const nn::ConvLayer &layer = network_.layer(order_[p]);
        layers.push_back(&layer);
        // Shapes never profit from exceeding the per-group extents: a
        // grouped layer only ever convolves N/G inputs to M/G outputs
        // at a time.
        max_n = std::max(max_n, layer.groupN());
        max_m = std::max(max_m, layer.groupM());
        range_macs += layer.macs();
    }

    int64_t units_budget = model::macBudget(dsp_budget, type_);
    // cycles >= macs / (Tn*Tm), so the target induces a unit floor.
    int64_t min_units = util::ceilDiv(range_macs, cycle_target);
    if (min_units > units_budget)
        return std::nullopt;

    // Cycles for the range with a given shape.
    auto rangeCycles = [&](int64_t tn, int64_t tm) {
        int64_t total = 0;
        for (const nn::ConvLayer *layer : layers) {
            total += layer->g * layer->r * layer->c *
                     util::ceilDiv(layer->groupN(), tn) *
                     util::ceilDiv(layer->groupM(), tm) * layer->k *
                     layer->k;
            if (total > cycle_target)
                return kInfinity;
        }
        return total;
    };

    std::optional<RangeChoice> best;
    int64_t tn_cap = std::min(max_n, units_budget);
    for (int64_t tn = 1; tn <= tn_cap; ++tn) {
        // Skip Tn values that do not change any ceil(N/Tn): they cost
        // at least as much DSP for identical cycle counts.
        if (tn > 1) {
            bool changes = false;
            for (const nn::ConvLayer *layer : layers) {
                if (util::ceilDiv(layer->groupN(), tn) !=
                    util::ceilDiv(layer->groupN(), tn - 1)) {
                    changes = true;
                    break;
                }
            }
            if (!changes)
                continue;
        }

        int64_t tm_cap = std::min(max_m, units_budget / tn);
        if (tm_cap < 1)
            break;
        // Prune: even the cheapest feasible Tm cannot beat the best.
        // (A tie is not pruned — it may still win on fewer cycles.)
        int64_t tm_floor = util::ceilDiv(min_units, tn);
        if (tm_floor > tm_cap)
            continue;
        if (best &&
            model::clpDsp({tn, tm_floor}, type_) > best->dsp)
            continue;
        if (rangeCycles(tn, tm_cap) > cycle_target)
            continue;  // infeasible even at the largest Tm

        // Cycles are non-increasing in Tm: binary search the minimum
        // feasible Tm in [tm_floor, tm_cap].
        int64_t lo = tm_floor;
        int64_t hi = tm_cap;
        while (lo < hi) {
            int64_t mid = lo + (hi - lo) / 2;
            if (rangeCycles(tn, mid) <= cycle_target)
                hi = mid;
            else
                lo = mid + 1;
        }
        model::ClpShape shape{tn, lo};
        int64_t dsp = model::clpDsp(shape, type_);
        if (dsp > dsp_budget)
            continue;
        int64_t cycles = rangeCycles(tn, lo);
        if (!best || dsp < best->dsp ||
            (dsp == best->dsp && cycles < best->cycles)) {
            best = RangeChoice{shape, dsp, cycles};
        }
    }
    return best;
}

void
ComputeOptimizer::fillRangesReference(
    std::vector<std::vector<std::optional<RangeChoice>>> &range,
    int max_k, int64_t dsp_budget, int64_t cycle_target)
{
    size_t count = order_.size();
    for (size_t i = 0; i < count; ++i) {
        for (size_t j = i; j < count; ++j) {
            bool usable = (i == 0 && j == count - 1) ||
                          (max_k >= 2 && (i == 0 || j == count - 1)) ||
                          max_k >= 3;
            if (!usable)
                continue;
            range[i][j] = bestShapeForRange(i, j, dsp_budget,
                                            cycle_target);
            // Longer ranges only add work; once infeasible at full
            // budget, every extension is too.
            if (!range[i][j] && !(i == 0 && j + 1 == count)) {
                break;
            }
        }
    }
}

void
ComputeOptimizer::fillRangesFrontier(
    std::vector<std::vector<std::optional<RangeChoice>>> &range,
    int max_k, int64_t dsp_budget, int64_t cycle_target)
{
    FrontierTable *table = sharedFrontiers_;
    if (!table) {
        if (!frontiers_)
            frontiers_.emplace(network_, type_, order_, maxClps_);
        table = &*frontiers_;
    }
    // Tables lock per row (and choose() self-heals rows a concurrent
    // run rebuilt), so shared tables no longer serialize a sweep's
    // concurrent budgets behind one mutex — and prepare() can fan out
    // over the pool even when shared: tasks hold only their own row's
    // lock and never steal while holding it, so the
    // help-while-waiting pool cannot re-enter a held mutex.
    table->prepare(dsp_budget, cycle_target, pool_);

    // Frontier-build work triggered from inside choose() (a row the
    // prepare pass stopped short of) charges FrontierBuild, not this
    // scope — the profiler attributes self time.
    util::prof::Scope prof_scope(util::prof::Phase::FrontierQuery);
    size_t count = order_.size();
    for (size_t i = 0; i < count; ++i) {
        for (size_t j = i; j < count; ++j) {
            auto point = table->choose(i, j, dsp_budget, cycle_target);
            if (!point)
                continue;
            range[i][j] = RangeChoice{point->shape, point->dsp,
                                      point->cycles};
        }
    }
    (void)max_k;  // the frontier table already encodes range usability
}

std::vector<ComputePartition>
ComputeOptimizer::optimize(int64_t dsp_budget, int64_t cycle_target)
{
    if (dsp_budget <= 0 || cycle_target <= 0)
        util::fatal("ComputeOptimizer::optimize: budget and target must "
                    "be positive");
    if (dsp_budget == lastBudget_ && cycle_target == lastTarget_)
        return lastCandidates_;

    size_t count = order_.size();
    int max_k = std::min<int>(maxClps_, static_cast<int>(count));

    // Range table: best[i][j] = min-DSP shape for order_[i..j]. Only
    // ranges a <= max_k partition can actually use are filled: with
    // one CLP only the full span matters, with two CLPs a span must
    // touch one end of the order. Scratch tables persist across calls
    // (the target search probes this dozens of times per run).
    auto &range = rangeScratch_;
    range.resize(count);
    for (auto &row : range) {
        row.assign(count, std::nullopt);
    }
    if (engine_ == ComputeEngine::Frontier)
        fillRangesFrontier(range, max_k, dsp_budget, cycle_target);
    else
        fillRangesReference(range, max_k, dsp_budget, cycle_target);

    // DP over prefixes: cost[k][e] = min total DSP covering the first
    // e ordered layers with exactly k CLPs.
    auto &cost = costScratch_;
    auto &prev = prevScratch_;
    cost.resize(static_cast<size_t>(max_k) + 1);
    prev.resize(static_cast<size_t>(max_k) + 1);
    for (auto &row : cost)
        row.assign(count + 1, kInfinity);
    for (auto &row : prev)
        row.assign(count + 1, 0);
    cost[0][0] = 0;
    for (int k = 1; k <= max_k; ++k) {
        for (size_t e = 1; e <= count; ++e) {
            size_t b_min = static_cast<size_t>(k - 1) < e
                               ? static_cast<size_t>(k - 1)
                               : e;
            for (size_t b = b_min; b < e; ++b) {
                if (cost[k - 1][b] >= kInfinity)
                    continue;
                const auto &choice = range[b][e - 1];
                if (!choice)
                    continue;
                int64_t total = cost[k - 1][b] + choice->dsp;
                if (total < cost[k][e]) {
                    cost[k][e] = total;
                    prev[k][e] = b;
                }
            }
        }
    }

    // One candidate per feasible CLP count, cheapest DSP first.
    std::vector<ComputePartition> candidates;
    for (int k = 1; k <= max_k; ++k) {
        if (cost[k][count] > dsp_budget)
            continue;
        ComputePartition partition;
        partition.totalDsp = cost[k][count];
        size_t e = count;
        std::vector<std::pair<size_t, size_t>> spans;
        for (int kk = k; kk >= 1; --kk) {
            size_t b = prev[kk][e];
            spans.emplace_back(b, e - 1);
            e = b;
        }
        std::reverse(spans.begin(), spans.end());
        for (auto [b, last] : spans) {
            const auto &choice = range[b][last];
            if (!choice)
                util::panic("ComputeOptimizer: DP reconstructed an "
                            "infeasible range");
            ComputeGroup group;
            group.shape = choice->shape;
            group.dsp = choice->dsp;
            group.cycles = choice->cycles;
            for (size_t p = b; p <= last; ++p)
                group.layers.push_back(order_[p]);
            partition.groups.push_back(std::move(group));
        }
        candidates.push_back(std::move(partition));
    }
    std::stable_sort(candidates.begin(), candidates.end(),
                     [](const ComputePartition &a,
                        const ComputePartition &b) {
                         return a.totalDsp < b.totalDsp;
                     });
    lastBudget_ = dsp_budget;
    lastTarget_ = cycle_target;
    lastCandidates_ = candidates;
    return candidates;
}

} // namespace core
} // namespace mclp
