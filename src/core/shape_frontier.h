/**
 * @file
 * Pareto-frontier shape cache for the OptimizeCompute search.
 *
 * For a fixed run of layers, the cost of a CLP shape (Tn, Tm) is two
 * monotone quantities: DSP (increasing in Tn*Tm) and compute cycles
 * (non-increasing in Tn and Tm). The Listing-3 loop re-evaluates the
 * same layer ranges for up to 2000 cycle targets, re-enumerating every
 * shape each time; but the answer it seeks — the minimum-DSP shape
 * meeting the target — always lies on the Pareto frontier of
 * (dsp, cycles) over all shapes, and that frontier does not depend on
 * the target at all. ShapeFrontier precomputes the frontier once per
 * range, reducing every subsequent target query to a binary search.
 *
 * Only shapes that can ever win are enumerated: Tn values where some
 * layer's ceil(N/Tn) changes (a larger Tn with identical ceilings
 * costs more DSP for the same cycles) crossed with, per Tn, the Tm
 * values where the range's cycle count steps. Per-dimension breakpoint
 * tables are shared network-wide through BreakpointCache, so frontier
 * construction skips redundant tile sizes in O(1).
 *
 * The frontier is sorted by strictly increasing DSP, so a DSP budget
 * never requires a rebuild either: the shapes affordable under any
 * budget are a prefix of the budget-free frontier, and a capped query
 * is an upper-bound binary search. FrontierTable exploits this by
 * building every range's frontier exactly once with no units cap and
 * answering (budget, target) pairs by prefix truncation — one build
 * serves an entire budget sweep (see core::DseSession).
 *
 * FrontierTable manages the frontiers of every range the partition DP
 * can use, building them lazily as loosening targets make longer
 * ranges relevant, optionally fanning construction out over a thread
 * pool. Queries reproduce the brute-force search bit-exactly
 * (tie-breaks included), which tests/core/test_shape_frontier.cc
 * asserts against randomized ranges.
 */

#ifndef MCLP_CORE_SHAPE_FRONTIER_H
#define MCLP_CORE_SHAPE_FRONTIER_H

#include <cstdint>
#include <limits>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "fpga/data_type.h"
#include "model/clp_config.h"
#include "nn/network.h"
#include "util/thread_pool.h"

namespace mclp {
namespace core {

/**
 * Shared per-dimension breakpoint tables. For a dimension size d, the
 * breakpoints are the tile sizes t (ascending, starting at 1) where
 * ceil(d/t) differs from ceil(d/(t-1)); all other tile sizes are
 * redundant. Each breakpoint carries its ceiling, so consumers never
 * divide. Tables are memoized by d, so every layer sharing a channel
 * count is computed once per network.
 */
class BreakpointCache
{
  public:
    struct Table
    {
        std::vector<int64_t> bps;    ///< ascending, starts at 1
        std::vector<int64_t> ceils;  ///< ceil(d / bps[k])
    };

    /** Breakpoints of ceil(d/t) for t in [1, d], with their values. */
    const Table &table(int64_t d);

    /** Convenience: just the breakpoints. */
    const std::vector<int64_t> &
    breakpoints(int64_t d)
    {
        return table(d).bps;
    }

  private:
    std::unordered_map<int64_t, Table> tables_;
};

/** "No constraint" sentinel for unit/DSP caps (never overflows). */
constexpr int64_t kUnboundedResources =
    std::numeric_limits<int64_t>::max() / 4;

/** One Pareto-optimal shape of a layer range. */
struct FrontierPoint
{
    model::ClpShape shape;
    int64_t dsp = 0;     ///< strictly increasing along the frontier
    int64_t cycles = 0;  ///< strictly decreasing along the frontier
};

/**
 * The (dsp, cycles) Pareto frontier over all CLP shapes for one run of
 * layers, under a fixed DSP budget.
 */
class ShapeFrontier
{
  public:
    class Builder;

    /**
     * Enumerate shapes for @p layers (in range order) and keep the
     * frontier. @p units_budget caps Tn*Tm (the MAC budget implied by
     * the DSP budget); shapes beyond it can never fit and are not
     * stored. @p scratch supplies the breakpoint tables.
     */
    ShapeFrontier(const std::vector<const nn::ConvLayer *> &layers,
                  fpga::DataType type, int64_t units_budget,
                  BreakpointCache &scratch);

    /**
     * Minimum-DSP shape finishing the range within @p cycle_target,
     * breaking DSP ties toward fewer cycles, then smaller Tn — the
     * exact choice of the brute-force enumeration. nullopt when no
     * stored shape meets the target. @p max_dsp restricts the search
     * to the affordable prefix (DSP is strictly increasing along the
     * frontier), so a budget-free frontier answers any budget without
     * a rebuild.
     */
    const FrontierPoint *
    query(int64_t cycle_target,
          int64_t max_dsp = kUnboundedResources) const;

    /** True when not even the largest affordable shape can help. */
    bool empty() const { return points_.empty(); }

    /** Fewest cycles any affordable shape achieves on this range. */
    int64_t
    minCycles() const
    {
        return points_.empty() ? 0 : points_.back().cycles;
    }

    /**
     * Fewest cycles achievable with shapes costing at most @p max_dsp
     * slices; kUnboundedResources when no stored shape is affordable
     * (the range cannot meet any target under that budget).
     */
    int64_t minCycles(int64_t max_dsp) const;

    const std::vector<FrontierPoint> &points() const { return points_; }

  private:
    friend class Builder;

    ShapeFrontier() = default;

    std::vector<FrontierPoint> points_;
};

/**
 * Reusable frontier constructor for one growing run of layers. A row
 * of the range table extends one layer at a time ([i..j] to [i..j+1]).
 *
 * Shape cost is additive over layers, so the builder keeps a dense
 * grid of exact cycle counts over (merged Tn breakpoints x merged Tm
 * breakpoints): appending a layer is one rank-1 update
 * (grid += area[tn] * mceil[tm]) and building a frontier is a pure
 * read of the grid — no per-extension re-enumeration at all. When a
 * layer introduces new breakpoints the grid re-expands by run-length
 * copying (cycle counts are constant between breakpoints); layers
 * repeating already-seen channel counts (grouped convolutions,
 * inception modules) add no breakpoints and skip that entirely.
 */
class ShapeFrontier::Builder
{
  public:
    /** Forget all layers (scratch capacity is kept). */
    void reset();

    /** Append the next layer of the run. */
    void addLayer(const nn::ConvLayer &layer, BreakpointCache &scratch);

    /** Frontier over the layers added so far. */
    ShapeFrontier build(fpga::DataType type, int64_t units_budget);

  private:
    /** Per-unit-count slot of the dense staircase sweep. */
    struct Bucket
    {
        int64_t cycles = -1;
        int32_t tn = 0;
        int32_t tm = 0;
    };

    /** One enumerated shape, keyed for the sparse staircase sweep. */
    struct Candidate
    {
        int64_t units = 0;   ///< Tn * Tm
        int64_t cycles = 0;  ///< exact range cycles from the grid
        int32_t tn = 0;
        int32_t tm = 0;
    };

    /** Merge a table's breakpoints into a sorted union; true if new. */
    static bool mergeBps(std::vector<int64_t> &into,
                         const std::vector<int64_t> &from);

    /** Re-expand grid_ after the breakpoint lists changed. */
    void expandGrid(const std::vector<int64_t> &old_tn,
                    const std::vector<int64_t> &old_tm);

    std::vector<const nn::ConvLayer *> layers_;
    std::vector<int64_t> seenN_;  ///< distinct N values so far
    std::vector<int64_t> seenM_;  ///< distinct M values so far
    int64_t maxN_ = 0;
    int64_t maxM_ = 0;
    std::vector<int64_t> tnBps_;  ///< merged Tn breakpoints, ascending
    std::vector<int64_t> tmBps_;  ///< merged Tm breakpoints, ascending
    /** cycles of the range at (tnBps_[ti], tmBps_[mi]), row-major. */
    std::vector<int64_t> grid_;
    std::vector<int64_t> scratch_;   ///< expansion / per-bp ceilings
    std::vector<Bucket> buckets_;    ///< dense sweep; reset after use
    std::vector<Candidate> cands_;   ///< sparse sweep scratch
};

/**
 * Lazily built frontiers for every layer range the partition DP may
 * consult, i.e. ranges of a fixed heuristic order usable by some
 * partition into at most max_clps contiguous groups.
 *
 * The table's frontiers are built capped at the largest budget it has
 * ever been asked about (the grow-only units cap): any query at or
 * under that budget is a prefix of the stored staircase, so answers
 * for every budget of a descending or repeated ladder come from one
 * build. Only a budget *increase* discards stored rows; a warm
 * DseSession avoids even that by reserving the ladder's maximum up
 * front (reserveUnits()) before the first run touches the table.
 *
 * The table is not internally synchronized; callers that share it
 * (ComputeOptimizer, DseSession) must hold mutex() across a
 * reserveUnits()/prepare()/choose() sequence.
 */
class FrontierTable
{
  public:
    FrontierTable(const nn::Network &network, fpga::DataType type,
                  std::vector<size_t> order, int max_clps);

    /**
     * Grow the units cap to at least @p units_cap, discarding stored
     * rows if they were built under a smaller cap. A session calls
     * this with the largest budget of a sweep before the first run,
     * so no mid-sweep rebuild ever happens.
     */
    void reserveUnits(int64_t units_cap);

    /**
     * Make sure every range that could satisfy @p cycle_target under
     * @p dsp_budget has its frontier built, extending each start row
     * until the range becomes infeasible for the target (extending an
     * infeasible range only adds cycles, so the rest of the row cannot
     * matter yet). Ranges already built are kept across prepare()
     * calls; only a budget above every earlier one rebuilds (see
     * reserveUnits()). Row construction fans out over @p pool when
     * given.
     */
    void prepare(int64_t dsp_budget, int64_t cycle_target,
                 util::ThreadPool *pool);

    /**
     * Frontier query for order[i..j]: minimum-DSP shape fitting
     * @p dsp_budget and finishing within @p cycle_target. nullopt when
     * the range cannot meet the target under the budget. Queries are
     * stateless, so distinct (budget, target) pairs can interleave.
     */
    std::optional<FrontierPoint> choose(size_t i, size_t j,
                                        int64_t dsp_budget,
                                        int64_t cycle_target) const;

    size_t size() const { return order_.size(); }
    const std::vector<size_t> &order() const { return order_; }
    int maxClps() const { return maxClps_; }

    /** Lock guarding prepare()/choose() when the table is shared. */
    std::mutex &mutex() const { return mutex_; }

  private:
    struct Row
    {
        ShapeFrontier::Builder builder;        ///< incremental scratch
        size_t builderLayers = 0;              ///< layers added so far
        std::vector<ShapeFrontier> frontiers;  ///< [i..i], [i..i+1], ...
        bool exhausted = false;  ///< row is complete to its last range
    };

    bool usable(size_t i, size_t j) const;
    void extendRow(size_t i, int64_t dsp_cap, int64_t cycle_target);

    const nn::Network &network_;
    fpga::DataType type_;
    std::vector<size_t> order_;
    int maxClps_;
    int64_t buildUnits_ = 0;  ///< grow-only units cap of stored rows
    std::vector<Row> rows_;
    BreakpointCache breakpoints_;
    mutable std::mutex mutex_;
};

} // namespace core
} // namespace mclp

#endif // MCLP_CORE_SHAPE_FRONTIER_H
