/**
 * @file
 * Pareto-frontier shape cache for the OptimizeCompute search.
 *
 * For a fixed run of layers, the cost of a CLP shape (Tn, Tm) is two
 * monotone quantities: DSP (increasing in Tn*Tm) and compute cycles
 * (non-increasing in Tn and Tm). The Listing-3 loop re-evaluates the
 * same layer ranges for up to 2000 cycle targets, re-enumerating every
 * shape each time; but the answer it seeks — the minimum-DSP shape
 * meeting the target — always lies on the Pareto frontier of
 * (dsp, cycles) over all shapes, and that frontier does not depend on
 * the target at all. ShapeFrontier precomputes the frontier once per
 * range, reducing every subsequent target query to a binary search.
 *
 * Only shapes that can ever win are enumerated: Tn values where some
 * layer's ceil(N/Tn) changes (a larger Tn with identical ceilings
 * costs more DSP for the same cycles) crossed with, per Tn, the Tm
 * values where the range's cycle count steps. Per-dimension breakpoint
 * tables are shared network-wide through BreakpointCache, so frontier
 * construction skips redundant tile sizes in O(1).
 *
 * The frontier is sorted by strictly increasing DSP, so a DSP budget
 * never requires a rebuild either: the shapes affordable under any
 * budget are a prefix of the budget-free frontier, and a capped query
 * is an upper-bound binary search. FrontierTable exploits this by
 * building every range's frontier exactly once with no units cap and
 * answering (budget, target) pairs by prefix truncation — one build
 * serves an entire budget sweep (see core::DseSession).
 *
 * FrontierTable manages the frontiers of every range the partition DP
 * can use, building them lazily as loosening targets make longer
 * ranges relevant, optionally fanning construction out over a thread
 * pool. Queries reproduce the brute-force search bit-exactly
 * (tie-breaks included), which tests/core/test_shape_frontier.cc
 * asserts against randomized ranges.
 */

#ifndef MCLP_CORE_SHAPE_FRONTIER_H
#define MCLP_CORE_SHAPE_FRONTIER_H

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "fpga/data_type.h"
#include "model/clp_config.h"
#include "nn/network.h"
#include "util/arena.h"
#include "util/hash.h"
#include "util/thread_pool.h"

namespace mclp {
namespace core {

/**
 * Shared per-dimension breakpoint tables. For a dimension size d, the
 * breakpoints are the tile sizes t (ascending, starting at 1) where
 * ceil(d/t) differs from ceil(d/(t-1)); all other tile sizes are
 * redundant. Each breakpoint carries its ceiling, so consumers never
 * divide. Tables are memoized by d, so every layer sharing a channel
 * count is computed once per network.
 */
class BreakpointCache
{
  public:
    struct Table
    {
        std::vector<int64_t> bps;    ///< ascending, starts at 1
        std::vector<int64_t> ceils;  ///< ceil(d / bps[k])
    };

    /** Breakpoints of ceil(d/t) for t in [1, d], with their values. */
    const Table &table(int64_t d);

    /** Convenience: just the breakpoints. */
    const std::vector<int64_t> &
    breakpoints(int64_t d)
    {
        return table(d).bps;
    }

  private:
    std::unordered_map<int64_t, Table> tables_;
};

/** "No constraint" sentinel for unit/DSP caps (never overflows). */
constexpr int64_t kUnboundedResources =
    std::numeric_limits<int64_t>::max() / 4;

/** One Pareto-optimal shape of a layer range. */
struct FrontierPoint
{
    model::ClpShape shape;
    int64_t dsp = 0;     ///< strictly increasing along the frontier
    int64_t cycles = 0;  ///< strictly decreasing along the frontier
};

/**
 * The (dsp, cycles) Pareto frontier over all CLP shapes for one run of
 * layers, under a fixed DSP budget.
 *
 * Storage is structure-of-arrays in one arena block sized exactly at
 * build time: dsp[] and cycles[] are contiguous int64 arrays (what the
 * binary searches and serialization read), tn[]/tm[] contiguous int32.
 * The frontier owns its arena — rows are shared through
 * FrontierRowStore and pinned by the persistent cache beyond any
 * FrontierTable's lifetime, so the storage must travel with the
 * object, not with the table that built it.
 */
class ShapeFrontier
{
  public:
    class Builder;

    /** Stored bytes per frontier point (two i64 + two i32 lanes). */
    static constexpr size_t kBytesPerPoint =
        2 * sizeof(int64_t) + 2 * sizeof(int32_t);

    /**
     * Rebuild a frontier from stored points — the decode path of the
     * persistent cache (core/frontier_cache.h). Validates the
     * staircase invariants (positive shapes, strictly increasing DSP,
     * strictly decreasing cycles) and returns nullopt on any
     * violation, so a corrupt-but-checksummed file can never
     * masquerade as a frontier.
     */
    static std::optional<ShapeFrontier>
    fromPoints(std::vector<FrontierPoint> points);

    /**
     * Enumerate shapes for @p layers (in range order) and keep the
     * frontier. @p units_budget caps Tn*Tm (the MAC budget implied by
     * the DSP budget); shapes beyond it can never fit and are not
     * stored. @p scratch supplies the breakpoint tables.
     */
    ShapeFrontier(const std::vector<const nn::ConvLayer *> &layers,
                  fpga::DataType type, int64_t units_budget,
                  BreakpointCache &scratch);

    /**
     * Minimum-DSP shape finishing the range within @p cycle_target,
     * breaking DSP ties toward fewer cycles, then smaller Tn — the
     * exact choice of the brute-force enumeration. nullopt when no
     * stored shape meets the target. @p max_dsp restricts the search
     * to the affordable prefix (DSP is strictly increasing along the
     * frontier), so a budget-free frontier answers any budget without
     * a rebuild.
     */
    std::optional<FrontierPoint>
    query(int64_t cycle_target,
          int64_t max_dsp = kUnboundedResources) const;

    /** True when not even the largest affordable shape can help. */
    bool empty() const { return size_ == 0; }

    size_t size() const { return size_; }

    /** Fewest cycles any affordable shape achieves on this range. */
    int64_t
    minCycles() const
    {
        return size_ == 0 ? 0 : cycles_[size_ - 1];
    }

    /**
     * Fewest cycles achievable with shapes costing at most @p max_dsp
     * slices; kUnboundedResources when no stored shape is affordable
     * (the range cannot meet any target under that budget).
     */
    int64_t minCycles(int64_t max_dsp) const;

    /** Materialize the @p i-th staircase point. */
    FrontierPoint
    point(size_t i) const
    {
        FrontierPoint p;
        p.shape = model::ClpShape{tn_[i], tm_[i]};
        p.dsp = dsp_[i];
        p.cycles = cycles_[i];
        return p;
    }

    /** Materialize every point (tests / debugging; hot paths use the
     * SoA accessors below). */
    std::vector<FrontierPoint> points() const;

    // Raw SoA lanes — contiguous, sorted by strictly increasing DSP /
    // strictly decreasing cycles. Serialization and the scan kernels
    // read these directly.
    const int32_t *tnData() const { return tn_; }
    const int32_t *tmData() const { return tm_; }
    const int64_t *dspData() const { return dsp_; }
    const int64_t *cyclesData() const { return cycles_; }

    /** Resident bytes of the stored staircase (arena block totals). */
    size_t
    memoryBytes() const
    {
        return sizeof(*this) + arena_.bytesReserved();
    }

    ShapeFrontier(ShapeFrontier &&other) noexcept { *this = std::move(other); }
    ShapeFrontier &
    operator=(ShapeFrontier &&other) noexcept
    {
        arena_ = std::move(other.arena_);
        size_ = other.size_;
        tn_ = other.tn_;
        tm_ = other.tm_;
        dsp_ = other.dsp_;
        cycles_ = other.cycles_;
        other.size_ = 0;
        other.tn_ = other.tm_ = nullptr;
        other.dsp_ = other.cycles_ = nullptr;
        return *this;
    }
    ShapeFrontier(const ShapeFrontier &other)
    {
        adopt(other.tn_, other.tm_, other.dsp_, other.cycles_,
              other.size_);
    }
    ShapeFrontier &
    operator=(const ShapeFrontier &other)
    {
        if (this != &other) {
            arena_.clear();
            adopt(other.tn_, other.tm_, other.dsp_, other.cycles_,
                  other.size_);
        }
        return *this;
    }

  private:
    friend class Builder;

    ShapeFrontier() = default;

    /** Copy the four lanes into one exact-size arena block. */
    void adopt(const int32_t *tn, const int32_t *tm, const int64_t *dsp,
               const int64_t *cycles, size_t count);

    util::Arena arena_{1};  ///< chunk floor 1: every block exact-fit
    size_t size_ = 0;
    int32_t *tn_ = nullptr;      ///< into arena_
    int32_t *tm_ = nullptr;      ///< into arena_
    int64_t *dsp_ = nullptr;     ///< into arena_, strictly increasing
    int64_t *cycles_ = nullptr;  ///< into arena_, strictly decreasing
};

/**
 * Reusable frontier constructor for one growing run of layers. A row
 * of the range table extends one layer at a time ([i..j] to [i..j+1]).
 *
 * Shape cost is additive over layers, so the builder keeps exact
 * cycle counts for every *live* cell of the (merged Tn breakpoints x
 * merged Tm breakpoints) grid — the cells with tn*tm under the units
 * cap — stored as one flat array in units-ascending order. Appending
 * a layer is one rank-1 update (cell += area[tn] * mceil[tm]) over
 * that array, and building a frontier is a single sequential
 * running-minimum pass over it — no per-extension re-enumeration at
 * all. When a layer introduces new breakpoints the array is remapped
 * by run-length copying (cycle counts are constant between
 * breakpoints); layers repeating already-seen channel counts (grouped
 * convolutions, inception modules) add no breakpoints and skip that
 * entirely.
 */
class ShapeFrontier::Builder
{
  public:
    /** Forget all layers (scratch capacity is kept; the units cap
     * resets to unbounded). */
    void reset();

    /**
     * Declare the largest units budget any build() of this run will
     * use. Cells with tn*tm above the cap can never be read — build()
     * bounds its sweep by the budget — so the rank-1 updates and grid
     * expansions skip them entirely; on a budget-capped grid that is
     * most of the area (the live region is hyperbolic). Set it after
     * reset() and before the first addLayer(); build() refuses larger
     * budgets. Default: unbounded (every cell maintained).
     */
    void setUnitsCap(int64_t cap);

    /**
     * Pre-merge the breakpoints of a dimension pair the run may reach,
     * before any layer is added. A caller that knows the run's maximal
     * extent (a table row extends toward the full suffix) seeds every
     * layer's dimensions up front, so the grid geometry is final from
     * the first addLayer() — no mid-run re-expansions or re-sorts.
     * Extra breakpoints never change a built frontier: a foreign
     * breakpoint's cycle count equals the breakpoint below it at
     * strictly fewer units, so it can never strictly improve the
     * staircase's running minimum. Seeding is optional; unseeded
     * dimensions merge lazily as layers arrive.
     */
    void seedDimensions(int64_t n, int64_t m, BreakpointCache &scratch);

    /** Append the next layer of the run. */
    void addLayer(const nn::ConvLayer &layer, BreakpointCache &scratch);

    /** Frontier over the layers added so far. */
    ShapeFrontier build(fpga::DataType type, int64_t units_budget);

    /** Resident bytes of the incremental scratch state. */
    size_t memoryBytes() const;

  private:
    /** Merge a table's breakpoints into a sorted union; true if new. */
    static bool mergeBps(std::vector<int64_t> &into,
                         const std::vector<int64_t> &from);

    /**
     * Remap live_ to the new geometry after the breakpoint lists
     * changed: scatter the old values out to a grid-shaped scratch,
     * then gather each new live cell's value from the largest old
     * breakpoint pair at or under it. Runs recomputeLiveGeometry()
     * itself, between the scatter (old geometry) and the gather (new).
     */
    void expandLive(const std::vector<int64_t> &old_tn,
                    const std::vector<int64_t> &old_tm);

    /**
     * Rebuild the live-cell geometry (liveW_, liveTi_, liveMi_) after
     * the breakpoint lists changed. Grid
     * geometry changes only when a layer brings new breakpoints, but
     * build() runs once per range extension — precomputing the
     * per-row live widths and the units-ascending order of the live
     * cells here moves every per-build binary search and bucket pass
     * out of the hot path.
     */
    void recomputeLiveGeometry();

    /**
     * Apply the deferred rank-1 update of the most recent layer to
     * live_. addLayer() only stages its update (per-row areas, per-
     * column ceilings): when the very next call is build() — the
     * common rhythm of a range extension — the update is fused into
     * the build walk, one pass over the live cells instead of two.
     * Anything else that needs the values complete (the next
     * addLayer, a remap) flushes first — which also means a staged
     * update never crosses a geometry change, so the staged arrays
     * are always indexed in the current geometry.
     */
    void flushPending();

    std::vector<const nn::ConvLayer *> layers_;
    std::vector<int64_t> seenN_;  ///< distinct N values so far
    std::vector<int64_t> seenM_;  ///< distinct M values so far
    int64_t maxN_ = 0;
    int64_t maxM_ = 0;
    int64_t unitsCap_ = kUnboundedResources;  ///< live-cell bound
    std::vector<int64_t> tnBps_;  ///< merged Tn breakpoints, ascending
    std::vector<int64_t> tmBps_;  ///< merged Tm breakpoints, ascending
    bool geomInit_ = false;  ///< live geometry exists (first layer seen)
    /** Cycle counts of the live cells, in the units-ascending order
     * of liveTi_/liveMi_ — the only persistent value storage.
     * Sequential in the build walk's own iteration order, so the hot
     * pass streams instead of gathering. */
    std::vector<int64_t> live_;
    /** Expansion scratch: old-geometry grid the old values scatter
     * into so the remap gather has random access (row-major,
     * old_t * old_w, dead cells never written or read). */
    std::vector<int64_t> grid_;
    std::vector<int64_t> scratch_;   ///< per-breakpoint M ceilings
    std::vector<size_t> mcolScratch_;  ///< old-column map for expansion
    std::vector<size_t> rowScratch_;   ///< old-row map for expansion
    /** Per-row count of live cells (tn*tm <= unitsCap_): rank-1
     * updates, remaps, and builds all stop there. */
    std::vector<size_t> liveW_;
    /** (row, column) of the live cells, units-ascending; within
     * equal units, discovery order (ti, then mi) — the staircase
     * walk's tie-break order. Rebuilt per geometry. The hot passes
     * are bandwidth-bound, so index lane width is a direct lever:
     * when both breakpoint lists fit 16 bits (any real geometry),
     * livePk_ packs (ti << 16 | mi) into one lane; otherwise the
     * int32 pair lanes hold the same order. */
    bool livePacked_ = true;
    std::vector<uint32_t> livePk_;
    std::vector<int32_t> liveTi_;
    std::vector<int32_t> liveMi_;

    /** Live-cell count of the current geometry (whichever index
     * encoding is active). */
    size_t
    liveCount() const
    {
        return livePacked_ ? livePk_.size() : liveTi_.size();
    }
    /** Staged rank-1 update of the most recent layer: per-row areas
     * (R*C*K^2 * ceil(N/tn)); the per-column ceilings are scratch_. */
    std::vector<int64_t> areas_;
    bool pending_ = false;
    std::vector<int32_t> countScratch_;  ///< counting-sort workspace
    /** (units, offset) pairs for the comparison sort of uncapped
     * geometries (counting sort needs a small units range). */
    std::vector<std::pair<int64_t, int32_t>> sortScratch_;
    // Output staircase lanes, reused across build() calls; build()
    // copies them into the frontier's exact-size arena block.
    std::vector<int32_t> outTn_;
    std::vector<int32_t> outTm_;
    std::vector<int64_t> outDsp_;
    std::vector<int64_t> outCycles_;
};

/**
 * Cross-table pool of built range frontiers, keyed by what a frontier
 * actually depends on — the layer-dims sequence of the range (per
 * layer: N, M, R*C*K^2), the data type, and the units cap it was
 * built under — never by network identity. Fire modules repeated
 * within SqueezeNet, inception twins within GoogLeNet, and identical
 * module stacks across network *variants* all hash to the same rows,
 * so a registry serving many networks builds each distinct range
 * exactly once (the same sharing TilingOptionCache already performs
 * for tiling signatures). Entries are immutable ShapeFrontiers, so a
 * hit is bit-identical to a private rebuild. Thread safe.
 */
class FrontierCache;

class FrontierRowStore
{
  public:
    struct Stats
    {
        size_t hits = 0;      ///< lookups answered by an existing row
        size_t misses = 0;    ///< lookups that forced a build
        size_t rows = 0;      ///< rows currently resident
        size_t diskHits = 0;  ///< hits decoded from the record file
        size_t mmapHits = 0;  ///< hits decoded from the mmap'd segment
        /** Hits decoded from a sibling shard's published segment
         * (cross-shard sharing under a sharded front). */
        size_t siblingHits = 0;
    };

    /**
     * Attach a persistent cache: lookup() falls through to it on a
     * miss (a disk hit counts as a hit and avoids the build), and
     * insert() notes fresh rows for write-back. Attach before first
     * use; the store never flushes — its owner does. The cache pins
     * every row it mirrors for the process lifetime, so memoryBytes()
     * then reports only evictable overhead (see its definition).
     */
    void attachCache(std::shared_ptr<FrontierCache> cache);

    /** The stored frontier for @p key, or nullptr (counts hit/miss). */
    std::shared_ptr<const ShapeFrontier>
    lookup(const std::vector<int64_t> &key);

    /**
     * Add a freshly built frontier; returns the canonical entry (the
     * first insert wins, so concurrent builders converge on one row).
     */
    std::shared_ptr<const ShapeFrontier>
    insert(const std::vector<int64_t> &key, ShapeFrontier frontier);

    Stats stats() const;

    /** Rough resident bytes of all stored rows. */
    size_t memoryBytes() const;

    /**
     * Drop rows no table currently references (use count 1), e.g.
     * after the SessionRegistry evicts sessions. Returns rows freed.
     */
    size_t purgeUnshared();

  private:
    mutable std::mutex mutex_;
    std::shared_ptr<FrontierCache> cache_;  ///< optional disk layer
    std::unordered_map<std::vector<int64_t>,
                       std::shared_ptr<const ShapeFrontier>,
                       util::Int64VectorHash>
        rows_;
    size_t hits_ = 0;
    size_t misses_ = 0;
    size_t diskHits_ = 0;
    size_t mmapHits_ = 0;
    size_t siblingHits_ = 0;
};

/**
 * Lazily built frontiers for every layer range the partition DP may
 * consult, i.e. ranges of a fixed heuristic order usable by some
 * partition into at most max_clps contiguous groups.
 *
 * Rows are built capped at the largest budget the table has ever been
 * asked about (the grow-only units cap): any query at or under a
 * row's build cap reads a prefix of the stored staircase, so answers
 * for every budget of a descending or repeated ladder come from one
 * build, and a budget increase rebuilds only the rows it touches,
 * lazily. A warm DseSession avoids even that by reserving the
 * ladder's maximum up front (reserveUnits()) before the first run.
 *
 * Locking is per row: every row carries its own mutex, prepare()
 * extends rows independently (optionally fanning over a pool), and
 * choose() self-heals — it extends the row on demand when a
 * concurrent rebuild or a larger budget left a gap — so concurrent
 * runs of a budget ladder never serialize on a whole-table lock and
 * still read bit-identical answers. When @p store is given, built
 * rows are shared through it across tables and networks.
 */
class FrontierTable
{
  public:
    FrontierTable(const nn::Network &network, fpga::DataType type,
                  std::vector<size_t> order, int max_clps,
                  std::shared_ptr<FrontierRowStore> store = nullptr);

    /**
     * Grow the units cap to at least @p units_cap. Rows built under a
     * smaller cap are rebuilt lazily the next time a query needs more
     * than they stored. A session calls this with the largest budget
     * of a sweep before the first run, so no mid-sweep rebuild ever
     * happens.
     */
    void reserveUnits(int64_t units_cap);

    /**
     * Make sure every range that could satisfy @p cycle_target under
     * @p dsp_budget has its frontier built, extending each start row
     * until the range becomes infeasible for the target (extending an
     * infeasible range only adds cycles, so the rest of the row cannot
     * matter yet). Ranges already built are kept across prepare()
     * calls. Row construction fans out over @p pool when given; rows
     * lock independently, so concurrent prepare() calls at different
     * budgets interleave instead of serializing.
     */
    void prepare(int64_t dsp_budget, int64_t cycle_target,
                 util::ThreadPool *pool);

    /**
     * Frontier query for order[i..j]: minimum-DSP shape fitting
     * @p dsp_budget and finishing within @p cycle_target. nullopt when
     * the range cannot meet the target under the budget. Takes the
     * row's lock and extends the row in place when it has not been
     * built far enough for this (budget, target) — prepare() is an
     * optimization, not a correctness precondition.
     */
    std::optional<FrontierPoint> choose(size_t i, size_t j,
                                        int64_t dsp_budget,
                                        int64_t cycle_target);

    size_t size() const { return order_.size(); }
    const std::vector<size_t> &order() const { return order_; }
    int maxClps() const { return maxClps_; }

    /** Rough resident bytes (builders + frontiers it owns alone). */
    size_t memoryBytes() const;

  private:
    struct Row
    {
        ShapeFrontier::Builder builder;  ///< incremental scratch
        size_t builderLayers = 0;        ///< layers added so far
        /** Frontiers of [i..i], [i..i+1], ... (suffix-only rows store
         * just [i..count-1] at slot 0); shared via the row store. */
        std::vector<std::shared_ptr<const ShapeFrontier>> frontiers;
        bool exhausted = false;  ///< row is complete to its last range
        int64_t builtUnits = 0;  ///< units cap the frontiers hold
    };

    bool usable(size_t i, size_t j) const;

    /**
     * Under rowLocks_[i]: rebuild the row if its cap is below what
     * @p dsp_budget needs, then extend it range by range while the
     * stopping rule allows (last range still meets @p cycle_target
     * under @p dsp_budget and a usable extension exists).
     */
    void extendRowLocked(size_t i, int64_t dsp_budget,
                         int64_t cycle_target);

    /** Store key of order_[i..j] at @p units_cap (dims, type, cap). */
    std::vector<int64_t> rangeKey(size_t i, size_t j,
                                  int64_t units_cap) const;

    const nn::Network &network_;
    fpga::DataType type_;
    std::vector<size_t> order_;
    int maxClps_;
    std::shared_ptr<FrontierRowStore> store_;
    std::atomic<int64_t> buildUnits_{0};  ///< grow-only units cap
    std::vector<Row> rows_;               ///< fixed size() entries
    std::unique_ptr<std::mutex[]> rowLocks_;  ///< one per row
    BreakpointCache breakpoints_;  ///< fully warmed in ctor, then read-only
};

} // namespace core
} // namespace mclp

#endif // MCLP_CORE_SHAPE_FRONTIER_H
