/**
 * @file
 * Wire formats of the persistent frontier cache, shared by the record
 * file (core/frontier_cache.h), the mmap'd segment
 * (core/frontier_cache_segment.h), the compaction benchmark, and the
 * format tests.
 *
 * Two staircase encodings live here:
 *
 *  - **Delta (formats v3/v4; v4 changed only the row-key lane count,
 *    never these payloads).** Staircase points are stored in
 *    their units-sorted order (the order the frontier keeps them in:
 *    strictly increasing DSP, strictly decreasing cycles), which
 *    makes every lane delta-friendly: Tn/Tm fit 16 bits on any real
 *    geometry (a one-byte wide-flag keeps absurd dims correct), DSP
 *    deltas are small positive varints, and cycle deltas are small
 *    negative steps stored as zig-zag varints. ~8-10 bytes per point
 *    against the SoA format's fixed 32 — the several-fold file
 *    shrink ROADMAP item 1(b) asks for — while staying bit-exact:
 *    decode rebuilds the identical int64 lanes, and
 *    ShapeFrontier::fromPoints re-validates the staircase invariants
 *    so corruption that survives the checksum still cannot
 *    masquerade as a frontier.
 *
 *  - **SoA (format v2, legacy).** Four fixed-width i64 lane blocks.
 *    Kept as an encoder/decoder pair so v2 files upgrade in place on
 *    their first flush (decode SoA, re-encode delta) and so tests and
 *    the compaction benchmark can measure the old format against the
 *    new on identical rows.
 *
 * Memory-walk traces use the same delta idea (total BRAM strictly
 *    decreases along a walk, so steps store the positive drop);
 * peaks stay IEEE-754 bit patterns because disk-warm answers must be
 * byte-identical to cold ones.
 */

#ifndef MCLP_CORE_FRONTIER_CODEC_H
#define MCLP_CORE_FRONTIER_CODEC_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/memory_optimizer.h"
#include "core/shape_frontier.h"
#include "util/record_file.h"

namespace mclp {
namespace core {

/** Record kinds of both the record file and the segment. */
constexpr uint8_t kCacheRecordRow = 1;
constexpr uint8_t kCacheRecordTrace = 2;

/** Keys and point/step counts are capped to reject absurd corrupt
 * lengths before any allocation happens. */
constexpr uint32_t kCacheMaxKeyWords = 1 << 20;
constexpr uint32_t kCacheMaxListEntries = 1 << 24;

/** A decoded memory-walk trace as the cache stores it. */
struct FrontierTraceImage
{
    bool complete = false;
    int64_t initialBram = 0;
    double initialPeak = 0.0;
    std::vector<TradeoffCurveCache::PartitionStep> steps;
};

// ------------------------------------------------------ shared pieces

/** Length-prefixed key block ([u32 words][i64 words...]). */
void writeCacheKey(util::ByteWriter &out,
                   const std::vector<int64_t> &key);
bool readCacheKey(util::ByteReader &in, std::vector<int64_t> &key);

/** Groups in a partition-trace key = the -1 delimiters it contains
 * (trace semantic validation needs the bound). */
size_t traceKeyGroups(const std::vector<int64_t> &key);

/** Record-file header payloads. The v3+ headers add the generation
 * stamp the mmap'd segment revalidates against; the v3 variant exists
 * so tests can author 3-lane-row-key files and pin the upgrade. */
std::string cacheHeaderPayload(uint64_t fingerprint,
                               uint64_t generation);
std::string legacyV3CacheHeaderPayload(uint64_t fingerprint,
                                       uint64_t generation);
std::string legacyCacheHeaderPayload(uint64_t fingerprint);

// ------------------------------------------- delta payloads (v3)

/**
 * Encode @p row as the delta staircase payload. The payload carries
 * no key and no counters — records and segment entries wrap it with
 * their own framing — so one encoding serves both stores.
 */
void encodeRowPayload(util::ByteWriter &out, const ShapeFrontier &row);

/**
 * Decode a delta staircase payload; the payload must end exactly
 * where the staircase does. nullopt on any framing or staircase-
 * invariant violation (fromPoints re-validates monotonicity).
 */
std::optional<ShapeFrontier> decodeRowPayload(std::string_view payload);

/** Encode a walk trace as the delta trace payload. */
void encodeTracePayload(util::ByteWriter &out,
                        const FrontierTraceImage &image);

/**
 * Decode and semantically validate a trace payload: the walk's
 * invariants (non-negative caps, strictly decreasing total BRAM,
 * finite peaks, mover indices under @p key_groups) must hold or the
 * image is rejected regardless of checksums.
 */
bool decodeTracePayload(std::string_view payload, size_t key_groups,
                        FrontierTraceImage &image);

/**
 * Read just (complete, step count) from a trace payload — the flush
 * merge's "is ours deeper?" comparison without a full decode.
 */
bool peekTraceMeta(std::string_view payload, bool *complete,
                   size_t *steps);

// ---------------------------------------- legacy SoA records (v2)

/** Whole legacy records (kind + key + SoA/fixed-width body), exactly
 * as a v2 binary wrote them — the upgrade path's input and the
 * compaction benchmark's baseline. */
std::string encodeLegacyRowRecord(const std::vector<int64_t> &key,
                                  const ShapeFrontier &row);
std::string encodeLegacyTraceRecord(const std::vector<int64_t> &key,
                                    const FrontierTraceImage &image);

/** Decode a legacy record body (reader positioned after kind+key). */
std::optional<ShapeFrontier> decodeLegacyRowBody(util::ByteReader &in);
bool decodeLegacyTraceBody(util::ByteReader &in, size_t key_groups,
                           FrontierTraceImage &image);

} // namespace core
} // namespace mclp

#endif // MCLP_CORE_FRONTIER_CODEC_H
