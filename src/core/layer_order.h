/**
 * @file
 * Layer-ordering heuristics (Section 4.3).
 *
 * OptimizeCompute only assigns *contiguous* runs of an ordered layer
 * list to CLPs, so the order determines which groupings are reachable.
 * The paper orders by compute-to-data ratio for bandwidth-limited
 * accelerators and by Euclidean distance between (N, M) pairs for
 * compute-bound ones.
 */

#ifndef MCLP_CORE_LAYER_ORDER_H
#define MCLP_CORE_LAYER_ORDER_H

#include <cstddef>
#include <string>
#include <vector>

#include "nn/network.h"

namespace mclp {
namespace core {

/** Which ordering heuristic to apply. */
enum class OrderHeuristic
{
    /** Greedy nearest-neighbour chain over (N, M) points. */
    NmDistance,
    /** Ascending compute-to-data ratio. */
    ComputeToData,
    /** Keep the network's natural pipeline order. */
    AsIs,
};

/** Heuristic name for reports. */
std::string orderHeuristicName(OrderHeuristic heuristic);

/**
 * Produce a permutation of layer indices per the heuristic.
 * Deterministic: ties break toward lower layer index.
 */
std::vector<size_t> orderLayers(const nn::Network &network,
                                OrderHeuristic heuristic);

} // namespace core
} // namespace mclp

#endif // MCLP_CORE_LAYER_ORDER_H
