#include "core/frontier_cache_segment.h"

#include <cstring>

#include "util/hash.h"
#include "util/record_file.h"

namespace mclp {
namespace core {

namespace {

/** Fixed header size; the layout below must stay within it. */
constexpr size_t kHeaderBytes = 64;
/** Slot: u64 hash | u32 keyOff | u32 kind<<24|keyWords | u32
 * payloadOff | u32 payloadLen. kindWords == 0 marks an empty slot
 * (keys are never empty). */
constexpr size_t kSlotBytes = 24;

uint64_t
slotHash(uint8_t kind, const int64_t *words, size_t count)
{
    // Prefix the kind so a row and a trace with identical key words
    // (impossible today, cheap to rule out forever) never collide.
    uint64_t hash = 1469598103934665603ULL;
    hash ^= kind;
    hash *= 1099511628211ULL;
    for (size_t i = 0; i < count; ++i) {
        hash ^= static_cast<uint64_t>(words[i]);
        hash *= 1099511628211ULL;
    }
    return hash;
}

uint64_t
loadU64(const unsigned char *bytes)
{
    uint64_t value = 0;
    for (size_t i = 0; i < 8; ++i)
        value |= static_cast<uint64_t>(bytes[i]) << (8 * i);
    return value;
}

uint32_t
loadU32(const unsigned char *bytes)
{
    uint32_t value = 0;
    for (size_t i = 0; i < 4; ++i)
        value |= static_cast<uint32_t>(bytes[i]) << (8 * i);
    return value;
}

int64_t
loadI64(const unsigned char *bytes)
{
    return static_cast<int64_t>(loadU64(bytes));
}

} // namespace

FrontierCacheSegment
FrontierCacheSegment::open(const std::string &path, uint64_t fingerprint)
{
    FrontierCacheSegment segment;
    util::MappedFile map = util::MappedFile::map(path);
    if (!map.valid() || map.size() < kHeaderBytes)
        return segment;
    const unsigned char *base = map.data();
    if (loadU64(base) != kFrontierSegmentMagic ||
        loadU32(base + 8) != kFrontierSegmentVersion ||
        loadU64(base + 16) != fingerprint)
        return segment;
    uint32_t slot_count = loadU32(base + 12);
    uint64_t generation = loadU64(base + 24);
    uint64_t entry_count = loadU64(base + 32);
    uint64_t key_words = loadU64(base + 40);
    uint64_t file_bytes = loadU64(base + 48);
    uint64_t checksum = loadU64(base + 56);
    if (file_bytes != map.size())
        return segment;
    if (util::fnv1aBytes(base + kHeaderBytes,
                         map.size() - kHeaderBytes) != checksum)
        return segment;
    // Geometry: power-of-two slot table, then 8-aligned key blob,
    // then payloads to end of file.
    if (slot_count == 0 || (slot_count & (slot_count - 1)) != 0)
        return segment;
    size_t slots_off = kHeaderBytes;
    size_t key_off = slots_off + size_t{slot_count} * kSlotBytes;
    if (key_off > map.size() || key_words > (map.size() - key_off) / 8)
        return segment;
    size_t payload_off = key_off + static_cast<size_t>(key_words) * 8;
    size_t payload_bytes = map.size() - payload_off;

    // Validate every slot once so find() can trust offsets blindly.
    size_t live = 0;
    for (uint32_t s = 0; s < slot_count; ++s) {
        const unsigned char *slot = base + slots_off + s * kSlotBytes;
        uint32_t kind_words = loadU32(slot + 12);
        if (kind_words == 0)
            continue;
        uint32_t words = kind_words & 0xffffff;
        uint32_t k_off = loadU32(slot + 8);
        uint32_t p_off = loadU32(slot + 16);
        uint32_t p_len = loadU32(slot + 20);
        if (words == 0 || k_off > key_words ||
            words > key_words - k_off || p_off > payload_bytes ||
            p_len > payload_bytes - p_off)
            return segment;
        ++live;
    }
    if (live != entry_count)
        return segment;

    segment.map_ = std::move(map);
    segment.generation_ = generation;
    segment.slotCount_ = slot_count;
    segment.entryCount_ = static_cast<size_t>(entry_count);
    segment.keyWordsOff_ = key_off;
    segment.keyWords_ = static_cast<size_t>(key_words);
    segment.payloadOff_ = payload_off;
    segment.payloadBytes_ = payload_bytes;
    return segment;
}

std::string_view
FrontierCacheSegment::find(uint8_t kind,
                           const std::vector<int64_t> &key) const
{
    if (!valid() || key.empty() || key.size() > 0xffffff)
        return {};
    const unsigned char *base = map_.data();
    uint64_t hash = slotHash(kind, key.data(), key.size());
    uint32_t mask = slotCount_ - 1;
    for (uint32_t probe = 0; probe < slotCount_; ++probe) {
        const unsigned char *slot =
            base + kHeaderBytes +
            ((static_cast<uint32_t>(hash) + probe) & mask) * kSlotBytes;
        uint32_t kind_words = loadU32(slot + 12);
        if (kind_words == 0)
            return {};  // empty slot terminates the probe chain
        if (loadU64(slot) != hash ||
            (kind_words >> 24) != kind ||
            (kind_words & 0xffffff) != key.size())
            continue;
        const unsigned char *stored =
            base + keyWordsOff_ + size_t{loadU32(slot + 8)} * 8;
        bool match = true;
        for (size_t i = 0; match && i < key.size(); ++i)
            match = loadI64(stored + i * 8) == key[i];
        if (!match)
            continue;
        return {reinterpret_cast<const char *>(base) + payloadOff_ +
                    loadU32(slot + 16),
                loadU32(slot + 20)};
    }
    return {};
}

std::string
FrontierCacheSegment::build(uint64_t fingerprint, uint64_t generation,
                            const std::vector<SegmentRecord> &records)
{
    uint32_t slot_count = 8;
    while (slot_count < 2 * records.size())
        slot_count *= 2;

    struct Slot
    {
        uint64_t hash = 0;
        uint32_t keyOff = 0;
        uint32_t kindWords = 0;
        uint32_t payloadOff = 0;
        uint32_t payloadLen = 0;
    };
    std::vector<Slot> slots(slot_count);
    util::ByteWriter keys;
    util::ByteWriter payloads;
    uint32_t mask = slot_count - 1;
    for (const SegmentRecord &record : records) {
        const std::vector<int64_t> &key = *record.key;
        Slot slot;
        slot.hash = slotHash(record.kind, key.data(), key.size());
        slot.keyOff = static_cast<uint32_t>(keys.bytes().size() / 8);
        slot.kindWords = (static_cast<uint32_t>(record.kind) << 24) |
                         static_cast<uint32_t>(key.size());
        slot.payloadOff =
            static_cast<uint32_t>(payloads.bytes().size());
        slot.payloadLen = static_cast<uint32_t>(record.payload.size());
        keys.i64Words(key.data(), key.size());
        payloads.raw(record.payload);
        uint32_t s = static_cast<uint32_t>(slot.hash) & mask;
        while (slots[s].kindWords != 0)
            s = (s + 1) & mask;
        slots[s] = slot;
    }

    util::ByteWriter body;
    for (const Slot &slot : slots) {
        body.u64(slot.hash);
        body.u32(slot.keyOff);
        body.u32(slot.kindWords);
        body.u32(slot.payloadOff);
        body.u32(slot.payloadLen);
    }
    body.raw(keys.bytes());
    body.raw(payloads.bytes());

    util::ByteWriter header;
    header.u64(kFrontierSegmentMagic);
    header.u32(kFrontierSegmentVersion);
    header.u32(slot_count);
    header.u64(fingerprint);
    header.u64(generation);
    header.u64(records.size());
    header.u64(keys.bytes().size() / 8);
    header.u64(kHeaderBytes + body.bytes().size());
    header.u64(util::fnv1aBytes(body.bytes().data(),
                                body.bytes().size()));

    std::string image = header.bytes();
    image += body.bytes();
    return image;
}

} // namespace core
} // namespace mclp
