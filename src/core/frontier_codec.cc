#include "core/frontier_codec.h"

#include <algorithm>
#include <cmath>

#include "core/frontier_cache.h"

namespace mclp {
namespace core {

void
writeCacheKey(util::ByteWriter &out, const std::vector<int64_t> &key)
{
    out.u32(static_cast<uint32_t>(key.size()));
    out.i64Words(key.data(), key.size());
}

bool
readCacheKey(util::ByteReader &in, std::vector<int64_t> &key)
{
    uint32_t count = 0;
    if (!in.u32(count) || count == 0 || count > kCacheMaxKeyWords)
        return false;
    key.resize(count);
    return in.i64Words(key.data(), count);
}

size_t
traceKeyGroups(const std::vector<int64_t> &key)
{
    return static_cast<size_t>(
        std::count(key.begin(), key.end(), int64_t{-1}));
}

std::string
cacheHeaderPayload(uint64_t fingerprint, uint64_t generation)
{
    util::ByteWriter out;
    out.u64(kFrontierCacheMagic);
    out.u32(kFrontierCacheFormatVersion);
    out.u64(fingerprint);
    out.u64(generation);
    return out.bytes();
}

std::string
legacyV3CacheHeaderPayload(uint64_t fingerprint, uint64_t generation)
{
    util::ByteWriter out;
    out.u64(kFrontierCacheMagic);
    out.u32(kFrontierCacheLegacyV3FormatVersion);
    out.u64(fingerprint);
    out.u64(generation);
    return out.bytes();
}

std::string
legacyCacheHeaderPayload(uint64_t fingerprint)
{
    util::ByteWriter out;
    out.u64(kFrontierCacheMagic);
    out.u32(kFrontierCacheLegacyFormatVersion);
    out.u64(fingerprint);
    return out.bytes();
}

// ------------------------------------------------ delta payloads (v3)

namespace {

/** Row payload flag: some Tn/Tm exceeds 16 bits, so the shape lanes
 * fall back to varints (no real device geometry gets here; the flag
 * keeps the format total, not fast). */
constexpr uint8_t kRowFlagWideShapes = 1;

} // namespace

void
encodeRowPayload(util::ByteWriter &out, const ShapeFrontier &row)
{
    size_t count = row.size();
    const int32_t *tn = row.tnData();
    const int32_t *tm = row.tmData();
    const int64_t *dsp = row.dspData();
    const int64_t *cycles = row.cyclesData();

    bool wide = false;
    for (size_t i = 0; i < count; ++i)
        wide = wide || tn[i] > 0xffff || tm[i] > 0xffff;

    out.varint(count);
    out.u8(wide ? kRowFlagWideShapes : 0);
    if (wide) {
        for (size_t i = 0; i < count; ++i)
            out.varint(static_cast<uint64_t>(tn[i]));
        for (size_t i = 0; i < count; ++i)
            out.varint(static_cast<uint64_t>(tm[i]));
    } else {
        for (size_t i = 0; i < count; ++i)
            out.u16(static_cast<uint16_t>(tn[i]));
        for (size_t i = 0; i < count; ++i)
            out.u16(static_cast<uint16_t>(tm[i]));
    }
    // Units-sorted order makes both i64 lanes staircases: DSP deltas
    // are small positive steps, cycle deltas small negative ones.
    // Zig-zag both so a (hypothetically) non-monotone lane still
    // round-trips — decode re-validates monotonicity either way.
    for (size_t i = 0; i < count; ++i) {
        int64_t prev = i == 0 ? 0 : dsp[i - 1];
        out.varint(util::zigzagEncode(dsp[i] - prev));
    }
    for (size_t i = 0; i < count; ++i) {
        int64_t prev = i == 0 ? 0 : cycles[i - 1];
        out.varint(util::zigzagEncode(cycles[i] - prev));
    }
}

std::optional<ShapeFrontier>
decodeRowPayload(std::string_view payload)
{
    util::ByteReader in(payload);
    uint64_t count64 = 0;
    uint8_t flags = 0;
    if (!in.varint(count64) || count64 > kCacheMaxListEntries ||
        !in.u8(flags) || (flags & ~kRowFlagWideShapes))
        return std::nullopt;
    size_t count = static_cast<size_t>(count64);
    std::vector<FrontierPoint> points(count);
    if (flags & kRowFlagWideShapes) {
        for (size_t i = 0; i < count; ++i) {
            uint64_t value = 0;
            if (!in.varint(value))
                return std::nullopt;
            points[i].shape.tn = static_cast<int64_t>(value);
        }
        for (size_t i = 0; i < count; ++i) {
            uint64_t value = 0;
            if (!in.varint(value))
                return std::nullopt;
            points[i].shape.tm = static_cast<int64_t>(value);
        }
    } else {
        for (size_t i = 0; i < count; ++i) {
            uint16_t value = 0;
            if (!in.u16(value))
                return std::nullopt;
            points[i].shape.tn = value;
        }
        for (size_t i = 0; i < count; ++i) {
            uint16_t value = 0;
            if (!in.u16(value))
                return std::nullopt;
            points[i].shape.tm = value;
        }
    }
    int64_t prev = 0;
    for (size_t i = 0; i < count; ++i) {
        uint64_t delta = 0;
        if (!in.varint(delta))
            return std::nullopt;
        points[i].dsp = prev + util::zigzagDecode(delta);
        prev = points[i].dsp;
    }
    prev = 0;
    for (size_t i = 0; i < count; ++i) {
        uint64_t delta = 0;
        if (!in.varint(delta))
            return std::nullopt;
        points[i].cycles = prev + util::zigzagDecode(delta);
        prev = points[i].cycles;
    }
    if (!in.ok() || !in.atEnd())
        return std::nullopt;
    // fromPoints re-validates the staircase invariants, so corrupt
    // bytes that parse cannot become a frontier.
    return ShapeFrontier::fromPoints(std::move(points));
}

void
encodeTracePayload(util::ByteWriter &out,
                   const FrontierTraceImage &image)
{
    out.u8(image.complete ? 1 : 0);
    out.varint(static_cast<uint64_t>(image.initialBram));
    out.f64(image.initialPeak);
    out.varint(image.steps.size());
    int64_t prev_bram = image.initialBram;
    for (const TradeoffCurveCache::PartitionStep &step : image.steps) {
        out.varint(step.clp);
        out.varint(static_cast<uint64_t>(step.inCap));
        out.varint(static_cast<uint64_t>(step.outCap));
        // Total BRAM strictly decreases along a walk: store the drop.
        out.varint(static_cast<uint64_t>(prev_bram - step.totalBram));
        out.f64(step.totalPeak);
        prev_bram = step.totalBram;
    }
}

bool
decodeTracePayload(std::string_view payload, size_t key_groups,
                   FrontierTraceImage &image)
{
    util::ByteReader in(payload);
    uint8_t complete = 0;
    uint64_t bram = 0, count64 = 0;
    if (!in.u8(complete) || !in.varint(bram) ||
        !in.f64(image.initialPeak) || !in.varint(count64) ||
        count64 > kCacheMaxListEntries)
        return false;
    image.complete = complete != 0;
    image.initialBram = static_cast<int64_t>(bram);
    if (image.initialBram < 0 || !std::isfinite(image.initialPeak))
        return false;
    size_t count = static_cast<size_t>(count64);
    image.steps.resize(count);
    int64_t prev_bram = image.initialBram;
    for (size_t i = 0; i < count; ++i) {
        TradeoffCurveCache::PartitionStep &step = image.steps[i];
        uint64_t clp = 0, in_cap = 0, out_cap = 0, drop = 0;
        if (!in.varint(clp) || !in.varint(in_cap) ||
            !in.varint(out_cap) || !in.varint(drop) ||
            !in.f64(step.totalPeak))
            return false;
        step.clp = static_cast<uint32_t>(clp);
        step.inCap = static_cast<int64_t>(in_cap);
        step.outCap = static_cast<int64_t>(out_cap);
        step.totalBram = prev_bram - static_cast<int64_t>(drop);
        // The walk's invariants, re-checked on every load: a trace
        // that violates them is untrustworthy whatever its checksum.
        if (clp >= key_groups || step.inCap < 0 || step.outCap < 0 ||
            step.totalBram < 0 || step.totalBram >= prev_bram ||
            !std::isfinite(step.totalPeak))
            return false;
        prev_bram = step.totalBram;
    }
    return in.ok() && in.atEnd();
}

bool
peekTraceMeta(std::string_view payload, bool *complete, size_t *steps)
{
    util::ByteReader in(payload);
    uint8_t flag = 0;
    uint64_t bram = 0, count = 0;
    double peak = 0.0;
    if (!in.u8(flag) || !in.varint(bram) || !in.f64(peak) ||
        !in.varint(count) || count > kCacheMaxListEntries)
        return false;
    *complete = flag != 0;
    *steps = static_cast<size_t>(count);
    return true;
}

// --------------------------------------- legacy SoA records (v2)

std::string
encodeLegacyRowRecord(const std::vector<int64_t> &key,
                      const ShapeFrontier &row)
{
    util::ByteWriter out;
    out.u8(kCacheRecordRow);
    writeCacheKey(out, key);
    size_t count = row.size();
    out.u32(static_cast<uint32_t>(count));
    std::vector<int64_t> lane(count);
    for (size_t i = 0; i < count; ++i)
        lane[i] = row.tnData()[i];
    out.i64Words(lane.data(), count);
    for (size_t i = 0; i < count; ++i)
        lane[i] = row.tmData()[i];
    out.i64Words(lane.data(), count);
    out.i64Words(row.dspData(), count);
    out.i64Words(row.cyclesData(), count);
    return out.bytes();
}

std::string
encodeLegacyTraceRecord(const std::vector<int64_t> &key,
                        const FrontierTraceImage &image)
{
    util::ByteWriter out;
    out.u8(kCacheRecordTrace);
    writeCacheKey(out, key);
    out.u8(image.complete ? 1 : 0);
    out.i64(image.initialBram);
    out.f64(image.initialPeak);
    out.u32(static_cast<uint32_t>(image.steps.size()));
    for (const TradeoffCurveCache::PartitionStep &step : image.steps) {
        out.u32(step.clp);
        out.i64(step.inCap);
        out.i64(step.outCap);
        out.i64(step.totalBram);
        out.f64(step.totalPeak);
    }
    return out.bytes();
}

std::optional<ShapeFrontier>
decodeLegacyRowBody(util::ByteReader &in)
{
    uint32_t count = 0;
    if (!in.u32(count) || count > kCacheMaxListEntries)
        return std::nullopt;
    size_t n = count;
    std::vector<int64_t> tn(n), tm(n), dsp(n), cycles(n);
    in.i64Words(tn.data(), n);
    in.i64Words(tm.data(), n);
    in.i64Words(dsp.data(), n);
    in.i64Words(cycles.data(), n);
    if (!in.ok() || !in.atEnd())
        return std::nullopt;
    std::vector<FrontierPoint> points(n);
    for (size_t i = 0; i < n; ++i) {
        points[i].shape = model::ClpShape{tn[i], tm[i]};
        points[i].dsp = dsp[i];
        points[i].cycles = cycles[i];
    }
    return ShapeFrontier::fromPoints(std::move(points));
}

bool
decodeLegacyTraceBody(util::ByteReader &in, size_t key_groups,
                      FrontierTraceImage &image)
{
    uint8_t complete = 0;
    uint32_t count = 0;
    if (!in.u8(complete) || !in.i64(image.initialBram) ||
        !in.f64(image.initialPeak) || !in.u32(count) ||
        count > kCacheMaxListEntries)
        return false;
    image.complete = complete != 0;
    image.steps.resize(count);
    for (uint32_t i = 0; i < count; ++i) {
        TradeoffCurveCache::PartitionStep &step = image.steps[i];
        if (!in.u32(step.clp) || !in.i64(step.inCap) ||
            !in.i64(step.outCap) || !in.i64(step.totalBram) ||
            !in.f64(step.totalPeak))
            break;
    }
    bool valid = in.ok() && in.atEnd() && image.initialBram >= 0 &&
                 std::isfinite(image.initialPeak);
    int64_t prev_bram = image.initialBram;
    for (const auto &step : image.steps) {
        if (!valid)
            break;
        valid = step.clp < key_groups && step.inCap >= 0 &&
                step.outCap >= 0 && step.totalBram >= 0 &&
                step.totalBram < prev_bram &&
                std::isfinite(step.totalPeak);
        prev_bram = step.totalBram;
    }
    return valid;
}

} // namespace core
} // namespace mclp
