#include "core/dse_session.h"

#include <algorithm>
#include <cstdlib>

#include "model/dsp_model.h"
#include "util/logging.h"
#include "util/string_utils.h"

namespace mclp {
namespace core {

DseCaches::DseCaches(const nn::Network &network, fpga::DataType type,
                     std::shared_ptr<FrontierRowStore> store,
                     std::shared_ptr<FrontierCache> cache)
    : network_(network), type_(type), store_(std::move(store)),
      tilings_(std::make_shared<TilingOptionCache>()),
      curves_(std::make_shared<TradeoffCurveCache>())
{
    if (cache)
        curves_->attachCache(std::move(cache));
}

FrontierTable &
DseCaches::frontierTable(const nn::Network &network, fpga::DataType type,
                         const std::vector<size_t> &order, int max_clps)
{
    if (&network != &network_ || type != type_)
        util::fatal("DseCaches: caches were created for %s; reuse "
                    "across networks or data types is not allowed",
                    network_.name().c_str());
    std::lock_guard<std::mutex> lock(mutex_);
    auto key = std::make_pair(order, max_clps);
    auto it = frontiers_.find(key);
    if (it == frontiers_.end()) {
        it = frontiers_
                 .emplace(std::move(key),
                          std::make_unique<FrontierTable>(
                              network_, type_, order, max_clps, store_))
                 .first;
    }
    FrontierTable &table = *it->second;
    // Apply the session's reservation so the table is built once at
    // the largest announced budget (see reserveDspBudget()).
    table.reserveUnits(unitsCap_);
    return table;
}

void
DseCaches::reserveDspBudget(int64_t dsp_budget)
{
    int64_t units = model::macBudget(dsp_budget, type_);
    std::lock_guard<std::mutex> lock(mutex_);
    if (units <= unitsCap_)
        return;
    unitsCap_ = units;
    for (auto &entry : frontiers_)
        entry.second->reserveUnits(unitsCap_);
}

size_t
DseCaches::memoryBytes()
{
    size_t bytes = tilings_->memoryBytes() + curves_->memoryBytes();
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &entry : frontiers_) {
        bytes += entry.first.first.capacity() * sizeof(size_t) +
                 entry.second->memoryBytes();
    }
    return bytes;
}

DseSession::DseSession(const nn::Network &network, fpga::DataType type,
                       int threads,
                       std::shared_ptr<FrontierRowStore> store,
                       std::shared_ptr<FrontierCache> cache)
    : network_(network), type_(type),
      caches_(std::make_shared<DseCaches>(network, type,
                                          std::move(store),
                                          std::move(cache)))
{
    if (threads < 0)
        util::fatal("DseSession: threads must be >= 0");
    if (util::resolveThreads(threads) > 1)
        pool_ = std::make_unique<util::ThreadPool>(threads);
}

OptimizationResult
DseSession::optimize(const fpga::ResourceBudget &budget,
                     OptimizerOptions options) const
{
    caches_->reserveDspBudget(budget.dspSlices);
    options.caches = caches_;
    return MultiClpOptimizer(network_, type_, budget, options).run();
}

std::vector<OptimizationResult>
DseSession::sweep(const std::vector<fpga::ResourceBudget> &budgets,
                  OptimizerOptions options) const
{
    // Reserve the whole ladder's maximum before the first run so the
    // shared frontier tables are built exactly once, at a cap every
    // rung reads a prefix of.
    for (const fpga::ResourceBudget &budget : budgets)
        caches_->reserveDspBudget(budget.dspSlices);

    std::vector<OptimizationResult> results(budgets.size());
    if (pool_ && budgets.size() > 1) {
        // Budget-level fan-out; each run stays single-threaded so the
        // pool is not oversubscribed by nested heuristic fan-outs.
        OptimizerOptions per_run = options;
        per_run.threads = 1;
        pool_->parallelFor(budgets.size(), [&](size_t i) {
            results[i] = optimize(budgets[i], per_run);
        });
    } else {
        for (size_t i = 0; i < budgets.size(); ++i)
            results[i] = optimize(budgets[i], options);
    }
    return results;
}

std::vector<TradeoffPoint>
DseSession::tradeoffCurve(const ComputePartition &partition) const
{
    MemoryOptimizer memory(network_, type_, caches_->tilings(),
                           caches_->curves());
    return memory.tradeoffCurve(partition);
}

std::vector<fpga::ResourceBudget>
dspLadder(const std::vector<int64_t> &dsp_budgets, double frequency_mhz,
          double dsp_per_bram, const fpga::ResourceBudget *base)
{
    std::vector<fpga::ResourceBudget> budgets;
    budgets.reserve(dsp_budgets.size());
    for (int64_t dsp : dsp_budgets) {
        fpga::ResourceBudget budget;
        if (base)
            budget = *base;
        budget.dspSlices = dsp;
        if (!base)
            budget.bram18k = std::max<int64_t>(
                1, static_cast<int64_t>(static_cast<double>(dsp) /
                                        dsp_per_bram));
        budget.frequencyMhz = frequency_mhz;
        budgets.push_back(budget);
    }
    return budgets;
}

std::vector<int64_t>
parseDspLadderSpec(const std::string &spec)
{
    std::vector<int64_t> budgets;
    if (spec.find(':') != std::string::npos) {
        auto parts = util::split(spec, ':');
        if (parts.size() != 3)
            util::fatal("DSP ladder range wants LO:HI:STEP, got '%s'",
                        spec.c_str());
        int64_t lo = std::atoll(parts[0].c_str());
        int64_t hi = std::atoll(parts[1].c_str());
        int64_t step = std::atoll(parts[2].c_str());
        if (lo <= 0 || hi < lo || step <= 0)
            util::fatal("DSP ladder range '%s': need 0 < LO <= HI and "
                        "STEP > 0", spec.c_str());
        for (int64_t dsp = lo; dsp <= hi; dsp += step)
            budgets.push_back(dsp);
        return budgets;
    }
    for (const std::string &item : util::split(spec, ',')) {
        int64_t dsp = std::atoll(item.c_str());
        if (dsp <= 0)
            util::fatal("DSP ladder list: bad DSP count '%s'",
                        item.c_str());
        budgets.push_back(dsp);
    }
    if (budgets.empty())
        util::fatal("DSP ladder list '%s' is empty", spec.c_str());
    return budgets;
}

} // namespace core
} // namespace mclp
