#include "core/dse_request.h"

#include <algorithm>
#include <cctype>

#include "core/dse_session.h"
#include "nn/zoo.h"
#include "util/hash.h"
#include "util/logging.h"
#include "util/string_utils.h"

namespace mclp {
namespace core {

std::string
dseModeName(DseMode mode)
{
    switch (mode) {
      case DseMode::Throughput:
        return "throughput";
      case DseMode::Latency:
        return "latency";
      case DseMode::SingleClp:
        return "single";
    }
    util::panic("dseModeName: bad mode %d", static_cast<int>(mode));
}

DseMode
dseModeByName(const std::string &name)
{
    std::string lower = name;
    std::transform(lower.begin(), lower.end(), lower.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (lower == "throughput")
        return DseMode::Throughput;
    if (lower == "latency" || lower == "adjacent")
        return DseMode::Latency;
    if (lower == "single" || lower == "single-clp")
        return DseMode::SingleClp;
    util::fatal("unknown DSE mode '%s' (throughput | latency | single)",
                name.c_str());
}

void
DseRequest::validate() const
{
    if (network.empty() && layers.empty())
        util::fatal("DseRequest: a network name or inline layers are "
                    "required");
    if (device.empty() && dspBudgets.empty())
        util::fatal("DseRequest: without a device, an explicit DSP "
                    "ladder is required (the BRAM = DSP/1.3 rule needs "
                    "a DSP count)");
    if (mhz <= 0.0)
        util::fatal("DseRequest: clock must be positive, got %g", mhz);
    if (maxClps < 1)
        util::fatal("DseRequest: maxClps must be >= 1, got %d", maxClps);
    if (threads < 0)
        util::fatal("DseRequest: threads must be >= 0, got %d",
                    threads);
    for (int64_t dsp : dspBudgets) {
        if (dsp <= 0)
            util::fatal("DseRequest: DSP budgets must be positive, got "
                        "%lld", static_cast<long long>(dsp));
    }
}

nn::Network
resolveNetwork(const DseRequest &request)
{
    if (!request.layers.empty()) {
        return nn::Network(request.network.empty() ? "custom"
                                                   : request.network,
                           request.layers);
    }
    return nn::networkByName(request.network);
}

std::vector<fpga::ResourceBudget>
requestBudgets(const DseRequest &request)
{
    request.validate();
    std::vector<fpga::ResourceBudget> budgets;
    if (!request.device.empty()) {
        fpga::ResourceBudget base = fpga::standardBudget(
            fpga::deviceByName(request.device), request.mhz);
        if (request.dspBudgets.empty())
            budgets.push_back(base);
        else
            budgets = dspLadder(request.dspBudgets, request.mhz, 1.3,
                                &base);
    } else {
        budgets = dspLadder(request.dspBudgets, request.mhz, 1.3);
    }
    if (request.bandwidthGbps > 0.0) {
        for (fpga::ResourceBudget &budget : budgets)
            budget.setBandwidthGbps(request.bandwidthGbps);
    }
    return budgets;
}

OptimizerOptions
requestOptions(const DseRequest &request)
{
    OptimizerOptions options;
    options.maxClps = request.maxClps;
    options.singleClp = request.mode == DseMode::SingleClp;
    options.adjacentLayers = request.mode == DseMode::Latency;
    options.threads = request.threads;
    if (request.referenceEngine)
        options.engine = OptimizerEngine::Reference;
    return options;
}

std::string
networkSignature(const nn::Network &network)
{
    std::vector<int64_t> words;
    words.reserve(network.numLayers() * 6);
    for (const nn::ConvLayer &layer : network.layers()) {
        words.push_back(layer.n);
        words.push_back(layer.m);
        words.push_back(layer.r);
        words.push_back(layer.c);
        words.push_back(layer.k);
        words.push_back(layer.s);
    }
    return util::strprintf(
        "%zuL:%016llx", network.numLayers(),
        static_cast<unsigned long long>(
            util::hashInt64Words(words.data(), words.size())));
}

} // namespace core
} // namespace mclp
