#include "core/dse_request.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <set>

#include "core/dse_session.h"
#include "nn/parser.h"
#include "nn/zoo.h"
#include "util/hash.h"
#include "util/logging.h"
#include "util/string_utils.h"

namespace mclp {
namespace core {

std::string
dseModeName(DseMode mode)
{
    switch (mode) {
      case DseMode::Throughput:
        return "throughput";
      case DseMode::Latency:
        return "latency";
      case DseMode::SingleClp:
        return "single";
    }
    util::panic("dseModeName: bad mode %d", static_cast<int>(mode));
}

DseMode
dseModeByName(const std::string &name)
{
    std::string lower = name;
    std::transform(lower.begin(), lower.end(), lower.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (lower == "throughput")
        return DseMode::Throughput;
    if (lower == "latency" || lower == "adjacent")
        return DseMode::Latency;
    if (lower == "single" || lower == "single-clp")
        return DseMode::SingleClp;
    util::fatal("unknown DSE mode '%s' (throughput | latency | single)",
                name.c_str());
}

namespace {

/** The sub-network copy name: "a" at weight 1, "a.0", "a.1", ...
 * ('.', not '#': copy names end up inside layer names, and '#' is
 * the --layers file comment character, which would break the
 * --dump-layers hand-concatenation round trip). */
std::string
subnetCopyName(const DseSubNet &sub, int64_t copy)
{
    if (sub.weight == 1)
        return sub.name;
    return sub.name + "." + std::to_string(copy);
}

} // namespace

void
DseRequest::validate() const
{
    if (!subnets.empty()) {
        // A joint request (Section 4.3): its layers live inside the
        // subnets, never in the single-network fields.
        if (!layers.empty())
            util::fatal("DseRequest: joint requests carry layers "
                        "inside their subnets, not in 'layers'");
        std::set<std::string> names;
        for (const DseSubNet &sub : subnets) {
            if (sub.name.empty())
                util::fatal("DseRequest: every joint sub-network "
                            "needs a name");
            if (!names.insert(sub.name).second)
                util::fatal("DseRequest: duplicate sub-network name "
                            "'%s'", sub.name.c_str());
            if (sub.network.empty() && sub.layers.empty())
                util::fatal("DseRequest: sub-network '%s' needs a zoo "
                            "network or inline layers",
                            sub.name.c_str());
            if (!sub.network.empty() && !sub.layers.empty())
                util::fatal("DseRequest: sub-network '%s' has both a "
                            "zoo network and inline layers",
                            sub.name.c_str());
            if (sub.weight < 1)
                util::fatal("DseRequest: sub-network '%s' weight must "
                            "be >= 1, got %lld", sub.name.c_str(),
                            static_cast<long long>(sub.weight));
        }
        // Weight expansion renames copies NAME.0, NAME.1, ...; a
        // literal sub-network named like a copy of another would make
        // two attribution spans share a name, silently mis-mapping
        // layers to networks for any client that keys on span names.
        std::set<std::string> copy_names;
        for (const DseSubNet &sub : subnets) {
            for (int64_t copy = 0; copy < sub.weight; ++copy) {
                std::string name = subnetCopyName(sub, copy);
                if (!copy_names.insert(name).second)
                    util::fatal("DseRequest: sub-network copy name "
                                "'%s' collides after weight expansion "
                                "(copies are named NAME.0, NAME.1, "
                                "...)", name.c_str());
            }
        }
    } else if (network.empty() && layers.empty()) {
        util::fatal("DseRequest: a network name or inline layers are "
                    "required");
    }
    if (device.empty() && dspBudgets.empty())
        util::fatal("DseRequest: without a device, an explicit DSP "
                    "ladder is required (the BRAM = DSP/1.3 rule needs "
                    "a DSP count)");
    if (mhz <= 0.0)
        util::fatal("DseRequest: clock must be positive, got %g", mhz);
    if (maxClps < 1)
        util::fatal("DseRequest: maxClps must be >= 1, got %d", maxClps);
    if (threads < 0)
        util::fatal("DseRequest: threads must be >= 0, got %d",
                    threads);
    for (int64_t dsp : dspBudgets) {
        if (dsp <= 0)
            util::fatal("DseRequest: DSP budgets must be positive, got "
                        "%lld", static_cast<long long>(dsp));
    }
}

namespace {

/** One nn::Network per sub-network copy, in request order. */
std::vector<nn::Network>
expandSubnets(const DseRequest &request)
{
    std::vector<nn::Network> parts;
    for (const DseSubNet &sub : request.subnets) {
        nn::Network base = sub.network.empty()
                               ? nn::Network(sub.name, sub.layers)
                               : nn::networkByName(sub.network);
        for (int64_t copy = 0; copy < sub.weight; ++copy)
            parts.emplace_back(subnetCopyName(sub, copy),
                               base.layers());
    }
    return parts;
}

} // namespace

nn::Network
resolveNetwork(const DseRequest &request,
               std::vector<DseSubNetSpan> *spans)
{
    if (spans)
        spans->clear();
    if (!request.subnets.empty()) {
        request.validate();
        std::vector<nn::Network> parts = expandSubnets(request);
        if (spans) {
            size_t next = 0;
            for (const nn::Network &part : parts) {
                spans->push_back(
                    {part.name(), next, part.numLayers()});
                next += part.numLayers();
            }
        }
        std::vector<std::string> names;
        names.reserve(request.subnets.size());
        for (const DseSubNet &sub : request.subnets)
            names.push_back(sub.name);
        return nn::concatenateNetworks(parts,
                                       util::join(names, "+"));
    }
    if (!request.layers.empty()) {
        return nn::Network(request.network.empty() ? "custom"
                                                   : request.network,
                           request.layers);
    }
    return nn::networkByName(request.network);
}

std::vector<DseSubNet>
parseJointSpec(const std::string &spec)
{
    std::vector<DseSubNet> subnets;
    for (const std::string &entry : util::split(spec, ',')) {
        if (entry.empty())
            util::fatal("--joint: empty sub-network entry in '%s'",
                        spec.c_str());
        DseSubNet sub;
        std::string ref = entry;
        size_t colon = entry.find(':');
        if (colon != std::string::npos) {
            sub.name = entry.substr(0, colon);
            ref = entry.substr(colon + 1);
            if (sub.name.empty() || ref.empty())
                util::fatal("--joint: entry '%s' wants NAME:REF",
                            entry.c_str());
        }
        // Deterministic dispatch: path-looking refs ('/' or '.') are
        // network files, everything else is a zoo name — so a stray
        // file in the working directory can never shadow a zoo
        // network, and the same command means the same workload in
        // every directory. A file without either character is
        // reachable as "./file".
        if (ref.find('/') != std::string::npos ||
            ref.find('.') != std::string::npos) {
            nn::Network parsed = nn::parseNetworkFile(ref);
            if (sub.name.empty())
                sub.name = parsed.name();
            sub.layers = parsed.layers();
        } else {
            sub.network = ref;
            if (sub.name.empty())
                sub.name = ref;
        }
        subnets.push_back(std::move(sub));
    }
    return subnets;
}

void
applyJointWeights(std::vector<DseSubNet> &subnets,
                  const std::string &spec)
{
    std::vector<std::string> parts = util::split(spec, ',');
    if (parts.size() != subnets.size())
        util::fatal("--joint-weights: %zu weights for %zu "
                    "sub-networks", parts.size(), subnets.size());
    for (size_t i = 0; i < parts.size(); ++i) {
        char *end = nullptr;
        long long weight = std::strtoll(parts[i].c_str(), &end, 10);
        if (end == parts[i].c_str() || *end != '\0' || weight < 1)
            util::fatal("--joint-weights: bad weight '%s' (positive "
                        "integers)", parts[i].c_str());
        subnets[i].weight = weight;
    }
}

std::vector<fpga::ResourceBudget>
requestBudgets(const DseRequest &request)
{
    request.validate();
    std::vector<fpga::ResourceBudget> budgets;
    if (!request.device.empty()) {
        fpga::ResourceBudget base = fpga::standardBudget(
            fpga::deviceByName(request.device), request.mhz);
        if (request.dspBudgets.empty())
            budgets.push_back(base);
        else
            budgets = dspLadder(request.dspBudgets, request.mhz, 1.3,
                                &base);
    } else {
        budgets = dspLadder(request.dspBudgets, request.mhz, 1.3);
    }
    if (request.bandwidthGbps > 0.0) {
        for (fpga::ResourceBudget &budget : budgets)
            budget.setBandwidthGbps(request.bandwidthGbps);
    }
    return budgets;
}

OptimizerOptions
requestOptions(const DseRequest &request)
{
    OptimizerOptions options;
    options.maxClps = request.maxClps;
    options.singleClp = request.mode == DseMode::SingleClp;
    options.adjacentLayers = request.mode == DseMode::Latency;
    options.threads = request.threads;
    if (request.referenceEngine)
        options.engine = OptimizerEngine::Reference;
    return options;
}

std::string
networkSignature(const nn::Network &network)
{
    std::vector<int64_t> words;
    words.reserve(network.numLayers() * 7);
    for (const nn::ConvLayer &layer : network.layers()) {
        words.push_back(layer.n);
        words.push_back(layer.m);
        words.push_back(layer.r);
        words.push_back(layer.c);
        words.push_back(layer.k);
        words.push_back(layer.s);
        words.push_back(layer.g);
    }
    return util::strprintf(
        "%zuL:%016llx", network.numLayers(),
        static_cast<unsigned long long>(
            util::hashInt64Words(words.data(), words.size())));
}

} // namespace core
} // namespace mclp
