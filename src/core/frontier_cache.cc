#include "core/frontier_cache.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstring>
#include <deque>
#include <filesystem>
#include <string_view>
#include <utility>

#include "model/bandwidth_model.h"
#include "model/bram_model.h"
#include "model/cycle_model.h"
#include "model/dsp_model.h"
#include "nn/conv_layer.h"
#include "util/logging.h"
#include "util/record_file.h"

namespace mclp {
namespace core {

uint64_t
modelFormulaFingerprint()
{
    // Hash probe *evaluations* of every analytical model a cached
    // artifact bakes in: staircases bake the cycle and DSP models;
    // walk traces bake the BRAM and bandwidth models (their caps and
    // peaks come straight out of them). Changing any model constant
    // changes some probe value, so stale caches self-invalidate; the
    // probe set is fixed forever — extending it would itself
    // invalidate every cache, which is exactly the safe failure mode.
    static const uint64_t fingerprint = [] {
        std::vector<int64_t> words;
        auto put = [&](int64_t value) { words.push_back(value); };
        auto putf = [&](double value) {
            int64_t bits;
            static_assert(sizeof(bits) == sizeof(value));
            std::memcpy(&bits, &value, sizeof(bits));
            words.push_back(bits);
        };

        nn::ConvLayer probe =
            nn::makeConvLayer("fingerprint", 48, 128, 27, 27, 5, 1);
        nn::ConvLayer strided =
            nn::makeConvLayer("fingerprint-s", 3, 96, 55, 55, 11, 4);
        model::ClpShape shape{7, 64};
        model::Tiling tiling{13, 14};

        for (fpga::DataType type :
             {fpga::DataType::Float32, fpga::DataType::Fixed16}) {
            put(fpga::dspPerMac(type));
            put(fpga::wordBytes(type));
            put(model::clpDsp(shape, type));
            put(model::macBudget(2880, type));
            put(model::effectiveBanks(7, type));
            put(model::layerCyclesUnderBandwidth(probe, shape, tiling,
                                                 type, 3.5));
        }
        put(model::layerCycles(probe, shape));
        put(model::layerCycles(strided, shape));
        putf(model::layerUtilization(probe, shape));
        put(model::inputBankWords(probe, tiling));
        put(model::inputBankWords(strided, tiling));
        put(model::outputBankWords(tiling));
        put(model::weightBankWords(probe));
        for (int64_t w : {9LL, 10LL, 256LL, 257LL, 512LL, 513LL}) {
            put(model::bramsPerBank(w, false));
            put(model::bramsPerBank(w, true));
        }
        model::LayerTraffic traffic =
            model::layerTraffic(probe, shape, tiling);
        put(traffic.inputWords);
        put(traffic.weightWords);
        put(traffic.outputWords);
        putf(model::layerPeakWordsPerCycle(probe, shape, tiling));
        putf(model::layerPeakWordsPerCycle(strided, shape, tiling));

        return static_cast<uint64_t>(
            util::hashInt64Words(words.data(), words.size()));
    }();
    return fingerprint;
}

namespace {

constexpr uint8_t kKindRow = 1;
constexpr uint8_t kKindTrace = 2;

/** Keys and payloads are capped to reject absurd corrupt lengths. */
constexpr uint32_t kMaxKeyWords = 1 << 20;
constexpr uint32_t kMaxListEntries = 1 << 24;

std::string
headerPayload(uint64_t fingerprint)
{
    util::ByteWriter out;
    out.u64(kFrontierCacheMagic);
    out.u32(kFrontierCacheFormatVersion);
    out.u64(fingerprint);
    return out.bytes();
}

bool
readKey(util::ByteReader &in, std::vector<int64_t> &key)
{
    uint32_t count = 0;
    if (!in.u32(count) || count == 0 || count > kMaxKeyWords)
        return false;
    key.resize(count);
    return in.i64Words(key.data(), count);
}

void
writeKey(util::ByteWriter &out, const std::vector<int64_t> &key)
{
    out.u32(static_cast<uint32_t>(key.size()));
    out.i64Words(key.data(), key.size());
}

std::string
encodeRow(const std::vector<int64_t> &key, const ShapeFrontier &row)
{
    // Format v2 stores the staircase in its SoA form — four i64 lane
    // blocks (tn, tm, dsp, cycles) — so the i64 lanes stream straight
    // from the frontier's storage; only the int32 shape lanes widen
    // through a scratch buffer.
    util::ByteWriter out;
    out.u8(kKindRow);
    writeKey(out, key);
    size_t count = row.size();
    out.u32(static_cast<uint32_t>(count));
    std::vector<int64_t> lane(count);
    for (size_t i = 0; i < count; ++i)
        lane[i] = row.tnData()[i];
    out.i64Words(lane.data(), count);
    for (size_t i = 0; i < count; ++i)
        lane[i] = row.tmData()[i];
    out.i64Words(lane.data(), count);
    out.i64Words(row.dspData(), count);
    out.i64Words(row.cyclesData(), count);
    return out.bytes();
}

std::string
encodeTrace(const std::vector<int64_t> &key, bool complete,
            int64_t initial_bram, double initial_peak,
            const std::vector<TradeoffCurveCache::PartitionStep> &steps)
{
    util::ByteWriter out;
    out.u8(kKindTrace);
    writeKey(out, key);
    out.u8(complete ? 1 : 0);
    out.i64(initial_bram);
    out.f64(initial_peak);
    out.u32(static_cast<uint32_t>(steps.size()));
    for (const TradeoffCurveCache::PartitionStep &step : steps) {
        out.u32(step.clp);
        out.i64(step.inCap);
        out.i64(step.outCap);
        out.i64(step.totalBram);
        out.f64(step.totalPeak);
    }
    return out.bytes();
}

/** Groups in a partition-trace key = the -1 delimiters it contains. */
size_t
traceKeyGroups(const std::vector<int64_t> &key)
{
    return static_cast<size_t>(
        std::count(key.begin(), key.end(), int64_t{-1}));
}

} // namespace

FrontierCache::FrontierCache(std::string dir)
    : dir_(std::move(dir)), fingerprint_(modelFormulaFingerprint())
{
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::create_directories(dir_, ec);  // best effort; load just misses
    filePath_ = (fs::path(dir_) / kFrontierCacheFileName).string();
    lockPath_ = (fs::path(dir_) / kFrontierCacheLockName).string();
    // Loading under the advisory lock keeps the sequence simple to
    // reason about when several CLIs share the directory; the lock is
    // held only for the read.
    util::FileLock lock(lockPath_);
    loadLocked();
}

void
FrontierCache::loadLocked()
{
    util::RecordFileReader reader(filePath_);
    if (!reader.opened())
        return;  // no cache yet: clean cold start

    std::string payload;
    if (!reader.header(payload)) {
        loadedClean_ = !reader.sawCorruption();
        if (!loadedClean_)
            util::warn("frontier cache: %s has a corrupt header; "
                       "starting cold", filePath_.c_str());
        return;
    }
    {
        util::ByteReader in(payload);
        uint64_t magic = 0;
        uint32_t version = 0;
        uint64_t fingerprint = 0;
        if (!in.u64(magic) || magic != kFrontierCacheMagic) {
            loadedClean_ = false;
            util::warn("frontier cache: %s is not a frontier cache "
                       "file; starting cold", filePath_.c_str());
            return;
        }
        if (!in.u32(version) || version != kFrontierCacheFormatVersion ||
            !in.u64(fingerprint) || fingerprint != fingerprint_) {
            // Expected invalidation (older binary, changed model
            // formulas): stay clean and quiet; the next flush
            // rewrites the file under the current header.
            util::inform("frontier cache: %s was written under a "
                         "different format/model version; rebuilding",
                         filePath_.c_str());
            return;
        }
    }

    std::string_view record;
    while (reader.next(record)) {
        util::ByteReader in(record);
        uint8_t kind = 0;
        std::vector<int64_t> key;
        if (!in.u8(kind) || !readKey(in, key)) {
            loadedClean_ = false;
            break;
        }
        if (kind == kKindRow) {
            uint32_t count = 0;
            if (!in.u32(count) || count > kMaxListEntries) {
                loadedClean_ = false;
                break;
            }
            size_t n = count;
            std::vector<int64_t> tn(n), tm(n), dsp(n), cycles(n);
            in.i64Words(tn.data(), n);
            in.i64Words(tm.data(), n);
            in.i64Words(dsp.data(), n);
            in.i64Words(cycles.data(), n);
            std::vector<FrontierPoint> points(n);
            for (size_t i = 0; i < n; ++i) {
                points[i].shape = model::ClpShape{tn[i], tm[i]};
                points[i].dsp = dsp[i];
                points[i].cycles = cycles[i];
            }
            auto frontier = in.ok() && in.atEnd()
                                ? ShapeFrontier::fromPoints(
                                      std::move(points))
                                : std::nullopt;
            if (!frontier) {
                loadedClean_ = false;
                break;
            }
            diskRows_[std::move(key)] =
                std::make_shared<const ShapeFrontier>(
                    std::move(*frontier));
            ++rowsLoaded_;
        } else if (kind == kKindTrace) {
            TraceImage image;
            uint8_t complete = 0;
            uint32_t count = 0;
            if (!in.u8(complete) || !in.i64(image.initialBram) ||
                !in.f64(image.initialPeak) || !in.u32(count) ||
                count > kMaxListEntries) {
                loadedClean_ = false;
                break;
            }
            image.complete = complete != 0;
            image.steps.resize(count);
            for (uint32_t i = 0; i < count; ++i) {
                TradeoffCurveCache::PartitionStep &step = image.steps[i];
                if (!in.u32(step.clp) || !in.i64(step.inCap) ||
                    !in.i64(step.outCap) || !in.i64(step.totalBram) ||
                    !in.f64(step.totalPeak))
                    break;
            }
            // Semantic validation: the walk's invariants (strictly
            // decreasing total BRAM, finite peaks, mover indices
            // within the key's group count) must hold or the trace is
            // untrustworthy regardless of its checksum.
            bool valid = in.ok() && in.atEnd() &&
                         image.initialBram >= 0 &&
                         std::isfinite(image.initialPeak);
            size_t groups = traceKeyGroups(key);
            int64_t prev_bram = image.initialBram;
            for (const auto &step : image.steps) {
                if (!valid)
                    break;
                valid = step.clp < groups && step.inCap >= 0 &&
                        step.outCap >= 0 && step.totalBram >= 0 &&
                        step.totalBram < prev_bram &&
                        std::isfinite(step.totalPeak);
                prev_bram = step.totalBram;
            }
            if (!valid) {
                loadedClean_ = false;
                break;
            }
            diskTraces_[std::move(key)] = std::move(image);
            ++tracesLoaded_;
        } else {
            loadedClean_ = false;
            break;
        }
    }
    if (reader.sawCorruption())
        loadedClean_ = false;
    if (!loadedClean_)
        util::warn("frontier cache: %s is truncated or corrupt past "
                   "%zu rows / %zu traces; the valid prefix is kept "
                   "and the rest rebuilds cold",
                   filePath_.c_str(), rowsLoaded_, tracesLoaded_);
}

std::shared_ptr<const ShapeFrontier>
FrontierCache::loadRow(const std::vector<int64_t> &key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = diskRows_.find(key);
    if (it == diskRows_.end())
        return nullptr;
    ++rowHits_;
    return it->second;
}

void
FrontierCache::noteRow(const std::vector<int64_t> &key,
                       std::shared_ptr<const ShapeFrontier> row)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (diskRows_.count(key))
        return;  // already persistent
    pendingRows_.emplace(key, std::move(row));
}

bool
FrontierCache::seedTrace(const std::vector<int64_t> &key,
                         TradeoffCurveCache::PartitionTrace &trace)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = diskTraces_.find(key);
    if (it == diskTraces_.end())
        return false;
    const TraceImage &image = it->second;
    trace.initialized = true;
    trace.initialBram = image.initialBram;
    trace.initialPeak = image.initialPeak;
    trace.steps.assign(image.steps.data(), image.steps.size());
    trace.complete = image.complete;
    ++traceHits_;
    return true;
}

void
FrontierCache::noteTrace(
    const std::vector<int64_t> &key,
    std::shared_ptr<TradeoffCurveCache::PartitionTrace> trace)
{
    std::lock_guard<std::mutex> lock(mutex_);
    notedTraces_.emplace(key, std::move(trace));
}

bool
FrontierCache::flush()
{
    // Phase 1: snapshot under our mutex (never hold it across file
    // I/O or trace mutexes — walks holding a trace mutex re-enter
    // other caches, and lookups call into us under the store mutex).
    RowMap pending_rows;
    std::vector<std::pair<
        std::vector<int64_t>,
        std::shared_ptr<TradeoffCurveCache::PartitionTrace>>>
        noted;
    /** What disk held at load/last flush: key -> (steps, complete). */
    std::unordered_map<std::vector<int64_t>, std::pair<size_t, bool>,
                       util::Int64VectorHash>
        known;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        pending_rows = pendingRows_;
        noted.assign(notedTraces_.begin(), notedTraces_.end());
        for (const auto &[key, image] : diskTraces_)
            known.emplace(key, std::make_pair(image.steps.size(),
                                              image.complete));
    }

    // Phase 2: snapshot each live trace under its own mutex, keeping
    // only traces that outgrew what this process knows is on disk.
    TraceMap trace_images;
    for (const auto &[key, trace] : noted) {
        std::lock_guard<std::mutex> trace_lock(trace->mutex);
        if (!trace->initialized)
            continue;
        auto it = known.find(key);
        if (it != known.end() &&
            (it->second.first > trace->steps.size() ||
             (it->second.first == trace->steps.size() &&
              it->second.second == trace->complete)))
            continue;
        TraceImage image;
        image.complete = trace->complete;
        image.initialBram = trace->initialBram;
        image.initialPeak = trace->initialPeak;
        image.steps.assign(trace->steps.begin(), trace->steps.end());
        trace_images.emplace(key, std::move(image));
    }

    // Nothing new? Then the file — whatever concurrent CLIs did to it
    // since — holds at least everything we could add: skip the lock
    // and the whole read-merge-write round trip. This keeps a
    // disk-warm process's shutdown free instead of re-parsing the
    // file it never changed.
    if (pending_rows.empty() && trace_images.empty())
        return true;

    // Phase 3: merge with the file's *current* contents under the
    // advisory lock and rewrite atomically. Another process may have
    // flushed since we loaded, so the file is re-read here; records
    // are deterministic functions of their keys, so "first writer
    // wins" is exact for rows, and the deeper prefix wins for traces.
    util::FileLock lock(lockPath_);
    if (!lock.locked()) {
        util::warn("frontier cache: cannot lock %s; skipping flush",
                   lockPath_.c_str());
        return false;
    }

    struct DiskRecord
    {
        /** Views into the (still-alive) reader's buffer for existing
         * records, or into `fresh` for newly encoded ones — the
         * merge never copies a multi-megabyte file's payloads. */
        std::string_view payload;
        size_t steps = 0;     ///< traces only
        bool complete = false;
    };
    std::unordered_map<std::vector<int64_t>, DiskRecord,
                       util::Int64VectorHash>
        rows, traces;
    std::deque<std::string> fresh;  ///< owns newly encoded payloads
    bool rewrite = false;  // anything to change on disk?
    util::RecordFileReader reader(filePath_);  // alive through the write
    {
        std::string header;
        bool header_ok = reader.opened() && reader.header(header) &&
                         header == headerPayload(fingerprint_);
        if (header_ok) {
            std::string_view payload;
            while (reader.next(payload)) {
                util::ByteReader in(payload);
                uint8_t kind = 0;
                std::vector<int64_t> key;
                if (!in.u8(kind) || !readKey(in, key))
                    break;
                DiskRecord record;
                record.payload = payload;
                if (kind == kKindTrace) {
                    uint8_t complete = 0;
                    int64_t bram;
                    double peak;
                    uint32_t count = 0;
                    if (!in.u8(complete) || !in.i64(bram) ||
                        !in.f64(peak) || !in.u32(count))
                        break;
                    record.steps = count;
                    record.complete = complete != 0;
                    traces.emplace(std::move(key), record);
                } else if (kind == kKindRow) {
                    rows.emplace(std::move(key), record);
                } else {
                    break;
                }
            }
            // A corrupt tail is dropped by rewriting the valid set.
            rewrite = reader.sawCorruption();
        } else if (reader.opened()) {
            rewrite = true;  // stale or damaged file: replace wholesale
        }
    }

    for (const auto &[key, row] : pending_rows) {
        if (rows.count(key))
            continue;  // a concurrent CLI beat us to an identical row
        fresh.push_back(encodeRow(key, *row));
        rows[key] = {fresh.back(), 0, false};
        rewrite = true;
    }
    std::vector<const std::vector<int64_t> *> written_traces;
    for (const auto &[key, image] : trace_images) {
        auto it = traces.find(key);
        // The deeper walk prefix wins; at equal depth a complete
        // trace beats an incomplete one, and an identical trace is
        // left alone. A losing image must NOT enter our disk mirror
        // below — recording it as "what disk holds" would make later
        // seedTrace() calls hand out less warmth than disk has.
        bool ours_deeper =
            it == traces.end() || image.steps.size() > it->second.steps ||
            (image.steps.size() == it->second.steps && image.complete &&
             !it->second.complete);
        if (!ours_deeper)
            continue;
        fresh.push_back(encodeTrace(key, image.complete,
                                    image.initialBram,
                                    image.initialPeak, image.steps));
        traces[key] = {fresh.back(), image.steps.size(),
                       image.complete};
        written_traces.push_back(&key);
        rewrite = true;
    }

    // Absorb everything this flush made persistent — whether we wrote
    // it or found a concurrent CLI already had — so the next flush
    // only considers genuinely new state (and stats stop reporting it
    // as pending).
    auto absorb = [&](bool wrote) {
        std::lock_guard<std::mutex> lock_state(mutex_);
        for (auto &[key, row] : pending_rows) {
            diskRows_.emplace(key, std::move(row));
            pendingRows_.erase(key);
        }
        for (const std::vector<int64_t> *key : written_traces)
            diskTraces_[*key] = std::move(trace_images[*key]);
        if (wrote)
            ++flushes_;
    };

    if (!rewrite) {
        // Disk already holds at least everything we know (every
        // pending row matched an on-disk record, every trace lost to
        // a deeper on-disk prefix).
        absorb(false);
        return true;
    }

    util::RecordFileWriter writer(filePath_,
                                  headerPayload(fingerprint_));
    for (const auto &[key, record] : rows)
        writer.append(record.payload);
    for (const auto &[key, record] : traces)
        writer.append(record.payload);
    if (!writer.commit()) {
        util::warn("frontier cache: writing %s failed; previous cache "
                   "file kept", filePath_.c_str());
        return false;
    }
    absorb(true);
    return true;
}

FrontierCache::Stats
FrontierCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    Stats stats;
    stats.rowsLoaded = rowsLoaded_;
    stats.tracesLoaded = tracesLoaded_;
    stats.rowHits = rowHits_;
    stats.traceHits = traceHits_;
    stats.rowsPending = pendingRows_.size();
    stats.tracesNoted = notedTraces_.size();
    stats.flushes = flushes_;
    stats.loadedClean = loadedClean_;
    return stats;
}

} // namespace core
} // namespace mclp
