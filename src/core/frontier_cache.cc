#include "core/frontier_cache.h"

#include <sys/stat.h>

#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <cstring>
#include <deque>
#include <filesystem>
#include <string_view>
#include <utility>

#include "model/bandwidth_model.h"
#include "model/bram_model.h"
#include "model/cycle_model.h"
#include "model/dsp_model.h"
#include "nn/conv_layer.h"
#include "util/logging.h"
#include "util/record_file.h"
#include "util/shm.h"

namespace mclp {
namespace core {

uint64_t
modelFormulaFingerprint()
{
    // Hash probe *evaluations* of every analytical model a cached
    // artifact bakes in: staircases bake the cycle and DSP models;
    // walk traces bake the BRAM and bandwidth models (their caps and
    // peaks come straight out of them). Changing any model constant
    // changes some probe value, so stale caches self-invalidate; the
    // probe set is fixed forever — extending it would itself
    // invalidate every cache, which is exactly the safe failure mode.
    static const uint64_t fingerprint = [] {
        std::vector<int64_t> words;
        auto put = [&](int64_t value) { words.push_back(value); };
        auto putf = [&](double value) {
            int64_t bits;
            static_assert(sizeof(bits) == sizeof(value));
            std::memcpy(&bits, &value, sizeof(bits));
            words.push_back(bits);
        };

        nn::ConvLayer probe =
            nn::makeConvLayer("fingerprint", 48, 128, 27, 27, 5, 1);
        nn::ConvLayer strided =
            nn::makeConvLayer("fingerprint-s", 3, 96, 55, 55, 11, 4);
        // Grouped probes (PR 9): the g factor reshapes the cycle,
        // traffic, and peak formulas, so grouped evaluations must be
        // part of the digest — and their addition invalidates every
        // pre-groups cache, whose keys lack the g lane.
        nn::ConvLayer grouped =
            nn::makeConvLayer("fingerprint-g", 48, 128, 27, 27, 3, 1, 4);
        nn::ConvLayer depthwise =
            nn::makeConvLayer("fingerprint-dw", 96, 96, 27, 27, 3, 1, 96);
        model::ClpShape shape{7, 64};
        model::Tiling tiling{13, 14};

        for (fpga::DataType type :
             {fpga::DataType::Float32, fpga::DataType::Fixed16}) {
            put(fpga::dspPerMac(type));
            put(fpga::wordBytes(type));
            put(model::clpDsp(shape, type));
            put(model::macBudget(2880, type));
            put(model::effectiveBanks(7, type));
            put(model::layerCyclesUnderBandwidth(probe, shape, tiling,
                                                 type, 3.5));
        }
        put(model::layerCycles(probe, shape));
        put(model::layerCycles(strided, shape));
        putf(model::layerUtilization(probe, shape));
        put(model::inputBankWords(probe, tiling));
        put(model::inputBankWords(strided, tiling));
        put(model::outputBankWords(tiling));
        put(model::weightBankWords(probe));
        for (int64_t w : {9LL, 10LL, 256LL, 257LL, 512LL, 513LL}) {
            put(model::bramsPerBank(w, false));
            put(model::bramsPerBank(w, true));
        }
        model::LayerTraffic traffic =
            model::layerTraffic(probe, shape, tiling);
        put(traffic.inputWords);
        put(traffic.weightWords);
        put(traffic.outputWords);
        putf(model::layerPeakWordsPerCycle(probe, shape, tiling));
        putf(model::layerPeakWordsPerCycle(strided, shape, tiling));
        for (const nn::ConvLayer &layer : {grouped, depthwise}) {
            put(model::layerCycles(layer, shape));
            model::LayerTraffic t =
                model::layerTraffic(layer, shape, tiling);
            put(t.inputWords);
            put(t.weightWords);
            put(t.outputWords);
            putf(model::layerPeakWordsPerCycle(layer, shape, tiling));
        }

        return static_cast<uint64_t>(
            util::hashInt64Words(words.data(), words.size()));
    }();
    return fingerprint;
}

namespace {

/** What the record-file header says about the file, read without
 * slurping the record log (the lazy segment path's whole point is to
 * skip that read). */
enum class HeaderProbe
{
    Missing,  ///< no file: clean cold start
    Damaged,  ///< truncated/corrupt header frame: dirty cold start
    Foreign,  ///< checksummed but not a frontier cache: dirty cold
    Stale,    ///< other version or fingerprint: clean invalidation
    LegacyV2, ///< SoA file, our fingerprint: eager load + upgrade
    LegacyV3, ///< delta file, 3-lane row keys: eager load + upgrade
    Current,  ///< current-format delta file, our fingerprint
};

HeaderProbe
probeHeader(const std::string &path, uint64_t fingerprint,
            uint64_t *generation)
{
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (!file)
        return HeaderProbe::Missing;
    unsigned char frame[12];
    unsigned char payload[64];
    size_t got = std::fread(frame, 1, sizeof(frame), file);
    uint32_t length = 0;
    uint64_t checksum = 0;
    for (size_t i = 0; i < 4; ++i)
        length |= static_cast<uint32_t>(frame[i]) << (8 * i);
    for (size_t i = 0; i < 8; ++i)
        checksum |= static_cast<uint64_t>(frame[4 + i]) << (8 * i);
    bool framed = got == sizeof(frame) && length <= sizeof(payload) &&
                  std::fread(payload, 1, length, file) == length;
    std::fclose(file);
    if (!framed || util::fnv1aBytes(payload, length) != checksum)
        return HeaderProbe::Damaged;

    util::ByteReader in(
        {reinterpret_cast<const char *>(payload), length});
    uint64_t magic = 0, fp = 0;
    uint32_t version = 0;
    if (!in.u64(magic) || magic != kFrontierCacheMagic)
        return HeaderProbe::Foreign;
    if (!in.u32(version) || !in.u64(fp) || fp != fingerprint)
        return HeaderProbe::Stale;
    if (version == kFrontierCacheFormatVersion)
        return in.u64(*generation) && in.atEnd()
                   ? HeaderProbe::Current
                   : HeaderProbe::Damaged;
    // A v3 header carries the generation stamp too. Real pre-groups
    // files never reach here — their fingerprint lacks the grouped
    // probes, so they go Stale above — but the upgrade path stays
    // live for files the format tests author deliberately.
    if (version == kFrontierCacheLegacyV3FormatVersion &&
        in.u64(*generation) && in.atEnd())
        return HeaderProbe::LegacyV3;
    if (version == kFrontierCacheLegacyFormatVersion && in.atEnd())
        return HeaderProbe::LegacyV2;
    return HeaderProbe::Stale;
}

/**
 * Upgrade a v3 staircase row key (three lanes per layer: {n, m,
 * r*c*k^2} after the two header words) to the v4 shape by appending
 * the group lane to every triple. Every v3-era layer was plain
 * convolution, so g=1 throughout. Empty on a malformed length —
 * the caller treats that like any other corrupt record.
 * Trace keys are untouched by v4 (their n lane was already a
 * per-group ceiling, and g=1 makes it the same number).
 */
std::vector<int64_t>
upgradeV3RowKey(const std::vector<int64_t> &key)
{
    std::vector<int64_t> upgraded;
    if (key.size() < 2 || (key.size() - 2) % 3 != 0)
        return upgraded;
    upgraded.reserve(2 + (key.size() - 2) / 3 * 4);
    upgraded.push_back(key[0]);
    upgraded.push_back(key[1]);
    for (size_t i = 2; i < key.size(); i += 3) {
        upgraded.push_back(key[i]);
        upgraded.push_back(key[i + 1]);
        upgraded.push_back(key[i + 2]);
        upgraded.push_back(1);
    }
    return upgraded;
}

} // namespace

FrontierCache::FrontierCache(std::string dir,
                             FrontierCacheOptions options)
    : dir_(std::move(dir)), options_(options),
      fingerprint_(modelFormulaFingerprint())
{
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::create_directories(dir_, ec);  // best effort; load just misses
    filePath_ = (fs::path(dir_) / kFrontierCacheFileName).string();
    lockPath_ = (fs::path(dir_) / kFrontierCacheLockName).string();
    segmentPath_ = (fs::path(dir_) / kFrontierSegmentFileName).string();
    // Sibling shards attach lazily: a sibling may not have published
    // anything yet (or even exist yet) — findInSiblings() maps each
    // segment the first time its file shows up on a miss.
    siblings_.reserve(options_.siblingDirs.size());
    for (const std::string &sibling : options_.siblingDirs) {
        SiblingSegment entry;
        entry.path =
            (fs::path(sibling) / kFrontierSegmentFileName).string();
        siblings_.push_back(std::move(entry));
    }
    // Loading under the advisory lock keeps the sequence simple to
    // reason about when several CLIs share the directory; the lock is
    // held only for the read.
    util::FileLock lock(lockPath_);
    loadLocked();
}

void
FrontierCache::loadLocked()
{
    switch (probeHeader(filePath_, fingerprint_, &generation_)) {
    case HeaderProbe::Missing:
        return;  // no cache yet: clean cold start
    case HeaderProbe::Damaged:
        loadedClean_ = false;
        util::warn("frontier cache: %s has a corrupt header; "
                   "starting cold", filePath_.c_str());
        return;
    case HeaderProbe::Foreign:
        loadedClean_ = false;
        util::warn("frontier cache: %s is not a frontier cache file; "
                   "starting cold", filePath_.c_str());
        return;
    case HeaderProbe::Stale:
        // Expected invalidation (older binary, changed model
        // formulas): stay clean and quiet; the next flush rewrites
        // the file under the current header.
        util::inform("frontier cache: %s was written under a "
                     "different format/model version; rebuilding",
                     filePath_.c_str());
        return;
    case HeaderProbe::Current:
        if (options_.mmapSegment) {
            segment_ =
                FrontierCacheSegment::open(segmentPath_, fingerprint_);
            if (segment_.valid() &&
                segment_.generation() == generation_) {
                // Lazy mode: the segment is this exact record set,
                // hash-indexed and shared host-wide. Skip the eager
                // decode entirely; rows and traces stream out of the
                // mapping on demand.
                return;
            }
            // Absent, damaged, or generation-skewed (e.g. a publish
            // torn between record-file commit and segment rename):
            // the record file is authoritative, so fall back to it.
            segment_ = FrontierCacheSegment();
        }
        loadRecordsLocked(kFrontierCacheFormatVersion);
        return;
    case HeaderProbe::LegacyV3:
        // Never serve a v3-generation segment: it indexes the same
        // records under 3-lane row keys, so the lazy path would miss
        // every upgraded lookup while claiming to be warm. Eager-load
        // with key upgrade; the next flush rewrites file and segment.
        upgradePending_ = true;
        util::inform("frontier cache: %s uses the 3-lane v3 row keys; "
                     "it will be rewritten with group lanes on the "
                     "next flush", filePath_.c_str());
        loadRecordsLocked(kFrontierCacheLegacyV3FormatVersion);
        return;
    case HeaderProbe::LegacyV2:
        upgradePending_ = true;
        util::inform("frontier cache: %s uses the SoA v2 format; it "
                     "will be rewritten delta-compacted on the next "
                     "flush", filePath_.c_str());
        loadRecordsLocked(kFrontierCacheLegacyFormatVersion);
        return;
    }
}

void
FrontierCache::loadRecordsLocked(uint32_t version)
{
    util::RecordFileReader reader(filePath_);
    std::string header;
    if (!reader.opened() || !reader.header(header)) {
        loadedClean_ = !reader.sawCorruption();
        return;  // probe validated the header; a race truncated it
    }

    // v3 and v4 records are framed identically (kind, key, counters,
    // delta payload); only the row-key lane count differs. v2 lacks
    // counters and carries the SoA bodies.
    bool delta = version != kFrontierCacheLegacyFormatVersion;
    std::string_view record;
    while (reader.next(record)) {
        util::ByteReader in(record);
        uint8_t kind = 0;
        std::vector<int64_t> key;
        if (!in.u8(kind) || !readCacheKey(in, key)) {
            loadedClean_ = false;
            break;
        }
        if (delta) {
            uint32_t hits = 0, last_gen = 0;
            if (!in.u32(hits) || !in.u32(last_gen)) {
                loadedClean_ = false;
                break;
            }
        }
        if (kind == kCacheRecordRow) {
            if (version == kFrontierCacheLegacyV3FormatVersion) {
                key = upgradeV3RowKey(key);
                if (key.empty()) {
                    loadedClean_ = false;
                    break;
                }
            }
            auto frontier = delta ? decodeRowPayload(in.rest())
                                  : decodeLegacyRowBody(in);
            if (!frontier) {
                loadedClean_ = false;
                break;
            }
            diskRows_[std::move(key)] =
                std::make_shared<const ShapeFrontier>(
                    std::move(*frontier));
            ++rowsLoaded_;
        } else if (kind == kCacheRecordTrace) {
            FrontierTraceImage image;
            size_t groups = traceKeyGroups(key);
            bool valid = delta
                    ? decodeTracePayload(in.rest(), groups, image)
                    : decodeLegacyTraceBody(in, groups, image);
            if (!valid) {
                loadedClean_ = false;
                break;
            }
            diskTraces_[std::move(key)] = std::move(image);
            ++tracesLoaded_;
        } else {
            loadedClean_ = false;
            break;
        }
    }
    if (reader.sawCorruption())
        loadedClean_ = false;
    if (!loadedClean_)
        util::warn("frontier cache: %s is truncated or corrupt past "
                   "%zu rows / %zu traces; the valid prefix is kept "
                   "and the rest rebuilds cold",
                   filePath_.c_str(), rowsLoaded_, tracesLoaded_);
}

std::string_view
FrontierCache::findInSiblings(uint8_t kind,
                              const std::vector<int64_t> &key)
{
    for (SiblingSegment &sibling : siblings_) {
        // Refresh on a changed stat signature: the sibling republishes
        // with an atomic rename, so the path flips to a new inode when
        // (and only when) there is a new complete image. The stat is
        // nanoseconds against a miss that otherwise costs a cold
        // build, so probing on every miss is fine. The old mapping
        // survives an invalid or older replacement (generation guard):
        // serving it is always correct, merely less warm.
        struct stat st{};
        if (::stat(sibling.path.c_str(), &st) == 0 &&
            (static_cast<int64_t>(st.st_ino) != sibling.statIno ||
             static_cast<int64_t>(st.st_size) != sibling.statSize ||
             static_cast<int64_t>(st.st_mtim.tv_sec) * 1000000000 +
                     st.st_mtim.tv_nsec !=
                 sibling.statMtimeNs)) {
            sibling.statIno = static_cast<int64_t>(st.st_ino);
            sibling.statSize = static_cast<int64_t>(st.st_size);
            sibling.statMtimeNs =
                static_cast<int64_t>(st.st_mtim.tv_sec) * 1000000000 +
                st.st_mtim.tv_nsec;
            FrontierCacheSegment mapped =
                FrontierCacheSegment::open(sibling.path, fingerprint_);
            if (mapped.valid() &&
                (!sibling.segment.valid() ||
                 mapped.generation() >= sibling.segment.generation()))
                sibling.segment = std::move(mapped);
        }
        if (!sibling.segment.valid())
            continue;
        std::string_view payload = sibling.segment.find(kind, key);
        if (!payload.empty())
            return payload;
    }
    return {};
}

std::shared_ptr<const ShapeFrontier>
FrontierCache::loadRow(const std::vector<int64_t> &key, CacheTier *tier)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (tier)
        *tier = CacheTier::None;
    auto it = diskRows_.find(key);
    if (it != diskRows_.end()) {
        ++rowHits_;
        ++rowHitDelta_[key];
        if (tier)
            *tier = CacheTier::Disk;
        return it->second;
    }
    it = mmapRows_.find(key);
    if (it == mmapRows_.end() && segment_.valid()) {
        std::string_view payload = segment_.find(kCacheRecordRow, key);
        if (!payload.empty()) {
            // Decode straight out of the mapping and memoize: the
            // second lookup of a hot row costs a map probe, and the
            // decoded object is shared process-wide like any other.
            if (auto row = decodeRowPayload(payload))
                it = mmapRows_
                         .emplace(key,
                                  std::make_shared<const ShapeFrontier>(
                                      std::move(*row)))
                         .first;
        }
    }
    if (it == mmapRows_.end()) {
        // Sideways before cold: a sibling shard may have published
        // this row. Its hit is not folded into rowHitDelta_ — the
        // record belongs to the sibling's file, and our flush cannot
        // update counters it does not own.
        auto sit = siblingRows_.find(key);
        if (sit == siblingRows_.end() && !siblings_.empty()) {
            std::string_view payload =
                findInSiblings(kCacheRecordRow, key);
            if (!payload.empty()) {
                if (auto row = decodeRowPayload(payload))
                    sit = siblingRows_
                              .emplace(
                                  key,
                                  std::make_shared<const ShapeFrontier>(
                                      std::move(*row)))
                              .first;
            }
        }
        if (sit == siblingRows_.end())
            return nullptr;
        ++rowHits_;
        ++siblingRowHits_;
        if (tier)
            *tier = CacheTier::Sibling;
        return sit->second;
    }
    ++rowHits_;
    ++segmentRowHits_;
    ++rowHitDelta_[key];
    if (tier)
        *tier = CacheTier::Mmap;
    return it->second;
}

void
FrontierCache::noteRow(const std::vector<int64_t> &key,
                       std::shared_ptr<const ShapeFrontier> row)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (diskRows_.count(key) || mmapRows_.count(key))
        return;  // already persistent
    if (segment_.valid() &&
        !segment_.find(kCacheRecordRow, key).empty())
        return;  // persistent, just never decoded by this process
    pendingRows_.emplace(key, std::move(row));
}

bool
FrontierCache::seedTrace(const std::vector<int64_t> &key,
                         TradeoffCurveCache::PartitionTrace &trace,
                         CacheTier *tier)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (tier)
        *tier = CacheTier::None;
    const FrontierTraceImage *image = nullptr;
    CacheTier source = CacheTier::Disk;
    auto it = diskTraces_.find(key);
    if (it != diskTraces_.end()) {
        image = &it->second;
    } else {
        auto mit = mmapTraces_.find(key);
        if (mit == mmapTraces_.end() && segment_.valid()) {
            std::string_view payload =
                segment_.find(kCacheRecordTrace, key);
            FrontierTraceImage decoded;
            if (!payload.empty() &&
                decodeTracePayload(payload, traceKeyGroups(key),
                                   decoded))
                mit = mmapTraces_.emplace(key, std::move(decoded))
                          .first;
        }
        if (mit != mmapTraces_.end()) {
            image = &mit->second;
            source = CacheTier::Mmap;
        }
    }
    if (!image && !siblings_.empty()) {
        // Sideways before cold, same as rows: a sibling's published
        // walk prefix seeds this shard's trace too.
        auto sit = siblingTraces_.find(key);
        if (sit == siblingTraces_.end()) {
            std::string_view payload =
                findInSiblings(kCacheRecordTrace, key);
            FrontierTraceImage decoded;
            if (!payload.empty() &&
                decodeTracePayload(payload, traceKeyGroups(key),
                                   decoded))
                sit = siblingTraces_.emplace(key, std::move(decoded))
                          .first;
        }
        if (sit != siblingTraces_.end()) {
            image = &sit->second;
            source = CacheTier::Sibling;
        }
    }
    if (!image)
        return false;
    trace.initialized = true;
    trace.initialBram = image->initialBram;
    trace.initialPeak = image->initialPeak;
    trace.steps.assign(image->steps.data(), image->steps.size());
    trace.complete = image->complete;
    ++traceHits_;
    if (source == CacheTier::Mmap)
        ++segmentTraceHits_;
    if (source == CacheTier::Sibling)
        ++siblingTraceHits_;
    else
        ++traceHitDelta_[key];
    if (tier)
        *tier = source;
    return true;
}

void
FrontierCache::noteTrace(
    const std::vector<int64_t> &key,
    std::shared_ptr<TradeoffCurveCache::PartitionTrace> trace)
{
    std::lock_guard<std::mutex> lock(mutex_);
    notedTraces_.emplace(key, std::move(trace));
}

bool
FrontierCache::flush()
{
    // Phase 1: snapshot under our mutex (never hold it across file
    // I/O or trace mutexes — walks holding a trace mutex re-enter
    // other caches, and lookups call into us under the store mutex).
    RowMap pending_rows;
    std::vector<std::pair<
        std::vector<int64_t>,
        std::shared_ptr<TradeoffCurveCache::PartitionTrace>>>
        noted;
    /** What disk held at load/last flush: key -> (steps, complete). */
    std::unordered_map<std::vector<int64_t>, std::pair<size_t, bool>,
                       util::Int64VectorHash>
        known;
    HitMap row_deltas, trace_deltas;
    bool upgrade_pending;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        pending_rows = pendingRows_;
        noted.assign(notedTraces_.begin(), notedTraces_.end());
        for (const auto &[key, image] : diskTraces_)
            known.emplace(key, std::make_pair(image.steps.size(),
                                              image.complete));
        for (const auto &[key, image] : mmapTraces_)
            known.emplace(key, std::make_pair(image.steps.size(),
                                              image.complete));
        row_deltas = rowHitDelta_;
        trace_deltas = traceHitDelta_;
        upgrade_pending = upgradePending_;
    }

    // Phase 2: snapshot each live trace under its own mutex, keeping
    // only traces that outgrew what this process knows is on disk.
    TraceMap trace_images;
    for (const auto &[key, trace] : noted) {
        std::lock_guard<std::mutex> trace_lock(trace->mutex);
        if (!trace->initialized)
            continue;
        auto it = known.find(key);
        if (it != known.end() &&
            (it->second.first > trace->steps.size() ||
             (it->second.first == trace->steps.size() &&
              it->second.second == trace->complete)))
            continue;
        FrontierTraceImage image;
        image.complete = trace->complete;
        image.initialBram = trace->initialBram;
        image.initialPeak = trace->initialPeak;
        image.steps.assign(trace->steps.begin(), trace->steps.end());
        trace_images.emplace(key, std::move(image));
    }

    // Nothing new? Then the file — whatever concurrent CLIs did to it
    // since — holds at least everything we could add: skip the lock
    // and the whole read-merge-write round trip. Hit-counter deltas
    // alone never force a rewrite either — they stay in memory and
    // ride the next flush that rewrites the file for a real reason
    // (tests/core/test_frontier_cache.cc pins the no-op). A pending
    // v2/v3 format upgrade is a real reason.
    if (pending_rows.empty() && trace_images.empty() &&
        !upgrade_pending)
        return true;

    // Phase 3: merge with the file's *current* contents under the
    // advisory lock and rewrite atomically. Another process may have
    // flushed since we loaded, so the file is re-read here; records
    // are deterministic functions of their keys, so "first writer
    // wins" is exact for rows, and the deeper prefix wins for traces.
    util::FileLock lock(lockPath_);
    if (!lock.locked()) {
        util::warn("frontier cache: cannot lock %s; skipping flush",
                   lockPath_.c_str());
        return false;
    }

    struct DiskRecord
    {
        /** Delta payload only (no kind/key/counter framing): views
         * into the (still-alive) reader's buffer for existing
         * records, or into `fresh` for newly encoded ones — the
         * merge never copies a multi-megabyte file's payloads. */
        std::string_view payload;
        uint32_t hits = 0;
        uint32_t lastGen = 0;
        size_t steps = 0;     ///< traces only
        bool complete = false;
    };
    std::unordered_map<std::vector<int64_t>, DiskRecord,
                       util::Int64VectorHash>
        rows, traces;
    std::deque<std::string> fresh;  ///< owns newly encoded payloads
    bool rewrite = false;  // anything to change on disk?
    uint64_t file_gen = 0;
    util::RecordFileReader reader(filePath_);  // alive through the write
    {
        uint32_t file_version = 0;
        std::string header;
        if (reader.opened() && reader.header(header)) {
            util::ByteReader in(header);
            uint64_t magic = 0, fp = 0;
            uint32_t version = 0;
            if (in.u64(magic) && magic == kFrontierCacheMagic &&
                in.u32(version) && in.u64(fp) && fp == fingerprint_) {
                if (version == kFrontierCacheFormatVersion &&
                    in.u64(file_gen) && in.atEnd())
                    file_version = kFrontierCacheFormatVersion;
                else if (version == kFrontierCacheLegacyV3FormatVersion &&
                         in.u64(file_gen) && in.atEnd())
                    file_version = kFrontierCacheLegacyV3FormatVersion;
                else if (version == kFrontierCacheLegacyFormatVersion &&
                         in.atEnd())
                    file_version = kFrontierCacheLegacyFormatVersion;
            }
        }
        if (reader.opened() && file_version == 0)
            rewrite = true;  // stale or damaged file: replace wholesale
        if (file_version == kFrontierCacheLegacyFormatVersion ||
            file_version == kFrontierCacheLegacyV3FormatVersion)
            rewrite = true;  // upgrade-on-flush: rewrite current-format

        std::string_view record;
        while (file_version != 0 && reader.next(record)) {
            util::ByteReader in(record);
            uint8_t kind = 0;
            std::vector<int64_t> key;
            if (!in.u8(kind) || !readCacheKey(in, key))
                break;
            DiskRecord disk;
            if (file_version != kFrontierCacheLegacyFormatVersion) {
                if (!in.u32(disk.hits) || !in.u32(disk.lastGen))
                    break;
                disk.payload = in.rest();
                if (kind == kCacheRecordTrace &&
                    !peekTraceMeta(disk.payload, &disk.complete,
                                   &disk.steps))
                    break;
            } else if (kind == kCacheRecordRow) {
                auto row = decodeLegacyRowBody(in);
                if (!row)
                    break;
                util::ByteWriter out;
                encodeRowPayload(out, *row);
                fresh.push_back(out.bytes());
                disk.payload = fresh.back();
            } else if (kind == kCacheRecordTrace) {
                FrontierTraceImage image;
                if (!decodeLegacyTraceBody(in, traceKeyGroups(key),
                                           image))
                    break;
                util::ByteWriter out;
                encodeTracePayload(out, image);
                fresh.push_back(out.bytes());
                disk.payload = fresh.back();
                disk.steps = image.steps.size();
                disk.complete = image.complete;
            }
            if (kind == kCacheRecordRow) {
                if (file_version ==
                    kFrontierCacheLegacyV3FormatVersion) {
                    key = upgradeV3RowKey(key);
                    if (key.empty())
                        break;  // corrupt tail: rewrite the valid set
                }
                rows.emplace(std::move(key), disk);
            } else if (kind == kCacheRecordTrace) {
                traces.emplace(std::move(key), disk);
            } else {
                break;
            }
        }
        // A corrupt tail is dropped by rewriting the valid set.
        rewrite = rewrite || reader.sawCorruption();
    }
    // Every rewrite advances the generation; the segment published
    // below carries the same stamp, which is how readers know the
    // pair is coherent.
    uint64_t new_gen = file_gen + 1;

    for (const auto &[key, row] : pending_rows) {
        if (rows.count(key))
            continue;  // a concurrent CLI beat us to an identical row
        util::ByteWriter out;
        encodeRowPayload(out, *row);
        fresh.push_back(out.bytes());
        rows[key] = {fresh.back(), 0, static_cast<uint32_t>(new_gen),
                     0, false};
        rewrite = true;
    }
    std::vector<const std::vector<int64_t> *> written_traces;
    for (const auto &[key, image] : trace_images) {
        auto it = traces.find(key);
        // The deeper walk prefix wins; at equal depth a complete
        // trace beats an incomplete one, and an identical trace is
        // left alone. A losing image must NOT enter our disk mirror
        // below — recording it as "what disk holds" would make later
        // seedTrace() calls hand out less warmth than disk has.
        bool ours_deeper =
            it == traces.end() ||
            image.steps.size() > it->second.steps ||
            (image.steps.size() == it->second.steps && image.complete &&
             !it->second.complete);
        if (!ours_deeper)
            continue;
        util::ByteWriter out;
        encodeTracePayload(out, image);
        fresh.push_back(out.bytes());
        DiskRecord disk;
        disk.payload = fresh.back();
        disk.steps = image.steps.size();
        disk.complete = image.complete;
        if (it != traces.end()) {
            // A deeper prefix of the same walk keeps the record's
            // hit history — it is the same logical entry.
            disk.hits = it->second.hits;
            disk.lastGen = it->second.lastGen;
        } else {
            disk.lastGen = static_cast<uint32_t>(new_gen);
        }
        traces[key] = disk;
        written_traces.push_back(&key);
        rewrite = true;
    }

    // Fold this process's hit counts into the record counters — but
    // only when the file is being rewritten for a real reason. A hit
    // also stamps the record with the new generation: "recently hit"
    // is what the byte-budget eviction below spares.
    size_t evicted = 0;
    if (rewrite) {
        for (const auto &[key, delta] : row_deltas) {
            auto it = rows.find(key);
            if (it == rows.end())
                continue;
            it->second.hits += delta;
            it->second.lastGen = static_cast<uint32_t>(new_gen);
        }
        for (const auto &[key, delta] : trace_deltas) {
            auto it = traces.find(key);
            if (it == traces.end())
                continue;
            it->second.hits += delta;
            it->second.lastGen = static_cast<uint32_t>(new_gen);
        }

        if (options_.maxBytes > 0) {
            // Least-recently-hit eviction: drop records whose last
            // hit is oldest (then fewest hits, then larger first —
            // freeing the budget with the fewest casualties) until
            // the rewrite fits. Fresh and just-hit records carry
            // new_gen, so they are the last candidates.
            auto recordBytes = [](const std::vector<int64_t> &key,
                                  const DiskRecord &disk) {
                return 12 + 1 + 4 + 8 * key.size() + 8 +
                       disk.payload.size();
            };
            size_t total = 12 + 28;  // header frame + v4 payload
            for (const auto &[key, disk] : rows)
                total += recordBytes(key, disk);
            for (const auto &[key, disk] : traces)
                total += recordBytes(key, disk);
            if (total > options_.maxBytes) {
                struct Victim
                {
                    uint32_t lastGen;
                    uint32_t hits;
                    size_t bytes;
                    uint8_t kind;
                    const std::vector<int64_t> *key;
                };
                std::vector<Victim> victims;
                victims.reserve(rows.size() + traces.size());
                for (const auto &[key, disk] : rows)
                    victims.push_back({disk.lastGen, disk.hits,
                                       recordBytes(key, disk),
                                       kCacheRecordRow, &key});
                for (const auto &[key, disk] : traces)
                    victims.push_back({disk.lastGen, disk.hits,
                                       recordBytes(key, disk),
                                       kCacheRecordTrace, &key});
                std::sort(victims.begin(), victims.end(),
                          [](const Victim &a, const Victim &b) {
                              if (a.lastGen != b.lastGen)
                                  return a.lastGen < b.lastGen;
                              if (a.hits != b.hits)
                                  return a.hits < b.hits;
                              if (a.bytes != b.bytes)
                                  return a.bytes > b.bytes;
                              return *a.key < *b.key;  // determinism
                          });
                for (const Victim &victim : victims) {
                    if (total <= options_.maxBytes)
                        break;
                    if (victim.kind == kCacheRecordRow)
                        rows.erase(*victim.key);
                    else
                        traces.erase(*victim.key);
                    total -= victim.bytes;
                    ++evicted;
                }
                util::inform("frontier cache: byte budget evicted "
                             "%zu least-recently-hit records",
                             evicted);
            }
        }
    }

    // Absorb everything this flush made persistent — whether we wrote
    // it or found a concurrent CLI already had — so the next flush
    // only considers genuinely new state (and stats stop reporting it
    // as pending).
    auto absorb = [&](bool wrote,
                      FrontierCacheSegment new_segment =
                          FrontierCacheSegment()) {
        std::lock_guard<std::mutex> lock_state(mutex_);
        for (auto &[key, row] : pending_rows) {
            diskRows_.emplace(key, std::move(row));
            pendingRows_.erase(key);
        }
        for (const std::vector<int64_t> *key : written_traces)
            diskTraces_[*key] = std::move(trace_images[*key]);
        // The file is current-format now (either we rewrote it or a
        // concurrent CLI upgraded it first) — stop forcing rewrites.
        upgradePending_ = false;
        if (!wrote)
            return;
        ++flushes_;
        generation_ = new_gen;
        evictedLastFlush_ = evicted;
        // The folded counters are on disk; drop exactly the folded
        // amounts (hits scored since the snapshot stay pending).
        auto settle = [](HitMap &live, const HitMap &folded) {
            for (const auto &[key, delta] : folded) {
                auto it = live.find(key);
                if (it == live.end())
                    continue;
                if (it->second <= delta)
                    live.erase(it);
                else
                    it->second -= delta;
            }
        };
        settle(rowHitDelta_, row_deltas);
        settle(traceHitDelta_, trace_deltas);
        if (options_.mmapSegment)
            segment_ = std::move(new_segment);
    };

    if (!rewrite) {
        // Disk already holds at least everything we know (every
        // pending row matched an on-disk record, every trace lost to
        // a deeper on-disk prefix).
        absorb(false);
        return true;
    }

    util::RecordFileWriter writer(
        filePath_, cacheHeaderPayload(fingerprint_, new_gen));
    auto appendRecord = [&](uint8_t kind,
                            const std::vector<int64_t> &key,
                            const DiskRecord &disk) {
        util::ByteWriter out;
        out.u8(kind);
        writeCacheKey(out, key);
        out.u32(disk.hits);
        out.u32(disk.lastGen);
        out.raw(disk.payload);
        writer.append(out.bytes());
    };
    for (const auto &[key, disk] : rows)
        appendRecord(kCacheRecordRow, key, disk);
    for (const auto &[key, disk] : traces)
        appendRecord(kCacheRecordTrace, key, disk);
    if (!writer.commit()) {
        util::warn("frontier cache: writing %s failed; previous cache "
                   "file kept", filePath_.c_str());
        return false;
    }

    // Publish the segment from the exact record set just committed —
    // record file first, segment second, so a crash in between leaves
    // a generation mismatch (old segment distrusted, file read
    // eagerly), never a segment claiming records the file lost.
    FrontierCacheSegment new_segment;
    if (options_.mmapSegment) {
        std::vector<SegmentRecord> records;
        records.reserve(rows.size() + traces.size());
        for (const auto &[key, disk] : rows)
            records.push_back({kCacheRecordRow, &key, disk.payload});
        for (const auto &[key, disk] : traces)
            records.push_back({kCacheRecordTrace, &key, disk.payload});
        std::string image =
            FrontierCacheSegment::build(fingerprint_, new_gen, records);
        if (util::publishFileAtomic(segmentPath_, image))
            new_segment =
                FrontierCacheSegment::open(segmentPath_, fingerprint_);
        else
            util::warn("frontier cache: publishing %s failed; workers "
                       "will load the record file eagerly",
                       segmentPath_.c_str());
    }
    absorb(true, std::move(new_segment));
    return true;
}

FrontierCache::Stats
FrontierCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    Stats stats;
    stats.rowsLoaded = rowsLoaded_;
    stats.tracesLoaded = tracesLoaded_;
    stats.rowHits = rowHits_;
    stats.traceHits = traceHits_;
    stats.rowsPending = pendingRows_.size();
    stats.tracesNoted = notedTraces_.size();
    stats.flushes = flushes_;
    stats.loadedClean = loadedClean_;
    stats.generation = generation_;
    stats.segmentMapped = segment_.valid();
    stats.segmentEntries = segment_.entryCount();
    stats.segmentBytes = segment_.bytes();
    stats.segmentRowHits = segmentRowHits_;
    stats.segmentTraceHits = segmentTraceHits_;
    stats.evictedLastFlush = evictedLastFlush_;
    stats.siblingDirs = siblings_.size();
    for (const SiblingSegment &sibling : siblings_)
        if (sibling.segment.valid())
            ++stats.siblingSegments;
    stats.siblingRowHits = siblingRowHits_;
    stats.siblingTraceHits = siblingTraceHits_;
    return stats;
}

} // namespace core
} // namespace mclp
