/**
 * @file
 * The exact accelerator configurations published in the paper
 * (Tables 2 and 4), encoded as MultiClpDesign values. These serve two
 * purposes: the benches can reproduce the published tables verbatim,
 * and the tests cross-check our models and optimizer against ground
 * truth (e.g. the 485T float Single-CLP must be Tn=7, Tm=64 at 2.0M
 * cycles, matching Zhang et al. [32]).
 *
 * Table 2 includes the per-layer (Tr, Tc); Table 4 does not publish
 * them, so the SqueezeNet designs here carry tilings produced by our
 * OptimizeMemory step (cycle counts are independent of Tr/Tc).
 */

#ifndef MCLP_CORE_PAPER_DESIGNS_H
#define MCLP_CORE_PAPER_DESIGNS_H

#include "model/clp_config.h"
#include "nn/network.h"

namespace mclp {
namespace core {

/** Table 2(a): AlexNet float Single-CLP on the 485T (Tn=7, Tm=64). */
model::MultiClpDesign paperAlexNetSingle485();

/** Table 2(b): AlexNet float Single-CLP on the 690T (Tn=9, Tm=64). */
model::MultiClpDesign paperAlexNetSingle690();

/** Table 2(c): AlexNet float Multi-CLP on the 485T (4 CLPs). */
model::MultiClpDesign paperAlexNetMulti485();

/** Table 2(d): AlexNet float Multi-CLP on the 690T (6 CLPs). */
model::MultiClpDesign paperAlexNetMulti690();

/** Table 4(a): SqueezeNet fixed16 Single-CLP on the 485T (32x68). */
model::MultiClpDesign paperSqueezeNetSingle485();

/** Table 4(b): SqueezeNet fixed16 Single-CLP on the 690T (32x87). */
model::MultiClpDesign paperSqueezeNetSingle690();

/** Table 4(c): SqueezeNet fixed16 Multi-CLP on the 485T (6 CLPs). */
model::MultiClpDesign paperSqueezeNetMulti485();

/** Table 4(d): SqueezeNet fixed16 Multi-CLP on the 690T (6 CLPs). */
model::MultiClpDesign paperSqueezeNetMulti690();

} // namespace core
} // namespace mclp

#endif // MCLP_CORE_PAPER_DESIGNS_H
