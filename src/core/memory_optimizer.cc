#include "core/memory_optimizer.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <limits>
#include <map>

#include "model/bandwidth_model.h"
#include "model/bram_model.h"
#include "model/cycle_model.h"
#include "model/dsp_model.h"
#include "model/metrics.h"
#include "util/logging.h"
#include "util/math.h"

namespace mclp {
namespace core {

std::vector<TilingOption>
paretoTilingOptions(const nn::ConvLayer &layer,
                    const model::ClpShape &shape)
{
    std::vector<TilingOption> all;
    all.reserve(static_cast<size_t>(layer.r * layer.c));
    for (int64_t tr = 1; tr <= layer.r; ++tr) {
        for (int64_t tc = 1; tc <= layer.c; ++tc) {
            model::Tiling tiling{tr, tc};
            TilingOption opt;
            opt.tiling = tiling;
            opt.inputBankBrams = model::bramsPerBank(
                model::inputBankWords(layer, tiling), false);
            opt.outputBankBrams = model::bramsPerBank(
                model::outputBankWords(tiling), true);
            opt.peakWordsPerCycle =
                model::layerPeakWordsPerCycle(layer, shape, tiling);
            all.push_back(opt);
        }
    }

    // Sort by ascending peak; tie-break toward cheaper buffers so the
    // staircase filter keeps the cheapest representative.
    std::sort(all.begin(), all.end(),
              [](const TilingOption &a, const TilingOption &b) {
                  if (a.peakWordsPerCycle != b.peakWordsPerCycle)
                      return a.peakWordsPerCycle < b.peakWordsPerCycle;
                  if (a.inputBankBrams != b.inputBankBrams)
                      return a.inputBankBrams < b.inputBankBrams;
                  return a.outputBankBrams < b.outputBankBrams;
              });

    // 3-D Pareto filter: sweep in peak order and keep an option only
    // if no kept option has both bank costs <= its. The staircase maps
    // input cost -> smallest output cost seen at or below it.
    std::map<int64_t, int64_t> staircase;
    auto dominated = [&](int64_t in_cost, int64_t out_cost) {
        auto it = staircase.upper_bound(in_cost);
        if (it == staircase.begin())
            return false;
        --it;
        return it->second <= out_cost;
    };
    auto insert = [&](int64_t in_cost, int64_t out_cost) {
        auto it = staircase.lower_bound(in_cost);
        while (it != staircase.end() && it->second >= out_cost)
            it = staircase.erase(it);
        staircase[in_cost] = out_cost;
    };

    std::vector<TilingOption> pareto;
    for (const TilingOption &opt : all) {
        if (dominated(opt.inputBankBrams, opt.outputBankBrams))
            continue;
        insert(opt.inputBankBrams, opt.outputBankBrams);
        pareto.push_back(opt);
    }
    return pareto;
}

TilingOptionCache::Options
TilingOptionCache::get(const nn::ConvLayer &layer,
                       const model::ClpShape &shape)
{
    Key key{layer.n, layer.m, layer.r, layer.c,
            layer.k, layer.s, shape.tn, shape.tm};
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = table_.find(key);
        if (it != table_.end())
            return it->second;
    }
    // Compute outside the lock; a concurrent duplicate computation is
    // harmless (the function is pure) and the first insert wins.
    auto options = std::make_shared<const std::vector<TilingOption>>(
        paretoTilingOptions(layer, shape));
    std::lock_guard<std::mutex> lock(mutex_);
    return table_.emplace(key, std::move(options)).first->second;
}

/**
 * Mutable tiling state of one CLP during the greedy frontier walk:
 * per-layer Pareto options, the currently chosen option per layer, and
 * the implied per-bank BRAM cost caps.
 */
class MemoryOptimizer::ClpState
{
  public:
    ClpState(const nn::Network &network, fpga::DataType type,
             const ComputeGroup &group, TilingOptionCache &cache)
        : network_(network), type_(type), shape_(group.shape),
          layers_(group.layers)
    {
        int64_t weight_words = 0;
        for (size_t idx : layers_) {
            const nn::ConvLayer &layer = network_.layer(idx);
            options_.push_back(cache.get(layer, shape_));
            weight_words =
                std::max(weight_words, model::weightBankWords(layer));
        }
        weightBankBrams_ = model::bramsPerBank(weight_words, false);
        chosen_.assign(layers_.size(), 0);
        refreshCaps();
    }

    /** Current BRAM use of this CLP. */
    int64_t bram() const { return bramAt(inCap_, outCap_); }

    /** BRAM use at hypothetical per-bank cost caps. */
    int64_t
    bramAt(int64_t in_cap, int64_t out_cap) const
    {
        return model::effectiveBanks(shape_.tn, type_) * in_cap +
               model::effectiveBanks(shape_.tn * shape_.tm, type_) *
                   weightBankBrams_ +
               model::effectiveBanks(shape_.tm, type_) * out_cap;
    }

    /** Current peak bandwidth of this CLP in words per cycle. */
    double
    peakWords() const
    {
        double peak = 0.0;
        for (size_t li = 0; li < layers_.size(); ++li)
            peak = std::max(
                peak, (*options_[li])[chosen_[li]].peakWordsPerCycle);
        return peak;
    }

    /** A candidate buffer-shrinking move and its effect. */
    struct Move
    {
        bool input = false;       ///< shrink input (else output) banks
        int64_t newCap = 0;       ///< new per-bank BRAM cost cap
        int64_t bramAfter = 0;
        double peakAfter = 0.0;
    };

    /**
     * Evaluate shrinking the input or output per-bank cost to the next
     * lower achievable level. Returns nullopt when no lower level
     * exists.
     */
    std::optional<Move>
    probeMove(bool input) const
    {
        int64_t cap = input ? inCap_ : outCap_;
        // The layers' options bound how low the cap can go: every
        // layer must retain at least one option under both caps.
        int64_t floor_cap = 0;
        for (size_t li = 0; li < layers_.size(); ++li) {
            int64_t layer_min = std::numeric_limits<int64_t>::max();
            for (const TilingOption &opt : *options_[li]) {
                int64_t other =
                    input ? opt.outputBankBrams : opt.inputBankBrams;
                int64_t other_cap = input ? outCap_ : inCap_;
                if (other > other_cap)
                    continue;
                layer_min = std::min(layer_min, input
                                                    ? opt.inputBankBrams
                                                    : opt.outputBankBrams);
            }
            if (layer_min == std::numeric_limits<int64_t>::max())
                return std::nullopt;  // should not happen: cap covers it
            floor_cap = std::max(floor_cap, layer_min);
        }
        if (cap <= floor_cap)
            return std::nullopt;

        // Largest achievable level strictly below the current cap.
        int64_t new_cap = floor_cap;
        for (size_t li = 0; li < layers_.size(); ++li) {
            for (const TilingOption &opt : *options_[li]) {
                int64_t level =
                    input ? opt.inputBankBrams : opt.outputBankBrams;
                if (level < cap)
                    new_cap = std::max(new_cap, level);
            }
        }

        int64_t in_cap = input ? new_cap : inCap_;
        int64_t out_cap = input ? outCap_ : new_cap;
        double peak_after = 0.0;
        for (size_t li = 0; li < layers_.size(); ++li) {
            bool found = false;
            for (const TilingOption &opt : *options_[li]) {
                if (opt.inputBankBrams <= in_cap &&
                    opt.outputBankBrams <= out_cap) {
                    peak_after =
                        std::max(peak_after, opt.peakWordsPerCycle);
                    found = true;
                    break;  // options sorted by ascending peak
                }
            }
            if (!found)
                return std::nullopt;
        }
        Move move;
        move.input = input;
        move.newCap = new_cap;
        move.bramAfter = bramAt(in_cap, out_cap);
        move.peakAfter = peak_after;
        return move;
    }

    /** Apply a previously probed move. */
    void
    applyMove(const Move &move)
    {
        if (move.input)
            inCap_ = move.newCap;
        else
            outCap_ = move.newCap;
        if (!repick())
            util::panic("MemoryOptimizer: applying an infeasible move");
        refreshCaps();
    }

    const model::ClpShape &shape() const { return shape_; }
    const std::vector<size_t> &layers() const { return layers_; }

    /** Currently chosen tiling of layer @p li (local index). */
    const model::Tiling &
    tiling(size_t li) const
    {
        return (*options_[li])[chosen_[li]].tiling;
    }

  private:
    /**
     * Re-pick, for every layer, the minimum-peak option obeying the
     * caps. Returns false if some layer has no such option.
     */
    bool
    repick()
    {
        for (size_t li = 0; li < layers_.size(); ++li) {
            bool found = false;
            for (size_t oi = 0; oi < options_[li]->size(); ++oi) {
                const TilingOption &opt = (*options_[li])[oi];
                if (opt.inputBankBrams <= inCap_ &&
                    opt.outputBankBrams <= outCap_) {
                    chosen_[li] = oi;  // options sorted by peak
                    found = true;
                    break;
                }
            }
            if (!found)
                return false;
        }
        return true;
    }

    /** Tighten the caps down to the realized per-layer maxima. */
    void
    refreshCaps()
    {
        int64_t in_max = 0;
        int64_t out_max = 0;
        for (size_t li = 0; li < layers_.size(); ++li) {
            in_max = std::max(in_max,
                              (*options_[li])[chosen_[li]].inputBankBrams);
            out_max = std::max(out_max,
                               (*options_[li])[chosen_[li]].outputBankBrams);
        }
        inCap_ = in_max;
        outCap_ = out_max;
    }

    const nn::Network &network_;
    fpga::DataType type_;
    model::ClpShape shape_;
    std::vector<size_t> layers_;
    std::vector<TilingOptionCache::Options> options_;
    std::vector<size_t> chosen_;
    int64_t weightBankBrams_ = 0;
    int64_t inCap_ = 0;
    int64_t outCap_ = 0;
};

MemoryOptimizer::MemoryOptimizer(const nn::Network &network,
                                 fpga::DataType type,
                                 std::shared_ptr<TilingOptionCache> cache)
    : network_(network), type_(type), cache_(std::move(cache))
{
    if (!cache_)
        cache_ = std::make_shared<TilingOptionCache>();
}

model::MultiClpDesign
MemoryOptimizer::buildDesign(const ComputePartition &partition,
                             const std::vector<ClpState> &states) const
{
    model::MultiClpDesign design;
    design.dataType = type_;
    for (size_t ci = 0; ci < partition.groups.size(); ++ci) {
        model::ClpConfig clp;
        clp.shape = partition.groups[ci].shape;
        const ClpState &state = states[ci];
        for (size_t li = 0; li < state.layers().size(); ++li) {
            model::LayerBinding binding;
            binding.layerIdx = state.layers()[li];
            binding.tiling = state.tiling(li);
            clp.layers.push_back(binding);
        }
        design.clps.push_back(std::move(clp));
    }
    return design;
}

std::optional<model::MultiClpDesign>
MemoryOptimizer::walkFrontier(const ComputePartition &partition,
                              int64_t bram_budget,
                              std::vector<TradeoffPoint> *trace) const
{
    std::vector<ClpState> states;
    states.reserve(partition.groups.size());
    for (const ComputeGroup &group : partition.groups)
        states.emplace_back(network_, type_, group, *cache_);

    auto totalBram = [&]() {
        int64_t total = 0;
        for (const ClpState &state : states)
            total += state.bram();
        return total;
    };
    auto totalPeakBytes = [&]() {
        double total = 0.0;
        for (const ClpState &state : states)
            total += state.peakWords();
        return total * static_cast<double>(fpga::wordBytes(type_));
    };
    auto record = [&]() {
        if (!trace)
            return;
        TradeoffPoint point;
        point.totalBram = totalBram();
        point.peakBytesPerCycle = totalPeakBytes();
        point.design = buildDesign(partition, states);
        trace->push_back(std::move(point));
    };

    // probeMove depends only on its own CLP's state, so probes stay
    // valid until that CLP moves; only the mover is re-probed each
    // round (the scores still compare in the original order).
    std::vector<std::array<std::optional<ClpState::Move>, 2>> probes(
        states.size());
    std::vector<bool> stale(states.size(), true);

    record();
    while (bram_budget < 0 || totalBram() > bram_budget) {
        // Probe a one-level shrink of each CLP's input and output
        // buffers; take the one saving the most BRAM per unit of
        // added peak bandwidth.
        double cur_peak = totalPeakBytes();
        int64_t cur_bram = totalBram();
        double best_score = -1.0;
        size_t best_clp = 0;
        std::optional<ClpState::Move> best_move;
        for (size_t ci = 0; ci < states.size(); ++ci) {
            if (stale[ci]) {
                probes[ci][0] = states[ci].probeMove(true);
                probes[ci][1] = states[ci].probeMove(false);
                stale[ci] = false;
            }
            for (const auto &move : probes[ci]) {
                if (!move)
                    continue;
                int64_t bram_delta =
                    states[ci].bram() - move->bramAfter;
                if (bram_delta <= 0)
                    continue;
                double others_peak =
                    cur_peak - states[ci].peakWords() *
                                   fpga::wordBytes(type_);
                double peak_after =
                    others_peak +
                    move->peakAfter * fpga::wordBytes(type_);
                double peak_delta = std::max(0.0, peak_after - cur_peak);
                double score = static_cast<double>(bram_delta) /
                               (peak_delta + 1e-9);
                if (score > best_score) {
                    best_score = score;
                    best_clp = ci;
                    best_move = move;
                }
            }
        }
        if (!best_move) {
            if (bram_budget < 0)
                break;  // curve exhausted
            if (cur_bram > bram_budget)
                return std::nullopt;
            break;
        }
        states[best_clp].applyMove(*best_move);
        stale[best_clp] = true;
        record();
    }

    return buildDesign(partition, states);
}

std::optional<model::MultiClpDesign>
MemoryOptimizer::optimize(const ComputePartition &partition,
                          const fpga::ResourceBudget &budget,
                          int64_t cycle_target) const
{
    budget.validate();

    // The result depends on the partition, the BRAM budget, and — only
    // when bandwidth is constrained — the bandwidth cap and the cycle
    // target the finished design must meet.
    std::vector<int64_t> key;
    key.reserve(4 + partition.groups.size() * 8);
    key.push_back(budget.bram18k);
    if (budget.bandwidthLimited()) {
        int64_t bw_bits;
        static_assert(sizeof(bw_bits) == sizeof(double));
        std::memcpy(&bw_bits, &budget.bandwidthBytesPerCycle,
                    sizeof(bw_bits));
        key.push_back(bw_bits);
        key.push_back(cycle_target);
    }
    for (const ComputeGroup &group : partition.groups) {
        key.push_back(-1);  // group delimiter
        key.push_back(group.shape.tn);
        key.push_back(group.shape.tm);
        for (size_t idx : group.layers)
            key.push_back(static_cast<int64_t>(idx));
    }
    {
        std::lock_guard<std::mutex> lock(memoMutex_);
        auto it = memo_.find(key);
        if (it != memo_.end())
            return it->second;
    }

    auto design = walkFrontier(partition, budget.bram18k, nullptr);
    if (design && budget.bandwidthLimited()) {
        model::DesignMetrics metrics =
            model::evaluateDesign(*design, network_, budget);
        if (metrics.epochCycles > cycle_target)
            design = std::nullopt;
    }
    std::lock_guard<std::mutex> lock(memoMutex_);
    return memo_.emplace(std::move(key), std::move(design))
        .first->second;
}

std::vector<TradeoffPoint>
MemoryOptimizer::tradeoffCurve(const ComputePartition &partition) const
{
    std::vector<TradeoffPoint> trace;
    walkFrontier(partition, -1, &trace);
    return trace;
}

ComputePartition
partitionFromDesign(const model::MultiClpDesign &design,
                    const nn::Network &network)
{
    ComputePartition partition;
    for (const model::ClpConfig &clp : design.clps) {
        ComputeGroup group;
        group.shape = clp.shape;
        for (const model::LayerBinding &binding : clp.layers)
            group.layers.push_back(binding.layerIdx);
        group.dsp = model::clpDsp(clp.shape, design.dataType);
        group.cycles = model::clpComputeCycles(clp, network);
        partition.groups.push_back(std::move(group));
        partition.totalDsp += partition.groups.back().dsp;
    }
    return partition;
}

std::optional<model::MultiClpDesign>
retileDesign(const model::MultiClpDesign &design,
             const nn::Network &network,
             const fpga::ResourceBudget &budget)
{
    ComputePartition partition = partitionFromDesign(design, network);
    MemoryOptimizer memory(network, design.dataType);
    // Tiling never changes compute-bound cycles; accept any slowdown
    // only up to the budget's own evaluation (no extra target here).
    int64_t target = std::numeric_limits<int64_t>::max() / 4;
    return memory.optimize(partition, budget, target);
}

} // namespace core
} // namespace mclp
