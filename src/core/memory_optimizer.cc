#include "core/memory_optimizer.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <limits>
#include <map>

#include "core/frontier_cache.h"
#include "model/bandwidth_model.h"
#include "model/bram_model.h"
#include "model/cycle_model.h"
#include "model/dsp_model.h"
#include "model/metrics.h"
#include "util/logging.h"
#include "util/math.h"
#include "util/prof.h"
#include "util/simd.h"

namespace mclp {
namespace core {

std::vector<TilingOption>
paretoTilingOptions(const nn::ConvLayer &layer,
                    const model::ClpShape &shape)
{
    util::prof::Scope prof_scope(util::prof::Phase::TilingEnum);
    // Bank costs are non-decreasing step functions of the tile sizes,
    // and within a run of Tc sharing identical bank costs the peak is
    // monotone: peak(Tc) = A + B / (k^2*Tr*Tc) with the per-row
    // constant B = Tn*rowext*(k-s) + Tn*Tm*k^2, decreasing when
    // B > 0 (every s <= k layer) and increasing when B < 0 (possible
    // when the stride exceeds the kernel; B = 0 makes the plateau
    // flat and the deterministic larger-(Tr,Tc) tie-break applies).
    // The plateau's minimum therefore sits on one known edge, so
    // emitting just that edge covers every Pareto-optimal tiling
    // while keeping the candidate set at the number of cost steps
    // instead of R*C. A second exact reduction collapses candidates
    // sharing a (input, output) cost pair: the staircase filter below
    // keeps at most one of them, so the dedup map can pick that
    // winner directly and the sort runs over distinct cost pairs
    // only.
    std::unordered_map<uint64_t, TilingOption> best_per_cost;
    for (int64_t tr = 1; tr <= layer.r; ++tr) {
        // Sign of B decides which plateau edge holds the peak minimum
        // (ties go right, matching the larger-(Tr,Tc) rule).
        int64_t rowext = (tr - 1) * layer.s + layer.k;
        bool left_edge_wins =
            shape.tn * rowext * (layer.k - layer.s) +
                shape.tn * shape.tm * layer.k * layer.k <
            0;
        auto costsAt = [&](int64_t tc) {
            model::Tiling tiling{tr, tc};
            int64_t in = model::bramsPerBank(
                model::inputBankWords(layer, tiling), false);
            int64_t out = model::bramsPerBank(
                model::outputBankWords(tiling), true);
            return std::make_pair(in, out);
        };
        auto emit = [&](int64_t tc, int64_t in, int64_t out) {
            TilingOption opt;
            opt.tiling = model::Tiling{tr, tc};
            opt.inputBankBrams = in;
            opt.outputBankBrams = out;
            opt.peakWordsPerCycle =
                model::layerPeakWordsPerCycle(layer, shape, opt.tiling);
            uint64_t cost_key = (static_cast<uint64_t>(in) << 32) |
                                static_cast<uint64_t>(out);
            auto [it, inserted] = best_per_cost.try_emplace(cost_key, opt);
            if (!inserted) {
                TilingOption &best = it->second;
                // Min peak; exact peak ties resolve toward the larger
                // (Tr, Tc), matching the historical selection among
                // equivalent tilings.
                if (opt.peakWordsPerCycle < best.peakWordsPerCycle ||
                    (opt.peakWordsPerCycle == best.peakWordsPerCycle &&
                     (opt.tiling.tr > best.tiling.tr ||
                      (opt.tiling.tr == best.tiling.tr &&
                       opt.tiling.tc > best.tiling.tc))))
                    best = opt;
            }
        };
        // Both costs are non-decreasing in Tc, so each plateau's
        // right edge is found by galloping + bisection instead of
        // evaluating every Tc of long constant runs.
        int64_t tc = 1;
        auto cur = costsAt(tc);
        while (true) {
            // Largest lo in [tc, c] with costs equal to cur.
            int64_t lo = tc;
            int64_t step = 1;
            while (lo + step <= layer.c &&
                   costsAt(lo + step) == cur) {
                lo += step;
                step *= 2;
            }
            int64_t hi = std::min(lo + step, layer.c + 1);
            while (hi - lo > 1) {
                int64_t mid = lo + (hi - lo) / 2;
                if (costsAt(mid) == cur)
                    lo = mid;
                else
                    hi = mid;
            }
            emit(left_edge_wins ? tc : lo, cur.first, cur.second);
            if (hi > layer.c)
                break;
            tc = hi;
            cur = costsAt(tc);
        }
    }

    std::vector<TilingOption> all;
    all.reserve(best_per_cost.size());
    for (const auto &entry : best_per_cost)
        all.push_back(entry.second);

    // Sort by ascending peak; tie-break toward cheaper buffers so the
    // staircase filter keeps the cheapest representative, then by
    // descending (Tr, Tc) so exact ties resolve deterministically (and
    // as the historical selection did).
    std::sort(all.begin(), all.end(),
              [](const TilingOption &a, const TilingOption &b) {
                  if (a.peakWordsPerCycle != b.peakWordsPerCycle)
                      return a.peakWordsPerCycle < b.peakWordsPerCycle;
                  if (a.inputBankBrams != b.inputBankBrams)
                      return a.inputBankBrams < b.inputBankBrams;
                  if (a.outputBankBrams != b.outputBankBrams)
                      return a.outputBankBrams < b.outputBankBrams;
                  if (a.tiling.tr != b.tiling.tr)
                      return a.tiling.tr > b.tiling.tr;
                  return a.tiling.tc > b.tiling.tc;
              });

    // 3-D Pareto filter: sweep in peak order and keep an option only
    // if no kept option has both bank costs <= its. The staircase maps
    // input cost -> smallest output cost seen at or below it.
    std::map<int64_t, int64_t> staircase;
    auto dominated = [&](int64_t in_cost, int64_t out_cost) {
        auto it = staircase.upper_bound(in_cost);
        if (it == staircase.begin())
            return false;
        --it;
        return it->second <= out_cost;
    };
    auto insert = [&](int64_t in_cost, int64_t out_cost) {
        auto it = staircase.lower_bound(in_cost);
        while (it != staircase.end() && it->second >= out_cost)
            it = staircase.erase(it);
        staircase[in_cost] = out_cost;
    };

    std::vector<TilingOption> pareto;
    for (const TilingOption &opt : all) {
        if (dominated(opt.inputBankBrams, opt.outputBankBrams))
            continue;
        insert(opt.inputBankBrams, opt.outputBankBrams);
        pareto.push_back(opt);
    }
    return pareto;
}

TilingOptionCache::Options
TilingOptionCache::get(const nn::ConvLayer &layer,
                       const model::ClpShape &shape)
{
    // Everything paretoTilingOptions consumes: the enumeration bounds
    // (R, C), the buffer geometry (K, S), the shape, and N only
    // through the per-group ceil((N/G)/Tn) in the peak formula — M
    // not at all. Layers repeating this signature (fire modules,
    // inception branches, grouped convolutions and their plain
    // per-group twins) share one entry even when N and M differ.
    Key key{layer.r, layer.c,  layer.k,  layer.s,
            shape.tn, shape.tm,
            util::ceilDiv(layer.groupN(), shape.tn), 0};
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = table_.find(key);
        if (it != table_.end())
            return it->second;
    }
    // Compute outside the lock; a concurrent duplicate computation is
    // harmless (the function is pure) and the first insert wins.
    auto set = std::make_shared<TilingOptionSet>();
    set->options = paretoTilingOptions(layer, shape);
    size_t count = set->options.size();
    set->inBrams.reserve(count);
    set->outBrams.reserve(count);
    set->peaks.reserve(count);
    for (const TilingOption &opt : set->options) {
        set->inBrams.push_back(opt.inputBankBrams);
        set->outBrams.push_back(opt.outputBankBrams);
        set->peaks.push_back(opt.peakWordsPerCycle);
    }
    Options options = std::move(set);
    std::lock_guard<std::mutex> lock(mutex_);
    return table_.emplace(key, std::move(options)).first->second;
}

const TradeoffCurveCache::ProbePair *
TradeoffCurveCache::GroupCurve::find(int64_t in_cap,
                                     int64_t out_cap) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = states_.find({in_cap, out_cap});
    // Map nodes are stable and values immutable after insertion, so
    // the pointer stays valid past the lock.
    return it == states_.end() ? nullptr : &it->second;
}

const TradeoffCurveCache::ProbePair &
TradeoffCurveCache::GroupCurve::insert(int64_t in_cap, int64_t out_cap,
                                       ProbePair probes)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return states_.emplace(std::make_pair(in_cap, out_cap),
                           std::move(probes))
        .first->second;
}

std::shared_ptr<TradeoffCurveCache::GroupCurve>
TradeoffCurveCache::curve(fpga::DataType type,
                          const model::ClpShape &shape,
                          const nn::Network &network,
                          const std::vector<size_t> &layers)
{
    // Everything a probe depends on: data type (bank geometry and
    // word width), CLP shape, and each layer's tiling signature (the
    // same reduction TilingOptionCache::get applies).
    std::vector<int64_t> key;
    key.reserve(3 + layers.size() * 5);
    key.push_back(static_cast<int64_t>(type));
    key.push_back(shape.tn);
    key.push_back(shape.tm);
    for (size_t idx : layers) {
        const nn::ConvLayer &layer = network.layer(idx);
        key.push_back(layer.r);
        key.push_back(layer.c);
        key.push_back(layer.k);
        key.push_back(layer.s);
        key.push_back(util::ceilDiv(layer.groupN(), shape.tn));
    }
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = curves_.find(key);
    if (it != curves_.end())
        return it->second;
    auto curve = std::make_shared<GroupCurve>();
    return curves_.emplace(std::move(key), std::move(curve))
        .first->second;
}

std::shared_ptr<TradeoffCurveCache::PartitionTrace>
TradeoffCurveCache::partitionTrace(fpga::DataType type,
                                   const nn::Network &network,
                                   const ComputePartition &partition)
{
    // The walk depends on the data type and, per group in order, the
    // CLP shape and layer tiling signatures — layer *indices* never
    // enter the probes, so index-shifted twins of a partition share a
    // trace.
    std::vector<int64_t> key;
    key.push_back(static_cast<int64_t>(type));
    for (const ComputeGroup &group : partition.groups) {
        key.push_back(-1);  // group delimiter
        key.push_back(group.shape.tn);
        key.push_back(group.shape.tm);
        for (size_t idx : group.layers) {
            const nn::ConvLayer &layer = network.layer(idx);
            key.push_back(layer.r);
            key.push_back(layer.c);
            key.push_back(layer.k);
            key.push_back(layer.s);
            key.push_back(util::ceilDiv(layer.groupN(), group.shape.tn));
        }
    }
    std::shared_ptr<FrontierCache> cache;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = traces_.find(key);
        if (it != traces_.end())
            return it->second;
        cache = cache_;
    }
    // Seed outside mutex_ (the disk cache locks trace mutexes during
    // its flush, and walks holding a trace mutex re-enter mutex_ via
    // curve() — touching the cache under mutex_ would close an
    // AB-BA-CA cycle). The trace is still private here.
    auto trace = std::make_shared<PartitionTrace>();
    if (cache)
        cache->seedTrace(key, *trace);
    std::shared_ptr<PartitionTrace> winner;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        winner = traces_.emplace(key, trace).first->second;
    }
    // Only the canonical trace is tracked for write-back (a losing
    // racer's copy is dropped along with its seed).
    if (cache && winner == trace)
        cache->noteTrace(key, winner);
    return winner;
}

void
TradeoffCurveCache::attachCache(std::shared_ptr<FrontierCache> cache)
{
    std::lock_guard<std::mutex> lock(mutex_);
    cache_ = std::move(cache);
}

size_t
TilingOptionCache::memoryBytes()
{
    std::lock_guard<std::mutex> lock(mutex_);
    size_t bytes = table_.size() * (sizeof(Key) + 4 * sizeof(void *));
    for (const auto &entry : table_) {
        bytes += sizeof(TilingOptionSet) +
                 entry.second->options.capacity() * sizeof(TilingOption) +
                 (entry.second->inBrams.capacity() +
                  entry.second->outBrams.capacity()) *
                     sizeof(int64_t) +
                 entry.second->peaks.capacity() * sizeof(double);
    }
    return bytes;
}

size_t
TradeoffCurveCache::GroupCurve::memoryBytes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    // One red-black node per state: key pair + probes + tree overhead.
    return states_.size() *
           (sizeof(std::pair<int64_t, int64_t>) + sizeof(ProbePair) +
            4 * sizeof(void *));
}

size_t
TradeoffCurveCache::memoryBytes()
{
    // Two phases, never holding mutex_ and a trace mutex together: an
    // optimizer walk holds its trace mutex while fetching group
    // curves (which takes mutex_), so locking a trace under mutex_
    // here would be an AB-BA deadlock with any in-flight walk.
    size_t bytes = 0;
    std::vector<std::shared_ptr<PartitionTrace>> traces;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto &entry : curves_) {
            bytes += entry.first.capacity() * sizeof(int64_t) +
                     sizeof(GroupCurve) + entry.second->memoryBytes();
        }
        traces.reserve(traces_.size());
        for (const auto &entry : traces_) {
            bytes += entry.first.capacity() * sizeof(int64_t) +
                     sizeof(PartitionTrace);
            traces.push_back(entry.second);
        }
    }
    for (const auto &trace_ptr : traces) {
        PartitionTrace &trace = *trace_ptr;
        std::lock_guard<std::mutex> trace_lock(trace.mutex);
        bytes += trace.arena.bytesReserved();
        // Options vectors are shared with TilingOptionCache and the
        // curves are counted above; only the pointer tables are new.
        for (const auto &group : trace.groupOptions)
            bytes += group.capacity() * sizeof(TilingOptionCache::Options);
        bytes += trace.groupCurves.capacity() *
                 sizeof(std::shared_ptr<GroupCurve>);
    }
    return bytes;
}

/**
 * Mutable tiling state of one CLP during the greedy frontier walk:
 * per-layer Pareto options, the currently chosen option per layer, and
 * the implied per-bank BRAM cost caps.
 */
class MemoryOptimizer::ClpState
{
  public:
    ClpState(const nn::Network &network, fpga::DataType type,
             const ComputeGroup &group,
             std::vector<TilingOptionCache::Options> options,
             std::shared_ptr<TradeoffCurveCache::GroupCurve> curve)
        : network_(network), type_(type), shape_(group.shape),
          layers_(group.layers), curve_(std::move(curve)),
          options_(std::move(options))
    {
        int64_t weight_words = 0;
        for (size_t idx : layers_) {
            const nn::ConvLayer &layer = network_.layer(idx);
            weight_words =
                std::max(weight_words, model::weightBankWords(layer));
        }
        weightBankBrams_ = model::bramsPerBank(weight_words, false);
        chosen_.assign(layers_.size(), 0);
        refreshCaps();
    }

    /** Current BRAM use of this CLP (cached; see refreshCaps). */
    int64_t bram() const { return bram_; }

    /** BRAM use at hypothetical per-bank cost caps. */
    int64_t
    bramAt(int64_t in_cap, int64_t out_cap) const
    {
        return model::effectiveBanks(shape_.tn, type_) * in_cap +
               model::effectiveBanks(shape_.tn * shape_.tm, type_) *
                   weightBankBrams_ +
               model::effectiveBanks(shape_.tm, type_) * out_cap;
    }

    /** Current peak bandwidth of this CLP in words per cycle. */
    double peakWords() const { return peak_; }

    /**
     * Both shrink probes at the current cap state, answered from the
     * group's curve memo when possible. A probe is a pure function of
     * (group, caps), so cached and fresh results are identical.
     */
    TradeoffCurveCache::ProbePair
    probes() const
    {
        if (curve_) {
            if (const auto *hit = curve_->find(inCap_, outCap_))
                return *hit;
            ProbePair pair{probeMove(true), probeMove(false)};
            return curve_->insert(inCap_, outCap_, pair);
        }
        return {probeMove(true), probeMove(false)};
    }

    using Move = BufferMove;
    using ProbePair = TradeoffCurveCache::ProbePair;

    /**
     * Evaluate shrinking the input or output per-bank cost to the next
     * lower achievable level. Returns nullopt when no lower level
     * exists. All candidate levels of a layer are evaluated in one
     * batched pass over the option set's contiguous cost lanes: a
     * fused capScanI64 answers both the floor (lowest level reachable
     * under the other cap) and the next step down (largest level
     * strictly below the current cap) per layer, then a
     * firstWithinCapsI64 pass picks each layer's new minimum-peak
     * option. Integer comparisons only — bit-identical to the former
     * option-by-option loops.
     */
    std::optional<Move>
    probeMove(bool input) const
    {
        int64_t cap = input ? inCap_ : outCap_;
        int64_t other_cap = input ? outCap_ : inCap_;
        // The layers' options bound how low the cap can go: every
        // layer must retain at least one option under both caps.
        int64_t floor_cap = 0;
        int64_t next_below = std::numeric_limits<int64_t>::min();
        for (size_t li = 0; li < layers_.size(); ++li) {
            const TilingOptionSet &set = *options_[li];
            const int64_t *levels =
                input ? set.inBrams.data() : set.outBrams.data();
            const int64_t *gates =
                input ? set.outBrams.data() : set.inBrams.data();
            int64_t layer_min, layer_below;
            util::simd::capScanI64(levels, gates, other_cap, cap,
                                   set.options.size(), layer_min,
                                   layer_below);
            if (layer_min == std::numeric_limits<int64_t>::max())
                return std::nullopt;  // should not happen: cap covers it
            floor_cap = std::max(floor_cap, layer_min);
            next_below = std::max(next_below, layer_below);
        }
        if (cap <= floor_cap)
            return std::nullopt;

        // Largest achievable level strictly below the current cap.
        int64_t new_cap = std::max(floor_cap, next_below);

        int64_t in_cap = input ? new_cap : inCap_;
        int64_t out_cap = input ? outCap_ : new_cap;
        double peak_after = 0.0;
        for (size_t li = 0; li < layers_.size(); ++li) {
            const TilingOptionSet &set = *options_[li];
            size_t oi = util::simd::firstWithinCapsI64(
                set.inBrams.data(), set.outBrams.data(), in_cap,
                out_cap, set.options.size());
            if (oi == set.options.size())
                return std::nullopt;
            // Options sorted by ascending peak: the first fit is the
            // layer's minimum-peak choice.
            peak_after = std::max(peak_after, set.peaks[oi]);
        }
        Move move;
        move.input = input;
        move.newCap = new_cap;
        move.bramAfter = bramAt(in_cap, out_cap);
        move.peakAfter = peak_after;
        return move;
    }

    /** Apply a previously probed move. */
    void
    applyMove(const Move &move)
    {
        if (move.input)
            inCap_ = move.newCap;
        else
            outCap_ = move.newCap;
        if (!repick())
            util::panic("MemoryOptimizer: applying an infeasible move");
        refreshCaps();
    }

    const model::ClpShape &shape() const { return shape_; }
    const std::vector<size_t> &layers() const { return layers_; }
    int64_t inCap() const { return inCap_; }
    int64_t outCap() const { return outCap_; }

    /**
     * Jump to a trace-recorded state: the caps a walk recorded after
     * a move (post tightening) reproduce that walk point's exact
     * tilings through one re-pick, because re-picking is idempotent
     * across the tightening step.
     */
    void
    setCaps(int64_t in_cap, int64_t out_cap)
    {
        inCap_ = in_cap;
        outCap_ = out_cap;
        if (!repick())
            util::panic("MemoryOptimizer: trace caps are infeasible");
        refreshCaps();
    }

    /** Currently chosen tiling of layer @p li (local index). */
    const model::Tiling &
    tiling(size_t li) const
    {
        return options_[li]->options[chosen_[li]].tiling;
    }

  private:
    /**
     * Re-pick, for every layer, the minimum-peak option obeying the
     * caps. Returns false if some layer has no such option.
     */
    bool
    repick()
    {
        for (size_t li = 0; li < layers_.size(); ++li) {
            const TilingOptionSet &set = *options_[li];
            size_t oi = util::simd::firstWithinCapsI64(
                set.inBrams.data(), set.outBrams.data(), inCap_,
                outCap_, set.options.size());
            if (oi == set.options.size())
                return false;
            chosen_[li] = oi;  // options sorted by peak
        }
        return true;
    }

    /**
     * Tighten the caps down to the realized per-layer maxima and
     * refresh the cached BRAM/peak totals.
     */
    void
    refreshCaps()
    {
        int64_t in_max = 0;
        int64_t out_max = 0;
        double peak = 0.0;
        for (size_t li = 0; li < layers_.size(); ++li) {
            const TilingOption &opt = options_[li]->options[chosen_[li]];
            in_max = std::max(in_max, opt.inputBankBrams);
            out_max = std::max(out_max, opt.outputBankBrams);
            peak = std::max(peak, opt.peakWordsPerCycle);
        }
        inCap_ = in_max;
        outCap_ = out_max;
        bram_ = bramAt(inCap_, outCap_);
        peak_ = peak;
    }

    const nn::Network &network_;
    fpga::DataType type_;
    model::ClpShape shape_;
    std::vector<size_t> layers_;
    std::shared_ptr<TradeoffCurveCache::GroupCurve> curve_;
    std::vector<TilingOptionCache::Options> options_;
    std::vector<size_t> chosen_;
    int64_t weightBankBrams_ = 0;
    int64_t inCap_ = 0;
    int64_t outCap_ = 0;
    int64_t bram_ = 0;   ///< cached bramAt(inCap_, outCap_)
    double peak_ = 0.0;  ///< cached max chosen peakWordsPerCycle
};

MemoryOptimizer::MemoryOptimizer(const nn::Network &network,
                                 fpga::DataType type,
                                 std::shared_ptr<TilingOptionCache> cache,
                                 std::shared_ptr<TradeoffCurveCache> curves)
    : network_(network), type_(type), cache_(std::move(cache)),
      curves_(std::move(curves))
{
    if (!cache_)
        cache_ = std::make_shared<TilingOptionCache>();
    if (!curves_)
        curves_ = std::make_shared<TradeoffCurveCache>();
}

model::MultiClpDesign
MemoryOptimizer::buildDesign(const ComputePartition &partition,
                             const std::vector<ClpState> &states) const
{
    model::MultiClpDesign design;
    design.dataType = type_;
    for (size_t ci = 0; ci < partition.groups.size(); ++ci) {
        model::ClpConfig clp;
        clp.shape = partition.groups[ci].shape;
        const ClpState &state = states[ci];
        for (size_t li = 0; li < state.layers().size(); ++li) {
            model::LayerBinding binding;
            binding.layerIdx = state.layers()[li];
            binding.tiling = state.tiling(li);
            clp.layers.push_back(binding);
        }
        design.clps.push_back(std::move(clp));
    }
    return design;
}

std::vector<MemoryOptimizer::ClpState>
MemoryOptimizer::makeStates(const ComputePartition &partition,
                            TradeoffCurveCache::PartitionTrace &trace)
    const
{
    if (trace.groupOptions.empty()) {
        trace.groupOptions.reserve(partition.groups.size());
        trace.groupCurves.reserve(partition.groups.size());
        for (const ComputeGroup &group : partition.groups) {
            std::vector<TilingOptionCache::Options> options;
            options.reserve(group.layers.size());
            for (size_t idx : group.layers)
                options.push_back(
                    cache_->get(network_.layer(idx), group.shape));
            trace.groupOptions.push_back(std::move(options));
            trace.groupCurves.push_back(curves_->curve(
                type_, group.shape, network_, group.layers));
        }
    }
    std::vector<ClpState> states;
    states.reserve(partition.groups.size());
    for (size_t ci = 0; ci < partition.groups.size(); ++ci) {
        states.emplace_back(network_, type_, partition.groups[ci],
                            trace.groupOptions[ci],
                            trace.groupCurves[ci]);
    }
    return states;
}

std::vector<MemoryOptimizer::ClpState>
MemoryOptimizer::statesAt(const ComputePartition &partition,
                          TradeoffCurveCache::PartitionTrace &trace,
                          ptrdiff_t idx) const
{
    std::vector<ClpState> states = makeStates(partition, trace);
    // Each CLP's state is determined by its last recorded caps within
    // the step prefix (its construction state when it never moved).
    std::vector<ptrdiff_t> last(states.size(), -1);
    for (ptrdiff_t s = 0; s <= idx; ++s)
        last[trace.steps[static_cast<size_t>(s)].clp] = s;
    for (size_t ci = 0; ci < states.size(); ++ci) {
        if (last[ci] < 0)
            continue;
        const auto &step = trace.steps[static_cast<size_t>(last[ci])];
        states[ci].setCaps(step.inCap, step.outCap);
    }
    return states;
}

void
MemoryOptimizer::extendTrace(const ComputePartition &partition,
                             TradeoffCurveCache::PartitionTrace &trace,
                             int64_t bram_budget) const
{
    util::prof::Scope prof_scope(util::prof::Phase::MemoryWalk);
    if (trace.complete)
        return;
    if (trace.initialized) {
        // Nothing to do if the stored prefix already answers the
        // budget (total BRAM strictly decreases along the steps).
        int64_t known = trace.steps.empty() ? trace.initialBram
                                            : trace.steps.back().totalBram;
        if (bram_budget >= 0 && known <= bram_budget)
            return;
    }

    // Resume the walk from the end of the stored prefix; a fresh
    // trace resumes from the initial maximum-buffer point. The loop
    // below is the uncached greedy walk verbatim, so a first cold
    // call does exactly the work it always did.
    std::vector<ClpState> states =
        statesAt(partition, trace,
                 static_cast<ptrdiff_t>(trace.steps.size()) - 1);

    auto totalBram = [&]() {
        int64_t total = 0;
        for (const ClpState &state : states)
            total += state.bram();
        return total;
    };
    auto totalPeakBytes = [&]() {
        double total = 0.0;
        for (const ClpState &state : states)
            total += state.peakWords();
        return total * static_cast<double>(fpga::wordBytes(type_));
    };

    if (!trace.initialized) {
        trace.initialBram = totalBram();
        trace.initialPeak = totalPeakBytes();
        trace.initialized = true;
    }

    // Probes depend only on their own CLP's state, so they stay valid
    // until that CLP moves; only the mover is re-probed each round
    // (the scores still compare in the original order), and re-probes
    // of states any earlier walk visited hit the curve memo.
    std::vector<ClpState::ProbePair> probes(states.size());
    std::vector<bool> stale(states.size(), true);

    while (bram_budget < 0 || totalBram() > bram_budget) {
        // Probe a one-level shrink of each CLP's input and output
        // buffers; take the one saving the most BRAM per unit of
        // added peak bandwidth.
        double cur_peak = totalPeakBytes();
        double best_score = -1.0;
        size_t best_clp = 0;
        std::optional<ClpState::Move> best_move;
        for (size_t ci = 0; ci < states.size(); ++ci) {
            if (stale[ci]) {
                probes[ci] = states[ci].probes();
                stale[ci] = false;
            }
            for (const auto &move : probes[ci]) {
                if (!move)
                    continue;
                int64_t bram_delta =
                    states[ci].bram() - move->bramAfter;
                if (bram_delta <= 0)
                    continue;
                double others_peak =
                    cur_peak - states[ci].peakWords() *
                                   fpga::wordBytes(type_);
                double peak_after =
                    others_peak +
                    move->peakAfter * fpga::wordBytes(type_);
                double peak_delta = std::max(0.0, peak_after - cur_peak);
                double score = static_cast<double>(bram_delta) /
                               (peak_delta + 1e-9);
                if (score > best_score) {
                    best_score = score;
                    best_clp = ci;
                    best_move = move;
                }
            }
        }
        if (!best_move) {
            trace.complete = true;  // bottom of the curve
            return;
        }
        states[best_clp].applyMove(*best_move);
        stale[best_clp] = true;

        TradeoffCurveCache::PartitionStep step;
        step.clp = static_cast<uint32_t>(best_clp);
        step.inCap = states[best_clp].inCap();
        step.outCap = states[best_clp].outCap();
        step.totalBram = totalBram();
        step.totalPeak = totalPeakBytes();
        trace.steps.push_back(step);
    }
}

std::optional<model::MultiClpDesign>
MemoryOptimizer::optimize(const ComputePartition &partition,
                          const fpga::ResourceBudget &budget,
                          int64_t cycle_target) const
{
    budget.validate();

    // The result depends on the partition, the BRAM budget, and — only
    // when bandwidth is constrained — the bandwidth cap and the cycle
    // target the finished design must meet.
    std::vector<int64_t> key;
    key.reserve(4 + partition.groups.size() * 8);
    key.push_back(budget.bram18k);
    if (budget.bandwidthLimited()) {
        int64_t bw_bits;
        static_assert(sizeof(bw_bits) == sizeof(double));
        std::memcpy(&bw_bits, &budget.bandwidthBytesPerCycle,
                    sizeof(bw_bits));
        key.push_back(bw_bits);
        key.push_back(cycle_target);
    }
    for (const ComputeGroup &group : partition.groups) {
        key.push_back(-1);  // group delimiter
        key.push_back(group.shape.tn);
        key.push_back(group.shape.tm);
        for (size_t idx : group.layers)
            key.push_back(static_cast<int64_t>(idx));
    }
    {
        std::lock_guard<std::mutex> lock(memoMutex_);
        auto it = memo_.find(key);
        if (it != memo_.end())
            return it->second;
    }

    // Walk the partition's memoized trace to the first point within
    // the BRAM budget (extending it only when no earlier query went
    // deep enough), then rebuild that point's design.
    std::optional<model::MultiClpDesign> design;
    {
        util::prof::Scope prof_scope(util::prof::Phase::MemoryWalk);
        auto trace = curves_->partitionTrace(type_, network_, partition);
        std::lock_guard<std::mutex> lock(trace->mutex);
        extendTrace(partition, *trace, budget.bram18k);
        if (trace->initialBram <= budget.bram18k) {
            design = buildDesign(partition,
                                 statesAt(partition, *trace, -1));
        } else {
            // Total BRAM strictly decreases along the steps; the walk
            // stops at the first step within budget.
            auto it = std::partition_point(
                trace->steps.begin(), trace->steps.end(),
                [&](const TradeoffCurveCache::PartitionStep &step) {
                    return step.totalBram > budget.bram18k;
                });
            if (it != trace->steps.end()) {
                design = buildDesign(
                    partition,
                    statesAt(partition, *trace,
                             it - trace->steps.begin()));
            }
        }
    }
    if (design && budget.bandwidthLimited()) {
        model::DesignMetrics metrics =
            model::evaluateDesign(*design, network_, budget);
        if (metrics.epochCycles > cycle_target)
            design = std::nullopt;
    }
    std::lock_guard<std::mutex> lock(memoMutex_);
    return memo_.emplace(std::move(key), std::move(design))
        .first->second;
}

std::vector<TradeoffPoint>
MemoryOptimizer::tradeoffCurve(const ComputePartition &partition) const
{
    util::prof::Scope prof_scope(util::prof::Phase::MemoryWalk);
    auto trace = curves_->partitionTrace(type_, network_, partition);
    std::lock_guard<std::mutex> lock(trace->mutex);
    extendTrace(partition, *trace, -1);

    std::vector<TradeoffPoint> points;
    points.reserve(trace->steps.size() + 1);
    // The walk visits the initial maximum-buffer point first, then
    // one point per move. Rebuilding states step by step (instead of
    // statesAt per point) keeps this linear in the curve length.
    std::vector<ClpState> states = statesAt(partition, *trace, -1);
    TradeoffPoint initial;
    initial.totalBram = trace->initialBram;
    initial.peakBytesPerCycle = trace->initialPeak;
    initial.design = buildDesign(partition, states);
    points.push_back(std::move(initial));
    for (const auto &step : trace->steps) {
        states[step.clp].setCaps(step.inCap, step.outCap);
        TradeoffPoint point;
        point.totalBram = step.totalBram;
        point.peakBytesPerCycle = step.totalPeak;
        point.design = buildDesign(partition, states);
        points.push_back(std::move(point));
    }
    return points;
}

ComputePartition
partitionFromDesign(const model::MultiClpDesign &design,
                    const nn::Network &network)
{
    ComputePartition partition;
    for (const model::ClpConfig &clp : design.clps) {
        ComputeGroup group;
        group.shape = clp.shape;
        for (const model::LayerBinding &binding : clp.layers)
            group.layers.push_back(binding.layerIdx);
        group.dsp = model::clpDsp(clp.shape, design.dataType);
        group.cycles = model::clpComputeCycles(clp, network);
        partition.groups.push_back(std::move(group));
        partition.totalDsp += partition.groups.back().dsp;
    }
    return partition;
}

std::optional<model::MultiClpDesign>
retileDesign(const model::MultiClpDesign &design,
             const nn::Network &network,
             const fpga::ResourceBudget &budget)
{
    ComputePartition partition = partitionFromDesign(design, network);
    MemoryOptimizer memory(network, design.dataType);
    // Tiling never changes compute-bound cycles; accept any slowdown
    // only up to the budget's own evaluation (no extra target here).
    int64_t target = std::numeric_limits<int64_t>::max() / 4;
    return memory.optimize(partition, budget, target);
}

} // namespace core
} // namespace mclp
