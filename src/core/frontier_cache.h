/**
 * @file
 * The persistent frontier cache: warm DSE state that survives the
 * process.
 *
 * PR 2/3 made warm state the engine's superpower — one frontier build
 * answers a whole budget ladder, one registry serves many networks —
 * but every fresh mclp-opt/dse-sweep invocation and every mclp-serve
 * restart rebuilt the same Pareto staircases from scratch.
 * FrontierCache serializes the two expensive, budget-independent
 * artifacts to disk:
 *
 *  - ShapeFrontier staircases, keyed by the FrontierRowStore's
 *    dims-sequence keys (type, units cap, per-layer n/m/r*c*k^2) —
 *    network identity never enters, so a cache populated by one CNN
 *    warms dims-identical ranges of another;
 *  - MemoryOptimizer greedy-walk traces, keyed by the
 *    TradeoffCurveCache partition signatures (type, per-group shape
 *    and layer tiling dims).
 *
 * Invalidation is versioned, never heuristic: the file header carries
 * a format version and a *model-formula fingerprint* — a hash over
 * probe evaluations of the cycle/DSP/BRAM/bandwidth models — so a
 * cache written by a binary with different model constants is
 * rejected wholesale and rebuilt, rather than silently corrupting
 * results. Within a valid file, every record is checksummed; a
 * truncated or bit-rotted tail degrades to a cold build of exactly
 * the affected entries.
 *
 * The cache is a read-through/write-back layer: FrontierRowStore and
 * TradeoffCurveCache consult it on a miss and note fresh builds, and
 * flush() merges pending entries with whatever is on disk *now*
 * (concurrent CLIs interleave safely under a per-file advisory lock;
 * writes are staged in a temp file and renamed atomically, so a crash
 * never leaves a half-written cache). SessionRegistry flushes on
 * destruction, which covers mclp-opt, dse-sweep, and mclp-serve
 * shutdown alike.
 *
 * The project invariant extends to disk: designs answered from a
 * disk-warm cache are byte-for-byte identical to cold runs
 * (tests/core/test_frontier_cache.cc pins this on fixed and random
 * networks; the CI smoke diffs whole mclp-opt responses).
 */

#ifndef MCLP_CORE_FRONTIER_CACHE_H
#define MCLP_CORE_FRONTIER_CACHE_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/memory_optimizer.h"
#include "core/shape_frontier.h"
#include "util/hash.h"

namespace mclp {
namespace core {

/** First bytes of a cache file ("MCLPFC01", little-endian u64). */
constexpr uint64_t kFrontierCacheMagic = 0x31304346504C434DULL;

/** Bump on any change to the record layout below. v2: staircases
 * stored as four SoA lane blocks (tn, tm, dsp, cycles) instead of
 * interleaved points. */
constexpr uint32_t kFrontierCacheFormatVersion = 2;

/** Cache file and lock file names inside the cache directory. */
constexpr const char *kFrontierCacheFileName = "frontier_cache.bin";
constexpr const char *kFrontierCacheLockName = "frontier_cache.lock";

/**
 * Digest of the analytical models a cached artifact depends on,
 * computed by hashing probe evaluations of the cycle, DSP, BRAM, and
 * bandwidth models (not source text — exactly the formulas). Any
 * constant tweak in those models changes the fingerprint, and every
 * cache file written under the old formulas self-invalidates.
 */
uint64_t modelFormulaFingerprint();

/**
 * One process's view of an on-disk cache directory. Thread safe; one
 * instance is shared by every session of a SessionRegistry.
 */
class FrontierCache
{
  public:
    struct Stats
    {
        size_t rowsLoaded = 0;     ///< staircases decoded from disk
        size_t tracesLoaded = 0;   ///< walk traces decoded from disk
        size_t rowHits = 0;        ///< lookups answered from disk
        size_t traceHits = 0;      ///< trace seeds answered from disk
        size_t rowsPending = 0;    ///< fresh rows awaiting flush
        size_t tracesNoted = 0;    ///< live traces tracked for flush
        size_t flushes = 0;        ///< successful flush() commits
        /** File was absent, or its whole tail validated. A stale
         * version/fingerprint also counts as clean (expected
         * invalidation); truncation and bit rot do not. */
        bool loadedClean = true;
    };

    /**
     * Open (and create if needed) cache directory @p dir and load the
     * cache file. Any defect — missing directory, stale version or
     * fingerprint, truncation, checksum mismatch — degrades to an
     * empty (cold) cache; construction never throws for file reasons.
     */
    explicit FrontierCache(std::string dir);

    const std::string &dir() const { return dir_; }

    /**
     * The disk-loaded staircase for a FrontierRowStore key, or null.
     * Loaded rows stay resident for the process lifetime (they mirror
     * the file), so repeated lookups share one immutable object.
     */
    std::shared_ptr<const ShapeFrontier>
    loadRow(const std::vector<int64_t> &key);

    /** Record a freshly built staircase for the next flush(). */
    void noteRow(const std::vector<int64_t> &key,
                 std::shared_ptr<const ShapeFrontier> row);

    /**
     * Seed a just-created PartitionTrace from disk. @p trace must not
     * be shared with other threads yet (it is filled unlocked).
     * Returns false — leaving the trace untouched — when the key is
     * absent or the stored trace fails validation.
     */
    bool seedTrace(const std::vector<int64_t> &key,
                   TradeoffCurveCache::PartitionTrace &trace);

    /**
     * Track a live trace for write-back: at flush() time its current
     * walk prefix is serialized when it goes deeper than what disk
     * already holds. Tracking keeps the trace alive; traces are small
     * (a step sequence), so this pins negligible memory.
     */
    void noteTrace(
        const std::vector<int64_t> &key,
        std::shared_ptr<TradeoffCurveCache::PartitionTrace> trace);

    /**
     * Write-back: merge pending rows and grown traces with the file's
     * *current* contents under the advisory lock (a concurrent CLI
     * may have flushed since we loaded), stage to a temp file, and
     * rename atomically. No-op (returning true) when nothing new
     * exists. False on I/O failure — the previous file survives.
     */
    bool flush();

    Stats stats() const;

  private:
    struct TraceImage
    {
        bool complete = false;
        int64_t initialBram = 0;
        double initialPeak = 0.0;
        std::vector<TradeoffCurveCache::PartitionStep> steps;
    };

    using RowMap =
        std::unordered_map<std::vector<int64_t>,
                           std::shared_ptr<const ShapeFrontier>,
                           util::Int64VectorHash>;
    using TraceMap = std::unordered_map<std::vector<int64_t>, TraceImage,
                                        util::Int64VectorHash>;

    void loadLocked();

    std::string dir_;
    std::string filePath_;
    std::string lockPath_;
    uint64_t fingerprint_;

    mutable std::mutex mutex_;
    RowMap diskRows_;    ///< rows as loaded from (or flushed to) disk
    TraceMap diskTraces_;  ///< trace images the file holds
    RowMap pendingRows_;   ///< built this process, not yet flushed
    /** Live traces to serialize at flush; deduped by key, first noted
     * wins (concurrent sessions converge on one trace per key in
     * their own caches anyway). */
    std::unordered_map<
        std::vector<int64_t>,
        std::shared_ptr<TradeoffCurveCache::PartitionTrace>,
        util::Int64VectorHash>
        notedTraces_;
    size_t rowsLoaded_ = 0;
    size_t tracesLoaded_ = 0;
    size_t rowHits_ = 0;
    size_t traceHits_ = 0;
    size_t flushes_ = 0;
    bool loadedClean_ = true;
};

} // namespace core
} // namespace mclp

#endif // MCLP_CORE_FRONTIER_CACHE_H
