/**
 * @file
 * The persistent frontier cache: warm DSE state that survives the
 * process, shared across processes through an mmap'd segment.
 *
 * PR 2/3 made warm state the engine's superpower — one frontier build
 * answers a whole budget ladder, one registry serves many networks —
 * but every fresh mclp-opt/dse-sweep invocation and every mclp-serve
 * restart rebuilt the same Pareto staircases from scratch.
 * FrontierCache serializes the two expensive, budget-independent
 * artifacts to disk:
 *
 *  - ShapeFrontier staircases, keyed by the FrontierRowStore's
 *    dims-sequence keys (type, units cap, per-layer n/m/r*c*k^2) —
 *    network identity never enters, so a cache populated by one CNN
 *    warms dims-identical ranges of another;
 *  - MemoryOptimizer greedy-walk traces, keyed by the
 *    TradeoffCurveCache partition signatures (type, per-group shape
 *    and layer tiling dims).
 *
 * Storage is tiered. The **record file** (frontier_cache.bin) is the
 * authoritative, crash-safe merge log: delta-compacted records
 * (core/frontier_codec.h — format v4, several-fold smaller than the
 * SoA v2 lanes it replaces; v2 and 3-lane-key v3 files upgrade in
 * place on their first flush), each carrying a hit counter and the
 * generation of its last
 * hit so a byte budget (FrontierCacheOptions::maxBytes) can evict the
 * least-recently-hit records at flush time. The **segment**
 * (frontier_cache.seg, core/frontier_cache_segment.h) is a
 * hash-indexed immutable image of the same records, published after
 * every flush; when its generation stamp matches the record file's,
 * startup maps it read-only and skips the eager decode entirely —
 * rows and traces then decode lazily, straight out of the mapping,
 * and N worker processes share one page-cache copy. Sharded fronts
 * extend the ladder sideways: FrontierCacheOptions::siblingDirs
 * attaches the *other* shards' published segments read-only, so a
 * row any shard on the host flushed warms every shard. Lookups
 * report which tier answered (CacheTier), so cache-stats can show
 * the full ladder: process -> mmap -> disk -> sibling -> cold.
 *
 * Invalidation is versioned, never heuristic: the file header carries
 * a format version and a *model-formula fingerprint* — a hash over
 * probe evaluations of the cycle/DSP/BRAM/bandwidth models — so a
 * cache written by a binary with different model constants is
 * rejected wholesale and rebuilt, rather than silently corrupting
 * results. Within a valid file, every record is checksummed; a
 * truncated or bit-rotted tail degrades to a cold build of exactly
 * the affected entries. A damaged or stale segment merely degrades to
 * the eager record-file load — the segment is an accelerator, never
 * a source of truth, which is also why flush() commits the record
 * file *before* publishing the segment: a crash between the two
 * leaves a generation mismatch, and the next process distrusts the
 * old segment instead of serving stale entries.
 *
 * The cache is a read-through/write-back layer: FrontierRowStore and
 * TradeoffCurveCache consult it on a miss and note fresh builds, and
 * flush() merges pending entries with whatever is on disk *now*
 * (concurrent CLIs interleave safely under a per-file advisory lock;
 * writes are staged in a temp file and renamed atomically, so a crash
 * never leaves a half-written cache). SessionRegistry flushes on
 * destruction, which covers mclp-opt, dse-sweep, and mclp-serve
 * shutdown alike. A flush with nothing new — including one where only
 * hit counters moved — is a no-op; counter updates piggyback on the
 * next flush that rewrites the file anyway.
 *
 * The project invariant extends to disk: designs answered from a
 * disk-warm or mmap-warm cache are byte-for-byte identical to cold
 * runs (tests/core/test_frontier_cache.cc pins this on fixed and
 * random networks; the CI smoke diffs whole mclp-opt responses).
 */

#ifndef MCLP_CORE_FRONTIER_CACHE_H
#define MCLP_CORE_FRONTIER_CACHE_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/frontier_cache_segment.h"
#include "core/frontier_codec.h"
#include "core/memory_optimizer.h"
#include "core/shape_frontier.h"
#include "util/hash.h"

namespace mclp {
namespace core {

/** First bytes of a cache file ("MCLPFC01", little-endian u64). */
constexpr uint64_t kFrontierCacheMagic = 0x31304346504C434DULL;

/** Bump on any change to the record layout. v4: identical delta
 * payloads to v3, but staircase row keys carry four lanes per layer
 * ({n, m, r*c*k^2, groups}) instead of three — without the version
 * bump a 3-lane key of one range and a 4-lane key of another could
 * collide byte-for-byte. */
constexpr uint32_t kFrontierCacheFormatVersion = 4;

/** The delta format v4 replaced: same record layout, 3-lane row keys
 * (every layer was plain conv, g=1). Still readable: row keys gain
 * their g=1 lanes on load and the file is rewritten as v4 on the
 * first flush (upgrade-on-flush, never in place). */
constexpr uint32_t kFrontierCacheLegacyV3FormatVersion = 3;

/** The SoA format v3 replaced. Still readable: a v2 file with a
 * matching fingerprint loads eagerly and is rewritten in the current
 * format on the first flush (upgrade-on-flush, never in place). */
constexpr uint32_t kFrontierCacheLegacyFormatVersion = 2;

/** Cache file and lock file names inside the cache directory. */
constexpr const char *kFrontierCacheFileName = "frontier_cache.bin";
constexpr const char *kFrontierCacheLockName = "frontier_cache.lock";

/**
 * Digest of the analytical models a cached artifact depends on,
 * computed by hashing probe evaluations of the cycle, DSP, BRAM, and
 * bandwidth models (not source text — exactly the formulas). Any
 * constant tweak in those models changes the fingerprint, and every
 * cache file written under the old formulas self-invalidates.
 */
uint64_t modelFormulaFingerprint();

/** Which storage tier answered a cache lookup. */
enum class CacheTier
{
    None,     ///< not in the persistent cache at all (cold build)
    Mmap,     ///< decoded on demand from the mmap'd segment
    Disk,     ///< decoded from the record file at load
    Sibling,  ///< decoded from a sibling shard's published segment
};

struct FrontierCacheOptions
{
    /** Map the published segment and load lazily from it when its
     * generation matches the record file. Off = always eager-load
     * the record file (the pre-segment behavior). */
    bool mmapSegment = true;
    /** Byte budget for the record file (0 = unbounded). When a flush
     * would exceed it, the least-recently-hit records (oldest
     * last-hit generation, then fewest hits) are evicted until the
     * rewrite fits; records touched this session survive first. */
    size_t maxBytes = 0;
    /**
     * Cache directories of sibling shards (mclp-serve
     * --cache-sibling, one per other worker of a sharded front).
     * Their published segments are attached read-only and consulted
     * after this shard's own tiers miss, before a cold build — K
     * shards on one host then form a shared warm tier instead of K
     * cold silos. Safe by construction: segments are immutable,
     * checksummed, fingerprint-validated images, and every record is
     * a deterministic function of its key, so a sibling hit is
     * byte-identical to a local build. Sibling records are never
     * written back into this shard's record file.
     */
    std::vector<std::string> siblingDirs;
};

/**
 * One process's view of an on-disk cache directory. Thread safe; one
 * instance is shared by every session of a SessionRegistry.
 */
class FrontierCache
{
  public:
    struct Stats
    {
        size_t rowsLoaded = 0;     ///< staircases decoded from disk
        size_t tracesLoaded = 0;   ///< walk traces decoded from disk
        size_t rowHits = 0;        ///< lookups answered from disk
        size_t traceHits = 0;      ///< trace seeds answered from disk
        size_t rowsPending = 0;    ///< fresh rows awaiting flush
        size_t tracesNoted = 0;    ///< live traces tracked for flush
        size_t flushes = 0;        ///< successful flush() commits
        /** File was absent, or its whole tail validated. A stale
         * version/fingerprint also counts as clean (expected
         * invalidation); truncation and bit rot do not. */
        bool loadedClean = true;
        uint64_t generation = 0;   ///< record-file generation
        bool segmentMapped = false;   ///< serving from the mmap tier
        size_t segmentEntries = 0;    ///< records in the mapped image
        size_t segmentBytes = 0;      ///< bytes of the mapped image
        size_t segmentRowHits = 0;    ///< row hits decoded from mmap
        size_t segmentTraceHits = 0;  ///< trace hits decoded from mmap
        size_t evictedLastFlush = 0;  ///< records the budget dropped
        size_t siblingDirs = 0;       ///< sibling shards configured
        size_t siblingSegments = 0;   ///< sibling segments mapped now
        size_t siblingRowHits = 0;    ///< rows decoded from siblings
        size_t siblingTraceHits = 0;  ///< traces decoded from siblings
    };

    /**
     * Open (and create if needed) cache directory @p dir and load the
     * cache file. Any defect — missing directory, stale version or
     * fingerprint, truncation, checksum mismatch — degrades to an
     * empty (cold) cache; construction never throws for file reasons.
     * When a published segment matches the record file's generation,
     * the eager decode is skipped and entries stream from the mapping
     * on demand instead.
     */
    explicit FrontierCache(std::string dir,
                           FrontierCacheOptions options = {});

    const std::string &dir() const { return dir_; }

    /**
     * The persisted staircase for a FrontierRowStore key, or null.
     * Loaded rows stay resident for the process lifetime (they mirror
     * the file), so repeated lookups share one immutable object.
     * @p tier, when given, reports which tier answered.
     */
    std::shared_ptr<const ShapeFrontier>
    loadRow(const std::vector<int64_t> &key, CacheTier *tier = nullptr);

    /** Record a freshly built staircase for the next flush(). */
    void noteRow(const std::vector<int64_t> &key,
                 std::shared_ptr<const ShapeFrontier> row);

    /**
     * Seed a just-created PartitionTrace from disk. @p trace must not
     * be shared with other threads yet (it is filled unlocked).
     * Returns false — leaving the trace untouched — when the key is
     * absent or the stored trace fails validation.
     */
    bool seedTrace(const std::vector<int64_t> &key,
                   TradeoffCurveCache::PartitionTrace &trace,
                   CacheTier *tier = nullptr);

    /**
     * Track a live trace for write-back: at flush() time its current
     * walk prefix is serialized when it goes deeper than what disk
     * already holds. Tracking keeps the trace alive; traces are small
     * (a step sequence), so this pins negligible memory.
     */
    void noteTrace(
        const std::vector<int64_t> &key,
        std::shared_ptr<TradeoffCurveCache::PartitionTrace> trace);

    /**
     * Write-back: merge pending rows and grown traces with the file's
     * *current* contents under the advisory lock (a concurrent CLI
     * may have flushed since we loaded), fold this process's hit
     * counts into the record counters, evict past the byte budget,
     * stage to a temp file, rename atomically, and republish the
     * segment. No-op (returning true) when nothing but hit counters
     * changed — counter updates ride the next real rewrite. False on
     * I/O failure — the previous file survives.
     */
    bool flush();

    Stats stats() const;

  private:
    using RowMap =
        std::unordered_map<std::vector<int64_t>,
                           std::shared_ptr<const ShapeFrontier>,
                           util::Int64VectorHash>;
    using TraceMap = std::unordered_map<std::vector<int64_t>,
                                        FrontierTraceImage,
                                        util::Int64VectorHash>;
    using HitMap = std::unordered_map<std::vector<int64_t>, uint32_t,
                                      util::Int64VectorHash>;

    /**
     * One sibling shard's published segment, attached lazily and
     * re-attached when the sibling republishes. The mapping pins the
     * inode, so a rename-over by the sibling never tears a reader; a
     * stat snapshot of the path detects republication cheaply, and
     * the generation stamp guards against replacing a newer mapping
     * with an older image (a wiped-and-recreated sibling restarts at
     * generation 1 — staleness only costs warmth, never correctness,
     * because records are pure functions of their keys).
     */
    struct SiblingSegment
    {
        std::string path;  ///< DIR/frontier_cache.seg
        FrontierCacheSegment segment;
        int64_t statIno = -1;
        int64_t statSize = -1;
        int64_t statMtimeNs = -1;
    };

    void loadLocked();
    void loadRecordsLocked(uint32_t version);
    /** Probe every sibling segment for (kind, key), refreshing stale
     * mappings first. Empty view on a miss. Call under mutex_. */
    std::string_view findInSiblings(uint8_t kind,
                                    const std::vector<int64_t> &key);

    std::string dir_;
    std::string filePath_;
    std::string lockPath_;
    std::string segmentPath_;
    FrontierCacheOptions options_;
    uint64_t fingerprint_;

    mutable std::mutex mutex_;
    FrontierCacheSegment segment_;  ///< invalid when distrusted
    RowMap diskRows_;    ///< rows decoded from the record file
    TraceMap diskTraces_;  ///< trace images decoded from the file
    RowMap mmapRows_;      ///< rows decoded on demand from segment_
    TraceMap mmapTraces_;  ///< traces decoded on demand from segment_
    std::vector<SiblingSegment> siblings_;  ///< other shards' tiers
    RowMap siblingRows_;     ///< rows decoded from sibling segments
    TraceMap siblingTraces_; ///< traces decoded from sibling segments
    RowMap pendingRows_;   ///< built this process, not yet flushed
    /** Live traces to serialize at flush; deduped by key, first noted
     * wins (concurrent sessions converge on one trace per key in
     * their own caches anyway). */
    std::unordered_map<
        std::vector<int64_t>,
        std::shared_ptr<TradeoffCurveCache::PartitionTrace>,
        util::Int64VectorHash>
        notedTraces_;
    /** Hits this process scored per key, folded into the on-disk
     * counters by the next flush that rewrites the file anyway. */
    HitMap rowHitDelta_;
    HitMap traceHitDelta_;
    uint64_t generation_ = 0;  ///< of the record file as loaded
    bool upgradePending_ = false;  ///< legacy v2/v3 file awaiting rewrite
    size_t rowsLoaded_ = 0;
    size_t tracesLoaded_ = 0;
    size_t rowHits_ = 0;
    size_t traceHits_ = 0;
    size_t segmentRowHits_ = 0;
    size_t segmentTraceHits_ = 0;
    size_t siblingRowHits_ = 0;
    size_t siblingTraceHits_ = 0;
    size_t evictedLastFlush_ = 0;
    size_t flushes_ = 0;
    bool loadedClean_ = true;
};

} // namespace core
} // namespace mclp

#endif // MCLP_CORE_FRONTIER_CACHE_H
