/**
 * @file
 * Epoch scheduling and latency accounting (Section 4.1).
 *
 * A Multi-CLP accelerator runs in epochs: each CLP sequentially
 * processes its assigned layers, consuming only data produced in the
 * previous epoch. In the general (throughput-oriented) schedule an
 * image advances one layer per epoch, so evaluation latency is
 * numLayers epochs with as many images in flight. Constraining each
 * CLP to a run of *adjacent* layers lets a CLP carry an image through
 * all of its layers within one epoch, cutting latency to numClps
 * epochs (and in-flight images to numClps) at a possible cost in
 * throughput.
 */

#ifndef MCLP_CORE_SCHEDULE_H
#define MCLP_CORE_SCHEDULE_H

#include <cstdint>
#include <string>

#include "model/clp_config.h"
#include "model/metrics.h"
#include "nn/network.h"

namespace mclp {
namespace core {

/** Latency/pipelining properties of a design's epoch schedule. */
struct ScheduleInfo
{
    /** True if every CLP computes a contiguous run of layers in the
     *  network's own order (the Section 4.1 latency optimization). */
    bool adjacentLayers = false;

    /** Epochs from an image entering to its last layer finishing. */
    int64_t latencyEpochs = 0;

    /** Independent images resident in the pipeline. */
    int64_t imagesInFlight = 0;

    /** Latency in seconds for a given epoch length and clock. */
    double
    latencySeconds(int64_t epoch_cycles, double frequency_mhz) const
    {
        return static_cast<double>(latencyEpochs) *
               static_cast<double>(epoch_cycles) /
               (frequency_mhz * 1e6);
    }
};

/**
 * Classify a design's schedule. A design qualifies as
 * adjacent-layers when each CLP's assignment is a contiguous,
 * in-order run of the network's layers; then latency = numClps
 * epochs, otherwise latency = numLayers epochs.
 */
ScheduleInfo analyzeSchedule(const model::MultiClpDesign &design,
                             const nn::Network &network);

/**
 * Reorder the CLPs of a design by their first assigned layer and
 * sort each CLP's layers into network order. This never changes
 * cycles or resources, only presentation and schedule analysis.
 */
model::MultiClpDesign canonicalizeSchedule(
    const model::MultiClpDesign &design, const nn::Network &network);

} // namespace core
} // namespace mclp

#endif // MCLP_CORE_SCHEDULE_H
