#include "core/shape_frontier.h"

#include <algorithm>

#include "core/frontier_cache.h"
#include "model/dsp_model.h"
#include "util/logging.h"
#include "util/math.h"

namespace mclp {
namespace core {

const BreakpointCache::Table &
BreakpointCache::table(int64_t d)
{
    auto it = tables_.find(d);
    if (it != tables_.end())
        return it->second;
    if (d < 1)
        util::panic("BreakpointCache: dimension must be positive");

    // Jump divisor-style: from breakpoint t with q = ceil(d/t), the
    // next tile size with a smaller ceiling is (d-1)/(q-1) + 1.
    Table table;
    int64_t t = 1;
    while (t <= d) {
        int64_t q = util::ceilDiv(d, t);
        table.bps.push_back(t);
        table.ceils.push_back(q);
        if (q == 1)
            break;
        t = (d - 1) / (q - 1) + 1;
    }
    return tables_.emplace(d, std::move(table)).first->second;
}

void
ShapeFrontier::Builder::reset()
{
    layers_.clear();
    seenN_.clear();
    seenM_.clear();
    maxN_ = 0;
    maxM_ = 0;
    tnBps_.clear();
    tmBps_.clear();
    grid_.clear();
    cands_.clear();
}

bool
ShapeFrontier::Builder::mergeBps(std::vector<int64_t> &into,
                                 const std::vector<int64_t> &from)
{
    size_t before = into.size();
    size_t mid = before;
    into.insert(into.end(), from.begin(), from.end());
    std::inplace_merge(into.begin(),
                       into.begin() + static_cast<ptrdiff_t>(mid),
                       into.end());
    into.erase(std::unique(into.begin(), into.end()), into.end());
    return into.size() != before;
}

void
ShapeFrontier::Builder::expandGrid(const std::vector<int64_t> &old_tn,
                                   const std::vector<int64_t> &old_tm)
{
    // Cycle counts are constant between breakpoints, so the value at a
    // new breakpoint is the value at the largest old breakpoint at or
    // under it. Old lists are subsets of the new ones, so a moving
    // cursor maps every new index.
    size_t new_w = tmBps_.size();
    size_t old_w = old_tm.size();
    scratch_.assign(grid_.begin(), grid_.end());
    grid_.assign(tnBps_.size() * new_w, 0);
    if (old_w == 0)
        return;

    std::vector<size_t> mcol(new_w, 0);
    for (size_t mi = 0, o = 0; mi < new_w; ++mi) {
        while (o + 1 < old_w && old_tm[o + 1] <= tmBps_[mi])
            ++o;
        mcol[mi] = o;
    }
    for (size_t ti = 0, o = 0; ti < tnBps_.size(); ++ti) {
        while (o + 1 < old_tn.size() && old_tn[o + 1] <= tnBps_[ti])
            ++o;
        const int64_t *src = scratch_.data() + o * old_w;
        int64_t *dst = grid_.data() + ti * new_w;
        for (size_t mi = 0; mi < new_w; ++mi)
            dst[mi] = src[mcol[mi]];
    }
}

void
ShapeFrontier::Builder::addLayer(const nn::ConvLayer &layer,
                                 BreakpointCache &scratch)
{
    layers_.push_back(&layer);
    maxN_ = std::max(maxN_, layer.n);
    maxM_ = std::max(maxM_, layer.m);

    const BreakpointCache::Table &ntab = scratch.table(layer.n);
    const BreakpointCache::Table &mtab = scratch.table(layer.m);

    // A repeated dimension value adds no new breakpoints; the grid
    // keeps its geometry and only absorbs the rank-1 update below.
    bool n_new = std::find(seenN_.begin(), seenN_.end(), layer.n) ==
                 seenN_.end();
    bool m_new = std::find(seenM_.begin(), seenM_.end(), layer.m) ==
                 seenM_.end();
    if (n_new || m_new) {
        std::vector<int64_t> old_tn;
        std::vector<int64_t> old_tm;
        if (!grid_.empty()) {
            old_tn = tnBps_;
            old_tm = tmBps_;
        }
        bool changed = false;
        if (n_new) {
            seenN_.push_back(layer.n);
            changed |= mergeBps(tnBps_, ntab.bps);
        }
        if (m_new) {
            seenM_.push_back(layer.m);
            changed |= mergeBps(tmBps_, mtab.bps);
        }
        if (grid_.empty())
            grid_.assign(tnBps_.size() * tmBps_.size(), 0);
        else if (changed)
            expandGrid(old_tn, old_tm);
    }

    // Rank-1 update: cycles(tn, tm) += R*C*K^2 * ceil(N/tn) *
    // ceil(M/tm). Per-breakpoint ceilings come from the layer's own
    // tables with moving cursors — no divisions.
    size_t w = tmBps_.size();
    scratch_.resize(w);
    for (size_t mi = 0, k = 0; mi < w; ++mi) {
        while (k + 1 < mtab.bps.size() && mtab.bps[k + 1] <= tmBps_[mi])
            ++k;
        scratch_[mi] = mtab.ceils[k];
    }
    int64_t rck2 = layer.r * layer.c * layer.k * layer.k;
    for (size_t ti = 0, k = 0; ti < tnBps_.size(); ++ti) {
        while (k + 1 < ntab.bps.size() && ntab.bps[k + 1] <= tnBps_[ti])
            ++k;
        int64_t area = rck2 * ntab.ceils[k];
        int64_t *row = grid_.data() + ti * w;
        const int64_t *cm = scratch_.data();
        for (size_t mi = 0; mi < w; ++mi)
            row[mi] += area * cm[mi];
    }
}

namespace {

/**
 * Above this unit range the dense staircase sweep's O(max_units) scan
 * and bucket storage stop paying off and the sparse sort takes over.
 * Every budget-capped build of a real device sits far below it (a
 * 10,000-DSP float budget is 2,000 units); only budget-free builds of
 * wide networks go sparse, and those are built once per session.
 */
constexpr int64_t kDenseUnitsLimit = 1 << 16;

} // namespace

ShapeFrontier
ShapeFrontier::Builder::build(fpga::DataType type, int64_t units_budget)
{
    ShapeFrontier frontier;
    if (layers_.empty())
        util::panic("ShapeFrontier: empty layer range");
    if (units_budget < 1)
        return frontier;  // not a single MAC unit

    int64_t per_mac = fpga::dspPerMac(type);
    int64_t tn_cap = std::min(maxN_, units_budget);
    int64_t max_units = std::min(units_budget, tn_cap * maxM_);
    size_t w = tmBps_.size();

    if (max_units <= kDenseUnitsLimit) {
        // Dense sweep: per MAC count keep the best (fewest cycles;
        // ties toward the first, i.e. smallest, Tn) shape within the
        // budget, then walk unit counts in order.
        if (buckets_.size() < static_cast<size_t>(max_units) + 1)
            buckets_.resize(static_cast<size_t>(max_units) + 1);
        for (size_t ti = 0; ti < tnBps_.size(); ++ti) {
            int64_t tn = tnBps_[ti];
            if (tn > tn_cap)
                break;
            int64_t tm_cap = units_budget / tn;
            size_t hi = static_cast<size_t>(
                std::upper_bound(tmBps_.begin(), tmBps_.end(), tm_cap) -
                tmBps_.begin());
            const int64_t *row = grid_.data() + ti * w;
            for (size_t mi = 0; mi < hi; ++mi) {
                size_t units = static_cast<size_t>(tn * tmBps_[mi]);
                int64_t cycles = row[mi];
                Bucket &slot = buckets_[units];
                if (slot.cycles < 0 || cycles < slot.cycles) {
                    slot.cycles = cycles;
                    slot.tn = static_cast<int32_t>(tn);
                    slot.tm = static_cast<int32_t>(tmBps_[mi]);
                }
            }
        }

        // Ascending-units sweep keeps only the Pareto staircase:
        // strictly increasing DSP, strictly decreasing cycles.
        // Buckets reset along the way.
        int64_t best_cycles = -1;
        for (int64_t units = 1; units <= max_units; ++units) {
            Bucket &slot = buckets_[static_cast<size_t>(units)];
            if (slot.cycles < 0)
                continue;
            if (best_cycles < 0 || slot.cycles < best_cycles) {
                best_cycles = slot.cycles;
                FrontierPoint point;
                point.shape = model::ClpShape{slot.tn, slot.tm};
                point.dsp = per_mac * units;
                point.cycles = slot.cycles;
                frontier.points_.push_back(point);
            }
            slot.cycles = -1;  // reset for the next build
        }
        return frontier;
    }

    // Sparse sweep for huge unit ranges (budget-free builds of wide
    // networks): the candidate count is bounded by the breakpoint
    // products, not by the unit count. The (units, cycles, tn) sort
    // replicates the dense sweep's tie-breaks exactly: per unit count
    // the fewest-cycles shape wins, ties toward the smallest Tn.
    cands_.clear();
    for (size_t ti = 0; ti < tnBps_.size(); ++ti) {
        int64_t tn = tnBps_[ti];
        if (tn > tn_cap)
            break;
        int64_t tm_cap = units_budget / tn;
        size_t hi = static_cast<size_t>(
            std::upper_bound(tmBps_.begin(), tmBps_.end(), tm_cap) -
            tmBps_.begin());
        const int64_t *row = grid_.data() + ti * w;
        for (size_t mi = 0; mi < hi; ++mi) {
            Candidate cand;
            cand.units = tn * tmBps_[mi];
            cand.cycles = row[mi];
            cand.tn = static_cast<int32_t>(tn);
            cand.tm = static_cast<int32_t>(tmBps_[mi]);
            cands_.push_back(cand);
        }
    }
    std::sort(cands_.begin(), cands_.end(),
              [](const Candidate &a, const Candidate &b) {
                  if (a.units != b.units)
                      return a.units < b.units;
                  if (a.cycles != b.cycles)
                      return a.cycles < b.cycles;
                  return a.tn < b.tn;
              });
    int64_t best_cycles = -1;
    int64_t last_units = 0;
    for (const Candidate &cand : cands_) {
        if (cand.units == last_units)
            continue;  // only the best shape per unit count competes
        if (best_cycles < 0 || cand.cycles < best_cycles) {
            best_cycles = cand.cycles;
            last_units = cand.units;
            FrontierPoint point;
            point.shape = model::ClpShape{cand.tn, cand.tm};
            point.dsp = per_mac * cand.units;
            point.cycles = cand.cycles;
            frontier.points_.push_back(point);
        }
    }
    cands_.clear();
    return frontier;
}

ShapeFrontier::ShapeFrontier(
    const std::vector<const nn::ConvLayer *> &layers, fpga::DataType type,
    int64_t units_budget, BreakpointCache &scratch)
{
    Builder builder;
    for (const nn::ConvLayer *layer : layers)
        builder.addLayer(*layer, scratch);
    *this = builder.build(type, units_budget);
}

const FrontierPoint *
ShapeFrontier::query(int64_t cycle_target, int64_t max_dsp) const
{
    // DSP increases strictly along the frontier, so the shapes
    // affordable under max_dsp are a prefix; cycles decrease, so the
    // first prefix point at or under the target is the cheapest one
    // (ties already resolved toward fewer cycles, then smaller Tn,
    // during construction).
    auto end = std::partition_point(
        points_.begin(), points_.end(), [&](const FrontierPoint &p) {
            return p.dsp <= max_dsp;
        });
    auto it = std::partition_point(
        points_.begin(), end, [&](const FrontierPoint &p) {
            return p.cycles > cycle_target;
        });
    return it == end ? nullptr : &*it;
}

int64_t
ShapeFrontier::minCycles(int64_t max_dsp) const
{
    auto end = std::partition_point(
        points_.begin(), points_.end(), [&](const FrontierPoint &p) {
            return p.dsp <= max_dsp;
        });
    if (end == points_.begin())
        return kUnboundedResources;  // nothing affordable
    return (end - 1)->cycles;
}

size_t
ShapeFrontier::Builder::memoryBytes() const
{
    return sizeof(*this) +
           (layers_.capacity() + seenN_.capacity() + seenM_.capacity()) *
               sizeof(int64_t) +
           (tnBps_.capacity() + tmBps_.capacity() + grid_.capacity() +
            scratch_.capacity()) *
               sizeof(int64_t) +
           buckets_.capacity() * sizeof(Bucket) +
           cands_.capacity() * sizeof(Candidate);
}

std::optional<ShapeFrontier>
ShapeFrontier::fromPoints(std::vector<FrontierPoint> points)
{
    for (size_t i = 0; i < points.size(); ++i) {
        const FrontierPoint &point = points[i];
        if (point.shape.tn < 1 || point.shape.tm < 1 ||
            point.dsp < 1 || point.cycles < 1)
            return std::nullopt;
        if (i > 0 && (point.dsp <= points[i - 1].dsp ||
                      point.cycles >= points[i - 1].cycles))
            return std::nullopt;  // not a staircase
    }
    ShapeFrontier frontier;
    frontier.points_ = std::move(points);
    return frontier;
}

void
FrontierRowStore::attachCache(std::shared_ptr<FrontierCache> cache)
{
    std::lock_guard<std::mutex> lock(mutex_);
    cache_ = std::move(cache);
}

std::shared_ptr<const ShapeFrontier>
FrontierRowStore::lookup(const std::vector<int64_t> &key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = rows_.find(key);
    if (it != rows_.end()) {
        ++hits_;
        return it->second;
    }
    if (cache_) {
        // Read through to disk: a loaded staircase is as good as a
        // resident one (immutable, validated at load), so it joins
        // the store and counts as a hit — no build happened.
        if (auto row = cache_->loadRow(key)) {
            rows_.emplace(key, row);
            ++hits_;
            ++diskHits_;
            return row;
        }
    }
    ++misses_;
    return nullptr;
}

std::shared_ptr<const ShapeFrontier>
FrontierRowStore::insert(const std::vector<int64_t> &key,
                         ShapeFrontier frontier)
{
    auto row = std::make_shared<const ShapeFrontier>(std::move(frontier));
    std::lock_guard<std::mutex> lock(mutex_);
    // The first insert wins, so racing builders (which produced
    // bit-identical frontiers anyway) converge on one shared row.
    auto [it, inserted] = rows_.emplace(key, std::move(row));
    if (inserted && cache_)
        cache_->noteRow(key, it->second);  // write-back at flush
    return it->second;
}

FrontierRowStore::Stats
FrontierRowStore::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    Stats stats;
    stats.hits = hits_;
    stats.misses = misses_;
    stats.rows = rows_.size();
    stats.diskHits = diskHits_;
    return stats;
}

size_t
FrontierRowStore::memoryBytes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    size_t bytes = 0;
    for (const auto &entry : rows_) {
        bytes += entry.first.capacity() * sizeof(int64_t) +
                 4 * sizeof(void *);
        // With a disk cache attached, every row is pinned by the
        // cache's in-memory mirror (loaded rows and pending
        // write-backs) for the process lifetime, so eviction cannot
        // free it. Counting pinned rows against the SessionRegistry's
        // byte budget would make the cap unreachable and turn the
        // eviction loop into pure session thrash; the mirror is the
        // price of --cache-dir, bounded by the cache file, and
        // accounted to the cache, not to evictable registry state.
        if (!cache_)
            bytes += entry.second->memoryBytes();
    }
    return bytes;
}

size_t
FrontierRowStore::purgeUnshared()
{
    std::lock_guard<std::mutex> lock(mutex_);
    size_t freed = 0;
    for (auto it = rows_.begin(); it != rows_.end();) {
        if (it->second.use_count() == 1) {
            it = rows_.erase(it);
            ++freed;
        } else {
            ++it;
        }
    }
    return freed;
}

FrontierTable::FrontierTable(const nn::Network &network,
                             fpga::DataType type, std::vector<size_t> order,
                             int max_clps,
                             std::shared_ptr<FrontierRowStore> store)
    : network_(network), type_(type), order_(std::move(order)),
      maxClps_(max_clps), store_(std::move(store)),
      rows_(order_.size()),
      rowLocks_(std::make_unique<std::mutex[]>(order_.size()))
{
    if (order_.size() != network_.numLayers())
        util::panic("FrontierTable: order length %zu != layer count %zu",
                    order_.size(), network_.numLayers());
    // Warm the breakpoint tables for every dimension the builders will
    // touch, so the parallel phase only reads them.
    for (size_t idx : order_) {
        breakpoints_.breakpoints(network_.layer(idx).n);
        breakpoints_.breakpoints(network_.layer(idx).m);
    }
}

bool
FrontierTable::usable(size_t i, size_t j) const
{
    size_t count = order_.size();
    return (i == 0 && j == count - 1) ||
           (maxClps_ >= 2 && (i == 0 || j == count - 1)) || maxClps_ >= 3;
}

std::vector<int64_t>
FrontierTable::rangeKey(size_t i, size_t j, int64_t units_cap) const
{
    // Everything a range frontier depends on: data type (DSP per MAC),
    // the cap it was built under, and per layer the two breakpoint
    // dimensions plus the per-ceiling cycle weight R*C*K^2. Network
    // identity and layer indices never enter, so dims-identical ranges
    // of different networks share one row.
    std::vector<int64_t> key;
    key.reserve(2 + 3 * (j - i + 1));
    key.push_back(static_cast<int64_t>(type_));
    key.push_back(units_cap);
    for (size_t p = i; p <= j; ++p) {
        const nn::ConvLayer &layer = network_.layer(order_[p]);
        key.push_back(layer.n);
        key.push_back(layer.m);
        key.push_back(layer.r * layer.c * layer.k * layer.k);
    }
    return key;
}

void
FrontierTable::extendRowLocked(size_t i, int64_t dsp_budget,
                               int64_t cycle_target)
{
    Row &row = rows_[i];
    int64_t needed = model::macBudget(dsp_budget, type_);
    if (row.builtUnits < needed) {
        // Built under a smaller cap than this budget can afford: the
        // stored staircases may miss now-affordable shapes. Rebuild
        // the row at the table cap (>= needed, since callers reserve
        // before querying). Only this row pays; others rebuild when
        // (and if) a big-budget query reaches them.
        row.builder.reset();
        row.builderLayers = 0;
        row.frontiers.clear();
        row.exhausted = false;
        row.builtUnits = std::max(buildUnits_.load(), needed);
    }
    if (row.exhausted)
        return;
    size_t count = order_.size();
    while (true) {
        if (!row.frontiers.empty() &&
            row.frontiers.back()->minCycles(dsp_budget) > cycle_target)
            return;  // resume when the target loosens or budget grows
        // The usable j for a row are contiguous up from i (maxClps >= 3
        // or i == 0), or just the full-suffix range {count-1}.
        size_t j = usable(i, i) ? i + row.frontiers.size() : count - 1;
        if (!row.frontiers.empty() && !usable(i, j)) {
            row.exhausted = true;  // next usable j is not contiguous
            return;
        }
        // Bring the incremental builder up to [i..j], unless the row
        // store already has this range (then the grid work waits until
        // a miss actually needs it).
        std::shared_ptr<const ShapeFrontier> frontier;
        if (store_)
            frontier = store_->lookup(rangeKey(i, j, row.builtUnits));
        if (!frontier) {
            for (size_t p = i + row.builderLayers; p <= j; ++p)
                row.builder.addLayer(network_.layer(order_[p]),
                                     breakpoints_);
            row.builderLayers = j - i + 1;
            ShapeFrontier built =
                row.builder.build(type_, row.builtUnits);
            frontier = store_ ? store_->insert(
                                    rangeKey(i, j, row.builtUnits),
                                    std::move(built))
                              : std::make_shared<const ShapeFrontier>(
                                    std::move(built));
        }
        row.frontiers.push_back(std::move(frontier));
        if (row.frontiers.back()->empty()) {
            // No affordable shape at any target (sub-MAC cap only);
            // extensions only add cycles, so this row is finished.
            row.exhausted = true;
            return;
        }
        if (j + 1 >= count) {
            row.exhausted = true;
            return;
        }
    }
}

void
FrontierTable::reserveUnits(int64_t units_cap)
{
    // Grow-only watermark; rows rebuild lazily when a query needs more
    // units than they were built under (see extendRowLocked()).
    int64_t cur = buildUnits_.load();
    while (units_cap > cur &&
           !buildUnits_.compare_exchange_weak(cur, units_cap)) {
    }
}

void
FrontierTable::prepare(int64_t dsp_budget, int64_t cycle_target,
                       util::ThreadPool *pool)
{
    reserveUnits(model::macBudget(dsp_budget, type_));
    size_t count = order_.size();
    std::vector<size_t> pending;
    for (size_t i = 0; i < count; ++i) {
        if (usable(i, i) || usable(i, count - 1))
            pending.push_back(i);
    }
    // Each task locks only its own row, so concurrent prepare() calls
    // (a sweep fanning budgets over a pool) extend disjoint rows in
    // parallel and collide — briefly — only on shared rows.
    auto extend = [&](size_t p) {
        size_t i = pending[p];
        std::lock_guard<std::mutex> lock(rowLocks_[i]);
        extendRowLocked(i, dsp_budget, cycle_target);
    };
    if (pool && pending.size() > 1)
        pool->parallelFor(pending.size(), extend);
    else
        for (size_t p = 0; p < pending.size(); ++p)
            extend(p);
}

std::optional<FrontierPoint>
FrontierTable::choose(size_t i, size_t j, int64_t dsp_budget,
                      int64_t cycle_target)
{
    if (!usable(i, j))
        return std::nullopt;
    // Rows are contiguous from j = i when usable(i, i); otherwise the
    // only usable range is the full suffix, stored at slot 0.
    size_t idx = usable(i, i) ? j - i : 0;
    std::shared_ptr<const ShapeFrontier> frontier;
    {
        std::lock_guard<std::mutex> lock(rowLocks_[i]);
        Row &row = rows_[i];
        if (idx >= row.frontiers.size() ||
            row.builtUnits < model::macBudget(dsp_budget, type_)) {
            // Not built far enough for this (budget, target) — a
            // concurrent rebuild, a bigger budget, or a prepare() that
            // stopped earlier. Extend in place; if the row still ends
            // short, some prefix range already misses the target under
            // this budget, and extensions only add cycles, so [i..j]
            // is provably infeasible.
            extendRowLocked(i, dsp_budget, cycle_target);
            if (idx >= row.frontiers.size())
                return std::nullopt;
        }
        frontier = row.frontiers[idx];
    }
    // The frontier itself is immutable; query outside the row lock.
    const FrontierPoint *point =
        frontier->query(cycle_target, dsp_budget);
    if (!point)
        return std::nullopt;
    return *point;
}

size_t
FrontierTable::memoryBytes() const
{
    size_t bytes = sizeof(*this) + order_.capacity() * sizeof(size_t);
    for (size_t i = 0; i < rows_.size(); ++i) {
        std::lock_guard<std::mutex> lock(rowLocks_[i]);
        const Row &row = rows_[i];
        bytes += row.builder.memoryBytes();
        for (const auto &frontier : row.frontiers) {
            // Shared rows are accounted once, by the store.
            bytes += store_ ? sizeof(frontier)
                            : frontier->memoryBytes();
        }
    }
    return bytes;
}

} // namespace core
} // namespace mclp
