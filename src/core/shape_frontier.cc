#include "core/shape_frontier.h"

#include <algorithm>
#include <cstring>

#include "core/frontier_cache.h"
#include "model/dsp_model.h"
#include "util/logging.h"
#include "util/math.h"
#include "util/prof.h"
#include "util/simd.h"

namespace mclp {
namespace core {

const BreakpointCache::Table &
BreakpointCache::table(int64_t d)
{
    auto it = tables_.find(d);
    if (it != tables_.end())
        return it->second;
    if (d < 1)
        util::panic("BreakpointCache: dimension must be positive");

    // Jump divisor-style: from breakpoint t with q = ceil(d/t), the
    // next tile size with a smaller ceiling is (d-1)/(q-1) + 1.
    Table table;
    int64_t t = 1;
    while (t <= d) {
        int64_t q = util::ceilDiv(d, t);
        table.bps.push_back(t);
        table.ceils.push_back(q);
        if (q == 1)
            break;
        t = (d - 1) / (q - 1) + 1;
    }
    return tables_.emplace(d, std::move(table)).first->second;
}

void
ShapeFrontier::Builder::reset()
{
    layers_.clear();
    seenN_.clear();
    seenM_.clear();
    maxN_ = 0;
    maxM_ = 0;
    unitsCap_ = kUnboundedResources;
    tnBps_.clear();
    tmBps_.clear();
    geomInit_ = false;
    live_.clear();
    liveW_.clear();
    livePk_.clear();
    liveTi_.clear();
    liveMi_.clear();
    livePacked_ = true;
    pending_ = false;
}

void
ShapeFrontier::Builder::setUnitsCap(int64_t cap)
{
    if (!layers_.empty())
        util::panic("ShapeFrontier::Builder: units cap must be set "
                    "before the first layer");
    unitsCap_ = cap < 1 ? 1 : cap;
}

void
ShapeFrontier::Builder::seedDimensions(int64_t n, int64_t m,
                                       BreakpointCache &scratch)
{
    if (geomInit_)
        util::panic("ShapeFrontier::Builder: dimensions must be seeded "
                    "before the first layer");
    if (std::find(seenN_.begin(), seenN_.end(), n) == seenN_.end()) {
        seenN_.push_back(n);
        mergeBps(tnBps_, scratch.table(n).bps);
    }
    if (std::find(seenM_.begin(), seenM_.end(), m) == seenM_.end()) {
        seenM_.push_back(m);
        mergeBps(tmBps_, scratch.table(m).bps);
    }
}

bool
ShapeFrontier::Builder::mergeBps(std::vector<int64_t> &into,
                                 const std::vector<int64_t> &from)
{
    size_t before = into.size();
    size_t mid = before;
    into.insert(into.end(), from.begin(), from.end());
    std::inplace_merge(into.begin(),
                       into.begin() + static_cast<ptrdiff_t>(mid),
                       into.end());
    into.erase(std::unique(into.begin(), into.end()), into.end());
    return into.size() != before;
}

void
ShapeFrontier::Builder::expandLive(const std::vector<int64_t> &old_tn,
                                   const std::vector<int64_t> &old_tm)
{
    // Cycle counts are constant between breakpoints, so a new cell's
    // value is the value at the largest old breakpoint pair at or
    // under it. Old lists are subsets of the new ones, so ascending
    // cursors map every new row and column once.
    //
    // live_ holds the old values in the old units-ascending order and
    // must end up holding the new values in the new one — two sorted
    // orders with no structural relation. The remap goes through a
    // grid-shaped scratch: scatter the old values to their old grid
    // offsets (liveTi_/liveMi_ still describe the old geometry here),
    // then gather each new cell's source. A new live cell's source is live
    // too (its old tn and tm are at most the new ones, so its units
    // are under the same cap), so dead scratch cells are never read
    // and the scratch needs no clearing.
    size_t new_t = tnBps_.size();
    size_t new_w = tmBps_.size();
    size_t old_t = old_tn.size();
    size_t old_w = old_tm.size();

    grid_.resize(old_t * old_w);
    {
        int64_t *grid = grid_.data();
        const int64_t *vals = live_.data();
        size_t old_live = live_.size();
        if (livePacked_) {
            const uint32_t *pk = livePk_.data();
            for (size_t k = 0; k < old_live; ++k) {
                uint32_t p = pk[k];
                grid[(p >> 16) * old_w + (p & 0xFFFFu)] = vals[k];
            }
        } else {
            const int32_t *ti_arr = liveTi_.data();
            const int32_t *mi_arr = liveMi_.data();
            for (size_t k = 0; k < old_live; ++k)
                grid[static_cast<size_t>(ti_arr[k]) * old_w +
                     static_cast<size_t>(mi_arr[k])] = vals[k];
        }
    }

    recomputeLiveGeometry();

    mcolScratch_.resize(new_w);
    for (size_t mi = 0, o = 0; mi < new_w; ++mi) {
        while (o + 1 < old_w && old_tm[o + 1] <= tmBps_[mi])
            ++o;
        mcolScratch_[mi] = o;
    }
    rowScratch_.resize(new_t);
    for (size_t ti = 0, o = 0; ti < new_t; ++ti) {
        while (o + 1 < old_t && old_tn[o + 1] <= tnBps_[ti])
            ++o;
        rowScratch_[ti] = o * old_w;
    }

    size_t new_live = liveCount();
    live_.resize(new_live);
    const size_t *mcol = mcolScratch_.data();
    const size_t *row = rowScratch_.data();
    const int64_t *grid = grid_.data();
    int64_t *vals = live_.data();
    if (livePacked_) {
        const uint32_t *pk = livePk_.data();
        for (size_t k = 0; k < new_live; ++k) {
            uint32_t p = pk[k];
            vals[k] = grid[row[p >> 16] + mcol[p & 0xFFFFu]];
        }
    } else {
        const int32_t *ti_arr = liveTi_.data();
        const int32_t *mi_arr = liveMi_.data();
        for (size_t k = 0; k < new_live; ++k)
            vals[k] = grid[row[ti_arr[k]] + mcol[mi_arr[k]]];
    }
}

namespace {

/**
 * Up to this unit range the live cells are ordered with a counting
 * sort over unit counts; above it (budget-free builds of wide
 * networks) a comparison sort takes over. Every budget-capped build
 * of a real device sits far below the limit (a 10,000-DSP float
 * budget is 2,000 units), and budget-free geometries are built once
 * per session.
 */
constexpr int64_t kDenseUnitsLimit = 1 << 16;

} // namespace

void
ShapeFrontier::Builder::recomputeLiveGeometry()
{
    size_t t = tnBps_.size();
    size_t w = tmBps_.size();
    liveW_.resize(t);
    size_t total = 0;
    int64_t max_units = 0;
    // cap/tn only shrinks as tn grows, so the live width is
    // nonincreasing: one descending cursor maps every row without a
    // per-row binary search.
    size_t lw = w;
    for (size_t ti = 0; ti < t; ++ti) {
        int64_t tn = tnBps_[ti];
        if (tn > unitsCap_) {
            // Rows ascend in tn, so this and every later row is dead.
            for (; ti < t; ++ti)
                liveW_[ti] = 0;
            break;
        }
        int64_t tm_cap = unitsCap_ / tn;
        while (lw > 0 && tmBps_[lw - 1] > tm_cap)
            --lw;
        liveW_[ti] = lw;
        total += lw;
        if (lw > 0)
            max_units = std::max(max_units, tn * tmBps_[lw - 1]);
    }
    // Both indices in 16 bits covers any real geometry (65536 merged
    // breakpoints per dimension needs channel counts near 2^31); the
    // hot passes are bandwidth-bound, so half-width indices are a
    // direct win. The int32 pair lanes remain as the fallback.
    livePacked_ = t <= (1u << 16) && w <= (1u << 16);
    if (livePacked_) {
        livePk_.resize(total);
        liveTi_.clear();
        liveMi_.clear();
    } else {
        liveTi_.resize(total);
        liveMi_.resize(total);
        livePk_.clear();
    }
    if (total == 0)
        return;
    uint32_t *pk = livePk_.data();
    int32_t *ti_lane = liveTi_.data();
    int32_t *mi_lane = liveMi_.data();
    auto place = [&](size_t pos, size_t ti, size_t mi) {
        if (livePacked_) {
            pk[pos] = static_cast<uint32_t>((ti << 16) | mi);
        } else {
            ti_lane[pos] = static_cast<int32_t>(ti);
            mi_lane[pos] = static_cast<int32_t>(mi);
        }
    };

    if (max_units <= kDenseUnitsLimit) {
        // Stable counting sort: count per unit value, prefix-sum into
        // start offsets, then place cells in discovery order (ti, then
        // mi) — which is exactly the tie-break order build() wants
        // within an equal-units group.
        size_t slots = static_cast<size_t>(max_units) + 1;
        countScratch_.assign(slots, 0);
        for (size_t ti = 0; ti < t; ++ti) {
            int64_t tn = tnBps_[ti];
            size_t lw = liveW_[ti];
            for (size_t mi = 0; mi < lw; ++mi)
                ++countScratch_[static_cast<size_t>(tn * tmBps_[mi])];
        }
        int32_t acc = 0;
        for (size_t u = 0; u < slots; ++u) {
            int32_t c = countScratch_[u];
            countScratch_[u] = acc;
            acc += c;
        }
        for (size_t ti = 0; ti < t; ++ti) {
            int64_t tn = tnBps_[ti];
            size_t lw = liveW_[ti];
            for (size_t mi = 0; mi < lw; ++mi) {
                int64_t u = tn * tmBps_[mi];
                size_t pos = static_cast<size_t>(
                    countScratch_[static_cast<size_t>(u)]++);
                place(pos, ti, mi);
            }
        }
        return;
    }

    // Huge unit range: comparison sort. stable_sort preserves the
    // same discovery order within equal units as the counting path.
    sortScratch_.clear();
    sortScratch_.reserve(total);
    for (size_t ti = 0; ti < t; ++ti) {
        int64_t tn = tnBps_[ti];
        size_t lw = liveW_[ti];
        for (size_t mi = 0; mi < lw; ++mi)
            sortScratch_.emplace_back(tn * tmBps_[mi],
                                      static_cast<int32_t>(ti * w + mi));
    }
    std::stable_sort(sortScratch_.begin(), sortScratch_.end(),
                     [](const std::pair<int64_t, int32_t> &a,
                        const std::pair<int64_t, int32_t> &b) {
                         return a.first < b.first;
                     });
    for (size_t p = 0; p < total; ++p) {
        size_t off = static_cast<size_t>(sortScratch_[p].second);
        place(p, off / w, off % w);
    }
}

void
ShapeFrontier::Builder::addLayer(const nn::ConvLayer &layer,
                                 BreakpointCache &scratch)
{
    // The previous layer's staged update must land before the
    // geometry (and the staging scratch) can change.
    flushPending();
    layers_.push_back(&layer);
    // A grouped layer contributes exactly like a plain layer over its
    // per-group extents (N/G, M/G) with its cycle area scaled by G —
    // the G groups run sequentially on the same shape. Everything
    // below therefore works in per-group dimensions; G=1 reduces to
    // the original math untouched.
    const int64_t group_n = layer.groupN();
    const int64_t group_m = layer.groupM();
    maxN_ = std::max(maxN_, group_n);
    maxM_ = std::max(maxM_, group_m);

    const BreakpointCache::Table &ntab = scratch.table(group_n);
    const BreakpointCache::Table &mtab = scratch.table(group_m);

    // A repeated dimension value adds no new breakpoints; the live
    // cells keep their geometry and only absorb the rank-1 update
    // staged below.
    bool n_new = std::find(seenN_.begin(), seenN_.end(), group_n) ==
                 seenN_.end();
    bool m_new = std::find(seenM_.begin(), seenM_.end(), group_m) ==
                 seenM_.end();
    if (n_new || m_new) {
        std::vector<int64_t> old_tn;
        std::vector<int64_t> old_tm;
        if (geomInit_) {
            old_tn = tnBps_;
            old_tm = tmBps_;
        }
        bool changed = false;
        if (n_new) {
            seenN_.push_back(group_n);
            changed |= mergeBps(tnBps_, ntab.bps);
        }
        if (m_new) {
            seenM_.push_back(group_m);
            changed |= mergeBps(tmBps_, mtab.bps);
        }
        if (geomInit_ && changed)
            expandLive(old_tn, old_tm);
    }
    if (!geomInit_) {
        // First layer — with seeded dimensions this is the only
        // geometry computation of the whole run.
        recomputeLiveGeometry();
        live_.assign(liveCount(), 0);
        geomInit_ = true;
    }

    // Stage the rank-1 update cycles(tn, tm) += G*R*C*K^2 *
    // ceil((N/G)/tn) * ceil((M/G)/tm): per-column M ceilings and
    // per-row areas come from the layer's own tables with moving
    // cursors — no divisions. The live values are untouched until
    // flushPending() or a fused build() applies the staged update.
    size_t w = tmBps_.size();
    scratch_.resize(w);
    for (size_t mi = 0, k = 0; mi < w; ++mi) {
        while (k + 1 < mtab.bps.size() && mtab.bps[k + 1] <= tmBps_[mi])
            ++k;
        scratch_[mi] = mtab.ceils[k];
    }
    int64_t rck2 = layer.g * layer.r * layer.c * layer.k * layer.k;
    areas_.resize(tnBps_.size());
    for (size_t ti = 0, k = 0; ti < tnBps_.size(); ++ti) {
        if (liveW_[ti] == 0)
            break;  // no affordable shape in this or any later row
        int64_t tn = tnBps_[ti];
        while (k + 1 < ntab.bps.size() && ntab.bps[k + 1] <= tn)
            ++k;
        areas_[ti] = rck2 * ntab.ceils[k];
    }
    pending_ = true;
}

void
ShapeFrontier::Builder::flushPending()
{
    if (!pending_)
        return;
    pending_ = false;
    // Same per-cell update a fused build() performs, minus the
    // staircase test. The staged arrays are indexed in the current
    // geometry: addLayer() flushes before any breakpoint merge, so a
    // staged update never crosses a remap.
    int64_t *vals = live_.data();
    const int64_t *areas = areas_.data();
    const int64_t *mceil = scratch_.data();
    size_t n_live = live_.size();
    if (livePacked_) {
        const uint32_t *pk = livePk_.data();
        for (size_t k = 0; k < n_live; ++k) {
            uint32_t p = pk[k];
            vals[k] += areas[p >> 16] * mceil[p & 0xFFFFu];
        }
    } else {
        const int32_t *ti_arr = liveTi_.data();
        const int32_t *mi_arr = liveMi_.data();
        for (size_t k = 0; k < n_live; ++k)
            vals[k] += areas[ti_arr[k]] * mceil[mi_arr[k]];
    }
}

ShapeFrontier
ShapeFrontier::Builder::build(fpga::DataType type, int64_t units_budget)
{
    ShapeFrontier frontier;
    if (layers_.empty())
        util::panic("ShapeFrontier: empty layer range");
    if (units_budget > unitsCap_)
        util::panic("ShapeFrontier: units budget %lld above the "
                    "builder's cap %lld (cells beyond the cap were "
                    "never maintained)",
                    static_cast<long long>(units_budget),
                    static_cast<long long>(unitsCap_));
    if (units_budget < 1)
        return frontier;  // not a single MAC unit

    int64_t per_mac = fpga::dspPerMac(type);
    // At most one staircase point per live cell: grow-only sizing lets
    // the walk emit through raw pointers with no growth checks.
    if (outDsp_.size() < live_.size()) {
        outTn_.resize(live_.size());
        outTm_.resize(live_.size());
        outDsp_.resize(live_.size());
        outCycles_.resize(live_.size());
    }
    int32_t *out_tn = outTn_.data();
    int32_t *out_tm = outTm_.data();
    int64_t *out_dsp = outDsp_.data();
    int64_t *out_cycles = outCycles_.data();
    size_t out_count = 0;

    // One pass over the live cells in the precomputed units-ascending
    // order, keeping a running cycle minimum. A cell emits only when
    // it strictly beats the minimum, which leaves exactly the Pareto
    // staircase: strictly increasing DSP, strictly decreasing cycles.
    // Two strict improvements inside one equal-units run would emit
    // the same DSP twice; the later one overwrites the first in
    // place, so per unit count the fewest-cycles shape wins — ties
    // toward the first cell in discovery order (ti, then mi), i.e.
    // the smallest Tn, because later equal cycles never beat the
    // running minimum. The common case (no improvement) is a single
    // rarely-taken branch per cell; reinterpreting the initial -1 as
    // UINT64_MAX folds "first emission" into the same compare (cycle
    // counts are positive). A budget below the cap is a prefix of the
    // walk — units ascend, so the first over-budget improvement ends
    // it.
    size_t n_live = live_.size();
    int64_t best_cycles = -1;
    auto improve = [&](size_t ti, size_t mi, int64_t cycles) {
        int64_t tn = tnBps_[ti];
        int64_t tm = tmBps_[mi];
        int64_t u = tn * tm;
        if (u > units_budget) {
            // Nothing past the budget may emit; cycle counts are
            // positive, so a zero minimum mutes every later cell
            // without stopping a fused pass's value writes.
            best_cycles = 0;
            return;
        }
        best_cycles = cycles;
        int64_t dsp = per_mac * u;
        // A strict improvement inside the same equal-units run would
        // repeat a DSP value: overwrite that point instead of
        // appending a second one.
        size_t slot = out_count;
        if (out_count > 0 && out_dsp[out_count - 1] == dsp)
            slot = out_count - 1;
        else
            ++out_count;
        out_tn[slot] = static_cast<int32_t>(tn);
        out_tm[slot] = static_cast<int32_t>(tm);
        out_dsp[slot] = dsp;
        out_cycles[slot] = cycles;
    };
    // The walk body is generic over the index encoding (packed 16-bit
    // halves or int32 pair lanes); both instantiations inline.
    auto walk = [&](auto cell) {
        if (pending_) {
            // The newest layer's staged rank-1 update rides the walk:
            // one streaming pass updates each live value and tests
            // it, instead of an update pass followed by a read pass.
            pending_ = false;
            int64_t *vals = live_.data();
            const int64_t *areas = areas_.data();
            const int64_t *mceil = scratch_.data();
            for (size_t k = 0; k < n_live; ++k) {
                auto [ti, mi] = cell(k);
                int64_t cycles = vals[k] + areas[ti] * mceil[mi];
                vals[k] = cycles;
                if (static_cast<uint64_t>(cycles) <
                    static_cast<uint64_t>(best_cycles)) [[unlikely]]
                    improve(ti, mi, cycles);
            }
        } else {
            const int64_t *vals = live_.data();
            for (size_t k = 0; k < n_live; ++k) {
                int64_t cycles = vals[k];
                if (static_cast<uint64_t>(cycles) <
                    static_cast<uint64_t>(best_cycles)) [[unlikely]] {
                    auto [ti, mi] = cell(k);
                    improve(ti, mi, cycles);
                }
            }
        }
    };
    if (livePacked_) {
        const uint32_t *pk = livePk_.data();
        walk([pk](size_t k) {
            uint32_t p = pk[k];
            return std::pair<size_t, size_t>(p >> 16, p & 0xFFFFu);
        });
    } else {
        const int32_t *ti_arr = liveTi_.data();
        const int32_t *mi_arr = liveMi_.data();
        walk([ti_arr, mi_arr](size_t k) {
            return std::pair<size_t, size_t>(
                static_cast<size_t>(ti_arr[k]),
                static_cast<size_t>(mi_arr[k]));
        });
    }
    frontier.adopt(out_tn, out_tm, out_dsp, out_cycles, out_count);
    return frontier;
}

ShapeFrontier::ShapeFrontier(
    const std::vector<const nn::ConvLayer *> &layers, fpga::DataType type,
    int64_t units_budget, BreakpointCache &scratch)
{
    Builder builder;
    builder.setUnitsCap(units_budget);
    for (const nn::ConvLayer *layer : layers)
        builder.seedDimensions(layer->groupN(), layer->groupM(),
                               scratch);
    for (const nn::ConvLayer *layer : layers)
        builder.addLayer(*layer, scratch);
    *this = builder.build(type, units_budget);
}

void
ShapeFrontier::adopt(const int32_t *tn, const int32_t *tm,
                     const int64_t *dsp, const int64_t *cycles,
                     size_t count)
{
    size_ = count;
    if (count == 0) {
        tn_ = tm_ = nullptr;
        dsp_ = cycles_ = nullptr;
        return;
    }
    // One exact-size block: the int64 lanes first (the block is
    // 8-aligned), then the int32 lanes — kBytesPerPoint per point,
    // nothing else.
    unsigned char *block = static_cast<unsigned char *>(
        arena_.allocate(count * kBytesPerPoint, alignof(int64_t)));
    dsp_ = reinterpret_cast<int64_t *>(block);
    cycles_ = dsp_ + count;
    tn_ = reinterpret_cast<int32_t *>(cycles_ + count);
    tm_ = tn_ + count;
    std::memcpy(dsp_, dsp, count * sizeof(int64_t));
    std::memcpy(cycles_, cycles, count * sizeof(int64_t));
    std::memcpy(tn_, tn, count * sizeof(int32_t));
    std::memcpy(tm_, tm, count * sizeof(int32_t));
}

std::vector<FrontierPoint>
ShapeFrontier::points() const
{
    std::vector<FrontierPoint> out;
    out.reserve(size_);
    for (size_t i = 0; i < size_; ++i)
        out.push_back(point(i));
    return out;
}

std::optional<FrontierPoint>
ShapeFrontier::query(int64_t cycle_target, int64_t max_dsp) const
{
    // DSP increases strictly along the frontier, so the shapes
    // affordable under max_dsp are a prefix; cycles decrease, so the
    // first prefix point at or under the target is the cheapest one
    // (ties already resolved toward fewer cycles, then smaller Tn,
    // during construction).
    size_t end = static_cast<size_t>(
        std::partition_point(dsp_, dsp_ + size_,
                             [&](int64_t d) { return d <= max_dsp; }) -
        dsp_);
    size_t i = static_cast<size_t>(
        std::partition_point(
            cycles_, cycles_ + end,
            [&](int64_t c) { return c > cycle_target; }) -
        cycles_);
    if (i == end)
        return std::nullopt;
    return point(i);
}

int64_t
ShapeFrontier::minCycles(int64_t max_dsp) const
{
    size_t end = static_cast<size_t>(
        std::partition_point(dsp_, dsp_ + size_,
                             [&](int64_t d) { return d <= max_dsp; }) -
        dsp_);
    if (end == 0)
        return kUnboundedResources;  // nothing affordable
    return cycles_[end - 1];
}

size_t
ShapeFrontier::Builder::memoryBytes() const
{
    return sizeof(*this) +
           (layers_.capacity() + seenN_.capacity() + seenM_.capacity()) *
               sizeof(int64_t) +
           (tnBps_.capacity() + tmBps_.capacity() + live_.capacity() +
            grid_.capacity() + scratch_.capacity() + areas_.capacity() +
            outDsp_.capacity() + outCycles_.capacity()) *
               sizeof(int64_t) +
           (mcolScratch_.capacity() + rowScratch_.capacity() +
            liveW_.capacity()) *
               sizeof(size_t) +
           (livePk_.capacity() + liveTi_.capacity() +
            liveMi_.capacity() + countScratch_.capacity() +
            outTn_.capacity() + outTm_.capacity()) *
               sizeof(int32_t) +
           sortScratch_.capacity() *
               sizeof(std::pair<int64_t, int32_t>);
}

std::optional<ShapeFrontier>
ShapeFrontier::fromPoints(std::vector<FrontierPoint> points)
{
    constexpr int64_t kShapeMax = std::numeric_limits<int32_t>::max();
    for (size_t i = 0; i < points.size(); ++i) {
        const FrontierPoint &point = points[i];
        if (point.shape.tn < 1 || point.shape.tm < 1 ||
            point.shape.tn > kShapeMax || point.shape.tm > kShapeMax ||
            point.dsp < 1 || point.cycles < 1)
            return std::nullopt;
        if (i > 0 && (point.dsp <= points[i - 1].dsp ||
                      point.cycles >= points[i - 1].cycles))
            return std::nullopt;  // not a staircase
    }
    std::vector<int32_t> tn(points.size()), tm(points.size());
    std::vector<int64_t> dsp(points.size()), cycles(points.size());
    for (size_t i = 0; i < points.size(); ++i) {
        tn[i] = static_cast<int32_t>(points[i].shape.tn);
        tm[i] = static_cast<int32_t>(points[i].shape.tm);
        dsp[i] = points[i].dsp;
        cycles[i] = points[i].cycles;
    }
    ShapeFrontier frontier;
    frontier.adopt(tn.data(), tm.data(), dsp.data(), cycles.data(),
                   points.size());
    return frontier;
}

void
FrontierRowStore::attachCache(std::shared_ptr<FrontierCache> cache)
{
    std::lock_guard<std::mutex> lock(mutex_);
    cache_ = std::move(cache);
}

std::shared_ptr<const ShapeFrontier>
FrontierRowStore::lookup(const std::vector<int64_t> &key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = rows_.find(key);
    if (it != rows_.end()) {
        ++hits_;
        return it->second;
    }
    if (cache_) {
        // Read through to the persistent tiers: a loaded staircase is
        // as good as a resident one (immutable, validated at decode),
        // so it joins the store and counts as a hit — no build
        // happened. The tier the cache answered from (mmap'd segment
        // vs eagerly decoded record file) splits the hit counters so
        // cache-stats can show the whole ladder.
        CacheTier tier = CacheTier::None;
        if (auto row = cache_->loadRow(key, &tier)) {
            rows_.emplace(key, row);
            ++hits_;
            if (tier == CacheTier::Mmap)
                ++mmapHits_;
            else if (tier == CacheTier::Sibling)
                ++siblingHits_;
            else
                ++diskHits_;
            return row;
        }
    }
    ++misses_;
    return nullptr;
}

std::shared_ptr<const ShapeFrontier>
FrontierRowStore::insert(const std::vector<int64_t> &key,
                         ShapeFrontier frontier)
{
    auto row = std::make_shared<const ShapeFrontier>(std::move(frontier));
    std::lock_guard<std::mutex> lock(mutex_);
    // The first insert wins, so racing builders (which produced
    // bit-identical frontiers anyway) converge on one shared row.
    auto [it, inserted] = rows_.emplace(key, std::move(row));
    if (inserted && cache_)
        cache_->noteRow(key, it->second);  // write-back at flush
    return it->second;
}

FrontierRowStore::Stats
FrontierRowStore::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    Stats stats;
    stats.hits = hits_;
    stats.misses = misses_;
    stats.rows = rows_.size();
    stats.diskHits = diskHits_;
    stats.mmapHits = mmapHits_;
    stats.siblingHits = siblingHits_;
    return stats;
}

size_t
FrontierRowStore::memoryBytes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    size_t bytes = 0;
    for (const auto &entry : rows_) {
        bytes += entry.first.capacity() * sizeof(int64_t) +
                 4 * sizeof(void *);
        // With a disk cache attached, every row is pinned by the
        // cache's in-memory mirror (loaded rows and pending
        // write-backs) for the process lifetime, so eviction cannot
        // free it. Counting pinned rows against the SessionRegistry's
        // byte budget would make the cap unreachable and turn the
        // eviction loop into pure session thrash; the mirror is the
        // price of --cache-dir, bounded by the cache file, and
        // accounted to the cache, not to evictable registry state.
        if (!cache_)
            bytes += entry.second->memoryBytes();
    }
    return bytes;
}

size_t
FrontierRowStore::purgeUnshared()
{
    std::lock_guard<std::mutex> lock(mutex_);
    size_t freed = 0;
    for (auto it = rows_.begin(); it != rows_.end();) {
        if (it->second.use_count() == 1) {
            it = rows_.erase(it);
            ++freed;
        } else {
            ++it;
        }
    }
    return freed;
}

FrontierTable::FrontierTable(const nn::Network &network,
                             fpga::DataType type, std::vector<size_t> order,
                             int max_clps,
                             std::shared_ptr<FrontierRowStore> store)
    : network_(network), type_(type), order_(std::move(order)),
      maxClps_(max_clps), store_(std::move(store)),
      rows_(order_.size()),
      rowLocks_(std::make_unique<std::mutex[]>(order_.size()))
{
    if (order_.size() != network_.numLayers())
        util::panic("FrontierTable: order length %zu != layer count %zu",
                    order_.size(), network_.numLayers());
    // Warm the breakpoint tables for every dimension the builders will
    // touch, so the parallel phase only reads them.
    for (size_t idx : order_) {
        breakpoints_.breakpoints(network_.layer(idx).groupN());
        breakpoints_.breakpoints(network_.layer(idx).groupM());
    }
}

bool
FrontierTable::usable(size_t i, size_t j) const
{
    size_t count = order_.size();
    return (i == 0 && j == count - 1) ||
           (maxClps_ >= 2 && (i == 0 || j == count - 1)) || maxClps_ >= 3;
}

std::vector<int64_t>
FrontierTable::rangeKey(size_t i, size_t j, int64_t units_cap) const
{
    // Everything a range frontier depends on: data type (DSP per MAC),
    // the cap it was built under, and per layer the two breakpoint
    // dimensions plus the per-ceiling cycle weight R*C*K^2 and the
    // group count (cache key format v4: the g lane makes grouped and
    // plain layers distinct rows). Network identity and layer indices
    // never enter, so dims-identical ranges of different networks
    // share one row.
    std::vector<int64_t> key;
    key.reserve(2 + 4 * (j - i + 1));
    key.push_back(static_cast<int64_t>(type_));
    key.push_back(units_cap);
    for (size_t p = i; p <= j; ++p) {
        const nn::ConvLayer &layer = network_.layer(order_[p]);
        key.push_back(layer.n);
        key.push_back(layer.m);
        key.push_back(layer.r * layer.c * layer.k * layer.k);
        key.push_back(layer.g);
    }
    return key;
}

void
FrontierTable::extendRowLocked(size_t i, int64_t dsp_budget,
                               int64_t cycle_target)
{
    util::prof::Scope prof_scope(util::prof::Phase::FrontierBuild);
    Row &row = rows_[i];
    int64_t needed = model::macBudget(dsp_budget, type_);
    if (row.builtUnits < needed) {
        // Built under a smaller cap than this budget can afford: the
        // stored staircases may miss now-affordable shapes. Rebuild
        // the row at the table cap (>= needed, since callers reserve
        // before querying). Only this row pays; others rebuild when
        // (and if) a big-budget query reaches them.
        row.builder.reset();
        row.builderLayers = 0;
        row.frontiers.clear();
        row.exhausted = false;
        row.builtUnits = std::max(buildUnits_.load(), needed);
        // Every build of this row uses exactly builtUnits, so the
        // builder can skip maintaining cells beyond it (most of the
        // grid under a real budget).
        row.builder.setUnitsCap(row.builtUnits);
    }
    if (row.exhausted)
        return;
    size_t count = order_.size();
    while (true) {
        if (!row.frontiers.empty() &&
            row.frontiers.back()->minCycles(dsp_budget) > cycle_target)
            return;  // resume when the target loosens or budget grows
        // The usable j for a row are contiguous up from i (maxClps >= 3
        // or i == 0), or just the full-suffix range {count-1}.
        size_t j = usable(i, i) ? i + row.frontiers.size() : count - 1;
        if (!row.frontiers.empty() && !usable(i, j)) {
            row.exhausted = true;  // next usable j is not contiguous
            return;
        }
        // Bring the incremental builder up to [i..j], unless the row
        // store already has this range (then the grid work waits until
        // a miss actually needs it).
        std::shared_ptr<const ShapeFrontier> frontier;
        if (store_)
            frontier = store_->lookup(rangeKey(i, j, row.builtUnits));
        if (!frontier) {
            for (size_t p = i + row.builderLayers; p <= j; ++p)
                row.builder.addLayer(network_.layer(order_[p]),
                                     breakpoints_);
            row.builderLayers = j - i + 1;
            ShapeFrontier built =
                row.builder.build(type_, row.builtUnits);
            frontier = store_ ? store_->insert(
                                    rangeKey(i, j, row.builtUnits),
                                    std::move(built))
                              : std::make_shared<const ShapeFrontier>(
                                    std::move(built));
        }
        row.frontiers.push_back(std::move(frontier));
        if (row.frontiers.back()->empty()) {
            // No affordable shape at any target (sub-MAC cap only);
            // extensions only add cycles, so this row is finished.
            row.exhausted = true;
            return;
        }
        if (j + 1 >= count) {
            row.exhausted = true;
            return;
        }
    }
}

void
FrontierTable::reserveUnits(int64_t units_cap)
{
    // Grow-only watermark; rows rebuild lazily when a query needs more
    // units than they were built under (see extendRowLocked()).
    int64_t cur = buildUnits_.load();
    while (units_cap > cur &&
           !buildUnits_.compare_exchange_weak(cur, units_cap)) {
    }
}

void
FrontierTable::prepare(int64_t dsp_budget, int64_t cycle_target,
                       util::ThreadPool *pool)
{
    reserveUnits(model::macBudget(dsp_budget, type_));
    size_t count = order_.size();
    std::vector<size_t> pending;
    for (size_t i = 0; i < count; ++i) {
        if (usable(i, i) || usable(i, count - 1))
            pending.push_back(i);
    }
    // Each task locks only its own row, so concurrent prepare() calls
    // (a sweep fanning budgets over a pool) extend disjoint rows in
    // parallel and collide — briefly — only on shared rows.
    auto extend = [&](size_t p) {
        size_t i = pending[p];
        std::lock_guard<std::mutex> lock(rowLocks_[i]);
        extendRowLocked(i, dsp_budget, cycle_target);
    };
    if (pool && pending.size() > 1)
        pool->parallelFor(pending.size(), extend);
    else
        for (size_t p = 0; p < pending.size(); ++p)
            extend(p);
}

std::optional<FrontierPoint>
FrontierTable::choose(size_t i, size_t j, int64_t dsp_budget,
                      int64_t cycle_target)
{
    if (!usable(i, j))
        return std::nullopt;
    // Rows are contiguous from j = i when usable(i, i); otherwise the
    // only usable range is the full suffix, stored at slot 0.
    size_t idx = usable(i, i) ? j - i : 0;
    std::shared_ptr<const ShapeFrontier> frontier;
    {
        std::lock_guard<std::mutex> lock(rowLocks_[i]);
        Row &row = rows_[i];
        if (idx >= row.frontiers.size() ||
            row.builtUnits < model::macBudget(dsp_budget, type_)) {
            // Not built far enough for this (budget, target) — a
            // concurrent rebuild, a bigger budget, or a prepare() that
            // stopped earlier. Extend in place; if the row still ends
            // short, some prefix range already misses the target under
            // this budget, and extensions only add cycles, so [i..j]
            // is provably infeasible.
            extendRowLocked(i, dsp_budget, cycle_target);
            if (idx >= row.frontiers.size())
                return std::nullopt;
        }
        frontier = row.frontiers[idx];
    }
    // The frontier itself is immutable; query outside the row lock.
    return frontier->query(cycle_target, dsp_budget);
}

size_t
FrontierTable::memoryBytes() const
{
    size_t bytes = sizeof(*this) + order_.capacity() * sizeof(size_t);
    for (size_t i = 0; i < rows_.size(); ++i) {
        std::lock_guard<std::mutex> lock(rowLocks_[i]);
        const Row &row = rows_[i];
        bytes += row.builder.memoryBytes();
        for (const auto &frontier : row.frontiers) {
            // Shared rows are accounted once, by the store.
            bytes += store_ ? sizeof(frontier)
                            : frontier->memoryBytes();
        }
    }
    return bytes;
}

} // namespace core
} // namespace mclp
