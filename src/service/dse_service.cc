#include "service/dse_service.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <istream>
#include <ostream>

#include "core/frontier_cache.h"
#include "core/schedule.h"
#include "model/bram_model.h"
#include "model/dsp_model.h"
#include "service/dse_codec.h"
#include "util/logging.h"
#include "util/prof.h"
#include "util/string_utils.h"

namespace mclp {
namespace service {

namespace {

/** Best-effort id recovery from a line that failed to decode. */
std::string
scavengeId(const std::string &line)
{
    size_t pos = line.find("id=");
    if (pos == std::string::npos ||
        (pos > 0 && line[pos - 1] != ' '))
        return "-";
    size_t end = line.find(' ', pos);
    std::string id = line.substr(
        pos + 3, end == std::string::npos ? std::string::npos
                                          : end - pos - 3);
    return id.empty() ? "-" : id;
}

std::string
trimmed(const std::string &line)
{
    size_t begin = line.find_first_not_of(" \t\r");
    if (begin == std::string::npos)
        return "";
    size_t end = line.find_last_not_of(" \t\r");
    return line.substr(begin, end - begin + 1);
}

} // namespace

core::DseResponse
answerRequest(const core::DseRequest &request,
              core::SessionRegistry *registry)
{
    core::DseResponse response;
    response.id = request.id.empty() ? "-" : request.id;
    try {
        request.validate();
        // Joint requests (Section 4.3): resolveNetwork() returns the
        // weight-expanded concatenation, so from here the run is
        // indistinguishable from a single-network request over the
        // same layers — the registry keys it by the concatenated dims
        // signature, and the shared FrontierRowStore answers any
        // layer range already built by a constituent network's solo
        // session. The spans let clients attribute each CLP's global
        // layer indices back to the originating sub-network.
        nn::Network network =
            core::resolveNetwork(request, &response.subnets);
        response.network = network.name();
        std::vector<fpga::ResourceBudget> budgets =
            core::requestBudgets(request);
        core::OptimizerOptions options = core::requestOptions(request);

        std::vector<core::OptimizationResult> results;
        std::shared_ptr<core::DseSession> session;  // pins its network
        const nn::Network *result_network = &network;
        if (registry) {
            // The ladder maximum doubles as the admission-control
            // hint: the registry can cost the session before building
            // it (and evict or reject under a byte budget).
            int64_t max_dsp = 0;
            for (const fpga::ResourceBudget &budget : budgets)
                max_dsp = std::max(max_dsp, budget.dspSlices);
            session = registry->session(network, request.device,
                                        request.type, max_dsp);
            results = session->sweep(budgets, options);
            // Build the response against the network copy the session
            // owns (identical layers; the handle keeps it alive).
            result_network = &session->network();
        } else {
            results.reserve(budgets.size());
            for (const fpga::ResourceBudget &budget : budgets)
                results.push_back(
                    core::MultiClpOptimizer(network, request.type,
                                            budget, options)
                        .run());
        }

        response.points.reserve(results.size());
        for (size_t i = 0; i < results.size(); ++i) {
            core::DsePoint point;
            point.budget = budgets[i];
            point.design = core::canonicalizeSchedule(
                results[i].design, *result_network);
            point.epochCycles = results[i].metrics.epochCycles;
            point.dspUsed = model::designDsp(point.design);
            point.bramUsed =
                model::designBram(point.design, *result_network);
            point.schedule =
                core::analyzeSchedule(point.design, *result_network);
            response.points.push_back(std::move(point));
        }
        response.ok = true;
    } catch (const util::FatalError &err) {
        response.ok = false;
        response.points.clear();
        // Spans may have been filled before a later step threw; an
        // error response must not attribute a network it never
        // optimized.
        response.subnets.clear();
        response.error = err.what();
    }
    return response;
}

DseService::DseService(ServiceOptions options)
    : options_(options),
      cache_(options.cacheDir.empty()
                 ? nullptr
                 : std::make_shared<core::FrontierCache>(
                       options.cacheDir)),
      registry_(options.maxSessions, options.maxBytes,
                options.sessionThreads, cache_)
{
    if (util::resolveThreads(options_.threads) > 1)
        pool_ = std::make_unique<util::ThreadPool>(options_.threads);
    // Phase counters feed the stats verb; the scopes cost two clock
    // reads per coarse phase, so always-on is fine for a server.
    util::prof::setEnabled(true);
}

std::string
DseService::handleLine(const std::string &line)
{
    std::string text = trimmed(line);
    if (text.empty() || text[0] == '#')
        return "";
    if (text == "stats") {
        core::SessionRegistry::Stats reg = registry_.stats();
        core::FrontierRowStore::Stats rows =
            registry_.rowStore()->stats();
        return util::strprintf(
                   "ok stats sessions=%zu bytes=%zu hits=%zu misses=%zu "
                   "evictions=%zu rows=%zu row_hits=%zu row_misses=%zu "
                   "row_disk_hits=%zu",
                   reg.sessions, reg.bytes, reg.hits, reg.misses,
                   reg.evictions, rows.rows, rows.hits, rows.misses,
                   rows.diskHits) +
               " " + util::prof::statsTokens();
    }
    if (text == "cache-stats") {
        if (!cache_)
            return "ok cache-stats enabled=0";
        core::FrontierCache::Stats stats = cache_->stats();
        return util::strprintf(
            "ok cache-stats enabled=1 rows_loaded=%zu "
            "traces_loaded=%zu row_hits=%zu trace_hits=%zu "
            "rows_pending=%zu traces_noted=%zu flushes=%zu clean=%d",
            stats.rowsLoaded, stats.tracesLoaded, stats.rowHits,
            stats.traceHits, stats.rowsPending, stats.tracesNoted,
            stats.flushes, stats.loadedClean ? 1 : 0);
    }
    if (text == "shutdown")
        return "ok shutdown";
    try {
        core::DseRequest request = decodeRequest(text);
        // Execution resources are the dispatcher's policy, not the
        // client's: sessions stay serial under concurrent serving
        // (see ServiceOptions::sessionThreads), and a wire-supplied
        // thread count must never be able to exhaust the host.
        request.threads = options_.sessionThreads;
        return encodeResponse(answerRequest(
            request, options_.cold ? nullptr : &registry_));
    } catch (const util::FatalError &err) {
        core::DseResponse response;
        response.id = scavengeId(text);
        response.error = err.what();
        return encodeResponse(response);
    } catch (const std::exception &err) {
        // A long-lived server contains everything — allocation
        // failures, internal panics — as an err line; one bad request
        // must not take down the batch (and parallelFor's fn must not
        // throw).
        core::DseResponse response;
        response.id = scavengeId(text);
        response.error =
            std::string("internal error: ") + err.what();
        return encodeResponse(response);
    }
}

std::vector<std::string>
DseService::handleBatch(const std::vector<std::string> &lines)
{
    std::vector<std::string> responses(lines.size());
    if (pool_ && lines.size() > 1) {
        pool_->parallelFor(lines.size(), [&](size_t i) {
            responses[i] = handleLine(lines[i]);
        });
    } else {
        for (size_t i = 0; i < lines.size(); ++i)
            responses[i] = handleLine(lines[i]);
    }
    return responses;
}

void
DseService::serveStream(std::istream &in, std::ostream &out)
{
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    for (const std::string &response : handleBatch(lines)) {
        if (!response.empty())
            out << response << '\n';
    }
    out.flush();
}

int
DseService::serveSocket(const std::string &path, int max_connections)
{
    sockaddr_un addr{};
    if (path.size() >= sizeof(addr.sun_path)) {
        util::warn("mclp-serve: socket path '%s' too long",
                   path.c_str());
        return 1;
    }
    int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd < 0) {
        util::warn("mclp-serve: socket(): %s", std::strerror(errno));
        return 1;
    }
    ::unlink(path.c_str());
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::bind(listen_fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) < 0 ||
        ::listen(listen_fd, 8) < 0) {
        util::warn("mclp-serve: bind/listen on '%s': %s", path.c_str(),
                   std::strerror(errno));
        ::close(listen_fd);
        return 1;
    }

    bool shutdown_seen = false;
    int served = 0;
    while (!shutdown_seen &&
           (max_connections < 0 || served < max_connections)) {
        int conn = ::accept(listen_fd, nullptr, nullptr);
        if (conn < 0) {
            if (errno == EINTR)
                continue;
            util::warn("mclp-serve: accept(): %s",
                       std::strerror(errno));
            break;
        }
        // One connection = one batch: read until the client shuts
        // down its write side, answer every line in order, close.
        std::string input;
        char buffer[4096];
        bool conn_dead = false;
        while (true) {
            ssize_t got = ::read(conn, buffer, sizeof(buffer));
            if (got > 0) {
                input.append(buffer, static_cast<size_t>(got));
            } else if (got < 0 && errno == EINTR) {
                continue;  // a signal mid-read is not end-of-batch
            } else {
                if (got < 0) {
                    // A dying client (ECONNRESET et al.) costs only
                    // its own connection, never the server.
                    util::warn("mclp-serve: read(): %s",
                               std::strerror(errno));
                    conn_dead = true;
                }
                break;
            }
        }
        if (conn_dead) {
            ::close(conn);
            ++served;
            continue;
        }

        std::vector<std::string> lines;
        size_t pos = 0;
        while (pos < input.size()) {
            size_t end = input.find('\n', pos);
            if (end == std::string::npos)
                end = input.size();
            lines.push_back(input.substr(pos, end - pos));
            pos = end + 1;
        }
        for (const std::string &request : lines) {
            if (trimmed(request) == "shutdown")
                shutdown_seen = true;
        }
        std::string output;
        for (const std::string &response : handleBatch(lines)) {
            if (!response.empty()) {
                output += response;
                output += '\n';
            }
        }
        // MSG_NOSIGNAL: a client that disconnected mid-response turns
        // the write into EPIPE instead of a process-killing SIGPIPE
        // (the library must not rely on the front end's signal
        // disposition). Any write error is a per-connection failure:
        // log it, drop the connection, keep serving.
        size_t written = 0;
        while (written < output.size()) {
            ssize_t put = ::send(conn, output.data() + written,
                                 output.size() - written, MSG_NOSIGNAL);
            if (put < 0 && errno == EINTR)
                continue;
            if (put <= 0) {
                util::warn("mclp-serve: client dropped mid-response "
                           "(%zu of %zu bytes sent): %s",
                           written, output.size(),
                           put < 0 ? std::strerror(errno) : "EOF");
                break;
            }
            written += static_cast<size_t>(put);
        }
        ::close(conn);
        ++served;
    }
    ::close(listen_fd);
    ::unlink(path.c_str());
    return 0;
}

} // namespace service
} // namespace mclp
