#include "service/dse_service.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <istream>
#include <map>
#include <mutex>
#include <ostream>
#include <thread>

#include "core/frontier_cache.h"
#include "core/schedule.h"
#include "model/bram_model.h"
#include "model/dsp_model.h"
#include "service/dse_codec.h"
#include "service/server.h"
#include "util/logging.h"
#include "util/prof.h"
#include "util/string_utils.h"

namespace mclp {
namespace service {

std::string
scavengeId(const std::string &line)
{
    size_t pos = line.find("id=");
    if (pos == std::string::npos ||
        (pos > 0 && line[pos - 1] != ' '))
        return "-";
    size_t end = line.find(' ', pos);
    std::string id = line.substr(
        pos + 3, end == std::string::npos ? std::string::npos
                                          : end - pos - 3);
    return id.empty() ? "-" : id;
}

std::string
trimmedLine(const std::string &line)
{
    size_t begin = line.find_first_not_of(" \t\r");
    if (begin == std::string::npos)
        return "";
    size_t end = line.find_last_not_of(" \t\r");
    return line.substr(begin, end - begin + 1);
}

core::DseResponse
answerRequest(const core::DseRequest &request,
              core::SessionRegistry *registry)
{
    core::DseResponse response;
    response.id = request.id.empty() ? "-" : request.id;
    try {
        request.validate();
        // Joint requests (Section 4.3): resolveNetwork() returns the
        // weight-expanded concatenation, so from here the run is
        // indistinguishable from a single-network request over the
        // same layers — the registry keys it by the concatenated dims
        // signature, and the shared FrontierRowStore answers any
        // layer range already built by a constituent network's solo
        // session. The spans let clients attribute each CLP's global
        // layer indices back to the originating sub-network.
        nn::Network network =
            core::resolveNetwork(request, &response.subnets);
        response.network = network.name();
        std::vector<fpga::ResourceBudget> budgets =
            core::requestBudgets(request);
        core::OptimizerOptions options = core::requestOptions(request);

        std::vector<core::OptimizationResult> results;
        std::shared_ptr<core::DseSession> session;  // pins its network
        const nn::Network *result_network = &network;
        if (registry) {
            // The ladder maximum doubles as the admission-control
            // hint: the registry can cost the session before building
            // it (and evict or reject under a byte budget).
            int64_t max_dsp = 0;
            for (const fpga::ResourceBudget &budget : budgets)
                max_dsp = std::max(max_dsp, budget.dspSlices);
            session = registry->session(network, request.device,
                                        request.type, max_dsp);
            results = session->sweep(budgets, options);
            // Build the response against the network copy the session
            // owns (identical layers; the handle keeps it alive).
            result_network = &session->network();
        } else {
            results.reserve(budgets.size());
            for (const fpga::ResourceBudget &budget : budgets)
                results.push_back(
                    core::MultiClpOptimizer(network, request.type,
                                            budget, options)
                        .run());
        }

        response.points.reserve(results.size());
        for (size_t i = 0; i < results.size(); ++i) {
            core::DsePoint point;
            point.budget = budgets[i];
            point.design = core::canonicalizeSchedule(
                results[i].design, *result_network);
            point.epochCycles = results[i].metrics.epochCycles;
            point.dspUsed = model::designDsp(point.design);
            point.bramUsed =
                model::designBram(point.design, *result_network);
            point.schedule =
                core::analyzeSchedule(point.design, *result_network);
            response.points.push_back(std::move(point));
        }
        response.ok = true;
    } catch (const util::FatalError &err) {
        response.ok = false;
        response.points.clear();
        // Spans may have been filled before a later step threw; an
        // error response must not attribute a network it never
        // optimized.
        response.subnets.clear();
        response.error = err.what();
    }
    return response;
}

/**
 * Periodically publishes the persistent frontier cache while the
 * service lives, so a second process (mmap reader, warm restart, or a
 * sharded front's sibling workers) can pick up new state mid-life
 * instead of waiting for this process to drain. flush() snapshots
 * under the cache's own mutex and merges under the advisory file
 * lock, so it is safe alongside request execution and alongside the
 * drain-path flushCache() call.
 */
class CacheFlushTimer
{
  public:
    CacheFlushTimer(DseService &service, int interval_ms)
        : service_(service), intervalMs_(interval_ms)
    {
        thread_ = std::thread([this] { run(); });
    }

    ~CacheFlushTimer()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stop_ = true;
        }
        wake_.notify_all();
        thread_.join();
    }

  private:
    void
    run()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        while (!stop_) {
            if (wake_.wait_for(lock,
                               std::chrono::milliseconds(intervalMs_),
                               [this] { return stop_; }))
                break;
            lock.unlock();
            service_.flushCache();
            lock.lock();
        }
    }

    DseService &service_;
    int intervalMs_;
    std::mutex mutex_;
    std::condition_variable wake_;
    bool stop_ = false;
    std::thread thread_;
};

DseService::DseService(ServiceOptions options)
    : options_(options),
      cache_(options.cacheDir.empty()
                 ? nullptr
                 : std::make_shared<core::FrontierCache>(
                       options.cacheDir,
                       core::FrontierCacheOptions{
                           options.cacheMmap, options.cacheMaxBytes,
                           options.cacheSiblingDirs})),
      registry_(options.maxSessions, options.maxBytes,
                options.sessionThreads, cache_)
{
    if (util::resolveThreads(options_.threads) > 1)
        pool_ = std::make_unique<util::ThreadPool>(options_.threads);
    if (cache_ && options_.cacheFlushIntervalMs > 0)
        flushTimer_ = std::make_unique<CacheFlushTimer>(
            *this, options_.cacheFlushIntervalMs);
    // Phase counters feed the stats verb; the scopes cost two clock
    // reads per coarse phase, so always-on is fine for a server.
    util::prof::setEnabled(true);
}

DseService::~DseService()
{
    // Stop the timer explicitly before any member teardown begins:
    // flushTimer_ is the last-declared member, but being explicit
    // here keeps the invariant obvious — no flush can start after
    // this line, and one already in flush() completes safely (the
    // cache outlives the registry's own shutdown flush).
    flushTimer_.reset();
}

std::string
DseService::handleLine(const std::string &line)
{
    std::string text = trimmedLine(line);
    if (text.empty() || text[0] == '#')
        return "";
    if (text == "stats") {
        core::SessionRegistry::Stats reg = registry_.stats();
        core::FrontierRowStore::Stats rows =
            registry_.rowStore()->stats();
        std::string stats = util::strprintf(
            "ok stats sessions=%zu bytes=%zu hits=%zu misses=%zu "
            "evictions=%zu rows=%zu row_hits=%zu row_misses=%zu "
            "row_disk_hits=%zu row_mmap_hits=%zu "
            "row_sibling_hits=%zu",
            reg.sessions, reg.bytes, reg.hits, reg.misses,
            reg.evictions, rows.rows, rows.hits, rows.misses,
            rows.diskHits, rows.mmapHits, rows.siblingHits);
        // Per-session hit rates: NETWORK[@DEVICE]:HITS:USES per
        // resident session, '-' when nothing is warm. Deterministic
        // order (registry key order).
        stats += " session_rates=";
        std::vector<core::SessionRegistry::SessionInfo> infos =
            registry_.sessionInfos();
        if (infos.empty()) {
            stats += "-";
        } else {
            for (size_t i = 0; i < infos.size(); ++i) {
                if (i > 0)
                    stats += ",";
                stats += infos[i].network;
                if (!infos[i].device.empty())
                    stats += "@" + infos[i].device;
                stats += util::strprintf(":%zu:%zu", infos[i].hits,
                                         infos[i].uses);
            }
        }
        if (transportStats_) {
            const TransportStats &t = *transportStats_;
            stats += util::strprintf(
                " conns_accepted=%llu conns_open=%llu requests=%llu "
                "shed_busy=%llu shed_oversize=%llu timeouts=%llu",
                static_cast<unsigned long long>(t.connsAccepted.load()),
                static_cast<unsigned long long>(t.connsOpen.load()),
                static_cast<unsigned long long>(t.requests.load()),
                static_cast<unsigned long long>(t.shedBusy.load()),
                static_cast<unsigned long long>(t.shedOversize.load()),
                static_cast<unsigned long long>(t.timeouts.load()));
        }
        return stats + " " + util::prof::statsTokens();
    }
    if (text == "cache-stats") {
        if (!cache_)
            return "ok cache-stats enabled=0";
        core::FrontierCache::Stats stats = cache_->stats();
        core::FrontierRowStore::Stats rows =
            registry_.rowStore()->stats();
        // The tier ladder, cheapest first: process = answered from
        // the row store's in-memory map, mmap = decoded on demand
        // from the shared read-only segment, disk = decoded from the
        // record file, sibling = decoded from another shard's
        // published segment, cold = built from scratch.
        size_t process_hits = rows.hits - rows.mmapHits -
                              rows.diskHits - rows.siblingHits;
        return util::strprintf(
            "ok cache-stats enabled=1 generation=%llu "
            "segment_mapped=%d segment_entries=%zu segment_bytes=%zu "
            "tier_process=%zu tier_mmap=%zu tier_disk=%zu "
            "tier_sibling=%zu tier_cold=%zu rows_loaded=%zu "
            "traces_loaded=%zu row_hits=%zu trace_hits=%zu "
            "segment_row_hits=%zu segment_trace_hits=%zu "
            "sibling_dirs=%zu sibling_segments=%zu "
            "sibling_row_hits=%zu sibling_trace_hits=%zu "
            "rows_pending=%zu traces_noted=%zu flushes=%zu "
            "evicted_last_flush=%zu clean=%d",
            static_cast<unsigned long long>(stats.generation),
            stats.segmentMapped ? 1 : 0, stats.segmentEntries,
            stats.segmentBytes, process_hits, rows.mmapHits,
            rows.diskHits, rows.siblingHits, rows.misses,
            stats.rowsLoaded, stats.tracesLoaded, stats.rowHits,
            stats.traceHits, stats.segmentRowHits,
            stats.segmentTraceHits, stats.siblingDirs,
            stats.siblingSegments, stats.siblingRowHits,
            stats.siblingTraceHits, stats.rowsPending,
            stats.tracesNoted, stats.flushes, stats.evictedLastFlush,
            stats.loadedClean ? 1 : 0);
    }
    if (text == "shutdown")
        return "ok shutdown";
    try {
        core::DseRequest request = decodeRequest(text);
        // Execution resources are the dispatcher's policy, not the
        // client's: sessions stay serial under concurrent serving
        // (see ServiceOptions::sessionThreads), and a wire-supplied
        // thread count must never be able to exhaust the host.
        request.threads = options_.sessionThreads;
        return encodeResponse(answerRequest(
            request, options_.cold ? nullptr : &registry_));
    } catch (const util::FatalError &err) {
        core::DseResponse response;
        response.id = scavengeId(text);
        response.error = err.what();
        return encodeResponse(response);
    } catch (const std::exception &err) {
        // A long-lived server contains everything — allocation
        // failures, internal panics — as an err line; one bad request
        // must not take down the batch (and parallelFor's fn must not
        // throw).
        core::DseResponse response;
        response.id = scavengeId(text);
        response.error =
            std::string("internal error: ") + err.what();
        return encodeResponse(response);
    }
}

std::vector<std::string>
DseService::handleBatch(const std::vector<std::string> &lines)
{
    std::vector<std::string> responses(lines.size());
    if (pool_ && lines.size() > 1) {
        pool_->parallelFor(lines.size(), [&](size_t i) {
            responses[i] = handleLine(lines[i]);
        });
    } else {
        for (size_t i = 0; i < lines.size(); ++i)
            responses[i] = handleLine(lines[i]);
    }
    return responses;
}

namespace {

/**
 * getline with a hard cap: reads the next input line into @p line; a
 * line past @p cap bytes is truncated to cap + 1 bytes (the caller's
 * overlong signal, with enough prefix to scavenge an id=) and the
 * rest is discarded up to its newline, so hostile input can never
 * balloon the buffer. False at EOF with nothing read.
 */
bool
readCappedLine(std::istream &in, std::string *line, size_t cap)
{
    line->clear();
    bool any = false;
    bool discarding = false;
    char ch;
    while (in.get(ch)) {
        any = true;
        if (ch == '\n')
            return true;
        if (discarding)
            continue;
        line->push_back(ch);
        if (line->size() > cap)
            discarding = true;
    }
    return any;
}

} // namespace

void
DseService::serveStream(std::istream &in, std::ostream &out)
{
    std::vector<std::string> lines;
    // Overlong rejections, pinned to their input slot so the batch
    // still answers strictly in input order (same cap and same wire
    // answer as the socket path).
    std::map<size_t, std::string> rejected;
    std::string line;
    while (readCappedLine(in, &line, options_.maxLineBytes)) {
        if (line.size() > options_.maxLineBytes) {
            rejected[lines.size()] =
                "err id=" + scavengeId(line) + " msg=line-too-long";
            lines.push_back("");
        } else {
            lines.push_back(line);
        }
    }
    std::vector<std::string> responses = handleBatch(lines);
    for (size_t i = 0; i < responses.size(); ++i) {
        auto it = rejected.find(i);
        const std::string &response =
            it != rejected.end() ? it->second : responses[i];
        if (!response.empty())
            out << response << '\n';
    }
    out.flush();
}

int
DseService::serveSocket(const std::string &path, int max_connections)
{
    // The event-driven server subsumes the old one-batch-at-a-time
    // accept loop: batch clients see identical bytes (per-connection
    // request order is preserved), they just start receiving answers
    // before their batch is complete.
    Server::Options options;
    options.unixPath = path;
    options.acceptLimit = max_connections;
    options.workers = options_.threads;
    options.maxLineBytes = options_.maxLineBytes;
    Server server(*this, options);
    if (!server.listening())
        return 1;
    return server.run();
}

void
DseService::flushCache()
{
    if (cache_)
        cache_->flush();
}

} // namespace service
} // namespace mclp
