/**
 * @file
 * The sharded front's stats-aggregation parser: merge per-shard
 * `stats` / `cache-stats` response lines into one front-level line.
 *
 * Extracted from tools/mclp_front.cc so the parser is testable on its
 * own: the front feeds it whatever bytes its workers answered, and a
 * worker is a separate process — possibly crashed mid-line, possibly
 * a different (buggy) build — so the merge must treat every part as
 * hostile input. tests/service/test_shard_merge.cc fuzzes it with
 * malformed parts, embedded `| shardN:` separators, dead-worker err
 * parts, and empty shard lists; none may crash or emit a line that
 * fails to start with `ok VERB shards=K`.
 */

#ifndef MCLP_SERVICE_SHARD_MERGE_H
#define MCLP_SERVICE_SHARD_MERGE_H

#include <string>
#include <vector>

namespace mclp {
namespace service {

/**
 * Merge per-shard stats/cache-stats lines into one front-level
 * response: `ok VERB shards=K` followed by every k=v counter summed
 * across the shards that answered `ok VERB ...` (enabled/clean are
 * ANDed, generation is maxed — a sum means nothing for those), then
 * each worker's verbatim line after ' | shardN: ' separators so
 * per-shard numbers stay inspectable. Non-numeric values (e.g.
 * session_rates) appear only in the breakdown; parts that are not
 * `ok VERB` lines (a dead shard's err part) contribute nothing to the
 * sums but still show in the breakdown. Total-ordering guarantees for
 * hostile parts: never throws, never reads out of bounds, and sums
 * that overflow the integral range degrade to decimal notation
 * instead of invoking undefined float-to-int casts.
 */
std::string mergeStatsParts(const std::string &verb,
                            const std::vector<std::string> &parts);

} // namespace service
} // namespace mclp

#endif // MCLP_SERVICE_SHARD_MERGE_H
