#include "service/server.h"

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "util/logging.h"

namespace mclp {
namespace service {

Server *Server::signalTarget_ = nullptr;

void
Server::sigtermHandler(int)
{
    // Async-signal-safe by construction: one store to a sig_atomic_t
    // flag plus one write() down the self-pipe.
    Server *target = signalTarget_;
    if (target) {
        target->sigtermSeen_ = 1;
        target->wake_.notify();
    }
}

Server::Server(DseService &service, Options options)
    : service_(service), options_(std::move(options))
{
    if (!wake_.valid()) {
        startError_ = "self-pipe creation failed";
        util::warn("mclp-serve: %s", startError_.c_str());
        return;
    }
    if (!options_.unixPath.empty()) {
        std::string error;
        int fd = util::listenUnix(options_.unixPath, &error);
        if (fd < 0) {
            startError_ = error;
            util::warn("mclp-serve: %s", error.c_str());
            return;
        }
        // Non-blocking listeners: acceptPending() drains until
        // EAGAIN, which a blocking accept would turn into a hang.
        util::setNonBlocking(fd);
        unixListener_.reset(fd);
    }
    if (options_.tcpPort >= 0) {
        std::string error;
        int fd = util::listenTcp(
            static_cast<uint16_t>(options_.tcpPort), &tcpPort_, &error);
        if (fd < 0) {
            startError_ = error;
            util::warn("mclp-serve: %s", error.c_str());
            return;
        }
        util::setNonBlocking(fd);
        tcpListener_.reset(fd);
    }
    if (!unixListener_.valid() && !tcpListener_.valid()) {
        startError_ = "no listeners configured (need a socket path "
                      "or a TCP port)";
        util::warn("mclp-serve: %s", startError_.c_str());
        return;
    }
    service_.attachTransportStats(&stats_);
}

Server::~Server()
{
    service_.attachTransportStats(nullptr);
    if (unixListener_.valid())
        ::unlink(options_.unixPath.c_str());
}

void
Server::requestDrain()
{
    drainRequested_.store(true, std::memory_order_release);
    wake_.notify();
}

bool
Server::acceptingClosed() const
{
    return options_.acceptLimit >= 0 &&
           acceptedTotal_ >=
               static_cast<uint64_t>(options_.acceptLimit);
}

void
Server::workerLoop()
{
    while (true) {
        Task task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            taskReady_.wait(lock, [this] {
                return !tasks_.empty() || stopWorkers_;
            });
            // Drain before exiting: admitted work always finishes,
            // even when its connection was hard-closed meanwhile.
            if (tasks_.empty())
                return;
            task = std::move(tasks_.front());
            tasks_.pop_front();
        }
        std::string response = service_.handleLine(task.line);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            task.conn->complete(task.seq, std::move(response));
            --task.conn->inflight;
            --globalInflight_;
        }
        wake_.notify();
    }
}

void
Server::respondNow(const std::shared_ptr<Connection> &conn,
                   const std::string &response)
{
    // Immediate answers still go through the reorder buffer so they
    // interleave with dispatched work in strict request order.
    std::lock_guard<std::mutex> lock(mutex_);
    conn->complete(conn->allocSeq(), response);
}

void
Server::handleLine(const std::shared_ptr<Connection> &conn,
                   std::string line, bool overlong)
{
    if (overlong) {
        stats_.shedOversize.fetch_add(1, std::memory_order_relaxed);
        respondNow(conn, "err id=" + scavengeId(line) +
                             " msg=line-too-long");
        return;
    }
    std::string text = trimmedLine(line);
    if (text.empty() || text[0] == '#')
        return;  // never answered, so no sequence slot either
    if (text == "shutdown") {
        respondNow(conn, "ok shutdown");
        draining_ = true;
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        bool shed =
            conn->inflight >= options_.maxPipeline ||
            globalInflight_ >= options_.maxInflight;
        if (shed) {
            // Shed *now*, in sequence: the client learns immediately,
            // and the error slots into the pipeline where the answer
            // would have gone.
            stats_.shedBusy.fetch_add(1, std::memory_order_relaxed);
            conn->complete(conn->allocSeq(),
                           "err id=" + scavengeId(text) + " msg=busy");
            return;
        }
        stats_.requests.fetch_add(1, std::memory_order_relaxed);
        Task task;
        task.conn = conn;
        task.seq = conn->allocSeq();
        task.line = std::move(text);
        ++conn->inflight;
        ++globalInflight_;
        tasks_.push_back(std::move(task));
    }
    taskReady_.notify_one();
}

void
Server::acceptPending(int listen_fd)
{
    while (!draining_ && !acceptingClosed()) {
        int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            if (errno != EAGAIN && errno != EWOULDBLOCK)
                util::warn("mclp-serve: accept(): %s",
                           std::strerror(errno));
            return;
        }
        if (!util::setNonBlocking(fd)) {
            util::warn("mclp-serve: accepted fd: %s",
                       std::strerror(errno));
            ::close(fd);
            continue;
        }
        uint64_t id = nextConnId_++;
        conns_.emplace(id, std::make_shared<Connection>(
                               fd, id, options_.maxLineBytes));
        ++acceptedTotal_;
        stats_.connsAccepted.fetch_add(1, std::memory_order_relaxed);
        stats_.connsOpen.fetch_add(1, std::memory_order_relaxed);
    }
}

void
Server::onReadable(const std::shared_ptr<Connection> &conn)
{
    char buffer[64 * 1024];
    while (!conn->closing) {
        ssize_t got = ::read(conn->fd(), buffer, sizeof(buffer));
        if (got > 0) {
            conn->ingest(buffer, static_cast<size_t>(got));
            std::string line;
            Connection::LineStatus status;
            while ((status = conn->nextLine(&line)) !=
                   Connection::LineStatus::None) {
                handleLine(conn, std::move(line),
                           status == Connection::LineStatus::Overlong);
                line.clear();
            }
            if (static_cast<size_t>(got) < sizeof(buffer))
                return;  // short read: the socket is drained
            continue;
        }
        if (got < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                return;
            // A dying client (ECONNRESET et al.) costs only its own
            // connection, never the server.
            util::warn("mclp-serve: read(): %s", std::strerror(errno));
            conn->closing = true;
            return;
        }
        // EOF: the batch protocol answers a trailing line without a
        // newline rather than dropping it.
        conn->peerClosed = true;
        std::string remainder;
        if (conn->takeEofRemainder(&remainder))
            handleLine(conn, std::move(remainder), false);
        return;
    }
}

void
Server::pumpOut(const std::shared_ptr<Connection> &conn)
{
    while (conn->wantsWrite() && !conn->closing) {
        // MSG_NOSIGNAL: a peer that died mid-response surfaces as
        // EPIPE, never a process-killing SIGPIPE (the library must
        // not rely on the front end's signal disposition).
        ssize_t put = ::send(conn->fd(), conn->writeData(),
                             conn->writeBacklog(), MSG_NOSIGNAL);
        if (put < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                return;
            util::warn("mclp-serve: client dropped mid-response "
                       "(%zu bytes unsent): %s",
                       conn->writeBacklog(), std::strerror(errno));
            conn->closing = true;
            return;
        }
        conn->touch();
        conn->consumeWritten(static_cast<size_t>(put));
    }
}

void
Server::closeConnection(uint64_t id)
{
    auto it = conns_.find(id);
    if (it == conns_.end())
        return;
    // Workers may still hold this connection (shared_ptr); shut the
    // socket down now so the peer sees the close immediately — the
    // object (and fd) dies when the last in-flight task completes
    // into its orphaned reorder buffer.
    ::shutdown(it->second->fd(), SHUT_RDWR);
    conns_.erase(it);
    stats_.connsOpen.fetch_sub(1, std::memory_order_relaxed);
}

bool
Server::sweepAndCheckExit()
{
    std::vector<uint64_t> dead;
    for (const auto &kv : conns_) {
        const std::shared_ptr<Connection> &conn = kv.second;
        if (conn->closing) {
            // Errors and timeouts are hard closes: unsent output and
            // in-flight answers are forfeit by definition.
            dead.push_back(kv.first);
            continue;
        }
        bool flushed;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            flushed = !conn->hasUnanswered();
        }
        flushed = flushed && !conn->wantsWrite();
        // A half-closed batch client is done once every admitted line
        // was answered and written; under drain every connection is
        // done at that point (nothing new is being read).
        if (flushed && (conn->peerClosed || draining_))
            dead.push_back(kv.first);
    }
    for (uint64_t id : dead)
        closeConnection(id);
    return conns_.empty() && (draining_ || acceptingClosed());
}

int
Server::pollTimeoutMs() const
{
    if (options_.readTimeoutMs <= 0 && options_.idleTimeoutMs <= 0)
        return -1;
    int64_t now = util::monotonicMs();
    int64_t earliest = -1;
    for (const auto &kv : conns_) {
        const std::shared_ptr<Connection> &conn = kv.second;
        if (options_.readTimeoutMs > 0 && conn->lineStartMs() >= 0) {
            int64_t deadline =
                conn->lineStartMs() + options_.readTimeoutMs;
            if (earliest < 0 || deadline < earliest)
                earliest = deadline;
        }
        if (options_.idleTimeoutMs > 0) {
            int64_t deadline =
                conn->lastActivityMs() + options_.idleTimeoutMs;
            if (earliest < 0 || deadline < earliest)
                earliest = deadline;
        }
    }
    if (earliest < 0)
        return -1;
    return static_cast<int>(
        std::max<int64_t>(0, std::min<int64_t>(earliest - now, 60000)));
}

void
Server::enforceDeadlines()
{
    if (options_.readTimeoutMs <= 0 && options_.idleTimeoutMs <= 0)
        return;
    int64_t now = util::monotonicMs();
    for (const auto &kv : conns_) {
        const std::shared_ptr<Connection> &conn = kv.second;
        if (conn->closing)
            continue;
        // Slow-loris guard: the deadline anchors at the partial
        // line's first byte, so dripping one byte at a time cannot
        // extend it.
        if (options_.readTimeoutMs > 0 && conn->lineStartMs() >= 0 &&
            now - conn->lineStartMs() > options_.readTimeoutMs) {
            stats_.timeouts.fetch_add(1, std::memory_order_relaxed);
            conn->closing = true;
            continue;
        }
        if (options_.idleTimeoutMs > 0 && !conn->hasPartialLine() &&
            !conn->wantsWrite() &&
            now - conn->lastActivityMs() > options_.idleTimeoutMs) {
            bool idle;
            {
                std::lock_guard<std::mutex> lock(mutex_);
                idle = !conn->hasUnanswered();
            }
            if (idle) {
                stats_.timeouts.fetch_add(1, std::memory_order_relaxed);
                conn->closing = true;
            }
        }
    }
}

int
Server::run()
{
    if (!listening())
        return 1;

    struct sigaction old_term
    {
    };
    if (options_.handleSigterm) {
        signalTarget_ = this;
        struct sigaction action
        {
        };
        action.sa_handler = &Server::sigtermHandler;
        sigemptyset(&action.sa_mask);
        ::sigaction(SIGTERM, &action, &old_term);
    }

    int worker_count = options_.workers > 0
                           ? options_.workers
                           : static_cast<int>(std::max(
                                 1u, std::thread::hardware_concurrency()));
    // The poll thread never executes requests: a stuck optimization
    // can never stall accepts, reads, writes, or timeouts.
    for (int i = 0; i < worker_count; ++i)
        workers_.emplace_back([this] { workerLoop(); });

    std::vector<pollfd> pfds;
    std::vector<std::shared_ptr<Connection>> polled;
    while (true) {
        // Move worker results through each reorder buffer into the
        // write queues, then push bytes until the sockets block.
        {
            std::lock_guard<std::mutex> lock(mutex_);
            for (const auto &kv : conns_)
                kv.second->flushReady();
        }
        for (const auto &kv : conns_)
            pumpOut(kv.second);

        if (sweepAndCheckExit())
            break;

        pfds.clear();
        polled.clear();
        size_t fixed = 0;
        pfds.push_back({wake_.readFd(), POLLIN, 0});
        ++fixed;
        bool accepting = !draining_ && !acceptingClosed();
        int unix_idx = -1, tcp_idx = -1;
        if (accepting && unixListener_.valid()) {
            unix_idx = static_cast<int>(pfds.size());
            pfds.push_back({unixListener_.get(), POLLIN, 0});
            ++fixed;
        }
        if (accepting && tcpListener_.valid()) {
            tcp_idx = static_cast<int>(pfds.size());
            pfds.push_back({tcpListener_.get(), POLLIN, 0});
            ++fixed;
        }
        for (const auto &kv : conns_) {
            const std::shared_ptr<Connection> &conn = kv.second;
            short events = 0;
            // Write backpressure: a client that stops reading stops
            // being read from — admitted work still completes and
            // parks in the reorder buffer, which the pipeline cap
            // bounds — and never stalls anyone else.
            if (!conn->peerClosed && !conn->closing && !draining_ &&
                conn->writeBacklog() < options_.maxWriteBufferBytes)
                events |= POLLIN;
            if (conn->wantsWrite())
                events |= POLLOUT;
            if (events == 0)
                continue;
            pfds.push_back({conn->fd(), events, 0});
            polled.push_back(conn);
        }

        int ready = ::poll(pfds.data(),
                           static_cast<nfds_t>(pfds.size()),
                           pollTimeoutMs());
        if (ready < 0 && errno != EINTR) {
            util::warn("mclp-serve: poll(): %s", std::strerror(errno));
            break;
        }

        if (pfds[0].revents)
            wake_.drain();
        if (sigtermSeen_ ||
            drainRequested_.load(std::memory_order_acquire))
            draining_ = true;

        if (unix_idx >= 0 && (pfds[unix_idx].revents & POLLIN))
            acceptPending(unixListener_.get());
        if (tcp_idx >= 0 && (pfds[tcp_idx].revents & POLLIN))
            acceptPending(tcpListener_.get());

        for (size_t i = fixed; i < pfds.size(); ++i) {
            const std::shared_ptr<Connection> &conn = polled[i - fixed];
            if (pfds[i].revents & (POLLIN | POLLHUP))
                onReadable(conn);
            if (pfds[i].revents & POLLOUT)
                pumpOut(conn);
            if ((pfds[i].revents & (POLLERR | POLLNVAL)) &&
                !conn->peerClosed)
                conn->closing = true;
        }

        enforceDeadlines();
    }

    // Exit epilogue, in drain order: listeners are already effectively
    // closed (nothing polls them), workers drain the task queue, and
    // only then is the persistent cache flushed — so a flush never
    // races an in-flight request's row insertions.
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopWorkers_ = true;
    }
    taskReady_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
    workers_.clear();

    if (unixListener_.valid()) {
        unixListener_.reset();
        ::unlink(options_.unixPath.c_str());
    }
    tcpListener_.reset();

    service_.flushCache();

    if (options_.handleSigterm) {
        ::sigaction(SIGTERM, &old_term, nullptr);
        signalTarget_ = nullptr;
    }
    return 0;
}

} // namespace service
} // namespace mclp
