#include "service/dse_codec.h"

#include <cerrno>
#include <cstdlib>

#include "util/logging.h"
#include "util/string_utils.h"

namespace mclp {
namespace service {

namespace {

/** Reject values that would corrupt the space/;/:-delimited framing. */
void
checkToken(const std::string &value, const char *what)
{
    if (value.empty())
        util::fatal("dse codec: %s must not be empty", what);
    if (value.find_first_of(" \t\n:;,=") != std::string::npos)
        util::fatal("dse codec: %s '%s' contains a delimiter character",
                    what, value.c_str());
}

std::vector<std::string>
tokenize(const std::string &line)
{
    std::vector<std::string> tokens;
    size_t pos = 0;
    while (pos < line.size()) {
        size_t end = line.find(' ', pos);
        if (end == std::string::npos)
            end = line.size();
        if (end > pos)
            tokens.push_back(line.substr(pos, end - pos));
        pos = end + 1;
    }
    return tokens;
}

/** Split "key=value"; fatal() when there is no '='. */
std::pair<std::string, std::string>
keyValue(const std::string &token)
{
    size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0)
        util::fatal("dse codec: expected key=value, got '%s'",
                    token.c_str());
    return {token.substr(0, eq), token.substr(eq + 1)};
}

int64_t
parseInt(const std::string &value, const char *what)
{
    // strtoll saturates to LLONG_MIN/MAX on overflow and only
    // reports it through errno, so an unchecked parse would turn an
    // out-of-range wire value into a plausible-looking bogus request
    // instead of a codec error.
    errno = 0;
    char *end = nullptr;
    int64_t parsed = std::strtoll(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0')
        util::fatal("dse codec: bad %s '%s'", what, value.c_str());
    if (errno == ERANGE)
        util::fatal("dse codec: %s '%s' is out of range", what,
                    value.c_str());
    return parsed;
}

double
parseDouble(const std::string &value, const char *what)
{
    // Same errno discipline as parseInt: strtod signals overflow
    // (+-HUGE_VAL) and underflow only through ERANGE.
    errno = 0;
    char *end = nullptr;
    double parsed = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0')
        util::fatal("dse codec: bad %s '%s'", what, value.c_str());
    if (errno == ERANGE)
        util::fatal("dse codec: %s '%s' is out of range", what,
                    value.c_str());
    return parsed;
}

std::string
encodeLayers(const std::vector<nn::ConvLayer> &layers)
{
    std::vector<std::string> parts;
    parts.reserve(layers.size());
    for (const nn::ConvLayer &layer : layers) {
        checkToken(layer.name, "layer name");
        parts.push_back(util::strprintf(
            "%s:%lld:%lld:%lld:%lld:%lld:%lld", layer.name.c_str(),
            static_cast<long long>(layer.n),
            static_cast<long long>(layer.m),
            static_cast<long long>(layer.r),
            static_cast<long long>(layer.c),
            static_cast<long long>(layer.k),
            static_cast<long long>(layer.s)));
    }
    return util::join(parts, ";");
}

std::vector<nn::ConvLayer>
decodeLayers(const std::string &spec)
{
    std::vector<nn::ConvLayer> layers;
    for (const std::string &part : util::split(spec, ';')) {
        auto fields = util::split(part, ':');
        if (fields.size() != 7)
            util::fatal("dse codec: layer spec '%s' wants "
                        "name:n:m:r:c:k:s", part.c_str());
        layers.push_back(nn::makeConvLayer(
            fields[0], parseInt(fields[1], "layer N"),
            parseInt(fields[2], "layer M"),
            parseInt(fields[3], "layer R"),
            parseInt(fields[4], "layer C"),
            parseInt(fields[5], "layer K"),
            parseInt(fields[6], "layer S")));
    }
    return layers;
}

std::string
encodeBudgetList(const std::vector<int64_t> &budgets)
{
    std::vector<std::string> parts;
    parts.reserve(budgets.size());
    for (int64_t dsp : budgets)
        parts.push_back(std::to_string(dsp));
    return util::join(parts, ",");
}

} // namespace

std::string
encodeRequest(const core::DseRequest &request)
{
    std::string id = request.id.empty() ? "-" : request.id;
    checkToken(id, "id");
    std::string line = "dse id=" + id;
    checkToken(request.network, "network name");
    line += " net=" + request.network;
    if (!request.layers.empty())
        line += " layers=" + encodeLayers(request.layers);
    if (!request.device.empty()) {
        checkToken(request.device, "device name");
        line += " device=" + request.device;
    }
    line += " type=" + fpga::dataTypeName(request.type);
    line += util::strprintf(" mhz=%.17g", request.mhz);
    if (request.bandwidthGbps > 0.0)
        line += util::strprintf(" bw=%.17g", request.bandwidthGbps);
    line += util::strprintf(" maxclps=%d", request.maxClps);
    line += " mode=" + core::dseModeName(request.mode);
    if (!request.dspBudgets.empty())
        line += " budgets=" + encodeBudgetList(request.dspBudgets);
    if (request.referenceEngine)
        line += " engine=reference";
    if (request.threads != 1)
        line += util::strprintf(" threads=%d", request.threads);
    return line;
}

core::DseRequest
decodeRequest(const std::string &line)
{
    auto tokens = tokenize(line);
    if (tokens.empty() || tokens[0] != "dse")
        util::fatal("dse codec: request line must start with 'dse'");
    core::DseRequest request;
    request.network.clear();
    for (size_t t = 1; t < tokens.size(); ++t) {
        auto [key, value] = keyValue(tokens[t]);
        if (key == "id") {
            request.id = value;
        } else if (key == "net") {
            request.network = value;
        } else if (key == "layers") {
            request.layers = decodeLayers(value);
        } else if (key == "device") {
            request.device = value;
        } else if (key == "type") {
            request.type = fpga::dataTypeByName(value);
        } else if (key == "mhz") {
            request.mhz = parseDouble(value, "mhz");
        } else if (key == "bw") {
            request.bandwidthGbps = parseDouble(value, "bw");
        } else if (key == "maxclps") {
            request.maxClps =
                static_cast<int>(parseInt(value, "maxclps"));
        } else if (key == "mode") {
            request.mode = core::dseModeByName(value);
        } else if (key == "budgets") {
            request.dspBudgets.clear();
            for (const std::string &item : util::split(value, ','))
                request.dspBudgets.push_back(
                    parseInt(item, "DSP budget"));
        } else if (key == "engine") {
            if (value == "reference")
                request.referenceEngine = true;
            else if (value != "frontier")
                util::fatal("dse codec: unknown engine '%s'",
                            value.c_str());
        } else if (key == "threads") {
            request.threads =
                static_cast<int>(parseInt(value, "threads"));
        } else {
            util::fatal("dse codec: unknown request field '%s'",
                        key.c_str());
        }
    }
    request.validate();
    return request;
}

std::string
encodeDesign(const model::MultiClpDesign &design)
{
    std::vector<std::string> clps;
    clps.reserve(design.clps.size());
    for (const model::ClpConfig &clp : design.clps) {
        std::string spec = util::strprintf(
            "%lldx%lld@", static_cast<long long>(clp.shape.tn),
            static_cast<long long>(clp.shape.tm));
        std::vector<std::string> layers;
        layers.reserve(clp.layers.size());
        for (const model::LayerBinding &binding : clp.layers) {
            layers.push_back(util::strprintf(
                "%zu:%lld:%lld", binding.layerIdx,
                static_cast<long long>(binding.tiling.tr),
                static_cast<long long>(binding.tiling.tc)));
        }
        clps.push_back(spec + util::join(layers, ","));
    }
    return util::join(clps, "/");
}

model::MultiClpDesign
decodeDesign(const std::string &spec, fpga::DataType type)
{
    model::MultiClpDesign design;
    design.dataType = type;
    for (const std::string &clp_spec : util::split(spec, '/')) {
        size_t at = clp_spec.find('@');
        size_t x = clp_spec.find('x');
        if (at == std::string::npos || x == std::string::npos || x > at)
            util::fatal("dse codec: bad CLP spec '%s'",
                        clp_spec.c_str());
        model::ClpConfig clp;
        clp.shape.tn = parseInt(clp_spec.substr(0, x), "Tn");
        clp.shape.tm =
            parseInt(clp_spec.substr(x + 1, at - x - 1), "Tm");
        for (const std::string &layer_spec :
             util::split(clp_spec.substr(at + 1), ',')) {
            auto fields = util::split(layer_spec, ':');
            if (fields.size() != 3)
                util::fatal("dse codec: bad layer binding '%s'",
                            layer_spec.c_str());
            model::LayerBinding binding;
            binding.layerIdx = static_cast<size_t>(
                parseInt(fields[0], "layer index"));
            binding.tiling.tr = parseInt(fields[1], "Tr");
            binding.tiling.tc = parseInt(fields[2], "Tc");
            clp.layers.push_back(binding);
        }
        design.clps.push_back(std::move(clp));
    }
    return design;
}

std::string
encodeResponse(const core::DseResponse &response)
{
    if (!response.ok) {
        // msg= must stay last: everything after it, spaces included,
        // is the message.
        return "err id=" + response.id + " msg=" + response.error;
    }
    std::string line = "ok id=" + response.id;
    line += " net=" + response.network;
    line += util::strprintf(" points=%zu", response.points.size());
    for (const core::DsePoint &point : response.points) {
        line += util::strprintf(
            " point dsp=%lld bram=%lld mhz=%.17g bw=%.17g "
            "type=%s epoch=%lld dsp_used=%lld bram_used=%lld "
            "latency_epochs=%lld inflight=%lld adjacent=%d",
            static_cast<long long>(point.budget.dspSlices),
            static_cast<long long>(point.budget.bram18k),
            point.budget.frequencyMhz,
            point.budget.bandwidthBytesPerCycle,
            fpga::dataTypeName(point.design.dataType).c_str(),
            static_cast<long long>(point.epochCycles),
            static_cast<long long>(point.dspUsed),
            static_cast<long long>(point.bramUsed),
            static_cast<long long>(point.schedule.latencyEpochs),
            static_cast<long long>(point.schedule.imagesInFlight),
            point.schedule.adjacentLayers ? 1 : 0);
        line += " design=" + encodeDesign(point.design);
    }
    return line;
}

core::DseResponse
decodeResponse(const std::string &line)
{
    core::DseResponse response;
    if (util::startsWith(line, "err ")) {
        auto tokens = tokenize(line);
        if (tokens.size() < 2)
            util::fatal("dse codec: short err line");
        auto [id_key, id_value] = keyValue(tokens[1]);
        if (id_key != "id")
            util::fatal("dse codec: err line wants id= first");
        response.id = id_value;
        size_t msg = line.find(" msg=");
        response.error =
            msg == std::string::npos ? "" : line.substr(msg + 5);
        return response;
    }
    if (!util::startsWith(line, "ok "))
        util::fatal("dse codec: response line must start with ok/err");
    response.ok = true;
    auto tokens = tokenize(line);
    core::DsePoint *point = nullptr;
    size_t expected = 0;
    for (size_t t = 1; t < tokens.size(); ++t) {
        if (tokens[t] == "point") {
            response.points.emplace_back();
            point = &response.points.back();
            continue;
        }
        auto [key, value] = keyValue(tokens[t]);
        if (!point) {
            if (key == "id")
                response.id = value;
            else if (key == "net")
                response.network = value;
            else if (key == "points")
                expected =
                    static_cast<size_t>(parseInt(value, "points"));
            else
                util::fatal("dse codec: unknown response field '%s'",
                            key.c_str());
            continue;
        }
        if (key == "dsp")
            point->budget.dspSlices = parseInt(value, "dsp");
        else if (key == "bram")
            point->budget.bram18k = parseInt(value, "bram");
        else if (key == "mhz")
            point->budget.frequencyMhz = parseDouble(value, "mhz");
        else if (key == "bw")
            point->budget.bandwidthBytesPerCycle =
                parseDouble(value, "bw");
        else if (key == "type")
            point->design.dataType = fpga::dataTypeByName(value);
        else if (key == "epoch")
            point->epochCycles = parseInt(value, "epoch");
        else if (key == "dsp_used")
            point->dspUsed = parseInt(value, "dsp_used");
        else if (key == "bram_used")
            point->bramUsed = parseInt(value, "bram_used");
        else if (key == "latency_epochs")
            point->schedule.latencyEpochs =
                parseInt(value, "latency_epochs");
        else if (key == "inflight")
            point->schedule.imagesInFlight =
                parseInt(value, "inflight");
        else if (key == "adjacent")
            point->schedule.adjacentLayers =
                parseInt(value, "adjacent") != 0;
        else if (key == "design")
            point->design =
                decodeDesign(value, point->design.dataType);
        else
            util::fatal("dse codec: unknown point field '%s'",
                        key.c_str());
    }
    if (response.points.size() != expected)
        util::fatal("dse codec: points=%zu but %zu decoded", expected,
                    response.points.size());
    return response;
}

} // namespace service
} // namespace mclp
