#include "service/dse_codec.h"

#include <cerrno>
#include <cstdlib>

#include "util/logging.h"
#include "util/string_utils.h"

namespace mclp {
namespace service {

namespace {

/** Reject values that would corrupt the space/;/:-delimited framing. */
void
checkToken(const std::string &value, const char *what)
{
    if (value.empty())
        util::fatal("dse codec: %s must not be empty", what);
    if (value.find_first_of(" \t\n:;,=") != std::string::npos)
        util::fatal("dse codec: %s '%s' contains a delimiter character",
                    what, value.c_str());
}

std::vector<std::string>
tokenize(const std::string &line)
{
    std::vector<std::string> tokens;
    size_t pos = 0;
    while (pos < line.size()) {
        size_t end = line.find(' ', pos);
        if (end == std::string::npos)
            end = line.size();
        if (end > pos)
            tokens.push_back(line.substr(pos, end - pos));
        pos = end + 1;
    }
    return tokens;
}

/** Split "key=value"; fatal() when there is no '='. */
std::pair<std::string, std::string>
keyValue(const std::string &token)
{
    size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0)
        util::fatal("dse codec: expected key=value, got '%s'",
                    token.c_str());
    return {token.substr(0, eq), token.substr(eq + 1)};
}

int64_t
parseInt(const std::string &value, const char *what)
{
    // strtoll saturates to LLONG_MIN/MAX on overflow and only
    // reports it through errno, so an unchecked parse would turn an
    // out-of-range wire value into a plausible-looking bogus request
    // instead of a codec error.
    errno = 0;
    char *end = nullptr;
    int64_t parsed = std::strtoll(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0')
        util::fatal("dse codec: bad %s '%s'", what, value.c_str());
    if (errno == ERANGE)
        util::fatal("dse codec: %s '%s' is out of range", what,
                    value.c_str());
    return parsed;
}

double
parseDouble(const std::string &value, const char *what)
{
    // Same errno discipline as parseInt: strtod signals overflow
    // (+-HUGE_VAL) and underflow only through ERANGE.
    errno = 0;
    char *end = nullptr;
    double parsed = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0')
        util::fatal("dse codec: bad %s '%s'", what, value.c_str());
    if (errno == ERANGE)
        util::fatal("dse codec: %s '%s' is out of range", what,
                    value.c_str());
    return parsed;
}

std::string
encodeLayers(const std::vector<nn::ConvLayer> &layers)
{
    std::vector<std::string> parts;
    parts.reserve(layers.size());
    for (const nn::ConvLayer &layer : layers) {
        checkToken(layer.name, "layer name");
        std::string part = util::strprintf(
            "%s:%lld:%lld:%lld:%lld:%lld:%lld", layer.name.c_str(),
            static_cast<long long>(layer.n),
            static_cast<long long>(layer.m),
            static_cast<long long>(layer.r),
            static_cast<long long>(layer.c),
            static_cast<long long>(layer.k),
            static_cast<long long>(layer.s));
        // The groups field rides only on grouped layers: every plain
        // request line stays byte-identical to the pre-groups wire
        // format (the cross-version parity the CI smoke diffs).
        if (layer.g != 1)
            part += util::strprintf(
                ":%lld", static_cast<long long>(layer.g));
        parts.push_back(std::move(part));
    }
    return util::join(parts, ";");
}

std::vector<nn::ConvLayer>
decodeLayers(const std::string &spec)
{
    std::vector<nn::ConvLayer> layers;
    for (const std::string &part : util::split(spec, ';')) {
        auto fields = util::split(part, ':');
        if (fields.size() != 7 && fields.size() != 8)
            util::fatal("dse codec: layer spec '%s' wants "
                        "name:n:m:r:c:k:s[:g]", part.c_str());
        layers.push_back(nn::makeConvLayer(
            fields[0], parseInt(fields[1], "layer N"),
            parseInt(fields[2], "layer M"),
            parseInt(fields[3], "layer R"),
            parseInt(fields[4], "layer C"),
            parseInt(fields[5], "layer K"),
            parseInt(fields[6], "layer S"),
            fields.size() == 8 ? parseInt(fields[7], "layer G") : 1));
    }
    return layers;
}

std::string
encodeBudgetList(const std::vector<int64_t> &budgets)
{
    std::vector<std::string> parts;
    parts.reserve(budgets.size());
    for (int64_t dsp : budgets)
        parts.push_back(std::to_string(dsp));
    return util::join(parts, ",");
}

/**
 * The joint-request nets= field: one entry per sub-network —
 * "NAME" (zoo network NAME), "NAME:ZOO" (zoo network ZOO), or
 * "NAME:#COUNT" (the next COUNT entries of the shared layers= field).
 * Inline layers are appended to @p inline_layers in entry order.
 */
std::string
encodeSubnets(const std::vector<core::DseSubNet> &subnets,
              std::vector<nn::ConvLayer> &inline_layers)
{
    std::vector<std::string> entries;
    entries.reserve(subnets.size());
    for (const core::DseSubNet &sub : subnets) {
        checkToken(sub.name, "sub-network name");
        if (!sub.network.empty()) {
            checkToken(sub.network, "sub-network zoo reference");
            entries.push_back(sub.name == sub.network
                                  ? sub.name
                                  : sub.name + ":" + sub.network);
        } else {
            entries.push_back(
                sub.name + ":#" + std::to_string(sub.layers.size()));
            inline_layers.insert(inline_layers.end(),
                                 sub.layers.begin(),
                                 sub.layers.end());
        }
    }
    return util::join(entries, ",");
}

/**
 * Parse a nets= value. Inline entries ("NAME:#COUNT") record their
 * layer count in @p inline_counts (parallel to the returned subnets,
 * -1 for zoo entries); decodeRequest distributes the shared layers=
 * field afterwards, because field order on the line is free.
 */
std::vector<core::DseSubNet>
decodeSubnets(const std::string &value,
              std::vector<int64_t> &inline_counts)
{
    std::vector<core::DseSubNet> subnets;
    for (const std::string &entry : util::split(value, ',')) {
        if (entry.empty())
            util::fatal("dse codec: nets= has an empty sub-network "
                        "entry");
        core::DseSubNet sub;
        int64_t count = -1;
        size_t colon = entry.find(':');
        if (colon == std::string::npos) {
            sub.name = entry;
            sub.network = entry;
        } else {
            sub.name = entry.substr(0, colon);
            std::string ref = entry.substr(colon + 1);
            if (sub.name.empty() || ref.empty())
                util::fatal("dse codec: bad nets= entry '%s' (want "
                            "NAME, NAME:ZOO, or NAME:#COUNT)",
                            entry.c_str());
            if (ref[0] == '#') {
                count = parseInt(ref.substr(1), "inline layer count");
                if (count < 1)
                    util::fatal("dse codec: sub-network '%s' wants a "
                                "positive inline layer count",
                                sub.name.c_str());
            } else {
                sub.network = ref;
            }
        }
        inline_counts.push_back(count);
        subnets.push_back(std::move(sub));
    }
    return subnets;
}

} // namespace

std::string
encodeRequest(const core::DseRequest &request)
{
    std::string id = request.id.empty() ? "-" : request.id;
    checkToken(id, "id");
    std::string line = "dse id=" + id;
    if (!request.subnets.empty()) {
        // Joint request: nets= replaces net=; inline sub-network
        // layers ride in the shared layers= field, consumed in entry
        // order (the resolved joint name is derived from the subnet
        // names, so net= would be redundant on the wire).
        std::vector<nn::ConvLayer> inline_layers;
        line += " nets=" + encodeSubnets(request.subnets,
                                         inline_layers);
        bool weighted = false;
        for (const core::DseSubNet &sub : request.subnets)
            weighted = weighted || sub.weight != 1;
        if (weighted) {
            std::vector<std::string> weights;
            weights.reserve(request.subnets.size());
            for (const core::DseSubNet &sub : request.subnets)
                weights.push_back(std::to_string(sub.weight));
            line += " weights=" + util::join(weights, ",");
        }
        if (!inline_layers.empty())
            line += " layers=" + encodeLayers(inline_layers);
    } else {
        checkToken(request.network, "network name");
        line += " net=" + request.network;
        if (!request.layers.empty())
            line += " layers=" + encodeLayers(request.layers);
    }
    if (!request.device.empty()) {
        checkToken(request.device, "device name");
        line += " device=" + request.device;
    }
    line += " type=" + fpga::dataTypeName(request.type);
    line += util::strprintf(" mhz=%.17g", request.mhz);
    if (request.bandwidthGbps > 0.0)
        line += util::strprintf(" bw=%.17g", request.bandwidthGbps);
    line += util::strprintf(" maxclps=%d", request.maxClps);
    line += " mode=" + core::dseModeName(request.mode);
    if (!request.dspBudgets.empty())
        line += " budgets=" + encodeBudgetList(request.dspBudgets);
    if (request.referenceEngine)
        line += " engine=reference";
    if (request.threads != 1)
        line += util::strprintf(" threads=%d", request.threads);
    return line;
}

core::DseRequest
decodeRequest(const std::string &line)
{
    auto tokens = tokenize(line);
    if (tokens.empty() || tokens[0] != "dse")
        util::fatal("dse codec: request line must start with 'dse'");
    core::DseRequest request;
    request.network.clear();
    std::vector<int64_t> inline_counts;  // parallel to subnets
    std::vector<int64_t> weights;        // raw weights= values
    bool saw_weights = false;
    for (size_t t = 1; t < tokens.size(); ++t) {
        auto [key, value] = keyValue(tokens[t]);
        if (key == "id") {
            request.id = value;
        } else if (key == "net") {
            request.network = value;
        } else if (key == "nets") {
            // Last occurrence wins, like every other key — which
            // means the counts of an overridden nets= must not leak
            // into the layers-vs-counts validation below.
            inline_counts.clear();
            request.subnets = decodeSubnets(value, inline_counts);
        } else if (key == "weights") {
            saw_weights = true;
            weights.clear();
            for (const std::string &item : util::split(value, ','))
                weights.push_back(parseInt(item, "subnet weight"));
        } else if (key == "layers") {
            request.layers = decodeLayers(value);
        } else if (key == "device") {
            request.device = value;
        } else if (key == "type") {
            request.type = fpga::dataTypeByName(value);
        } else if (key == "mhz") {
            request.mhz = parseDouble(value, "mhz");
        } else if (key == "bw") {
            request.bandwidthGbps = parseDouble(value, "bw");
        } else if (key == "maxclps") {
            request.maxClps =
                static_cast<int>(parseInt(value, "maxclps"));
        } else if (key == "mode") {
            request.mode = core::dseModeByName(value);
        } else if (key == "budgets") {
            request.dspBudgets.clear();
            for (const std::string &item : util::split(value, ','))
                request.dspBudgets.push_back(
                    parseInt(item, "DSP budget"));
        } else if (key == "engine") {
            if (value == "reference")
                request.referenceEngine = true;
            else if (value != "frontier")
                util::fatal("dse codec: unknown engine '%s'",
                            value.c_str());
        } else if (key == "threads") {
            request.threads =
                static_cast<int>(parseInt(value, "threads"));
        } else {
            util::fatal("dse codec: unknown request field '%s'",
                        key.c_str());
        }
    }
    if (!request.subnets.empty()) {
        // Joint post-processing happens after the token loop because
        // field order on the line is free: net= is redundant (and
        // rejected), weights= pairs up with nets= positionally, and
        // the shared layers= field is sliced into the inline subnets.
        if (!request.network.empty())
            util::fatal("dse codec: net= and nets= are mutually "
                        "exclusive (a joint request is named by its "
                        "sub-networks)");
        if (saw_weights) {
            if (weights.size() != request.subnets.size())
                util::fatal("dse codec: weights= has %zu entries for "
                            "%zu sub-networks", weights.size(),
                            request.subnets.size());
            for (size_t i = 0; i < weights.size(); ++i)
                request.subnets[i].weight = weights[i];
        }
        size_t expected_layers = 0;
        for (int64_t count : inline_counts) {
            if (count > 0)
                expected_layers += static_cast<size_t>(count);
        }
        if (request.layers.size() != expected_layers)
            util::fatal("dse codec: joint request wants %zu inline "
                        "layers (per its nets= counts) but layers= "
                        "carries %zu", expected_layers,
                        request.layers.size());
        size_t next = 0;
        for (size_t i = 0; i < request.subnets.size(); ++i) {
            if (inline_counts[i] < 0)
                continue;
            size_t count = static_cast<size_t>(inline_counts[i]);
            request.subnets[i].layers.assign(
                request.layers.begin() + next,
                request.layers.begin() + next + count);
            next += count;
        }
        request.layers.clear();
    } else if (saw_weights) {
        util::fatal("dse codec: weights= needs nets=");
    }
    request.validate();
    return request;
}

std::string
encodeDesign(const model::MultiClpDesign &design)
{
    std::vector<std::string> clps;
    clps.reserve(design.clps.size());
    for (const model::ClpConfig &clp : design.clps) {
        std::string spec = util::strprintf(
            "%lldx%lld@", static_cast<long long>(clp.shape.tn),
            static_cast<long long>(clp.shape.tm));
        std::vector<std::string> layers;
        layers.reserve(clp.layers.size());
        for (const model::LayerBinding &binding : clp.layers) {
            layers.push_back(util::strprintf(
                "%zu:%lld:%lld", binding.layerIdx,
                static_cast<long long>(binding.tiling.tr),
                static_cast<long long>(binding.tiling.tc)));
        }
        clps.push_back(spec + util::join(layers, ","));
    }
    return util::join(clps, "/");
}

model::MultiClpDesign
decodeDesign(const std::string &spec, fpga::DataType type)
{
    model::MultiClpDesign design;
    design.dataType = type;
    for (const std::string &clp_spec : util::split(spec, '/')) {
        size_t at = clp_spec.find('@');
        size_t x = clp_spec.find('x');
        if (at == std::string::npos || x == std::string::npos || x > at)
            util::fatal("dse codec: bad CLP spec '%s'",
                        clp_spec.c_str());
        model::ClpConfig clp;
        clp.shape.tn = parseInt(clp_spec.substr(0, x), "Tn");
        clp.shape.tm =
            parseInt(clp_spec.substr(x + 1, at - x - 1), "Tm");
        for (const std::string &layer_spec :
             util::split(clp_spec.substr(at + 1), ',')) {
            auto fields = util::split(layer_spec, ':');
            if (fields.size() != 3)
                util::fatal("dse codec: bad layer binding '%s'",
                            layer_spec.c_str());
            model::LayerBinding binding;
            binding.layerIdx = static_cast<size_t>(
                parseInt(fields[0], "layer index"));
            binding.tiling.tr = parseInt(fields[1], "Tr");
            binding.tiling.tc = parseInt(fields[2], "Tc");
            clp.layers.push_back(binding);
        }
        design.clps.push_back(std::move(clp));
    }
    return design;
}

std::string
encodeResponse(const core::DseResponse &response)
{
    if (!response.ok) {
        // msg= must stay last: everything after it, spaces included,
        // is the message.
        return "err id=" + response.id + " msg=" + response.error;
    }
    std::string line = "ok id=" + response.id;
    line += " net=" + response.network;
    if (!response.subnets.empty()) {
        // Joint attribution: name:first:count spans over the
        // concatenated network's global layer indices (the indices
        // the design= specs use), in request order.
        std::vector<std::string> spans;
        spans.reserve(response.subnets.size());
        for (const core::DseSubNetSpan &span : response.subnets) {
            checkToken(span.name, "sub-network span name");
            spans.push_back(util::strprintf(
                "%s:%zu:%zu", span.name.c_str(), span.firstLayer,
                span.numLayers));
        }
        line += " subnets=" + util::join(spans, ";");
    }
    line += util::strprintf(" points=%zu", response.points.size());
    for (const core::DsePoint &point : response.points) {
        line += util::strprintf(
            " point dsp=%lld bram=%lld mhz=%.17g bw=%.17g "
            "type=%s epoch=%lld dsp_used=%lld bram_used=%lld "
            "latency_epochs=%lld inflight=%lld adjacent=%d",
            static_cast<long long>(point.budget.dspSlices),
            static_cast<long long>(point.budget.bram18k),
            point.budget.frequencyMhz,
            point.budget.bandwidthBytesPerCycle,
            fpga::dataTypeName(point.design.dataType).c_str(),
            static_cast<long long>(point.epochCycles),
            static_cast<long long>(point.dspUsed),
            static_cast<long long>(point.bramUsed),
            static_cast<long long>(point.schedule.latencyEpochs),
            static_cast<long long>(point.schedule.imagesInFlight),
            point.schedule.adjacentLayers ? 1 : 0);
        line += " design=" + encodeDesign(point.design);
    }
    return line;
}

core::DseResponse
decodeResponse(const std::string &line)
{
    core::DseResponse response;
    if (util::startsWith(line, "err ")) {
        auto tokens = tokenize(line);
        if (tokens.size() < 2)
            util::fatal("dse codec: short err line");
        auto [id_key, id_value] = keyValue(tokens[1]);
        if (id_key != "id")
            util::fatal("dse codec: err line wants id= first");
        response.id = id_value;
        size_t msg = line.find(" msg=");
        response.error =
            msg == std::string::npos ? "" : line.substr(msg + 5);
        return response;
    }
    if (!util::startsWith(line, "ok "))
        util::fatal("dse codec: response line must start with ok/err");
    response.ok = true;
    auto tokens = tokenize(line);
    core::DsePoint *point = nullptr;
    size_t expected = 0;
    for (size_t t = 1; t < tokens.size(); ++t) {
        if (tokens[t] == "point") {
            response.points.emplace_back();
            point = &response.points.back();
            continue;
        }
        auto [key, value] = keyValue(tokens[t]);
        if (!point) {
            if (key == "id")
                response.id = value;
            else if (key == "net")
                response.network = value;
            else if (key == "subnets") {
                // Last occurrence wins, like every other key.
                response.subnets.clear();
                for (const std::string &item :
                     util::split(value, ';')) {
                    auto fields = util::split(item, ':');
                    if (fields.size() != 3)
                        util::fatal("dse codec: bad subnet span '%s' "
                                    "(want name:first:count)",
                                    item.c_str());
                    core::DseSubNetSpan span;
                    span.name = fields[0];
                    span.firstLayer = static_cast<size_t>(
                        parseInt(fields[1], "span first layer"));
                    span.numLayers = static_cast<size_t>(
                        parseInt(fields[2], "span layer count"));
                    response.subnets.push_back(std::move(span));
                }
            } else if (key == "points")
                expected =
                    static_cast<size_t>(parseInt(value, "points"));
            else
                util::fatal("dse codec: unknown response field '%s'",
                            key.c_str());
            continue;
        }
        if (key == "dsp")
            point->budget.dspSlices = parseInt(value, "dsp");
        else if (key == "bram")
            point->budget.bram18k = parseInt(value, "bram");
        else if (key == "mhz")
            point->budget.frequencyMhz = parseDouble(value, "mhz");
        else if (key == "bw")
            point->budget.bandwidthBytesPerCycle =
                parseDouble(value, "bw");
        else if (key == "type")
            point->design.dataType = fpga::dataTypeByName(value);
        else if (key == "epoch")
            point->epochCycles = parseInt(value, "epoch");
        else if (key == "dsp_used")
            point->dspUsed = parseInt(value, "dsp_used");
        else if (key == "bram_used")
            point->bramUsed = parseInt(value, "bram_used");
        else if (key == "latency_epochs")
            point->schedule.latencyEpochs =
                parseInt(value, "latency_epochs");
        else if (key == "inflight")
            point->schedule.imagesInFlight =
                parseInt(value, "inflight");
        else if (key == "adjacent")
            point->schedule.adjacentLayers =
                parseInt(value, "adjacent") != 0;
        else if (key == "design")
            point->design =
                decodeDesign(value, point->design.dataType);
        else
            util::fatal("dse codec: unknown point field '%s'",
                        key.c_str());
    }
    if (response.points.size() != expected)
        util::fatal("dse codec: points=%zu but %zu decoded", expected,
                    response.points.size());
    return response;
}

} // namespace service
} // namespace mclp
