#include "service/connection.h"

#include <algorithm>
#include <cstring>

namespace mclp {
namespace service {

void
Connection::ingest(const char *data, size_t size)
{
    touch();
    while (discarding_ && size > 0) {
        // Swallow the tail of an overlong line; everything after its
        // terminating newline is honest input again.
        const char *newline =
            static_cast<const char *>(std::memchr(data, '\n', size));
        if (!newline)
            return;
        size -= static_cast<size_t>(newline - data) + 1;
        data = newline + 1;
        discarding_ = false;
    }
    if (size == 0)
        return;
    if (!hasPartialLine())
        lineStartMs_ = util::monotonicMs();
    rbuf_.append(data, size);
}

Connection::LineStatus
Connection::nextLine(std::string *line)
{
    size_t end = rbuf_.find('\n', rpos_);
    if (end == std::string::npos) {
        size_t pending = rbuf_.size() - rpos_;
        if (pending <= maxLineBytes_)
            return LineStatus::None;
        // Surrender a bounded prefix (enough to scavenge an id=),
        // then drop the rest of the line as it arrives.
        line->assign(rbuf_, rpos_, std::min<size_t>(pending, 4096));
        rbuf_.clear();
        rpos_ = 0;
        discarding_ = true;
        return LineStatus::Overlong;
    }
    // A line whose newline arrived in the same read burst as its
    // oversized body is just as overlong as one still dripping in.
    bool overlong = end - rpos_ > maxLineBytes_;
    line->assign(rbuf_, rpos_,
                 overlong ? std::min<size_t>(end - rpos_, 4096)
                          : end - rpos_);
    rpos_ = end + 1;
    if (rpos_ >= rbuf_.size()) {
        rbuf_.clear();
        rpos_ = 0;
    } else {
        // More pipelined bytes follow: restart the partial-line clock
        // so a burst of requests is not charged the first line's age,
        // and keep the buffer compact once the dead prefix dominates.
        lineStartMs_ = util::monotonicMs();
        if (rpos_ > 64 * 1024 && rpos_ > rbuf_.size() / 2) {
            rbuf_.erase(0, rpos_);
            rpos_ = 0;
        }
    }
    return overlong ? LineStatus::Overlong : LineStatus::Line;
}

bool
Connection::takeEofRemainder(std::string *line)
{
    if (discarding_) {
        // The overlong line was already answered when it blew the
        // cap; its never-terminated tail is not a request.
        discarding_ = false;
        return false;
    }
    if (rpos_ >= rbuf_.size())
        return false;
    line->assign(rbuf_, rpos_, rbuf_.size() - rpos_);
    rbuf_.clear();
    rpos_ = 0;
    return true;
}

void
Connection::complete(uint64_t seq, std::string response)
{
    done_.emplace(seq, std::move(response));
}

size_t
Connection::flushReady()
{
    size_t queued = 0;
    for (auto it = done_.find(nextFlush_); it != done_.end();
         it = done_.find(nextFlush_)) {
        if (!it->second.empty()) {
            wbuf_ += it->second;
            wbuf_ += '\n';
            queued += it->second.size() + 1;
        }
        done_.erase(it);
        ++nextFlush_;
    }
    return queued;
}

void
Connection::consumeWritten(size_t bytes)
{
    woff_ += bytes;
    if (woff_ >= wbuf_.size()) {
        wbuf_.clear();
        woff_ = 0;
    } else if (woff_ > 256 * 1024 && woff_ > wbuf_.size() / 2) {
        wbuf_.erase(0, woff_);
        woff_ = 0;
    }
}

} // namespace service
} // namespace mclp
