/**
 * @file
 * Text codec of the batch DSE service: one request per line, one
 * response per line (the mclp-serve wire protocol).
 *
 * Request lines are space-separated key=value tokens after a "dse"
 * verb; response lines start with "ok" or "err" and carry every
 * optimized rung — budget, metrics, and the complete design (shapes,
 * layer assignment, tilings) — so a response pins the optimizer's
 * answer bit for bit. Encoding is deterministic (fixed field order,
 * round-trip float formatting): two responses are byte-identical
 * exactly when their designs and metrics are, which the CI smoke
 * exploits by diffing mclp-serve output against cold mclp-opt
 * --response output.
 *
 *   dse id=a1 net=alexnet device=690t type=float maxclps=6
 *   dse id=s1 net=squeezenet device=690t type=fixed budgets=1000,2880
 *   dse id=c1 net=mini layers=conv1:3:64:55:55:11:4;conv2:64:16:27:27:1:1 \
 *       budgets=500 mode=latency
 *   dse id=d1 net=dw layers=dw3:32:32:56:56:3:1:32 budgets=500
 *
 * A layer spec is name:n:m:r:c:k:s with an optional :g group count
 * (depthwise/grouped convolution). Encoding emits the g field only
 * when g > 1, so plain-conv request lines — and therefore their
 * responses — stay byte-identical to the pre-groups wire format.
 *   dse id=j1 nets=alexnet,squeezenet device=690t budgets=2880
 *   dse id=j2 nets=a:alexnet,m:#2 weights=2,1 budgets=1000 \
 *       layers=c1:3:16:14:14:3:1;c2:16:24:7:7:3:1
 *
 * Joint requests (Section 4.3) replace net= with nets= — named
 * sub-networks drawn from the zoo or from the shared layers= field
 * ("NAME:#COUNT" entries consume COUNT layers in order) — plus an
 * optional per-network weights= ratio list; their responses carry a
 * subnets= field of name:first:count spans attributing the
 * concatenated network's global layer indices (the indices design=
 * uses) back to each sub-network copy. The full grammar lives in
 * docs/PROTOCOL.md.
 */

#ifndef MCLP_SERVICE_DSE_CODEC_H
#define MCLP_SERVICE_DSE_CODEC_H

#include <string>

#include "core/dse_request.h"

namespace mclp {
namespace service {

/** One-line wire form of a request (no trailing newline). */
std::string encodeRequest(const core::DseRequest &request);

/** Parse a request line; fatal() on malformed input. */
core::DseRequest decodeRequest(const std::string &line);

/** One-line wire form of a response (no trailing newline). */
std::string encodeResponse(const core::DseResponse &response);

/** Parse a response line; fatal() on malformed input. */
core::DseResponse decodeResponse(const std::string &line);

/**
 * Compact design spec used inside response lines: CLPs joined by '/',
 * each "TNxTM@layer:tr:tc,layer:tr:tc,...". Exposed for tests.
 */
std::string encodeDesign(const model::MultiClpDesign &design);

/** Inverse of encodeDesign; @p type fills the design's data type. */
model::MultiClpDesign decodeDesign(const std::string &spec,
                                   fpga::DataType type);

} // namespace service
} // namespace mclp

#endif // MCLP_SERVICE_DSE_CODEC_H
