/**
 * @file
 * The batch DSE service: a long-lived dispatcher that owns a
 * SessionRegistry and answers streams of DseRequest lines — the
 * serving layer between the warm session machinery (core/dse_session)
 * and the mclp-serve front end.
 *
 * Requests arrive one per line (see service/dse_codec.h), fan out
 * over a work-stealing pool, and are answered strictly in input
 * order. Answers never depend on concurrency, batch composition, or
 * registry warmth: every response is bit-identical to a cold
 * MultiClpOptimizer run of the same request, which
 * tests/service/test_dse_service.cc pins and the CI smoke re-checks
 * end to end against mclp-opt --response.
 */

#ifndef MCLP_SERVICE_DSE_SERVICE_H
#define MCLP_SERVICE_DSE_SERVICE_H

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "core/dse_request.h"
#include "core/session_registry.h"
#include "util/thread_pool.h"

namespace mclp {
namespace service {

/**
 * Execute one request end to end: resolve the network, build the
 * budget ladder, optimize every rung, and package designs + metrics.
 * With @p registry the run goes through the warm session for the
 * request's (network dims, device, type) key; without it every rung
 * is an independent cold MultiClpOptimizer run. Both paths produce
 * bit-identical responses. User errors (unknown network, impossible
 * budget) come back as an err response, never an exception.
 */
core::DseResponse answerRequest(const core::DseRequest &request,
                                core::SessionRegistry *registry);

/** Best-effort id= recovery from a line that never decoded (shed,
 * overlong, or malformed lines still answer with the client's id
 * when one is visible); "-" otherwise. */
std::string scavengeId(const std::string &line);

/** The line with leading/trailing spaces, tabs, and CRs removed. */
std::string trimmedLine(const std::string &line);

/**
 * Transport-level counters of the event-driven server
 * (service::Server): published here so the `stats` verb — which the
 * service layer answers — can report them when a server attaches
 * them. All relaxed atomics: these are monitoring counters, not
 * synchronization.
 */
struct TransportStats
{
    std::atomic<uint64_t> connsAccepted{0};  ///< lifetime accepts
    std::atomic<uint64_t> connsOpen{0};      ///< currently open
    std::atomic<uint64_t> requests{0};       ///< lines dispatched
    std::atomic<uint64_t> shedBusy{0};       ///< admission rejections
    std::atomic<uint64_t> shedOversize{0};   ///< line-too-long sheds
    std::atomic<uint64_t> timeouts{0};       ///< read/idle closes
};

/** Dispatcher knobs (mclp-serve flags map onto these). */
struct ServiceOptions
{
    /** Request fan-out worker threads (0 = hardware concurrency,
     * 1 = serial). Never changes responses. */
    int threads = 1;

    /** SessionRegistry LRU capacity. */
    size_t maxSessions = 8;

    /** SessionRegistry byte budget (0 = unlimited). */
    size_t maxBytes = 0;

    /** Threads each session spends on its own budget ladder; kept at
     * 1 under concurrent serving so the pool is not oversubscribed. */
    int sessionThreads = 1;

    /** Request lines longer than this are rejected with
     * `err ... msg=line-too-long` instead of buffering unboundedly;
     * applies to the stream path here and is the default for the
     * socket server (service/server.h). */
    size_t maxLineBytes = 1 << 20;

    /** Bypass the registry: every request runs cold (the parity
     * baseline the warm path is diffed against). */
    bool cold = false;

    /**
     * Directory of the persistent frontier cache (mclp-serve
     * --cache-dir); empty disables it. Frontier staircases and
     * memory-walk traces load from here on a miss and flush back on
     * shutdown, so a restarted server starts disk-warm. Responses
     * never change — the cache self-invalidates on format or model
     * changes (core/frontier_cache.h).
     */
    std::string cacheDir;

    /** Map the published cache segment read-only and serve lazily
     * from it (mclp-serve --cache-mmap; on by default). Sharded
     * workers on one host then share one page-cache copy of the
     * staircase bytes. Off = always eager-load the record file. */
    bool cacheMmap = true;

    /** Byte budget for the cache record file (mclp-serve
     * --cache-max-mb; 0 = unbounded): flushes evict the
     * least-recently-hit records past it. */
    size_t cacheMaxBytes = 0;

    /** Cache directories of sibling shards (mclp-serve
     * --cache-sibling, repeatable; the sharded front passes each
     * worker its siblings' shard dirs). Their published segments are
     * attached read-only and consulted after this shard's own tiers
     * miss, before a cold build (core/frontier_cache.h). */
    std::vector<std::string> cacheSiblingDirs;

    /** Also flush the persistent cache every N ms from a background
     * timer (mclp-serve --cache-flush-interval-ms; 0 = shutdown-only
     * flush), so siblings and mmap readers pick up new state
     * mid-life. The timer stops before the registry's shutdown flush
     * runs, and FrontierCache::flush() is safe under concurrent
     * callers anyway (snapshot under its mutex, merge under the
     * advisory file lock, atomic rename), so a timer flush racing the
     * drain flush can neither double-write nor tear the segment —
     * tests/service/test_dse_service.cc pins this. */
    int cacheFlushIntervalMs = 0;
};

class CacheFlushTimer;

class DseService
{
  public:
    explicit DseService(ServiceOptions options = {});
    ~DseService();

    /**
     * Answer one input line: a "dse ..." request (decoded, executed,
     * encoded), "stats" (registry/row-store counters), "cache-stats"
     * (persistent-cache counters), or malformed input (an err line).
     * Blank lines and '#' comments return "".
     */
    std::string handleLine(const std::string &line);

    /**
     * Answer a batch of lines concurrently; responses[i] always
     * corresponds to lines[i] (deterministic ordered responses).
     */
    std::vector<std::string>
    handleBatch(const std::vector<std::string> &lines);

    /**
     * Read request lines from @p in until EOF, answer the whole batch
     * over the pool, write one response line each (blank/comment
     * lines produce no output). The stdin/stdout mode of mclp-serve.
     */
    void serveStream(std::istream &in, std::ostream &out);

    /**
     * Listen on a Unix stream socket at @p path through the
     * event-driven server (service/server.h) with its defaults:
     * many concurrent connections, pipelined per-line answers in
     * request order, bounded buffers, overload shedding, graceful
     * drain on a "shutdown" line. Batch clients keep working
     * unchanged — write lines, shutdown(SHUT_WR), read responses
     * until EOF — they simply start receiving answers earlier.
     * Serves until @p max_connections connections were handled (-1 =
     * until drained). A client that dies mid-batch costs only its
     * own connection. Returns 0 on clean exit, 1 on listener errors.
     * Front ends needing the TCP listener or tuned limits construct
     * a service::Server directly.
     */
    int serveSocket(const std::string &path, int max_connections = -1);

    /** Attach (or detach, with nullptr) a server's transport
     * counters; the `stats` verb reports them while attached. */
    void attachTransportStats(const TransportStats *stats)
    {
        transportStats_ = stats;
    }

    /** Flush the persistent frontier cache now (drain path); a no-op
     * without --cache-dir. Also happens at destruction. */
    void flushCache();

    core::SessionRegistry &registry() { return registry_; }

    /** The persistent cache, when --cache-dir enabled one. */
    const std::shared_ptr<core::FrontierCache> &cache() const
    {
        return cache_;
    }

  private:
    ServiceOptions options_;
    std::shared_ptr<core::FrontierCache> cache_;  ///< before registry_
    core::SessionRegistry registry_;
    std::unique_ptr<util::ThreadPool> pool_;
    const TransportStats *transportStats_ = nullptr;
    /** Declared last: destroyed (joined) first, so the timer thread
     * can never call flushCache() into a half-dead service. */
    std::unique_ptr<CacheFlushTimer> flushTimer_;
};

} // namespace service
} // namespace mclp

#endif // MCLP_SERVICE_DSE_SERVICE_H
