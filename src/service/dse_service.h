/**
 * @file
 * The batch DSE service: a long-lived dispatcher that owns a
 * SessionRegistry and answers streams of DseRequest lines — the
 * serving layer between the warm session machinery (core/dse_session)
 * and the mclp-serve front end.
 *
 * Requests arrive one per line (see service/dse_codec.h), fan out
 * over a work-stealing pool, and are answered strictly in input
 * order. Answers never depend on concurrency, batch composition, or
 * registry warmth: every response is bit-identical to a cold
 * MultiClpOptimizer run of the same request, which
 * tests/service/test_dse_service.cc pins and the CI smoke re-checks
 * end to end against mclp-opt --response.
 */

#ifndef MCLP_SERVICE_DSE_SERVICE_H
#define MCLP_SERVICE_DSE_SERVICE_H

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "core/dse_request.h"
#include "core/session_registry.h"
#include "util/thread_pool.h"

namespace mclp {
namespace service {

/**
 * Execute one request end to end: resolve the network, build the
 * budget ladder, optimize every rung, and package designs + metrics.
 * With @p registry the run goes through the warm session for the
 * request's (network dims, device, type) key; without it every rung
 * is an independent cold MultiClpOptimizer run. Both paths produce
 * bit-identical responses. User errors (unknown network, impossible
 * budget) come back as an err response, never an exception.
 */
core::DseResponse answerRequest(const core::DseRequest &request,
                                core::SessionRegistry *registry);

/** Dispatcher knobs (mclp-serve flags map onto these). */
struct ServiceOptions
{
    /** Request fan-out worker threads (0 = hardware concurrency,
     * 1 = serial). Never changes responses. */
    int threads = 1;

    /** SessionRegistry LRU capacity. */
    size_t maxSessions = 8;

    /** SessionRegistry byte budget (0 = unlimited). */
    size_t maxBytes = 0;

    /** Threads each session spends on its own budget ladder; kept at
     * 1 under concurrent serving so the pool is not oversubscribed. */
    int sessionThreads = 1;

    /** Bypass the registry: every request runs cold (the parity
     * baseline the warm path is diffed against). */
    bool cold = false;

    /**
     * Directory of the persistent frontier cache (mclp-serve
     * --cache-dir); empty disables it. Frontier staircases and
     * memory-walk traces load from here on a miss and flush back on
     * shutdown, so a restarted server starts disk-warm. Responses
     * never change — the cache self-invalidates on format or model
     * changes (core/frontier_cache.h).
     */
    std::string cacheDir;
};

class DseService
{
  public:
    explicit DseService(ServiceOptions options = {});

    /**
     * Answer one input line: a "dse ..." request (decoded, executed,
     * encoded), "stats" (registry/row-store counters), "cache-stats"
     * (persistent-cache counters), or malformed input (an err line).
     * Blank lines and '#' comments return "".
     */
    std::string handleLine(const std::string &line);

    /**
     * Answer a batch of lines concurrently; responses[i] always
     * corresponds to lines[i] (deterministic ordered responses).
     */
    std::vector<std::string>
    handleBatch(const std::vector<std::string> &lines);

    /**
     * Read request lines from @p in until EOF, answer the whole batch
     * over the pool, write one response line each (blank/comment
     * lines produce no output). The stdin/stdout mode of mclp-serve.
     */
    void serveStream(std::istream &in, std::ostream &out);

    /**
     * Listen on a Unix stream socket at @p path. Each connection is
     * one batch: the client writes request lines and shuts down its
     * write side; the server answers them in order and closes. Serves
     * until @p max_connections connections were handled (-1 =
     * forever) or a connection sends a "shutdown" line. A client that
     * dies mid-batch (read error, or the response write hitting
     * EPIPE/ECONNRESET) costs only its own connection — sends use
     * MSG_NOSIGNAL, so no SIGPIPE ever reaches the process, and the
     * accept loop keeps serving. Returns 0 on clean exit, 1 on
     * listener-level socket errors.
     */
    int serveSocket(const std::string &path, int max_connections = -1);

    core::SessionRegistry &registry() { return registry_; }

    /** The persistent cache, when --cache-dir enabled one. */
    const std::shared_ptr<core::FrontierCache> &cache() const
    {
        return cache_;
    }

  private:
    ServiceOptions options_;
    std::shared_ptr<core::FrontierCache> cache_;  ///< before registry_
    core::SessionRegistry registry_;
    std::unique_ptr<util::ThreadPool> pool_;
};

} // namespace service
} // namespace mclp

#endif // MCLP_SERVICE_DSE_SERVICE_H
