/**
 * @file
 * The event-driven DSE serving loop: one poll()-based thread owning
 * many concurrent Unix and TCP client connections, a small worker
 * crew executing requests, and the policies that keep a long-lived
 * process healthy under hostile or overloaded clients.
 *
 * What the loop guarantees (tests/service/test_server.cc proves each,
 * and the chaos client + CI fault-injection steps re-prove them
 * against a real process):
 *
 *  - **Pipelining.** Request lines are answered as they arrive, not
 *    at connection EOF; a per-connection reorder buffer
 *    (service/connection.h) delivers responses strictly in request
 *    order, so every response is byte-identical to the serial
 *    `mclp-opt --response` answer no matter how the workers
 *    interleaved.
 *  - **Isolation.** A slow, dead, or malicious client costs only its
 *    own connection: reads and writes are non-blocking, a client
 *    that stops reading trips write backpressure (the server stops
 *    reading *from it*, never stalls others), a request line past
 *    the length cap answers `err ... msg=line-too-long` and the
 *    connection stays usable, and partial lines older than the read
 *    timeout (slow-loris) or fully idle connections past the idle
 *    timeout are dropped.
 *  - **Admission control.** In-flight work is bounded per connection
 *    (pipeline depth) and globally; excess lines are shed
 *    *immediately* with `err ... msg=busy` instead of queueing
 *    unboundedly. Shedding is load-dependent by design — the only
 *    wire form it ever takes is the busy error, never a wrong or
 *    reordered answer.
 *  - **Graceful drain.** A `shutdown` line, SIGTERM (opt-in), or
 *    requestDrain() stops accepting, lets every admitted request
 *    finish and flush, closes connections, flushes the persistent
 *    frontier cache, and returns 0.
 *
 * The loop is deliberately poll(2), not epoll: the math answers in
 * milliseconds, so realistic connection counts are tens, not tens of
 * thousands, and poll keeps the loop portable and the fd set
 * trivially consistent (rebuilt per iteration from live state).
 */

#ifndef MCLP_SERVICE_SERVER_H
#define MCLP_SERVICE_SERVER_H

#include <atomic>
#include <condition_variable>
#include <csignal>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/connection.h"
#include "service/dse_service.h"
#include "util/net.h"

namespace mclp {
namespace service {

class Server
{
  public:
    struct Options
    {
        /** Unix stream socket path; empty = no Unix listener. */
        std::string unixPath;

        /** Loopback TCP port (0 = kernel-assigned ephemeral port,
         * see tcpPort()); -1 = no TCP listener. */
        int tcpPort = -1;

        /** Stop accepting after this many connections and exit once
         * they close (-1 = serve until drain). The mclp-serve
         * --accept flag and the one-batch tests use this. */
        int acceptLimit = -1;

        /** Request-execution worker threads (0 = hardware
         * concurrency). At least one is always spawned: the poll
         * thread never executes requests, so a stuck optimization
         * can never stall accepts, reads, or timeouts. */
        int workers = 1;

        /** Request lines longer than this answer
         * `err ... msg=line-too-long` (the rest of the line is
         * discarded; the connection stays usable). */
        size_t maxLineBytes = 1 << 20;

        /** Write backpressure high-water mark: while a connection's
         * unsent responses exceed this, the server stops *reading*
         * from it (admitted work still completes and parks in the
         * reorder buffer, which the pipeline cap bounds). */
        size_t maxWriteBufferBytes = 4u << 20;

        /** Per-connection pipeline depth: lines admitted while this
         * many are in flight on the same connection shed with
         * `err ... msg=busy`. */
        int maxPipeline = 64;

        /** Global in-flight cap across all connections (queued +
         * executing); excess sheds with `err ... msg=busy`. */
        int maxInflight = 256;

        /** Close a connection whose *partial* request line is older
         * than this (slow-loris guard; 0 = disabled). The deadline
         * anchors at the line's first byte, so dripping bytes cannot
         * extend it. */
        int readTimeoutMs = 30000;

        /** Close a connection with no buffered input, no in-flight
         * work, and no unsent output after this long (0 = disabled). */
        int idleTimeoutMs = 0;

        /** Install a SIGTERM handler for the duration of run() that
         * triggers a graceful drain (mclp-serve sets this; embedded
         * servers and tests use requestDrain()). */
        bool handleSigterm = false;
    };

    /**
     * Binds the listeners immediately (so tcpPort() is valid and
     * bind failures surface before run()); attaches its transport
     * counters to @p service so the `stats` verb reports them.
     * @p service must outlive the server.
     */
    Server(DseService &service, Options options);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** False when a listener failed to bind (run() would return 1);
     * the reason was warn()ed. */
    bool listening() const { return startError_.empty(); }

    /** The bound TCP port (resolves port 0), 0 without a TCP
     * listener. Valid right after construction. */
    uint16_t tcpPort() const { return tcpPort_; }

    /**
     * Run the event loop until drained (shutdown verb, SIGTERM,
     * requestDrain()) or the accept limit is exhausted. Returns 0 on
     * clean exit (in-flight work finished, cache flushed), 1 when a
     * listener failed. Call once.
     */
    int run();

    /** Begin a graceful drain; safe from any thread. */
    void requestDrain();

    const TransportStats &stats() const { return stats_; }

  private:
    struct Task
    {
        std::shared_ptr<Connection> conn;
        uint64_t seq = 0;
        std::string line;
    };

    void workerLoop();
    void acceptPending(int listen_fd);
    void onReadable(const std::shared_ptr<Connection> &conn);
    void handleLine(const std::shared_ptr<Connection> &conn,
                    std::string line, bool overlong);
    /** Queue an immediate (non-dispatched) response in order. */
    void respondNow(const std::shared_ptr<Connection> &conn,
                    const std::string &response);
    /** Move ready responses to the write queue and push bytes until
     * EAGAIN; write errors mark the connection closing. */
    void pumpOut(const std::shared_ptr<Connection> &conn);
    void closeConnection(uint64_t id);
    /** Close finished/broken connections; returns true when the
     * loop should exit. */
    bool sweepAndCheckExit();
    int pollTimeoutMs() const;
    void enforceDeadlines();
    bool acceptingClosed() const;

    DseService &service_;
    Options options_;
    std::string startError_;

    util::ScopedFd unixListener_;
    util::ScopedFd tcpListener_;
    uint16_t tcpPort_ = 0;
    util::SelfPipe wake_;

    std::map<uint64_t, std::shared_ptr<Connection>> conns_;
    uint64_t nextConnId_ = 1;
    uint64_t acceptedTotal_ = 0;
    bool draining_ = false;
    std::atomic<bool> drainRequested_{false};
    volatile std::sig_atomic_t sigtermSeen_ = 0;

    /** Guards tasks_, stopWorkers_, globalInflight_, and every
     * Connection's reorder buffer + inflight count (the state worker
     * threads touch). Sockets and read buffers are poll-thread-only
     * and need no lock. */
    std::mutex mutex_;
    std::condition_variable taskReady_;
    std::deque<Task> tasks_;
    int globalInflight_ = 0;
    bool stopWorkers_ = false;
    std::vector<std::thread> workers_;

    TransportStats stats_;

    static Server *signalTarget_;
    static void sigtermHandler(int);
};

} // namespace service
} // namespace mclp

#endif // MCLP_SERVICE_SERVER_H
