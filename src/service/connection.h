/**
 * @file
 * Per-connection state of the event-driven DSE server: buffered line
 * framing with a hard length cap, the pipelining reorder buffer, and
 * the write-side byte queue.
 *
 * A Connection owns no sockets calls and no locks — it is the passive
 * state the server's poll loop (src/service/server.h) drives. The
 * contract that makes pipelining safe:
 *
 *  - every answered request line gets a monotonically increasing
 *    per-connection sequence number in *parse order* (allocSeq());
 *  - responses complete in any order (complete()), park in the
 *    reorder buffer, and only flushReady() moves them to the write
 *    queue — strictly in sequence order. A client therefore reads
 *    responses in exactly the order it wrote requests, no matter how
 *    the worker pool interleaved them.
 *
 * Line framing is bounded: a line longer than the cap is surrendered
 * once as LineStatus::Overlong (with its truncated prefix, so the
 * server can scavenge an id= for the err response) and the remainder
 * is discarded up to the next newline — the connection stays usable,
 * and the read buffer never grows past cap + one read chunk.
 */

#ifndef MCLP_SERVICE_CONNECTION_H
#define MCLP_SERVICE_CONNECTION_H

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>

#include "util/net.h"

namespace mclp {
namespace service {

class Connection
{
  public:
    enum class LineStatus
    {
        None,     ///< no complete line buffered
        Line,     ///< *line holds the next complete line
        Overlong  ///< *line holds the truncated prefix of a line
                  ///< past the cap; the rest is being discarded
    };

    Connection(int fd, uint64_t id, size_t max_line_bytes)
        : fd_(fd), id_(id), maxLineBytes_(max_line_bytes),
          lastActivityMs_(util::monotonicMs())
    {
    }

    int fd() const { return fd_.get(); }
    uint64_t id() const { return id_; }

    // ---------------------------------------------------- read side

    /** Buffer @p size freshly read bytes (drops them while an
     * overlong line is being discarded). */
    void ingest(const char *data, size_t size);

    /** Extract the next complete request line (newline stripped), or
     * report an overlong one. Call until LineStatus::None. */
    LineStatus nextLine(std::string *line);

    /**
     * The trailing unterminated line once the peer half-closed: the
     * batch protocol has always answered a final line without a
     * newline, and a torn line at close is answered (as the err it
     * usually is) rather than dropped. False when nothing remains.
     */
    bool takeEofRemainder(std::string *line);

    /** True while a partial line is buffered (read-timeout clock);
     * an overlong line still being discarded counts — the client is
     * mid-line either way. */
    bool hasPartialLine() const
    {
        return rpos_ < rbuf_.size() || discarding_;
    }

    // ------------------------------------------- pipelining / order

    /** Sequence number for the next answered line (parse order). */
    uint64_t allocSeq() { return nextSeq_++; }

    /** Park @p response for slot @p seq (any completion order). */
    void complete(uint64_t seq, std::string response);

    /** Move consecutive completed responses, in sequence order, into
     * the write queue. Returns the number of bytes queued. */
    size_t flushReady();

    /** Responses parked or still being computed. */
    bool hasUnanswered() const { return nextFlush_ < nextSeq_; }

    // ----------------------------------------------------- write side

    bool wantsWrite() const { return woff_ < wbuf_.size(); }
    size_t writeBacklog() const { return wbuf_.size() - woff_; }
    const char *writeData() const { return wbuf_.data() + woff_; }
    void consumeWritten(size_t bytes);

    // ------------------------------------------------------- status

    bool peerClosed = false;  ///< read side saw EOF
    bool closing = false;     ///< fatal error/timeout: drop when drained
    int inflight = 0;         ///< dispatched, not yet complete()d

    int64_t lastActivityMs() const { return lastActivityMs_; }
    void touch() { lastActivityMs_ = util::monotonicMs(); }

    /** Start of the currently buffered partial line, -1 when none
     * (the read-timeout deadline anchors here, so a slow-loris drip
     * cannot extend its own deadline byte by byte). */
    int64_t lineStartMs() const
    {
        return hasPartialLine() ? lineStartMs_ : -1;
    }

  private:
    util::ScopedFd fd_;
    uint64_t id_ = 0;
    size_t maxLineBytes_;

    std::string rbuf_;        ///< bytes of the (partial) current lines
    size_t rpos_ = 0;         ///< scan offset into rbuf_
    bool discarding_ = false; ///< swallowing an overlong line
    int64_t lineStartMs_ = 0;

    uint64_t nextSeq_ = 0;    ///< next sequence to hand out
    uint64_t nextFlush_ = 0;  ///< next sequence to write out
    std::map<uint64_t, std::string> done_;  ///< reorder buffer

    std::string wbuf_;
    size_t woff_ = 0;

    int64_t lastActivityMs_ = 0;
};

} // namespace service
} // namespace mclp

#endif // MCLP_SERVICE_CONNECTION_H
