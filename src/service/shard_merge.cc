#include "service/shard_merge.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <sstream>

#include "util/string_utils.h"

namespace mclp {
namespace service {

std::string
mergeStatsParts(const std::string &verb,
                const std::vector<std::string> &parts)
{
    std::string prefix = "ok " + verb;
    std::vector<std::string> order;
    std::map<std::string, double> value;
    std::map<std::string, bool> integral;
    for (const std::string &part : parts) {
        if (part.compare(0, prefix.size(), prefix) != 0)
            continue;  // err line; it still shows in the breakdown
        std::istringstream in(part.substr(prefix.size()));
        std::string token;
        while (in >> token) {
            size_t eq = token.find('=');
            if (eq == std::string::npos || eq == 0)
                continue;
            std::string key = token.substr(0, eq);
            std::string val = token.substr(eq + 1);
            char *end = nullptr;
            double v = std::strtod(val.c_str(), &end);
            if (val.empty() || end == val.c_str() || *end != '\0')
                continue;  // non-numeric: breakdown only
            auto it = value.find(key);
            if (it == value.end()) {
                order.push_back(key);
                value[key] = v;
                integral[key] =
                    val.find('.') == std::string::npos &&
                    val.find('e') == std::string::npos &&
                    val.find('n') == std::string::npos &&
                    val.find('N') == std::string::npos;
                continue;
            }
            if (key == "enabled" || key == "clean")
                it->second = std::min(it->second, v);
            else if (key == "generation")
                it->second = std::max(it->second, v);
            else
                it->second += v;
            if (val.find('.') != std::string::npos ||
                val.find('e') != std::string::npos)
                integral[key] = false;
        }
    }
    std::string out =
        prefix + " shards=" + std::to_string(parts.size());
    for (const std::string &key : order) {
        double v = value[key];
        // A hostile worker can claim any magnitude ("hits=9e99"); a
        // float-to-int cast outside the representable range is UB, so
        // sums that left the safe window print as decimals instead.
        bool in_range =
            std::isfinite(v) && v > -9.2e18 && v < 9.2e18;
        if (integral[key] && in_range)
            out += util::strprintf(" %s=%lld", key.c_str(),
                                   static_cast<long long>(v));
        else
            out += util::strprintf(" %s=%.3f", key.c_str(), v);
    }
    for (size_t w = 0; w < parts.size(); ++w)
        out += " | shard" + std::to_string(w) + ": " + parts[w];
    return out;
}

} // namespace service
} // namespace mclp
