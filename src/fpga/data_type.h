/**
 * @file
 * Arithmetic data types and their FPGA cost characteristics
 * (Section 4.2, "Modeling DSP Slice Usage").
 */

#ifndef MCLP_FPGA_DATA_TYPE_H
#define MCLP_FPGA_DATA_TYPE_H

#include <cstdint>
#include <string>

namespace mclp {
namespace fpga {

/** The two arithmetic configurations evaluated in the paper. */
enum class DataType
{
    Float32,  ///< single-precision floating point
    Fixed16,  ///< 16-bit fixed point
};

/** Bytes per word for a data type (4 for float32, 2 for fixed16). */
int64_t wordBytes(DataType type);

/**
 * DSP slices per multiplier-adder pair.
 *
 * Float: each multiplier takes 2 DSP slices, each adder 3, so one
 * MAC unit costs 5. Fixed16: a single DSP48 provides both, cost 1.
 */
int64_t dspPerMac(DataType type);

/**
 * True if pairs of words are packed into one 32-bit-wide BRAM,
 * halving the number of memory banks (Section 4.2, BRAM model).
 */
bool packsBankPairs(DataType type);

/** "float" or "fixed". */
std::string dataTypeName(DataType type);

/** Parse "float"/"float32"/"fixed"/"fixed16" (fatal on other input). */
DataType dataTypeByName(const std::string &name);

} // namespace fpga
} // namespace mclp

#endif // MCLP_FPGA_DATA_TYPE_H
