#include "fpga/device.h"

#include <cctype>

#include "util/logging.h"

namespace mclp {
namespace fpga {

namespace {

/** The paper provisions accelerators with 80% of chip resources. */
constexpr double kBudgetFraction = 0.8;

} // namespace

int64_t
Device::dspBudget() const
{
    return static_cast<int64_t>(dspSlices * kBudgetFraction);
}

int64_t
Device::bramBudget() const
{
    return static_cast<int64_t>(bram18k * kBudgetFraction);
}

void
ResourceBudget::validate() const
{
    if (dspSlices <= 0)
        util::fatal("ResourceBudget: DSP budget must be positive");
    if (bram18k <= 0)
        util::fatal("ResourceBudget: BRAM budget must be positive");
    if (frequencyMhz <= 0)
        util::fatal("ResourceBudget: frequency must be positive");
}

Device
virtex7_485t()
{
    // 80% budgets: 2,240 DSP and 1,648 BRAM-18K (Section 6.1).
    return Device{"Virtex-7 485T", 2800, 2060, 607200, 303600};
}

Device
virtex7_690t()
{
    // 80% budgets: 2,880 DSP and 2,352 BRAM-18K (Section 6.1).
    return Device{"Virtex-7 690T", 3600, 2940, 866400, 433200};
}

Device
ultrascale_vu9p()
{
    return Device{"Virtex UltraScale+ VU9P", 6840, 4320, 2364480,
                  1182240};
}

Device
ultrascale_vu11p()
{
    return Device{"Virtex UltraScale+ VU11P", 9216, 4032, 2592000,
                  1296000};
}

Device
ultrascale_vu13p()
{
    // 80% budgets: 9,830 DSP and 4,300 BRAM-18K — roughly 3.4x the
    // 690T's compute, which is what lets depthwise-heavy nets keep
    // several CLPs busy at once.
    return Device{"Virtex UltraScale+ VU13P", 12288, 5376, 3456000,
                  1728000};
}

Device
alveo_u280()
{
    return Device{"Alveo U280", 9024, 4032, 2607360, 1303680};
}

std::vector<Device>
deviceCatalog()
{
    return {virtex7_485t(),    virtex7_690t(), ultrascale_vu9p(),
            ultrascale_vu11p(), ultrascale_vu13p(), alveo_u280()};
}

Device
deviceByName(const std::string &name)
{
    std::string lower;
    for (char ch : name)
        lower.push_back(
            static_cast<char>(std::tolower(static_cast<unsigned char>(ch))));
    if (lower == "485t" || lower == "virtex-7 485t" || lower == "v7-485t")
        return virtex7_485t();
    if (lower == "690t" || lower == "virtex-7 690t" || lower == "v7-690t")
        return virtex7_690t();
    if (lower == "vu9p")
        return ultrascale_vu9p();
    if (lower == "vu11p")
        return ultrascale_vu11p();
    if (lower == "vu13p")
        return ultrascale_vu13p();
    if (lower == "u280" || lower == "alveo-u280" || lower == "xcu280")
        return alveo_u280();
    util::fatal("unknown device '%s' (known: 485t, 690t, vu9p, vu11p, "
                "vu13p, u280)", name.c_str());
}

ResourceBudget
standardBudget(const Device &device, double frequency_mhz)
{
    ResourceBudget budget;
    budget.dspSlices = device.dspBudget();
    budget.bram18k = device.bramBudget();
    budget.bandwidthBytesPerCycle = 0.0;
    budget.frequencyMhz = frequency_mhz;
    budget.validate();
    return budget;
}

} // namespace fpga
} // namespace mclp
