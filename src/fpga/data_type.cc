#include "fpga/data_type.h"

#include "util/logging.h"

namespace mclp {
namespace fpga {

int64_t
wordBytes(DataType type)
{
    return type == DataType::Float32 ? 4 : 2;
}

int64_t
dspPerMac(DataType type)
{
    return type == DataType::Float32 ? 5 : 1;
}

bool
packsBankPairs(DataType type)
{
    return type == DataType::Fixed16;
}

std::string
dataTypeName(DataType type)
{
    return type == DataType::Float32 ? "float" : "fixed";
}

DataType
dataTypeByName(const std::string &name)
{
    if (name == "float" || name == "float32" || name == "fp32")
        return DataType::Float32;
    if (name == "fixed" || name == "fixed16" || name == "int16")
        return DataType::Fixed16;
    util::fatal("unknown data type '%s' (use float or fixed)",
                name.c_str());
}

} // namespace fpga
} // namespace mclp
