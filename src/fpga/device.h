/**
 * @file
 * FPGA device catalog and accelerator resource budgets.
 *
 * The paper evaluates on Xilinx Virtex-7 485T and 690T and projects to
 * Virtex UltraScale+ 9P/11P (Section 6.6). The catalog extends the
 * projection to two larger parts — VU13P and the Alveo U280 card —
 * for modern-net (grouped/depthwise) studies. Budgets for optimization
 * are 80% of chip DSP/BRAM capacity (Section 6.1).
 */

#ifndef MCLP_FPGA_DEVICE_H
#define MCLP_FPGA_DEVICE_H

#include <cstdint>
#include <string>
#include <vector>

#include "fpga/data_type.h"

namespace mclp {
namespace fpga {

/** Physical capacities of an FPGA part. */
struct Device
{
    std::string name;        ///< e.g. "Virtex-7 485T"
    int64_t dspSlices = 0;   ///< DSP48 slices on the part
    int64_t bram18k = 0;     ///< BRAM-18Kb units on the part
    int64_t flipFlops = 0;   ///< FFs (for utilization reporting only)
    int64_t luts = 0;        ///< LUTs (for utilization reporting only)

    /** Budget at the standard 80% provisioning used by the paper. */
    int64_t dspBudget() const;

    /** BRAM-18K budget at the standard 80% provisioning. */
    int64_t bramBudget() const;
};

/**
 * Resource budget handed to the optimizer: DSP slices, BRAM-18Kb
 * units, off-chip bandwidth in bytes per cycle, and the clock in MHz
 * (used only to convert to/from GB/s and img/s).
 */
struct ResourceBudget
{
    int64_t dspSlices = 0;
    int64_t bram18k = 0;
    double bandwidthBytesPerCycle = 0.0;  ///< <= 0 means unconstrained
    double frequencyMhz = 100.0;

    /** Bandwidth in GB/s at the configured frequency. */
    double
    bandwidthGbps() const
    {
        return bandwidthBytesPerCycle * frequencyMhz * 1e6 / 1e9;
    }

    /** Set bandwidth from GB/s at the configured frequency. */
    void
    setBandwidthGbps(double gbps)
    {
        bandwidthBytesPerCycle = gbps * 1e9 / (frequencyMhz * 1e6);
    }

    /** True if off-chip bandwidth is a constraint. */
    bool bandwidthLimited() const { return bandwidthBytesPerCycle > 0.0; }

    /** fatal() unless DSP and BRAM budgets are positive. */
    void validate() const;
};

/** Virtex-7 485T: 2,800 DSP, 2,060 BRAM-18K. */
Device virtex7_485t();

/** Virtex-7 690T: 3,600 DSP, 2,940 BRAM-18K. */
Device virtex7_690t();

/** Virtex UltraScale+ VU9P: 6,840 DSP. */
Device ultrascale_vu9p();

/** Virtex UltraScale+ VU11P: 9,216 DSP. */
Device ultrascale_vu11p();

/** Virtex UltraScale+ VU13P: 12,288 DSP, 5,376 BRAM-18K — the largest
 * monolithic-logic UltraScale+ part, for modern-net headroom studies. */
Device ultrascale_vu13p();

/** Alveo U280 (XCU280): 9,024 DSP, 4,032 BRAM-18K — a datacenter
 * accelerator card part with HBM-class off-chip bandwidth. */
Device alveo_u280();

/** All catalog devices. */
std::vector<Device> deviceCatalog();

/** Look up a device by short name ("485t", "690t", "vu9p", "vu11p",
 * "vu13p", "u280"). */
Device deviceByName(const std::string &name);

/**
 * The paper's standard budget for a device: 80% of DSP/BRAM, the given
 * clock, and unconstrained bandwidth (callers add a bandwidth cap when
 * studying bandwidth-bound behaviour).
 */
ResourceBudget standardBudget(const Device &device, double frequency_mhz);

} // namespace fpga
} // namespace mclp

#endif // MCLP_FPGA_DEVICE_H
