#include "model/clp_config.h"

#include <vector>

#include "util/logging.h"
#include "util/string_utils.h"

namespace mclp {
namespace model {

void
MultiClpDesign::validate(const nn::Network &network) const
{
    if (clps.empty())
        util::fatal("MultiClpDesign: design has no CLPs");

    std::vector<int> seen(network.numLayers(), 0);
    for (size_t ci = 0; ci < clps.size(); ++ci) {
        const ClpConfig &clp = clps[ci];
        if (clp.shape.tn <= 0 || clp.shape.tm <= 0) {
            util::fatal("MultiClpDesign: CLP%zu has non-positive shape "
                        "Tn=%lld Tm=%lld", ci,
                        static_cast<long long>(clp.shape.tn),
                        static_cast<long long>(clp.shape.tm));
        }
        if (clp.layers.empty())
            util::fatal("MultiClpDesign: CLP%zu has no layers", ci);
        for (const LayerBinding &binding : clp.layers) {
            if (binding.layerIdx >= network.numLayers()) {
                util::fatal("MultiClpDesign: CLP%zu references layer %zu "
                            "but network %s has only %zu layers", ci,
                            binding.layerIdx, network.name().c_str(),
                            network.numLayers());
            }
            const nn::ConvLayer &layer = network.layer(binding.layerIdx);
            const Tiling &t = binding.tiling;
            if (t.tr <= 0 || t.tc <= 0 || t.tr > layer.r || t.tc > layer.c) {
                util::fatal("MultiClpDesign: CLP%zu layer %s has invalid "
                            "tiling Tr=%lld Tc=%lld (R=%lld C=%lld)", ci,
                            layer.name.c_str(),
                            static_cast<long long>(t.tr),
                            static_cast<long long>(t.tc),
                            static_cast<long long>(layer.r),
                            static_cast<long long>(layer.c));
            }
            ++seen[binding.layerIdx];
        }
    }
    for (size_t li = 0; li < seen.size(); ++li) {
        if (seen[li] != 1) {
            util::fatal("MultiClpDesign: layer %s assigned %d times "
                        "(must be exactly once)",
                        network.layer(li).name.c_str(), seen[li]);
        }
    }
}

std::string
MultiClpDesign::toString(const nn::Network &network) const
{
    std::string out = util::strprintf(
        "MultiClpDesign for %s (%zu CLPs, %s)\n", network.name().c_str(),
        clps.size(), fpga::dataTypeName(dataType).c_str());
    for (size_t ci = 0; ci < clps.size(); ++ci) {
        const ClpConfig &clp = clps[ci];
        out += util::strprintf("  CLP%zu: Tn=%lld Tm=%lld, layers:", ci,
                               static_cast<long long>(clp.shape.tn),
                               static_cast<long long>(clp.shape.tm));
        for (const LayerBinding &binding : clp.layers) {
            out += util::strprintf(
                " %s(Tr=%lld,Tc=%lld)",
                network.layer(binding.layerIdx).name.c_str(),
                static_cast<long long>(binding.tiling.tr),
                static_cast<long long>(binding.tiling.tc));
        }
        out += "\n";
    }
    return out;
}

} // namespace model
} // namespace mclp
