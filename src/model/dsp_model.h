/**
 * @file
 * DSP-slice cost model (Section 4.2, "Modeling DSP Slice Usage").
 *
 * The dominant DSP use is the Tm dot-product units of width Tn plus Tm
 * accumulator adders: Tn*Tm multipliers and Tn*Tm adders in total. For
 * single-precision float a multiplier costs 2 DSP slices and an adder
 * 3 (5 per MAC pair); for 16-bit fixed point one DSP48 slice provides
 * both (1 per MAC pair).
 */

#ifndef MCLP_MODEL_DSP_MODEL_H
#define MCLP_MODEL_DSP_MODEL_H

#include <cstdint>

#include "fpga/data_type.h"
#include "model/clp_config.h"

namespace mclp {
namespace model {

/** DSP slices used by a CLP's compute module. */
int64_t clpDsp(const ClpShape &shape, fpga::DataType type);

/** DSP slices used by all CLPs of a design. */
int64_t designDsp(const MultiClpDesign &design);

/** Largest Tn*Tm product affordable within a DSP budget. */
int64_t macBudget(int64_t dsp_budget, fpga::DataType type);

} // namespace model
} // namespace mclp

#endif // MCLP_MODEL_DSP_MODEL_H
