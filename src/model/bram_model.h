/**
 * @file
 * BRAM cost model (Section 4.2, "Modeling BRAM Usage").
 *
 * Buffers are banked for parallel access and double-buffered to
 * overlap transfer with compute. The accounting unit is the Virtex-7
 * BRAM-18Kb block: 512 32-bit words, one read port plus one write port
 * in Simple Dual-Port mode. Rules implemented here:
 *
 * - Input buffer: Tn banks, each sized for the most demanding layer:
 *   Bi = max over layers of ((Tr-1)S+K) * ((Tc-1)S+K) words.
 * - Weight buffer: Tn*Tm banks of Bw = max K^2 words.
 * - Output buffer: Tm banks of Bo = max Tr*Tc words; accumulation
 *   needs a read and a write port on the working copy, so a
 *   double-buffered output bank takes at least 2 BRAMs.
 * - A double-buffered input/weight bank with Bi <= 256 words fits in
 *   one BRAM (the single BRAM provides both ports and both copies).
 * - Banks holding fewer than 10 words become LUTRAM and cost nothing.
 * - For 16-bit fixed point, pairs of banks pack into one 32-bit-wide
 *   BRAM, halving the bank count.
 */

#ifndef MCLP_MODEL_BRAM_MODEL_H
#define MCLP_MODEL_BRAM_MODEL_H

#include <cstdint>

#include "fpga/data_type.h"
#include "model/clp_config.h"
#include "nn/conv_layer.h"
#include "nn/network.h"

namespace mclp {
namespace model {

/** Words one input-buffer bank must hold for a layer at a tiling. */
int64_t inputBankWords(const nn::ConvLayer &layer, const Tiling &tiling);

/** Words one output-buffer bank must hold for a tiling: Tr * Tc. */
int64_t outputBankWords(const Tiling &tiling);

/** Words one weight-buffer bank must hold for a layer: K^2. */
int64_t weightBankWords(const nn::ConvLayer &layer);

/**
 * BRAM-18Kb blocks for one double-buffered bank of @p words 32-bit
 * words. @p needs_two_ports marks accumulation (output) banks, which
 * require at least two BRAMs.
 */
int64_t bramsPerBank(int64_t words, bool needs_two_ports);

/** Effective bank count after 16-bit pair packing. */
int64_t effectiveBanks(int64_t banks, fpga::DataType type);

/** Per-buffer BRAM usage of one CLP. */
struct BramBreakdown
{
    int64_t input = 0;
    int64_t weight = 0;
    int64_t output = 0;

    int64_t total() const { return input + weight + output; }
};

/**
 * BRAM usage of a CLP given its shape and per-layer tilings. Bank
 * sizes are provisioned for the most demanding assigned layer.
 */
BramBreakdown clpBram(const ClpConfig &clp, const nn::Network &network,
                      fpga::DataType type);

/** Total BRAM-18Kb usage of a design. */
int64_t designBram(const MultiClpDesign &design,
                   const nn::Network &network);

} // namespace model
} // namespace mclp

#endif // MCLP_MODEL_BRAM_MODEL_H
