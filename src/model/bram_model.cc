#include "model/bram_model.h"

#include <algorithm>

#include "util/logging.h"
#include "util/math.h"

namespace mclp {
namespace model {

namespace {

/** Words per BRAM-18Kb block at 32-bit width. */
constexpr int64_t kWordsPerBram = 512;

/** Banks smaller than this become LUTRAM and cost no BRAM. */
constexpr int64_t kLutramThreshold = 10;

} // namespace

int64_t
inputBankWords(const nn::ConvLayer &layer, const Tiling &tiling)
{
    if (tiling.tr <= 0 || tiling.tc <= 0)
        util::panic("inputBankWords: non-positive tiling");
    return ((tiling.tr - 1) * layer.s + layer.k) *
           ((tiling.tc - 1) * layer.s + layer.k);
}

int64_t
outputBankWords(const Tiling &tiling)
{
    return tiling.tr * tiling.tc;
}

int64_t
weightBankWords(const nn::ConvLayer &layer)
{
    return layer.k * layer.k;
}

int64_t
bramsPerBank(int64_t words, bool needs_two_ports)
{
    if (words <= 0)
        util::panic("bramsPerBank: bank size must be positive");
    if (words < kLutramThreshold)
        return 0;
    // Two copies (ping/pong) of the bank, each ceil(words/512) BRAMs.
    int64_t doubled = 2 * util::ceilDiv(words, kWordsPerBram);
    if (needs_two_ports)
        return std::max<int64_t>(2, doubled);
    // A single BRAM already provides one read and one write port, so
    // when both copies fit in half a BRAM each (<= 256 words), one
    // BRAM suffices for the double-buffered bank.
    if (words <= kWordsPerBram / 2)
        return 1;
    return doubled;
}

int64_t
effectiveBanks(int64_t banks, fpga::DataType type)
{
    if (fpga::packsBankPairs(type))
        return util::ceilDiv<int64_t>(banks, 2);
    return banks;
}

BramBreakdown
clpBram(const ClpConfig &clp, const nn::Network &network,
        fpga::DataType type)
{
    if (clp.layers.empty())
        util::fatal("clpBram: CLP has no layers assigned");

    int64_t bi = 0;  // input bank words (most demanding layer)
    int64_t bo = 0;  // output bank words
    int64_t bw = 0;  // weight bank words
    for (const LayerBinding &binding : clp.layers) {
        const nn::ConvLayer &layer = network.layer(binding.layerIdx);
        bi = std::max(bi, inputBankWords(layer, binding.tiling));
        bo = std::max(bo, outputBankWords(binding.tiling));
        bw = std::max(bw, weightBankWords(layer));
    }

    BramBreakdown out;
    out.input = effectiveBanks(clp.shape.tn, type) *
                bramsPerBank(bi, false);
    out.weight = effectiveBanks(clp.shape.tn * clp.shape.tm, type) *
                 bramsPerBank(bw, false);
    out.output = effectiveBanks(clp.shape.tm, type) *
                 bramsPerBank(bo, true);
    return out;
}

int64_t
designBram(const MultiClpDesign &design, const nn::Network &network)
{
    int64_t total = 0;
    for (const auto &clp : design.clps)
        total += clpBram(clp, network, design.dataType).total();
    return total;
}

} // namespace model
} // namespace mclp
