/**
 * @file
 * Off-chip bandwidth model (Section 4.2, "Modeling Bandwidth Usage").
 *
 * A CLP double-buffers every on-chip array, so the transfer for the
 * next tile round overlaps the compute of the current one. One round
 * is one iteration of the n loop in Listing 2: it loads an input tile
 * (Tn maps of ((Tr-1)S+K) x ((Tc-1)S+K) words) and a weight tile
 * (Tn*Tm*K^2 words) while computing K^2*Tr*Tc pipelined cycles; after
 * the last n step of an (r,c,m) iteration the output tile (Tm*Tr*Tc
 * words) drains while subsequent rounds proceed.
 *
 * The peak requirement is the per-round transfer divided by the
 * per-round compute time, with the output drain amortized over the
 * nsteps rounds available to it. Total traffic is counted exactly
 * (boundary tiles transfer only their valid region).
 */

#ifndef MCLP_MODEL_BANDWIDTH_MODEL_H
#define MCLP_MODEL_BANDWIDTH_MODEL_H

#include <cstdint>

#include "fpga/data_type.h"
#include "model/clp_config.h"
#include "nn/conv_layer.h"
#include "nn/network.h"

namespace mclp {
namespace model {

/** Exact per-layer off-chip traffic in words. */
struct LayerTraffic
{
    int64_t inputWords = 0;
    int64_t weightWords = 0;
    int64_t outputWords = 0;

    int64_t
    totalWords() const
    {
        return inputWords + weightWords + outputWords;
    }
};

/** Exact traffic for a layer processed with (Tn,Tm) and (Tr,Tc). */
LayerTraffic layerTraffic(const nn::ConvLayer &layer,
                          const ClpShape &shape, const Tiling &tiling);

/**
 * Peak bandwidth, in words per cycle, needed to keep the CLP's
 * arithmetic units busy on this layer.
 */
double layerPeakWordsPerCycle(const nn::ConvLayer &layer,
                              const ClpShape &shape, const Tiling &tiling);

/**
 * Cycles to process a layer when the CLP is granted
 * @p bw_bytes_per_cycle of off-chip bandwidth. Equals the
 * compute-bound cycle count when the bandwidth suffices; otherwise the
 * transfer time dominates (double buffering overlaps the two
 * completely, so the result is their maximum). Non-positive bandwidth
 * means unconstrained.
 */
int64_t layerCyclesUnderBandwidth(const nn::ConvLayer &layer,
                                  const ClpShape &shape,
                                  const Tiling &tiling,
                                  fpga::DataType type,
                                  double bw_bytes_per_cycle);

/** Peak bandwidth of a CLP: max over its (sequential) layers. */
double clpPeakBytesPerCycle(const ClpConfig &clp,
                            const nn::Network &network,
                            fpga::DataType type);

/** Total per-epoch traffic of a CLP in bytes. */
int64_t clpTrafficBytes(const ClpConfig &clp, const nn::Network &network,
                        fpga::DataType type);

/**
 * Epoch cycles of a CLP under a bandwidth grant (sum over its layers
 * of layerCyclesUnderBandwidth).
 */
int64_t clpCyclesUnderBandwidth(const ClpConfig &clp,
                                const nn::Network &network,
                                fpga::DataType type,
                                double bw_bytes_per_cycle);

} // namespace model
} // namespace mclp

#endif // MCLP_MODEL_BANDWIDTH_MODEL_H
