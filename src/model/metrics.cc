#include "model/metrics.h"

#include <algorithm>
#include <cmath>

#include "model/bandwidth_model.h"
#include "model/cycle_model.h"
#include "model/dsp_model.h"
#include "util/logging.h"

namespace mclp {
namespace model {

DesignMetrics
evaluateDesign(const MultiClpDesign &design, const nn::Network &network,
               const fpga::ResourceBudget &budget)
{
    design.validate(network);

    DesignMetrics metrics;
    metrics.macUnits = design.totalMacUnits();
    metrics.dspSlices = designDsp(design);
    for (const auto &clp : design.clps) {
        BramBreakdown b = clpBram(clp, network, design.dataType);
        metrics.bram.input += b.input;
        metrics.bram.weight += b.weight;
        metrics.bram.output += b.output;
    }

    // Peak demand: every CLP simultaneously at its worst layer.
    std::vector<double> peaks;
    double peak_sum = 0.0;
    for (const auto &clp : design.clps) {
        double peak = clpPeakBytesPerCycle(clp, network, design.dataType);
        peaks.push_back(peak);
        peak_sum += peak;
    }
    metrics.peakBandwidthBytesPerCycle = peak_sum;

    bool limited = budget.bandwidthLimited() &&
                   peak_sum > budget.bandwidthBytesPerCycle;
    metrics.clpCycles.resize(design.clps.size());
    metrics.clpBandwidthBytesPerCycle.assign(design.clps.size(), 0.0);
    for (size_t ci = 0; ci < design.clps.size(); ++ci) {
        const ClpConfig &clp = design.clps[ci];
        if (!limited) {
            metrics.clpCycles[ci] = clpComputeCycles(clp, network);
        } else {
            // Proportional share of the constrained bandwidth.
            double grant = budget.bandwidthBytesPerCycle *
                           (peaks[ci] / peak_sum);
            metrics.clpBandwidthBytesPerCycle[ci] = grant;
            metrics.clpCycles[ci] = clpCyclesUnderBandwidth(
                clp, network, design.dataType, grant);
            if (metrics.clpCycles[ci] > clpComputeCycles(clp, network))
                metrics.bandwidthBound = true;
        }
        metrics.epochCycles =
            std::max(metrics.epochCycles, metrics.clpCycles[ci]);
    }

    metrics.utilization =
        static_cast<double>(network.totalMacs()) /
        (static_cast<double>(metrics.macUnits) *
         static_cast<double>(metrics.epochCycles));
    return metrics;
}

bool
fitsBudget(const MultiClpDesign &design, const nn::Network &network,
           const fpga::ResourceBudget &budget)
{
    if (designDsp(design) > budget.dspSlices)
        return false;
    return designBram(design, network) <= budget.bram18k;
}

double
requiredBandwidthBytesPerCycle(const MultiClpDesign &design,
                               const nn::Network &network,
                               const fpga::ResourceBudget &budget,
                               double slack)
{
    if (slack < 1.0)
        util::fatal("requiredBandwidthBytesPerCycle: slack must be >= 1");

    fpga::ResourceBudget unconstrained = budget;
    unconstrained.bandwidthBytesPerCycle = 0.0;
    DesignMetrics free_run = evaluateDesign(design, network, unconstrained);
    int64_t allowed = static_cast<int64_t>(
        std::floor(static_cast<double>(free_run.epochCycles) * slack));

    auto epochAt = [&](double bw) {
        fpga::ResourceBudget b = budget;
        b.bandwidthBytesPerCycle = bw;
        return evaluateDesign(design, network, b).epochCycles;
    };

    double hi = free_run.peakBandwidthBytesPerCycle;
    if (hi <= 0.0)
        return 0.0;
    if (epochAt(hi) > allowed)
        return hi;  // even full peak demand cannot hit the target
    double lo = 0.0;
    for (int iter = 0; iter < 60 && (hi - lo) > 1e-6 * hi; ++iter) {
        double mid = 0.5 * (lo + hi);
        if (epochAt(mid) <= allowed)
            hi = mid;
        else
            lo = mid;
    }
    return hi;
}

std::vector<LayerFit>
layerFitReport(const MultiClpDesign &design, const nn::Network &network)
{
    design.validate(network);
    std::vector<LayerFit> fits;
    for (size_t ci = 0; ci < design.clps.size(); ++ci) {
        const ClpConfig &clp = design.clps[ci];
        for (const LayerBinding &binding : clp.layers) {
            const nn::ConvLayer &layer = network.layer(binding.layerIdx);
            LayerFit fit;
            fit.layerIdx = binding.layerIdx;
            fit.clpIdx = ci;
            fit.cycles = layerCycles(layer, clp.shape);
            fit.utilization = layerUtilization(layer, clp.shape);
            fits.push_back(fit);
        }
    }
    std::sort(fits.begin(), fits.end(),
              [](const LayerFit &a, const LayerFit &b) {
                  return a.utilization < b.utilization;
              });
    return fits;
}

} // namespace model
} // namespace mclp
