#include "model/bandwidth_model.h"

#include <algorithm>
#include <cmath>

#include "model/bram_model.h"
#include "model/cycle_model.h"
#include "util/logging.h"
#include "util/math.h"

namespace mclp {
namespace model {

namespace {

/** Sum over tile steps of the input rows/cols each step touches. */
int64_t
sumInputExtent(int64_t total, int64_t tile, int64_t stride, int64_t kernel)
{
    int64_t sum = 0;
    for (int64_t start = 0; start < total; start += tile) {
        int64_t loops = std::min(tile, total - start);
        sum += (loops - 1) * stride + kernel;
    }
    return sum;
}

} // namespace

LayerTraffic
layerTraffic(const nn::ConvLayer &layer, const ClpShape &shape,
             const Tiling &tiling)
{
    if (tiling.tr <= 0 || tiling.tc <= 0 || tiling.tr > layer.r ||
        tiling.tc > layer.c) {
        util::fatal("layerTraffic: invalid tiling Tr=%lld Tc=%lld for "
                    "layer %s", static_cast<long long>(tiling.tr),
                    static_cast<long long>(tiling.tc), layer.name.c_str());
    }

    int64_t msteps = util::ceilDiv(layer.groupM(), shape.tm);
    int64_t rsteps = util::ceilDiv(layer.r, tiling.tr);
    int64_t csteps = util::ceilDiv(layer.c, tiling.tc);

    // Input tiles are reloaded for every m step (Listing 2 refills
    // Ibuf inside the m loop); across the n loop the valid input maps
    // sum to N/G — each group only ever streams its own inputs — and
    // across (r,c) the touched rows/cols sum to the per-step extents
    // below. The G groups run back to back, hence the leading factor.
    int64_t sum_rows = sumInputExtent(layer.r, tiling.tr, layer.s, layer.k);
    int64_t sum_cols = sumInputExtent(layer.c, tiling.tc, layer.s, layer.k);

    LayerTraffic traffic;
    traffic.inputWords =
        layer.g * msteps * layer.groupN() * sum_rows * sum_cols;
    // Weights are reloaded for every (r,c) tile; valid (m,n) pairs sum
    // to M*N/G (each output map convolves only its group's inputs).
    traffic.weightWords = rsteps * csteps * layer.m * layer.groupN() *
                          layer.k * layer.k;
    // Each output word is written exactly once.
    traffic.outputWords = layer.m * layer.r * layer.c;
    return traffic;
}

double
layerPeakWordsPerCycle(const nn::ConvLayer &layer, const ClpShape &shape,
                       const Tiling &tiling)
{
    // Per-group n steps: a grouped layer's accumulation chain only
    // spans its own N/G inputs, so the output tile drains that much
    // sooner. Per-round tile sizes are shape geometry and unchanged.
    int64_t nsteps = util::ceilDiv(layer.groupN(), shape.tn);
    int64_t comp_cycles = layer.k * layer.k * tiling.tr * tiling.tc;
    int64_t input_tile = shape.tn * inputBankWords(layer, tiling);
    int64_t weight_tile = shape.tn * shape.tm * layer.k * layer.k;
    // The output tile (Tm*Tr*Tc words) drains over the nsteps rounds
    // of the following (r,c,m) iteration.
    double output_rate =
        static_cast<double>(shape.tm) /
        (static_cast<double>(nsteps) * layer.k * layer.k);
    return static_cast<double>(input_tile + weight_tile) /
               static_cast<double>(comp_cycles) +
           output_rate;
}

int64_t
layerCyclesUnderBandwidth(const nn::ConvLayer &layer,
                          const ClpShape &shape, const Tiling &tiling,
                          fpga::DataType type, double bw_bytes_per_cycle)
{
    int64_t compute = layerCycles(layer, shape);
    if (bw_bytes_per_cycle <= 0.0)
        return compute;
    LayerTraffic traffic = layerTraffic(layer, shape, tiling);
    double bytes = static_cast<double>(traffic.totalWords()) *
                   static_cast<double>(fpga::wordBytes(type));
    double transfer = bytes / bw_bytes_per_cycle;
    return std::max<int64_t>(compute,
                             static_cast<int64_t>(std::ceil(transfer)));
}

double
clpPeakBytesPerCycle(const ClpConfig &clp, const nn::Network &network,
                     fpga::DataType type)
{
    double peak = 0.0;
    for (const LayerBinding &binding : clp.layers) {
        const nn::ConvLayer &layer = network.layer(binding.layerIdx);
        peak = std::max(peak, layerPeakWordsPerCycle(layer, clp.shape,
                                                     binding.tiling));
    }
    return peak * static_cast<double>(fpga::wordBytes(type));
}

int64_t
clpTrafficBytes(const ClpConfig &clp, const nn::Network &network,
                fpga::DataType type)
{
    int64_t words = 0;
    for (const LayerBinding &binding : clp.layers) {
        const nn::ConvLayer &layer = network.layer(binding.layerIdx);
        words += layerTraffic(layer, clp.shape, binding.tiling)
                     .totalWords();
    }
    return words * fpga::wordBytes(type);
}

int64_t
clpCyclesUnderBandwidth(const ClpConfig &clp, const nn::Network &network,
                        fpga::DataType type, double bw_bytes_per_cycle)
{
    int64_t total = 0;
    for (const LayerBinding &binding : clp.layers) {
        const nn::ConvLayer &layer = network.layer(binding.layerIdx);
        total += layerCyclesUnderBandwidth(layer, clp.shape,
                                           binding.tiling, type,
                                           bw_bytes_per_cycle);
    }
    return total;
}

} // namespace model
} // namespace mclp
