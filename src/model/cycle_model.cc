#include "model/cycle_model.h"

#include "util/logging.h"
#include "util/math.h"

namespace mclp {
namespace model {

int64_t
layerCycles(const nn::ConvLayer &layer, const ClpShape &shape)
{
    if (shape.tn <= 0 || shape.tm <= 0)
        util::panic("layerCycles: non-positive CLP shape");
    // Grouped convolution runs the G groups sequentially, each over
    // its own N/G x M/G slice: cycles scale by G while the ceil()
    // terms shrink to the per-group extents. G=1 is the paper's
    // Listing-1 count unchanged.
    return layer.g * layer.r * layer.c *
           util::ceilDiv(layer.groupN(), shape.tn) *
           util::ceilDiv(layer.groupM(), shape.tm) * layer.k * layer.k;
}

int64_t
clpComputeCycles(const ClpConfig &clp, const nn::Network &network)
{
    int64_t total = 0;
    for (const LayerBinding &binding : clp.layers)
        total += layerCycles(network.layer(binding.layerIdx), clp.shape);
    return total;
}

double
layerUtilization(const nn::ConvLayer &layer, const ClpShape &shape)
{
    int64_t cycles = layerCycles(layer, shape);
    return static_cast<double>(layer.macs()) /
           (static_cast<double>(shape.macUnits()) *
            static_cast<double>(cycles));
}

int64_t
minimumPossibleCycles(const nn::Network &network, int64_t mac_units)
{
    if (mac_units <= 0)
        util::fatal("minimumPossibleCycles: MAC unit count must be > 0");
    return util::ceilDiv(network.totalMacs(), mac_units);
}

} // namespace model
} // namespace mclp
