#include "model/dsp_model.h"

#include "util/logging.h"

namespace mclp {
namespace model {

int64_t
clpDsp(const ClpShape &shape, fpga::DataType type)
{
    if (shape.tn <= 0 || shape.tm <= 0)
        util::panic("clpDsp: non-positive CLP shape");
    return fpga::dspPerMac(type) * shape.macUnits();
}

int64_t
designDsp(const MultiClpDesign &design)
{
    int64_t total = 0;
    for (const auto &clp : design.clps)
        total += clpDsp(clp.shape, design.dataType);
    return total;
}

int64_t
macBudget(int64_t dsp_budget, fpga::DataType type)
{
    if (dsp_budget <= 0)
        util::fatal("macBudget: DSP budget must be positive");
    return dsp_budget / fpga::dspPerMac(type);
}

} // namespace model
} // namespace mclp
