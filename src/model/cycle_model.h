/**
 * @file
 * Cycle-count model (Section 4.2, "Performance Model").
 *
 * With the tiled loop nest of Listing 2 and the (Tm, Tn) inner loops
 * fully unrolled, computing one layer takes
 *
 *     Cycles = R * C * ceil(N/Tn) * ceil(M/Tm) * K^2
 *
 * This is exact for the compute-bound case; bandwidth-bound behaviour
 * is modeled in bandwidth_model.h.
 */

#ifndef MCLP_MODEL_CYCLE_MODEL_H
#define MCLP_MODEL_CYCLE_MODEL_H

#include <cstdint>

#include "model/clp_config.h"
#include "nn/conv_layer.h"
#include "nn/network.h"

namespace mclp {
namespace model {

/** Compute-bound cycles for one layer on a (Tn, Tm) CLP. */
int64_t layerCycles(const nn::ConvLayer &layer, const ClpShape &shape);

/**
 * Compute-bound cycles for a whole CLP: the sum over its assigned
 * layers, since a CLP processes its layers sequentially in an epoch.
 */
int64_t clpComputeCycles(const ClpConfig &clp, const nn::Network &network);

/**
 * Dynamic arithmetic-unit utilization of one layer on a CLP: useful
 * MACs divided by (MAC units * cycles). In [0, 1].
 */
double layerUtilization(const nn::ConvLayer &layer, const ClpShape &shape);

/**
 * Lower bound on epoch cycles for a whole network given a number of
 * MAC units: total MACs / units, rounded up. Used as the starting
 * target of the optimization loop (Listing 3, MinimumPossibleCycles).
 */
int64_t minimumPossibleCycles(const nn::Network &network,
                              int64_t mac_units);

} // namespace model
} // namespace mclp

#endif // MCLP_MODEL_CYCLE_MODEL_H
