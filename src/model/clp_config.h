/**
 * @file
 * Configuration types for convolutional layer processors (CLPs).
 *
 * A CLP is parameterized by its compute-grid shape (Tn, Tm) and, for
 * each CNN layer assigned to it, the on-chip tiling (Tr, Tc) that
 * controls buffer sizes and data-transfer order (Sections 3.1, 4.2).
 */

#ifndef MCLP_MODEL_CLP_CONFIG_H
#define MCLP_MODEL_CLP_CONFIG_H

#include <cstdint>
#include <string>
#include <vector>

#include "fpga/data_type.h"
#include "nn/network.h"

namespace mclp {
namespace model {

/** Per-layer spatial tiling factors (Tr, Tc). */
struct Tiling
{
    int64_t tr = 0;
    int64_t tc = 0;

    bool operator==(const Tiling &other) const = default;
};

/** CLP compute-grid shape: Tm dot-product units of width Tn. */
struct ClpShape
{
    int64_t tn = 0;
    int64_t tm = 0;

    /** Number of multiplier/adder (MAC) pairs: Tn * Tm. */
    int64_t macUnits() const { return tn * tm; }

    bool operator==(const ClpShape &other) const = default;
};

/** Binding of one CNN layer (by index into the Network) to a CLP. */
struct LayerBinding
{
    size_t layerIdx = 0;
    Tiling tiling;

    bool operator==(const LayerBinding &other) const = default;
};

/** One CLP: its shape plus the layers it computes each epoch. */
struct ClpConfig
{
    ClpShape shape;
    std::vector<LayerBinding> layers;

    bool operator==(const ClpConfig &other) const = default;
};

/**
 * A complete accelerator: a set of CLPs covering every layer of the
 * network exactly once, operating concurrently on independent images
 * (Section 4.1).
 */
struct MultiClpDesign
{
    std::vector<ClpConfig> clps;
    fpga::DataType dataType = fpga::DataType::Float32;

    /** Total MAC units across all CLPs. */
    int64_t
    totalMacUnits() const
    {
        int64_t total = 0;
        for (const auto &clp : clps)
            total += clp.shape.macUnits();
        return total;
    }

    /** True when the design is a conventional Single-CLP. */
    bool isSingleClp() const { return clps.size() == 1; }

    /**
     * Check structural validity against @p network: at least one CLP,
     * positive shapes and tilings, every layer assigned exactly once.
     * Reports problems with util::fatal().
     */
    void validate(const nn::Network &network) const;

    /** Multi-line human-readable dump. */
    std::string toString(const nn::Network &network) const;

    /** Exact structural equality (shapes, assignment, tilings). */
    bool operator==(const MultiClpDesign &other) const = default;
};

} // namespace model
} // namespace mclp

#endif // MCLP_MODEL_CLP_CONFIG_H
