/**
 * @file
 * Whole-design evaluation: epoch length, throughput, dynamic
 * arithmetic-unit utilization, and resource totals (Sections 4.1-4.2,
 * the quantities reported in Tables 1, 3, and 5).
 */

#ifndef MCLP_MODEL_METRICS_H
#define MCLP_MODEL_METRICS_H

#include <cstdint>
#include <vector>

#include "fpga/device.h"
#include "model/bram_model.h"
#include "model/clp_config.h"
#include "nn/network.h"

namespace mclp {
namespace model {

/** Evaluated properties of a Multi-CLP (or Single-CLP) design. */
struct DesignMetrics
{
    /** Cycles per epoch: the max over CLPs (they run concurrently). */
    int64_t epochCycles = 0;

    /** Per-CLP cycles per epoch (compute or bandwidth bound). */
    std::vector<int64_t> clpCycles;

    /** Per-CLP bandwidth grant in bytes/cycle (0 if unconstrained). */
    std::vector<double> clpBandwidthBytesPerCycle;

    int64_t macUnits = 0;      ///< total Tn*Tm across CLPs
    int64_t dspSlices = 0;     ///< compute-module DSP slices
    BramBreakdown bram;        ///< summed BRAM usage

    /** Peak off-chip bandwidth demand in bytes/cycle. */
    double peakBandwidthBytesPerCycle = 0.0;

    /** Dynamic arithmetic-unit utilization in [0, 1]. */
    double utilization = 0.0;

    /** True if any CLP is limited by data transfer. */
    bool bandwidthBound = false;

    /** Images per second at @p frequency_mhz. */
    double
    imagesPerSec(double frequency_mhz) const
    {
        return frequency_mhz * 1e6 / static_cast<double>(epochCycles);
    }

    /** GFlop/s over the convolutional layers at @p frequency_mhz. */
    double
    gflops(const nn::Network &network, double frequency_mhz) const
    {
        return static_cast<double>(network.totalFlops()) *
               imagesPerSec(frequency_mhz) / 1e9;
    }

    /** Gop/s (fixed point reporting, 2 ops per MAC). */
    double
    gops(const nn::Network &network, double frequency_mhz) const
    {
        return gflops(network, frequency_mhz);
    }
};

/**
 * Evaluate a design against a network and budget. The bandwidth
 * budget, when present, is shared among CLPs: if the sum of per-CLP
 * peak demands fits, every CLP runs at full speed; otherwise grants
 * are scaled proportionally to demand and transfer-blocked CLPs run
 * at their bandwidth-bound rate (Section 4.3 allows such designs).
 * DSP/BRAM budget violations are NOT checked here (see
 * fitsBudget()), so that over-budget designs can still be inspected.
 */
DesignMetrics evaluateDesign(const MultiClpDesign &design,
                             const nn::Network &network,
                             const fpga::ResourceBudget &budget);

/** True if the design's DSP and BRAM use fit the budget. */
bool fitsBudget(const MultiClpDesign &design, const nn::Network &network,
                const fpga::ResourceBudget &budget);

/**
 * Smallest bandwidth (bytes/cycle) at which the design's epoch is
 * within @p slack (e.g. 1.02 for the paper's 2% margin) of its
 * unconstrained epoch. Binary search over the shared-bandwidth
 * evaluation; used to report the "B/w (GB/s)" columns of Tables 3/5.
 */
double requiredBandwidthBytesPerCycle(const MultiClpDesign &design,
                                      const nn::Network &network,
                                      const fpga::ResourceBudget &budget,
                                      double slack = 1.02);

/** How well one layer fits the CLP it is assigned to. */
struct LayerFit
{
    size_t layerIdx = 0;
    size_t clpIdx = 0;
    int64_t cycles = 0;      ///< compute-bound cycles on its CLP
    double utilization = 0;  ///< MACs / (units * cycles), in [0, 1]
};

/**
 * Per-layer dynamic utilization on the assigned CLPs — the quantity
 * whose mismatch Section 3.2 diagnoses (e.g. SqueezeNet layer 1 at
 * 33.3% on a 9x64 grid). Sorted worst-fit first.
 */
std::vector<LayerFit> layerFitReport(const MultiClpDesign &design,
                                     const nn::Network &network);

} // namespace model
} // namespace mclp

#endif // MCLP_MODEL_METRICS_H
