/**
 * @file
 * Tile-round schedules.
 *
 * One "round" is one iteration of the n loop in the tiled nest of
 * Listing 2/4: it loads an input tile and a weight tile, computes
 * K^2 * rloops * cloops pipelined cycles, and on the last n step of an
 * (r,c,m) iteration emits an output-tile store. The timing simulator
 * executes these rounds under double-buffer dependencies; the
 * bandwidth model integrates over the same quantities analytically.
 */

#ifndef MCLP_SIM_ROUND_SCHEDULE_H
#define MCLP_SIM_ROUND_SCHEDULE_H

#include <cstdint>
#include <vector>

#include "model/clp_config.h"
#include "nn/conv_layer.h"

namespace mclp {
namespace sim {

/** One tile round of a layer's execution. */
struct Round
{
    int64_t inputWords = 0;    ///< input-tile words (NP ports)
    int64_t weightWords = 0;   ///< weight-tile words (WP ports)
    int64_t loadWords = 0;     ///< inputWords + weightWords
    int64_t computeCycles = 0; ///< pipelined compute cycles
    int64_t storeWords = 0;    ///< output words emitted (last n step)
    bool groupStart = false;   ///< first n step of an (r,c,m) group
    int64_t layerIdx = -1;     ///< network layer this round belongs to
};

/**
 * Generate the round sequence for one layer on a CLP. Boundary tiles
 * load/compute/store only their valid region, exactly as the
 * bandwidth model counts them.
 */
std::vector<Round> roundsForLayer(const nn::ConvLayer &layer,
                                  const model::ClpShape &shape,
                                  const model::Tiling &tiling,
                                  int64_t layer_idx = -1);

/** Sum of computeCycles over a round sequence. */
int64_t totalComputeCycles(const std::vector<Round> &rounds);

/** Sum of load + store words over a round sequence. */
int64_t totalTransferWords(const std::vector<Round> &rounds);

} // namespace sim
} // namespace mclp

#endif // MCLP_SIM_ROUND_SCHEDULE_H
