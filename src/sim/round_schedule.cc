#include "sim/round_schedule.h"

#include <algorithm>

#include "util/logging.h"
#include "util/math.h"

namespace mclp {
namespace sim {

std::vector<Round>
roundsForLayer(const nn::ConvLayer &layer, const model::ClpShape &shape,
               const model::Tiling &tiling, int64_t layer_idx)
{
    if (tiling.tr <= 0 || tiling.tc <= 0 || tiling.tr > layer.r ||
        tiling.tc > layer.c) {
        util::fatal("roundsForLayer: invalid tiling for layer %s",
                    layer.name.c_str());
    }

    // Per convolution group: a grouped layer's accumulation chain
    // spans only its own N/G inputs, and its M/G output maps tile
    // separately. The G groups run back to back, emitting identical
    // round patterns over distinct maps. (Round::groupStart is the
    // unrelated accumulation-tile start below, not a conv group.)
    int64_t group_n = layer.groupN();
    int64_t group_m = layer.groupM();
    int64_t nsteps = util::ceilDiv(group_n, shape.tn);
    std::vector<Round> rounds;
    for (int64_t r = 0; r < layer.r; r += tiling.tr) {
        int64_t rloops = std::min(tiling.tr, layer.r - r);
        int64_t in_rows = (rloops - 1) * layer.s + layer.k;
        for (int64_t c = 0; c < layer.c; c += tiling.tc) {
            int64_t cloops = std::min(tiling.tc, layer.c - c);
            int64_t in_cols = (cloops - 1) * layer.s + layer.k;
            for (int64_t grp = 0; grp < layer.g; ++grp) {
                for (int64_t m = 0; m < group_m; m += shape.tm) {
                    int64_t mvalid = std::min(shape.tm, group_m - m);
                    for (int64_t nstep = 0; nstep < nsteps; ++nstep) {
                        int64_t n = nstep * shape.tn;
                        int64_t nvalid =
                            std::min(shape.tn, group_n - n);
                        Round round;
                        round.layerIdx = layer_idx;
                        round.groupStart = (nstep == 0);
                        round.inputWords = nvalid * in_rows * in_cols;
                        round.weightWords =
                            mvalid * nvalid * layer.k * layer.k;
                        round.loadWords =
                            round.inputWords + round.weightWords;
                        round.computeCycles =
                            layer.k * layer.k * rloops * cloops;
                        if (nstep == nsteps - 1)
                            round.storeWords = mvalid * rloops * cloops;
                        rounds.push_back(round);
                    }
                }
            }
        }
    }
    return rounds;
}

int64_t
totalComputeCycles(const std::vector<Round> &rounds)
{
    int64_t total = 0;
    for (const Round &round : rounds)
        total += round.computeCycles;
    return total;
}

int64_t
totalTransferWords(const std::vector<Round> &rounds)
{
    int64_t total = 0;
    for (const Round &round : rounds)
        total += round.loadWords + round.storeWords;
    return total;
}

} // namespace sim
} // namespace mclp
