/**
 * @file
 * Functional CLP engine.
 *
 * Executes one convolutional layer exactly the way the HLS template of
 * Listing 4 does: tile loops (r, c, m, n) around explicit on-chip
 * buffers, with the (Tm, Tn) inner loops "unrolled" over the compute
 * grid and accumulation kept in the output buffer across n steps.
 * Produces the layer output (checked against the golden reference in
 * tests) and the same cycle count the analytical model predicts.
 */

#ifndef MCLP_SIM_CLP_ENGINE_H
#define MCLP_SIM_CLP_ENGINE_H

#include <cstdint>
#include <vector>

#include "model/clp_config.h"
#include "nn/conv_layer.h"
#include "nn/fixed_point.h"
#include "nn/tensor.h"

namespace mclp {
namespace sim {

/** Outcome of a functional layer execution. */
template <typename T>
struct FunctionalResult
{
    nn::Tensor3<T> output;
    int64_t computeCycles = 0;  ///< K^2 * rloops * cloops per round
    int64_t rounds = 0;         ///< tile rounds executed
    int64_t macsPerformed = 0;  ///< useful MACs (valid lanes only)
};

/**
 * Run @p layer on a (Tn, Tm) CLP with tiling (Tr, Tc) over real data.
 * @p input is N x inputRows x inputCols; @p weights is (M*N) x K x K.
 * Float accumulates in float (like the FPGA's FP adders); Fixed16
 * accumulates in a wide integer until write-out (like a DSP-slice
 * accumulator), making fixed-point results bit-exact with the
 * reference convolution.
 */
FunctionalResult<float> runLayerFunctional(
    const nn::ConvLayer &layer, const model::ClpShape &shape,
    const model::Tiling &tiling, const nn::Tensor3<float> &input,
    const nn::Tensor3<float> &weights);

/** Fixed-point overload; see above. */
FunctionalResult<nn::Fixed16> runLayerFunctional(
    const nn::ConvLayer &layer, const model::ClpShape &shape,
    const model::Tiling &tiling, const nn::Tensor3<nn::Fixed16> &input,
    const nn::Tensor3<nn::Fixed16> &weights);

} // namespace sim
} // namespace mclp

#endif // MCLP_SIM_CLP_ENGINE_H
