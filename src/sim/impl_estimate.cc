#include "sim/impl_estimate.h"

#include <cmath>

#include "model/bram_model.h"
#include "model/dsp_model.h"

namespace mclp {
namespace sim {

namespace {

/**
 * Control-logic DSP overhead per CLP: address calculation and loop
 * indexing. Regression on Tables 6/7: float CLPs add ~50 slices each,
 * fixed-point CLPs ~100 (narrower arithmetic shifts more of the
 * addressing into DSP48s).
 */
int64_t
controlDspPerClp(fpga::DataType type)
{
    return type == fpga::DataType::Float32 ? 50 : 100;
}

/**
 * BRAM mapping overhead: ~2 blocks of AXI/DataMover FIFOs per CLP
 * plus a proportional inflation from the tools' memory packing
 * (10% observed for 32-bit designs, 65% for 16-bit designs whose
 * paired banks the tools frequently split).
 */
int64_t
bramOverhead(int64_t bram_model, fpga::DataType type)
{
    double factor = type == fpga::DataType::Float32 ? 0.10 : 0.65;
    return 2 + static_cast<int64_t>(
                   std::llround(factor * static_cast<double>(bram_model)));
}

} // namespace

ImplEstimate
estimateImplementation(const model::MultiClpDesign &design,
                       const nn::Network &network)
{
    design.validate(network);
    ImplEstimate est;
    for (const model::ClpConfig &clp : design.clps) {
        ClpImplEstimate ce;
        ce.dspModel = model::clpDsp(clp.shape, design.dataType);
        ce.dspImpl = ce.dspModel + controlDspPerClp(design.dataType);
        ce.bramModel =
            model::clpBram(clp, network, design.dataType).total();
        ce.bramImpl =
            ce.bramModel + bramOverhead(ce.bramModel, design.dataType);
        est.dspModel += ce.dspModel;
        est.dspImpl += ce.dspImpl;
        est.bramModel += ce.bramModel;
        est.bramImpl += ce.bramImpl;
        est.clps.push_back(ce);
    }

    // FF/LUT regressions per implemented DSP slice (Tables 8/9):
    // float Single-CLP ~95 FF and ~63 LUT per DSP, float Multi-CLP
    // ~110/73 (extra control per CLP), fixed ~46/38.
    bool is_float = design.dataType == fpga::DataType::Float32;
    double ff_per_dsp =
        is_float ? (design.isSingleClp() ? 95.0 : 110.0) : 46.0;
    double lut_per_dsp =
        is_float ? (design.isSingleClp() ? 63.0 : 73.0) : 38.0;
    est.flipFlops = static_cast<int64_t>(
        std::llround(ff_per_dsp * static_cast<double>(est.dspImpl)));
    est.luts = static_cast<int64_t>(
        std::llround(lut_per_dsp * static_cast<double>(est.dspImpl)));

    // Power regression at the paper's operating points (100 MHz float,
    // 170 MHz fixed): static ~0.5 W plus per-DSP and per-BRAM terms.
    double dsp_coeff = is_float ? 0.0019 : 0.0011;
    est.powerWatts = 0.5 +
                     dsp_coeff * static_cast<double>(est.dspImpl) +
                     0.0025 * static_cast<double>(est.bramImpl);
    return est;
}

} // namespace sim
} // namespace mclp
