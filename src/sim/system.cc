#include "sim/system.h"

#include <algorithm>
#include <limits>

#include "sim/round_schedule.h"
#include "util/logging.h"

namespace mclp {
namespace sim {

namespace {

constexpr double kEps = 1e-7;
constexpr double kNever = -1.0;

/** One CLP's execution state during the epoch simulation. */
struct ClpRuntime
{
    std::vector<Round> rounds;
    std::vector<size_t> groupOf;        ///< group id per round
    std::vector<size_t> groupLast;      ///< last round index per group
    std::vector<int64_t> groupStore;    ///< store words per group

    // A round's load uses separate input and weight AXI ports
    // (Section 5.1); the round is loaded when both transfers finish.
    std::vector<double> inputEnd;       ///< per round; kNever = pending
    std::vector<double> weightEnd;      ///< per round
    std::vector<double> compEnd;        ///< per round
    std::vector<double> storeEnd;       ///< per group

    bool
    loadDone(size_t i) const
    {
        return inputEnd[i] >= 0.0 && weightEnd[i] >= 0.0;
    }

    size_t nextLoad = 0;
    size_t nextComp = 0;
    size_t nextStore = 0;

    bool compActive = false;
    double compEndTime = 0.0;
    size_t compRound = 0;

    int64_t wordBytes = 4;

    bool
    done() const
    {
        return nextComp == rounds.size() &&
               nextStore == groupStore.size() && !compActive;
    }
};

/** An in-flight off-chip transfer on the shared fluid channel. */
struct Transfer
{
    enum class Kind { Input, Weight, Store };

    size_t clp = 0;
    Kind kind = Kind::Input;
    size_t index = 0;       ///< round (loads) or group (store) index
    double remaining = 0.0; ///< bytes left
};

} // namespace

MultiClpSystem::MultiClpSystem(const model::MultiClpDesign &design,
                               const nn::Network &network,
                               const fpga::ResourceBudget &budget)
    : design_(design), network_(network), budget_(budget)
{
    design_.validate(network_);
}

SimResult
MultiClpSystem::simulateEpoch() const
{
    double bw = budget_.bandwidthBytesPerCycle;
    bool unlimited = bw <= 0.0;

    // Build per-CLP round schedules with group bookkeeping.
    std::vector<ClpRuntime> clps;
    for (const model::ClpConfig &clp : design_.clps) {
        ClpRuntime rt;
        rt.wordBytes = fpga::wordBytes(design_.dataType);
        for (const model::LayerBinding &binding : clp.layers) {
            const nn::ConvLayer &layer = network_.layer(binding.layerIdx);
            auto layer_rounds = roundsForLayer(
                layer, clp.shape, binding.tiling,
                static_cast<int64_t>(binding.layerIdx));
            rt.rounds.insert(rt.rounds.end(), layer_rounds.begin(),
                             layer_rounds.end());
        }
        for (size_t i = 0; i < rt.rounds.size(); ++i) {
            if (rt.rounds[i].groupStart) {
                rt.groupLast.push_back(i);
                rt.groupStore.push_back(0);
            }
            rt.groupLast.back() = i;
            if (rt.rounds[i].storeWords > 0)
                rt.groupStore.back() = rt.rounds[i].storeWords;
            rt.groupOf.push_back(rt.groupStore.size() - 1);
        }
        rt.inputEnd.assign(rt.rounds.size(), kNever);
        rt.weightEnd.assign(rt.rounds.size(), kNever);
        rt.compEnd.assign(rt.rounds.size(), kNever);
        rt.storeEnd.assign(rt.groupStore.size(), kNever);
        clps.push_back(std::move(rt));
    }

    std::vector<Transfer> transfers;
    std::vector<bool> loadInFlight(clps.size(), false);
    std::vector<bool> storeInFlight(clps.size(), false);
    double now = 0.0;

    auto tryStart = [&]() {
        bool progress = false;
        for (size_t ci = 0; ci < clps.size(); ++ci) {
            ClpRuntime &rt = clps[ci];

            // Start the next round's loads (input and weight ports in
            // parallel): the previous round's loads must be done and
            // the ping-pong buffer used two rounds ago must be free.
            if (!loadInFlight[ci] && rt.nextLoad < rt.rounds.size()) {
                size_t i = rt.nextLoad;
                bool prev_load_done = i == 0 || rt.loadDone(i - 1);
                bool buffer_free = i < 2 || rt.compEnd[i - 2] >= 0.0;
                if (prev_load_done && buffer_free) {
                    if (unlimited) {
                        rt.inputEnd[i] = now;
                        rt.weightEnd[i] = now;
                    } else {
                        transfers.push_back(
                            {ci, Transfer::Kind::Input, i,
                             static_cast<double>(
                                 rt.rounds[i].inputWords *
                                 rt.wordBytes)});
                        transfers.push_back(
                            {ci, Transfer::Kind::Weight, i,
                             static_cast<double>(
                                 rt.rounds[i].weightWords *
                                 rt.wordBytes)});
                        loadInFlight[ci] = true;
                    }
                    ++rt.nextLoad;
                    progress = true;
                }
            }

            // Start the next compute: its load must be done, the
            // previous compute finished, and (for a group's first
            // round) the output ping-pong copy drained.
            if (!rt.compActive && rt.nextComp < rt.rounds.size()) {
                size_t i = rt.nextComp;
                bool load_done = rt.loadDone(i);
                bool prev_comp_done = i == 0 || rt.compEnd[i - 1] >= 0.0;
                bool out_free = true;
                if (rt.rounds[i].groupStart) {
                    size_t g = rt.groupOf[i];
                    out_free = g < 2 || rt.storeEnd[g - 2] >= 0.0;
                }
                if (load_done && prev_comp_done && out_free) {
                    rt.compActive = true;
                    rt.compRound = i;
                    rt.compEndTime =
                        now + static_cast<double>(
                                  rt.rounds[i].computeCycles);
                    ++rt.nextComp;
                    progress = true;
                }
            }

            // Start the next store: its group's compute must be done
            // and the previous store drained (stores are in order).
            if (!storeInFlight[ci] && rt.nextStore < rt.groupStore.size()) {
                size_t g = rt.nextStore;
                bool comp_done = rt.compEnd[rt.groupLast[g]] >= 0.0;
                bool prev_store_done = g == 0 || rt.storeEnd[g - 1] >= 0.0;
                if (comp_done && prev_store_done) {
                    double bytes = static_cast<double>(
                        rt.groupStore[g] * rt.wordBytes);
                    if (unlimited) {
                        rt.storeEnd[g] = now;
                    } else {
                        transfers.push_back(
                            {ci, Transfer::Kind::Store, g, bytes});
                        storeInFlight[ci] = true;
                    }
                    ++rt.nextStore;
                    progress = true;
                }
            }
        }
        return progress;
    };

    auto allDone = [&]() {
        for (const ClpRuntime &rt : clps)
            if (!rt.done())
                return false;
        return transfers.empty();
    };

    size_t guard = 0;
    const size_t guard_limit = 100000000;
    while (true) {
        while (tryStart()) {
        }
        if (allDone())
            break;

        // Next event: earliest compute end or transfer completion at
        // the current fluid rates.
        double share = transfers.empty()
                           ? 0.0
                           : bw / static_cast<double>(transfers.size());
        double dt = std::numeric_limits<double>::infinity();
        for (const ClpRuntime &rt : clps) {
            if (rt.compActive)
                dt = std::min(dt, rt.compEndTime - now);
        }
        for (const Transfer &t : transfers)
            if (share > 0.0)
                dt = std::min(dt, t.remaining / share);
        if (!(dt < std::numeric_limits<double>::infinity())) {
            util::panic("MultiClpSystem: simulation deadlock at cycle "
                        "%.1f", now);
        }
        dt = std::max(dt, 0.0);
        now += dt;

        // Retire finished computes.
        for (ClpRuntime &rt : clps) {
            if (rt.compActive && rt.compEndTime <= now + kEps) {
                rt.compActive = false;
                rt.compEnd[rt.compRound] = rt.compEndTime;
            }
        }
        // Progress and retire transfers.
        for (auto it = transfers.begin(); it != transfers.end();) {
            it->remaining -= share * dt;
            if (it->remaining <= kEps) {
                ClpRuntime &rt = clps[it->clp];
                switch (it->kind) {
                  case Transfer::Kind::Store:
                    rt.storeEnd[it->index] = now;
                    storeInFlight[it->clp] = false;
                    break;
                  case Transfer::Kind::Input:
                    rt.inputEnd[it->index] = now;
                    if (rt.loadDone(it->index))
                        loadInFlight[it->clp] = false;
                    break;
                  case Transfer::Kind::Weight:
                    rt.weightEnd[it->index] = now;
                    if (rt.loadDone(it->index))
                        loadInFlight[it->clp] = false;
                    break;
                }
                it = transfers.erase(it);
            } else {
                ++it;
            }
        }
        if (++guard > guard_limit)
            util::panic("MultiClpSystem: event limit exceeded");
    }

    // Gather statistics.
    SimResult result;
    int64_t total_units = design_.totalMacUnits();
    for (size_t ci = 0; ci < clps.size(); ++ci) {
        const ClpRuntime &rt = clps[ci];
        ClpSimStats stats;
        for (size_t i = 0; i < rt.rounds.size(); ++i)
            stats.computeCycles += rt.rounds[i].computeCycles;
        stats.rounds = static_cast<int64_t>(rt.rounds.size());
        double finish = 0.0;
        if (!rt.compEnd.empty())
            finish = std::max(finish, rt.compEnd.back());
        if (!rt.storeEnd.empty())
            finish = std::max(finish, rt.storeEnd.back());
        stats.finishCycle = finish;
        stats.stallCycles =
            finish - static_cast<double>(stats.computeCycles);
        stats.transferBytes =
            totalTransferWords(rt.rounds) * rt.wordBytes;
        // Per-layer execution spans (compute plus output drain).
        for (size_t i = 0; i < rt.rounds.size(); ++i) {
            int64_t layer = rt.rounds[i].layerIdx;
            double start = rt.compEnd[i] -
                           static_cast<double>(rt.rounds[i].computeCycles);
            double end = rt.compEnd[i];
            if (stats.layerSpans.empty() ||
                stats.layerSpans.back().layerIdx != layer) {
                stats.layerSpans.push_back({layer, start, end});
            } else {
                stats.layerSpans.back().endCycle = end;
            }
        }
        for (size_t g = 0; g < rt.groupStore.size(); ++g) {
            int64_t layer = rt.rounds[rt.groupLast[g]].layerIdx;
            for (auto &span : stats.layerSpans) {
                if (span.layerIdx == layer)
                    span.endCycle =
                        std::max(span.endCycle, rt.storeEnd[g]);
            }
        }
        result.totalTransferBytes += stats.transferBytes;
        result.epochCycles = std::max(result.epochCycles, finish);
        result.clps.push_back(stats);
    }
    result.utilization =
        static_cast<double>(network_.totalMacs()) /
        (static_cast<double>(total_units) * result.epochCycles);
    return result;
}

} // namespace sim
} // namespace mclp
