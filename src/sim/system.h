/**
 * @file
 * Cycle-level timing simulation of a complete Multi-CLP accelerator.
 *
 * Every CLP executes its tile rounds under double-buffer dependencies:
 * the load for round i+1 overlaps the compute of round i, and the
 * output store of an (r,c,m) group overlaps subsequent rounds; a CLP
 * stalls when a needed transfer has not finished (Section 4.2). All
 * CLP ports share the off-chip link, modeled as a fluid channel that
 * splits bandwidth equally among in-flight transfers.
 *
 * With unconstrained bandwidth the simulated epoch equals the
 * analytical model's compute-bound cycle count exactly; with a
 * bandwidth cap it reproduces the transfer-blocked behaviour the
 * optimizer's bandwidth model approximates. This plays the role the
 * paper's RTL simulation plays in Section 6.4.
 */

#ifndef MCLP_SIM_SYSTEM_H
#define MCLP_SIM_SYSTEM_H

#include <cstdint>
#include <vector>

#include "fpga/device.h"
#include "model/clp_config.h"
#include "nn/network.h"

namespace mclp {
namespace sim {

/** Execution interval of one layer on its CLP within an epoch. */
struct LayerSpan
{
    int64_t layerIdx = -1;
    double startCycle = 0.0;  ///< first compute start
    double endCycle = 0.0;    ///< last compute or store completion
};

/** Per-CLP outcome of an epoch simulation. */
struct ClpSimStats
{
    double finishCycle = 0.0;    ///< last compute or store completion
    int64_t computeCycles = 0;   ///< cycles spent computing
    double stallCycles = 0.0;    ///< finish - compute (transfer waits)
    int64_t transferBytes = 0;   ///< off-chip traffic this epoch
    int64_t rounds = 0;          ///< tile rounds executed
    std::vector<LayerSpan> layerSpans;  ///< Figure-5-style schedule
};

/** Whole-accelerator outcome of an epoch simulation. */
struct SimResult
{
    double epochCycles = 0.0;    ///< max over CLP finish times
    std::vector<ClpSimStats> clps;
    double utilization = 0.0;    ///< useful MACs / (units * epoch)
    int64_t totalTransferBytes = 0;

    /** Average consumed bandwidth in bytes per cycle. */
    double
    avgBandwidthBytesPerCycle() const
    {
        return epochCycles > 0.0
                   ? static_cast<double>(totalTransferBytes) / epochCycles
                   : 0.0;
    }
};

/** Timing simulator for a design on a network under a budget. */
class MultiClpSystem
{
  public:
    /**
     * @param design accelerator configuration (validated)
     * @param network the CNN
     * @param budget supplies the bandwidth cap (DSP/BRAM are not
     *        needed for timing) and frequency for reporting
     */
    MultiClpSystem(const model::MultiClpDesign &design,
                   const nn::Network &network,
                   const fpga::ResourceBudget &budget);

    /** Simulate one steady-state epoch. */
    SimResult simulateEpoch() const;

  private:
    const model::MultiClpDesign &design_;
    const nn::Network &network_;
    fpga::ResourceBudget budget_;
};

} // namespace sim
} // namespace mclp

#endif // MCLP_SIM_SYSTEM_H
