/**
 * @file
 * Toolflow implementation estimates (Sections 6.4-6.5).
 *
 * The paper's "impl." columns come from Vivado synthesis and place &
 * route, which we cannot run. The gap between the analytical model and
 * the implementation is structural, however: address calculation, loop
 * indexing and control logic add DSP slices per CLP; the tools' memory
 * mapping and AXI FIFOs add BRAMs; FF/LUT/power scale with the DSP
 * count. This module reproduces that gap with simple regressions
 * anchored to the paper's published post-P&R numbers (Tables 6-9).
 * It demonstrates the validation/reporting pipeline rather than an
 * independent physical prediction; see DESIGN.md ("Deviations").
 */

#ifndef MCLP_SIM_IMPL_ESTIMATE_H
#define MCLP_SIM_IMPL_ESTIMATE_H

#include <cstdint>
#include <vector>

#include "model/clp_config.h"
#include "nn/network.h"

namespace mclp {
namespace sim {

/** Model-vs-implementation resource pair for one CLP. */
struct ClpImplEstimate
{
    int64_t dspModel = 0;
    int64_t dspImpl = 0;
    int64_t bramModel = 0;
    int64_t bramImpl = 0;
};

/** Whole-design implementation estimate. */
struct ImplEstimate
{
    std::vector<ClpImplEstimate> clps;
    int64_t dspModel = 0;
    int64_t dspImpl = 0;
    int64_t bramModel = 0;
    int64_t bramImpl = 0;
    int64_t flipFlops = 0;
    int64_t luts = 0;
    double powerWatts = 0.0;
};

/** Estimate post-implementation resources for a design. */
ImplEstimate estimateImplementation(const model::MultiClpDesign &design,
                                    const nn::Network &network);

} // namespace sim
} // namespace mclp

#endif // MCLP_SIM_IMPL_ESTIMATE_H
