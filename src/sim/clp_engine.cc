#include "sim/clp_engine.h"

#include <algorithm>
#include <vector>

#include "util/logging.h"
#include "util/math.h"

namespace mclp {
namespace sim {

namespace {

/** Accumulator selection: float accumulates in float, Q8.8 in wide. */
template <typename T>
struct AccumTraits;

template <>
struct AccumTraits<float>
{
    using Acc = float;

    static Acc zero() { return 0.0f; }

    static void
    mac(Acc &acc, float w, float x)
    {
        acc += w * x;
    }

    static float finalize(Acc acc) { return acc; }
};

template <>
struct AccumTraits<nn::Fixed16>
{
    using Acc = int64_t;

    static Acc zero() { return 0; }

    static void
    mac(Acc &acc, nn::Fixed16 w, nn::Fixed16 x)
    {
        acc += static_cast<int64_t>(w.bits) * static_cast<int64_t>(x.bits);
    }

    static nn::Fixed16
    finalize(Acc acc)
    {
        nn::Fixed16Accumulator wide;
        wide.acc = acc;
        return wide.result();
    }
};

/**
 * The tiled execution of Listing 2/4 with explicit on-chip buffers.
 * Buffer copies model the load/store phases; the compute phase walks
 * (i, j, tr, tc) with the (tm, tn) grid innermost.
 */
template <typename T>
FunctionalResult<T>
runTiled(const nn::ConvLayer &layer, const model::ClpShape &shape,
         const model::Tiling &tiling, const nn::Tensor3<T> &input,
         const nn::Tensor3<T> &weights)
{
    using Traits = AccumTraits<T>;
    using Acc = typename Traits::Acc;

    if (input.dim0() != layer.n || input.dim1() != layer.inputRows() ||
        input.dim2() != layer.inputCols()) {
        util::fatal("runLayerFunctional: input shape mismatch for %s",
                    layer.name.c_str());
    }
    // Grouped weight layout: (M * N/G) x K x K, kernel (m, ln) at
    // row m * N/G + ln — each output map stores kernels only for its
    // own group's N/G inputs (depthwise degenerates to M x K x K).
    if (weights.dim0() != layer.m * layer.groupN() ||
        weights.dim1() != layer.k || weights.dim2() != layer.k) {
        util::fatal("runLayerFunctional: weight shape mismatch for %s "
                    "(want (M*N/G)=%lld kernel rows, got %lld)",
                    layer.name.c_str(),
                    static_cast<long long>(layer.m * layer.groupN()),
                    static_cast<long long>(weights.dim0()));
    }
    if (tiling.tr <= 0 || tiling.tc <= 0 || tiling.tr > layer.r ||
        tiling.tc > layer.c) {
        util::fatal("runLayerFunctional: invalid tiling for %s",
                    layer.name.c_str());
    }
    if (shape.tn <= 0 || shape.tm <= 0)
        util::fatal("runLayerFunctional: invalid CLP shape");

    FunctionalResult<T> result;
    result.output = nn::Tensor3<T>(layer.m, layer.r, layer.c);

    const int64_t tn = shape.tn;
    const int64_t tm = shape.tm;
    const int64_t in_tile_rows = (tiling.tr - 1) * layer.s + layer.k;
    const int64_t in_tile_cols = (tiling.tc - 1) * layer.s + layer.k;

    // On-chip buffers (single copies; double buffering only affects
    // timing, which the system simulator models).
    std::vector<T> ibuf(
        static_cast<size_t>(tn * in_tile_rows * in_tile_cols), T{});
    std::vector<T> wbuf(
        static_cast<size_t>(tm * tn * layer.k * layer.k), T{});
    std::vector<Acc> obuf(
        static_cast<size_t>(tm * tiling.tr * tiling.tc), Traits::zero());

    auto ibufAt = [&](int64_t t, int64_t row, int64_t col) -> T & {
        return ibuf[static_cast<size_t>(
            (t * in_tile_rows + row) * in_tile_cols + col)];
    };
    auto wbufAt = [&](int64_t om, int64_t in, int64_t i,
                      int64_t j) -> T & {
        return wbuf[static_cast<size_t>(
            ((om * tn + in) * layer.k + i) * layer.k + j)];
    };
    auto obufAt = [&](int64_t om, int64_t tr, int64_t tc) -> Acc & {
        return obuf[static_cast<size_t>(
            (om * tiling.tr + tr) * tiling.tc + tc)];
    };

    const int64_t group_n = layer.groupN();
    const int64_t group_m = layer.groupM();

    for (int64_t r = 0; r < layer.r; r += tiling.tr) {
        int64_t rloops = std::min(tiling.tr, layer.r - r);
        for (int64_t c = 0; c < layer.c; c += tiling.tc) {
            int64_t cloops = std::min(tiling.tc, layer.c - c);
            // Groups run back to back on the one grid: each group's
            // M/G output maps tile independently and accumulate over
            // only the group's own N/G input maps (the cycle model's
            // leading G factor is exactly this loop).
            for (int64_t grp = 0; grp < layer.g; ++grp) {
                const int64_t m_base = grp * group_m;
                const int64_t n_base = grp * group_n;
                for (int64_t m = 0; m < group_m; m += tm) {
                    int64_t mvalid = std::min(tm, group_m - m);
                    std::fill(obuf.begin(), obuf.end(), Traits::zero());
                    for (int64_t n = 0; n < group_n; n += tn) {
                        int64_t nvalid = std::min(tn, group_n - n);

                        // Load phase: refill Ibuf and Wbuf.
                        for (int64_t t = 0; t < nvalid; ++t)
                            for (int64_t row = 0;
                                 row < (rloops - 1) * layer.s + layer.k;
                                 ++row)
                                for (int64_t col = 0;
                                     col < (cloops - 1) * layer.s +
                                               layer.k;
                                     ++col)
                                    ibufAt(t, row, col) = input.at(
                                        n_base + n + t,
                                        r * layer.s + row,
                                        c * layer.s + col);
                        for (int64_t om = 0; om < mvalid; ++om)
                            for (int64_t in = 0; in < nvalid; ++in)
                                for (int64_t i = 0; i < layer.k; ++i)
                                    for (int64_t j = 0; j < layer.k;
                                         ++j)
                                        wbufAt(om, in, i, j) =
                                            weights.at(
                                                (m_base + m + om) *
                                                        group_n +
                                                    (n + in),
                                                i, j);

                        // Compute phase: K*K outermost to avoid a
                        // loop-carried dependence, (tm, tn) innermost
                        // as the unrolled grid.
                        for (int64_t i = 0; i < layer.k; ++i) {
                            for (int64_t j = 0; j < layer.k; ++j) {
                                for (int64_t tr = 0; tr < rloops;
                                     ++tr) {
                                    for (int64_t tc = 0; tc < cloops;
                                         ++tc) {
                                        for (int64_t om = 0;
                                             om < mvalid; ++om) {
                                            Acc &acc =
                                                obufAt(om, tr, tc);
                                            for (int64_t in = 0;
                                                 in < nvalid; ++in) {
                                                Traits::mac(
                                                    acc,
                                                    wbufAt(om, in, i,
                                                           j),
                                                    ibufAt(
                                                        in,
                                                        layer.s * tr +
                                                            i,
                                                        layer.s * tc +
                                                            j));
                                                ++result.macsPerformed;
                                            }
                                        }
                                    }
                                }
                            }
                        }
                        result.computeCycles +=
                            layer.k * layer.k * rloops * cloops;
                        ++result.rounds;
                    }
                    // Store phase: drain Obuf to the output maps.
                    for (int64_t om = 0; om < mvalid; ++om)
                        for (int64_t tr = 0; tr < rloops; ++tr)
                            for (int64_t tc = 0; tc < cloops; ++tc)
                                result.output.at(m_base + m + om,
                                                 r + tr, c + tc) =
                                    Traits::finalize(
                                        obufAt(om, tr, tc));
                }
            }
        }
    }
    return result;
}

} // namespace

FunctionalResult<float>
runLayerFunctional(const nn::ConvLayer &layer,
                   const model::ClpShape &shape,
                   const model::Tiling &tiling,
                   const nn::Tensor3<float> &input,
                   const nn::Tensor3<float> &weights)
{
    return runTiled<float>(layer, shape, tiling, input, weights);
}

FunctionalResult<nn::Fixed16>
runLayerFunctional(const nn::ConvLayer &layer,
                   const model::ClpShape &shape,
                   const model::Tiling &tiling,
                   const nn::Tensor3<nn::Fixed16> &input,
                   const nn::Tensor3<nn::Fixed16> &weights)
{
    return runTiled<nn::Fixed16>(layer, shape, tiling, input, weights);
}

} // namespace sim
} // namespace mclp
