#include "nn/reference.h"

#include "util/logging.h"

namespace mclp {
namespace nn {

namespace {

/** Check tensor shapes against the layer description. Weights are
 * packed per output map over its own group's inputs:
 * (M * N/G) x K x K, indexed (m * N/G + local_n, i, j). At G=1 this
 * is the familiar (M*N) x K x K layout. */
template <typename T>
void
checkShapes(const ConvLayer &layer, const Tensor3<T> &input,
            const Tensor3<T> &weights)
{
    if (input.dim0() != layer.n || input.dim1() != layer.inputRows() ||
        input.dim2() != layer.inputCols()) {
        util::fatal("referenceConv: input shape mismatch for layer %s",
                    layer.name.c_str());
    }
    if (weights.dim0() != layer.m * layer.groupN() ||
        weights.dim1() != layer.k || weights.dim2() != layer.k) {
        util::fatal("referenceConv: weight shape mismatch for layer %s",
                    layer.name.c_str());
    }
}

} // namespace

Tensor3<float>
referenceConv(const ConvLayer &layer, const Tensor3<float> &input,
              const Tensor3<float> &weights)
{
    checkShapes(layer, input, weights);
    const int64_t group_n = layer.groupN();
    const int64_t group_m = layer.groupM();
    Tensor3<float> output(layer.m, layer.r, layer.c);
    for (int64_t m = 0; m < layer.m; ++m) {
        const int64_t n_base = (m / group_m) * group_n;
        for (int64_t ln = 0; ln < group_n; ++ln) {
            const int64_t n = n_base + ln;
            for (int64_t r = 0; r < layer.r; ++r) {
                for (int64_t c = 0; c < layer.c; ++c) {
                    float acc = output.at(m, r, c);
                    for (int64_t i = 0; i < layer.k; ++i) {
                        for (int64_t j = 0; j < layer.k; ++j) {
                            float wx =
                                weights.at(m * group_n + ln, i, j);
                            float ix = input.at(n, layer.s * r + i,
                                                layer.s * c + j);
                            acc += wx * ix;
                        }
                    }
                    output.at(m, r, c) = acc;
                }
            }
        }
    }
    return output;
}

Tensor3<Fixed16>
referenceConv(const ConvLayer &layer, const Tensor3<Fixed16> &input,
              const Tensor3<Fixed16> &weights)
{
    checkShapes(layer, input, weights);
    const int64_t group_n = layer.groupN();
    const int64_t group_m = layer.groupM();
    Tensor3<Fixed16> output(layer.m, layer.r, layer.c);
    for (int64_t m = 0; m < layer.m; ++m) {
        const int64_t n_base = (m / group_m) * group_n;
        for (int64_t r = 0; r < layer.r; ++r) {
            for (int64_t c = 0; c < layer.c; ++c) {
                Fixed16Accumulator acc;
                for (int64_t ln = 0; ln < group_n; ++ln) {
                    const int64_t n = n_base + ln;
                    for (int64_t i = 0; i < layer.k; ++i) {
                        for (int64_t j = 0; j < layer.k; ++j) {
                            acc.mac(weights.at(m * group_n + ln, i, j),
                                    input.at(n, layer.s * r + i,
                                             layer.s * c + j));
                        }
                    }
                }
                output.at(m, r, c) = acc.result();
            }
        }
    }
    return output;
}

} // namespace nn
} // namespace mclp
