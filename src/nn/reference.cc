#include "nn/reference.h"

#include "util/logging.h"

namespace mclp {
namespace nn {

namespace {

/** Check tensor shapes against the layer description. */
template <typename T>
void
checkShapes(const ConvLayer &layer, const Tensor3<T> &input,
            const Tensor3<T> &weights)
{
    if (input.dim0() != layer.n || input.dim1() != layer.inputRows() ||
        input.dim2() != layer.inputCols()) {
        util::fatal("referenceConv: input shape mismatch for layer %s",
                    layer.name.c_str());
    }
    if (weights.dim0() != layer.m * layer.n || weights.dim1() != layer.k ||
        weights.dim2() != layer.k) {
        util::fatal("referenceConv: weight shape mismatch for layer %s",
                    layer.name.c_str());
    }
}

} // namespace

Tensor3<float>
referenceConv(const ConvLayer &layer, const Tensor3<float> &input,
              const Tensor3<float> &weights)
{
    checkShapes(layer, input, weights);
    Tensor3<float> output(layer.m, layer.r, layer.c);
    for (int64_t m = 0; m < layer.m; ++m) {
        for (int64_t n = 0; n < layer.n; ++n) {
            for (int64_t r = 0; r < layer.r; ++r) {
                for (int64_t c = 0; c < layer.c; ++c) {
                    float acc = output.at(m, r, c);
                    for (int64_t i = 0; i < layer.k; ++i) {
                        for (int64_t j = 0; j < layer.k; ++j) {
                            float wx = weights.at(m * layer.n + n, i, j);
                            float ix = input.at(n, layer.s * r + i,
                                                layer.s * c + j);
                            acc += wx * ix;
                        }
                    }
                    output.at(m, r, c) = acc;
                }
            }
        }
    }
    return output;
}

Tensor3<Fixed16>
referenceConv(const ConvLayer &layer, const Tensor3<Fixed16> &input,
              const Tensor3<Fixed16> &weights)
{
    checkShapes(layer, input, weights);
    Tensor3<Fixed16> output(layer.m, layer.r, layer.c);
    for (int64_t m = 0; m < layer.m; ++m) {
        for (int64_t r = 0; r < layer.r; ++r) {
            for (int64_t c = 0; c < layer.c; ++c) {
                Fixed16Accumulator acc;
                for (int64_t n = 0; n < layer.n; ++n) {
                    for (int64_t i = 0; i < layer.k; ++i) {
                        for (int64_t j = 0; j < layer.k; ++j) {
                            acc.mac(weights.at(m * layer.n + n, i, j),
                                    input.at(n, layer.s * r + i,
                                             layer.s * c + j));
                        }
                    }
                }
                output.at(m, r, c) = acc.result();
            }
        }
    }
    return output;
}

} // namespace nn
} // namespace mclp
