/**
 * @file
 * The network zoo: the four CNNs the paper evaluates (Section 6).
 *
 * - AlexNet: grouped convolutions are split into their two halves
 *   (1a/1b .. 5a/5b), 10 conv layers, exactly as in Figure 2.
 * - VGGNet-E (VGG-19): 16 conv layers, all 3x3 stride 1.
 * - SqueezeNet v1.1: 26 conv layers (conv1, 8 fire modules of
 *   squeeze/expand1x1/expand3x3, conv10). v1.1 is identified by the
 *   paper's quoted dimensions (layer 1 N,M = 3,64; layer 2 N,M = 64,16).
 * - GoogLeNet v1: 57 conv layers (stem + 9 inception modules of 6
 *   convolutions each).
 */

#ifndef MCLP_NN_ZOO_H
#define MCLP_NN_ZOO_H

#include <string>
#include <vector>

#include "nn/network.h"

namespace mclp {
namespace nn {

/** AlexNet with grouped layers split in halves: 10 conv layers. */
Network makeAlexNet();

/** VGGNet-E (VGG-19): 16 conv layers. */
Network makeVggNetE();

/** SqueezeNet v1.1: 26 conv layers. */
Network makeSqueezeNet();

/** GoogLeNet (Inception v1): 57 conv layers. */
Network makeGoogLeNet();

/** Names accepted by networkByName(). */
std::vector<std::string> zooNetworkNames();

/**
 * Look up a zoo network by name ("alexnet", "vggnet-e", "squeezenet",
 * "googlenet"; case-insensitive). fatal() on unknown names.
 */
Network networkByName(const std::string &name);

} // namespace nn
} // namespace mclp

#endif // MCLP_NN_ZOO_H
