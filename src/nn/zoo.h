/**
 * @file
 * The network zoo: the four CNNs the paper evaluates (Section 6) plus
 * three modern stacks that exercise residual and grouped/depthwise
 * convolution shapes.
 *
 * - AlexNet: grouped convolutions are split into their two halves
 *   (1a/1b .. 5a/5b), 10 conv layers, exactly as in Figure 2.
 * - VGGNet-E (VGG-19): 16 conv layers, all 3x3 stride 1.
 * - SqueezeNet v1.1: 26 conv layers (conv1, 8 fire modules of
 *   squeeze/expand1x1/expand3x3, conv10). v1.1 is identified by the
 *   paper's quoted dimensions (layer 1 N,M = 3,64; layer 2 N,M = 64,16).
 * - GoogLeNet v1: 57 conv layers (stem + 9 inception modules of 6
 *   convolutions each).
 * - ResNet-50: 53 conv layers (stem + bottleneck blocks incl.
 *   projection shortcuts; identity adds carry no MACs).
 * - MobileNet-v1: 27 conv layers (stem + 13 depthwise-separable
 *   pairs; the depthwise 3x3s have G = N).
 * - ResNeXt-tiny: a compact 13-layer grouped-bottleneck stack
 *   (cardinality-32 3x3s, 1 < G < N).
 */

#ifndef MCLP_NN_ZOO_H
#define MCLP_NN_ZOO_H

#include <string>
#include <vector>

#include "nn/network.h"

namespace mclp {
namespace nn {

/** AlexNet with grouped layers split in halves: 10 conv layers. */
Network makeAlexNet();

/** VGGNet-E (VGG-19): 16 conv layers. */
Network makeVggNetE();

/** SqueezeNet v1.1: 26 conv layers. */
Network makeSqueezeNet();

/** GoogLeNet (Inception v1): 57 conv layers. */
Network makeGoogLeNet();

/** ResNet-50: 53 conv layers incl. projection shortcuts. */
Network makeResNet50();

/** MobileNet-v1 (width 1.0): 27 conv layers, depthwise G = N. */
Network makeMobileNetV1();

/** Compact ResNeXt-style grouped-bottleneck stack (G = 32). */
Network makeResNextTiny();

/** Names accepted by networkByName(). */
std::vector<std::string> zooNetworkNames();

/**
 * Look up a zoo network by name ("alexnet", "vggnet-e", "squeezenet",
 * "googlenet", "resnet50", "mobilenet-v1", "resnext-tiny";
 * case-insensitive). fatal() on unknown names.
 */
Network networkByName(const std::string &name);

} // namespace nn
} // namespace mclp

#endif // MCLP_NN_ZOO_H
