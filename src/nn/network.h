/**
 * @file
 * A CNN as the accelerator sees it: an ordered list of convolutional
 * layers. Non-linear layers (ReLU, pooling) are omitted, as in the
 * paper, because the convolutional layers dominate compute.
 */

#ifndef MCLP_NN_NETWORK_H
#define MCLP_NN_NETWORK_H

#include <cstdint>
#include <string>
#include <vector>

#include "nn/conv_layer.h"

namespace mclp {
namespace nn {

/** An ordered collection of convolutional layers with a name. */
class Network
{
  public:
    Network() = default;

    /** Create a named network from a layer list (validated). */
    Network(std::string name, std::vector<ConvLayer> layers);

    const std::string &name() const { return name_; }
    const std::vector<ConvLayer> &layers() const { return layers_; }
    size_t numLayers() const { return layers_.size(); }

    /** Layer access with bounds checking (panics on bad index). */
    const ConvLayer &layer(size_t idx) const;

    /** Append a layer (validated). */
    void addLayer(ConvLayer layer);

    /** Total MAC operations over all layers for one image. */
    int64_t totalMacs() const;

    /** Total floating-point ops (2 per MAC) for one image. */
    int64_t totalFlops() const { return 2 * totalMacs(); }

    /** Largest N across layers. */
    int64_t maxN() const;

    /** Largest M across layers. */
    int64_t maxM() const;

    /** Largest K across layers. */
    int64_t maxK() const;

    /** Multi-line human-readable summary. */
    std::string toString() const;

  private:
    std::string name_;
    std::vector<ConvLayer> layers_;
};

/**
 * Concatenate several CNNs into one joint workload. Section 4.3 notes
 * the optimization "can be simultaneously applied to multiple target
 * CNNs to jointly optimize their performance": optimizing the
 * concatenation partitions the FPGA across the layers of all the
 * networks, and each epoch then advances one image of each network.
 * Layer names are prefixed with their network's name.
 */
Network concatenateNetworks(const std::vector<Network> &networks,
                            std::string name);

} // namespace nn
} // namespace mclp

#endif // MCLP_NN_NETWORK_H
