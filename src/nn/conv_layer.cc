#include "nn/conv_layer.h"

#include "util/logging.h"
#include "util/string_utils.h"

namespace mclp {
namespace nn {

void
ConvLayer::validate() const
{
    if (n <= 0 || m <= 0 || r <= 0 || c <= 0 || k <= 0 || s <= 0) {
        util::fatal("layer %s: all dimensions must be positive "
                    "(N=%lld M=%lld R=%lld C=%lld K=%lld S=%lld)",
                    name.c_str(), static_cast<long long>(n),
                    static_cast<long long>(m), static_cast<long long>(r),
                    static_cast<long long>(c), static_cast<long long>(k),
                    static_cast<long long>(s));
    }
}

std::string
ConvLayer::toString() const
{
    return util::strprintf("%s N=%lld M=%lld R=%lld C=%lld K=%lld S=%lld",
                           name.c_str(), static_cast<long long>(n),
                           static_cast<long long>(m),
                           static_cast<long long>(r),
                           static_cast<long long>(c),
                           static_cast<long long>(k),
                           static_cast<long long>(s));
}

ConvLayer
makeConvLayer(std::string name, int64_t n, int64_t m, int64_t r, int64_t c,
              int64_t k, int64_t s)
{
    ConvLayer layer;
    layer.name = std::move(name);
    layer.n = n;
    layer.m = m;
    layer.r = r;
    layer.c = c;
    layer.k = k;
    layer.s = s;
    layer.validate();
    return layer;
}

} // namespace nn
} // namespace mclp
