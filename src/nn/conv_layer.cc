#include "nn/conv_layer.h"

#include "util/logging.h"
#include "util/string_utils.h"

namespace mclp {
namespace nn {

void
ConvLayer::validate() const
{
    if (n <= 0 || m <= 0 || r <= 0 || c <= 0 || k <= 0 || s <= 0 ||
        g <= 0) {
        util::fatal("layer %s: all dimensions must be positive "
                    "(N=%lld M=%lld R=%lld C=%lld K=%lld S=%lld "
                    "G=%lld)",
                    name.c_str(), static_cast<long long>(n),
                    static_cast<long long>(m), static_cast<long long>(r),
                    static_cast<long long>(c), static_cast<long long>(k),
                    static_cast<long long>(s), static_cast<long long>(g));
    }
    if (n % g != 0 || m % g != 0) {
        util::fatal("layer %s: groups must divide both map counts "
                    "(N=%lld M=%lld G=%lld)",
                    name.c_str(), static_cast<long long>(n),
                    static_cast<long long>(m),
                    static_cast<long long>(g));
    }
}

std::string
ConvLayer::toString() const
{
    std::string text = util::strprintf(
        "%s N=%lld M=%lld R=%lld C=%lld K=%lld S=%lld", name.c_str(),
        static_cast<long long>(n), static_cast<long long>(m),
        static_cast<long long>(r), static_cast<long long>(c),
        static_cast<long long>(k), static_cast<long long>(s));
    // G is appended only when it carries information, so plain-conv
    // summaries are byte-identical to what they were before groups
    // existed.
    if (g != 1)
        text += util::strprintf(" G=%lld", static_cast<long long>(g));
    return text;
}

ConvLayer
makeConvLayer(std::string name, int64_t n, int64_t m, int64_t r, int64_t c,
              int64_t k, int64_t s)
{
    return makeConvLayer(std::move(name), n, m, r, c, k, s, 1);
}

ConvLayer
makeConvLayer(std::string name, int64_t n, int64_t m, int64_t r, int64_t c,
              int64_t k, int64_t s, int64_t g)
{
    ConvLayer layer;
    layer.name = std::move(name);
    layer.n = n;
    layer.m = m;
    layer.r = r;
    layer.c = c;
    layer.k = k;
    layer.s = s;
    layer.g = g;
    layer.validate();
    return layer;
}

} // namespace nn
} // namespace mclp
