#include "nn/parser.h"

#include <fstream>
#include <sstream>

#include "util/logging.h"
#include "util/string_utils.h"

namespace mclp {
namespace nn {

Network
parseNetwork(const std::string &text, const std::string &default_name)
{
    Network net(default_name, {});
    std::istringstream input(text);
    std::string line;
    int line_no = 0;
    bool renamed = false;
    while (std::getline(input, line)) {
        ++line_no;
        // Strip comments.
        size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);
        std::istringstream fields(line);
        std::string first;
        if (!(fields >> first))
            continue;  // blank line

        if (first == "network") {
            std::string name;
            if (!(fields >> name)) {
                util::fatal("parseNetwork: line %d: 'network' needs a "
                            "name", line_no);
            }
            if (renamed || net.numLayers() > 0) {
                util::fatal("parseNetwork: line %d: 'network' must be "
                            "the first directive", line_no);
            }
            net = Network(name, {});
            renamed = true;
            continue;
        }

        int64_t dims[6];
        for (int d = 0; d < 6; ++d) {
            if (!(fields >> dims[d])) {
                util::fatal("parseNetwork: line %d: layer '%s' needs "
                            "six integers (N M R C K S [G])", line_no,
                            first.c_str());
            }
        }
        // Optional seventh integer: groups (grouped/depthwise conv);
        // absent means 1, the plain convolution. A non-integer token
        // falls through to the unexpected-token report below.
        int64_t groups = 1;
        int64_t parsed = 0;
        if (fields >> parsed)
            groups = parsed;
        fields.clear();
        std::string extra;
        if (fields >> extra) {
            util::fatal("parseNetwork: line %d: unexpected token '%s'",
                        line_no, extra.c_str());
        }
        net.addLayer(makeConvLayer(first, dims[0], dims[1], dims[2],
                                   dims[3], dims[4], dims[5], groups));
    }
    if (net.numLayers() == 0)
        util::fatal("parseNetwork: no layers found");
    return net;
}

Network
parseNetworkFile(const std::string &path)
{
    std::ifstream ifs(path);
    if (!ifs)
        util::fatal("parseNetworkFile: cannot open '%s'", path.c_str());
    std::stringstream buffer;
    buffer << ifs.rdbuf();
    // Default the network name to the file's basename.
    std::string name = path;
    size_t slash = name.find_last_of('/');
    if (slash != std::string::npos)
        name = name.substr(slash + 1);
    size_t dot = name.find_last_of('.');
    if (dot != std::string::npos && dot > 0)
        name = name.substr(0, dot);
    return parseNetwork(buffer.str(), name);
}

} // namespace nn
} // namespace mclp
