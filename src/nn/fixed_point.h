/**
 * @file
 * Q8.8 16-bit fixed-point arithmetic used by the functional simulator
 * for the paper's "16-bit fixed point" configurations. Multiplication
 * accumulates into 32 bits and is shifted back down, with saturation.
 */

#ifndef MCLP_NN_FIXED_POINT_H
#define MCLP_NN_FIXED_POINT_H

#include <algorithm>
#include <cstdint>

namespace mclp {
namespace nn {

/** Q8.8 fixed-point value in an int16_t container. */
struct Fixed16
{
    static constexpr int kFracBits = 8;
    static constexpr int32_t kOne = 1 << kFracBits;

    int16_t bits = 0;

    Fixed16() = default;

    /** Convert from double with rounding and saturation. */
    explicit Fixed16(double value)
    {
        double scaled = value * kOne;
        scaled = std::min(scaled, 32767.0);
        scaled = std::max(scaled, -32768.0);
        bits = static_cast<int16_t>(scaled >= 0 ? scaled + 0.5
                                                : scaled - 0.5);
    }

    /** Convert back to double. */
    double
    toDouble() const
    {
        return static_cast<double>(bits) / kOne;
    }

    bool operator==(const Fixed16 &other) const = default;
};

/**
 * 32-bit accumulator for Q8.8 MAC chains; products are kept at Q16.16
 * until the final shift so intermediate precision matches a DSP-slice
 * accumulator.
 */
struct Fixed16Accumulator
{
    int64_t acc = 0;

    /** acc += a * b (product in Q16.16). */
    void
    mac(Fixed16 a, Fixed16 b)
    {
        acc += static_cast<int64_t>(a.bits) * static_cast<int64_t>(b.bits);
    }

    /** Round/saturate the Q16.16 accumulator back to Q8.8. */
    Fixed16
    result() const
    {
        int64_t shifted = acc >> Fixed16::kFracBits;
        shifted = std::min<int64_t>(shifted, 32767);
        shifted = std::max<int64_t>(shifted, -32768);
        Fixed16 out;
        out.bits = static_cast<int16_t>(shifted);
        return out;
    }
};

} // namespace nn
} // namespace mclp

#endif // MCLP_NN_FIXED_POINT_H
