#include "nn/network.h"

#include <algorithm>

#include "util/logging.h"

namespace mclp {
namespace nn {

Network::Network(std::string name, std::vector<ConvLayer> layers)
    : name_(std::move(name)), layers_(std::move(layers))
{
    for (const auto &layer : layers_)
        layer.validate();
}

const ConvLayer &
Network::layer(size_t idx) const
{
    if (idx >= layers_.size()) {
        util::panic("Network::layer: index %zu out of range (%zu layers)",
                    idx, layers_.size());
    }
    return layers_[idx];
}

void
Network::addLayer(ConvLayer layer)
{
    layer.validate();
    layers_.push_back(std::move(layer));
}

int64_t
Network::totalMacs() const
{
    int64_t total = 0;
    for (const auto &layer : layers_)
        total += layer.macs();
    return total;
}

int64_t
Network::maxN() const
{
    int64_t best = 0;
    for (const auto &layer : layers_)
        best = std::max(best, layer.n);
    return best;
}

int64_t
Network::maxM() const
{
    int64_t best = 0;
    for (const auto &layer : layers_)
        best = std::max(best, layer.m);
    return best;
}

int64_t
Network::maxK() const
{
    int64_t best = 0;
    for (const auto &layer : layers_)
        best = std::max(best, layer.k);
    return best;
}

Network
concatenateNetworks(const std::vector<Network> &networks,
                    std::string name)
{
    if (networks.empty())
        util::fatal("concatenateNetworks: need at least one network");
    Network joint(std::move(name), {});
    for (const Network &net : networks) {
        for (const ConvLayer &layer : net.layers()) {
            ConvLayer copy = layer;
            copy.name = net.name() + "/" + layer.name;
            joint.addLayer(std::move(copy));
        }
    }
    return joint;
}

std::string
Network::toString() const
{
    std::string out = name_ + " (" + std::to_string(layers_.size()) +
                      " conv layers)\n";
    for (const auto &layer : layers_)
        out += "  " + layer.toString() + "\n";
    return out;
}

} // namespace nn
} // namespace mclp
