/**
 * @file
 * Convolutional-layer descriptor.
 *
 * A layer is described by the six dimensions the paper uses
 * (Section 2, Figure 3): N input feature maps, M output feature maps,
 * R x C output spatial size, K x K filters, stride S. Input spatial
 * size is derived as (R-1)*S+K per Listing 1.
 *
 * A seventh dimension G (groups, default 1) generalizes the plain
 * convolution to grouped convolution: the N inputs and M outputs are
 * split into G independent groups of N/G and M/G maps, and each
 * output map only reads the inputs of its own group. G=1 is exactly
 * the paper's convolution; G=N (with M a multiple of N) is depthwise
 * convolution, the dominant shape in MobileNet-style networks.
 */

#ifndef MCLP_NN_CONV_LAYER_H
#define MCLP_NN_CONV_LAYER_H

#include <cstdint>
#include <string>

namespace mclp {
namespace nn {

/**
 * Dimensions of one convolutional layer plus derived work/data sizes.
 * All counts are in elements (words), not bytes; byte sizing is the
 * responsibility of the resource models, which know the data type.
 */
struct ConvLayer
{
    /** Human-readable name, e.g. "conv2a" or "fire3/expand3x3". */
    std::string name;

    int64_t n = 0;  ///< number of input feature maps (N)
    int64_t m = 0;  ///< number of output feature maps (M)
    int64_t r = 0;  ///< output feature map rows (R)
    int64_t c = 0;  ///< output feature map columns (C)
    int64_t k = 0;  ///< filter kernel size (K x K)
    int64_t s = 1;  ///< convolution stride (S)
    int64_t g = 1;  ///< groups (G); must divide both N and M

    /** Input feature maps seen by one output map: N/G. */
    int64_t groupN() const { return n / g; }

    /** Output feature maps produced per group: M/G. */
    int64_t groupM() const { return m / g; }

    /** Input feature map height: (R-1)*S + K. */
    int64_t inputRows() const { return (r - 1) * s + k; }

    /** Input feature map width: (C-1)*S + K. */
    int64_t inputCols() const { return (c - 1) * s + k; }

    /** Total multiply-accumulate operations: R*C*K^2*N*M/G. */
    int64_t macs() const { return r * c * k * k * (n / g) * m; }

    /** Floating-point operations (2 per MAC). */
    int64_t flops() const { return 2 * macs(); }

    /** Total input words: N * inputRows * inputCols. */
    int64_t inputWords() const { return n * inputRows() * inputCols(); }

    /** Total output words: M * R * C. */
    int64_t outputWords() const { return m * r * c; }

    /** Total weight words: M * (N/G) * K * K. */
    int64_t weightWords() const { return m * (n / g) * k * k; }

    /**
     * Compute-to-data ratio: MACs per word moved if every word is
     * touched exactly once. Used as a layer-ordering heuristic for
     * bandwidth-limited accelerators (Section 4.3).
     */
    double
    computeToDataRatio() const
    {
        return static_cast<double>(macs()) /
               static_cast<double>(inputWords() + outputWords() +
                                   weightWords());
    }

    /** Validate dimensions; reports fatal() on nonsense values. */
    void validate() const;

    /** Equality on all dimensions (name ignored). */
    bool
    sameShape(const ConvLayer &other) const
    {
        return n == other.n && m == other.m && r == other.r &&
               c == other.c && k == other.k && s == other.s &&
               g == other.g;
    }

    /** One-line summary, e.g. "conv1a N=3 M=48 R=55 C=55 K=11 S=4";
     * grouped layers append " G=g" (omitted at G=1). */
    std::string toString() const;
};

/** Convenience constructor used by the network zoo. */
ConvLayer makeConvLayer(std::string name, int64_t n, int64_t m, int64_t r,
                        int64_t c, int64_t k, int64_t s);

/** Grouped-convolution variant; g must divide n and m. */
ConvLayer makeConvLayer(std::string name, int64_t n, int64_t m, int64_t r,
                        int64_t c, int64_t k, int64_t s, int64_t g);

} // namespace nn
} // namespace mclp

#endif // MCLP_NN_CONV_LAYER_H
