/**
 * @file
 * Dense row-major tensors used by the functional simulator and the
 * golden reference convolution.
 */

#ifndef MCLP_NN_TENSOR_H
#define MCLP_NN_TENSOR_H

#include <cstdint>
#include <vector>

#include "util/logging.h"
#include "util/math.h"

namespace mclp {
namespace nn {

/**
 * A 3-D tensor (channels x rows x cols) stored contiguously in
 * row-major order. Small and simple on purpose: this only needs to
 * support the convolution data (input maps, output maps) and weights
 * (flattened as (m*n) x K x K).
 */
template <typename T>
class Tensor3
{
  public:
    Tensor3() = default;

    /** Allocate a zero-initialized d0 x d1 x d2 tensor. */
    Tensor3(int64_t d0, int64_t d1, int64_t d2)
        : d0_(d0), d1_(d1), d2_(d2),
          data_(static_cast<size_t>(d0 * d1 * d2), T{})
    {
        if (d0 <= 0 || d1 <= 0 || d2 <= 0)
            util::fatal("Tensor3: dimensions must be positive");
    }

    int64_t dim0() const { return d0_; }
    int64_t dim1() const { return d1_; }
    int64_t dim2() const { return d2_; }
    int64_t size() const { return d0_ * d1_ * d2_; }

    /** Element access (debug-checked). */
    T &
    at(int64_t i, int64_t j, int64_t k)
    {
        return data_[index(i, j, k)];
    }

    /** Element access (debug-checked, const). */
    const T &
    at(int64_t i, int64_t j, int64_t k) const
    {
        return data_[index(i, j, k)];
    }

    /** Raw storage access for bulk fills and comparisons. */
    std::vector<T> &raw() { return data_; }
    const std::vector<T> &raw() const { return data_; }

    /** Fill with deterministic pseudo-random values in [-1, 1). */
    void
    fillRandom(uint64_t seed, double scale = 1.0)
    {
        util::SplitMix64 rng(seed);
        for (auto &v : data_)
            v = static_cast<T>(rng.nextSymmetric() * scale);
    }

    /** Set every element to @p value. */
    void
    fill(T value)
    {
        std::fill(data_.begin(), data_.end(), value);
    }

  private:
    size_t
    index(int64_t i, int64_t j, int64_t k) const
    {
        if (i < 0 || i >= d0_ || j < 0 || j >= d1_ || k < 0 || k >= d2_) {
            util::panic("Tensor3 index (%lld,%lld,%lld) out of bounds "
                        "(%lld,%lld,%lld)",
                        static_cast<long long>(i), static_cast<long long>(j),
                        static_cast<long long>(k),
                        static_cast<long long>(d0_),
                        static_cast<long long>(d1_),
                        static_cast<long long>(d2_));
        }
        return static_cast<size_t>((i * d1_ + j) * d2_ + k);
    }

    int64_t d0_ = 0;
    int64_t d1_ = 0;
    int64_t d2_ = 0;
    std::vector<T> data_;
};

} // namespace nn
} // namespace mclp

#endif // MCLP_NN_TENSOR_H
