/**
 * @file
 * Plain-text network description parser, so the command-line tool can
 * optimize CNNs that are not in the zoo.
 *
 * Format: one convolutional layer per line,
 *
 *     <name> <N> <M> <R> <C> <K> <S>
 *
 * '#' starts a comment; blank lines are ignored. An optional first
 * directive `network <name>` names the network.
 */

#ifndef MCLP_NN_PARSER_H
#define MCLP_NN_PARSER_H

#include <iosfwd>
#include <string>

#include "nn/network.h"

namespace mclp {
namespace nn {

/** Parse a network description from text (fatal on syntax errors). */
Network parseNetwork(const std::string &text,
                     const std::string &default_name = "custom");

/** Parse a network description file (fatal if unreadable). */
Network parseNetworkFile(const std::string &path);

} // namespace nn
} // namespace mclp

#endif // MCLP_NN_PARSER_H
