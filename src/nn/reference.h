/**
 * @file
 * Golden reference convolution (the direct six-loop nest of
 * Listing 1). The cycle-level CLP simulator's functional output is
 * checked against this bit-for-bit.
 */

#ifndef MCLP_NN_REFERENCE_H
#define MCLP_NN_REFERENCE_H

#include "nn/conv_layer.h"
#include "nn/fixed_point.h"
#include "nn/tensor.h"

namespace mclp {
namespace nn {

/**
 * Direct convolution, float. @p input is N x inputRows x inputCols,
 * @p weights is (M*N/G) x K x K — kernel (m, local n) at row
 * m*(N/G)+ln, since output map m only reads its own group's N/G
 * inputs — and the result is M x R x C. G=1 gives the familiar
 * (M*N) x K x K layout with index m*N+n.
 */
Tensor3<float> referenceConv(const ConvLayer &layer,
                             const Tensor3<float> &input,
                             const Tensor3<float> &weights);

/**
 * Direct convolution, Q8.8 fixed point with 32-bit accumulation,
 * matching the simulator's fixed-point datapath.
 */
Tensor3<Fixed16> referenceConv(const ConvLayer &layer,
                               const Tensor3<Fixed16> &input,
                               const Tensor3<Fixed16> &weights);

/** Allocate a random input tensor shaped for @p layer. */
template <typename T>
Tensor3<T>
makeRandomInput(const ConvLayer &layer, uint64_t seed)
{
    Tensor3<T> t(layer.n, layer.inputRows(), layer.inputCols());
    t.fillRandom(seed, 0.5);
    return t;
}

/** Allocate a random weight tensor shaped for @p layer (grouped
 * layers carry M*N/G kernels, not M*N). */
template <typename T>
Tensor3<T>
makeRandomWeights(const ConvLayer &layer, uint64_t seed)
{
    Tensor3<T> t(layer.m * layer.groupN(), layer.k, layer.k);
    t.fillRandom(seed, 0.25);
    return t;
}

} // namespace nn
} // namespace mclp

#endif // MCLP_NN_REFERENCE_H
