#include "nn/zoo.h"

#include <cctype>

#include "util/logging.h"

namespace mclp {
namespace nn {

namespace {

/** Append the six convolutions of one GoogLeNet inception module. */
void
addInception(std::vector<ConvLayer> &layers, const std::string &tag,
             int64_t size, int64_t in, int64_t c1, int64_t r3, int64_t c3,
             int64_t r5, int64_t c5, int64_t pp)
{
    layers.push_back(makeConvLayer(tag + "/1x1", in, c1, size, size, 1, 1));
    layers.push_back(
        makeConvLayer(tag + "/3x3_reduce", in, r3, size, size, 1, 1));
    layers.push_back(makeConvLayer(tag + "/3x3", r3, c3, size, size, 3, 1));
    layers.push_back(
        makeConvLayer(tag + "/5x5_reduce", in, r5, size, size, 1, 1));
    layers.push_back(makeConvLayer(tag + "/5x5", r5, c5, size, size, 5, 1));
    layers.push_back(
        makeConvLayer(tag + "/pool_proj", in, pp, size, size, 1, 1));
}

/** Append the three convolutions of one SqueezeNet fire module. */
void
addFire(std::vector<ConvLayer> &layers, const std::string &tag,
        int64_t size, int64_t in, int64_t squeeze, int64_t expand)
{
    layers.push_back(
        makeConvLayer(tag + "/squeeze1x1", in, squeeze, size, size, 1, 1));
    layers.push_back(makeConvLayer(tag + "/expand1x1", squeeze, expand,
                                   size, size, 1, 1));
    layers.push_back(makeConvLayer(tag + "/expand3x3", squeeze, expand,
                                   size, size, 3, 1));
}

} // namespace

Network
makeAlexNet()
{
    // Grouped convolutions appear as their two independent halves, as
    // in the paper's Figure 2 (1a/1b .. 5a/5b). Layer 1's halves see
    // the full 3-channel input; layers 2-5 are split on both N and M
    // per the original AlexNet group structure, except layer 3 which
    // has full input connectivity (N = 256).
    std::vector<ConvLayer> layers;
    for (const char *half : {"a", "b"})
        layers.push_back(makeConvLayer(std::string("conv1") + half,
                                       3, 48, 55, 55, 11, 4));
    for (const char *half : {"a", "b"})
        layers.push_back(makeConvLayer(std::string("conv2") + half,
                                       48, 128, 27, 27, 5, 1));
    for (const char *half : {"a", "b"})
        layers.push_back(makeConvLayer(std::string("conv3") + half,
                                       256, 192, 13, 13, 3, 1));
    for (const char *half : {"a", "b"})
        layers.push_back(makeConvLayer(std::string("conv4") + half,
                                       192, 192, 13, 13, 3, 1));
    for (const char *half : {"a", "b"})
        layers.push_back(makeConvLayer(std::string("conv5") + half,
                                       192, 128, 13, 13, 3, 1));

    return Network("AlexNet", std::move(layers));
}

Network
makeVggNetE()
{
    std::vector<ConvLayer> layers;
    auto add = [&](const std::string &name, int64_t n, int64_t m,
                   int64_t size) {
        layers.push_back(makeConvLayer(name, n, m, size, size, 3, 1));
    };
    add("conv1_1", 3, 64, 224);
    add("conv1_2", 64, 64, 224);
    add("conv2_1", 64, 128, 112);
    add("conv2_2", 128, 128, 112);
    add("conv3_1", 128, 256, 56);
    add("conv3_2", 256, 256, 56);
    add("conv3_3", 256, 256, 56);
    add("conv3_4", 256, 256, 56);
    add("conv4_1", 256, 512, 28);
    add("conv4_2", 512, 512, 28);
    add("conv4_3", 512, 512, 28);
    add("conv4_4", 512, 512, 28);
    add("conv5_1", 512, 512, 14);
    add("conv5_2", 512, 512, 14);
    add("conv5_3", 512, 512, 14);
    add("conv5_4", 512, 512, 14);
    return Network("VGGNet-E", std::move(layers));
}

Network
makeSqueezeNet()
{
    // SqueezeNet v1.1 on 227x227 input: conv1 (3->64, 3x3/2) -> 113,
    // maxpool -> 56, fire2/3, maxpool -> 28, fire4/5, maxpool -> 14,
    // fire6..9, conv10 (512->1000, 1x1).
    std::vector<ConvLayer> layers;
    layers.push_back(makeConvLayer("conv1", 3, 64, 113, 113, 3, 2));
    addFire(layers, "fire2", 56, 64, 16, 64);
    addFire(layers, "fire3", 56, 128, 16, 64);
    addFire(layers, "fire4", 28, 128, 32, 128);
    addFire(layers, "fire5", 28, 256, 32, 128);
    addFire(layers, "fire6", 14, 256, 48, 192);
    addFire(layers, "fire7", 14, 384, 48, 192);
    addFire(layers, "fire8", 14, 384, 64, 256);
    addFire(layers, "fire9", 14, 512, 64, 256);
    layers.push_back(makeConvLayer("conv10", 512, 1000, 14, 14, 1, 1));
    return Network("SqueezeNet", std::move(layers));
}

Network
makeGoogLeNet()
{
    std::vector<ConvLayer> layers;
    layers.push_back(makeConvLayer("conv1/7x7_s2", 3, 64, 112, 112, 7, 2));
    layers.push_back(
        makeConvLayer("conv2/3x3_reduce", 64, 64, 56, 56, 1, 1));
    layers.push_back(makeConvLayer("conv2/3x3", 64, 192, 56, 56, 3, 1));
    addInception(layers, "inception_3a", 28, 192, 64, 96, 128, 16, 32, 32);
    addInception(layers, "inception_3b", 28, 256, 128, 128, 192, 32, 96,
                 64);
    addInception(layers, "inception_4a", 14, 480, 192, 96, 208, 16, 48,
                 64);
    addInception(layers, "inception_4b", 14, 512, 160, 112, 224, 24, 64,
                 64);
    addInception(layers, "inception_4c", 14, 512, 128, 128, 256, 24, 64,
                 64);
    addInception(layers, "inception_4d", 14, 512, 112, 144, 288, 32, 64,
                 64);
    addInception(layers, "inception_4e", 14, 528, 256, 160, 320, 32, 128,
                 128);
    addInception(layers, "inception_5a", 7, 832, 256, 160, 320, 32, 128,
                 128);
    addInception(layers, "inception_5b", 7, 832, 384, 192, 384, 48, 128,
                 128);
    return Network("GoogLeNet", std::move(layers));
}

Network
makeResNet50()
{
    // ResNet-50 on 224x224 input: conv1 (7x7/2) then four stages of
    // bottleneck blocks (1x1 reduce, 3x3, 1x1 expand) at 56/28/14/7
    // spatial size with [3, 4, 6, 3] blocks per stage. Projection
    // shortcuts (the 1x1 downsample convs) are included; identity
    // shortcuts and the element-wise adds carry no MACs and are
    // invisible to the optimizer.
    std::vector<ConvLayer> layers;
    layers.push_back(makeConvLayer("conv1", 3, 64, 112, 112, 7, 2));
    struct Stage
    {
        const char *tag;
        int64_t size;     // output spatial size of the stage
        int64_t in;       // input maps of the first block
        int64_t mid;      // bottleneck width
        int64_t out;      // expanded output maps
        int blocks;
    };
    const Stage stages[] = {{"res2", 56, 64, 64, 256, 3},
                            {"res3", 28, 256, 128, 512, 4},
                            {"res4", 14, 512, 256, 1024, 6},
                            {"res5", 7, 1024, 512, 2048, 3}};
    for (const Stage &stage : stages) {
        for (int b = 0; b < stage.blocks; ++b) {
            std::string tag =
                std::string(stage.tag) + static_cast<char>('a' + b);
            int64_t in = b == 0 ? stage.in : stage.out;
            // The first block of stages 3-5 halves the spatial size in
            // its 3x3 conv (and in the projection shortcut).
            bool down = b == 0 && stage.size != 56;
            int64_t in_size = down ? stage.size * 2 : stage.size;
            layers.push_back(makeConvLayer(tag + "/branch2a", in,
                                           stage.mid, in_size, in_size,
                                           1, 1));
            layers.push_back(makeConvLayer(tag + "/branch2b", stage.mid,
                                           stage.mid, stage.size,
                                           stage.size, 3, down ? 2 : 1));
            layers.push_back(makeConvLayer(tag + "/branch2c", stage.mid,
                                           stage.out, stage.size,
                                           stage.size, 1, 1));
            if (b == 0)
                layers.push_back(makeConvLayer(tag + "/branch1", in,
                                               stage.out, stage.size,
                                               stage.size, 1,
                                               down ? 2 : 1));
        }
    }
    return Network("ResNet-50", std::move(layers));
}

Network
makeMobileNetV1()
{
    // MobileNet-v1 (width 1.0) on 224x224 input: a full 3x3 stem, then
    // 13 depthwise-separable pairs — a depthwise 3x3 (G = N = M) and a
    // pointwise 1x1 — ending at 7x7x1024.
    std::vector<ConvLayer> layers;
    layers.push_back(makeConvLayer("conv0", 3, 32, 112, 112, 3, 2));
    struct Pair
    {
        int64_t in;    // depthwise maps (N = M = G)
        int64_t out;   // pointwise output maps
        int64_t size;  // output spatial size
        int64_t s;     // depthwise stride
    };
    const Pair pairs[] = {
        {32, 64, 112, 1},   {64, 128, 56, 2},   {128, 128, 56, 1},
        {128, 256, 28, 2},  {256, 256, 28, 1},  {256, 512, 14, 2},
        {512, 512, 14, 1},  {512, 512, 14, 1},  {512, 512, 14, 1},
        {512, 512, 14, 1},  {512, 512, 14, 1},  {512, 1024, 7, 2},
        {1024, 1024, 7, 1},
    };
    int idx = 1;
    for (const Pair &pair : pairs) {
        std::string tag = "conv" + std::to_string(idx++);
        layers.push_back(makeConvLayer(tag + "/dw", pair.in, pair.in,
                                       pair.size, pair.size, 3, pair.s,
                                       pair.in));
        layers.push_back(makeConvLayer(tag + "/pw", pair.in, pair.out,
                                       pair.size, pair.size, 1, 1));
    }
    return Network("MobileNet-v1", std::move(layers));
}

Network
makeResNextTiny()
{
    // A compact ResNeXt-style stack: bottleneck blocks whose 3x3 conv
    // is a 32-way grouped convolution (cardinality 32), the
    // "aggregated transformations" shape of Xie et al. Small enough to
    // optimize quickly, grouped enough (1 < G < N) to exercise every
    // grouped code path that depthwise (G = N) does not.
    std::vector<ConvLayer> layers;
    layers.push_back(makeConvLayer("conv1", 3, 64, 56, 56, 7, 2));
    struct Block
    {
        const char *tag;
        int64_t size;
        int64_t in;
        int64_t mid;
        int64_t out;
    };
    const Block blocks[] = {{"block2a", 28, 64, 128, 256},
                            {"block2b", 28, 256, 128, 256},
                            {"block3a", 14, 256, 256, 512},
                            {"block3b", 14, 512, 256, 512}};
    for (const Block &block : blocks) {
        std::string tag = block.tag;
        layers.push_back(makeConvLayer(tag + "/reduce", block.in,
                                       block.mid, block.size, block.size,
                                       1, 1));
        layers.push_back(makeConvLayer(tag + "/group3x3", block.mid,
                                       block.mid, block.size, block.size,
                                       3, 1, 32));
        layers.push_back(makeConvLayer(tag + "/expand", block.mid,
                                       block.out, block.size, block.size,
                                       1, 1));
    }
    return Network("ResNeXt-tiny", std::move(layers));
}

std::vector<std::string>
zooNetworkNames()
{
    return {"alexnet",  "vggnet-e",     "squeezenet",  "googlenet",
            "resnet50", "mobilenet-v1", "resnext-tiny"};
}

Network
networkByName(const std::string &name)
{
    std::string lower;
    for (char ch : name)
        lower.push_back(
            static_cast<char>(std::tolower(static_cast<unsigned char>(ch))));
    if (lower == "alexnet")
        return makeAlexNet();
    if (lower == "vggnet-e" || lower == "vgg" || lower == "vgg19" ||
        lower == "vggnete") {
        return makeVggNetE();
    }
    if (lower == "squeezenet")
        return makeSqueezeNet();
    if (lower == "googlenet")
        return makeGoogLeNet();
    if (lower == "resnet50" || lower == "resnet-50")
        return makeResNet50();
    if (lower == "mobilenet-v1" || lower == "mobilenet" ||
        lower == "mobilenetv1") {
        return makeMobileNetV1();
    }
    if (lower == "resnext-tiny" || lower == "resnext")
        return makeResNextTiny();
    util::fatal("unknown network '%s' (known: alexnet, vggnet-e, "
                "squeezenet, googlenet, resnet50, mobilenet-v1, "
                "resnext-tiny)", name.c_str());
}

} // namespace nn
} // namespace mclp
