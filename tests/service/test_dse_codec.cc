/**
 * @file
 * The wire codec must be an exact round trip: requests and responses
 * decode back to the values that were encoded (designs included,
 * since responses pin the optimizer's answer bit for bit), encoding
 * is deterministic, and malformed lines are rejected as user errors,
 * never accepted half-parsed.
 */

#include <gtest/gtest.h>

#include <limits>

#include "service/dse_codec.h"
#include "test_helpers.h"
#include "util/logging.h"

namespace mclp {
namespace {

TEST(DseCodec, RequestRoundTripsAllFields)
{
    core::DseRequest request;
    request.id = "r42";
    request.network = "mini";
    request.layers = {test::layer(3, 64, 55, 55, 11, 4, "conv1"),
                      test::layer(64, 16, 27, 27, 1, 1, "fire1")};
    request.device = "690t";
    request.type = fpga::DataType::Fixed16;
    request.mhz = 170.0;
    request.bandwidthGbps = 21.3;
    request.maxClps = 4;
    request.mode = core::DseMode::Latency;
    request.dspBudgets = {500, 1000, 2880};
    request.referenceEngine = true;
    request.threads = 2;

    core::DseRequest decoded =
        service::decodeRequest(service::encodeRequest(request));
    EXPECT_EQ(decoded.id, request.id);
    EXPECT_EQ(decoded.network, request.network);
    ASSERT_EQ(decoded.layers.size(), request.layers.size());
    for (size_t i = 0; i < request.layers.size(); ++i) {
        EXPECT_EQ(decoded.layers[i].name, request.layers[i].name);
        EXPECT_TRUE(decoded.layers[i].sameShape(request.layers[i]));
    }
    EXPECT_EQ(decoded.device, request.device);
    EXPECT_EQ(decoded.type, request.type);
    EXPECT_EQ(decoded.mhz, request.mhz);
    EXPECT_EQ(decoded.bandwidthGbps, request.bandwidthGbps);
    EXPECT_EQ(decoded.maxClps, request.maxClps);
    EXPECT_EQ(decoded.mode, request.mode);
    EXPECT_EQ(decoded.dspBudgets, request.dspBudgets);
    EXPECT_EQ(decoded.referenceEngine, request.referenceEngine);
    EXPECT_EQ(decoded.threads, request.threads);

    // Deterministic: re-encoding the decoded request is a fixpoint.
    EXPECT_EQ(service::encodeRequest(decoded),
              service::encodeRequest(request));
}

TEST(DseCodec, RequestDefaultsSurviveMinimalLine)
{
    core::DseRequest decoded =
        service::decodeRequest("dse id=a net=alexnet device=690t");
    EXPECT_EQ(decoded.id, "a");
    EXPECT_EQ(decoded.network, "alexnet");
    EXPECT_EQ(decoded.type, fpga::DataType::Float32);
    EXPECT_EQ(decoded.mhz, 100.0);
    EXPECT_EQ(decoded.maxClps, 6);
    EXPECT_EQ(decoded.mode, core::DseMode::Throughput);
    EXPECT_TRUE(decoded.dspBudgets.empty());
    EXPECT_FALSE(decoded.referenceEngine);
}

TEST(DseCodec, MalformedRequestsAreRejected)
{
    EXPECT_THROW(service::decodeRequest("optimize alexnet"),
                 util::FatalError);
    EXPECT_THROW(service::decodeRequest("dse id=a net=alexnet "
                                        "frobnicate=1 device=690t"),
                 util::FatalError);
    EXPECT_THROW(service::decodeRequest("dse id=a net=alexnet "
                                        "device=690t maxclps=zero"),
                 util::FatalError);
    // No device and no ladder: the BRAM rule has no DSP count.
    EXPECT_THROW(service::decodeRequest("dse id=a net=alexnet"),
                 util::FatalError);
    EXPECT_THROW(service::decodeRequest(
                     "dse id=a net=mini layers=bad:1:2:3 budgets=100"),
                 util::FatalError);
}

TEST(DseCodec, OutOfRangeWireValuesAreRejectedNotSaturated)
{
    // strtoll/strtod saturate silently on overflow (LLONG_MAX,
    // +-HUGE_VAL) and only report it via errno; the codec must turn
    // that into a parse error, never a plausible-looking bogus
    // request.
    EXPECT_THROW(
        service::decodeRequest("dse id=a net=alexnet "
                               "budgets=9223372036854775808"),
        util::FatalError);
    EXPECT_THROW(
        service::decodeRequest(
            "dse id=a net=alexnet budgets=500,"
            "99999999999999999999999999999999999999"),
        util::FatalError);
    EXPECT_THROW(service::decodeRequest("dse id=a net=alexnet "
                                        "device=690t mhz=1e999"),
                 util::FatalError);
    EXPECT_THROW(service::decodeRequest("dse id=a net=alexnet "
                                        "device=690t bw=-1e999"),
                 util::FatalError);
    // Underflow is ERANGE too: a wire value the double cannot
    // represent is rejected rather than flushed toward zero.
    EXPECT_THROW(service::decodeRequest("dse id=a net=alexnet "
                                        "device=690t mhz=1e-999"),
                 util::FatalError);
    EXPECT_THROW(
        service::decodeRequest(
            "dse id=a net=mini "
            "layers=conv1:99999999999999999999:16:7:7:3:1 "
            "budgets=100"),
        util::FatalError);
    // Response decoding takes the same path.
    EXPECT_THROW(
        service::decodeResponse("ok id=a net=x points=1 point "
                                "dsp=99999999999999999999999999"),
        util::FatalError);

    // The extremes that *do* fit are still accepted exactly.
    core::DseRequest request = service::decodeRequest(
        "dse id=a net=alexnet budgets=9223372036854775807");
    ASSERT_EQ(request.dspBudgets.size(), 1u);
    EXPECT_EQ(request.dspBudgets[0],
              std::numeric_limits<int64_t>::max());
}

TEST(DseCodec, DesignRoundTrips)
{
    model::MultiClpDesign design;
    design.dataType = fpga::DataType::Fixed16;
    model::ClpConfig clp0;
    clp0.shape = {3, 32};
    clp0.layers = {{0, {27, 27}}, {2, {13, 13}}};
    model::ClpConfig clp1;
    clp1.shape = {1, 48};
    clp1.layers = {{1, {55, 55}}};
    design.clps = {clp0, clp1};

    std::string spec = service::encodeDesign(design);
    EXPECT_EQ(spec, "3x32@0:27:27,2:13:13/1x48@1:55:55");
    model::MultiClpDesign decoded =
        service::decodeDesign(spec, fpga::DataType::Fixed16);
    EXPECT_TRUE(decoded == design);
}

TEST(DseCodec, ResponseRoundTripsPointsAndErrors)
{
    core::DseResponse response;
    response.id = "r1";
    response.ok = true;
    response.network = "AlexNet";
    core::DsePoint point;
    point.budget.dspSlices = 2880;
    point.budget.bram18k = 2352;
    point.budget.frequencyMhz = 170.0;
    point.budget.bandwidthBytesPerCycle = 1.25;
    point.design = test::coverAll(
        test::singleLayerNet(test::layer(3, 64, 55, 55, 11, 4)), 3, 32);
    point.epochCycles = 1168128;
    point.dspUsed = 480;
    point.bramUsed = 99;
    point.schedule.adjacentLayers = true;
    point.schedule.latencyEpochs = 6;
    point.schedule.imagesInFlight = 6;
    response.points = {point};

    core::DseResponse decoded =
        service::decodeResponse(service::encodeResponse(response));
    EXPECT_TRUE(decoded.ok);
    EXPECT_EQ(decoded.id, "r1");
    EXPECT_EQ(decoded.network, "AlexNet");
    ASSERT_EQ(decoded.points.size(), 1u);
    const core::DsePoint &got = decoded.points[0];
    EXPECT_EQ(got.budget.dspSlices, point.budget.dspSlices);
    EXPECT_EQ(got.budget.bram18k, point.budget.bram18k);
    EXPECT_EQ(got.budget.frequencyMhz, point.budget.frequencyMhz);
    EXPECT_EQ(got.budget.bandwidthBytesPerCycle,
              point.budget.bandwidthBytesPerCycle);
    EXPECT_TRUE(got.design == point.design);
    EXPECT_EQ(got.epochCycles, point.epochCycles);
    EXPECT_EQ(got.dspUsed, point.dspUsed);
    EXPECT_EQ(got.bramUsed, point.bramUsed);
    EXPECT_EQ(got.schedule.adjacentLayers,
              point.schedule.adjacentLayers);
    EXPECT_EQ(got.schedule.latencyEpochs,
              point.schedule.latencyEpochs);
    EXPECT_EQ(got.schedule.imagesInFlight,
              point.schedule.imagesInFlight);

    core::DseResponse error;
    error.id = "bad1";
    error.error = "unknown network 'nope' (with spaces kept)";
    core::DseResponse decoded_error =
        service::decodeResponse(service::encodeResponse(error));
    EXPECT_FALSE(decoded_error.ok);
    EXPECT_EQ(decoded_error.id, "bad1");
    EXPECT_EQ(decoded_error.error, error.error);
}

} // namespace
} // namespace mclp
