/**
 * @file
 * The wire codec must be an exact round trip: requests and responses
 * decode back to the values that were encoded (designs included,
 * since responses pin the optimizer's answer bit for bit), encoding
 * is deterministic, and malformed lines are rejected as user errors,
 * never accepted half-parsed.
 */

#include <gtest/gtest.h>

#include <limits>

#include "service/dse_codec.h"
#include "test_helpers.h"
#include "util/logging.h"

namespace mclp {
namespace {

TEST(DseCodec, RequestRoundTripsAllFields)
{
    core::DseRequest request;
    request.id = "r42";
    request.network = "mini";
    request.layers = {test::layer(3, 64, 55, 55, 11, 4, "conv1"),
                      test::layer(64, 16, 27, 27, 1, 1, "fire1")};
    request.device = "690t";
    request.type = fpga::DataType::Fixed16;
    request.mhz = 170.0;
    request.bandwidthGbps = 21.3;
    request.maxClps = 4;
    request.mode = core::DseMode::Latency;
    request.dspBudgets = {500, 1000, 2880};
    request.referenceEngine = true;
    request.threads = 2;

    core::DseRequest decoded =
        service::decodeRequest(service::encodeRequest(request));
    EXPECT_EQ(decoded.id, request.id);
    EXPECT_EQ(decoded.network, request.network);
    ASSERT_EQ(decoded.layers.size(), request.layers.size());
    for (size_t i = 0; i < request.layers.size(); ++i) {
        EXPECT_EQ(decoded.layers[i].name, request.layers[i].name);
        EXPECT_TRUE(decoded.layers[i].sameShape(request.layers[i]));
    }
    EXPECT_EQ(decoded.device, request.device);
    EXPECT_EQ(decoded.type, request.type);
    EXPECT_EQ(decoded.mhz, request.mhz);
    EXPECT_EQ(decoded.bandwidthGbps, request.bandwidthGbps);
    EXPECT_EQ(decoded.maxClps, request.maxClps);
    EXPECT_EQ(decoded.mode, request.mode);
    EXPECT_EQ(decoded.dspBudgets, request.dspBudgets);
    EXPECT_EQ(decoded.referenceEngine, request.referenceEngine);
    EXPECT_EQ(decoded.threads, request.threads);

    // Deterministic: re-encoding the decoded request is a fixpoint.
    EXPECT_EQ(service::encodeRequest(decoded),
              service::encodeRequest(request));
}

TEST(DseCodec, RequestDefaultsSurviveMinimalLine)
{
    core::DseRequest decoded =
        service::decodeRequest("dse id=a net=alexnet device=690t");
    EXPECT_EQ(decoded.id, "a");
    EXPECT_EQ(decoded.network, "alexnet");
    EXPECT_EQ(decoded.type, fpga::DataType::Float32);
    EXPECT_EQ(decoded.mhz, 100.0);
    EXPECT_EQ(decoded.maxClps, 6);
    EXPECT_EQ(decoded.mode, core::DseMode::Throughput);
    EXPECT_TRUE(decoded.dspBudgets.empty());
    EXPECT_FALSE(decoded.referenceEngine);
}

TEST(DseCodec, MalformedRequestsAreRejected)
{
    EXPECT_THROW(service::decodeRequest("optimize alexnet"),
                 util::FatalError);
    EXPECT_THROW(service::decodeRequest("dse id=a net=alexnet "
                                        "frobnicate=1 device=690t"),
                 util::FatalError);
    EXPECT_THROW(service::decodeRequest("dse id=a net=alexnet "
                                        "device=690t maxclps=zero"),
                 util::FatalError);
    // No device and no ladder: the BRAM rule has no DSP count.
    EXPECT_THROW(service::decodeRequest("dse id=a net=alexnet"),
                 util::FatalError);
    EXPECT_THROW(service::decodeRequest(
                     "dse id=a net=mini layers=bad:1:2:3 budgets=100"),
                 util::FatalError);
}

TEST(DseCodec, LayerGroupsOnTheWire)
{
    // Plain layers keep the pre-groups seven-field wire form byte for
    // byte; grouped layers append :g as an eighth field.
    core::DseRequest request;
    request.id = "g1";
    request.network = "mini";
    request.layers = {test::layer(3, 16, 14, 14, 3, 1, "c1"),
                      test::groupedLayer(16, 32, 7, 7, 3, 1, 4, "gc"),
                      test::groupedLayer(32, 32, 7, 7, 3, 1, 32, "dw")};
    request.dspBudgets = {100};

    std::string line = service::encodeRequest(request);
    EXPECT_NE(line.find("c1:3:16:14:14:3:1;"), std::string::npos)
        << line;
    EXPECT_NE(line.find("gc:16:32:7:7:3:1:4;"), std::string::npos)
        << line;
    EXPECT_NE(line.find("dw:32:32:7:7:3:1:32"), std::string::npos)
        << line;

    core::DseRequest decoded = service::decodeRequest(line);
    ASSERT_EQ(decoded.layers.size(), 3u);
    EXPECT_EQ(decoded.layers[0].g, 1);
    EXPECT_EQ(decoded.layers[1].g, 4);
    EXPECT_EQ(decoded.layers[2].g, 32);
    EXPECT_TRUE(decoded.layers[1].sameShape(request.layers[1]));
    EXPECT_EQ(service::encodeRequest(decoded), line);

    // Groups that do not divide N/M are rejected at decode, as is a
    // ninth field.
    EXPECT_THROW(service::decodeRequest(
                     "dse id=g net=mini layers=c:3:16:14:14:3:1:2 "
                     "budgets=100"),
                 util::FatalError);
    EXPECT_THROW(service::decodeRequest(
                     "dse id=g net=mini layers=c:4:16:14:14:3:1:2:9 "
                     "budgets=100"),
                 util::FatalError);
}

TEST(DseCodec, OutOfRangeWireValuesAreRejectedNotSaturated)
{
    // strtoll/strtod saturate silently on overflow (LLONG_MAX,
    // +-HUGE_VAL) and only report it via errno; the codec must turn
    // that into a parse error, never a plausible-looking bogus
    // request.
    EXPECT_THROW(
        service::decodeRequest("dse id=a net=alexnet "
                               "budgets=9223372036854775808"),
        util::FatalError);
    EXPECT_THROW(
        service::decodeRequest(
            "dse id=a net=alexnet budgets=500,"
            "99999999999999999999999999999999999999"),
        util::FatalError);
    EXPECT_THROW(service::decodeRequest("dse id=a net=alexnet "
                                        "device=690t mhz=1e999"),
                 util::FatalError);
    EXPECT_THROW(service::decodeRequest("dse id=a net=alexnet "
                                        "device=690t bw=-1e999"),
                 util::FatalError);
    // Underflow is ERANGE too: a wire value the double cannot
    // represent is rejected rather than flushed toward zero.
    EXPECT_THROW(service::decodeRequest("dse id=a net=alexnet "
                                        "device=690t mhz=1e-999"),
                 util::FatalError);
    EXPECT_THROW(
        service::decodeRequest(
            "dse id=a net=mini "
            "layers=conv1:99999999999999999999:16:7:7:3:1 "
            "budgets=100"),
        util::FatalError);
    // Response decoding takes the same path.
    EXPECT_THROW(
        service::decodeResponse("ok id=a net=x points=1 point "
                                "dsp=99999999999999999999999999"),
        util::FatalError);

    // The extremes that *do* fit are still accepted exactly.
    core::DseRequest request = service::decodeRequest(
        "dse id=a net=alexnet budgets=9223372036854775807");
    ASSERT_EQ(request.dspBudgets.size(), 1u);
    EXPECT_EQ(request.dspBudgets[0],
              std::numeric_limits<int64_t>::max());
}

TEST(DseCodec, JointRequestRoundTripsZooInlineAndWeights)
{
    core::DseRequest request;
    request.id = "j1";
    request.network.clear();
    core::DseSubNet zoo;
    zoo.name = "a";
    zoo.network = "alexnet";
    zoo.weight = 2;
    core::DseSubNet inline_net;
    inline_net.name = "mini";
    inline_net.layers = {test::layer(3, 16, 14, 14, 3, 1, "c1"),
                         test::layer(16, 24, 7, 7, 3, 1, "c2")};
    core::DseSubNet same_name;
    same_name.name = "squeezenet";  // NAME == ZOO encodes bare
    same_name.network = "squeezenet";
    request.subnets = {zoo, inline_net, same_name};
    request.dspBudgets = {500};

    std::string line = service::encodeRequest(request);
    // nets= replaces net=; the bare entry stays compact.
    EXPECT_NE(line.find(" nets=a:alexnet,mini:#2,squeezenet"),
              std::string::npos)
        << line;
    EXPECT_NE(line.find(" weights=2,1,1"), std::string::npos) << line;
    EXPECT_EQ(line.find(" net="), std::string::npos) << line;

    core::DseRequest decoded = service::decodeRequest(line);
    ASSERT_EQ(decoded.subnets.size(), 3u);
    EXPECT_EQ(decoded.subnets[0].name, "a");
    EXPECT_EQ(decoded.subnets[0].network, "alexnet");
    EXPECT_EQ(decoded.subnets[0].weight, 2);
    EXPECT_EQ(decoded.subnets[1].name, "mini");
    EXPECT_TRUE(decoded.subnets[1].network.empty());
    EXPECT_EQ(decoded.subnets[1].weight, 1);
    ASSERT_EQ(decoded.subnets[1].layers.size(), 2u);
    EXPECT_EQ(decoded.subnets[1].layers[0].name, "c1");
    EXPECT_TRUE(decoded.subnets[1].layers[1].sameShape(
        inline_net.layers[1]));
    EXPECT_EQ(decoded.subnets[2].network, "squeezenet");
    // The shared layers= field was distributed into the subnets.
    EXPECT_TRUE(decoded.layers.empty());

    // Deterministic: re-encoding the decoded request is a fixpoint.
    EXPECT_EQ(service::encodeRequest(decoded), line);
}

TEST(DseCodec, JointRequestErrorsAreRejected)
{
    // Duplicate sub-network names.
    EXPECT_THROW(service::decodeRequest(
                     "dse id=j nets=a:alexnet,a:squeezenet "
                     "budgets=100"),
                 util::FatalError);
    // Zero networks.
    EXPECT_THROW(service::decodeRequest("dse id=j nets= budgets=100"),
                 util::FatalError);
    // Mismatched weight count.
    EXPECT_THROW(service::decodeRequest(
                     "dse id=j nets=alexnet,squeezenet weights=1 "
                     "budgets=100"),
                 util::FatalError);
    // Non-positive weights.
    EXPECT_THROW(service::decodeRequest(
                     "dse id=j nets=alexnet,squeezenet weights=0,1 "
                     "budgets=100"),
                 util::FatalError);
    // weights= without nets=.
    EXPECT_THROW(service::decodeRequest(
                     "dse id=j net=alexnet weights=2 budgets=100"),
                 util::FatalError);
    // net= and nets= are mutually exclusive.
    EXPECT_THROW(service::decodeRequest(
                     "dse id=j net=alexnet nets=squeezenet "
                     "budgets=100"),
                 util::FatalError);
    // Inline counts must match the shared layers= field exactly.
    EXPECT_THROW(service::decodeRequest(
                     "dse id=j nets=m:#3 budgets=100 "
                     "layers=c1:3:16:14:14:3:1;c2:16:24:7:7:3:1"),
                 util::FatalError);
    // layers= with no inline subnet to consume it.
    EXPECT_THROW(service::decodeRequest(
                     "dse id=j nets=alexnet budgets=100 "
                     "layers=c1:3:16:14:14:3:1"),
                 util::FatalError);
    // Malformed nets= entries.
    EXPECT_THROW(service::decodeRequest(
                     "dse id=j nets=a: budgets=100"),
                 util::FatalError);
    EXPECT_THROW(service::decodeRequest(
                     "dse id=j nets=m:#0 budgets=100"),
                 util::FatalError);
    // A literal sub-network named like another's weight-expanded
    // copy would duplicate attribution span names: rejected.
    EXPECT_THROW(service::decodeRequest(
                     "dse id=j nets=a:alexnet,a.0:squeezenet "
                     "weights=2,1 budgets=100"),
                 util::FatalError);
}

TEST(DseCodec, RepeatedNetsKeyLastWinsWithoutStaleCounts)
{
    // Last occurrence wins, like every other key — and the overridden
    // occurrence's inline counts must not leak into the
    // layers-vs-counts validation.
    core::DseRequest decoded = service::decodeRequest(
        "dse id=c nets=x:#1 nets=y:#2 budgets=100 "
        "layers=c1:3:16:14:14:3:1;c2:16:24:7:7:3:1");
    ASSERT_EQ(decoded.subnets.size(), 1u);
    EXPECT_EQ(decoded.subnets[0].name, "y");
    EXPECT_EQ(decoded.subnets[0].layers.size(), 2u);

    // Four layers against the surviving occurrence's count of two
    // must be rejected as drift, not sliced by the stale counts.
    EXPECT_THROW(service::decodeRequest(
                     "dse id=c nets=x:#2,z:#2 nets=y:#2 budgets=100 "
                     "layers=c1:3:16:14:14:3:1;c2:16:24:7:7:3:1;"
                     "c3:3:16:14:14:3:1;c4:16:24:7:7:3:1"),
                 util::FatalError);
}

TEST(DseCodec, ResponseSubnetSpansRoundTrip)
{
    core::DseResponse response;
    response.id = "j1";
    response.ok = true;
    response.network = "a+b";
    response.subnets = {{"a", 0, 10}, {"a.1", 10, 10}, {"b", 20, 26}};

    std::string line = service::encodeResponse(response);
    EXPECT_NE(line.find(" subnets=a:0:10;a.1:10:10;b:20:26"),
              std::string::npos)
        << line;
    core::DseResponse decoded = service::decodeResponse(line);
    ASSERT_EQ(decoded.subnets.size(), 3u);
    EXPECT_EQ(decoded.subnets[0].name, "a");
    EXPECT_EQ(decoded.subnets[0].firstLayer, 0u);
    EXPECT_EQ(decoded.subnets[0].numLayers, 10u);
    EXPECT_EQ(decoded.subnets[2].name, "b");
    EXPECT_EQ(decoded.subnets[2].firstLayer, 20u);
    EXPECT_EQ(decoded.subnets[2].numLayers, 26u);
    EXPECT_EQ(service::encodeResponse(decoded), line);

    EXPECT_THROW(service::decodeResponse(
                     "ok id=j net=a+b subnets=a:0 points=0"),
                 util::FatalError);

    // A repeated subnets= key last-wins like every other field,
    // never accumulates.
    core::DseResponse repeated = service::decodeResponse(
        "ok id=j net=a+b subnets=x:0:5;y:5:5 subnets=a:0:10 "
        "points=0");
    ASSERT_EQ(repeated.subnets.size(), 1u);
    EXPECT_EQ(repeated.subnets[0].name, "a");
}

TEST(DseCodec, DesignRoundTrips)
{
    model::MultiClpDesign design;
    design.dataType = fpga::DataType::Fixed16;
    model::ClpConfig clp0;
    clp0.shape = {3, 32};
    clp0.layers = {{0, {27, 27}}, {2, {13, 13}}};
    model::ClpConfig clp1;
    clp1.shape = {1, 48};
    clp1.layers = {{1, {55, 55}}};
    design.clps = {clp0, clp1};

    std::string spec = service::encodeDesign(design);
    EXPECT_EQ(spec, "3x32@0:27:27,2:13:13/1x48@1:55:55");
    model::MultiClpDesign decoded =
        service::decodeDesign(spec, fpga::DataType::Fixed16);
    EXPECT_TRUE(decoded == design);
}

TEST(DseCodec, ResponseRoundTripsPointsAndErrors)
{
    core::DseResponse response;
    response.id = "r1";
    response.ok = true;
    response.network = "AlexNet";
    core::DsePoint point;
    point.budget.dspSlices = 2880;
    point.budget.bram18k = 2352;
    point.budget.frequencyMhz = 170.0;
    point.budget.bandwidthBytesPerCycle = 1.25;
    point.design = test::coverAll(
        test::singleLayerNet(test::layer(3, 64, 55, 55, 11, 4)), 3, 32);
    point.epochCycles = 1168128;
    point.dspUsed = 480;
    point.bramUsed = 99;
    point.schedule.adjacentLayers = true;
    point.schedule.latencyEpochs = 6;
    point.schedule.imagesInFlight = 6;
    response.points = {point};

    core::DseResponse decoded =
        service::decodeResponse(service::encodeResponse(response));
    EXPECT_TRUE(decoded.ok);
    EXPECT_EQ(decoded.id, "r1");
    EXPECT_EQ(decoded.network, "AlexNet");
    ASSERT_EQ(decoded.points.size(), 1u);
    const core::DsePoint &got = decoded.points[0];
    EXPECT_EQ(got.budget.dspSlices, point.budget.dspSlices);
    EXPECT_EQ(got.budget.bram18k, point.budget.bram18k);
    EXPECT_EQ(got.budget.frequencyMhz, point.budget.frequencyMhz);
    EXPECT_EQ(got.budget.bandwidthBytesPerCycle,
              point.budget.bandwidthBytesPerCycle);
    EXPECT_TRUE(got.design == point.design);
    EXPECT_EQ(got.epochCycles, point.epochCycles);
    EXPECT_EQ(got.dspUsed, point.dspUsed);
    EXPECT_EQ(got.bramUsed, point.bramUsed);
    EXPECT_EQ(got.schedule.adjacentLayers,
              point.schedule.adjacentLayers);
    EXPECT_EQ(got.schedule.latencyEpochs,
              point.schedule.latencyEpochs);
    EXPECT_EQ(got.schedule.imagesInFlight,
              point.schedule.imagesInFlight);

    core::DseResponse error;
    error.id = "bad1";
    error.error = "unknown network 'nope' (with spaces kept)";
    core::DseResponse decoded_error =
        service::decodeResponse(service::encodeResponse(error));
    EXPECT_FALSE(decoded_error.ok);
    EXPECT_EQ(decoded_error.id, "bad1");
    EXPECT_EQ(decoded_error.error, error.error);
}

} // namespace
} // namespace mclp
