/**
 * @file
 * Hostile-input proofs for the front's shard-aggregation merge
 * (src/service/shard_merge.h). The parts fed to mergeStatsParts come
 * off worker sockets — a crashed, wedged, or adversarial worker can
 * hand it literally any bytes, and the front must still answer one
 * well-formed line and never crash, hang, or hit UB. Exact merges of
 * well-formed parts are pinned first (the format mclp-front actually
 * serves, which docs/PROTOCOL.md documents), then a deterministic
 * fuzz loop hammers the parser with the pathologies we know about
 * and randomized garbage.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "service/shard_merge.h"

namespace mclp {
namespace {

using service::mergeStatsParts;

TEST(ShardMerge, SumsCountersAcrossWellFormedParts)
{
    std::string merged = mergeStatsParts(
        "stats", {"ok stats sessions=2 hits=10 misses=1",
                  "ok stats sessions=3 hits=5 misses=0"});
    EXPECT_EQ(merged,
              "ok stats shards=2 sessions=5 hits=15 misses=1"
              " | shard0: ok stats sessions=2 hits=10 misses=1"
              " | shard1: ok stats sessions=3 hits=5 misses=0");
}

TEST(ShardMerge, EnabledCleanAndTheMinGenerationTheMax)
{
    // enabled/clean report "every shard agrees" (AND via min);
    // generation reports the newest segment any shard published.
    std::string merged = mergeStatsParts(
        "cache-stats",
        {"ok cache-stats enabled=1 generation=7 clean=0",
         "ok cache-stats enabled=0 generation=9 clean=1"});
    EXPECT_EQ(merged.rfind("ok cache-stats shards=2 enabled=0 "
                           "generation=9 clean=0 | shard0: ", 0), 0u)
        << merged;
}

TEST(ShardMerge, DeadWorkerPartsStayInTheBreakdownOnly)
{
    // The form the front actually emits for a dead shard: counters
    // come from the living shard alone, the err rides the breakdown.
    std::string merged = mergeStatsParts(
        "stats", {"ok stats sessions=4", "err id=- msg=worker-died"});
    EXPECT_EQ(merged, "ok stats shards=2 sessions=4"
                      " | shard0: ok stats sessions=4"
                      " | shard1: err id=- msg=worker-died");
}

TEST(ShardMerge, EmptyPartsListStillAnswersWellFormed)
{
    EXPECT_EQ(mergeStatsParts("stats", {}), "ok stats shards=0");
    EXPECT_EQ(mergeStatsParts("stats", {"", ""}),
              "ok stats shards=2 | shard0:  | shard1: ");
}

TEST(ShardMerge, NonNumericValuesAreBreakdownOnly)
{
    // session_rates=- and friends must not produce a merged key.
    std::string merged = mergeStatsParts(
        "stats", {"ok stats session_rates=- sessions=1",
                  "ok stats session_rates=0.5;2 sessions=1"});
    EXPECT_EQ(merged.rfind("ok stats shards=2 sessions=2 | ", 0), 0u)
        << merged;
}

TEST(ShardMerge, HostileMagnitudesNeverHitUndefinedCasts)
{
    // 9e99 summed is far outside long long; the merge must degrade
    // to a decimal print, not cast out of range (UB).
    std::string merged = mergeStatsParts(
        "stats",
        {"ok stats hits=9e99", "ok stats hits=9e99"});
    EXPECT_EQ(merged.find("hits=-"), std::string::npos) << merged;
    EXPECT_NE(merged.find("hits="), std::string::npos) << merged;

    // Same for a plain decimal integer past the window, and for the
    // strtod specials ("nan"/"inf" parse as doubles).
    for (const char *hostile :
         {"ok stats hits=99999999999999999999",
          "ok stats hits=nan", "ok stats hits=inf",
          "ok stats hits=-inf", "ok stats hits=1e308"}) {
        std::string out =
            mergeStatsParts("stats", {hostile, "ok stats hits=1"});
        EXPECT_EQ(out.rfind("ok stats shards=2 hits=", 0), 0u) << out;
    }
}

TEST(ShardMerge, EmbeddedSeparatorsCannotForgeTheBreakdown)
{
    // A worker line containing the breakdown separator is carried
    // verbatim; the merged counters still only count real parts.
    std::string evil = "ok stats sessions=1 | shard9: ok stats "
                       "sessions=100";
    std::string merged = mergeStatsParts("stats", {evil});
    // "sessions=100" rides the same istringstream scan, so it sums —
    // what must NOT happen is a crash or a malformed prefix.
    EXPECT_EQ(merged.rfind("ok stats shards=1 sessions=101", 0), 0u)
        << merged;
    EXPECT_NE(merged.find(" | shard0: " + evil), std::string::npos)
        << merged;
}

TEST(ShardMerge, FuzzedPartsNeverBreakTheAnswerShape)
{
    // Deterministic fuzz: random parts assembled from the fragments
    // hostile or buggy workers actually produce — truncated ok
    // lines, key-only tokens, '=' soup, huge exponents, embedded
    // separators, NULs are excluded only because the wire protocol
    // is line-based text. Every answer must start with the verb
    // header and carry exactly one breakdown entry per part.
    std::mt19937 rng(0xC0FFEE);
    const std::vector<std::string> fragments = {
        "ok stats",
        "ok stats ",
        "ok statsx hits=1",
        "err id=- msg=worker-died",
        "hits=1",
        "=1",
        "a=",
        "a==b",
        "hits=9e999",
        "hits=-9e18",
        "hits=nan",
        "hits=NaN(char-sequence)",
        "hits=inf",
        "hits=0x10",
        "hits=1.5.2",
        "generation=18446744073709551615",
        "enabled=2",
        "clean=-1",
        "| shard0: ok stats hits=5",
        "sessions=1 sessions=2 sessions=3",
        "\t \t",
        std::string(300, '='),
        std::string(300, '9'),
        "k" + std::string(200, 'e') + "=1",
    };
    for (int round = 0; round < 2000; ++round) {
        std::vector<std::string> parts(rng() % 5);
        for (std::string &part : parts) {
            int pieces = static_cast<int>(rng() % 4);
            if (rng() % 2)
                part = "ok stats";
            for (int p = 0; p < pieces; ++p) {
                part += part.empty() ? "" : " ";
                part += fragments[rng() % fragments.size()];
            }
        }
        std::string out = mergeStatsParts("stats", parts);
        ASSERT_EQ(out.rfind("ok stats shards=" +
                                std::to_string(parts.size()),
                            0), 0u)
            << out;
        size_t breakdowns = 0;
        for (size_t pos = 0;
             (pos = out.find(" | shard", pos)) != std::string::npos;
             ++pos)
            ++breakdowns;
        // Parts may themselves contain " | shard", so the count is
        // at least one per part — never fewer.
        ASSERT_GE(breakdowns, parts.size()) << out;
    }
}

} // namespace
} // namespace mclp
