/**
 * @file
 * The batch DSE service must be invisible in results: responses are
 * bit-identical to cold MultiClpOptimizer runs of the same requests,
 * regardless of batch composition, concurrency, registry warmth, or
 * transport (in-process, stream, or Unix socket). Ordering is pinned
 * too — responses[i] always answers lines[i], with malformed lines
 * answered in place by err lines.
 */

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/optimizer.h"
#include "core/schedule.h"
#include "model/metrics.h"
#include "nn/zoo.h"
#include "service/dse_codec.h"
#include "service/dse_service.h"
#include "util/string_utils.h"

namespace mclp {
namespace {

/** The reference answer: independent cold runs, wire-encoded. */
std::string
coldReference(const std::string &request_line)
{
    core::DseRequest request = service::decodeRequest(request_line);
    return service::encodeResponse(
        service::answerRequest(request, nullptr));
}

std::vector<std::string>
mixedBatch()
{
    return {
        "dse id=a1 net=alexnet device=690t",
        "dse id=s1 net=squeezenet device=690t type=fixed mhz=170 "
        "budgets=1000,2880",
        "dse id=a2 net=alexnet device=485t mode=single",
        "dse id=l1 net=alexnet budgets=500,2880 mode=latency",
        "dse id=c1 net=mini "
        "layers=conv1:3:16:14:14:3:1;conv2:16:24:7:7:3:1 budgets=200",
    };
}

TEST(DseService, MixedBatchMatchesColdRunsInOrder)
{
    service::ServiceOptions options;
    options.threads = 1;
    service::DseService dse(options);
    std::vector<std::string> lines = mixedBatch();
    std::vector<std::string> responses = dse.handleBatch(lines);
    ASSERT_EQ(responses.size(), lines.size());
    for (size_t i = 0; i < lines.size(); ++i) {
        EXPECT_EQ(responses[i], coldReference(lines[i]))
            << "request " << lines[i];
    }
}

TEST(DseService, ConcurrencyAndWarmthNeverChangeResponses)
{
    service::ServiceOptions serial;
    serial.threads = 1;
    service::DseService cold_service(serial);

    service::ServiceOptions parallel;
    parallel.threads = 4;
    service::DseService warm_service(parallel);

    std::vector<std::string> lines = mixedBatch();
    std::vector<std::string> first = cold_service.handleBatch(lines);
    std::vector<std::string> threaded = warm_service.handleBatch(lines);
    EXPECT_EQ(first, threaded);

    // A warm second batch (every session already resident) must be
    // byte-identical to the first.
    std::vector<std::string> second = warm_service.handleBatch(lines);
    EXPECT_EQ(first, second);

    core::SessionRegistry::Stats stats =
        warm_service.registry().stats();
    EXPECT_GE(stats.hits, lines.size() - 1)
        << "second batch should reuse resident sessions";
}

TEST(DseService, MalformedLinesAnswerInPlace)
{
    service::DseService dse{service::ServiceOptions{}};
    std::vector<std::string> lines{
        "dse id=ok1 net=alexnet budgets=500",
        "dse id=bad1 net=no-such-network device=690t",
        "not a request at all",
        "",
        "# comment",
        "dse id=ok2 net=alexnet budgets=500",
    };
    std::vector<std::string> responses = dse.handleBatch(lines);
    ASSERT_EQ(responses.size(), lines.size());
    EXPECT_TRUE(util::startsWith(responses[0], "ok id=ok1 "));
    EXPECT_TRUE(util::startsWith(responses[1], "err id=bad1 "));
    EXPECT_TRUE(util::startsWith(responses[2], "err id=- "));
    EXPECT_EQ(responses[3], "");
    EXPECT_EQ(responses[4], "");
    EXPECT_TRUE(util::startsWith(responses[5], "ok id=ok2 "));
    // The two well-formed requests got identical answers.
    EXPECT_EQ(responses[0].substr(9), responses[5].substr(9));
}

TEST(DseService, WireThreadCountIsServerPolicyNotClientChoice)
{
    // A hostile threads= value must not be able to exhaust the host:
    // the dispatcher overrides it with its own session policy, and
    // the answer matches the plain request bit for bit (thread count
    // never changes results anyway).
    service::DseService dse{service::ServiceOptions{}};
    std::string greedy = dse.handleLine(
        "dse id=t net=alexnet budgets=500 threads=500000");
    EXPECT_TRUE(util::startsWith(greedy, "ok id=t "));
    std::string plain =
        dse.handleLine("dse id=t net=alexnet budgets=500");
    EXPECT_EQ(greedy, plain);
}

TEST(DseService, StreamModeAnswersEveryRequestLine)
{
    service::DseService dse{service::ServiceOptions{}};
    std::istringstream in("dse id=x net=alexnet budgets=400\n"
                          "# comment\n"
                          "stats\n");
    std::ostringstream out;
    dse.serveStream(in, out);
    std::vector<std::string> lines =
        util::split(out.str(), '\n');
    ASSERT_GE(lines.size(), 2u);
    EXPECT_TRUE(util::startsWith(lines[0], "ok id=x "));
    EXPECT_TRUE(util::startsWith(lines[1], "ok stats sessions=1 "));
}

TEST(DseService, ResponsesDecodeToDesignsThatReproduceMetrics)
{
    service::DseService dse{service::ServiceOptions{}};
    std::string line = "dse id=q net=squeezenet device=485t "
                       "type=fixed budgets=800";
    core::DseResponse response =
        service::decodeResponse(dse.handleLine(line));
    ASSERT_TRUE(response.ok);
    ASSERT_EQ(response.points.size(), 1u);
    const core::DsePoint &point = response.points[0];

    // Rebuild the network and re-evaluate the decoded design: the
    // response's metrics must be reproducible from its own design.
    core::DseRequest request = service::decodeRequest(line);
    nn::Network network = core::resolveNetwork(request);
    auto metrics =
        model::evaluateDesign(point.design, network, point.budget);
    EXPECT_EQ(metrics.epochCycles, point.epochCycles);
}

TEST(DseService, UnixSocketServesABatch)
{
    std::string path = util::strprintf("/tmp/mclp_test_%d.sock",
                                       static_cast<int>(::getpid()));
    service::DseService dse{service::ServiceOptions{}};
    std::thread server(
        [&] { EXPECT_EQ(dse.serveSocket(path, 1), 0); });

    // Wait for the listener, then run one batch over the socket.
    int fd = -1;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    for (int attempt = 0; attempt < 200; ++attempt) {
        fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        ASSERT_GE(fd, 0);
        if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) == 0)
            break;
        ::close(fd);
        fd = -1;
        ::usleep(10000);
    }
    ASSERT_GE(fd, 0) << "could not connect to " << path;

    std::string batch = "dse id=u1 net=alexnet budgets=500\n"
                        "dse id=u2 net=alexnet budgets=500 "
                        "mode=single\n";
    ASSERT_EQ(::write(fd, batch.data(), batch.size()),
              static_cast<ssize_t>(batch.size()));
    ::shutdown(fd, SHUT_WR);

    std::string reply;
    char buffer[4096];
    ssize_t got;
    while ((got = ::read(fd, buffer, sizeof(buffer))) > 0)
        reply.append(buffer, static_cast<size_t>(got));
    ::close(fd);
    server.join();

    std::vector<std::string> lines = util::split(reply, '\n');
    ASSERT_GE(lines.size(), 2u);
    EXPECT_EQ(lines[0],
              coldReference("dse id=u1 net=alexnet budgets=500"));
    EXPECT_EQ(lines[1], coldReference("dse id=u2 net=alexnet "
                                      "budgets=500 mode=single"));
}

TEST(DseService, ClientDroppingMidResponseDoesNotKillTheServer)
{
    std::string path = util::strprintf("/tmp/mclp_test_drop_%d.sock",
                                       static_cast<int>(::getpid()));
    service::DseService dse{service::ServiceOptions{}};
    std::thread server(
        [&] { EXPECT_EQ(dse.serveSocket(path, 2), 0); });

    auto connect_to = [&]() -> int {
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, path.c_str(),
                     sizeof(addr.sun_path) - 1);
        for (int attempt = 0; attempt < 200; ++attempt) {
            int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
            if (fd < 0)
                return -1;
            if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                          sizeof(addr)) == 0)
                return fd;
            ::close(fd);
            ::usleep(10000);
        }
        return -1;
    };

    // First client: send a ladder big enough that its response fills
    // socket buffers, then vanish without reading a byte. The write
    // path must see EPIPE/ECONNRESET (never SIGPIPE) and treat it as
    // a per-connection failure.
    int fd = connect_to();
    ASSERT_GE(fd, 0) << "could not connect to " << path;
    std::string batch =
        "dse id=d1 net=squeezenet device=690t "
        "budgets=500,1000,1500,2000,2500,2880\n";
    ASSERT_EQ(::write(fd, batch.data(), batch.size()),
              static_cast<ssize_t>(batch.size()));
    ::shutdown(fd, SHUT_WR);
    ::close(fd);  // gone before the response is written

    // Second client: the server must still be alive and correct.
    fd = connect_to();
    ASSERT_GE(fd, 0) << "server died after the dropped client";
    std::string ok_batch = "dse id=d2 net=alexnet budgets=500\n";
    ASSERT_EQ(::write(fd, ok_batch.data(), ok_batch.size()),
              static_cast<ssize_t>(ok_batch.size()));
    ::shutdown(fd, SHUT_WR);
    std::string reply;
    char buffer[4096];
    ssize_t got;
    while ((got = ::read(fd, buffer, sizeof(buffer))) > 0)
        reply.append(buffer, static_cast<size_t>(got));
    ::close(fd);
    server.join();

    std::vector<std::string> lines = util::split(reply, '\n');
    ASSERT_GE(lines.size(), 1u);
    EXPECT_EQ(lines[0],
              coldReference("dse id=d2 net=alexnet budgets=500"));
}

/** Drop the joint-only attribution field for byte comparisons. */
std::string
stripSubnets(const std::string &line)
{
    std::string out = line;
    size_t pos = out.find(" subnets=");
    if (pos == std::string::npos)
        return out;
    size_t end = out.find(' ', pos + 1);
    out.erase(pos, end == std::string::npos ? std::string::npos
                                            : end - pos);
    return out;
}

TEST(DseService, JointRequestMatchesHandConcatenatedNetwork)
{
    // Section 4.3 cold parity: a joint request must be byte-identical
    // to optimizing the hand-concatenated network — same designs,
    // same metrics, same wire bytes — modulo the attribution field
    // only joint responses carry.
    service::DseService dse{service::ServiceOptions{}};
    std::string joint = dse.handleLine(
        "dse id=j nets=alexnet,squeezenet device=690t budgets=1000");
    ASSERT_TRUE(util::startsWith(joint, "ok id=j ")) << joint;

    nn::Network concat = nn::concatenateNetworks(
        {nn::networkByName("alexnet"), nn::networkByName("squeezenet")},
        "alexnet+squeezenet");
    core::DseRequest hand;
    hand.id = "j";
    hand.network = concat.name();
    hand.layers = concat.layers();
    hand.device = "690t";
    hand.dspBudgets = {1000};
    std::string hand_response = service::encodeResponse(
        service::answerRequest(hand, nullptr));
    EXPECT_EQ(stripSubnets(joint), hand_response);

    // The attribution spans partition the concatenation in order.
    core::DseResponse decoded = service::decodeResponse(joint);
    ASSERT_EQ(decoded.subnets.size(), 2u);
    EXPECT_EQ(decoded.subnets[0].name, "alexnet");
    EXPECT_EQ(decoded.subnets[0].firstLayer, 0u);
    EXPECT_EQ(decoded.subnets[0].numLayers,
              nn::networkByName("alexnet").numLayers());
    EXPECT_EQ(decoded.subnets[1].name, "squeezenet");
    EXPECT_EQ(decoded.subnets[1].firstLayer,
              decoded.subnets[0].numLayers);
    EXPECT_EQ(decoded.subnets[0].numLayers +
                  decoded.subnets[1].numLayers,
              concat.numLayers());
}

TEST(DseService, WeightedJointMatchesHandExpandedConcatenation)
{
    // weight=2 means two copies of the sub-network in the
    // concatenation (two images of it per joint epoch); the hand
    // expansion spells the copies out.
    service::DseService dse{service::ServiceOptions{}};
    std::string joint = dse.handleLine(
        "dse id=w nets=x:#2,y:#1 weights=2,1 budgets=200 "
        "layers=c1:3:16:14:14:3:1;c2:16:24:7:7:3:1;d1:8:8:10:10:3:1");
    ASSERT_TRUE(util::startsWith(joint, "ok id=w ")) << joint;

    std::vector<nn::ConvLayer> x_layers{
        nn::makeConvLayer("c1", 3, 16, 14, 14, 3, 1),
        nn::makeConvLayer("c2", 16, 24, 7, 7, 3, 1)};
    std::vector<nn::ConvLayer> y_layers{
        nn::makeConvLayer("d1", 8, 8, 10, 10, 3, 1)};
    nn::Network concat = nn::concatenateNetworks(
        {nn::Network("x.0", x_layers), nn::Network("x.1", x_layers),
         nn::Network("y", y_layers)},
        "x+y");
    core::DseRequest hand;
    hand.id = "w";
    hand.network = concat.name();
    hand.layers = concat.layers();
    hand.dspBudgets = {200};
    EXPECT_EQ(stripSubnets(joint),
              service::encodeResponse(
                  service::answerRequest(hand, nullptr)));

    core::DseResponse decoded = service::decodeResponse(joint);
    ASSERT_EQ(decoded.subnets.size(), 3u);
    EXPECT_EQ(decoded.subnets[0].name, "x.0");
    EXPECT_EQ(decoded.subnets[1].name, "x.1");
    EXPECT_EQ(decoded.subnets[1].firstLayer, 2u);
    EXPECT_EQ(decoded.subnets[2].name, "y");
    EXPECT_EQ(decoded.subnets[2].firstLayer, 4u);
}

TEST(DseService, JointErrorPathsAnswerErrLinesNotFatal)
{
    // Malformed joint requests are user errors: the batch answers
    // them in place with err lines and keeps serving.
    service::DseService dse{service::ServiceOptions{}};
    std::vector<std::string> responses = dse.handleBatch({
        "dse id=dup nets=a:alexnet,a:squeezenet budgets=100",
        "dse id=none nets= budgets=100",
        "dse id=wmis nets=alexnet,squeezenet weights=2 budgets=100",
        "dse id=ok nets=alexnet,squeezenet budgets=300",
    });
    ASSERT_EQ(responses.size(), 4u);
    EXPECT_TRUE(util::startsWith(responses[0], "err id=dup "))
        << responses[0];
    EXPECT_NE(responses[0].find("duplicate sub-network"),
              std::string::npos)
        << responses[0];
    EXPECT_TRUE(util::startsWith(responses[1], "err id=none "))
        << responses[1];
    EXPECT_TRUE(util::startsWith(responses[2], "err id=wmis "))
        << responses[2];
    EXPECT_NE(responses[2].find("weights="), std::string::npos)
        << responses[2];
    EXPECT_TRUE(util::startsWith(responses[3], "ok id=ok "))
        << responses[3];
}

TEST(DseService, CacheStatsVerbReportsDisabledWithoutCacheDir)
{
    service::DseService dse{service::ServiceOptions{}};
    EXPECT_EQ(dse.handleLine("cache-stats"),
              "ok cache-stats enabled=0");
}

TEST(DseService, GroupedRequestsMatchColdRunsWarmOrNot)
{
    // Depthwise/grouped layers ride the same wire, registry, and
    // optimizer paths as plain ones; a repeated request (warm
    // session) must still answer byte-identically to a cold run.
    std::vector<std::string> lines = {
        "dse id=dw net=gmini "
        "layers=dw:8:8:7:7:3:1:8;pw:8:16:7:7:1:1 budgets=200",
        "dse id=mb net=mobilenet-v1 budgets=500",
        "dse id=mb2 net=mobilenet-v1 budgets=500",
    };
    service::DseService dse{service::ServiceOptions{}};
    std::vector<std::string> responses = dse.handleBatch(lines);
    ASSERT_EQ(responses.size(), lines.size());
    for (size_t i = 0; i < lines.size(); ++i)
        EXPECT_EQ(responses[i], coldReference(lines[i])) << lines[i];
}

TEST(DseService, MidLifeFlushHandsWarmSegmentToANewService)
{
    // What mclp-serve --cache-flush-interval-ms buys: flushCache() on
    // a live service publishes the record file and segment, so a
    // service opened afterwards (a new shard, a second host process)
    // starts mmap-warm without waiting for the first one to exit —
    // and still answers byte-identically.
    char tmpl[] = "/tmp/mclp-flush-test-XXXXXX";
    ASSERT_NE(mkdtemp(tmpl), nullptr);
    std::string dir = tmpl;
    std::string line = "dse id=f net=alexnet device=690t budgets=1500";
    std::string cold = coldReference(line);

    service::ServiceOptions options;
    options.cacheDir = dir;
    service::DseService first(options);
    EXPECT_EQ(first.handleLine(line), cold);
    first.flushCache();  // mid-life: `first` keeps serving below

    {
        service::DseService second(options);
        std::string stats = second.handleLine("cache-stats");
        EXPECT_NE(stats.find(" segment_mapped=1"), std::string::npos)
            << stats;
        EXPECT_EQ(second.handleLine(line), cold);
    }

    // The flushed service is still live: same answers, flushable
    // again (the periodic flusher fires many times per lifetime).
    EXPECT_EQ(first.handleLine(line), cold);
    first.flushCache();
    std::filesystem::remove_all(dir);
}

/** Every file in @p dir, name -> exact bytes (the cache dir is flat). */
std::map<std::string, std::string>
dirBytes(const std::string &dir)
{
    std::map<std::string, std::string> files;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir)) {
        std::ifstream in(entry.path(), std::ios::binary);
        std::ostringstream bytes;
        bytes << in.rdbuf();
        files[entry.path().filename().string()] = bytes.str();
    }
    return files;
}

TEST(DseService, TimerFlushRacingDrainNeverTearsTheCache)
{
    // --cache-flush-interval-ms puts a background flush on a timer
    // that can fire at any moment during SIGTERM drain: the timer
    // thread and the shutdown flush may both be in flushCache() at
    // once. FrontierCache::flush() makes that safe by construction
    // (state snapshot under its mutex, merge under the advisory file
    // lock, atomic rename) — this pins it end to end: a service
    // hammered by a 1 ms timer through its whole life, including
    // destruction, leaves a cache a fresh service loads clean and
    // answers from byte-identically, and a second lifetime that
    // learns nothing new leaves every cache file byte-untouched (no
    // double-flush, no torn segment, no gratuitous generation bump).
    char tmpl[] = "/tmp/mclp-flushrace-test-XXXXXX";
    ASSERT_NE(mkdtemp(tmpl), nullptr);
    std::string dir = tmpl;
    std::vector<std::string> lines = {
        "dse id=r1 net=alexnet device=690t budgets=500,1500",
        "dse id=r2 net=mini layers=conv1:3:16:14:14:3:1 budgets=200",
    };

    service::ServiceOptions options;
    options.cacheDir = dir;
    options.cacheFlushIntervalMs = 1;
    {
        service::DseService racy(options);
        for (const std::string &line : lines)
            EXPECT_EQ(racy.handleLine(line), coldReference(line));
        // Let the timer fire many times over live state, then
        // destroy with it still armed: the drain flush races the
        // last timer flush right here.
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }

    std::map<std::string, std::string> after_drain = dirBytes(dir);
    ASSERT_TRUE(after_drain.count("frontier_cache.bin"));
    ASSERT_TRUE(after_drain.count("frontier_cache.seg"));

    {
        service::DseService second(options);
        std::string stats = second.handleLine("cache-stats");
        EXPECT_NE(stats.find(" segment_mapped=1"), std::string::npos)
            << stats;
        EXPECT_NE(stats.find(" clean=1"), std::string::npos) << stats;
        for (const std::string &line : lines)
            EXPECT_EQ(second.handleLine(line), coldReference(line));
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }

    // The second lifetime replayed the same requests from the cache:
    // nothing new to persist, so its timer flushes and its shutdown
    // flush must all no-op — byte-identical files, same generation.
    EXPECT_EQ(dirBytes(dir), after_drain);
    std::filesystem::remove_all(dir);
}

TEST(DseService, OversizedRequestAnswersWithErrLineNotACrash)
{
    // Admission control surfaces as a per-request err line: a
    // network whose estimated warm state exceeds the registry's
    // whole byte budget is rejected, and the batch keeps going.
    service::ServiceOptions options;
    options.maxBytes = 64 * 1024;
    service::DseService dse(options);
    std::vector<std::string> responses = dse.handleBatch({
        "dse id=g net=googlenet device=690t budgets=2880",
        "dse id=a net=alexnet budgets=300",
    });
    ASSERT_EQ(responses.size(), 2u);
    EXPECT_TRUE(util::startsWith(responses[0], "err id=g "));
    EXPECT_TRUE(responses[0].find("registry budget") !=
                std::string::npos)
        << responses[0];
    EXPECT_EQ(responses[1],
              coldReference("dse id=a net=alexnet budgets=300"));
}

} // namespace
} // namespace mclp
