/**
 * @file
 * End-to-end proofs for the sharded serving front (tools/mclp_front.cc),
 * driven against the *real* binaries: each fixture forks an actual
 * mclp-front, which forks actual mclp-serve workers, and every
 * assertion runs over the wire. CMake points MCLP_TEST_BINARY_DIR at
 * the build tree so the test always drives the binaries it was built
 * with.
 *
 * What must hold, from the outside:
 *  - routing is deterministic by network identity (equal dims → the
 *    same shard, every time);
 *  - one connection's answers arrive in request order even when its
 *    lines fan out across shards;
 *  - `stats`/`cache-stats` aggregate all shards into one line with
 *    per-shard breakdowns, and `front-stats` reports the supervisor;
 *  - a malformed line answers exactly what a lone worker would say;
 *  - kill -9 on a shard answers the in-flight lines with
 *    `err ... msg=worker-died`, the shard respawns, and the respawned
 *    shard answers byte-identical to a cold run with zero replay;
 *  - sibling segment sharing: rows one shard flushed serve another
 *    shard's requests from the mmap tier (tier_sibling > 0);
 *  - SIGTERM drains the cascade and the front exits 0 — including
 *    after an earlier kill + respawn;
 *  - the TCP listener answers byte-identical to the Unix socket.
 */

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "core/dse_request.h"
#include "service/dse_codec.h"
#include "service/dse_service.h"
#include "util/net.h"
#include "util/record_file.h"
#include "util/string_utils.h"

#ifndef MCLP_TEST_BINARY_DIR
#error "CMake must define MCLP_TEST_BINARY_DIR (the build tree)"
#endif

namespace mclp {
namespace {

std::string
frontBinary()
{
    return std::string(MCLP_TEST_BINARY_DIR) + "/mclp-front";
}

std::string
socketPath(const char *tag)
{
    return util::strprintf("/tmp/mclp_front_%s_%d.sock", tag,
                           static_cast<int>(::getpid()));
}

std::string
cacheDir(const char *tag)
{
    std::string dir =
        util::strprintf("/tmp/mclp_front_%s_%d.cache", tag,
                        static_cast<int>(::getpid()));
    std::filesystem::remove_all(dir);
    return dir;
}

/** The reference answer: an independent cold run, wire-encoded. */
std::string
coldReference(const std::string &request_line)
{
    core::DseRequest request = service::decodeRequest(request_line);
    return service::encodeResponse(
        service::answerRequest(request, nullptr));
}

/** The shard the front routes @p request_line to — the same
 * network-identity hash, reproduced in-process. */
size_t
shardFor(const std::string &request_line, size_t workers)
{
    core::DseRequest request = service::decodeRequest(request_line);
    std::string sig =
        core::networkSignature(core::resolveNetwork(request));
    return util::fnv1aBytes(sig.data(), sig.size()) % workers;
}

/** An inline-layer request built from @p copies identical conv
 * layers: every copy shares dims, so all such nets build the same
 * frontier rows, but each layer *count* is a distinct network
 * identity — distinct signatures spread over shards while the cache
 * records stay shareable. */
std::string
layeredRequest(const std::string &id, int copies)
{
    std::string layers;
    for (int i = 0; i < copies; ++i) {
        if (i)
            layers += ";";
        layers += util::strprintf("c%d:3:16:14:14:3:1", i);
    }
    return "dse id=" + id + " net=mini layers=" + layers +
           " budgets=200";
}

/** Blocking read of one newline-terminated line; false on EOF. */
bool
readLine(int fd, std::string *line)
{
    line->clear();
    char ch;
    while (true) {
        ssize_t got = ::read(fd, &ch, 1);
        if (got == 1) {
            if (ch == '\n')
                return true;
            line->push_back(ch);
        } else if (got == 0) {
            return false;
        } else if (errno != EINTR) {
            return false;
        }
    }
}

bool
sendLine(int fd, const std::string &text)
{
    std::string line = text + "\n";
    return util::writeAll(fd, line.data(), line.size());
}

/** Send one request on a fresh connection, return its answer. */
std::string
oneShot(const std::string &socket_path, const std::string &request)
{
    util::ScopedFd fd(util::connectUnix(socket_path));
    if (!fd.valid())
        return "<connect-failed>";
    if (!sendLine(fd.get(), request))
        return "<write-failed>";
    std::string reply;
    if (!readLine(fd.get(), &reply))
        return "<eof>";
    return reply;
}

/** `key=` integer scraped out of a stats-style line (first match);
 * -1 when absent. */
long long
statValue(const std::string &line, const std::string &key)
{
    size_t pos = line.find(" " + key + "=");
    if (pos == std::string::npos)
        return -1;
    return std::strtoll(line.c_str() + pos + key.size() + 2, nullptr,
                        10);
}

/**
 * A live mclp-front over real worker subprocesses. Construction
 * blocks until the front accepts connections; destruction SIGTERMs
 * it and asserts the drain cascade exits 0 (every test therefore
 * also proves clean shutdown for its scenario).
 */
class FrontProcess
{
  public:
    struct Config
    {
        int workers = 2;
        std::string cacheDir;           // empty = no cache
        int flushIntervalMs = 0;
        int tcpPort = -1;               // -1 = no TCP listener
        int respawnBackoffMs = 50;
        bool expectCleanExit = true;
    };

    FrontProcess(const char *tag, Config config)
        : config_(std::move(config)), socketPath_(socketPath(tag))
    {
        start();  // ASSERT_* needs a void function, not a ctor
    }

  private:
    void start()
    {
        std::filesystem::remove(socketPath_);
        std::vector<std::string> args = {
            frontBinary(),
            "--socket", socketPath_,
            "--workers", std::to_string(config_.workers),
            "--respawn-backoff-ms",
            std::to_string(config_.respawnBackoffMs),
        };
        if (!config_.cacheDir.empty()) {
            args.push_back("--cache-dir");
            args.push_back(config_.cacheDir);
        }
        if (config_.flushIntervalMs > 0) {
            args.push_back("--cache-flush-interval-ms");
            args.push_back(std::to_string(config_.flushIntervalMs));
        }
        if (config_.tcpPort >= 0) {
            args.push_back("--tcp-port");
            args.push_back(std::to_string(config_.tcpPort));
        }

        int err_pipe[2] = {-1, -1};
        if (config_.tcpPort >= 0)
            EXPECT_EQ(::pipe(err_pipe), 0);
        pid_ = ::fork();
        ASSERT_GE(pid_, 0);
        if (pid_ == 0) {
            if (err_pipe[1] >= 0) {
                ::dup2(err_pipe[1], 2);
                ::close(err_pipe[0]);
                ::close(err_pipe[1]);
            }
            std::vector<char *> argv;
            for (std::string &arg : args)
                argv.push_back(arg.data());
            argv.push_back(nullptr);
            ::execv(argv[0], argv.data());
            _exit(127);
        }
        if (err_pipe[1] >= 0)
            ::close(err_pipe[1]);

        // The front only starts listening after its workers are up;
        // poll the socket rather than guessing a sleep.
        int64_t deadline = util::monotonicMs() + 30000;
        while (true) {
            int fd = util::connectUnix(socketPath_);
            if (fd >= 0) {
                ::close(fd);
                break;
            }
            ASSERT_LT(util::monotonicMs(), deadline)
                << "front never started listening";
            ::usleep(20 * 1000);
        }

        if (err_pipe[0] >= 0) {
            // The ephemeral TCP port is announced on stderr.
            std::string line;
            while (readLine(err_pipe[0], &line)) {
                unsigned port = 0;
                if (std::sscanf(line.c_str(),
                                "mclp-front: tcp port %u",
                                &port) == 1) {
                    tcpPort_ = static_cast<int>(port);
                    break;
                }
            }
            ::close(err_pipe[0]);
            ASSERT_GT(tcpPort_, 0) << "tcp port never announced";
        }
    }

  public:
    ~FrontProcess()
    {
        if (pid_ > 0) {
            ::kill(pid_, SIGTERM);
            int status = 0;
            pid_t got;
            do {
                got = ::waitpid(pid_, &status, 0);
            } while (got < 0 && errno == EINTR);
            EXPECT_EQ(got, pid_);
            if (config_.expectCleanExit) {
                EXPECT_TRUE(WIFEXITED(status));
                if (WIFEXITED(status))
                    EXPECT_EQ(WEXITSTATUS(status), 0)
                        << "drain cascade was not clean";
            }
        }
        std::filesystem::remove(socketPath_);
        if (!config_.cacheDir.empty())
            std::filesystem::remove_all(config_.cacheDir);
    }

    /** The child is already reaped (e.g. by a `shutdown`-verb test):
     * the destructor must not wait on it again. */
    void markExited() { pid_ = -1; }

    const std::string &socket() const { return socketPath_; }
    std::string workerSocket(int w) const
    {
        return socketPath_ + ".w" + std::to_string(w);
    }
    int tcpPort() const { return tcpPort_; }
    pid_t pid() const { return pid_; }

  private:
    Config config_;
    std::string socketPath_;
    pid_t pid_ = -1;
    int tcpPort_ = -1;
};

TEST(Front, RoutingIsDeterministicByNetworkIdentity)
{
    FrontProcess front("route", {});
    // Three sends of one identity, plus an identity that hashes to
    // the other shard: warm sessions must never split across workers.
    std::string req_a, req_b;
    for (int copies = 1; copies <= 8; ++copies) {
        std::string req = layeredRequest("r", copies);
        if (req_a.empty() && shardFor(req, 2) == 0)
            req_a = req;
        if (req_b.empty() && shardFor(req, 2) == 1)
            req_b = req;
    }
    ASSERT_FALSE(req_a.empty()) << "no candidate routed to shard 0";
    ASSERT_FALSE(req_b.empty()) << "no candidate routed to shard 1";

    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(oneShot(front.socket(), req_a),
                  coldReference(req_a));
    EXPECT_EQ(oneShot(front.socket(), req_b), coldReference(req_b));

    // Workers stay directly reachable on SOCKET.wN; their private
    // session counts prove where the requests landed: all three
    // identical requests on shard 0's registry, the other identity
    // alone on shard 1's.
    std::string stats0 = oneShot(front.workerSocket(0), "stats");
    std::string stats1 = oneShot(front.workerSocket(1), "stats");
    EXPECT_EQ(statValue(stats0, "sessions"), 1) << stats0;
    EXPECT_EQ(statValue(stats0, "hits"), 2) << stats0;
    EXPECT_EQ(statValue(stats1, "sessions"), 1) << stats1;
    EXPECT_EQ(statValue(stats1, "hits"), 0) << stats1;
}

TEST(Front, PipelinedAnswersKeepRequestOrderAcrossShards)
{
    FrontProcess front("pipe", {});
    // One connection, six lines interleaving both shards. The shards
    // answer at their own pace; the front's reorder buffer must
    // deliver strictly in request order, each byte-identical to a
    // cold run.
    std::vector<std::string> requests;
    for (int copies = 1; copies <= 6; ++copies)
        requests.push_back(
            layeredRequest("p" + std::to_string(copies), copies));
    bool shard0 = false, shard1 = false;
    for (const std::string &req : requests) {
        (shardFor(req, 2) == 0 ? shard0 : shard1) = true;
    }
    ASSERT_TRUE(shard0 && shard1)
        << "candidates all hash to one shard; widen the range";

    util::ScopedFd fd(util::connectUnix(front.socket()));
    ASSERT_TRUE(fd.valid());
    std::string batch;
    for (const std::string &req : requests)
        batch += req + "\n";
    ASSERT_TRUE(util::writeAll(fd.get(), batch.data(), batch.size()));
    ::shutdown(fd.get(), SHUT_WR);
    for (const std::string &req : requests) {
        std::string reply;
        ASSERT_TRUE(readLine(fd.get(), &reply))
            << "missing answer for " << req;
        EXPECT_EQ(reply, coldReference(req));
    }
}

TEST(Front, StatsAggregateAcrossShardsWithBreakdown)
{
    FrontProcess front("stats", {2, cacheDir("stats")});
    EXPECT_EQ(oneShot(front.socket(), layeredRequest("s", 1)),
              coldReference(layeredRequest("s", 1)));

    std::string stats = oneShot(front.socket(), "stats");
    EXPECT_EQ(stats.rfind("ok stats shards=2 ", 0), 0u) << stats;
    EXPECT_NE(stats.find(" | shard0: ok stats "), std::string::npos)
        << stats;
    EXPECT_NE(stats.find(" | shard1: ok stats "), std::string::npos)
        << stats;
    EXPECT_EQ(statValue(stats, "sessions"), 1) << stats;
    // The new sibling counter is part of the stats line shape.
    EXPECT_GE(statValue(stats, "row_sibling_hits"), 0) << stats;

    std::string cache = oneShot(front.socket(), "cache-stats");
    EXPECT_EQ(cache.rfind("ok cache-stats shards=2 enabled=1", 0), 0u)
        << cache;
    for (const char *key :
         {"tier_process", "tier_mmap", "tier_disk", "tier_sibling",
          "tier_cold", "sibling_dirs", "sibling_segments",
          "sibling_row_hits", "sibling_trace_hits"})
        EXPECT_GE(statValue(cache, key), 0)
            << "missing " << key << " in: " << cache;
    // Both workers were launched with the other's shard dir.
    EXPECT_EQ(statValue(cache, "sibling_dirs"), 2) << cache;

    std::string fs = oneShot(front.socket(), "front-stats");
    EXPECT_EQ(fs.rfind("ok front-stats workers=2 draining=0 "
                       "restarts=0 shard0=up:", 0), 0u) << fs;
    EXPECT_NE(fs.find(" shard1=up:"), std::string::npos) << fs;
}

TEST(Front, MalformedLineAnswersExactlyLikeALoneWorker)
{
    FrontProcess front("mal", {});
    // Undecodable lines route by raw bytes; whichever shard gets one
    // must answer the very line a single mclp-serve would.
    service::DseService lone{service::ServiceOptions{}};
    for (const char *bad :
         {"bogus verb", "dse id=x net=no-such-net budgets=100",
          "dse id=", "dse"}) {
        EXPECT_EQ(oneShot(front.socket(), bad), lone.handleLine(bad))
            << "for line: " << bad;
    }
}

TEST(Front, KilledWorkerAnswersPendingRespawnsAndStaysWarm)
{
    std::string dir = cacheDir("kill");
    FrontProcess front("kill", {2, dir, /*flushIntervalMs=*/25});
    std::string req = layeredRequest("k1", 1);
    size_t target = shardFor(req, 2);

    // Warm the target shard's cache and wait for the background
    // flush to publish it: a SIGKILLed worker flushes nothing, so
    // the post-respawn warmth below can only come from what was
    // already persisted.
    EXPECT_EQ(oneShot(front.socket(), req), coldReference(req));
    int64_t publish_deadline = util::monotonicMs() + 30000;
    while (true) {
        std::string cache = oneShot(front.socket(), "cache-stats");
        if (statValue(cache, "flushes") > 0 &&
            statValue(cache, "segment_entries") > 0)
            break;
        ASSERT_LT(util::monotonicMs(), publish_deadline)
            << "background flush never published a segment";
        ::usleep(25 * 1000);
    }

    util::ScopedFd fd(util::connectUnix(front.socket()));
    ASSERT_TRUE(fd.valid());
    std::string fs;
    ASSERT_TRUE(sendLine(fd.get(), "front-stats"));
    ASSERT_TRUE(readLine(fd.get(), &fs));
    // shardN=up:PID:...
    std::string token =
        util::strprintf("shard%zu=up:", target);
    size_t pos = fs.find(token);
    ASSERT_NE(pos, std::string::npos) << fs;
    pid_t victim = static_cast<pid_t>(
        std::strtol(fs.c_str() + pos + token.size(), nullptr, 10));
    ASSERT_GT(victim, 0) << fs;

    // SIGSTOP first: the two lines are forwarded but never answered,
    // so the SIGKILL catches them in flight deterministically.
    ASSERT_EQ(::kill(victim, SIGSTOP), 0);
    ASSERT_TRUE(sendLine(fd.get(), layeredRequest("k2", 1)));
    ASSERT_TRUE(sendLine(fd.get(), layeredRequest("k3", 1)));
    ::usleep(300 * 1000);
    ASSERT_EQ(::kill(victim, SIGKILL), 0);

    std::string reply;
    ASSERT_TRUE(readLine(fd.get(), &reply));
    EXPECT_EQ(reply, "err id=k2 msg=worker-died");
    ASSERT_TRUE(readLine(fd.get(), &reply));
    EXPECT_EQ(reply, "err id=k3 msg=worker-died");

    // Same connection: wait out the respawn via front-stats.
    int64_t deadline = util::monotonicMs() + 30000;
    while (true) {
        ASSERT_TRUE(sendLine(fd.get(), "front-stats"));
        ASSERT_TRUE(readLine(fd.get(), &fs));
        if (fs.find(token) != std::string::npos &&
            statValue(fs, "restarts") == 1)
            break;
        ASSERT_LT(util::monotonicMs(), deadline)
            << "shard never respawned: " << fs;
        ::usleep(30 * 1000);
    }

    // The respawned shard answers byte-identical to a cold run, on
    // the connection that lived through the whole failure.
    std::string warm = layeredRequest("k4", 1);
    ASSERT_EQ(shardFor(warm, 2), target);
    ASSERT_TRUE(sendLine(fd.get(), warm));
    ASSERT_TRUE(readLine(fd.get(), &reply));
    EXPECT_EQ(reply, coldReference(warm));

    // ... and it restarted cache-warm: the row its predecessor
    // flushed came back from a persisted tier, not a rebuild.
    std::string cache = oneShot(front.socket(), "cache-stats");
    EXPECT_GT(statValue(cache, "rows_loaded") +
                  statValue(cache, "segment_row_hits") +
                  statValue(cache, "sibling_row_hits"),
              0)
        << cache;
}

TEST(Front, SiblingSegmentsServeRowsAcrossShards)
{
    // The acceptance pin for cross-shard sharing: shard A builds and
    // publishes rows (background flush), then shard B answers a
    // different network with the *same layer dims* — its rows must
    // come from A's mmap'd segment, visible as tier_sibling > 0.
    std::string dir = cacheDir("sib");
    FrontProcess front("sib", {2, dir, /*flushIntervalMs=*/25});

    std::string first, second;
    for (int copies = 1; copies <= 8 && second.empty(); ++copies) {
        std::string req =
            layeredRequest("s" + std::to_string(copies), copies);
        if (first.empty()) {
            first = req;
        } else if (shardFor(req, 2) != shardFor(first, 2)) {
            second = req;
        }
    }
    ASSERT_FALSE(second.empty())
        << "candidates all hash to one shard; widen the range";

    EXPECT_EQ(oneShot(front.socket(), first), coldReference(first));

    // Wait until the first shard's rows are published in a segment.
    int64_t deadline = util::monotonicMs() + 30000;
    while (true) {
        std::string cache = oneShot(front.socket(), "cache-stats");
        if (statValue(cache, "flushes") > 0 &&
            statValue(cache, "segment_entries") > 0)
            break;
        ASSERT_LT(util::monotonicMs(), deadline)
            << "background flush never published a segment";
        ::usleep(25 * 1000);
    }

    EXPECT_EQ(oneShot(front.socket(), second), coldReference(second));

    std::string cache = oneShot(front.socket(), "cache-stats");
    EXPECT_GT(statValue(cache, "tier_sibling"), 0) << cache;
    EXPECT_GT(statValue(cache, "sibling_row_hits"), 0) << cache;
    // Attach is demand-driven: only shards that actually missed into
    // a sibling hold a mapping, so >= 1, not necessarily all K.
    EXPECT_GE(statValue(cache, "sibling_segments"), 1) << cache;
}

TEST(Front, TcpListenerAnswersIdenticallyToUnixSocket)
{
    FrontProcess::Config config;
    config.tcpPort = 0;  // ephemeral, announced on stderr
    FrontProcess front("tcp", config);
    ASSERT_GT(front.tcpPort(), 0);

    util::ScopedFd fd(
        util::connectTcp(static_cast<uint16_t>(front.tcpPort())));
    ASSERT_TRUE(fd.valid());
    // Pipelined conversation over TCP: same ordering, same bytes.
    for (int copies = 1; copies <= 3; ++copies) {
        std::string req =
            layeredRequest("t" + std::to_string(copies), copies);
        ASSERT_TRUE(sendLine(fd.get(), req));
        std::string reply;
        ASSERT_TRUE(readLine(fd.get(), &reply));
        EXPECT_EQ(reply, coldReference(req));
    }
    std::string fs;
    ASSERT_TRUE(sendLine(fd.get(), "front-stats"));
    ASSERT_TRUE(readLine(fd.get(), &fs));
    EXPECT_EQ(fs.rfind("ok front-stats workers=2 ", 0), 0u) << fs;
}

TEST(Front, ShutdownVerbDrainsTheCascade)
{
    // `shutdown` over the wire must behave exactly like SIGTERM: the
    // front answers, drains, SIGTERMs the workers, and exits 0. The
    // fixture's destructor would also SIGTERM it — sending the verb
    // first proves the wire path alone completes the drain.
    FrontProcess front("shut", {});
    EXPECT_EQ(oneShot(front.socket(), "shutdown"), "ok shutdown");
    int status = 0;
    pid_t got;
    do {
        got = ::waitpid(front.pid(), &status, 0);
    } while (got < 0 && errno == EINTR);
    EXPECT_EQ(got, front.pid());
    EXPECT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0);
    // Workers are gone too: their sockets no longer accept.
    EXPECT_LT(util::connectUnix(front.workerSocket(0)), 0);
    front.markExited();
}

} // namespace
} // namespace mclp
