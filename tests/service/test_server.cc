/**
 * @file
 * Failure-path proofs for the event-driven serving loop
 * (src/service/server.h): pipelining before EOF, concurrent-client
 * parity against cold runs, overload shedding (`err ... msg=busy`),
 * request-line caps (`err ... msg=line-too-long`), slow-loris and
 * idle timeouts, torn lines at close, mid-response disconnects, and
 * graceful drain while work is in flight. The transport must be
 * invisible in results: every surviving response is byte-identical
 * to a cold run of the same request, no matter what the other
 * clients were doing.
 */

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <string>
#include <thread>
#include <vector>

#include "service/dse_codec.h"
#include "service/dse_service.h"
#include "service/server.h"
#include "util/net.h"
#include "util/string_utils.h"

namespace mclp {
namespace {

/** The reference answer: an independent cold run, wire-encoded. */
std::string
coldReference(const std::string &request_line)
{
    core::DseRequest request = service::decodeRequest(request_line);
    return service::encodeResponse(
        service::answerRequest(request, nullptr));
}

std::string
socketPath(const char *tag)
{
    return util::strprintf("/tmp/mclp_srv_%s_%d.sock", tag,
                           static_cast<int>(::getpid()));
}

/** Blocking read of one newline-terminated line; false on EOF. */
bool
readLine(int fd, std::string *line)
{
    line->clear();
    char ch;
    while (true) {
        ssize_t got = ::read(fd, &ch, 1);
        if (got == 1) {
            if (ch == '\n')
                return true;
            line->push_back(ch);
        } else if (got == 0) {
            return false;
        } else if (errno != EINTR) {
            return false;
        }
    }
}

/** Write a whole batch, half-close, slurp the reply. */
std::string
batchOverFd(int fd, const std::string &batch)
{
    EXPECT_TRUE(util::writeAll(fd, batch.data(), batch.size()));
    ::shutdown(fd, SHUT_WR);
    std::string reply;
    EXPECT_TRUE(util::readAll(fd, &reply));
    return reply;
}

/** Response lines, without the trailing empty element a final
 * newline leaves behind in util::split(). */
std::vector<std::string>
splitLines(const std::string &reply)
{
    std::vector<std::string> lines = util::split(reply, '\n');
    if (!lines.empty() && lines.back().empty())
        lines.pop_back();
    return lines;
}

const char *kCheap =
    "dse id=c net=mini layers=conv1:3:16:14:14:3:1 budgets=200";

TEST(Server, PipelinedAnswersArriveBeforeConnectionEof)
{
    // The old loop answered only at client EOF; the event loop must
    // answer each line as it completes, on a connection that stays
    // open — a request/response conversation, not a batch.
    service::DseService dse{service::ServiceOptions{}};
    service::Server::Options options;
    options.unixPath = socketPath("pipe");
    options.acceptLimit = 1;
    service::Server server(dse, options);
    ASSERT_TRUE(server.listening());
    std::thread run([&] { EXPECT_EQ(server.run(), 0); });

    util::ScopedFd fd(util::connectUnix(options.unixPath));
    ASSERT_TRUE(fd.valid());
    std::string line1 = std::string(kCheap) + "\n";
    ASSERT_TRUE(util::writeAll(fd.get(), line1.data(), line1.size()));
    std::string reply;
    ASSERT_TRUE(readLine(fd.get(), &reply)) << "no pipelined answer";
    EXPECT_EQ(reply, coldReference(kCheap));

    // A second round on the same still-open connection.
    std::string line2 = "dse id=c2 net=alexnet budgets=500\n";
    ASSERT_TRUE(util::writeAll(fd.get(), line2.data(), line2.size()));
    ASSERT_TRUE(readLine(fd.get(), &reply));
    EXPECT_EQ(reply, coldReference("dse id=c2 net=alexnet budgets=500"));
    fd.reset();
    run.join();
}

TEST(Server, ConcurrentInterleavedClientsMatchSerialAnswers)
{
    service::ServiceOptions service_options;
    service_options.threads = 4;
    service::DseService dse(service_options);
    service::Server::Options options;
    options.unixPath = socketPath("concurrent");
    options.acceptLimit = 4;
    options.workers = 4;
    service::Server server(dse, options);
    ASSERT_TRUE(server.listening());
    std::thread run([&] { EXPECT_EQ(server.run(), 0); });

    const std::vector<std::string> requests{
        "dse id=k0 net=alexnet budgets=500",
        "dse id=k1 net=alexnet budgets=500 mode=single",
        "dse id=k2 net=squeezenet device=690t budgets=1000",
        "dse id=k3 net=mini layers=conv1:3:16:14:14:3:1 budgets=200",
    };
    std::vector<std::string> replies(requests.size());
    std::vector<std::thread> clients;
    for (size_t i = 0; i < requests.size(); ++i) {
        clients.emplace_back([&, i] {
            util::ScopedFd fd(util::connectUnix(options.unixPath));
            ASSERT_TRUE(fd.valid());
            // Two lines per client, written separately with a yield
            // between them so the four conversations interleave.
            std::string first = requests[i] + "\n";
            ASSERT_TRUE(util::writeAll(fd.get(), first.data(),
                                       first.size()));
            std::this_thread::yield();
            replies[i] = batchOverFd(fd.get(), requests[i] + "\n");
        });
    }
    for (std::thread &client : clients)
        client.join();
    run.join();

    for (size_t i = 0; i < requests.size(); ++i) {
        std::vector<std::string> lines =
            splitLines(replies[i]);
        ASSERT_GE(lines.size(), 2u) << requests[i];
        // Both copies of the request answered identically, and
        // byte-identical to a serial cold run — no cross-client
        // bleed, no reordering.
        EXPECT_EQ(lines[0], coldReference(requests[i]));
        EXPECT_EQ(lines[1], coldReference(requests[i]));
    }
}

TEST(Server, FloodPastAdmissionLimitShedsErrBusyInOrder)
{
    service::DseService dse{service::ServiceOptions{}};
    service::Server::Options options;
    options.unixPath = socketPath("flood");
    options.acceptLimit = 1;
    options.workers = 1;
    options.maxInflight = 1;  // one admitted request at a time
    service::Server server(dse, options);
    ASSERT_TRUE(server.listening());
    std::thread run([&] { EXPECT_EQ(server.run(), 0); });

    // One write carries a slow request plus a flood behind it: every
    // flood line is parsed while the slow one still executes, so the
    // admission check sheds each deterministically.
    std::string heavy = "dse id=h net=squeezenet device=690t "
                        "budgets=500,1000,1500,2000,2880";
    std::string batch = heavy + "\n";
    for (int i = 0; i < 6; ++i)
        batch += util::strprintf("dse id=f%d net=alexnet budgets=500\n",
                                 i);
    util::ScopedFd fd(util::connectUnix(options.unixPath));
    ASSERT_TRUE(fd.valid());
    std::vector<std::string> lines =
        splitLines(batchOverFd(fd.get(), batch));
    fd.reset();
    run.join();

    ASSERT_EQ(lines.size(), 7u);
    // The admitted request still answers correctly — shedding is
    // load-dependent, the answer never is.
    EXPECT_EQ(lines[0], coldReference(heavy));
    for (int i = 0; i < 6; ++i)
        EXPECT_EQ(lines[i + 1],
                  util::strprintf("err id=f%d msg=busy", i));
    EXPECT_EQ(server.stats().shedBusy.load(), 6u);
}

TEST(Server, OverlongLineAnswersErrAndConnectionStaysUsable)
{
    service::DseService dse{service::ServiceOptions{}};
    service::Server::Options options;
    options.unixPath = socketPath("overlong");
    options.acceptLimit = 1;
    options.maxLineBytes = 256;
    service::Server server(dse, options);
    ASSERT_TRUE(server.listening());
    std::thread run([&] { EXPECT_EQ(server.run(), 0); });

    std::string batch = "dse id=big net=alexnet " +
                        std::string(4096, 'x') + "\n" +
                        std::string(kCheap) + "\n";
    util::ScopedFd fd(util::connectUnix(options.unixPath));
    ASSERT_TRUE(fd.valid());
    std::vector<std::string> lines =
        splitLines(batchOverFd(fd.get(), batch));
    fd.reset();
    run.join();

    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(lines[0], "err id=big msg=line-too-long");
    EXPECT_EQ(lines[1], coldReference(kCheap));
    EXPECT_EQ(server.stats().shedOversize.load(), 1u);
}

TEST(Server, TornLineAtCloseIsStillAnswered)
{
    // A final line without its newline has always been answered by
    // the batch protocol; through the event loop it must still be.
    service::DseService dse{service::ServiceOptions{}};
    service::Server::Options options;
    options.unixPath = socketPath("torn");
    options.acceptLimit = 1;
    service::Server server(dse, options);
    ASSERT_TRUE(server.listening());
    std::thread run([&] { EXPECT_EQ(server.run(), 0); });

    util::ScopedFd fd(util::connectUnix(options.unixPath));
    ASSERT_TRUE(fd.valid());
    std::vector<std::string> lines = splitLines(batchOverFd(fd.get(), std::string(kCheap)));
    fd.reset();
    run.join();

    ASSERT_EQ(lines.size(), 1u);
    EXPECT_EQ(lines[0], coldReference(kCheap));
}

TEST(Server, SlowLorisTripsReadTimeoutWithoutHurtingOthers)
{
    service::DseService dse{service::ServiceOptions{}};
    service::Server::Options options;
    options.unixPath = socketPath("loris");
    options.acceptLimit = 2;
    options.readTimeoutMs = 80;
    service::Server server(dse, options);
    ASSERT_TRUE(server.listening());
    std::thread run([&] { EXPECT_EQ(server.run(), 0); });

    // The attacker drips a never-finished line one byte at a time;
    // the deadline anchors at the line's first byte, so the drip
    // cannot keep itself alive.
    util::ScopedFd loris(util::connectUnix(options.unixPath));
    ASSERT_TRUE(loris.valid());
    std::thread drip([&] {
        for (int i = 0; i < 40; ++i) {
            if (::send(loris.get(), "d", 1, MSG_NOSIGNAL) != 1)
                return;  // server already dropped us
            ::usleep(10 * 1000);
        }
    });

    // A well-behaved client on the same server is unaffected.
    util::ScopedFd good(util::connectUnix(options.unixPath));
    ASSERT_TRUE(good.valid());
    std::vector<std::string> lines = splitLines(batchOverFd(good.get(), std::string(kCheap) + "\n"));
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_EQ(lines[0], coldReference(kCheap));

    drip.join();
    // The attacker's socket reads EOF: the server hung up on it.
    std::string leftovers;
    EXPECT_TRUE(util::readAll(loris.get(), &leftovers));
    EXPECT_TRUE(leftovers.empty());
    loris.reset();
    good.reset();
    run.join();
    EXPECT_GE(server.stats().timeouts.load(), 1u);
}

TEST(Server, IdleConnectionsAreReapedByTheIdleTimeout)
{
    service::DseService dse{service::ServiceOptions{}};
    service::Server::Options options;
    options.unixPath = socketPath("idle");
    options.acceptLimit = 1;
    options.idleTimeoutMs = 50;
    service::Server server(dse, options);
    ASSERT_TRUE(server.listening());
    std::thread run([&] { EXPECT_EQ(server.run(), 0); });

    util::ScopedFd fd(util::connectUnix(options.unixPath));
    ASSERT_TRUE(fd.valid());
    std::string nothing;
    // Blocking read returns EOF once the server reaps the idler.
    EXPECT_TRUE(util::readAll(fd.get(), &nothing));
    EXPECT_TRUE(nothing.empty());
    fd.reset();
    run.join();
    EXPECT_EQ(server.stats().timeouts.load(), 1u);
}

TEST(Server, DrainWhileInFlightFinishesWorkThenExitsZero)
{
    service::DseService dse{service::ServiceOptions{}};
    service::Server::Options options;
    options.unixPath = socketPath("drain");
    service::Server server(dse, options);  // no accept limit
    ASSERT_TRUE(server.listening());
    std::thread run([&] { EXPECT_EQ(server.run(), 0); });

    // The shutdown verb rides *behind* real work on an open
    // connection: the admitted request must finish and flush before
    // the server exits.
    util::ScopedFd fd(util::connectUnix(options.unixPath));
    ASSERT_TRUE(fd.valid());
    std::string batch = std::string(kCheap) + "\nshutdown\n";
    ASSERT_TRUE(util::writeAll(fd.get(), batch.data(), batch.size()));
    std::string first, second, eof_probe;
    ASSERT_TRUE(readLine(fd.get(), &first));
    ASSERT_TRUE(readLine(fd.get(), &second));
    EXPECT_EQ(first, coldReference(kCheap));
    EXPECT_EQ(second, "ok shutdown");
    // Then the server hangs up (we never half-closed) and run()
    // returns 0: graceful drain, not abandonment.
    EXPECT_FALSE(readLine(fd.get(), &eof_probe));
    fd.reset();
    run.join();
}

TEST(Server, RequestDrainStopsAnAcceptUnlimitedServer)
{
    service::DseService dse{service::ServiceOptions{}};
    service::Server::Options options;
    options.unixPath = socketPath("reqdrain");
    service::Server server(dse, options);
    ASSERT_TRUE(server.listening());
    std::thread run([&] { EXPECT_EQ(server.run(), 0); });
    server.requestDrain();
    run.join();
}

TEST(Server, TcpLoopbackServesWithByteParity)
{
    service::DseService dse{service::ServiceOptions{}};
    service::Server::Options options;
    options.tcpPort = 0;  // ephemeral
    options.acceptLimit = 1;
    service::Server server(dse, options);
    ASSERT_TRUE(server.listening());
    ASSERT_GT(server.tcpPort(), 0);
    std::thread run([&] { EXPECT_EQ(server.run(), 0); });

    util::ScopedFd fd(util::connectTcp(server.tcpPort()));
    ASSERT_TRUE(fd.valid());
    std::string batch = std::string(kCheap) + "\n" +
                        "dse id=t2 net=alexnet budgets=500\n";
    std::vector<std::string> lines =
        splitLines(batchOverFd(fd.get(), batch));
    fd.reset();
    run.join();

    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(lines[0], coldReference(kCheap));
    EXPECT_EQ(lines[1],
              coldReference("dse id=t2 net=alexnet budgets=500"));
}

TEST(Server, StatsVerbReportsTransportCountersWhileAttached)
{
    service::DseService dse{service::ServiceOptions{}};
    service::Server::Options options;
    options.unixPath = socketPath("stats");
    options.acceptLimit = 1;
    service::Server server(dse, options);
    ASSERT_TRUE(server.listening());
    std::thread run([&] { EXPECT_EQ(server.run(), 0); });

    util::ScopedFd fd(util::connectUnix(options.unixPath));
    ASSERT_TRUE(fd.valid());
    std::string batch = std::string(kCheap) + "\nstats\n";
    std::vector<std::string> lines =
        splitLines(batchOverFd(fd.get(), batch));
    fd.reset();
    run.join();

    ASSERT_EQ(lines.size(), 2u);
    EXPECT_TRUE(util::startsWith(lines[1], "ok stats sessions=1 "))
        << lines[1];
    EXPECT_NE(lines[1].find(" session_rates=mini:0:1"),
              std::string::npos)
        << lines[1];
    EXPECT_NE(lines[1].find(" conns_accepted=1 conns_open=1 "),
              std::string::npos)
        << lines[1];
    EXPECT_NE(lines[1].find(" shed_busy=0 shed_oversize=0 timeouts=0"),
              std::string::npos)
        << lines[1];
}

TEST(Server, MidResponseDisconnectCostsOnlyThatConnection)
{
    service::DseService dse{service::ServiceOptions{}};
    service::Server::Options options;
    options.unixPath = socketPath("vanish");
    options.acceptLimit = 2;
    service::Server server(dse, options);
    ASSERT_TRUE(server.listening());
    std::thread run([&] { EXPECT_EQ(server.run(), 0); });

    // First client requests a big ladder response, then vanishes
    // without reading a byte of it: the server's write path sees
    // EPIPE/ECONNRESET (never SIGPIPE) and treats it as a
    // per-connection failure.
    {
        util::ScopedFd fd(util::connectUnix(options.unixPath));
        ASSERT_TRUE(fd.valid());
        std::string heavy = "dse id=v net=squeezenet device=690t "
                            "budgets=500,1000,1500,2000,2500,2880\n";
        ASSERT_TRUE(util::writeAll(fd.get(), heavy.data(),
                                   heavy.size()));
        ::shutdown(fd.get(), SHUT_WR);
        fd.reset();  // gone before the response is written
    }

    // The server is still alive and still correct.
    util::ScopedFd fd(util::connectUnix(options.unixPath));
    ASSERT_TRUE(fd.valid());
    std::vector<std::string> lines = splitLines(batchOverFd(fd.get(), std::string(kCheap) + "\n"));
    fd.reset();
    run.join();
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_EQ(lines[0], coldReference(kCheap));
}

} // namespace
} // namespace mclp
