/**
 * @file
 * Whole-network functional chaining: feed each layer's tiled-engine
 * output into the next layer, exactly as the Multi-CLP epochs do via
 * off-chip memory, and compare the final maps against the chained
 * golden reference. Fixed point must match bit-for-bit end to end.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "nn/reference.h"
#include "sim/clp_engine.h"
#include "test_helpers.h"

namespace mclp {
namespace {

/** A 3-layer chain whose shapes connect (output -> next input). */
nn::Network
chainNet()
{
    // L0: 2->3 maps, 8x8 out (input 10x10), K=3.
    // L1: 3->4 maps, 6x6 out (input 8x8), K=3.
    // L2: 4->2 maps, 6x6 out (input 6x6), K=1.
    return nn::Network("chain",
                       {test::layer(2, 3, 8, 8, 3, 1, "c0"),
                        test::layer(3, 4, 6, 6, 3, 1, "c1"),
                        test::layer(4, 2, 6, 6, 1, 1, "c2")});
}

/** Per-layer CLP shapes/tilings exercising awkward fits. */
struct Binding
{
    model::ClpShape shape;
    model::Tiling tiling;
};

std::vector<Binding>
chainBindings()
{
    return {{{2, 2}, {3, 5}}, {{2, 3}, {6, 4}}, {{3, 2}, {2, 6}}};
}

TEST(FunctionalChain, FixedPointBitExactThroughThreeLayers)
{
    nn::Network net = chainNet();
    auto bindings = chainBindings();

    auto ref_data = nn::makeRandomInput<nn::Fixed16>(net.layer(0), 77);
    auto eng_data = ref_data;
    for (size_t li = 0; li < net.numLayers(); ++li) {
        const nn::ConvLayer &layer = net.layer(li);
        auto weights =
            nn::makeRandomWeights<nn::Fixed16>(layer, 88 + li);
        auto ref_out = nn::referenceConv(layer, ref_data, weights);
        auto eng_out = sim::runLayerFunctional(
            layer, bindings[li].shape, bindings[li].tiling, eng_data,
            weights);
        ASSERT_EQ(ref_out.size(), eng_out.output.size());
        for (size_t i = 0; i < ref_out.raw().size(); ++i) {
            ASSERT_EQ(ref_out.raw()[i].bits,
                      eng_out.output.raw()[i].bits)
                << "layer " << layer.name << " output " << i;
        }
        ref_data = std::move(ref_out);
        eng_data = std::move(eng_out.output);
    }
}

TEST(FunctionalChain, FloatStaysWithinToleranceThroughChain)
{
    nn::Network net = chainNet();
    auto bindings = chainBindings();

    auto ref_data = nn::makeRandomInput<float>(net.layer(0), 99);
    auto eng_data = ref_data;
    for (size_t li = 0; li < net.numLayers(); ++li) {
        const nn::ConvLayer &layer = net.layer(li);
        auto weights = nn::makeRandomWeights<float>(layer, 111 + li);
        auto ref_out = nn::referenceConv(layer, ref_data, weights);
        auto eng_out = sim::runLayerFunctional(
            layer, bindings[li].shape, bindings[li].tiling, eng_data,
            weights);
        for (size_t i = 0; i < ref_out.raw().size(); ++i) {
            float e = ref_out.raw()[i];
            float g = eng_out.output.raw()[i];
            ASSERT_NEAR(g, e, 1e-3f * (1.0f + std::abs(e)))
                << "layer " << layer.name << " output " << i;
        }
        ref_data = std::move(ref_out);
        eng_data = std::move(eng_out.output);
    }
}

TEST(FunctionalChain, MacCountAccumulatesAcrossLayers)
{
    nn::Network net = chainNet();
    auto bindings = chainBindings();
    auto data = nn::makeRandomInput<float>(net.layer(0), 5);
    int64_t macs = 0;
    for (size_t li = 0; li < net.numLayers(); ++li) {
        const nn::ConvLayer &layer = net.layer(li);
        auto weights = nn::makeRandomWeights<float>(layer, 6 + li);
        auto out = sim::runLayerFunctional(layer, bindings[li].shape,
                                           bindings[li].tiling, data,
                                           weights);
        macs += out.macsPerformed;
        data = std::move(out.output);
    }
    EXPECT_EQ(macs, net.totalMacs());
}

} // namespace
} // namespace mclp
