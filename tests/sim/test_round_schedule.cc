#include <gtest/gtest.h>

#include "model/bandwidth_model.h"
#include "model/cycle_model.h"
#include "sim/round_schedule.h"
#include "test_helpers.h"
#include "util/logging.h"
#include "util/math.h"

namespace mclp {
namespace {

struct RoundCase
{
    int64_t n, m, r, c, k, s, tn, tm, tr, tc;
};

class RoundScheduleSweep : public ::testing::TestWithParam<RoundCase>
{
};

TEST_P(RoundScheduleSweep, AgreesWithAnalyticalModels)
{
    RoundCase p = GetParam();
    nn::ConvLayer l = test::layer(p.n, p.m, p.r, p.c, p.k, p.s);
    model::ClpShape shape{p.tn, p.tm};
    model::Tiling tiling{p.tr, p.tc};
    auto rounds = sim::roundsForLayer(l, shape, tiling);

    // Round count: rsteps * csteps * msteps * nsteps.
    int64_t expected_rounds = util::ceilDiv(l.r, tiling.tr) *
                              util::ceilDiv(l.c, tiling.tc) *
                              util::ceilDiv(l.m, shape.tm) *
                              util::ceilDiv(l.n, shape.tn);
    EXPECT_EQ(static_cast<int64_t>(rounds.size()), expected_rounds);

    // Compute cycles match the cycle model exactly.
    EXPECT_EQ(sim::totalComputeCycles(rounds),
              model::layerCycles(l, shape));

    // Transfer totals match the bandwidth model exactly.
    auto traffic = model::layerTraffic(l, shape, tiling);
    EXPECT_EQ(sim::totalTransferWords(rounds), traffic.totalWords());

    // Every (r,c,m) group stores exactly once, on its last n step.
    int64_t nsteps = util::ceilDiv(l.n, shape.tn);
    int64_t stores = 0;
    int64_t group_starts = 0;
    for (size_t i = 0; i < rounds.size(); ++i) {
        EXPECT_GT(rounds[i].computeCycles, 0);
        EXPECT_GT(rounds[i].loadWords, 0);
        if (rounds[i].groupStart)
            ++group_starts;
        if (rounds[i].storeWords > 0) {
            ++stores;
            // n is the innermost round dimension, so stores land on
            // the last n step of each group.
            EXPECT_EQ(static_cast<int64_t>(i) % nsteps, nsteps - 1);
        }
    }
    EXPECT_EQ(stores, expected_rounds / nsteps);
    EXPECT_EQ(group_starts, expected_rounds / nsteps);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RoundScheduleSweep,
    ::testing::Values(RoundCase{3, 48, 55, 55, 11, 4, 7, 64, 8, 8},
                      RoundCase{48, 128, 27, 27, 5, 1, 8, 19, 14, 27},
                      RoundCase{256, 192, 13, 13, 3, 1, 2, 64, 13, 13},
                      RoundCase{7, 9, 11, 13, 3, 2, 2, 4, 3, 5},
                      RoundCase{5, 5, 5, 5, 1, 1, 5, 5, 5, 5},
                      RoundCase{64, 16, 56, 56, 1, 1, 9, 64, 28, 14}));

class RoundScheduleFuzz : public ::testing::TestWithParam<int>
{
};

TEST_P(RoundScheduleFuzz, RandomShapesAgreeWithModels)
{
    // Randomized cross-check of the round enumeration against the
    // closed-form models, over shapes the fixed cases above may miss.
    util::SplitMix64 rng(static_cast<uint64_t>(GetParam()));
    for (int trial = 0; trial < 20; ++trial) {
        int64_t n = rng.nextInt(1, 40);
        int64_t m = rng.nextInt(1, 40);
        int64_t r = rng.nextInt(1, 30);
        int64_t c = rng.nextInt(1, 30);
        int64_t k = 1 + 2 * rng.nextInt(0, 2);
        int64_t s = rng.nextInt(1, 3);
        nn::ConvLayer l = test::layer(n, m, r, c, k, s);
        model::ClpShape shape{rng.nextInt(1, 8), rng.nextInt(1, 16)};
        model::Tiling tiling{rng.nextInt(1, r), rng.nextInt(1, c)};

        auto rounds = sim::roundsForLayer(l, shape, tiling);
        EXPECT_EQ(sim::totalComputeCycles(rounds),
                  model::layerCycles(l, shape))
            << l.toString();
        EXPECT_EQ(sim::totalTransferWords(rounds),
                  model::layerTraffic(l, shape, tiling).totalWords())
            << l.toString();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundScheduleFuzz,
                         ::testing::Values(101, 202, 303));

TEST(RoundSchedule, FirstRoundStartsGroup)
{
    nn::ConvLayer l = test::layer(8, 8, 8, 8, 3, 1);
    auto rounds = sim::roundsForLayer(l, {4, 4}, {4, 4});
    ASSERT_FALSE(rounds.empty());
    EXPECT_TRUE(rounds.front().groupStart);
}

TEST(RoundSchedule, BoundaryTilesAreSmaller)
{
    // R=10 with Tr=8: the second row of tiles has rloops=2.
    nn::ConvLayer l = test::layer(4, 4, 10, 10, 3, 1);
    auto rounds = sim::roundsForLayer(l, {4, 4}, {8, 8});
    // 4 spatial tiles, msteps=nsteps=1 -> 4 rounds.
    ASSERT_EQ(rounds.size(), 4u);
    EXPECT_EQ(rounds[0].computeCycles, 9 * 8 * 8);
    EXPECT_EQ(rounds[1].computeCycles, 9 * 8 * 2);
    EXPECT_EQ(rounds[2].computeCycles, 9 * 2 * 8);
    EXPECT_EQ(rounds[3].computeCycles, 9 * 2 * 2);
    // Boundary loads shrink too.
    EXPECT_GT(rounds[0].loadWords, rounds[3].loadWords);
}

TEST(RoundSchedule, LayerIdxPropagated)
{
    nn::ConvLayer l = test::layer(2, 2, 4, 4, 1, 1);
    auto rounds = sim::roundsForLayer(l, {2, 2}, {4, 4}, 17);
    for (const auto &round : rounds)
        EXPECT_EQ(round.layerIdx, 17);
}

TEST(RoundSchedule, InvalidTilingRejected)
{
    nn::ConvLayer l = test::layer(2, 2, 4, 4, 1, 1);
    EXPECT_THROW(sim::roundsForLayer(l, {2, 2}, {0, 4}),
                 util::FatalError);
    EXPECT_THROW(sim::roundsForLayer(l, {2, 2}, {5, 4}),
                 util::FatalError);
}

} // namespace
} // namespace mclp
