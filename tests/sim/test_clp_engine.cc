#include <gtest/gtest.h>

#include <cmath>

#include "model/cycle_model.h"
#include "nn/reference.h"
#include "sim/clp_engine.h"
#include "test_helpers.h"
#include "util/logging.h"

namespace mclp {
namespace {

struct EngineCase
{
    int64_t n, m, r, c, k, s, tn, tm, tr, tc;
    int64_t g = 1;
};

class EngineSweep : public ::testing::TestWithParam<EngineCase>
{
};

TEST_P(EngineSweep, FloatMatchesReference)
{
    EngineCase p = GetParam();
    nn::ConvLayer l =
        test::groupedLayer(p.n, p.m, p.r, p.c, p.k, p.s, p.g);
    model::ClpShape shape{p.tn, p.tm};
    model::Tiling tiling{p.tr, p.tc};

    auto input = nn::makeRandomInput<float>(l, 100 + p.n);
    auto weights = nn::makeRandomWeights<float>(l, 200 + p.m);
    auto expected = nn::referenceConv(l, input, weights);
    auto got = sim::runLayerFunctional(l, shape, tiling, input, weights);

    ASSERT_EQ(got.output.size(), expected.size());
    for (size_t i = 0; i < expected.raw().size(); ++i) {
        float e = expected.raw()[i];
        float g = got.output.raw()[i];
        EXPECT_NEAR(g, e, 1e-3f * (1.0f + std::abs(e)))
            << "output index " << i;
    }

    // Timing bookkeeping matches the analytical model exactly.
    EXPECT_EQ(got.computeCycles, model::layerCycles(l, shape));
    EXPECT_EQ(got.macsPerformed, l.macs());
}

TEST_P(EngineSweep, FixedIsBitExactWithReference)
{
    EngineCase p = GetParam();
    nn::ConvLayer l =
        test::groupedLayer(p.n, p.m, p.r, p.c, p.k, p.s, p.g);
    model::ClpShape shape{p.tn, p.tm};
    model::Tiling tiling{p.tr, p.tc};

    auto input = nn::makeRandomInput<nn::Fixed16>(l, 300 + p.n);
    auto weights = nn::makeRandomWeights<nn::Fixed16>(l, 400 + p.m);
    auto expected = nn::referenceConv(l, input, weights);
    auto got = sim::runLayerFunctional(l, shape, tiling, input, weights);

    for (size_t i = 0; i < expected.raw().size(); ++i) {
        EXPECT_EQ(got.output.raw()[i].bits, expected.raw()[i].bits)
            << "output index " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, EngineSweep,
    ::testing::Values(
        // Perfect fits.
        EngineCase{4, 8, 8, 8, 3, 1, 4, 8, 8, 8},
        EngineCase{4, 8, 8, 8, 3, 1, 2, 4, 4, 4},
        // Tn/Tm larger than N/M (idle lanes must not corrupt data).
        EngineCase{3, 5, 6, 6, 3, 1, 8, 16, 6, 6},
        // Non-dividing Tn/Tm and tilings.
        EngineCase{7, 9, 11, 13, 3, 2, 2, 4, 3, 5},
        EngineCase{5, 12, 10, 10, 5, 1, 3, 5, 4, 7},
        // Stride > 1 with K > S.
        EngineCase{3, 6, 7, 7, 5, 2, 3, 6, 3, 3},
        // 1x1 kernels (SqueezeNet squeeze / GoogLeNet reducers).
        EngineCase{16, 12, 9, 9, 1, 1, 5, 7, 4, 9},
        // AlexNet layer 1a shrunk spatially, same N/M/K/S structure.
        EngineCase{3, 48, 13, 13, 11, 4, 3, 24, 8, 8},
        // Grouped: Tn/Tm straddle the 4-map group spans.
        EngineCase{8, 8, 6, 6, 3, 1, 3, 3, 4, 6, 2},
        // Grouped with asymmetric group sizes (2 in, 6 out per group).
        EngineCase{8, 24, 7, 7, 3, 1, 2, 4, 4, 5, 4},
        // Depthwise (G = N = M), awkward tiling and stride 2.
        EngineCase{6, 6, 5, 5, 3, 2, 2, 2, 3, 4, 6},
        // Depthwise pointwise-expanded (M = 2N, one input per group).
        EngineCase{5, 10, 6, 6, 3, 1, 4, 4, 6, 6, 5}));

TEST(ClpEngine, SingleElementLayer)
{
    nn::ConvLayer l = test::layer(1, 1, 1, 1, 1, 1);
    nn::Tensor3<float> input(1, 1, 1);
    input.at(0, 0, 0) = 3.0f;
    nn::Tensor3<float> weights(1, 1, 1);
    weights.at(0, 0, 0) = -2.0f;
    auto got = sim::runLayerFunctional(l, {1, 1}, {1, 1}, input, weights);
    EXPECT_FLOAT_EQ(got.output.at(0, 0, 0), -6.0f);
    EXPECT_EQ(got.computeCycles, 1);
    EXPECT_EQ(got.rounds, 1);
}

TEST(ClpEngine, RoundsMatchSchedule)
{
    nn::ConvLayer l = test::layer(7, 9, 11, 13, 3, 2);
    auto input = nn::makeRandomInput<float>(l, 1);
    auto weights = nn::makeRandomWeights<float>(l, 2);
    auto got = sim::runLayerFunctional(l, {2, 4}, {3, 5}, input, weights);
    // rsteps=4, csteps=3, msteps=3, nsteps=4.
    EXPECT_EQ(got.rounds, 4 * 3 * 3 * 4);
}

TEST(ClpEngine, ShapeMismatchRejected)
{
    nn::ConvLayer l = test::layer(2, 2, 4, 4, 3, 1);
    nn::Tensor3<float> bad_input(1, 6, 6);
    nn::Tensor3<float> weights(4, 3, 3);
    EXPECT_THROW(
        sim::runLayerFunctional(l, {1, 1}, {4, 4}, bad_input, weights),
        util::FatalError);
}

TEST(ClpEngine, InvalidTilingRejected)
{
    nn::ConvLayer l = test::layer(2, 2, 4, 4, 3, 1);
    auto input = nn::makeRandomInput<float>(l, 1);
    auto weights = nn::makeRandomWeights<float>(l, 2);
    EXPECT_THROW(
        sim::runLayerFunctional(l, {1, 1}, {5, 4}, input, weights),
        util::FatalError);
    EXPECT_THROW(
        sim::runLayerFunctional(l, {0, 1}, {4, 4}, input, weights),
        util::FatalError);
}

} // namespace
} // namespace mclp
