#include <gtest/gtest.h>

#include "core/paper_designs.h"
#include "model/bandwidth_model.h"
#include "model/cycle_model.h"
#include "model/metrics.h"
#include "nn/zoo.h"
#include "sim/system.h"
#include "test_helpers.h"

namespace mclp {
namespace {

fpga::ResourceBudget
unlimited(double mhz = 100.0)
{
    fpga::ResourceBudget b;
    b.dspSlices = 1 << 20;
    b.bram18k = 1 << 20;
    b.bandwidthBytesPerCycle = 0.0;
    b.frequencyMhz = mhz;
    return b;
}

TEST(System, UnconstrainedSingleClpMatchesModelExactly)
{
    // Section 6.4: simulated cycles equal the model up to pipeline
    // depth; our simulator matches exactly in the unconstrained case.
    nn::Network net = nn::makeAlexNet();
    auto design = core::paperAlexNetSingle485();
    sim::MultiClpSystem system(design, net, unlimited());
    auto result = system.simulateEpoch();
    EXPECT_DOUBLE_EQ(result.epochCycles, 2005892.0);
    EXPECT_NEAR(result.utilization, 0.741, 0.001);
    ASSERT_EQ(result.clps.size(), 1u);
    EXPECT_DOUBLE_EQ(result.clps[0].stallCycles, 0.0);
}

TEST(System, UnconstrainedMultiClpMatchesModelExactly)
{
    nn::Network net = nn::makeAlexNet();
    for (auto design : {core::paperAlexNetMulti485(),
                        core::paperAlexNetMulti690()}) {
        auto metrics = model::evaluateDesign(design, net, unlimited());
        sim::MultiClpSystem system(design, net, unlimited());
        auto result = system.simulateEpoch();
        EXPECT_DOUBLE_EQ(result.epochCycles,
                         static_cast<double>(metrics.epochCycles));
        EXPECT_NEAR(result.utilization, metrics.utilization, 1e-9);
        for (size_t ci = 0; ci < result.clps.size(); ++ci) {
            EXPECT_DOUBLE_EQ(
                result.clps[ci].finishCycle,
                static_cast<double>(metrics.clpCycles[ci]));
        }
    }
}

TEST(System, TransferBytesMatchTrafficModel)
{
    nn::Network net = nn::makeAlexNet();
    auto design = core::paperAlexNetMulti485();
    sim::MultiClpSystem system(design, net, unlimited());
    auto result = system.simulateEpoch();
    int64_t expected = 0;
    for (const auto &clp : design.clps)
        expected += model::clpTrafficBytes(clp, net, design.dataType);
    EXPECT_EQ(result.totalTransferBytes, expected);
}

TEST(System, AmpleBandwidthMatchesUnconstrained)
{
    nn::Network net = nn::makeAlexNet();
    auto design = core::paperAlexNetMulti485();
    fpga::ResourceBudget b = unlimited();
    b.bandwidthBytesPerCycle = 1e6;
    sim::MultiClpSystem system(design, net, b);
    auto result = system.simulateEpoch();
    // Pipeline fill (first load) is the only deviation and is tiny.
    EXPECT_NEAR(result.epochCycles, 1557504.0, 200.0);
}

TEST(System, StarvedBandwidthStallsClps)
{
    nn::Network net = nn::makeAlexNet();
    auto design = core::paperAlexNetMulti485();
    fpga::ResourceBudget b = unlimited();
    b.bandwidthBytesPerCycle = 2.0;
    sim::MultiClpSystem system(design, net, b);
    auto result = system.simulateEpoch();
    EXPECT_GT(result.epochCycles, 1557504.0);
    // Transfer time lower-bounds the epoch: total bytes / bandwidth.
    double transfer_bound =
        static_cast<double>(result.totalTransferBytes) /
        b.bandwidthBytesPerCycle;
    EXPECT_GE(result.epochCycles, transfer_bound - 1.0);
    bool any_stall = false;
    for (const auto &clp : result.clps)
        any_stall |= clp.stallCycles > 1.0;
    EXPECT_TRUE(any_stall);
    // Consumed bandwidth cannot exceed the cap.
    EXPECT_LE(result.avgBandwidthBytesPerCycle(),
              b.bandwidthBytesPerCycle + 1e-6);
}

TEST(System, EpochMonotoneInBandwidth)
{
    nn::Network net = nn::makeAlexNet();
    auto design = core::paperAlexNetMulti485();
    double prev = 1e18;
    for (double bw : {1.0, 2.0, 4.0, 8.0, 16.0, 64.0}) {
        fpga::ResourceBudget b = unlimited();
        b.bandwidthBytesPerCycle = bw;
        sim::MultiClpSystem system(design, net, b);
        auto result = system.simulateEpoch();
        EXPECT_LE(result.epochCycles, prev + 1e-6) << "bw=" << bw;
        prev = result.epochCycles;
    }
}

TEST(System, ModelBandwidthEstimateTracksSimulation)
{
    // The analytical bandwidth-bound model (max of compute and
    // transfer) should track the simulated epoch within ~15% in the
    // heavily-starved regime.
    nn::Network net = nn::makeAlexNet();
    auto design = core::paperAlexNetSingle485();
    fpga::ResourceBudget b = unlimited();
    b.bandwidthBytesPerCycle = 1.5;
    auto metrics = model::evaluateDesign(design, net, b);
    sim::MultiClpSystem system(design, net, b);
    auto result = system.simulateEpoch();
    double ratio = result.epochCycles /
                   static_cast<double>(metrics.epochCycles);
    EXPECT_GT(ratio, 0.85);
    EXPECT_LT(ratio, 1.15);
}

TEST(System, FixedPointDesignSimulates)
{
    nn::Network net = nn::makeSqueezeNet();
    auto design = core::paperSqueezeNetMulti690();
    sim::MultiClpSystem system(design, net, unlimited(170.0));
    auto result = system.simulateEpoch();
    EXPECT_DOUBLE_EQ(result.epochCycles, 144648.0);
    EXPECT_NEAR(result.utilization, 0.93, 0.01);
}

TEST(System, LayerSpansCoverTheEpochInOrder)
{
    nn::Network net = nn::makeAlexNet();
    auto design = core::paperAlexNetMulti485();
    sim::MultiClpSystem system(design, net, unlimited());
    auto result = system.simulateEpoch();
    for (size_t ci = 0; ci < result.clps.size(); ++ci) {
        const auto &stats = result.clps[ci];
        ASSERT_EQ(stats.layerSpans.size(),
                  design.clps[ci].layers.size());
        double prev_start = -1.0;
        for (size_t li = 0; li < stats.layerSpans.size(); ++li) {
            const auto &span = stats.layerSpans[li];
            EXPECT_EQ(span.layerIdx,
                      static_cast<int64_t>(
                          design.clps[ci].layers[li].layerIdx));
            EXPECT_GT(span.startCycle, prev_start)
                << "layers execute in assignment order";
            EXPECT_GT(span.endCycle, span.startCycle);
            prev_start = span.startCycle;
        }
        EXPECT_LE(stats.layerSpans.back().endCycle,
                  stats.finishCycle + 1e-9);
    }
}

TEST(System, LayerSpanDurationsMatchModelWhenUnconstrained)
{
    nn::Network net = nn::makeAlexNet();
    auto design = core::paperAlexNetMulti690();
    sim::MultiClpSystem system(design, net, unlimited());
    auto result = system.simulateEpoch();
    for (size_t ci = 0; ci < result.clps.size(); ++ci) {
        for (size_t li = 0; li < result.clps[ci].layerSpans.size();
             ++li) {
            const auto &span = result.clps[ci].layerSpans[li];
            const auto &binding = design.clps[ci].layers[li];
            int64_t expected = model::layerCycles(
                net.layer(binding.layerIdx), design.clps[ci].shape);
            EXPECT_DOUBLE_EQ(span.endCycle - span.startCycle,
                             static_cast<double>(expected));
        }
    }
}

TEST(System, SmallDesignWithSharing)
{
    // Two tiny CLPs contending for one channel: the epoch must exceed
    // each CLP's isolated time but respect the combined transfer
    // bound.
    nn::Network net("pair", {test::layer(4, 8, 8, 8, 3, 1, "a"),
                             test::layer(8, 4, 8, 8, 3, 1, "b")});
    model::MultiClpDesign design;
    design.dataType = fpga::DataType::Float32;
    design.clps.push_back({{4, 8}, {{0, {8, 8}}}});
    design.clps.push_back({{8, 4}, {{1, {8, 8}}}});

    fpga::ResourceBudget b = unlimited();
    b.bandwidthBytesPerCycle = 4.0;
    sim::MultiClpSystem system(design, net, b);
    auto result = system.simulateEpoch();
    EXPECT_GT(result.epochCycles, 0.0);
    double transfer_bound =
        static_cast<double>(result.totalTransferBytes) /
        b.bandwidthBytesPerCycle;
    EXPECT_GE(result.epochCycles, transfer_bound - 1e-6);
}

} // namespace
} // namespace mclp
