#include <gtest/gtest.h>

#include <cstdlib>

#include "core/memory_optimizer.h"
#include "core/paper_designs.h"
#include "nn/zoo.h"
#include "sim/impl_estimate.h"

namespace mclp {
namespace {

TEST(ImplEstimate, ImplAlwaysExceedsModel)
{
    nn::Network net = nn::makeAlexNet();
    for (auto design : {core::paperAlexNetSingle485(),
                        core::paperAlexNetMulti485(),
                        core::paperAlexNetMulti690()}) {
        auto est = sim::estimateImplementation(design, net);
        EXPECT_GT(est.dspImpl, est.dspModel);
        EXPECT_GT(est.bramImpl, est.bramModel);
        for (const auto &clp : est.clps) {
            EXPECT_GT(clp.dspImpl, clp.dspModel);
            EXPECT_GE(clp.bramImpl, clp.bramModel);
        }
    }
}

TEST(ImplEstimate, FloatDspOverheadIsFiftyPerClp)
{
    // Table 6's per-CLP gaps are ~50 DSP slices for float designs.
    nn::Network net = nn::makeAlexNet();
    auto est = sim::estimateImplementation(core::paperAlexNetMulti485(),
                                           net);
    ASSERT_EQ(est.clps.size(), 4u);
    for (const auto &clp : est.clps)
        EXPECT_EQ(clp.dspImpl - clp.dspModel, 50);
    EXPECT_EQ(est.dspImpl, 2240 + 4 * 50);
}

TEST(ImplEstimate, Table6TotalsApproximated)
{
    // Table 6 impl totals: 2,309 DSP / 698 BRAM (485T Single-CLP) and
    // 2,443 DSP / 812 BRAM (485T Multi-CLP). The regression must land
    // within ~5%.
    nn::Network net = nn::makeAlexNet();
    auto single =
        sim::estimateImplementation(core::paperAlexNetSingle485(), net);
    EXPECT_NEAR(static_cast<double>(single.dspImpl), 2309.0, 2309 * 0.05);
    EXPECT_NEAR(static_cast<double>(single.bramImpl), 698.0, 698 * 0.05);
    auto multi =
        sim::estimateImplementation(core::paperAlexNetMulti485(), net);
    EXPECT_NEAR(static_cast<double>(multi.dspImpl), 2443.0, 2443 * 0.05);
    EXPECT_NEAR(static_cast<double>(multi.bramImpl), 812.0, 812 * 0.05);
}

TEST(ImplEstimate, Table8PowerApproximated)
{
    // Table 8: 6.6 W / 7.6 W / 10.2 W for the three AlexNet designs.
    nn::Network net = nn::makeAlexNet();
    EXPECT_NEAR(sim::estimateImplementation(
                    core::paperAlexNetSingle485(), net)
                    .powerWatts,
                6.6, 0.7);
    EXPECT_NEAR(sim::estimateImplementation(
                    core::paperAlexNetMulti485(), net)
                    .powerWatts,
                7.6, 0.8);
    EXPECT_NEAR(sim::estimateImplementation(
                    core::paperAlexNetMulti690(), net)
                    .powerWatts,
                10.2, 1.0);
}

TEST(ImplEstimate, Table9FixedDesignApproximated)
{
    // Table 9: SqueezeNet fixed on the 690T: 3,494 DSP, 1,108 BRAM,
    // 161,411 FF, 133,854 LUT, 7.2 W. The paper reports the frontier
    // point using 635 model BRAMs (Table 7), so select the matching
    // point from the tradeoff curve before estimating.
    nn::Network net = nn::makeSqueezeNet();
    auto partition = core::partitionFromDesign(
        core::paperSqueezeNetMulti690(), net);
    core::MemoryOptimizer memory(net, fpga::DataType::Fixed16);
    auto curve = memory.tradeoffCurve(partition);
    ASSERT_FALSE(curve.empty());
    const core::TradeoffPoint *pick = &curve.front();
    for (const auto &point : curve) {
        if (std::llabs(point.totalBram - 635) <
            std::llabs(pick->totalBram - 635)) {
            pick = &point;
        }
    }
    auto est = sim::estimateImplementation(pick->design, net);
    EXPECT_NEAR(static_cast<double>(est.dspImpl), 3494.0, 3494 * 0.05);
    EXPECT_NEAR(static_cast<double>(est.bramImpl), 1108.0, 1108 * 0.10);
    EXPECT_NEAR(static_cast<double>(est.flipFlops), 161411.0,
                161411 * 0.10);
    EXPECT_NEAR(static_cast<double>(est.luts), 133854.0, 133854 * 0.10);
    EXPECT_NEAR(est.powerWatts, 7.2, 0.8);
}

TEST(ImplEstimate, FfLutScaleWithDsp)
{
    nn::Network net = nn::makeAlexNet();
    auto single =
        sim::estimateImplementation(core::paperAlexNetSingle485(), net);
    auto multi =
        sim::estimateImplementation(core::paperAlexNetMulti690(), net);
    EXPECT_GT(multi.flipFlops, single.flipFlops);
    EXPECT_GT(multi.luts, single.luts);
    EXPECT_GT(single.flipFlops, single.luts);
}

} // namespace
} // namespace mclp
