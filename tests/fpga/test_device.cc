#include <gtest/gtest.h>

#include "fpga/device.h"
#include "util/logging.h"

namespace mclp {
namespace {

TEST(Device, PaperBudgets)
{
    // Section 6.1: 80% budgets are 2,240 DSP / 1,648 BRAM on the 485T
    // and 2,880 DSP / 2,352 BRAM on the 690T.
    fpga::Device v485 = fpga::virtex7_485t();
    EXPECT_EQ(v485.dspBudget(), 2240);
    EXPECT_EQ(v485.bramBudget(), 1648);
    fpga::Device v690 = fpga::virtex7_690t();
    EXPECT_EQ(v690.dspBudget(), 2880);
    EXPECT_EQ(v690.bramBudget(), 2352);
}

TEST(Device, UltrascaleCapacities)
{
    // Figure 7's dashed lines: VU9P and VU11P DSP capacities, plus
    // the wider parts the catalog projects beyond the paper.
    EXPECT_EQ(fpga::ultrascale_vu9p().dspSlices, 6840);
    EXPECT_EQ(fpga::ultrascale_vu11p().dspSlices, 9216);
    EXPECT_EQ(fpga::ultrascale_vu13p().dspSlices, 12288);
    EXPECT_EQ(fpga::ultrascale_vu13p().bram18k, 5376);
    EXPECT_EQ(fpga::alveo_u280().dspSlices, 9024);
    EXPECT_EQ(fpga::alveo_u280().bram18k, 4032);
}

TEST(Device, CatalogAndLookup)
{
    EXPECT_EQ(fpga::deviceCatalog().size(), 6u);
    EXPECT_EQ(fpga::deviceByName("485t").name, "Virtex-7 485T");
    EXPECT_EQ(fpga::deviceByName("690T").name, "Virtex-7 690T");
    EXPECT_EQ(fpga::deviceByName("vu9p").dspSlices, 6840);
    EXPECT_EQ(fpga::deviceByName("vu13p").name,
              "Virtex UltraScale+ VU13P");
    EXPECT_EQ(fpga::deviceByName("u280").name, "Alveo U280");
    EXPECT_EQ(fpga::deviceByName("XCU280").dspSlices, 9024);
    EXPECT_THROW(fpga::deviceByName("arria10"), util::FatalError);
}

TEST(ResourceBudget, StandardBudget)
{
    fpga::ResourceBudget budget =
        fpga::standardBudget(fpga::virtex7_485t(), 100.0);
    EXPECT_EQ(budget.dspSlices, 2240);
    EXPECT_EQ(budget.bram18k, 1648);
    EXPECT_FALSE(budget.bandwidthLimited());
    EXPECT_DOUBLE_EQ(budget.frequencyMhz, 100.0);
}

TEST(ResourceBudget, BandwidthConversionRoundTrips)
{
    fpga::ResourceBudget budget =
        fpga::standardBudget(fpga::virtex7_690t(), 100.0);
    budget.setBandwidthGbps(1.49);
    EXPECT_TRUE(budget.bandwidthLimited());
    EXPECT_NEAR(budget.bandwidthGbps(), 1.49, 1e-12);
    // 1.49 GB/s at 100 MHz = 14.9 bytes/cycle.
    EXPECT_NEAR(budget.bandwidthBytesPerCycle, 14.9, 1e-12);
}

TEST(ResourceBudget, ValidationRejectsNonsense)
{
    fpga::ResourceBudget budget;
    budget.dspSlices = 0;
    budget.bram18k = 100;
    EXPECT_THROW(budget.validate(), util::FatalError);
    budget.dspSlices = 100;
    budget.bram18k = 0;
    EXPECT_THROW(budget.validate(), util::FatalError);
    budget.bram18k = 100;
    budget.frequencyMhz = 0.0;
    EXPECT_THROW(budget.validate(), util::FatalError);
}

} // namespace
} // namespace mclp
