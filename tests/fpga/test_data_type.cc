#include <gtest/gtest.h>

#include "fpga/data_type.h"
#include "util/logging.h"

namespace mclp {
namespace {

TEST(DataType, WordBytes)
{
    EXPECT_EQ(fpga::wordBytes(fpga::DataType::Float32), 4);
    EXPECT_EQ(fpga::wordBytes(fpga::DataType::Fixed16), 2);
}

TEST(DataType, DspPerMacMatchesPaper)
{
    // Section 4.2: float multiplier = 2 DSP, adder = 3 (5 per MAC);
    // one DSP slice provides a fixed-point multiplier and adder.
    EXPECT_EQ(fpga::dspPerMac(fpga::DataType::Float32), 5);
    EXPECT_EQ(fpga::dspPerMac(fpga::DataType::Fixed16), 1);
}

TEST(DataType, BankPairPackingOnlyForFixed)
{
    EXPECT_FALSE(fpga::packsBankPairs(fpga::DataType::Float32));
    EXPECT_TRUE(fpga::packsBankPairs(fpga::DataType::Fixed16));
}

TEST(DataType, Names)
{
    EXPECT_EQ(fpga::dataTypeName(fpga::DataType::Float32), "float");
    EXPECT_EQ(fpga::dataTypeName(fpga::DataType::Fixed16), "fixed");
}

TEST(DataType, ByName)
{
    EXPECT_EQ(fpga::dataTypeByName("float"), fpga::DataType::Float32);
    EXPECT_EQ(fpga::dataTypeByName("fp32"), fpga::DataType::Float32);
    EXPECT_EQ(fpga::dataTypeByName("fixed16"), fpga::DataType::Fixed16);
    EXPECT_EQ(fpga::dataTypeByName("int16"), fpga::DataType::Fixed16);
    EXPECT_THROW(fpga::dataTypeByName("bfloat16"), util::FatalError);
}

} // namespace
} // namespace mclp
