#include <gtest/gtest.h>

#include "core/paper_designs.h"
#include "model/dsp_model.h"
#include "util/logging.h"

namespace mclp {
namespace {

TEST(DspModel, FloatCostsFivePerMac)
{
    EXPECT_EQ(model::clpDsp({7, 64}, fpga::DataType::Float32), 2240);
    EXPECT_EQ(model::clpDsp({9, 64}, fpga::DataType::Float32), 2880);
    EXPECT_EQ(model::clpDsp({1, 1}, fpga::DataType::Float32), 5);
}

TEST(DspModel, FixedCostsOnePerMac)
{
    EXPECT_EQ(model::clpDsp({32, 68}, fpga::DataType::Fixed16), 2176);
    EXPECT_EQ(model::clpDsp({32, 87}, fpga::DataType::Fixed16), 2784);
}

TEST(DspModel, MacBudget)
{
    EXPECT_EQ(model::macBudget(2240, fpga::DataType::Float32), 448);
    EXPECT_EQ(model::macBudget(2880, fpga::DataType::Float32), 576);
    EXPECT_EQ(model::macBudget(2240, fpga::DataType::Fixed16), 2240);
    EXPECT_EQ(model::macBudget(2243, fpga::DataType::Float32), 448);
    EXPECT_THROW(model::macBudget(0, fpga::DataType::Float32),
                 util::FatalError);
}

TEST(DspModel, PaperMultiClpDesignsUseFullBudget)
{
    // Section 6.3: the Multi-CLP designs use exactly the same number
    // of arithmetic units as the Single-CLP (448 on 485T, 576 on
    // 690T), spread across CLPs.
    auto m485 = core::paperAlexNetMulti485();
    EXPECT_EQ(m485.totalMacUnits(), 448);
    EXPECT_EQ(model::designDsp(m485), 2240);
    auto m690 = core::paperAlexNetMulti690();
    EXPECT_EQ(m690.totalMacUnits(), 576);
    EXPECT_EQ(model::designDsp(m690), 2880);
}

TEST(DspModel, PaperSqueezeNetDesignsWithinBudget)
{
    // Table 5: 2,240 and 2,880 DSP for the Multi-CLP fixed designs.
    EXPECT_EQ(model::designDsp(core::paperSqueezeNetMulti485()), 2240);
    EXPECT_EQ(model::designDsp(core::paperSqueezeNetMulti690()), 2880);
    EXPECT_EQ(model::designDsp(core::paperSqueezeNetSingle485()), 2176);
    EXPECT_EQ(model::designDsp(core::paperSqueezeNetSingle690()), 2784);
}

} // namespace
} // namespace mclp
