#include <gtest/gtest.h>

#include "model/clp_config.h"
#include "nn/zoo.h"
#include "test_helpers.h"
#include "util/logging.h"

namespace mclp {
namespace {

TEST(ClpConfig, ShapeMacUnits)
{
    model::ClpShape shape{7, 64};
    EXPECT_EQ(shape.macUnits(), 448);
}

TEST(MultiClpDesign, ValidDesignPasses)
{
    nn::Network net = nn::makeAlexNet();
    auto design = test::coverAll(net, 7, 64);
    EXPECT_NO_THROW(design.validate(net));
    EXPECT_TRUE(design.isSingleClp());
    EXPECT_EQ(design.totalMacUnits(), 448);
}

TEST(MultiClpDesign, EmptyDesignRejected)
{
    nn::Network net = nn::makeAlexNet();
    model::MultiClpDesign design;
    EXPECT_THROW(design.validate(net), util::FatalError);
}

TEST(MultiClpDesign, MissingLayerRejected)
{
    nn::Network net = nn::makeAlexNet();
    auto design = test::coverAll(net, 7, 64);
    design.clps[0].layers.pop_back();
    EXPECT_THROW(design.validate(net), util::FatalError);
}

TEST(MultiClpDesign, DoubleAssignmentRejected)
{
    nn::Network net = nn::makeAlexNet();
    auto design = test::coverAll(net, 7, 64);
    design.clps[0].layers.push_back(design.clps[0].layers.front());
    EXPECT_THROW(design.validate(net), util::FatalError);
}

TEST(MultiClpDesign, BadTilingRejected)
{
    nn::Network net = nn::makeAlexNet();
    auto design = test::coverAll(net, 7, 64);
    design.clps[0].layers[0].tiling = {0, 13};
    EXPECT_THROW(design.validate(net), util::FatalError);
    design.clps[0].layers[0].tiling = {56, 13};  // Tr > R
    EXPECT_THROW(design.validate(net), util::FatalError);
}

TEST(MultiClpDesign, BadShapeRejected)
{
    nn::Network net = nn::makeAlexNet();
    auto design = test::coverAll(net, 7, 64);
    design.clps[0].shape.tn = 0;
    EXPECT_THROW(design.validate(net), util::FatalError);
}

TEST(MultiClpDesign, OutOfRangeLayerRejected)
{
    nn::Network net = nn::makeAlexNet();
    auto design = test::coverAll(net, 7, 64);
    design.clps[0].layers[0].layerIdx = 99;
    EXPECT_THROW(design.validate(net), util::FatalError);
}

TEST(MultiClpDesign, EmptyClpRejected)
{
    nn::Network net = nn::makeAlexNet();
    auto design = test::coverAll(net, 7, 64);
    model::ClpConfig empty;
    empty.shape = {1, 1};
    design.clps.push_back(empty);
    EXPECT_THROW(design.validate(net), util::FatalError);
}

TEST(MultiClpDesign, ToStringListsClpsAndTilings)
{
    nn::Network net = nn::makeAlexNet();
    auto design = test::coverAll(net, 7, 64);
    std::string s = design.toString(net);
    EXPECT_NE(s.find("CLP0: Tn=7 Tm=64"), std::string::npos);
    EXPECT_NE(s.find("conv1a(Tr=55,Tc=55)"), std::string::npos);
}

} // namespace
} // namespace mclp
