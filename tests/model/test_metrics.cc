#include <gtest/gtest.h>

#include "core/paper_designs.h"
#include "fpga/device.h"
#include "model/metrics.h"
#include "nn/zoo.h"
#include "test_helpers.h"

namespace mclp {
namespace {

fpga::ResourceBudget
budget485()
{
    return fpga::standardBudget(fpga::virtex7_485t(), 100.0);
}

fpga::ResourceBudget
budget690()
{
    return fpga::standardBudget(fpga::virtex7_690t(), 100.0);
}

TEST(Metrics, AlexNetSingle485MatchesTable1)
{
    // Table 1: 485T float Single-CLP utilization 74.1%.
    nn::Network net = nn::makeAlexNet();
    auto metrics = model::evaluateDesign(core::paperAlexNetSingle485(),
                                         net, budget485());
    EXPECT_EQ(metrics.epochCycles, 2005892);
    EXPECT_EQ(metrics.macUnits, 448);
    EXPECT_EQ(metrics.dspSlices, 2240);
    EXPECT_NEAR(metrics.utilization, 0.741, 0.001);
    EXPECT_FALSE(metrics.bandwidthBound);
    // ~49.9 img/s and ~66 GFlop/s at 100 MHz, unconstrained.
    EXPECT_NEAR(metrics.imagesPerSec(100.0), 49.86, 0.05);
    EXPECT_NEAR(metrics.gflops(net, 100.0), 66.4, 0.2);
}

TEST(Metrics, AlexNetSingle690MatchesTable1)
{
    // Table 1: 690T float Single-CLP utilization 65.4%.
    nn::Network net = nn::makeAlexNet();
    auto metrics = model::evaluateDesign(core::paperAlexNetSingle690(),
                                         net, budget690());
    EXPECT_EQ(metrics.epochCycles, 1768724);
    EXPECT_NEAR(metrics.utilization, 0.653, 0.002);
}

TEST(Metrics, AlexNetMulti485MatchesTable1)
{
    // Table 1: 485T float Multi-CLP utilization 95.4%; epoch is the
    // max CLP time, 1,558k cycles (Table 2c).
    nn::Network net = nn::makeAlexNet();
    auto metrics = model::evaluateDesign(core::paperAlexNetMulti485(),
                                         net, budget485());
    EXPECT_EQ(metrics.epochCycles, 1557504);
    ASSERT_EQ(metrics.clpCycles.size(), 4u);
    EXPECT_EQ(metrics.clpCycles[0], 584064 + 876096);
    EXPECT_EQ(metrics.clpCycles[1], 1557504);
    EXPECT_EQ(metrics.clpCycles[2], 1464100);
    EXPECT_EQ(metrics.clpCycles[3], 1530900);
    EXPECT_NEAR(metrics.utilization, 0.954, 0.001);
}

TEST(Metrics, AlexNetMulti690MatchesTable1)
{
    // Table 1: 690T float Multi-CLP utilization 99.0%; epoch 1,168k.
    nn::Network net = nn::makeAlexNet();
    auto metrics = model::evaluateDesign(core::paperAlexNetMulti690(),
                                         net, budget690());
    EXPECT_EQ(metrics.epochCycles, 1168128);
    EXPECT_NEAR(metrics.utilization, 0.99, 0.001);
}

TEST(Metrics, MultiClpSpeedupMatchesAbstract)
{
    // 690T float: 1,769k / 1,168k = 1.51x from equal arithmetic units.
    nn::Network net = nn::makeAlexNet();
    auto single = model::evaluateDesign(core::paperAlexNetSingle690(),
                                        net, budget690());
    auto multi = model::evaluateDesign(core::paperAlexNetMulti690(), net,
                                       budget690());
    double speedup = static_cast<double>(single.epochCycles) /
                     static_cast<double>(multi.epochCycles);
    EXPECT_NEAR(speedup, 1.51, 0.02);
    EXPECT_EQ(single.macUnits, multi.macUnits);
}

TEST(Metrics, FitsBudget)
{
    nn::Network net = nn::makeAlexNet();
    EXPECT_TRUE(model::fitsBudget(core::paperAlexNetSingle485(), net,
                                  budget485()));
    EXPECT_TRUE(model::fitsBudget(core::paperAlexNetMulti485(), net,
                                  budget485()));
    fpga::ResourceBudget tiny = budget485();
    tiny.dspSlices = 100;
    EXPECT_FALSE(model::fitsBudget(core::paperAlexNetSingle485(), net,
                                   tiny));
    fpga::ResourceBudget no_bram = budget485();
    no_bram.bram18k = 10;
    EXPECT_FALSE(model::fitsBudget(core::paperAlexNetSingle485(), net,
                                   no_bram));
}

TEST(Metrics, BandwidthSharingSlowsDesignDown)
{
    nn::Network net = nn::makeAlexNet();
    auto design = core::paperAlexNetMulti485();
    fpga::ResourceBudget starved = budget485();
    starved.bandwidthBytesPerCycle = 1.0;  // 0.1 GB/s at 100 MHz
    auto metrics = model::evaluateDesign(design, net, starved);
    EXPECT_TRUE(metrics.bandwidthBound);
    EXPECT_GT(metrics.epochCycles, 1557504);
    EXPECT_LT(metrics.utilization, 0.954);
}

TEST(Metrics, AmpleBandwidthIsNotBound)
{
    nn::Network net = nn::makeAlexNet();
    auto design = core::paperAlexNetMulti485();
    fpga::ResourceBudget ample = budget485();
    ample.bandwidthBytesPerCycle = 1e9;
    auto metrics = model::evaluateDesign(design, net, ample);
    EXPECT_FALSE(metrics.bandwidthBound);
    EXPECT_EQ(metrics.epochCycles, 1557504);
}

TEST(Metrics, RequiredBandwidthIsSufficient)
{
    nn::Network net = nn::makeAlexNet();
    auto design = core::paperAlexNetMulti485();
    fpga::ResourceBudget budget = budget485();
    double need =
        model::requiredBandwidthBytesPerCycle(design, net, budget);
    ASSERT_GT(need, 0.0);
    // Granting the reported requirement must stay within the 2% slack.
    fpga::ResourceBudget granted = budget;
    granted.bandwidthBytesPerCycle = need;
    auto at_need = model::evaluateDesign(design, net, granted);
    EXPECT_LE(static_cast<double>(at_need.epochCycles),
              1.02 * 1557504.0 + 1.0);
    // Table 3 reports ~1.4 GB/s-scale requirements for these designs;
    // sanity-check the order of magnitude (bytes/cycle at 100 MHz:
    // 1 GB/s = 10 B/cy).
    EXPECT_GT(need, 2.0);
    EXPECT_LT(need, 60.0);
}

TEST(Metrics, RequiredBandwidthMonotoneInSlack)
{
    nn::Network net = nn::makeAlexNet();
    auto design = core::paperAlexNetMulti485();
    fpga::ResourceBudget budget = budget485();
    double tight =
        model::requiredBandwidthBytesPerCycle(design, net, budget, 1.0);
    double loose =
        model::requiredBandwidthBytesPerCycle(design, net, budget, 1.10);
    EXPECT_GE(tight, loose);
}

TEST(Metrics, LayerFitReportDiagnosesMismatch)
{
    // On the 690T Single-CLP (9x64), AlexNet's conv1 halves are the
    // worst-fitting layers: N=3 busies 3/9 of each dot product and
    // M=48 busies 48/64 of the units — 25% combined.
    nn::Network net = nn::makeAlexNet();
    auto fits = model::layerFitReport(core::paperAlexNetSingle690(),
                                      net);
    ASSERT_EQ(fits.size(), net.numLayers());
    EXPECT_NEAR(fits[0].utilization, (3.0 / 9.0) * (48.0 / 64.0), 1e-9);
    EXPECT_TRUE(net.layer(fits[0].layerIdx).name == "conv1a" ||
                net.layer(fits[0].layerIdx).name == "conv1b");
    for (size_t i = 1; i < fits.size(); ++i)
        EXPECT_GE(fits[i].utilization, fits[i - 1].utilization);
    // The Multi-CLP design fixes the worst fit.
    auto multi_fits =
        model::layerFitReport(core::paperAlexNetMulti690(), net);
    EXPECT_GT(multi_fits[0].utilization, 0.9);
}

TEST(Metrics, SqueezeNetFixedUtilizationGap)
{
    // Table 1 (690T fixed): Single-CLP 42.0% vs Multi-CLP 93.1%. Our
    // retiled paper configurations must show the same gap (cycles are
    // tiling-independent).
    nn::Network net = nn::makeSqueezeNet();
    fpga::ResourceBudget budget =
        fpga::standardBudget(fpga::virtex7_690t(), 170.0);
    auto single = model::evaluateDesign(core::paperSqueezeNetSingle690(),
                                        net, budget);
    auto multi = model::evaluateDesign(core::paperSqueezeNetMulti690(),
                                       net, budget);
    EXPECT_NEAR(single.utilization, 0.42, 0.02);
    EXPECT_NEAR(multi.utilization, 0.93, 0.02);
}

} // namespace
} // namespace mclp
