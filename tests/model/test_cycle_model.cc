#include <gtest/gtest.h>

#include "model/cycle_model.h"
#include "model/dsp_model.h"
#include "nn/zoo.h"
#include "test_helpers.h"
#include "util/logging.h"
#include "util/math.h"

namespace mclp {
namespace {

TEST(CycleModel, FormulaOnSimpleLayer)
{
    nn::ConvLayer l = test::layer(10, 20, 8, 8, 3, 1);
    // ceil(10/4)=3, ceil(20/8)=3: 8*8*3*3*9 = 5184.
    EXPECT_EQ(model::layerCycles(l, {4, 8}), 5184);
    // Perfect fit: 8*8*1*1*9.
    EXPECT_EQ(model::layerCycles(l, {10, 20}), 576);
    // Oversized grid changes nothing.
    EXPECT_EQ(model::layerCycles(l, {16, 32}), 576);
}

TEST(CycleModel, GroupedFormulaScalesByGroups)
{
    // 4 groups of 8-in/16-out maps on a 4x8 grid: each group takes
    // ceil(8/4)*ceil(16/8) = 4 tile rounds of R*C*K^2 cycles, and the
    // groups run back to back.
    nn::ConvLayer l = test::groupedLayer(32, 64, 8, 8, 3, 1, 4);
    EXPECT_EQ(model::layerCycles(l, {4, 8}),
              4 * 8 * 8 * 2 * 2 * 9);
    // A grid sized for one whole group finishes in G rounds.
    EXPECT_EQ(model::layerCycles(l, {8, 16}), 4 * 8 * 8 * 9);
    // An oversized grid cannot merge groups: still G rounds, so the
    // grouped layer can never beat G * R*C*K^2.
    EXPECT_EQ(model::layerCycles(l, {32, 64}), 4 * 8 * 8 * 9);
}

TEST(CycleModel, DepthwiseCyclesIndependentOfGrid)
{
    // Depthwise: every group is 1x1 maps, so any grid runs it in
    // G * R*C*K^2 cycles — the shape that starves wide CLPs.
    nn::ConvLayer l = test::groupedLayer(96, 96, 14, 14, 3, 1, 96);
    EXPECT_EQ(model::layerCycles(l, {1, 1}), 96 * 14 * 14 * 9);
    EXPECT_EQ(model::layerCycles(l, {9, 64}), 96 * 14 * 14 * 9);
}

TEST(CycleModel, AlexNetSingleClp485MatchesTable2a)
{
    // Table 2(a): Tn=7, Tm=64 computes layer pairs in 732/510/338/
    // 256/170 kcycles, 2,006k total.
    nn::Network net = nn::makeAlexNet();
    model::ClpShape shape{7, 64};
    auto pair = [&](size_t i) {
        return model::layerCycles(net.layer(i), shape) +
               model::layerCycles(net.layer(i + 1), shape);
    };
    EXPECT_EQ(pair(0), 732050);
    EXPECT_EQ(pair(2), 510300);
    EXPECT_EQ(pair(4), 337662);
    EXPECT_EQ(pair(6), 255528);
    EXPECT_EQ(pair(8), 170352);
    int64_t total = 0;
    for (size_t i = 0; i < 10; ++i)
        total += model::layerCycles(net.layer(i), shape);
    EXPECT_EQ(total, 2005892);
}

TEST(CycleModel, AlexNetSingleClp690MatchesTable2b)
{
    // Table 2(b): Tn=9, Tm=64 -> 732/437/265/201/134 kcycles, 1,769k.
    nn::Network net = nn::makeAlexNet();
    model::ClpShape shape{9, 64};
    auto pair = [&](size_t i) {
        return model::layerCycles(net.layer(i), shape) +
               model::layerCycles(net.layer(i + 1), shape);
    };
    EXPECT_EQ(pair(0), 732050);
    EXPECT_EQ(pair(2), 437400);
    EXPECT_EQ(pair(4), 264654);
    EXPECT_EQ(pair(6), 200772);
    EXPECT_EQ(pair(8), 133848);
    int64_t total = 0;
    for (size_t i = 0; i < 10; ++i)
        total += model::layerCycles(net.layer(i), shape);
    EXPECT_EQ(total, 1768724);
}

TEST(CycleModel, AlexNetMultiClp485MatchesTable2c)
{
    // Table 2(c): per-CLP cycle counts 584+876 / 1,558 / 1,464 / 1,531
    // kcycles for CLP0..CLP3.
    nn::Network net = nn::makeAlexNet();
    // CLP0: Tn=2, Tm=64 on 5a/5b then 4a/4b.
    model::ClpShape clp0{2, 64};
    EXPECT_EQ(model::layerCycles(net.layer(8), clp0) +
                  model::layerCycles(net.layer(9), clp0),
              584064);
    EXPECT_EQ(model::layerCycles(net.layer(6), clp0) +
                  model::layerCycles(net.layer(7), clp0),
              876096);
    // CLP1: Tn=1, Tm=96 on 3a/3b.
    model::ClpShape clp1{1, 96};
    EXPECT_EQ(model::layerCycles(net.layer(4), clp1) +
                  model::layerCycles(net.layer(5), clp1),
              1557504);
    // CLP2: Tn=3, Tm=24 on 1a/1b.
    model::ClpShape clp2{3, 24};
    EXPECT_EQ(model::layerCycles(net.layer(0), clp2) +
                  model::layerCycles(net.layer(1), clp2),
              1464100);
    // CLP3: Tn=8, Tm=19 on 2a/2b.
    model::ClpShape clp3{8, 19};
    EXPECT_EQ(model::layerCycles(net.layer(2), clp3) +
                  model::layerCycles(net.layer(3), clp3),
              1530900);
}

TEST(CycleModel, AlexNetMultiClp690MatchesTable2d)
{
    nn::Network net = nn::makeAlexNet();
    // CLP0: Tn=1, Tm=64 on 5a/5b -> 1,168k.
    EXPECT_EQ(model::layerCycles(net.layer(8), {1, 64}) +
                  model::layerCycles(net.layer(9), {1, 64}),
              1168128);
    // CLP1: Tn=1, Tm=96 on 4a/4b -> 1,168k.
    EXPECT_EQ(model::layerCycles(net.layer(6), {1, 96}) +
                  model::layerCycles(net.layer(7), {1, 96}),
              1168128);
    // CLP2: Tn=2, Tm=64 on 3a/3b -> 1,168k.
    EXPECT_EQ(model::layerCycles(net.layer(4), {2, 64}) +
                  model::layerCycles(net.layer(5), {2, 64}),
              1168128);
    // CLP3/CLP4: Tn=1, Tm=48 on 1a (and 1b) -> 1,098k each.
    EXPECT_EQ(model::layerCycles(net.layer(0), {1, 48}), 1098075);
    EXPECT_EQ(model::layerCycles(net.layer(1), {1, 48}), 1098075);
    // CLP5: Tn=3, Tm=64 on 2a/2b -> 1,166k.
    EXPECT_EQ(model::layerCycles(net.layer(2), {3, 64}) +
                  model::layerCycles(net.layer(3), {3, 64}),
              1166400);
}

TEST(CycleModel, SqueezeNetMultiClp690SpotChecks)
{
    // Hand-derived from Table 4(d) while verifying the SqueezeNet
    // v1.1 layer table (see DESIGN.md).
    nn::Network net = nn::makeSqueezeNet();
    // CLP1: Tn=3, Tm=64 on layer 1 (conv1) -> 115k.
    EXPECT_EQ(model::layerCycles(net.layer(0), {3, 64}), 114921);
    // CLP0: Tn=8, Tm=16 on layers 2,6,3,5 -> 125k.
    int64_t clp0 = 0;
    for (size_t idx : {1u, 5u, 2u, 4u})
        clp0 += model::layerCycles(net.layer(idx), {8, 16});
    EXPECT_EQ(clp0, 125440);
    // CLP5: Tn=16, Tm=26 on layers 13,10 -> 141k.
    EXPECT_EQ(model::layerCycles(net.layer(12), {16, 26}) +
                  model::layerCycles(net.layer(9), {16, 26}),
              141120);
}

TEST(CycleModel, ClpComputeCyclesSumsLayers)
{
    nn::Network net = nn::makeAlexNet();
    model::ClpConfig clp;
    clp.shape = {7, 64};
    for (size_t i = 0; i < net.numLayers(); ++i)
        clp.layers.push_back({i, {net.layer(i).r, net.layer(i).c}});
    EXPECT_EQ(model::clpComputeCycles(clp, net), 2005892);
}

TEST(CycleModel, MinimumPossibleCycles)
{
    nn::Network net = nn::makeAlexNet();
    EXPECT_EQ(model::minimumPossibleCycles(net, 448),
              util::ceilDiv<int64_t>(665784864, 448));
    EXPECT_THROW(model::minimumPossibleCycles(net, 0), util::FatalError);
}

struct UtilCase
{
    int64_t n, m, tn, tm;
};

class UtilizationProperty : public ::testing::TestWithParam<UtilCase>
{
};

TEST_P(UtilizationProperty, BoundedAndConsistent)
{
    UtilCase p = GetParam();
    nn::ConvLayer l = test::layer(p.n, p.m, 13, 13, 3, 1);
    model::ClpShape shape{p.tn, p.tm};
    double util = model::layerUtilization(l, shape);
    EXPECT_GT(util, 0.0);
    EXPECT_LE(util, 1.0 + 1e-12);
    // Cycles can never beat work / units.
    int64_t cycles = model::layerCycles(l, shape);
    EXPECT_GE(cycles * shape.macUnits(), l.macs());
    // Perfect divisibility means perfect utilization.
    if (p.n % p.tn == 0 && p.m % p.tm == 0) {
        EXPECT_DOUBLE_EQ(util, 1.0);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, UtilizationProperty,
    ::testing::Values(UtilCase{3, 64, 9, 64}, UtilCase{64, 16, 9, 64},
                      UtilCase{48, 128, 8, 64}, UtilCase{256, 192, 2, 64},
                      UtilCase{192, 128, 1, 64}, UtilCase{7, 7, 7, 7},
                      UtilCase{100, 100, 3, 7},
                      UtilCase{512, 1000, 32, 87}));

TEST(CycleModel, SqueezeNetLayerOneUtilizationQuote)
{
    // Section 3.2: with Tn,Tm = 9,64 SqueezeNet layer 1 (N,M = 3,64)
    // utilizes 33.3% and layer 2 (N,M = 64,16) utilizes 22.2%.
    nn::Network net = nn::makeSqueezeNet();
    EXPECT_NEAR(model::layerUtilization(net.layer(0), {9, 64}), 1.0 / 3.0,
                1e-9);
    EXPECT_NEAR(model::layerUtilization(net.layer(1), {9, 64}), 2.0 / 9.0,
                1e-9);
}

} // namespace
} // namespace mclp
