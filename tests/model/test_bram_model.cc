#include <gtest/gtest.h>

#include "core/paper_designs.h"
#include "model/bram_model.h"
#include "nn/zoo.h"
#include "test_helpers.h"
#include "util/logging.h"

namespace mclp {
namespace {

TEST(BramModel, BankWordFormulas)
{
    nn::ConvLayer l = test::layer(3, 48, 55, 55, 11, 4);
    // Input tile for Tr=8, Tc=8: ((8-1)*4+11)^2 = 39*39.
    EXPECT_EQ(model::inputBankWords(l, {8, 8}), 39 * 39);
    EXPECT_EQ(model::outputBankWords({8, 8}), 64);
    EXPECT_EQ(model::weightBankWords(l), 121);
}

TEST(BramModel, BramsPerBankRules)
{
    // < 10 words: LUTRAM, free.
    EXPECT_EQ(model::bramsPerBank(9, false), 0);
    EXPECT_EQ(model::bramsPerBank(9, true), 0);
    EXPECT_EQ(model::bramsPerBank(1, false), 0);
    // <= 256 words: a single BRAM covers both double-buffer copies.
    EXPECT_EQ(model::bramsPerBank(10, false), 1);
    EXPECT_EQ(model::bramsPerBank(256, false), 1);
    // Larger banks: two copies of ceil(words/512).
    EXPECT_EQ(model::bramsPerBank(257, false), 2);
    EXPECT_EQ(model::bramsPerBank(512, false), 2);
    EXPECT_EQ(model::bramsPerBank(513, false), 4);
    EXPECT_EQ(model::bramsPerBank(1521, false), 6);
    // Accumulation banks need both ports: at least 2 BRAMs.
    EXPECT_EQ(model::bramsPerBank(10, true), 2);
    EXPECT_EQ(model::bramsPerBank(256, true), 2);
    EXPECT_EQ(model::bramsPerBank(378, true), 2);
    EXPECT_EQ(model::bramsPerBank(513, true), 4);
    EXPECT_THROW(model::bramsPerBank(0, false), util::PanicError);
}

TEST(BramModel, EffectiveBanksHalvedForFixed)
{
    EXPECT_EQ(model::effectiveBanks(7, fpga::DataType::Float32), 7);
    EXPECT_EQ(model::effectiveBanks(7, fpga::DataType::Fixed16), 4);
    EXPECT_EQ(model::effectiveBanks(448, fpga::DataType::Fixed16), 224);
}

TEST(BramModel, AlexNetSingle485MatchesTable3)
{
    // Table 3 / Table 6: the 485T float Single-CLP uses 618 BRAMs:
    // 448 weight + 42 input + 128 output (derived in DESIGN.md).
    auto design = core::paperAlexNetSingle485();
    nn::Network net = nn::makeAlexNet();
    model::BramBreakdown b =
        model::clpBram(design.clps[0], net, design.dataType);
    EXPECT_EQ(b.weight, 448);
    EXPECT_EQ(b.input, 42);
    EXPECT_EQ(b.output, 128);
    EXPECT_EQ(b.total(), 618);
}

TEST(BramModel, AlexNetMulti485MatchesTable6)
{
    // Table 6 model column: CLP0..CLP3 = 130, 193, 186, 222; 731 total.
    auto design = core::paperAlexNetMulti485();
    nn::Network net = nn::makeAlexNet();
    std::vector<int64_t> expected{130, 193, 186, 222};
    int64_t total = 0;
    for (size_t ci = 0; ci < design.clps.size(); ++ci) {
        int64_t got =
            model::clpBram(design.clps[ci], net, design.dataType).total();
        EXPECT_EQ(got, expected[ci]) << "CLP" << ci;
        total += got;
    }
    EXPECT_EQ(total, 731);
    EXPECT_EQ(model::designBram(design, net), 731);
}

TEST(BramModel, AlexNetMulti690MatchesTable6)
{
    // Table 6 model column: 129, 193, 130, 166, 160, 460; 1,238 total.
    auto design = core::paperAlexNetMulti690();
    nn::Network net = nn::makeAlexNet();
    std::vector<int64_t> expected{129, 193, 130, 166, 160, 460};
    for (size_t ci = 0; ci < design.clps.size(); ++ci) {
        EXPECT_EQ(
            model::clpBram(design.clps[ci], net, design.dataType).total(),
            expected[ci])
            << "CLP" << ci;
    }
    EXPECT_EQ(model::designBram(design, net), 1238);
}

TEST(BramModel, FixedPointHalvesBankCount)
{
    // Same CLP in fixed point must use at most half the float BRAMs
    // (bank pairing), modulo the per-bank rounding rules.
    nn::Network net = nn::makeAlexNet();
    auto fdesign = core::paperAlexNetSingle485();
    model::ClpConfig clp = fdesign.clps[0];
    model::BramBreakdown as_float =
        model::clpBram(clp, net, fpga::DataType::Float32);
    model::BramBreakdown as_fixed =
        model::clpBram(clp, net, fpga::DataType::Fixed16);
    EXPECT_LE(as_fixed.total(), (as_float.total() + 1) / 2 + 3);
    EXPECT_GT(as_fixed.total(), 0);
}

TEST(BramModel, WeightBanksFreeForSmallKernels)
{
    // K=3 weight banks hold 9 words -> LUTRAM (crucial: SqueezeNet's
    // Tn*Tm=2176 weight banks would otherwise dwarf the chip).
    auto design = core::paperSqueezeNetSingle485();
    nn::Network net = nn::makeSqueezeNet();
    model::BramBreakdown b =
        model::clpBram(design.clps[0], net, design.dataType);
    EXPECT_EQ(b.weight, 0);
}

TEST(BramModel, ProvisionedForMostDemandingLayer)
{
    // A CLP computing two layers sizes banks for the bigger need.
    nn::Network net("pair", {test::layer(4, 8, 16, 16, 3, 1, "small"),
                             test::layer(4, 8, 16, 16, 5, 2, "big")});
    model::ClpConfig clp;
    clp.shape = {2, 4};
    clp.layers.push_back({0, {16, 16}});
    clp.layers.push_back({1, {16, 16}});
    model::BramBreakdown both =
        model::clpBram(clp, net, fpga::DataType::Float32);

    model::ClpConfig only_small = clp;
    only_small.layers.resize(1);
    model::BramBreakdown small =
        model::clpBram(only_small, net, fpga::DataType::Float32);
    EXPECT_GE(both.input, small.input);
    EXPECT_GE(both.weight, small.weight);
    // Input bank: big layer needs ((16-1)*2+5)^2 = 1225 words.
    EXPECT_EQ(both.input, 2 * 2 * 3);  // 2 banks * 2*ceil(1225/512)
}

TEST(BramModel, MonotoneInTiling)
{
    nn::ConvLayer l = test::layer(8, 8, 32, 32, 3, 1);
    for (int64_t tr = 1; tr <= 32; tr *= 2) {
        for (int64_t tc = 1; tc < 32; tc *= 2) {
            EXPECT_LE(model::inputBankWords(l, {tr, tc}),
                      model::inputBankWords(l, {tr * 1, tc * 2}));
            EXPECT_LE(model::inputBankWords(l, {tr, tc}),
                      model::inputBankWords(l, {std::min<int64_t>(
                                                    tr * 2, 32),
                                                tc}));
        }
    }
}

} // namespace
} // namespace mclp
