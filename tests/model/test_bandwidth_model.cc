#include <gtest/gtest.h>

#include "model/bandwidth_model.h"
#include "model/bram_model.h"
#include "model/cycle_model.h"
#include "sim/round_schedule.h"
#include "test_helpers.h"
#include "util/logging.h"
#include "util/math.h"

namespace mclp {
namespace {

struct TrafficCase
{
    int64_t n, m, r, c, k, s, tn, tm, tr, tc;
    int64_t g = 1;
};

class TrafficAgainstRounds : public ::testing::TestWithParam<TrafficCase>
{
};

TEST_P(TrafficAgainstRounds, ClosedFormMatchesRoundEnumeration)
{
    // The analytical traffic formulas must agree exactly with a
    // brute-force enumeration of the tile rounds (boundary tiles
    // included).
    TrafficCase p = GetParam();
    nn::ConvLayer l =
        test::groupedLayer(p.n, p.m, p.r, p.c, p.k, p.s, p.g);
    model::ClpShape shape{p.tn, p.tm};
    model::Tiling tiling{p.tr, p.tc};

    auto rounds = sim::roundsForLayer(l, shape, tiling);
    int64_t load = 0;
    int64_t store = 0;
    for (const auto &round : rounds) {
        load += round.loadWords;
        store += round.storeWords;
    }

    model::LayerTraffic traffic = model::layerTraffic(l, shape, tiling);
    EXPECT_EQ(traffic.inputWords + traffic.weightWords, load);
    EXPECT_EQ(traffic.outputWords, store);
    EXPECT_EQ(traffic.outputWords, l.outputWords());
    EXPECT_EQ(traffic.totalWords(), load + store);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TrafficAgainstRounds,
    ::testing::Values(
        TrafficCase{3, 48, 55, 55, 11, 4, 3, 24, 14, 19},
        TrafficCase{48, 128, 27, 27, 5, 1, 8, 19, 14, 27},
        TrafficCase{256, 192, 13, 13, 3, 1, 1, 96, 13, 13},
        TrafficCase{16, 64, 56, 56, 3, 1, 8, 16, 56, 56},
        TrafficCase{7, 9, 11, 13, 3, 2, 2, 4, 3, 5},
        TrafficCase{5, 5, 5, 5, 1, 1, 5, 5, 5, 5},
        TrafficCase{10, 20, 8, 8, 3, 1, 4, 8, 5, 7},
        // Grouped: Tn/Tm straddle the 8-map group spans.
        TrafficCase{32, 64, 14, 14, 3, 1, 3, 5, 9, 14, 4},
        // Depthwise: every group is a single map on each side.
        TrafficCase{16, 16, 12, 12, 3, 2, 4, 8, 7, 12, 16},
        // Grouped pointwise (ResNeXt reduce next to group3x3).
        TrafficCase{24, 48, 10, 10, 1, 1, 4, 6, 10, 10, 8}));

TEST(BandwidthModel, InputReloadedPerMStep)
{
    // Doubling the m steps doubles input traffic but not output.
    nn::ConvLayer l = test::layer(8, 32, 16, 16, 3, 1);
    model::Tiling tiling{16, 16};
    auto one_mstep = model::layerTraffic(l, {8, 32}, tiling);
    auto two_msteps = model::layerTraffic(l, {8, 16}, tiling);
    EXPECT_EQ(two_msteps.inputWords, 2 * one_mstep.inputWords);
    EXPECT_EQ(two_msteps.outputWords, one_mstep.outputWords);
    EXPECT_EQ(two_msteps.weightWords, one_mstep.weightWords);
}

TEST(BandwidthModel, WeightsReloadedPerSpatialTile)
{
    nn::ConvLayer l = test::layer(8, 32, 16, 16, 3, 1);
    auto whole = model::layerTraffic(l, {8, 32}, {16, 16});
    auto quarters = model::layerTraffic(l, {8, 32}, {8, 8});
    EXPECT_EQ(quarters.weightWords, 4 * whole.weightWords);
    EXPECT_EQ(quarters.outputWords, whole.outputWords);
    // Smaller tiles shrink each input load but overlap halos: total
    // input traffic grows.
    EXPECT_GT(quarters.inputWords, whole.inputWords);
}

TEST(BandwidthModel, PeakDecreasesWithLargerTiles)
{
    nn::ConvLayer l = test::layer(16, 64, 32, 32, 3, 1);
    model::ClpShape shape{4, 16};
    double small = model::layerPeakWordsPerCycle(l, shape, {4, 4});
    double medium = model::layerPeakWordsPerCycle(l, shape, {16, 16});
    double large = model::layerPeakWordsPerCycle(l, shape, {32, 32});
    EXPECT_GT(small, medium);
    EXPECT_GT(medium, large);
}

TEST(BandwidthModel, PeakCoversSteadyStateDemand)
{
    // Peak bandwidth x compute cycles must cover one round's input and
    // weight tile.
    nn::ConvLayer l = test::layer(48, 128, 27, 27, 5, 1);
    model::ClpShape shape{8, 19};
    model::Tiling tiling{14, 27};
    double peak = model::layerPeakWordsPerCycle(l, shape, tiling);
    int64_t comp = l.k * l.k * tiling.tr * tiling.tc;
    int64_t in_tile = shape.tn * model::inputBankWords(l, tiling);
    int64_t w_tile = shape.tn * shape.tm * l.k * l.k;
    EXPECT_GE(peak * static_cast<double>(comp),
              static_cast<double>(in_tile + w_tile));
}

TEST(BandwidthModel, UnconstrainedEqualsComputeBound)
{
    nn::ConvLayer l = test::layer(48, 128, 27, 27, 5, 1);
    model::ClpShape shape{8, 19};
    model::Tiling tiling{14, 27};
    EXPECT_EQ(model::layerCyclesUnderBandwidth(
                  l, shape, tiling, fpga::DataType::Float32, 0.0),
              model::layerCycles(l, shape));
}

TEST(BandwidthModel, AmplePeakBandwidthKeepsComputeBound)
{
    nn::ConvLayer l = test::layer(48, 128, 27, 27, 5, 1);
    model::ClpShape shape{8, 19};
    model::Tiling tiling{14, 27};
    double peak = model::layerPeakWordsPerCycle(l, shape, tiling) * 4.0;
    EXPECT_EQ(model::layerCyclesUnderBandwidth(
                  l, shape, tiling, fpga::DataType::Float32, peak),
              model::layerCycles(l, shape));
}

TEST(BandwidthModel, StarvedBandwidthIsTransferBound)
{
    nn::ConvLayer l = test::layer(48, 128, 27, 27, 5, 1);
    model::ClpShape shape{8, 19};
    model::Tiling tiling{14, 27};
    double bw = 0.25;  // bytes per cycle
    int64_t cycles = model::layerCyclesUnderBandwidth(
        l, shape, tiling, fpga::DataType::Float32, bw);
    auto traffic = model::layerTraffic(l, shape, tiling);
    int64_t bytes = traffic.totalWords() * 4;
    EXPECT_GE(cycles, model::layerCycles(l, shape));
    EXPECT_NEAR(static_cast<double>(cycles),
                static_cast<double>(bytes) / bw, 2.0);
}

TEST(BandwidthModel, CyclesMonotoneInBandwidth)
{
    nn::ConvLayer l = test::layer(16, 64, 56, 56, 3, 1);
    model::ClpShape shape{8, 16};
    model::Tiling tiling{28, 28};
    int64_t prev = model::layerCyclesUnderBandwidth(
        l, shape, tiling, fpga::DataType::Fixed16, 0.05);
    for (double bw : {0.1, 0.5, 1.0, 4.0, 16.0}) {
        int64_t cur = model::layerCyclesUnderBandwidth(
            l, shape, tiling, fpga::DataType::Fixed16, bw);
        EXPECT_LE(cur, prev);
        prev = cur;
    }
    EXPECT_EQ(prev, model::layerCycles(l, shape));
}

TEST(BandwidthModel, ClpAggregates)
{
    nn::Network net("pair", {test::layer(8, 16, 16, 16, 3, 1, "a"),
                             test::layer(16, 32, 8, 8, 3, 1, "b")});
    model::ClpConfig clp;
    clp.shape = {4, 8};
    clp.layers.push_back({0, {16, 16}});
    clp.layers.push_back({1, {8, 8}});

    double peak0 = model::layerPeakWordsPerCycle(net.layer(0), clp.shape,
                                                 {16, 16});
    double peak1 = model::layerPeakWordsPerCycle(net.layer(1), clp.shape,
                                                 {8, 8});
    EXPECT_DOUBLE_EQ(
        model::clpPeakBytesPerCycle(clp, net, fpga::DataType::Float32),
        std::max(peak0, peak1) * 4.0);

    int64_t traffic0 =
        model::layerTraffic(net.layer(0), clp.shape, {16, 16})
            .totalWords();
    int64_t traffic1 =
        model::layerTraffic(net.layer(1), clp.shape, {8, 8}).totalWords();
    EXPECT_EQ(
        model::clpTrafficBytes(clp, net, fpga::DataType::Float32),
        (traffic0 + traffic1) * 4);

    EXPECT_EQ(model::clpCyclesUnderBandwidth(clp, net,
                                             fpga::DataType::Float32,
                                             0.0),
              model::clpComputeCycles(clp, net));
}

TEST(BandwidthModel, InvalidTilingRejected)
{
    nn::ConvLayer l = test::layer(8, 16, 16, 16, 3, 1);
    EXPECT_THROW(model::layerTraffic(l, {4, 8}, {0, 4}),
                 util::FatalError);
    EXPECT_THROW(model::layerTraffic(l, {4, 8}, {17, 4}),
                 util::FatalError);
}

} // namespace
} // namespace mclp
