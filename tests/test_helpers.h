/**
 * @file
 * Shared helpers for the test suite.
 */

#ifndef MCLP_TESTS_TEST_HELPERS_H
#define MCLP_TESTS_TEST_HELPERS_H

#include <cstdint>
#include <string>

#include "fpga/device.h"
#include "model/clp_config.h"
#include "nn/conv_layer.h"
#include "nn/network.h"

namespace mclp {
namespace test {

/** Terse layer constructor for tests. */
inline nn::ConvLayer
layer(int64_t n, int64_t m, int64_t r, int64_t c, int64_t k, int64_t s,
      const std::string &name = "L")
{
    return nn::makeConvLayer(name, n, m, r, c, k, s);
}

/** Terse grouped-layer constructor for tests. */
inline nn::ConvLayer
groupedLayer(int64_t n, int64_t m, int64_t r, int64_t c, int64_t k,
             int64_t s, int64_t g, const std::string &name = "G")
{
    return nn::makeConvLayer(name, n, m, r, c, k, s, g);
}

/** A single-layer network. */
inline nn::Network
singleLayerNet(const nn::ConvLayer &conv)
{
    return nn::Network("test-net", {conv});
}

/** A single-CLP design covering every layer of @p network. */
inline model::MultiClpDesign
coverAll(const nn::Network &network, int64_t tn, int64_t tm,
         fpga::DataType type = fpga::DataType::Float32)
{
    model::MultiClpDesign design;
    design.dataType = type;
    model::ClpConfig clp;
    clp.shape = model::ClpShape{tn, tm};
    for (size_t i = 0; i < network.numLayers(); ++i) {
        const nn::ConvLayer &l = network.layer(i);
        clp.layers.push_back({i, model::Tiling{l.r, l.c}});
    }
    design.clps.push_back(std::move(clp));
    return design;
}

/** An unconstrained-bandwidth budget with generous DSP/BRAM. */
inline fpga::ResourceBudget
looseBudget()
{
    fpga::ResourceBudget budget;
    budget.dspSlices = 1 << 20;
    budget.bram18k = 1 << 20;
    budget.bandwidthBytesPerCycle = 0.0;
    budget.frequencyMhz = 100.0;
    return budget;
}

} // namespace test
} // namespace mclp

#endif // MCLP_TESTS_TEST_HELPERS_H
