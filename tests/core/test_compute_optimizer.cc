#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "core/compute_optimizer.h"
#include "core/layer_order.h"
#include "model/cycle_model.h"
#include "model/dsp_model.h"
#include "nn/zoo.h"
#include "test_helpers.h"
#include "util/logging.h"

namespace mclp {
namespace {

std::vector<size_t>
identityOrder(size_t count)
{
    std::vector<size_t> order(count);
    std::iota(order.begin(), order.end(), size_t{0});
    return order;
}

TEST(ComputeOptimizer, SingleClpReproducesZhangDesign)
{
    // With the 485T float budget and the optimal cycle target, the
    // single-CLP search must find Tn=7, Tm=64 — the design of [32]
    // (Section 6.3 confirms this equivalence).
    nn::Network net = nn::makeAlexNet();
    core::ComputeOptimizer opt(net, fpga::DataType::Float32,
                               identityOrder(net.numLayers()), 1);
    auto candidates = opt.optimize(2240, 2005892);
    ASSERT_EQ(candidates.size(), 1u);
    const auto &group = candidates[0].groups[0];
    EXPECT_EQ(group.shape.tn, 7);
    EXPECT_EQ(group.shape.tm, 64);
    EXPECT_EQ(group.cycles, 2005892);
    EXPECT_EQ(candidates[0].totalDsp, 2240);
}

TEST(ComputeOptimizer, SingleClpInfeasibleBelowOptimum)
{
    // No single CLP within 2,240 DSP slices can beat 2,005,748 cycles.
    nn::Network net = nn::makeAlexNet();
    core::ComputeOptimizer opt(net, fpga::DataType::Float32,
                               identityOrder(net.numLayers()), 1);
    EXPECT_TRUE(opt.optimize(2240, 2005891).empty());
}

TEST(ComputeOptimizer, SingleClp690ReproducesTable2b)
{
    nn::Network net = nn::makeAlexNet();
    core::ComputeOptimizer opt(net, fpga::DataType::Float32,
                               identityOrder(net.numLayers()), 1);
    auto candidates = opt.optimize(2880, 1768724);
    ASSERT_EQ(candidates.size(), 1u);
    EXPECT_EQ(candidates[0].groups[0].shape.tn, 9);
    EXPECT_EQ(candidates[0].groups[0].shape.tm, 64);
    EXPECT_TRUE(opt.optimize(2880, 1768723).empty());
}

TEST(ComputeOptimizer, MultiClpMeetsPaperEpochOn690)
{
    // At the paper's 690T Multi-CLP operating point (1,168k cycles),
    // a partition within 2,880 DSP slices must exist.
    nn::Network net = nn::makeAlexNet();
    auto order =
        core::orderLayers(net, core::OrderHeuristic::NmDistance);
    core::ComputeOptimizer opt(net, fpga::DataType::Float32, order, 6);
    auto candidates = opt.optimize(2880, 1168128);
    ASSERT_FALSE(candidates.empty());
    for (const auto &candidate : candidates) {
        EXPECT_LE(candidate.totalDsp, 2880);
        EXPECT_LE(candidate.epochCycles(), 1168128);
    }
}

TEST(ComputeOptimizer, CandidatesAreValidPartitions)
{
    nn::Network net = nn::makeSqueezeNet();
    auto order =
        core::orderLayers(net, core::OrderHeuristic::ComputeToData);
    core::ComputeOptimizer opt(net, fpga::DataType::Fixed16, order, 6);
    auto candidates = opt.optimize(2880, 200000);
    ASSERT_FALSE(candidates.empty());
    for (const auto &candidate : candidates) {
        std::set<size_t> covered;
        int64_t dsp = 0;
        for (const auto &group : candidate.groups) {
            EXPECT_GT(group.shape.tn, 0);
            EXPECT_GT(group.shape.tm, 0);
            EXPECT_LE(group.cycles, 200000);
            EXPECT_EQ(group.dsp, model::clpDsp(group.shape,
                                               fpga::DataType::Fixed16));
            // Recompute the group cycles from the model.
            int64_t cycles = 0;
            for (size_t idx : group.layers) {
                covered.insert(idx);
                cycles +=
                    model::layerCycles(net.layer(idx), group.shape);
            }
            EXPECT_EQ(cycles, group.cycles);
            dsp += group.dsp;
        }
        EXPECT_EQ(covered.size(), net.numLayers());
        EXPECT_EQ(dsp, candidate.totalDsp);
        EXPECT_LE(candidate.totalDsp, 2880);
    }
}

TEST(ComputeOptimizer, GroupsAreContiguousInOrder)
{
    nn::Network net = nn::makeAlexNet();
    auto order =
        core::orderLayers(net, core::OrderHeuristic::NmDistance);
    std::vector<size_t> pos(order.size());
    for (size_t i = 0; i < order.size(); ++i)
        pos[order[i]] = i;

    core::ComputeOptimizer opt(net, fpga::DataType::Float32, order, 4);
    auto candidates = opt.optimize(2240, 1600000);
    ASSERT_FALSE(candidates.empty());
    for (const auto &candidate : candidates) {
        size_t expected_next = 0;
        for (const auto &group : candidate.groups) {
            for (size_t idx : group.layers) {
                EXPECT_EQ(pos[idx], expected_next)
                    << "groups must cover the order contiguously";
                ++expected_next;
            }
        }
    }
}

TEST(ComputeOptimizer, TighterTargetsNeedMoreDsp)
{
    nn::Network net = nn::makeAlexNet();
    auto order =
        core::orderLayers(net, core::OrderHeuristic::NmDistance);
    core::ComputeOptimizer opt(net, fpga::DataType::Float32, order, 4);
    auto loose = opt.optimize(1 << 20, 4000000);
    auto tight = opt.optimize(1 << 20, 1500000);
    ASSERT_FALSE(loose.empty());
    ASSERT_FALSE(tight.empty());
    EXPECT_LE(loose[0].totalDsp, tight[0].totalDsp);
}

TEST(ComputeOptimizer, ImpossibleTargetYieldsNoCandidates)
{
    nn::Network net = nn::makeAlexNet();
    core::ComputeOptimizer opt(net, fpga::DataType::Float32,
                               identityOrder(net.numLayers()), 6);
    EXPECT_TRUE(opt.optimize(2240, 1000).empty());
}

TEST(ComputeOptimizer, RejectsBadArguments)
{
    nn::Network net = nn::makeAlexNet();
    EXPECT_THROW(core::ComputeOptimizer(net, fpga::DataType::Float32,
                                        {0, 1}, 6),
                 util::FatalError);
    core::ComputeOptimizer opt(net, fpga::DataType::Float32,
                               identityOrder(net.numLayers()), 6);
    EXPECT_THROW(opt.optimize(0, 100), util::FatalError);
    EXPECT_THROW(opt.optimize(100, 0), util::FatalError);
}

TEST(ComputeOptimizer, MoreClpsAllowedNeverHurts)
{
    nn::Network net = nn::makeAlexNet();
    auto order =
        core::orderLayers(net, core::OrderHeuristic::NmDistance);
    core::ComputeOptimizer narrow(net, fpga::DataType::Float32, order, 2);
    core::ComputeOptimizer wide(net, fpga::DataType::Float32, order, 6);
    // At a target only multi-CLP can hit, the wide search succeeds.
    auto at2 = narrow.optimize(2240, 1558000);
    auto at6 = wide.optimize(2240, 1558000);
    EXPECT_FALSE(at6.empty());
    if (!at2.empty()) {
        EXPECT_LE(at6[0].totalDsp, 2240);
    }
}

} // namespace
} // namespace mclp
