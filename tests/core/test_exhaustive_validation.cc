/**
 * @file
 * Cross-validation of the Section 4.3 pruning: on networks small
 * enough to brute-force every layer-to-CLP set partition, the pruned
 * (contiguous-in-heuristic-order) optimizer must track the true
 * optimum closely. Complements the runtime-focused ablation bench.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/optimizer.h"
#include "model/cycle_model.h"
#include "model/dsp_model.h"
#include "test_helpers.h"
#include "util/math.h"
#include "util/string_utils.h"

namespace mclp {
namespace {

/** Minimum-DSP cost for a group within a cycle target, brute force. */
int64_t
groupDsp(const nn::Network &network, const std::vector<size_t> &layers,
         int64_t units_cap, int64_t target)
{
    int64_t max_n = 0;
    int64_t max_m = 0;
    for (size_t idx : layers) {
        max_n = std::max(max_n, network.layer(idx).n);
        max_m = std::max(max_m, network.layer(idx).m);
    }
    int64_t best = -1;
    for (int64_t tn = 1; tn <= std::min(max_n, units_cap); ++tn) {
        for (int64_t tm = 1; tm <= std::min(max_m, units_cap / tn);
             ++tm) {
            int64_t cycles = 0;
            for (size_t idx : layers) {
                cycles += model::layerCycles(network.layer(idx),
                                             {tn, tm});
                if (cycles > target)
                    break;
            }
            if (cycles > target)
                continue;
            int64_t dsp = tn * tm;  // fixed16: 1 DSP per MAC
            if (best < 0 || dsp < best)
                best = dsp;
        }
    }
    return best;
}

/** First feasible target over all set partitions into <= k groups. */
int64_t
exhaustiveOptimum(const nn::Network &network, int64_t dsp_budget,
                  int max_clps)
{
    size_t count = network.numLayers();
    std::vector<int> assign(count, 0);
    std::vector<std::vector<std::vector<size_t>>> partitions;
    while (true) {
        int groups = 0;
        for (int g : assign)
            groups = std::max(groups, g + 1);
        if (groups <= max_clps) {
            std::vector<std::vector<size_t>> partition(
                static_cast<size_t>(groups));
            for (size_t i = 0; i < count; ++i)
                partition[static_cast<size_t>(assign[i])].push_back(i);
            partitions.push_back(std::move(partition));
        }
        int pos = static_cast<int>(count) - 1;
        while (pos > 0) {
            int prefix_max = 0;
            for (int i = 0; i < pos; ++i)
                prefix_max = std::max(prefix_max, assign[i]);
            if (assign[pos] <= prefix_max) {
                ++assign[pos];
                for (size_t i = static_cast<size_t>(pos) + 1; i < count;
                     ++i)
                    assign[i] = 0;
                break;
            }
            --pos;
        }
        if (pos == 0)
            break;
    }

    int64_t units = dsp_budget;  // fixed16
    int64_t cycles_min = model::minimumPossibleCycles(network, units);
    for (double target = 1.0; target > 0.0025; target -= 0.005) {
        int64_t allowed = static_cast<int64_t>(
            std::ceil(static_cast<double>(cycles_min) / target));
        for (const auto &partition : partitions) {
            int64_t total = 0;
            bool ok = true;
            for (const auto &group : partition) {
                int64_t dsp =
                    groupDsp(network, group, units, allowed);
                if (dsp < 0) {
                    ok = false;
                    break;
                }
                total += dsp;
            }
            if (ok && total <= dsp_budget)
                return allowed;
        }
    }
    return -1;
}

class PruningValidation : public ::testing::TestWithParam<int>
{
};

TEST_P(PruningValidation, PrunedSearchTracksExhaustiveOptimum)
{
    util::SplitMix64 rng(static_cast<uint64_t>(GetParam()));
    std::vector<nn::ConvLayer> layers;
    for (size_t i = 0; i < 5; ++i) {
        int64_t r = rng.nextInt(6, 16);
        layers.push_back(test::layer(rng.nextInt(1, 40),
                                     rng.nextInt(1, 40), r, r,
                                     1 + 2 * rng.nextInt(0, 1), 1,
                                     util::strprintf("l%zu", i)));
    }
    nn::Network network("exhaustive-check", layers);

    fpga::ResourceBudget budget;
    budget.dspSlices = 384;
    budget.bram18k = 1 << 20;  // isolate OptimizeCompute
    budget.frequencyMhz = 100.0;

    int64_t optimum =
        exhaustiveOptimum(network, budget.dspSlices, 4);
    ASSERT_GT(optimum, 0);

    auto pruned = core::optimizeMultiClp(network,
                                         fpga::DataType::Fixed16,
                                         budget, 4);
    int64_t units = budget.dspSlices;
    int64_t cycles_min = model::minimumPossibleCycles(network, units);
    int64_t pruned_allowed = static_cast<int64_t>(
        std::ceil(static_cast<double>(cycles_min) /
                  pruned.achievedTarget));

    // The pruned search can never beat the exhaustive optimum, and
    // for these small cases it should be within a few percent of it.
    EXPECT_GE(pruned_allowed, optimum);
    EXPECT_LE(static_cast<double>(pruned_allowed),
              1.05 * static_cast<double>(optimum))
        << "pruning lost more than 5% vs the exhaustive optimum";
}

INSTANTIATE_TEST_SUITE_P(Seeds, PruningValidation,
                         ::testing::Values(11, 22, 33, 44));

} // namespace
} // namespace mclp
