#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/layer_order.h"
#include "nn/zoo.h"
#include "test_helpers.h"
#include "util/logging.h"

namespace mclp {
namespace {

bool
isPermutation(const std::vector<size_t> &order, size_t count)
{
    if (order.size() != count)
        return false;
    std::set<size_t> seen(order.begin(), order.end());
    return seen.size() == count && *seen.rbegin() == count - 1;
}

TEST(LayerOrder, AllHeuristicsProducePermutations)
{
    for (auto heuristic :
         {core::OrderHeuristic::NmDistance,
          core::OrderHeuristic::ComputeToData,
          core::OrderHeuristic::AsIs}) {
        for (const auto &name : nn::zooNetworkNames()) {
            nn::Network net = nn::networkByName(name);
            auto order = core::orderLayers(net, heuristic);
            EXPECT_TRUE(isPermutation(order, net.numLayers()))
                << name << " " << core::orderHeuristicName(heuristic);
        }
    }
}

TEST(LayerOrder, AsIsIsIdentity)
{
    nn::Network net = nn::makeAlexNet();
    auto order = core::orderLayers(net, core::OrderHeuristic::AsIs);
    for (size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
}

TEST(LayerOrder, NmDistanceStartsFromSmallest)
{
    // AlexNet layer 1a/1b have the smallest N+M (3+48).
    nn::Network net = nn::makeAlexNet();
    auto order = core::orderLayers(net, core::OrderHeuristic::NmDistance);
    EXPECT_EQ(order[0], 0u);
    EXPECT_EQ(order[1], 1u);  // identical point is nearest
}

TEST(LayerOrder, NmDistanceKeepsPaperGroupsContiguous)
{
    // The published AlexNet groupings (Table 2) must be contiguous in
    // the (N, M) nearest-neighbour order, or OptimizeCompute could
    // never have produced them: {1a,1b}, {2a,2b}, {3a,3b}, {4a,4b},
    // {5a,5b} as pairs.
    nn::Network net = nn::makeAlexNet();
    auto order = core::orderLayers(net, core::OrderHeuristic::NmDistance);
    std::vector<size_t> pos(order.size());
    for (size_t i = 0; i < order.size(); ++i)
        pos[order[i]] = i;
    for (size_t pair = 0; pair < 10; pair += 2) {
        EXPECT_EQ(std::abs(static_cast<long>(pos[pair]) -
                           static_cast<long>(pos[pair + 1])),
                  1)
            << "pair " << pair;
    }
    // 4a/4b and 5a/5b must be adjacent as a block of four (Table 2c
    // assigns them to one CLP).
    std::vector<size_t> block{pos[6], pos[7], pos[8], pos[9]};
    std::sort(block.begin(), block.end());
    EXPECT_EQ(block.back() - block.front(), 3u);
}

TEST(LayerOrder, ComputeToDataIsSortedByRatio)
{
    nn::Network net = nn::makeSqueezeNet();
    auto order =
        core::orderLayers(net, core::OrderHeuristic::ComputeToData);
    for (size_t i = 1; i < order.size(); ++i) {
        EXPECT_LE(net.layer(order[i - 1]).computeToDataRatio(),
                  net.layer(order[i]).computeToDataRatio());
    }
}

TEST(LayerOrder, Deterministic)
{
    nn::Network net = nn::makeGoogLeNet();
    auto a = core::orderLayers(net, core::OrderHeuristic::NmDistance);
    auto b = core::orderLayers(net, core::OrderHeuristic::NmDistance);
    EXPECT_EQ(a, b);
}

TEST(LayerOrder, EmptyNetworkRejected)
{
    nn::Network net;
    EXPECT_THROW(
        core::orderLayers(net, core::OrderHeuristic::NmDistance),
        util::FatalError);
}

TEST(LayerOrder, HeuristicNames)
{
    EXPECT_EQ(core::orderHeuristicName(core::OrderHeuristic::NmDistance),
              "nm-distance");
    EXPECT_EQ(
        core::orderHeuristicName(core::OrderHeuristic::ComputeToData),
        "compute-to-data");
    EXPECT_EQ(core::orderHeuristicName(core::OrderHeuristic::AsIs),
              "as-is");
}

} // namespace
} // namespace mclp
