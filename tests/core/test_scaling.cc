/**
 * @file
 * Figure 7 as invariants: the Multi-CLP advantage over Single-CLP
 * grows with the DSP budget, and the 2,240-slice crossover point
 * matches the paper's 1.3x.
 */

#include <gtest/gtest.h>

#include "core/optimizer.h"
#include "test_helpers.h"
#include "nn/zoo.h"

namespace mclp {
namespace {

double
speedupAt(const nn::Network &network, int64_t dsp)
{
    fpga::ResourceBudget budget;
    budget.dspSlices = dsp;
    budget.bram18k =
        std::max<int64_t>(1, static_cast<int64_t>(dsp / 1.3));
    budget.frequencyMhz = 100.0;
    auto single =
        core::optimizeSingleClp(network, fpga::DataType::Float32,
                                budget);
    auto multi = core::optimizeMultiClp(network, fpga::DataType::Float32,
                                        budget, 10);
    return static_cast<double>(single.metrics.epochCycles) /
           static_cast<double>(multi.metrics.epochCycles);
}

TEST(Scaling, PaperCrossoverAt2240Dsp)
{
    // Section 6.6: at 2,240 DSP slices Multi-CLP is 1.3x faster.
    nn::Network network = nn::makeAlexNet();
    EXPECT_NEAR(speedupAt(network, 2240), 1.31, 0.03);
}

TEST(Scaling, AdvantageGrowsWithBudget)
{
    // The headline scaling claim: the Single-CLP struggles to use
    // more arithmetic, the Multi-CLP does not.
    nn::Network network = nn::makeAlexNet();
    double at2240 = speedupAt(network, 2240);
    double at5000 = speedupAt(network, 5000);
    double at9600 = speedupAt(network, 9600);
    EXPECT_GT(at5000, at2240);
    EXPECT_GT(at9600, at5000);
    EXPECT_GE(at9600, 2.5);  // paper reports 3.3x, ours ~2.9x
}

TEST(Scaling, MultiNeverLosesToSingle)
{
    // A Multi-CLP search that can fall back to one CLP can never be
    // slower than the Single-CLP baseline at any budget.
    nn::Network network = nn::makeAlexNet();
    for (int64_t dsp : {100, 500, 1500, 2880}) {
        EXPECT_GE(speedupAt(network, dsp), 1.0 - 1e-9)
            << "at " << dsp << " DSP slices";
    }
}

} // namespace
} // namespace mclp
