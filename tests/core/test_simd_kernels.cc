/**
 * @file
 * The SIMD kernels (src/util/simd.h) must be bit-identical to their
 * unconditionally-compiled scalar twins — that is the whole contract
 * that lets the optimizer hot loops vectorize without an oracle
 * change. Each kernel is fuzzed against its twin over every tail
 * length 0..kLanes+ (the vector/scalar seam), saturation-edge values
 * (INT64_MAX/MIN sentinels the cap kernels use as "none"), and dense
 * duplicate ranges; a final end-to-end test pins that forcing the
 * scalar path through the public entry points never changes a
 * randomized network's optimized design.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "core/optimizer.h"
#include "fpga/device.h"
#include "nn/network.h"
#include "util/math.h"
#include "util/simd.h"

namespace mclp {
namespace {

namespace simd = util::simd;

constexpr int64_t kMax = std::numeric_limits<int64_t>::max();
constexpr int64_t kMin = std::numeric_limits<int64_t>::min();

/** Mixed-magnitude value stream: small ints, edges, dense dupes. */
int64_t
fuzzValue(util::SplitMix64 &rng, bool allow_edges)
{
    switch (rng.nextInt(0, allow_edges ? 5 : 3)) {
    case 0: return rng.nextInt(-4, 4);          // dense duplicates
    case 1: return rng.nextInt(-1000, 1000);
    case 2: return rng.nextInt(-1, 0) == 0
                       ? rng.nextInt(0, 1 << 20)
                       : -rng.nextInt(0, 1 << 20);
    case 3: return rng.nextInt(-3, 3) * 1000000;
    case 4: return rng.nextInt(0, 1) == 0 ? kMax : kMax - rng.nextInt(0, 3);
    default: return rng.nextInt(0, 1) == 0 ? kMin : kMin + rng.nextInt(0, 3);
    }
}

/** Every length crossing the vector/scalar seam, then longer runs. */
std::vector<size_t>
fuzzLengths()
{
    std::vector<size_t> lengths;
    for (size_t n = 0; n <= 3 * simd::kLanes + 1; ++n)
        lengths.push_back(n);
    lengths.push_back(64);
    lengths.push_back(257);
    return lengths;
}

TEST(SimdKernels, AddScaledMatchesScalarTwin)
{
    util::SplitMix64 rng(20170801);
    for (size_t n : fuzzLengths()) {
        for (int trial = 0; trial < 8; ++trial) {
            // Bounded magnitudes: scale * src must not overflow (the
            // production caller multiplies layer areas by tile
            // counts, both far below 2^31).
            int64_t scale = rng.nextInt(-(1 << 20), 1 << 20);
            std::vector<int64_t> src(n), a(n), b(n);
            for (size_t i = 0; i < n; ++i) {
                src[i] = rng.nextInt(-(1 << 20), 1 << 20);
                a[i] = b[i] = rng.nextInt(-(1LL << 40), 1LL << 40);
            }
            simd::addScaledI64(a.data(), src.data(), scale, n);
            simd::scalar::addScaledI64(b.data(), src.data(), scale, n);
            ASSERT_EQ(a, b) << "n=" << n << " scale=" << scale;
        }
    }
}

TEST(SimdKernels, AddMatchesScalarTwin)
{
    util::SplitMix64 rng(20170806);
    for (size_t n : fuzzLengths()) {
        for (int trial = 0; trial < 8; ++trial) {
            // Bounded magnitudes as for addScaled: the production
            // accumulators are sums of layer-area products, far below
            // the int64 overflow edge.
            std::vector<int64_t> src(n), a(n), b(n);
            for (size_t i = 0; i < n; ++i) {
                src[i] = rng.nextInt(-(1LL << 40), 1LL << 40);
                a[i] = b[i] = rng.nextInt(-(1LL << 40), 1LL << 40);
            }
            simd::addI64(a.data(), src.data(), n);
            simd::scalar::addI64(b.data(), src.data(), n);
            ASSERT_EQ(a, b) << "n=" << n << " trial=" << trial;
        }
    }
}

TEST(SimdKernels, FindNonNegativeMatchesScalarTwin)
{
    util::SplitMix64 rng(20170802);
    for (size_t n : fuzzLengths()) {
        for (int trial = 0; trial < 16; ++trial) {
            // Mostly-negative arrays with a sparse non-negative
            // sprinkle — the dense-sweep occupancy shape (and the
            // all-negative "return n" case falls out at low n).
            std::vector<int64_t> v(n);
            for (size_t i = 0; i < n; ++i) {
                v[i] = rng.nextInt(0, 9) == 0
                           ? rng.nextInt(0, 1000)
                           : rng.nextInt(-1000, -1);
            }
            if (n > 0 && trial == 0)
                v[n - 1] = 0;  // match exactly at the last element
            ASSERT_EQ(simd::findNonNegativeI64(v.data(), n),
                      simd::scalar::findNonNegativeI64(v.data(), n))
                << "n=" << n << " trial=" << trial;
        }
    }
}

TEST(SimdKernels, CapScanMatchesScalarTwin)
{
    util::SplitMix64 rng(20170803);
    for (size_t n : fuzzLengths()) {
        for (int trial = 0; trial < 16; ++trial) {
            std::vector<int64_t> levels(n), gates(n);
            for (size_t i = 0; i < n; ++i) {
                levels[i] = fuzzValue(rng, true);
                gates[i] = fuzzValue(rng, true);
            }
            int64_t gate_cap = fuzzValue(rng, true);
            int64_t cap = fuzzValue(rng, true);
            int64_t lo_v, hi_v, lo_s, hi_s;
            simd::capScanI64(levels.data(), gates.data(), gate_cap, cap,
                             n, lo_v, hi_v);
            simd::scalar::capScanI64(levels.data(), gates.data(),
                                     gate_cap, cap, n, lo_s, hi_s);
            ASSERT_EQ(lo_v, lo_s) << "n=" << n << " trial=" << trial;
            ASSERT_EQ(hi_v, hi_s) << "n=" << n << " trial=" << trial;
        }
    }
}

TEST(SimdKernels, CapScanSentinelEdges)
{
    // The "none" sentinels themselves: an empty array, all gates shut,
    // all levels at cap, and values equal to the sentinels.
    int64_t lo, hi;
    simd::capScanI64(nullptr, nullptr, 0, 0, 0, lo, hi);
    EXPECT_EQ(lo, kMax);
    EXPECT_EQ(hi, kMin);

    std::vector<int64_t> levels = {kMax, kMin, 0, kMax, kMin, 7};
    std::vector<int64_t> gates = {1, 1, 1, 1, 1, 1};
    simd::capScanI64(levels.data(), gates.data(), 0, kMin, levels.size(),
                     lo, hi);
    int64_t lo_s, hi_s;
    simd::scalar::capScanI64(levels.data(), gates.data(), 0, kMin,
                             levels.size(), lo_s, hi_s);
    EXPECT_EQ(lo, lo_s);
    EXPECT_EQ(hi, hi_s);
    EXPECT_EQ(hi, kMin);  // nothing is strictly below INT64_MIN

    simd::capScanI64(levels.data(), gates.data(), kMax, kMax,
                     levels.size(), lo, hi);
    simd::scalar::capScanI64(levels.data(), gates.data(), kMax, kMax,
                             levels.size(), lo_s, hi_s);
    EXPECT_EQ(lo, lo_s);
    EXPECT_EQ(hi, hi_s);
    EXPECT_EQ(lo, kMin);  // every gate admits; min level is INT64_MIN
}

TEST(SimdKernels, FirstWithinCapsMatchesScalarTwin)
{
    util::SplitMix64 rng(20170804);
    for (size_t n : fuzzLengths()) {
        for (int trial = 0; trial < 16; ++trial) {
            std::vector<int64_t> a(n), b(n);
            for (size_t i = 0; i < n; ++i) {
                a[i] = fuzzValue(rng, true);
                b[i] = fuzzValue(rng, true);
            }
            int64_t cap_a = fuzzValue(rng, true);
            int64_t cap_b = fuzzValue(rng, true);
            ASSERT_EQ(simd::firstWithinCapsI64(a.data(), b.data(), cap_a,
                                               cap_b, n),
                      simd::scalar::firstWithinCapsI64(a.data(), b.data(),
                                                       cap_a, cap_b, n))
                << "n=" << n << " trial=" << trial;
        }
    }
}

/**
 * The whole-pipeline oracle: cold optimizations of randomized
 * networks must produce identical designs with the vector kernels on
 * and with every public entry point forced through the scalar twins.
 * (Under -DMCLP_NO_SIMD both runs are scalar and the test is a
 * tautology — the CI scalar job covers that configuration.)
 */
TEST(SimdKernels, ForcedScalarNeverChangesOptimizedDesigns)
{
    util::SplitMix64 rng(20170805);
    for (int trial = 0; trial < 3; ++trial) {
        std::vector<nn::ConvLayer> layers;
        int count = static_cast<int>(rng.nextInt(3, 6));
        for (int i = 0; i < count; ++i) {
            int64_t k = std::vector<int64_t>{1, 3, 5}[static_cast<size_t>(
                rng.nextInt(0, 2))];
            layers.push_back(nn::makeConvLayer(
                "L" + std::to_string(i), rng.nextInt(1, 64),
                rng.nextInt(1, 64), rng.nextInt(3, 14),
                rng.nextInt(3, 14), k, 1));
        }
        nn::Network network("simd" + std::to_string(trial), layers);
        fpga::ResourceBudget budget;
        budget.dspSlices = rng.nextInt(200, 2000);
        budget.bram18k = std::max<int64_t>(16, budget.dspSlices / 2);
        budget.frequencyMhz = 100.0;

        util::simd::setForceScalar(false);
        auto vec = core::optimizeMultiClp(network, fpga::DataType::Float32,
                                          budget, 4);
        util::simd::setForceScalar(true);
        auto sca = core::optimizeMultiClp(network, fpga::DataType::Float32,
                                          budget, 4);
        util::simd::setForceScalar(false);

        EXPECT_TRUE(vec.design == sca.design) << "trial " << trial;
        EXPECT_EQ(vec.metrics.epochCycles, sca.metrics.epochCycles)
            << "trial " << trial;
        EXPECT_EQ(vec.iterations, sca.iterations) << "trial " << trial;
    }
}

} // namespace
} // namespace mclp
