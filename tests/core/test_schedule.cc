#include <gtest/gtest.h>

#include "core/optimizer.h"
#include "core/paper_designs.h"
#include "core/schedule.h"
#include "nn/zoo.h"
#include "test_helpers.h"

namespace mclp {
namespace {

TEST(Schedule, PaperAlexNetDesignsAreAdjacencyCapable)
{
    // Every CLP of the published AlexNet Multi-CLP designs happens to
    // own a contiguous run of the pipeline (e.g. {5a,5b,4a,4b}), so
    // their latency is numClps epochs, not numLayers.
    nn::Network net = nn::makeAlexNet();
    auto info485 =
        core::analyzeSchedule(core::paperAlexNetMulti485(), net);
    EXPECT_TRUE(info485.adjacentLayers);
    EXPECT_EQ(info485.latencyEpochs, 4);
    EXPECT_EQ(info485.imagesInFlight, 4);
    auto info690 =
        core::analyzeSchedule(core::paperAlexNetMulti690(), net);
    EXPECT_TRUE(info690.adjacentLayers);
    EXPECT_EQ(info690.latencyEpochs, 6);
}

TEST(Schedule, ScatteredAssignmentFallsBackToLayerCount)
{
    // The SqueezeNet groupings interleave layers from different fire
    // modules, so an image needs one epoch per layer.
    nn::Network net = nn::makeSqueezeNet();
    auto info =
        core::analyzeSchedule(core::paperSqueezeNetMulti690(), net);
    EXPECT_FALSE(info.adjacentLayers);
    EXPECT_EQ(info.latencyEpochs, 26);
    EXPECT_EQ(info.imagesInFlight, 26);
}

TEST(Schedule, SingleClpIsAdjacent)
{
    nn::Network net = nn::makeAlexNet();
    auto info =
        core::analyzeSchedule(core::paperAlexNetSingle485(), net);
    EXPECT_TRUE(info.adjacentLayers);
    EXPECT_EQ(info.latencyEpochs, 1);
    EXPECT_EQ(info.imagesInFlight, 1);
}

TEST(Schedule, LatencySecondsMath)
{
    core::ScheduleInfo info;
    info.latencyEpochs = 4;
    // 4 epochs x 1,000,000 cycles at 100 MHz = 40 ms.
    EXPECT_DOUBLE_EQ(info.latencySeconds(1000000, 100.0), 0.04);
}

TEST(Schedule, CanonicalizeOrdersClpsAndLayers)
{
    nn::Network net = nn::makeAlexNet();
    auto design = core::paperAlexNetMulti485();
    auto canon = core::canonicalizeSchedule(design, net);
    size_t prev_first = 0;
    for (const auto &clp : canon.clps) {
        for (size_t i = 1; i < clp.layers.size(); ++i)
            EXPECT_LT(clp.layers[i - 1].layerIdx,
                      clp.layers[i].layerIdx);
        EXPECT_GE(clp.layers.front().layerIdx, prev_first);
        prev_first = clp.layers.front().layerIdx;
    }
    // Canonicalization must not change cost or validity.
    EXPECT_NO_THROW(canon.validate(net));
    EXPECT_EQ(canon.totalMacUnits(), design.totalMacUnits());
}

TEST(Schedule, AdjacentLayersOptionConstrainsOptimizer)
{
    nn::Network net = nn::makeAlexNet();
    fpga::ResourceBudget budget =
        fpga::standardBudget(fpga::virtex7_690t(), 100.0);

    core::OptimizerOptions options;
    options.adjacentLayers = true;
    auto constrained = core::MultiClpOptimizer(
                           net, fpga::DataType::Float32, budget, options)
                           .run();
    auto info = core::analyzeSchedule(
        core::canonicalizeSchedule(constrained.design, net), net);
    EXPECT_TRUE(info.adjacentLayers);
    EXPECT_LE(info.latencyEpochs,
              static_cast<int64_t>(constrained.design.clps.size()));

    // The free optimizer can only be at least as fast.
    auto free_run =
        core::optimizeMultiClp(net, fpga::DataType::Float32, budget);
    EXPECT_LE(free_run.metrics.epochCycles,
              constrained.metrics.epochCycles);
}

TEST(Schedule, AdjacencyReducesLatencyOnAlexNet)
{
    // The whole point of Section 4.1's constraint: latency in epochs
    // drops from numLayers to numClps.
    nn::Network net = nn::makeAlexNet();
    fpga::ResourceBudget budget =
        fpga::standardBudget(fpga::virtex7_485t(), 100.0);
    core::OptimizerOptions options;
    options.adjacentLayers = true;
    options.maxClps = 3;
    auto result = core::MultiClpOptimizer(net, fpga::DataType::Float32,
                                          budget, options)
                      .run();
    auto info = core::analyzeSchedule(
        core::canonicalizeSchedule(result.design, net), net);
    EXPECT_LE(info.latencyEpochs, 3);
    EXPECT_LT(info.latencyEpochs,
              static_cast<int64_t>(net.numLayers()));
}

} // namespace
} // namespace mclp
