/**
 * @file
 * Per-row locking and the shared frontier-row store must be invisible
 * in answers: choose() without prepare() self-heals to the same
 * result, concurrent queries at interleaved budgets and targets match
 * a serial table bit for bit, growing the units cap mid-stream only
 * rebuilds lazily (never changing answers), and store-shared tables
 * answer exactly like private ones.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/layer_order.h"
#include "core/shape_frontier.h"
#include "model/dsp_model.h"
#include "nn/zoo.h"
#include "test_helpers.h"
#include "util/thread_pool.h"

namespace mclp {
namespace {

struct Query
{
    size_t i = 0;
    size_t j = 0;
    int64_t dsp = 0;
    int64_t target = 0;
};

std::vector<Query>
queryMix(const nn::Network &network, const std::vector<size_t> &order,
         core::FrontierTable &reference)
{
    // Probe targets around what each range can actually achieve so
    // both feasible and infeasible queries appear.
    std::vector<Query> queries;
    std::vector<int64_t> budgets{240, 800, 2240, 2880};
    size_t count = order.size();
    for (int64_t dsp : budgets) {
        for (size_t i = 0; i < count; ++i) {
            for (size_t j = i; j < count; ++j) {
                for (int64_t target :
                     {int64_t{20000}, int64_t{300000},
                      int64_t{3000000}}) {
                    auto point =
                        reference.choose(i, j, dsp, target);
                    (void)point;
                    queries.push_back({i, j, dsp, target});
                }
            }
        }
    }
    (void)network;
    return queries;
}

TEST(FrontierTable, ConcurrentInterleavedBudgetsMatchSerial)
{
    nn::Network network = nn::makeAlexNet();
    fpga::DataType type = fpga::DataType::Float32;
    std::vector<size_t> order =
        core::orderLayers(network, core::OrderHeuristic::NmDistance);

    // Serial reference answers.
    core::FrontierTable serial(network, type, order, 6);
    serial.reserveUnits(model::macBudget(2880, type));
    std::vector<Query> queries = queryMix(network, order, serial);
    std::vector<std::optional<core::FrontierPoint>> expected;
    expected.reserve(queries.size());
    for (const Query &q : queries)
        expected.push_back(serial.choose(q.i, q.j, q.dsp, q.target));

    // Concurrent shared table, no prepare(), interleaved budgets.
    core::FrontierTable shared(network, type, order, 6);
    shared.reserveUnits(model::macBudget(2880, type));
    std::vector<std::optional<core::FrontierPoint>> got(
        queries.size());
    util::ThreadPool pool(4);
    pool.parallelFor(queries.size(), [&](size_t qi) {
        const Query &q = queries[qi];
        got[qi] = shared.choose(q.i, q.j, q.dsp, q.target);
    });

    for (size_t qi = 0; qi < queries.size(); ++qi) {
        ASSERT_EQ(got[qi].has_value(), expected[qi].has_value())
            << "query " << qi;
        if (got[qi]) {
            EXPECT_TRUE(got[qi]->shape == expected[qi]->shape)
                << "query " << qi;
            EXPECT_EQ(got[qi]->dsp, expected[qi]->dsp);
            EXPECT_EQ(got[qi]->cycles, expected[qi]->cycles);
        }
    }
}

TEST(FrontierTable, LazyCapGrowthNeverChangesAnswers)
{
    nn::Network network = nn::makeAlexNet();
    fpga::DataType type = fpga::DataType::Float32;
    std::vector<size_t> order =
        core::orderLayers(network, core::OrderHeuristic::NmDistance);

    core::FrontierTable grown(network, type, order, 6);
    // Answer small-budget queries first (rows built at a small cap)…
    grown.prepare(240, 3000000, nullptr);
    auto small_before = grown.choose(0, 3, 240, 3000000);
    // …then jump the cap: touched rows rebuild lazily and answers at
    // both budgets must match single-cap tables.
    grown.reserveUnits(model::macBudget(9600, type));
    auto big = grown.choose(0, 3, 9600, 300000);
    auto small_after = grown.choose(0, 3, 240, 3000000);

    core::FrontierTable fresh(network, type, order, 6);
    fresh.reserveUnits(model::macBudget(9600, type));
    auto big_fresh = fresh.choose(0, 3, 9600, 300000);
    auto small_fresh = fresh.choose(0, 3, 240, 3000000);

    ASSERT_EQ(big.has_value(), big_fresh.has_value());
    if (big) {
        EXPECT_TRUE(big->shape == big_fresh->shape);
    }
    ASSERT_EQ(small_after.has_value(), small_fresh.has_value());
    ASSERT_EQ(small_after.has_value(), small_before.has_value());
    if (small_after) {
        EXPECT_TRUE(small_after->shape == small_fresh->shape);
        EXPECT_TRUE(small_after->shape == small_before->shape);
        EXPECT_EQ(small_after->cycles, small_before->cycles);
    }
}

TEST(FrontierRowStore, SharedTablesAnswerLikePrivateOnes)
{
    nn::Network network = nn::makeSqueezeNet();
    fpga::DataType type = fpga::DataType::Fixed16;
    std::vector<size_t> order = core::orderLayers(
        network, core::OrderHeuristic::ComputeToData);
    int64_t units = model::macBudget(2880, type);

    core::FrontierTable private_table(network, type, order, 6);
    private_table.reserveUnits(units);

    auto store = std::make_shared<core::FrontierRowStore>();
    auto shared_a = std::make_unique<core::FrontierTable>(
        network, type, order, 6, store);
    auto shared_b = std::make_unique<core::FrontierTable>(
        network, type, order, 6, store);
    shared_a->reserveUnits(units);
    shared_b->reserveUnits(units);

    size_t count = order.size();
    for (size_t i = 0; i < count; i += 3) {
        for (size_t j = i; j < count; j += 2) {
            for (int64_t target : {int64_t{60000}, int64_t{900000}}) {
                auto expected =
                    private_table.choose(i, j, 2880, target);
                auto got_a = shared_a->choose(i, j, 2880, target);
                auto got_b = shared_b->choose(i, j, 2880, target);
                ASSERT_EQ(got_a.has_value(), expected.has_value());
                ASSERT_EQ(got_b.has_value(), expected.has_value());
                if (expected) {
                    EXPECT_TRUE(got_a->shape == expected->shape);
                    EXPECT_TRUE(got_b->shape == expected->shape);
                    EXPECT_EQ(got_a->cycles, expected->cycles);
                    EXPECT_EQ(got_b->cycles, expected->cycles);
                }
            }
        }
    }

    // The second table answered (mostly) from rows the first built:
    // SqueezeNet's fire modules repeat dims, so hits dominate.
    core::FrontierRowStore::Stats stats = store->stats();
    EXPECT_GT(stats.hits, 0u);
    EXPECT_GT(stats.rows, 0u);
    EXPECT_GT(store->memoryBytes(), 0u);

    // While tables hold the rows, purge frees nothing; dropping the
    // tables orphans every row and purge reclaims them all.
    EXPECT_EQ(store->purgeUnshared(), 0u) << "tables still hold rows";
    size_t resident = store->stats().rows;
    shared_a.reset();
    shared_b.reset();
    EXPECT_EQ(store->purgeUnshared(), resident);
    EXPECT_EQ(store->stats().rows, 0u);
}

} // namespace
} // namespace mclp
