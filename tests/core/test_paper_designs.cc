#include <gtest/gtest.h>

#include "core/paper_designs.h"
#include "model/cycle_model.h"
#include "model/dsp_model.h"
#include "nn/zoo.h"

namespace mclp {
namespace {

TEST(PaperDesigns, AllValidate)
{
    nn::Network alexnet = nn::makeAlexNet();
    EXPECT_NO_THROW(core::paperAlexNetSingle485().validate(alexnet));
    EXPECT_NO_THROW(core::paperAlexNetSingle690().validate(alexnet));
    EXPECT_NO_THROW(core::paperAlexNetMulti485().validate(alexnet));
    EXPECT_NO_THROW(core::paperAlexNetMulti690().validate(alexnet));
    nn::Network squeezenet = nn::makeSqueezeNet();
    EXPECT_NO_THROW(core::paperSqueezeNetSingle485().validate(squeezenet));
    EXPECT_NO_THROW(core::paperSqueezeNetSingle690().validate(squeezenet));
    EXPECT_NO_THROW(core::paperSqueezeNetMulti485().validate(squeezenet));
    EXPECT_NO_THROW(core::paperSqueezeNetMulti690().validate(squeezenet));
}

TEST(PaperDesigns, ClpCounts)
{
    EXPECT_EQ(core::paperAlexNetSingle485().clps.size(), 1u);
    EXPECT_EQ(core::paperAlexNetMulti485().clps.size(), 4u);
    EXPECT_EQ(core::paperAlexNetMulti690().clps.size(), 6u);
    EXPECT_EQ(core::paperSqueezeNetMulti485().clps.size(), 6u);
    EXPECT_EQ(core::paperSqueezeNetMulti690().clps.size(), 6u);
}

TEST(PaperDesigns, AlexNetMulti485PerClpCyclesMatchTable2c)
{
    nn::Network net = nn::makeAlexNet();
    auto design = core::paperAlexNetMulti485();
    std::vector<int64_t> expected{584064 + 876096, 1557504, 1464100,
                                  1530900};
    for (size_t ci = 0; ci < design.clps.size(); ++ci) {
        EXPECT_EQ(model::clpComputeCycles(design.clps[ci], net),
                  expected[ci])
            << "CLP" << ci;
    }
}

TEST(PaperDesigns, AlexNetMulti690PerClpCyclesMatchTable2d)
{
    nn::Network net = nn::makeAlexNet();
    auto design = core::paperAlexNetMulti690();
    std::vector<int64_t> expected{1168128, 1168128, 1168128,
                                  1098075, 1098075, 1166400};
    for (size_t ci = 0; ci < design.clps.size(); ++ci) {
        EXPECT_EQ(model::clpComputeCycles(design.clps[ci], net),
                  expected[ci])
            << "CLP" << ci;
    }
}

TEST(PaperDesigns, SqueezeNetSingleCyclesMatchTable4)
{
    nn::Network net = nn::makeSqueezeNet();
    // Table 4(a): 349k cycles; Table 4(b): 331k cycles.
    EXPECT_EQ(model::clpComputeCycles(
                  core::paperSqueezeNetSingle485().clps[0], net),
              348553);
    EXPECT_EQ(model::clpComputeCycles(
                  core::paperSqueezeNetSingle690().clps[0], net),
              331305);
}

TEST(PaperDesigns, SqueezeNetMulti690PerClpCyclesMatchTable4d)
{
    nn::Network net = nn::makeSqueezeNet();
    auto design = core::paperSqueezeNetMulti690();
    // Table 4(d): 125/115/133/145/144/141 kcycles.
    std::vector<int64_t> expected{125440, 114921, 132888, 144648,
                                  144256, 141120};
    for (size_t ci = 0; ci < design.clps.size(); ++ci) {
        EXPECT_EQ(model::clpComputeCycles(design.clps[ci], net),
                  expected[ci])
            << "CLP" << ci;
    }
}

TEST(PaperDesigns, SqueezeNetMulti485EpochMatchesTable4c)
{
    nn::Network net = nn::makeSqueezeNet();
    auto design = core::paperSqueezeNetMulti485();
    // Table 4(c): per-CLP 179/183/165/176/185/183 kcycles, epoch 185k.
    std::vector<int64_t> expected{179, 183, 165, 176, 185, 183};
    int64_t epoch = 0;
    for (size_t ci = 0; ci < design.clps.size(); ++ci) {
        int64_t cycles =
            model::clpComputeCycles(design.clps[ci], net);
        EXPECT_NEAR(static_cast<double>(cycles) / 1000.0,
                    static_cast<double>(expected[ci]), 0.5)
            << "CLP" << ci;
        epoch = std::max(epoch, cycles);
    }
    EXPECT_NEAR(static_cast<double>(epoch) / 1000.0, 185.0, 0.5);
}

} // namespace
} // namespace mclp
