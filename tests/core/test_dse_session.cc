/**
 * @file
 * The warm DSE session layer must be invisible in results: a
 * DseSession::sweep over a budget ladder — one frontier build, shared
 * tiling options, shared tradeoff curves — has to produce designs
 * bit-identical to independent cold MultiClpOptimizer runs per
 * budget, for fixed and randomized networks, compute- and
 * bandwidth-bound budgets, BRAM-starved budgets, and any thread
 * count. These tests pin exactly that, plus the budget-free frontier
 * truncation the reuse rests on.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/dse_session.h"
#include "core/memory_optimizer.h"
#include "core/optimizer.h"
#include "fpga/device.h"
#include "nn/zoo.h"
#include "test_helpers.h"
#include "util/logging.h"
#include "util/math.h"

namespace mclp {
namespace {

core::OptimizationResult
coldRun(const nn::Network &network, fpga::DataType type,
        const fpga::ResourceBudget &budget,
        const core::OptimizerOptions &options)
{
    return core::MultiClpOptimizer(network, type, budget, options).run();
}

void
expectSameResult(const core::OptimizationResult &warm,
                 const core::OptimizationResult &cold,
                 const std::string &what)
{
    EXPECT_TRUE(warm.design == cold.design) << what << ": designs differ";
    EXPECT_EQ(warm.metrics.epochCycles, cold.metrics.epochCycles) << what;
    EXPECT_EQ(warm.metrics.peakBandwidthBytesPerCycle,
              cold.metrics.peakBandwidthBytesPerCycle)
        << what;
    EXPECT_EQ(warm.achievedTarget, cold.achievedTarget) << what;
    EXPECT_EQ(warm.iterations, cold.iterations) << what;
    EXPECT_EQ(warm.usedHeuristic, cold.usedHeuristic) << what;
}

std::vector<nn::ConvLayer>
randomLayers(util::SplitMix64 &rng, int count)
{
    std::vector<nn::ConvLayer> layers;
    for (int i = 0; i < count; ++i) {
        int64_t k = std::vector<int64_t>{1, 3, 5}[static_cast<size_t>(
            rng.nextInt(0, 2))];
        std::string name("L");
        name += std::to_string(i);
        layers.push_back(nn::makeConvLayer(
            std::move(name), rng.nextInt(1, 64), rng.nextInt(1, 64),
            rng.nextInt(3, 14), rng.nextInt(3, 14), k, 1));
    }
    return layers;
}

TEST(DseSession, SweepMatchesColdRunsOnAlexNet)
{
    nn::Network network = nn::makeAlexNet();
    std::vector<fpga::ResourceBudget> budgets =
        core::dspLadder({500, 1000, 2240, 2880}, 100.0);

    core::OptimizerOptions multi;
    multi.maxClps = 6;
    core::DseSession session(network, fpga::DataType::Float32);
    auto warm = session.sweep(budgets, multi);
    ASSERT_EQ(warm.size(), budgets.size());
    for (size_t i = 0; i < budgets.size(); ++i) {
        auto cold = coldRun(network, fpga::DataType::Float32,
                            budgets[i], multi);
        expectSameResult(warm[i], cold,
                         "multi budget " +
                             std::to_string(budgets[i].dspSlices));
    }
}

TEST(DseSession, SweepMatchesColdRunsSingleClp)
{
    nn::Network network = nn::makeAlexNet();
    std::vector<fpga::ResourceBudget> budgets =
        core::dspLadder({250, 750, 2000, 9600}, 100.0);

    core::OptimizerOptions single;
    single.singleClp = true;
    core::DseSession session(network, fpga::DataType::Float32);
    // Descending order: later (smaller) budgets must read prefixes of
    // the table built for the first (largest) rung.
    std::vector<fpga::ResourceBudget> descending(budgets.rbegin(),
                                                 budgets.rend());
    auto warm = session.sweep(descending, single);
    for (size_t i = 0; i < descending.size(); ++i) {
        auto cold = coldRun(network, fpga::DataType::Float32,
                            descending[i], single);
        expectSameResult(warm[i], cold,
                         "single budget " +
                             std::to_string(descending[i].dspSlices));
    }
}

TEST(DseSession, SweepMatchesColdRunsOnRandomNetworks)
{
    util::SplitMix64 rng(20170625);
    for (int trial = 0; trial < 4; ++trial) {
        auto layers = randomLayers(
            rng, static_cast<int>(rng.nextInt(3, 6)));
        nn::Network network("rand" + std::to_string(trial), layers);
        fpga::DataType type = trial % 2 == 0 ? fpga::DataType::Float32
                                             : fpga::DataType::Fixed16;

        std::vector<fpga::ResourceBudget> budgets;
        for (int b = 0; b < 3; ++b) {
            fpga::ResourceBudget budget;
            budget.dspSlices = rng.nextInt(64, 2000);
            // Mix generous and BRAM-starved budgets so both the
            // fast path and the memory-bound fallback are exercised.
            budget.bram18k =
                std::max<int64_t>(8, budget.dspSlices /
                                         (b == 1 ? 8 : 2));
            budget.frequencyMhz = 100.0;
            if (b == 2)
                budget.setBandwidthGbps(
                    static_cast<double>(rng.nextInt(1, 8)));
            budgets.push_back(budget);
        }

        core::OptimizerOptions options;
        options.maxClps = static_cast<int>(rng.nextInt(1, 4));
        core::DseSession session(network, type);
        for (size_t i = 0; i < budgets.size(); ++i) {
            // A hopeless budget makes the optimizer fatal(); warm and
            // cold must then agree on that too.
            std::optional<core::OptimizationResult> warm;
            std::optional<core::OptimizationResult> cold;
            try {
                warm = session.optimize(budgets[i], options);
            } catch (const util::FatalError &) {
            }
            try {
                cold = coldRun(network, type, budgets[i], options);
            } catch (const util::FatalError &) {
            }
            ASSERT_EQ(warm.has_value(), cold.has_value())
                << "trial " << trial << " budget "
                << budgets[i].dspSlices;
            if (warm) {
                expectSameResult(
                    *warm, *cold,
                    "trial " + std::to_string(trial) + " budget " +
                        std::to_string(budgets[i].dspSlices));
            }
        }
    }
}

TEST(DseSession, ThreadCountNeverChangesResults)
{
    nn::Network network = nn::makeAlexNet();
    std::vector<fpga::ResourceBudget> budgets =
        core::dspLadder({500, 1000, 1500, 2240, 2880, 3600}, 100.0);

    core::OptimizerOptions multi;
    multi.maxClps = 6;
    core::DseSession serial(network, fpga::DataType::Float32, 1);
    core::DseSession threaded(network, fpga::DataType::Float32, 4);
    auto a = serial.sweep(budgets, multi);
    auto b = threaded.sweep(budgets, multi);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i)
        expectSameResult(a[i], b[i],
                         "budget " +
                             std::to_string(budgets[i].dspSlices));
}

TEST(DseSession, RepeatedOptimizeIsStable)
{
    nn::Network network = nn::makeAlexNet();
    fpga::ResourceBudget budget =
        fpga::standardBudget(fpga::virtex7_690t(), 100.0);

    core::DseSession session(network, fpga::DataType::Float32);
    auto first = session.optimize(budget);
    auto second = session.optimize(budget);
    expectSameResult(second, first, "repeat");
    auto cold = coldRun(network, fpga::DataType::Float32, budget, {});
    expectSameResult(first, cold, "vs cold");
}

TEST(DseSession, TradeoffCurveMatchesColdWalk)
{
    nn::Network network = nn::makeAlexNet();
    auto result = core::optimizeMultiClp(
        network, fpga::DataType::Float32,
        fpga::standardBudget(fpga::virtex7_485t(), 100.0), 4);

    core::DseSession session(network, fpga::DataType::Float32);
    auto warm1 = session.tradeoffCurve(result.partition);
    auto warm2 = session.tradeoffCurve(result.partition);  // memoized
    core::MemoryOptimizer cold_memory(network, fpga::DataType::Float32);
    auto cold = cold_memory.tradeoffCurve(result.partition);

    ASSERT_EQ(warm1.size(), cold.size());
    ASSERT_EQ(warm2.size(), cold.size());
    for (size_t i = 0; i < cold.size(); ++i) {
        EXPECT_EQ(warm1[i].totalBram, cold[i].totalBram);
        EXPECT_EQ(warm1[i].peakBytesPerCycle, cold[i].peakBytesPerCycle);
        EXPECT_TRUE(warm1[i].design == cold[i].design);
        EXPECT_TRUE(warm2[i].design == cold[i].design);
    }
}

TEST(DseSession, DspLadderScalesBramLikeFigure7)
{
    auto budgets = core::dspLadder({100, 1300, 10000}, 100.0);
    ASSERT_EQ(budgets.size(), 3u);
    EXPECT_EQ(budgets[0].dspSlices, 100);
    EXPECT_EQ(budgets[0].bram18k,
              std::max<int64_t>(1, static_cast<int64_t>(100 / 1.3)));
    EXPECT_EQ(budgets[1].bram18k, static_cast<int64_t>(1300 / 1.3));
    EXPECT_EQ(budgets[2].bram18k, static_cast<int64_t>(10000 / 1.3));
    EXPECT_FALSE(budgets[0].bandwidthLimited());

    fpga::ResourceBudget base =
        fpga::standardBudget(fpga::virtex7_690t(), 150.0);
    base.setBandwidthGbps(10.0);
    auto laddered = core::dspLadder({512, 1024}, 150.0, 1.3, &base);
    EXPECT_EQ(laddered[0].dspSlices, 512);
    EXPECT_EQ(laddered[0].bram18k, base.bram18k);
    EXPECT_EQ(laddered[1].bandwidthBytesPerCycle,
              base.bandwidthBytesPerCycle);
}

// The truncation property every cross-budget reuse rests on: a
// budget-free frontier answers any capped query exactly as a frontier
// built under that cap would.
TEST(DseSession, BudgetFreeFrontierAnswersCappedQueriesByTruncation)
{
    util::SplitMix64 rng(20170626);
    for (int trial = 0; trial < 20; ++trial) {
        auto layers = randomLayers(
            rng, static_cast<int>(rng.nextInt(1, 4)));
        std::vector<const nn::ConvLayer *> ptrs;
        for (const auto &layer : layers)
            ptrs.push_back(&layer);
        fpga::DataType type = trial % 2 == 0 ? fpga::DataType::Float32
                                             : fpga::DataType::Fixed16;

        core::BreakpointCache cache;
        core::ShapeFrontier free(ptrs, type, core::kUnboundedResources,
                                 cache);
        for (int probe = 0; probe < 8; ++probe) {
            int64_t units_cap = rng.nextInt(1, 800);
            int64_t dsp_cap = units_cap * fpga::dspPerMac(type);
            core::ShapeFrontier capped(ptrs, type, units_cap, cache);
            int64_t tight = layers[0].r * layers[0].c * layers[0].n *
                            layers[0].m * layers[0].k * layers[0].k;
            for (int64_t target :
                 {int64_t{1}, tight / 4 + 1, tight / 2 + 1, tight * 4}) {
                auto a = free.query(target, dsp_cap);
                auto b = capped.query(target);
                ASSERT_EQ(a.has_value(), b.has_value())
                    << "trial " << trial << " cap " << units_cap
                    << " target " << target;
                if (!a)
                    continue;
                EXPECT_EQ(a->shape.tn, b->shape.tn);
                EXPECT_EQ(a->shape.tm, b->shape.tm);
                EXPECT_EQ(a->dsp, b->dsp);
                EXPECT_EQ(a->cycles, b->cycles);
            }
            if (!capped.empty()) {
                EXPECT_EQ(free.minCycles(dsp_cap), capped.minCycles());
            } else {
                EXPECT_EQ(free.minCycles(dsp_cap),
                          core::kUnboundedResources);
            }
        }
    }
}

} // namespace
} // namespace mclp
